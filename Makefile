GO ?= go

.PHONY: build test lint check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# nautilus-lint is the repo's own stdlib static-analysis suite
# (internal/lint): determinism, floateq, layerpurity, uncheckederr.
lint:
	$(GO) run ./cmd/nautilus-lint ./...

# check is the full pre-merge gate: vet + build + invariant lint + the
# race detector over the concurrent execution layers.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) run ./cmd/nautilus-lint ./...
	$(GO) test -race ./internal/exec/... ./internal/train/...

bench:
	$(GO) test -bench=. -benchmem
