GO ?= go

.PHONY: build test lint lint-fixtures check bench trace-demo bench-json bench-baseline tune

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# nautilus-lint is the repo's own stdlib static-analysis suite
# (internal/lint): the syntactic analyzers (allochygiene, determinism,
# floateq, layerpurity, uncheckederr), the dataflow-engine analyzers
# (arenaescape, spanleak, goroutinejoin, chunkdisjoint), the typestate
# protocol analyzers (sessionorder, storelease), the interprocedural
# summary-aware analyzers (locksafe, ctxflow), and the ignoreaudit
# stale-suppression check. Runs warm through the incremental result cache
# (.nautilus-lint-cache/) by default; set LINT_NOCACHE=1 to force a full
# uncached sweep.
lint:
	$(GO) run ./cmd/nautilus-lint $(if $(LINT_NOCACHE),,-cache) ./...

# lint-fixtures re-runs the golden-fixture tests that pin every analyzer's
# exact diagnostics (positions + messages) over testdata/src/violations,
# plus the interprocedural call-graph/summary unit tests and the parallel
# driver's determinism check.
lint-fixtures:
	$(GO) test ./internal/lint -run 'Golden|IgnoreAudit|RunSorted|RunTimed|CallGraph|Summary|Analyze|SelectAnalyzers' -count=1

# check is the full pre-merge gate: vet + build + the full analyzer
# suite (interprocedural summaries included) + the race detector over the
# concurrent planning, execution, observability, and storage layers, plus
# the perf-regression gate against the committed baseline (noise-aware
# ratio metrics; nonzero exit on regression).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) run ./cmd/nautilus-lint -analyzers= ./...
	$(GO) test -race ./internal/exec/... ./internal/train/...
	$(GO) test -race ./internal/core/...
	$(GO) test -race ./internal/opt/...
	$(GO) test -race ./internal/tensor/... ./internal/graph/...
	$(GO) test -race ./internal/storage/... ./internal/obs/...
	$(GO) run ./cmd/nautilus-bench -exp obs,replan,calib,fusion,kernels,lint -tune-table TUNE_table.json -baseline BENCH_baseline.json

bench:
	$(GO) test -bench=. -benchmem

# trace-demo runs a small workload with tracing + metrics enabled, then
# asserts both artifacts parse (same checks as TestTraceDemo). Load
# demo.trace in chrome://tracing or ui.perfetto.dev.
trace-demo:
	$(GO) run ./cmd/nautilus-run -workload FTR-3 -cycles 1 -trace demo.trace -metrics demo_metrics.json
	$(GO) test -run TestTraceDemo -count=1 .

# bench-json measures observability overhead on the trainer hot loop
# (no tracer vs nil sink vs active sink), the incremental-replan savings
# after AddCandidates, the hot-path engine (parallel kernels + step
# arena), the lint suite's per-analyzer wall time, the trace-calibration
# conformance tightening, and the enum-vs-greedy fusion plan quality,
# writing BENCH_obs.json + BENCH_replan.json + BENCH_kernels.json +
# BENCH_lint.json + BENCH_calib.json + BENCH_fusion.json.
bench-json:
	$(GO) run ./cmd/nautilus-bench -exp obs -obsjson BENCH_obs.json
	$(GO) run ./cmd/nautilus-bench -exp replan -replanjson BENCH_replan.json
	$(GO) run ./cmd/nautilus-bench -exp kernels -tune-table TUNE_table.json -kernelsjson BENCH_kernels.json
	$(GO) run ./cmd/nautilus-bench -exp lint -lintjson BENCH_lint.json
	$(GO) run ./cmd/nautilus-bench -exp calib -calibjson BENCH_calib.json
	$(GO) run ./cmd/nautilus-bench -exp fusion -fusionjson BENCH_fusion.json

# bench-baseline rewrites the committed perf-regression baseline from a
# fresh run of the gated experiments. Run it after an intentional perf
# change, eyeball the diff, and commit the new BENCH_baseline.json.
bench-baseline:
	$(GO) run ./cmd/nautilus-bench -exp obs,replan,calib,fusion,kernels,lint -tune-table TUNE_table.json -write-baseline BENCH_baseline.json

# tune re-benchmarks every kernel shape class on this machine and
# rewrites the committed schedule table. Run it after kernel changes or
# on new hardware; check loads the table and hard-errors on a version
# mismatch, so regenerate + commit TUNE_table.json together with any
# table-format change.
tune:
	$(GO) run ./cmd/nautilus-bench -exp tune -tune-out TUNE_table.json
