GO ?= go

.PHONY: build test lint lint-fixtures check bench trace-demo bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# nautilus-lint is the repo's own stdlib static-analysis suite
# (internal/lint): the syntactic analyzers (allochygiene, determinism,
# floateq, layerpurity, uncheckederr) plus the dataflow-engine analyzers
# (arenaescape, spanleak, goroutinejoin, chunkdisjoint) and the
# ignoreaudit stale-suppression check.
lint:
	$(GO) run ./cmd/nautilus-lint ./...

# lint-fixtures re-runs the golden-fixture tests that pin every analyzer's
# exact diagnostics (positions + messages) over testdata/src/violations.
lint-fixtures:
	$(GO) test ./internal/lint -run 'Golden|IgnoreAudit|RunSorted|RunTimed' -count=1

# check is the full pre-merge gate: vet + build + invariant lint + the
# race detector over the concurrent planning and execution layers.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) run ./cmd/nautilus-lint ./...
	$(GO) test -race ./internal/exec/... ./internal/train/...
	$(GO) test -race ./internal/core/...
	$(GO) test -race ./internal/tensor/... ./internal/graph/...

bench:
	$(GO) test -bench=. -benchmem

# trace-demo runs a small workload with tracing + metrics enabled, then
# asserts both artifacts parse (same checks as TestTraceDemo). Load
# demo.trace in chrome://tracing or ui.perfetto.dev.
trace-demo:
	$(GO) run ./cmd/nautilus-run -workload FTR-3 -cycles 1 -trace demo.trace -metrics demo_metrics.json
	$(GO) test -run TestTraceDemo -count=1 .

# bench-json measures observability overhead on the trainer hot loop
# (no tracer vs nil sink vs active sink), the incremental-replan savings
# after AddCandidates, and the hot-path engine (parallel kernels + step
# arena), writing BENCH_obs.json + BENCH_replan.json + BENCH_kernels.json.
bench-json:
	$(GO) run ./cmd/nautilus-bench -exp obs -obsjson BENCH_obs.json
	$(GO) run ./cmd/nautilus-bench -exp replan -replanjson BENCH_replan.json
	$(GO) run ./cmd/nautilus-bench -exp kernels -kernelsjson BENCH_kernels.json
