// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 5). Each benchmark runs the corresponding experiment and
// reports the headline quantity as a custom metric (speedups, minutes), so
// `go test -bench=. -benchmem` doubles as the reproduction harness.
// cmd/nautilus-bench prints the full row sets.
//
// Paper-scale benchmarks drive the real optimizer over BERT-base /
// ResNet-50 profiles and replay plans on the cost-clock simulator
// (seconds each); BenchmarkFig7_LearningCurves runs real mini-scale
// training (tens of seconds).
package nautilus_test

import (
	"testing"

	"nautilus/internal/core"
	"nautilus/internal/experiments"
	"nautilus/internal/opt"
	"nautilus/internal/workloads"
)

func BenchmarkTable3_WorkloadCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.TheoreticalSpeedup, "eq11_"+r.Workload)
			}
		}
	}
}

func BenchmarkFig6A_EndToEndRuntimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6A()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.NautilusSpeedup, "speedup_"+r.Workload)
			}
		}
	}
}

func BenchmarkFig6B_CycleBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6B()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.InitNautilusMin, "init_nautilus_min")
			b.ReportMetric(r.InitCurrentPracticeMin, "init_current_min")
			b.ReportMetric(r.CycleSpeedups[len(r.CycleSpeedups)-1], "cycle10_speedup")
		}
	}
}

func BenchmarkFig6C_LabelingCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6C()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].Speedup, "speedup_0.5s_per_label")
			b.ReportMetric(rows[len(rows)-1].Speedup, "speedup_8s_per_label")
		}
	}
}

func BenchmarkFig7_LearningCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(experiments.DefaultFig7Config())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Speedup, "real_speedup")
			last := len(r.Nautilus) - 1
			b.ReportMetric(r.Nautilus[last].BestAcc, "nautilus_final_acc")
			b.ReportMetric(r.CurrentPractice[last].BestAcc, "current_final_acc")
		}
	}
}

func BenchmarkFig8_Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.NoFuseSlowdownPct, "noFUSE_pct_"+r.Workload)
				b.ReportMetric(r.NoMatSlowdownPct, "noMAT_pct_"+r.Workload)
			}
		}
	}
}

func BenchmarkFig9_NumModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			first, last := rows[0], rows[len(rows)-1]
			b.ReportMetric(first.CurrentPractice/first.Nautilus, "speedup_1model")
			b.ReportMetric(last.CurrentPractice/last.Nautilus, "speedup_8models")
		}
	}
}

func BenchmarkFig10A_StorageBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10A()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].Speedup, "plateau_speedup")
		}
	}
}

func BenchmarkFig10B_MemoryBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10B()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].Speedup, "plateau_speedup")
		}
	}
}

func BenchmarkFig11_ResourceUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.ReadRatio, "read_reduction")
			b.ReportMetric(r.WriteRatio, "write_reduction")
			b.ReportMetric(100*r.UtilizationNautilus, "util_nautilus_pct")
			b.ReportMetric(100*r.UtilizationCP, "util_current_pct")
		}
	}
}

func BenchmarkOptimizer_SolveTime(b *testing.B) {
	// §5.3: optimizer solve time at practical workload sizes. The B&B
	// solver is benchmarked on the largest workload; the MILP on FTR-3.
	inst, err := experiments.PaperInstance(workloads.FTR1())
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.PaperConfig(core.Nautilus)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := opt.OptimizeMaterialization(inst.MM, inst.Items, opt.MatConfig{
			DiskBudgetBytes: cfg.DiskBudgetBytes, MaxRecords: cfg.MaxRecords,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.NodesExplored), "bnb_nodes")
		}
	}
}

func BenchmarkTheoreticalSpeedup(b *testing.B) {
	var insts []*workloads.Instance
	for _, s := range workloads.All() {
		inst, err := experiments.PaperInstance(s)
		if err != nil {
			b.Fatal(err)
		}
		insts = append(insts, inst)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, inst := range insts {
			s := experiments.TheoreticalSpeedup(inst)
			if i == 0 {
				b.ReportMetric(s, "eq11_"+inst.Spec.Name)
			}
		}
	}
}

func BenchmarkAblation_MincutVsMILP(b *testing.B) {
	// The scalable B&B+min-cut solver against the faithful joint MILP on
	// the same instance: identical optima, different solve times.
	inst, err := experiments.PaperInstance(workloads.FTR3())
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.PaperConfig(core.Nautilus)
	for _, solver := range []string{"bnb", "milp"} {
		solver := solver
		b.Run(solver, func(b *testing.B) {
			var cost int64
			for i := 0; i < b.N; i++ {
				res, err := opt.OptimizeMaterialization(inst.MM, inst.Items, opt.MatConfig{
					DiskBudgetBytes: cfg.DiskBudgetBytes, MaxRecords: cfg.MaxRecords, Solver: solver,
				})
				if err != nil {
					b.Fatal(err)
				}
				cost = res.TotalCostFLOPs
			}
			b.ReportMetric(float64(cost)/1e12, "plan_TFLOPs")
		})
	}
}

func BenchmarkAblation_BackoffFactor(b *testing.B) {
	// Section 4.2.3's exponential backoff of the max-records estimate r:
	// how plan cost and storage respond as r doubles.
	inst, err := experiments.PaperInstance(workloads.FTR2())
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.PaperConfig(core.Nautilus)
	for i := 0; i < b.N; i++ {
		for _, r := range []int{1000, 2000, 4000, 8000} {
			res, err := opt.OptimizeMaterialization(inst.MM, inst.Items, opt.MatConfig{
				DiskBudgetBytes: cfg.DiskBudgetBytes, MaxRecords: r,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(res.StorageBytes)/float64(1<<30), "storageGB_r"+itoa(r))
			}
		}
	}
}

func BenchmarkAblation_MemoryEstimator(b *testing.B) {
	// Estimator cost: one fused-pair peak-memory analysis at paper scale.
	inst, err := experiments.PaperInstance(workloads.FTR2())
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.PaperConfig(core.Nautilus)
	wp, err := core.PlanWorkload(inst.Items, inst.MM, cfg, cfg.MaxRecords)
	if err != nil {
		b.Fatal(err)
	}
	g := wp.Groups[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := opt.EstimatePeakMemory(g.Plan, g.BatchSize(), 2)
		if i == 0 {
			b.ReportMetric(float64(est.Total())/float64(1<<30), "peakGB")
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
