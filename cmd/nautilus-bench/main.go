// Command nautilus-bench regenerates the paper's tables and figures
// (Section 5). Paper-scale experiments replay real optimizer decisions on
// the cost-clock simulator; fig7 runs real mini-scale training.
//
// Usage:
//
//	nautilus-bench -exp all
//	nautilus-bench -exp fig6a
//	nautilus-bench -exp fig7 -fig7lrs 3 -fig7cycles 5
//	nautilus-bench -exp obs,replan,calib -baseline BENCH_baseline.json
//	nautilus-bench -exp obs,replan,calib -write-baseline BENCH_baseline.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"nautilus/internal/experiments"
	"nautilus/internal/obs"
	"nautilus/internal/tensor"
	"nautilus/internal/tensor/tune"
	"nautilus/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: table3 fig6a fig6b fig6c fig7 fig7b fig8 fig9 fig10a fig10b fig11 hwsweep solver obs replan kernels tune lint calib fusion all")
	fig7LRs := flag.Int("fig7lrs", 2, "learning rates per strategy in fig7's real-training run")
	fig7Cycles := flag.Int("fig7cycles", 4, "labeling cycles in fig7's real-training run")
	obsRuns := flag.Int("obsruns", 5, "individually timed trainer passes per mode in the obs overhead experiment")
	obsJSON := flag.String("obsjson", "", "write the obs overhead result as JSON to this file")
	replanJSON := flag.String("replanjson", "", "write the replan benchmark result as JSON to this file")
	kernelsRuns := flag.Int("kernelsruns", 3, "averaged training passes per regime in the kernels experiment")
	kernelsJSON := flag.String("kernelsjson", "", "write the kernels benchmark result as JSON to this file")
	tuneTable := flag.String("tune-table", "", "dispatch tensor kernels on this autotuned schedule table (make tune)")
	tuneOut := flag.String("tune-out", "", "write the tune experiment's schedule table to this file")
	lintJSON := flag.String("lintjson", "", "write the lint benchmark result as JSON to this file")
	calibJSON := flag.String("calibjson", "", "write the calibration benchmark result as JSON to this file")
	fusionJSON := flag.String("fusionjson", "", "write the fusion benchmark result as JSON to this file")
	fuser := flag.String("fuser", "", "override the fusion strategy for all experiments: greedy or enum (default: per-experiment)")
	fuseBudget := flag.Int("fuse-budget", 0, "enum fuser state budget override (0 = default)")
	baselinePath := flag.String("baseline", "", "compare this run's gated metrics against this baseline file; exit nonzero on regression")
	writeBaseline := flag.String("write-baseline", "", "write this run's gated metrics as a new baseline file")
	tracePath := flag.String("trace", "", "trace experiment execution spans to this file")
	traceFormat := flag.String("trace-format", obs.FormatChrome, "trace file format: chrome or jsonl")
	metricsPath := flag.String("metrics", "", "write metrics + conformance JSON to this file")
	listen := flag.String("listen", "", "serve live telemetry over HTTP on this address while experiments run")
	flag.Parse()
	experiments.SetFuser(*fuser, *fuseBudget)

	if *tuneTable != "" {
		table, err := tune.Load(*tuneTable)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nautilus-bench:", err)
			os.Exit(1)
		}
		tensor.SetScheduleSource(table)
		fmt.Printf("kernel schedules from %s: %d entries (tuned for %d workers)\n",
			*tuneTable, len(table.Entries), table.Workers)
	}

	var tracer *obs.Tracer
	if *tracePath != "" || *metricsPath != "" {
		var err error
		tracer, err = obs.OpenTracer(*tracePath, *traceFormat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nautilus-bench:", err)
			os.Exit(1)
		}
	} else if *listen != "" {
		// Live export needs a tracer even without a trace file.
		tracer = obs.New(nil)
	}
	if tracer != nil {
		experiments.SetObs(tracer)
		defer func() {
			if *metricsPath != "" {
				if err := obs.WriteMetricsFile(*metricsPath, tracer); err != nil {
					fmt.Fprintln(os.Stderr, "nautilus-bench:", err)
				}
			}
			if err := tracer.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "nautilus-bench:", err)
			}
		}()
	}
	if *listen != "" {
		exporter, err := obs.StartExporter(tracer, obs.ExporterConfig{Listen: *listen})
		if err != nil {
			fmt.Fprintln(os.Stderr, "nautilus-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("live telemetry on http://%s (/metrics /conformance /spans /debug/pprof/)\n", exporter.Addr())
		defer func() {
			if err := exporter.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "nautilus-bench:", err)
			}
		}()
	}

	selected := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		if name = strings.TrimSpace(name); name != "" {
			selected[name] = true
		}
	}
	// Metrics the gated experiments contribute toward -baseline /
	// -write-baseline.
	var gated []experiments.BaselineMetric

	run := func(name string, fn func() error) {
		if !selected["all"] && !selected[name] {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table3", func() error {
		rows, err := experiments.Table3()
		if err != nil {
			return err
		}
		return experiments.PrintTable3(os.Stdout, rows)
	})
	run("fig6a", func() error {
		rows, err := experiments.Fig6A()
		if err != nil {
			return err
		}
		return experiments.PrintFig6A(os.Stdout, rows)
	})
	run("fig6b", func() error {
		r, err := experiments.Fig6B()
		if err != nil {
			return err
		}
		return experiments.PrintFig6B(os.Stdout, r)
	})
	run("fig6c", func() error {
		rows, err := experiments.Fig6C()
		if err != nil {
			return err
		}
		return experiments.PrintFig6C(os.Stdout, rows)
	})
	run("fig7", func() error {
		cfg := experiments.DefaultFig7Config()
		cfg.LRs = *fig7LRs
		cfg.Cycles = *fig7Cycles
		r, err := experiments.Fig7(cfg)
		if err != nil {
			return err
		}
		return experiments.PrintFig7(os.Stdout, r, "(A)")
	})
	run("fig7b", func() error {
		cfg := experiments.DefaultFig7Config()
		cfg.LRs = *fig7LRs
		cfg.Cycles = *fig7Cycles
		cfg.SecPerLabel = 0.2 // mini-scale analogue of 4 s/label
		r, err := experiments.Fig7(cfg)
		if err != nil {
			return err
		}
		return experiments.PrintFig7(os.Stdout, r, "(B)")
	})
	run("fig8", func() error {
		rows, err := experiments.Fig8()
		if err != nil {
			return err
		}
		return experiments.PrintFig8(os.Stdout, rows)
	})
	run("fig9", func() error {
		rows, err := experiments.Fig9()
		if err != nil {
			return err
		}
		return experiments.PrintFig9(os.Stdout, rows)
	})
	run("fig10a", func() error {
		rows, err := experiments.Fig10A()
		if err != nil {
			return err
		}
		return experiments.PrintFig10A(os.Stdout, rows)
	})
	run("fig10b", func() error {
		rows, err := experiments.Fig10B()
		if err != nil {
			return err
		}
		return experiments.PrintFig10B(os.Stdout, rows)
	})
	run("fig11", func() error {
		r, err := experiments.Fig11()
		if err != nil {
			return err
		}
		return experiments.PrintFig11(os.Stdout, r)
	})
	run("hwsweep", func() error {
		rows, err := experiments.HardwareSweep()
		if err != nil {
			return err
		}
		return experiments.PrintHardwareSweep(os.Stdout, rows)
	})
	run("solver", func() error {
		st, err := experiments.CompareSolvers(workloads.FTR3())
		if err != nil {
			return err
		}
		return experiments.PrintSolverStats(os.Stdout, st)
	})
	run("obs", func() error {
		r, err := experiments.ObsOverhead(*obsRuns)
		if err != nil {
			return err
		}
		gated = append(gated, experiments.ObsBaselineMetrics(r)...)
		if err := experiments.PrintObsOverhead(os.Stdout, r); err != nil {
			return err
		}
		if *obsJSON != "" {
			if err := experiments.WriteObsOverheadJSON(*obsJSON, r); err != nil {
				return err
			}
			fmt.Printf("overhead JSON written to %s\n", *obsJSON)
		}
		return nil
	})
	run("replan", func() error {
		r, err := experiments.Replan()
		if err != nil {
			return err
		}
		gated = append(gated, experiments.ReplanBaselineMetrics(r)...)
		if err := experiments.PrintReplan(os.Stdout, r); err != nil {
			return err
		}
		if *replanJSON != "" {
			if err := experiments.WriteReplanJSON(*replanJSON, r); err != nil {
				return err
			}
			fmt.Printf("replan JSON written to %s\n", *replanJSON)
		}
		return nil
	})
	run("tune", func() error {
		t, err := tune.Tune(tune.DefaultCases(), tune.Options{
			Source: fmt.Sprintf("nautilus-bench -exp tune (%s/%s)", runtime.GOOS, runtime.GOARCH),
			Log: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		if *tuneOut != "" {
			if err := tune.Save(*tuneOut, t); err != nil {
				return err
			}
			fmt.Printf("schedule table written to %s (%d entries)\n", *tuneOut, len(t.Entries))
		}
		return nil
	})
	run("kernels", func() error {
		r, err := experiments.Kernels(*kernelsRuns)
		if err != nil {
			return err
		}
		gated = append(gated, experiments.KernelsBaselineMetrics(r)...)
		if err := experiments.PrintKernels(os.Stdout, r); err != nil {
			return err
		}
		if *kernelsJSON != "" {
			if err := experiments.WriteKernelsJSON(*kernelsJSON, r); err != nil {
				return err
			}
			fmt.Printf("kernels JSON written to %s\n", *kernelsJSON)
		}
		return nil
	})
	run("lint", func() error {
		r, err := experiments.LintBench()
		if err != nil {
			return err
		}
		gated = append(gated, experiments.LintBaselineMetrics(r)...)
		if err := experiments.PrintLintBench(os.Stdout, r); err != nil {
			return err
		}
		if *lintJSON != "" {
			if err := experiments.WriteLintBenchJSON(*lintJSON, r); err != nil {
				return err
			}
			fmt.Printf("lint JSON written to %s\n", *lintJSON)
		}
		return nil
	})
	run("calib", func() error {
		r, err := experiments.Calib()
		if err != nil {
			return err
		}
		gated = append(gated, experiments.CalibBaselineMetrics(r)...)
		if err := experiments.PrintCalib(os.Stdout, r); err != nil {
			return err
		}
		if *calibJSON != "" {
			if err := experiments.WriteCalibJSON(*calibJSON, r); err != nil {
				return err
			}
			fmt.Printf("calibration JSON written to %s\n", *calibJSON)
		}
		return nil
	})

	run("fusion", func() error {
		r, err := experiments.Fusion()
		if err != nil {
			return err
		}
		gated = append(gated, experiments.FusionBaselineMetrics(r)...)
		if err := experiments.PrintFusion(os.Stdout, r); err != nil {
			return err
		}
		if *fusionJSON != "" {
			if err := experiments.WriteFusionJSON(*fusionJSON, r); err != nil {
				return err
			}
			fmt.Printf("fusion JSON written to %s\n", *fusionJSON)
		}
		return nil
	})

	if *writeBaseline != "" {
		if err := experiments.WriteBaseline(*writeBaseline, gated); err != nil {
			fmt.Fprintln(os.Stderr, "nautilus-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("baseline written to %s (%d metrics)\n", *writeBaseline, len(gated))
	}
	if *baselinePath != "" {
		base, err := experiments.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nautilus-bench:", err)
			os.Exit(1)
		}
		comparisons, regressions := experiments.CompareBaseline(base, gated)
		if err := experiments.PrintBaselineComparison(os.Stdout, comparisons, regressions); err != nil {
			fmt.Fprintln(os.Stderr, "nautilus-bench:", err)
			os.Exit(1)
		}
		if regressions > 0 {
			// Exits without running the trace/exporter defers: a failing gate
			// is a CI stop, not a clean report.
			os.Exit(1)
		}
	}
}
