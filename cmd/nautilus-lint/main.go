// Command nautilus-lint runs the Nautilus static-analysis suite
// (internal/lint) over module packages and exits non-zero on findings.
//
// Usage:
//
//	nautilus-lint [-json] [-tests=false] [packages...]
//
// Package patterns are directories relative to the module root; a
// trailing "/..." includes everything beneath. With no arguments it
// checks the whole module. Findings print as file:line:col: analyzer:
// message, or as a JSON array with -json. Suppress an intentional finding
// in source with `//lint:ignore <analyzer> <reason>` on the offending
// line or the line above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"nautilus/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	tests := flag.Bool("tests", true, "also analyze in-package _test.go files")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.DefaultAnalyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	loader.IncludeTests = *tests
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fatal(err)
	}
	diags := lint.Run(pkgs, lint.DefaultAnalyzers(), loader.Fset)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "nautilus-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nautilus-lint:", err)
	os.Exit(2)
}
