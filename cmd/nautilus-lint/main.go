// Command nautilus-lint runs the Nautilus static-analysis suite
// (internal/lint) over module packages and exits non-zero on findings.
//
// Usage:
//
//	nautilus-lint [-json] [-tests=false] [-analyzers=spec] [-cache] [-diff ref] [packages...]
//
// Package patterns are directories relative to the module root; a
// trailing "/..." includes everything beneath. With no arguments it
// checks the whole module. Packages are analyzed in parallel (bounded by
// GOMAXPROCS) with deterministic, (file, line, analyzer)-sorted output.
// Findings print as file:line:col: analyzer: message; with -json they
// arrive as
//
//	{"findings": [...], "timings": [...], "packages": [...]}
//
// where timings carries each analyzer's wall time summed over the run
// (ssa_wall_ns is the share spent building SSA form) and packages carries
// per-package wall time.
//
// -analyzers selects a subset: a comma-separated list of names to include
// ("locksafe,ctxflow"), names prefixed with '-' to exclude from the suite
// ("-allochygiene"), or a mix. -list shows the suite; summary-aware
// analyzers (those consulting interprocedural function summaries) are
// marked with '*'.
//
// -cache reuses per-package results across runs from -cache-dir (default
// .nautilus-lint-cache at the module root): a package whose sources,
// transitive module-internal imports, analyzer set, and tool sources are
// all unchanged replays its stored findings without being parsed or
// type-checked, so a warm run on an unchanged tree does no type-checking
// at all. Output is byte-identical to an uncached run.
//
// -diff <git-ref> keeps only findings on lines changed since the ref
// (computed from `git diff -U0 <ref>`): full packages are still analyzed
// (and cached) for correctness, but untouched pre-existing findings don't
// fail the run — the mode CI uses to gate pull requests on new findings
// only.
//
// Suppress an intentional finding in source with
// `//lint:ignore <analyzer> <reason>` on the offending line or the line
// above it; the ignoreaudit analyzer flags suppressions that no longer
// hide anything.
//
// Exit codes:
//
//	0  clean — no findings (with -diff: none on changed lines)
//	1  findings reported (with -diff: at least one on a changed line)
//	2  load or usage error (bad pattern, unknown analyzer, parse/type-check
//	   failure, bad git ref)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"nautilus/internal/lint"
)

// jsonReport is the -json output envelope.
type jsonReport struct {
	Findings []lint.Diagnostic     `json:"findings"`
	Timings  []lint.AnalyzerTiming `json:"timings"`
	Packages []lint.PackageTiming  `json:"packages"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings and timings as JSON")
	tests := flag.Bool("tests", true, "also analyze in-package _test.go files")
	list := flag.Bool("list", false, "list analyzers (summary-aware marked with '*') and exit")
	spec := flag.String("analyzers", "", "comma-separated analyzer subset; prefix a name with '-' to exclude it")
	useCache := flag.Bool("cache", false, "replay unchanged packages from the incremental result cache")
	cacheDir := flag.String("cache-dir", ".nautilus-lint-cache", "cache directory (relative paths resolve against the module root)")
	diffRef := flag.String("diff", "", "only report findings on lines changed since this git ref")
	flag.Usage = func() {
		fmt.Fprint(os.Stderr,
			"usage: nautilus-lint [-json] [-tests=false] [-list] [-analyzers=spec] [-cache] [-diff ref] [packages...]\n"+
				"exit codes: 0 no findings, 1 findings reported, 2 load/usage error\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		fmt.Println("analyzers ('*' = summary-aware: consults interprocedural function summaries)")
		for _, a := range lint.DefaultAnalyzers() {
			mark := " "
			if a.SummaryAware {
				mark = "*"
			}
			fmt.Printf("%s %-14s %s\n", mark, a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.SelectAnalyzers(lint.DefaultAnalyzers(), *spec)
	if err != nil {
		fatal(err)
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	loader.IncludeTests = *tests
	var res lint.Result
	if *useCache {
		cache, err := lint.OpenCache(*cacheDir, loader, analyzers)
		if err != nil {
			fatal(err)
		}
		res, _, err = lint.AnalyzeCached(loader, cache, analyzers, flag.Args()...)
		if err != nil {
			fatal(err)
		}
	} else {
		pkgs, err := loader.Load(flag.Args()...)
		if err != nil {
			fatal(err)
		}
		res = lint.Analyze(pkgs, analyzers, loader.Fset)
	}
	if *diffRef != "" {
		changed, err := lint.ChangedLines(loader.ModuleRoot, *diffRef)
		if err != nil {
			fatal(err)
		}
		res.Findings = lint.FilterByDiff(res.Findings, changed, loader.ModuleRoot)
	}

	if *jsonOut {
		if res.Findings == nil {
			res.Findings = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{Findings: res.Findings, Timings: res.Analyzers, Packages: res.Packages}); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range res.Findings {
			fmt.Println(d)
		}
	}
	if len(res.Findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "nautilus-lint: %d finding(s)\n", len(res.Findings))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nautilus-lint:", err)
	os.Exit(2)
}
