// Command nautilus-lint runs the Nautilus static-analysis suite
// (internal/lint) over module packages and exits non-zero on findings.
//
// Usage:
//
//	nautilus-lint [-json] [-tests=false] [packages...]
//
// Package patterns are directories relative to the module root; a
// trailing "/..." includes everything beneath. With no arguments it
// checks the whole module. Findings print as file:line:col: analyzer:
// message, sorted by (file, line, analyzer); with -json they arrive as
//
//	{"findings": [...], "timings": [{"analyzer": ..., "wall_ns": ...}]}
//
// where timings carries each analyzer's wall time summed over the run.
// Suppress an intentional finding in source with
// `//lint:ignore <analyzer> <reason>` on the offending line or the line
// above it; the ignoreaudit analyzer flags suppressions that no longer
// hide anything.
//
// Exit codes:
//
//	0  clean — no findings
//	1  findings reported (human or JSON output)
//	2  load or usage error (bad pattern, parse/type-check failure)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"nautilus/internal/lint"
)

// jsonReport is the -json output envelope.
type jsonReport struct {
	Findings []lint.Diagnostic     `json:"findings"`
	Timings  []lint.AnalyzerTiming `json:"timings"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings and per-analyzer timings as JSON")
	tests := flag.Bool("tests", true, "also analyze in-package _test.go files")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprint(os.Stderr,
			"usage: nautilus-lint [-json] [-tests=false] [-list] [packages...]\n"+
				"exit codes: 0 no findings, 1 findings reported, 2 load/usage error\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.DefaultAnalyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	loader.IncludeTests = *tests
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fatal(err)
	}
	diags, timings := lint.RunTimed(pkgs, lint.DefaultAnalyzers(), loader.Fset)

	if *jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{Findings: diags, Timings: timings}); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "nautilus-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nautilus-lint:", err)
	os.Exit(2)
}
