// Command nautilus-plan shows the optimizer's decisions for a workload:
// the chosen materialized set V, the fused training groups, their reuse
// plans and estimated memory, plus the theoretical speedup bound.
//
// Usage:
//
//	nautilus-plan -workload FTR-2
//	nautilus-plan -workload FTU -disk-gb 5 -mem-gb 4 -approach nautilus_no_fuse
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"nautilus/internal/core"
	"nautilus/internal/experiments"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
	"nautilus/internal/tensor"
	"nautilus/internal/tensor/tune"
	"nautilus/internal/verify"
	"nautilus/internal/workloads"
)

func main() {
	workload := flag.String("workload", "FTR-2", "workload name (FTR-1, FTR-2, FTR-3, ATR, FTU)")
	approach := flag.String("approach", string(core.Nautilus), "approach: nautilus, current_practice, mat_all, nautilus_no_fuse, nautilus_no_mat")
	scale := flag.String("scale", "paper", "model scale: paper or mini")
	diskGB := flag.Float64("disk-gb", 25, "disk storage budget B_disk in GB")
	memGB := flag.Float64("mem-gb", 10, "runtime memory budget B_mem in GB")
	maxRecords := flag.Int("max-records", 5000, "expected maximum training records r")
	fuser := flag.String("fuser", opt.FuserGreedy, "fusion strategy: greedy (Algorithm 1) or enum (cost-based partition search)")
	fuseBudget := flag.Int("fuse-budget", 0, "enum fuser state budget (candidate groups profiled before falling back to greedy; 0 = default)")
	dot := flag.Bool("dot", false, "emit the first group's reuse plan as Graphviz DOT and exit")
	summary := flag.Bool("summary", false, "print the first candidate model's layer table and exit")
	calibration := flag.String("calibration", "", "plan against measured constants from this calibration file (nautilus-run -calibrate-out)")
	tuneTable := flag.String("tune-table", "", "dispatch tensor kernels on this autotuned schedule table (make tune)")
	flag.Parse()

	spec, err := workloads.ByName(*workload)
	fatalIf(err)

	sc := workloads.Paper
	hw := profile.DefaultHardware()
	if *scale == "mini" {
		sc = workloads.Mini
		hw = experiments.MiniHardware()
	}
	if *calibration != "" {
		hw, err = profile.LoadHardware(*calibration, hw)
		fatalIf(err)
		fmt.Printf("calibrated constants from %s: %.3g FLOP/s, %.3g disk B/s\n",
			*calibration, hw.FLOPSThroughput, hw.DiskThroughput)
	}
	if *tuneTable != "" {
		table, err := tune.Load(*tuneTable)
		fatalIf(err)
		tensor.SetScheduleSource(table)
		fmt.Printf("kernel schedules from %s: %d entries (tuned for %d workers)\n",
			*tuneTable, len(table.Entries), table.Workers)
	}
	fmt.Printf("building %s at %s scale (%d candidate models)...\n", spec.Name, sc, spec.NumModels())
	inst, err := spec.Build(sc, hw)
	fatalIf(err)

	cfg := core.DefaultConfig("")
	cfg.Approach = core.Approach(*approach)
	cfg.HW = hw
	cfg.DiskBudgetBytes = int64(*diskGB * float64(1<<30))
	cfg.MemBudgetBytes = int64(*memGB * float64(1<<30))
	cfg.Fuser = *fuser
	cfg.FuseStateBudget = *fuseBudget

	wp, err := core.PlanWorkload(inst.Items, inst.MM, cfg, *maxRecords)
	fatalIf(err)

	if *dot {
		fmt.Print(opt.PlanDOT(wp.Groups[0].Plan))
		return
	}
	if *summary {
		fmt.Print(inst.Items[0].Model.Summary())
		return
	}

	fmt.Printf("\napproach: %s   B_disk: %.1f GB   B_mem: %.1f GB   r: %d\n",
		cfg.Approach, *diskGB, *memGB, *maxRecords)
	fmt.Printf("theoretical speedup (Eq. 11): %.2fX\n", experiments.TheoreticalSpeedup(inst))
	fmt.Printf("optimizer time: %v (%d search nodes)\n", wp.Stats.OptimizeTime, wp.Stats.MatSolveNodes)
	if fu := wp.Stats.Fuse; fu.Strategy != "" {
		fmt.Printf("fusion strategy: %s | %d rounds, %d groups built, %d rejected", fu.Strategy, fu.Rounds, fu.PairsEvaluated, fu.PairsRejected)
		if fu.Strategy == opt.FuserEnum {
			fmt.Printf(" | %d DP states, %d memo hits, %d bound prunings, %d fallbacks", fu.StatesExplored, fu.MemoHits, fu.BoundPrunings, fu.Fallbacks)
		}
		fmt.Println()
	}

	fmt.Printf("\nmaterialized set V: %d expressions, %.2f GB at r records\n",
		wp.Stats.Materialized, float64(wp.Stats.StorageBytes)/float64(1<<30))
	var sigs []string
	for sig := range wp.MatSigs {
		sigs = append(sigs, sig.String())
	}
	sort.Strings(sigs)
	for _, s := range sigs {
		fmt.Printf("  %s\n", s)
	}

	fmt.Printf("\ntraining plan: %d groups\n", len(wp.Groups))
	var total int64
	for i, g := range wp.Groups {
		pruned, computed, loaded := g.Plan.CountActions()
		fmt.Printf("group %2d: %2d models, batch %2d, epochs %2d | %2d computed %2d loaded %2d pruned | %6.1f MFLOPs/record | peak mem %.2f GB\n",
			i+1, len(g.Items), g.BatchSize(), g.Epochs(), computed, loaded, pruned,
			float64(g.Plan.CostPerRecord)/1e6, float64(g.PeakMemBytes)/float64(1<<30))
		for _, it := range g.Items {
			fmt.Printf("          - %s\n", it.Model.Name)
		}
		total += g.Plan.CostPerRecord * int64(g.Epochs())
	}
	fmt.Printf("\nplanned cost: %.1f MFLOPs-equivalent per record per cycle-epoch sum\n", float64(total)/1e6)

	// Compare against the unoptimized cost.
	var cp int64
	for _, it := range inst.Items {
		cp += opt.CurrentPracticePlan(it.Prof).CostPerRecord * int64(it.Epochs)
	}
	fmt.Printf("current practice cost: %.1f MFLOPs-equivalent (plan saves %.1f%%)\n",
		float64(cp)/1e6, 100*(1-float64(total)/float64(cp)))
}

func fatalIf(err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "nautilus-plan:", err)
	var pe *verify.PlanError
	if errors.As(err, &pe) {
		fmt.Fprintf(os.Stderr, "nautilus-plan: plan rejected: kind=%s", pe.Kind)
		if pe.Group != "" {
			fmt.Fprintf(os.Stderr, " group=%s", pe.Group)
		}
		if pe.Model != "" {
			fmt.Fprintf(os.Stderr, " model=%s", pe.Model)
		}
		if pe.Node != "" {
			fmt.Fprintf(os.Stderr, " node=%s", pe.Node)
		}
		fmt.Fprintln(os.Stderr)
	}
	os.Exit(1)
}
