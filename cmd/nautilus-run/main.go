// Command nautilus-run executes a workload end to end with real training
// at mini scale: the simulated labeler releases batches cycle by cycle and
// the chosen approach performs model selection over all labeled data.
//
// Usage:
//
//	nautilus-run -workload FTR-3 -approach nautilus
//	nautilus-run -workload FTU -approach current_practice -cycles 4
//	nautilus-run -workload FTR-3 -trace run.trace -metrics run.json
//	nautilus-run -workload FTR-3 -calibrate-out hw.json     # fit measured constants
//	nautilus-run -workload FTR-3 -calibration hw.json       # plan against them
//	nautilus-run -workload FTR-3 -listen localhost:6060 -live live.jsonl
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"nautilus/internal/core"
	"nautilus/internal/experiments"
	"nautilus/internal/obs"
	"nautilus/internal/obs/calib"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
	"nautilus/internal/verify"
	"nautilus/internal/workloads"
)

func main() {
	workload := flag.String("workload", "FTR-3", "workload name (FTR-1, FTR-2, FTR-3, ATR, FTU)")
	approach := flag.String("approach", string(core.Nautilus), "approach: nautilus, current_practice, mat_all, nautilus_no_fuse, nautilus_no_mat")
	cycles := flag.Int("cycles", 0, "limit labeling cycles (0 = workload default)")
	seed := flag.Int64("seed", 1, "random seed for data and shuffling")
	workDir := flag.String("workdir", "", "working directory (default: temp dir)")
	compare := flag.Bool("compare", false, "run current_practice AND nautilus, reporting speedup and accuracy parity")
	tracePath := flag.String("trace", "", "write a span trace to this file")
	traceFormat := flag.String("trace-format", obs.FormatChrome, "trace file format: chrome (chrome://tracing / perfetto) or jsonl")
	metricsPath := flag.String("metrics", "", "write metrics + conformance JSON to this file")
	calibration := flag.String("calibration", "", "plan against measured constants from this calibration file")
	tuneTable := flag.String("tune-table", "", "dispatch tensor kernels on this autotuned schedule table (make tune)")
	calibrateOut := flag.String("calibrate-out", "", "fit a hardware calibration from this run's trace and write it here")
	listen := flag.String("listen", "", "serve live telemetry over HTTP on this address (/metrics, /conformance, /spans, /debug/pprof/)")
	livePath := flag.String("live", "", "append periodic live-telemetry snapshots (JSONL) to this file")
	driftWarn := flag.Float64("drift-warn", 1.5, "flag conformance groups whose actual/predicted time ratio falls outside [1/t, t]; <= 1 disables")
	fuser := flag.String("fuser", opt.FuserGreedy, "fusion strategy: greedy (Algorithm 1) or enum (cost-based partition search)")
	fuseBudget := flag.Int("fuse-budget", 0, "enum fuser state budget (candidate groups profiled before falling back to greedy; 0 = default)")
	flag.Parse()

	if *compare {
		runCompare(*workload, *seed, *cycles)
		return
	}

	spec, err := workloads.ByName(*workload)
	fatalIf(err)
	fmt.Printf("building %s at mini scale (%d candidate models)...\n", spec.Name, spec.NumModels())
	inst, err := spec.Build(workloads.Mini, experiments.MiniHardware())
	fatalIf(err)

	dir := *workDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "nautilus-run-")
		fatalIf(err)
		defer os.RemoveAll(dir)
	}
	cfg := core.DefaultConfig(dir)
	cfg.Approach = core.Approach(*approach)
	cfg.HW = experiments.MiniHardware()
	cfg.Seed = *seed
	cfg.MaxRecords = 600
	if *tracePath != "" || *metricsPath != "" {
		tr, err := obs.OpenTracer(*tracePath, *traceFormat)
		fatalIf(err)
		cfg.Obs = tr
	}
	if cfg.Obs == nil && (*calibrateOut != "" || *listen != "" || *livePath != "") {
		// Calibration fitting and live export need the tracer's metering even
		// when no trace file was requested; a sinkless tracer carries it.
		cfg.Obs = obs.New(nil)
	}
	cfg.CalibrationPath = *calibration
	cfg.TuneTablePath = *tuneTable
	cfg.DriftWarn = *driftWarn
	cfg.Fuser = *fuser
	cfg.FuseStateBudget = *fuseBudget

	var exporter *obs.Exporter
	if *listen != "" || *livePath != "" {
		exporter, err = obs.StartExporter(cfg.Obs, obs.ExporterConfig{SnapshotPath: *livePath, Listen: *listen})
		fatalIf(err)
		if *listen != "" {
			fmt.Printf("live telemetry on http://%s (/metrics /conformance /spans /debug/pprof/)\n", exporter.Addr())
		}
	}

	report, err := core.Run(inst, cfg, *seed, *cycles)
	if exporter != nil {
		fatalIf(exporter.Close())
		if *livePath != "" {
			fmt.Printf("live snapshots written to %s\n", *livePath)
		}
	}
	fatalIf(err)

	fmt.Printf("\n%s on %s (mini scale, real training)\n", report.Approach, report.Workload)
	if report.Init != nil {
		fmt.Printf("optimizer: %d materialized expressions, %d groups, solve %v\n",
			report.Init.Materialized, report.Init.Groups, report.Init.OptimizeTime)
		if fu := report.Init.Fuse; fu.Strategy == opt.FuserEnum {
			fmt.Printf("fusion: %s | %d DP states, %d memo hits, %d bound prunings, %d fallbacks\n",
				fu.Strategy, fu.StatesExplored, fu.MemoHits, fu.BoundPrunings, fu.Fallbacks)
		}
	}
	fmt.Printf("%-6s %10s %12s %9s  %s\n", "cycle", "train-size", "duration", "best-acc", "best model")
	for _, c := range report.Cycles {
		fmt.Printf("%-6d %10d %12v %9.4f  %s\n", c.Cycle, c.TrainSize, c.Duration.Round(1e6), c.BestAcc, c.BestModel)
	}
	// Model the totals with the same constants the planner used: the
	// calibrated hardware when a calibration file was given.
	hw, err := profile.LoadHardware(cfg.CalibrationPath, cfg.HW)
	fatalIf(err)
	fmt.Printf("\ntotal: %v | compute %.1f GFLOPs (%.1fs modeled) | disk read %.1f MB (%.1fs modeled) written %.1f MB\n",
		report.Total.Round(1e6),
		float64(report.Metrics.ComputeFLOPs)/1e9,
		hw.Seconds(report.Metrics.ComputeFLOPs),
		float64(report.Metrics.Disk.BytesRead())/1e6,
		hw.IOSeconds(report.Metrics.Disk.BytesRead()),
		float64(report.Metrics.Disk.BytesWritten())/1e6)
	fmt.Printf("final best: %s (accuracy %.4f)\n", report.FinalBest.Model, report.FinalBest.ValAcc)

	if cfg.Obs != nil {
		fmt.Println()
		fatalIf(obs.WriteSummary(os.Stdout, cfg.Obs, 12))
		if *metricsPath != "" {
			fatalIf(obs.WriteMetricsFile(*metricsPath, cfg.Obs))
			fmt.Printf("metrics JSON written to %s\n", *metricsPath)
		}
		if *calibrateOut != "" {
			c, err := calib.FromTracer(cfg.Obs, fmt.Sprintf("nautilus-run %s %s", *workload, *approach))
			fatalIf(err)
			fatalIf(profile.SaveCalibration(*calibrateOut, c))
			fmt.Printf("calibration written to %s: compute %.3g FLOP/s (%d samples, %d trimmed), read %.3g B/s, write %.3g B/s\n",
				*calibrateOut, c.Compute.Throughput, c.Compute.Samples, c.Compute.Trimmed,
				c.Read.Throughput, c.Write.Throughput)
		}
		fatalIf(cfg.Obs.Close())
		if *tracePath != "" {
			fmt.Printf("trace written to %s (%s format)\n", *tracePath, *traceFormat)
		}
	}
}

// runCompare executes the workload under both Current Practice and
// Nautilus with identical seeds, printing the wall-clock speedup and the
// per-cycle accuracy parity (Section 5.2 in miniature).
func runCompare(workload string, seed int64, cycles int) {
	spec, err := workloads.ByName(workload)
	fatalIf(err)
	fmt.Printf("comparing approaches on %s at mini scale (%d models)...\n\n", spec.Name, spec.NumModels())
	reports := map[core.Approach]*core.RunReport{}
	for _, approach := range []core.Approach{core.CurrentPractice, core.Nautilus} {
		inst, err := spec.Build(workloads.Mini, experiments.MiniHardware())
		fatalIf(err)
		dir, err := os.MkdirTemp("", "nautilus-compare-")
		fatalIf(err)
		cfg := core.DefaultConfig(dir)
		cfg.Approach = approach
		cfg.HW = experiments.MiniHardware()
		cfg.Seed = seed
		cfg.MaxRecords = 600
		report, err := core.Run(inst, cfg, seed, cycles)
		_ = os.RemoveAll(dir) // best-effort scratch cleanup
		fatalIf(err)
		reports[approach] = report
		fmt.Printf("%-18s total %v\n", approach, report.Total.Round(1e6))
	}
	cp, nt := reports[core.CurrentPractice], reports[core.Nautilus]
	fmt.Printf("\nspeedup: %.2fX\n", cp.Total.Seconds()/nt.Total.Seconds())
	fmt.Printf("%-6s %18s %12s\n", "cycle", "current-best-acc", "nautilus")
	for i := range cp.Cycles {
		fmt.Printf("%-6d %18.4f %12.4f\n", i+1, cp.Cycles[i].BestAcc, nt.Cycles[i].BestAcc)
	}
}

func fatalIf(err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "nautilus-run:", err)
	var pe *verify.PlanError
	if errors.As(err, &pe) {
		fmt.Fprintf(os.Stderr, "nautilus-run: plan rejected: kind=%s", pe.Kind)
		if pe.Group != "" {
			fmt.Fprintf(os.Stderr, " group=%s", pe.Group)
		}
		if pe.Model != "" {
			fmt.Fprintf(os.Stderr, " model=%s", pe.Model)
		}
		if pe.Node != "" {
			fmt.Fprintf(os.Stderr, " node=%s", pe.Node)
		}
		fmt.Fprintln(os.Stderr)
	}
	os.Exit(1)
}
