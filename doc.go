// Package nautilus is a from-scratch Go reproduction of "Nautilus: An
// Optimized System for Deep Transfer Learning over Evolving Training
// Datasets" (Nakandala & Kumar, SIGMOD 2022).
//
// The public entry points live in internal/core (the model-selection API),
// internal/workloads (the paper's five evaluation workloads), and
// internal/experiments (every table/figure regenerated). See README.md for
// a tour, DESIGN.md for the system inventory, and EXPERIMENTS.md for
// paper-vs-measured results. The root-level bench_test.go exposes one
// benchmark per table and figure:
//
//	go test -bench=. -benchmem
package nautilus
