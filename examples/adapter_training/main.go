// Adapter training: the ATR workload in miniature.
//
// Houlsby bottleneck adapters are inserted into the top K transformer
// blocks of a frozen mini BERT; only the adapters and the classifier head
// train. Because most of the trunk stays materializable below the lowest
// adapter, Nautilus reuses everything beneath it across candidates.
//
//	go run ./examples/adapter_training
package main

import (
	"fmt"
	"log"
	"os"

	"nautilus/internal/core"
	"nautilus/internal/experiments"
	"nautilus/internal/workloads"
)

func main() {
	spec := workloads.ATR()
	spec.Name = "adapter-demo"
	spec.MiniDepths = []int{1, 2} // adapters in the top {1,2} blocks
	spec.AdapterBottleneck = 8
	spec.BatchSizes = []int{8}
	spec.LRs = []float64{5e-5, 2e-5}
	spec.Epochs = []int{3}

	inst, err := spec.Build(workloads.Mini, experiments.MiniHardware())
	if err != nil {
		log.Fatal(err)
	}
	total, trainable := inst.Items[0].Model.ParamCount()
	fmt.Printf("adapter grid: %d candidates; each trains %d of %d params (%.1f%%)\n",
		len(inst.Items), trainable, total, 100*float64(trainable)/float64(total))

	dir, err := os.MkdirTemp("", "nautilus-adapter-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfg := core.DefaultConfig(dir)
	cfg.HW = experiments.MiniHardware()
	cfg.MaxRecords = 600

	report, err := core.Run(inst, cfg, 17, 4)
	if err != nil {
		log.Fatal(err)
	}
	if st := report.Init; st != nil {
		fmt.Printf("optimizer materialized %d frozen expressions below the adapters, %d training groups\n\n",
			st.Materialized, st.Groups)
	}
	for _, c := range report.Cycles {
		fmt.Printf("cycle %d: %3d records → best %.4f: %s (%v)\n",
			c.Cycle, c.TrainSize, c.BestAcc, c.BestModel, c.Duration.Round(1e7))
	}
	fmt.Printf("\nwinner: %s (%.4f validation accuracy) in %v\n",
		report.FinalBest.Model, report.FinalBest.ValAcc, report.Total.Round(1e7))
}
