// NER active learning: the paper's motivating scenario (Section 1).
//
// A data scientist labels clinical-style text in cycles and re-runs model
// selection over a feature-transfer grid after every cycle. This example
// runs the same evolving workload twice — once as Current Practice, once
// with Nautilus — and reports identical accuracy trajectories at a
// fraction of the runtime.
//
//	go run ./examples/ner_active_learning
package main

import (
	"fmt"
	"log"
	"os"

	"nautilus/internal/core"
	"nautilus/internal/experiments"
	"nautilus/internal/workloads"
)

func main() {
	// A trimmed FTR-2: two strategies × two learning rates at one batch
	// size, so the demo finishes in under a minute of real training.
	spec := workloads.FTR2()
	spec.Name = "ner-demo"
	spec.Strategies = spec.Strategies[:2]
	spec.BatchSizes = []int{8}
	spec.LRs = []float64{5e-5, 2e-5}
	spec.Epochs = []int{3}

	fmt.Printf("workload: %d candidate models over an evolving NER corpus\n\n", spec.NumModels())

	type outcome struct {
		accs  []float64
		total float64
	}
	results := map[core.Approach]outcome{}
	for _, approach := range []core.Approach{core.CurrentPractice, core.Nautilus} {
		inst, err := spec.Build(workloads.Mini, experiments.MiniHardware())
		if err != nil {
			log.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "nautilus-ner-")
		if err != nil {
			log.Fatal(err)
		}
		cfg := core.DefaultConfig(dir)
		cfg.Approach = approach
		cfg.HW = experiments.MiniHardware()
		cfg.MaxRecords = 600

		report, err := core.Run(inst, cfg, 42, 4)
		_ = os.RemoveAll(dir) // best-effort scratch cleanup
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("--- %s ---\n", approach)
		for _, c := range report.Cycles {
			fmt.Printf("cycle %d: %3d labeled train records → best accuracy %.4f (%v)\n",
				c.Cycle, c.TrainSize, c.BestAcc, c.Duration.Round(1e7))
		}
		fmt.Printf("total: %v\n\n", report.Total.Round(1e7))
		results[approach] = outcome{accs: report.BestAccs(), total: report.Total.Seconds()}
	}

	cp, nt := results[core.CurrentPractice], results[core.Nautilus]
	fmt.Printf("speedup: %.1fX with matching accuracy trajectories:\n", cp.total/nt.total)
	for i := range cp.accs {
		fmt.Printf("  cycle %d: current practice %.4f vs nautilus %.4f\n", i+1, cp.accs[i], nt.accs[i])
	}
}
