// Quickstart: the smallest end-to-end Nautilus session.
//
// It "downloads" a pre-trained mini BERT, declares a 4-candidate model
// selection workload (2 feature-transfer strategies × 2 learning rates),
// and runs three labeling cycles with Nautilus's materialization + fusion
// optimizations, printing the best candidate after each cycle.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"nautilus/internal/core"
	"nautilus/internal/data"
	"nautilus/internal/graph"
	"nautilus/internal/mmg"
	"nautilus/internal/models"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
)

func main() {
	// 1. Load the pre-trained hub and describe the hardware.
	hub := models.NewBERTHub(models.BERTMini())
	hw := profile.Hardware{FLOPSThroughput: 5e9, DiskThroughput: 500e6, WorkspaceBytes: 256 << 20}

	// 2. Build the candidate set Q = {(M_i, ϕ_i)}.
	numClasses := 9 // BIO tags over 4 entity types
	var items []opt.WorkItem
	var candidates []*graph.Model
	id := 0
	for _, strat := range []models.FeatureStrategy{models.FeatLastHidden, models.FeatConcatLast4} {
		for _, lr := range []float64{5e-3, 2e-3} {
			m, err := hub.FeatureTransferModel(
				fmt.Sprintf("%s-lr%g", strat, lr), strat, numClasses, int64(100+id))
			if err != nil {
				log.Fatal(err)
			}
			prof, err := profile.Profile(m, hw)
			if err != nil {
				log.Fatal(err)
			}
			items = append(items, opt.WorkItem{Model: m, Prof: prof, Epochs: 3, BatchSize: 8, LR: lr})
			candidates = append(candidates, m)
			id++
		}
	}
	multi, err := mmg.Build(candidates...)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Create the model-selection object (API → Profiler → Optimizer →
	// Materializer → Trainer, paper Figure 3).
	workDir, err := os.MkdirTemp("", "nautilus-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workDir)
	cfg := core.DefaultConfig(workDir)
	cfg.HW = hw
	cfg.MaxRecords = 500
	ms, err := core.New(items, multi, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer ms.Close()

	// 4. Simulated human labeler: 50 new records per cycle (40 train /
	// 10 validation).
	pool := data.SynthNER(data.NERConfig{Records: 400, Seq: 12, Vocab: 1024, Types: 4, Seed: 7})
	labeler := data.NewLabeler(pool, 50, 40)

	for cycle := 1; cycle <= 3; cycle++ {
		snap, _, _ := labeler.NextCycle()
		fit, err := ms.Fit(snap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cycle %d (%d train records): best %s with %.4f validation accuracy (%.2fs)\n",
			fit.Cycle, snap.TrainSize(), fit.Best.Model, fit.Best.ValAcc, fit.Duration.Seconds())
	}
	if st := ms.InitStats(); st != nil {
		fmt.Printf("\noptimizer: materialized %d shared expressions, trained %d fused groups instead of %d models\n",
			st.Materialized, st.Groups, len(items))
	}
}
