// Uncertainty sampling: the full active-learning loop of the paper's
// Figure 1(A). Each cycle, the previous round's best model scores the
// unlabeled pool by mean softmax entropy, the simulated human labels the
// most uncertain batch, and Nautilus re-runs optimized model selection over
// all labeled data.
//
//	go run ./examples/uncertainty_sampling
package main

import (
	"fmt"
	"log"
	"os"

	"nautilus/internal/core"
	"nautilus/internal/data"
	"nautilus/internal/experiments"
	"nautilus/internal/graph"
	"nautilus/internal/models"
)

func main() {
	hub := models.NewBERTHub(models.BERTMini())
	idx := 0
	space := core.SearchSpace{
		"strategy": {models.FeatLastHidden, models.FeatConcatLast4},
		"lr":       {5e-3, 2e-3},
	}
	init := func(p map[string]any) (*graph.Model, core.Hyper, error) {
		strat := p["strategy"].(models.FeatureStrategy)
		lr := p["lr"].(float64)
		idx++
		m, err := hub.FeatureTransferModel(fmt.Sprintf("%s-lr%g", strat, lr), strat, 9, int64(900+idx))
		return m, core.Hyper{Epochs: 3, BatchSize: 8, LR: lr}, err
	}
	items, mm, err := core.GridSearch(space, init, experiments.MiniHardware())
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "nautilus-al-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfg := core.DefaultConfig(dir)
	cfg.HW = experiments.MiniHardware()
	cfg.MaxRecords = 600
	ms, err := core.New(items, mm, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer ms.Close()

	pool := data.SynthNER(data.NERConfig{Records: 500, Seq: 12, Vocab: 1024, Types: 4, Seed: 31})
	labeler := data.NewActiveLabeler(pool, 50, 40)

	var best string
	for cycle := 1; cycle <= 4 && labeler.HasMore(); cycle++ {
		// Score the unlabeled pool with last cycle's winner (cycle 1 has no
		// model yet → sequential labeling).
		var scores []float64
		sampler := "sequential (no model yet)"
		if best != "" {
			m, _ := ms.BestModel(best)
			unlabeled := pool.UnlabeledIndices()
			scores, err = core.EntropyScores(m, "ids", pool.GatherX(unlabeled), 16)
			if err != nil {
				log.Fatal(err)
			}
			sampler = fmt.Sprintf("entropy scores from %s", best)
		}
		snap, err := labeler.NextCycle(scores)
		if err != nil {
			log.Fatal(err)
		}
		fit, err := ms.Fit(snap)
		if err != nil {
			log.Fatal(err)
		}
		best = fit.Best.Model
		fmt.Printf("cycle %d [%s]\n", cycle, sampler)
		fmt.Printf("  labeled %d records total → best %s (%.4f accuracy) in %v\n",
			snap.TrainSize()+snap.ValidSize(), best, fit.Best.ValAcc, fit.Duration.Round(1e7))
	}
}
