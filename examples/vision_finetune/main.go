// Vision fine-tuning: the FTU workload in miniature.
//
// A ResNet-style CNN pre-trained on "natural images" is fine-tuned to
// detect parasites in synthetic blood-cell images, exploring how many
// residual blocks to unfreeze. Nautilus materializes the frozen trunk's
// outputs once and fuses candidates that share batch sizes.
//
//	go run ./examples/vision_finetune
package main

import (
	"fmt"
	"log"
	"os"

	"nautilus/internal/core"
	"nautilus/internal/data"
	"nautilus/internal/experiments"
	"nautilus/internal/workloads"
)

func main() {
	spec := workloads.FTU()
	spec.Name = "vision-demo"
	spec.MiniDepths = []int{1, 2} // how many top residual blocks to fine-tune
	spec.BatchSizes = []int{8}
	spec.LRs = []float64{5e-5, 2e-5}
	spec.Epochs = []int{3}

	inst, err := spec.Build(workloads.Mini, experiments.MiniHardware())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fine-tuning grid: %d candidates (tune top {1,2} blocks × 2 learning rates)\n", len(inst.Items))

	dir, err := os.MkdirTemp("", "nautilus-vision-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfg := core.DefaultConfig(dir)
	cfg.HW = experiments.MiniHardware()
	cfg.MaxRecords = 1200

	// Data augmentation the Nautilus way (paper Section 2.5): expand the
	// labeled pool up front with flipped/jittered variants so materialized
	// features stay valid, instead of augmenting on the fly.
	pool := data.AugmentPool(inst.NewPool(9), 2, 123,
		data.Chain(data.HorizontalFlip(0.5), data.PixelNoise(0.03)))
	fmt.Printf("augmented pool: %d images (2 variants per labeled cell)\n", pool.Size())

	report, err := core.RunWithPool(inst, cfg, pool, 4)
	if err != nil {
		log.Fatal(err)
	}
	if st := report.Init; st != nil {
		fmt.Printf("optimizer materialized %d frozen expressions and formed %d training groups\n\n",
			st.Materialized, st.Groups)
	}
	for _, c := range report.Cycles {
		fmt.Printf("cycle %d: %3d labeled images → best %.4f accuracy: %s (%v)\n",
			c.Cycle, c.TrainSize, c.BestAcc, c.BestModel, c.Duration.Round(1e7))
	}
	fmt.Printf("\nwinner: %s (%.4f validation accuracy) in %v total\n",
		report.FinalBest.Model, report.FinalBest.ValAcc, report.Total.Round(1e7))
}
