package core

import (
	"math"

	"nautilus/internal/graph"
	"nautilus/internal/tensor"
)

// EntropyScores computes per-record uncertainty scores for active
// learning's informativeness sampling (Figure 1A): the mean softmax
// entropy of the model's outputs over each record (averaged over positions
// for sequence labelling). Higher means more uncertain.
func EntropyScores(m *graph.Model, inputName string, x *tensor.Tensor, batch int) ([]float64, error) {
	n := x.Dim(0)
	scores := make([]float64, n)
	recSize := x.Len() / n
	shape := append([]int(nil), x.Shape()...)
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		shape[0] = hi - lo
		chunk := tensor.FromSlice(x.Data()[lo*recSize:hi*recSize], shape...)
		tape, err := m.Forward(map[string]*tensor.Tensor{inputName: chunk}, false)
		if err != nil {
			return nil, err
		}
		logits := tape.Output(m.Outputs[0])
		probs := tensor.SoftmaxRows(logits)
		rows := probs.Rows()
		perRecord := rows / (hi - lo)
		for r := 0; r < rows; r++ {
			var h float64
			for _, p := range probs.Row(r) {
				if p > 1e-12 {
					h -= float64(p) * math.Log(float64(p))
				}
			}
			scores[lo+r/perRecord] += h / float64(perRecord)
		}
	}
	return scores, nil
}

// BestModel returns the work item of the named candidate, for scoring the
// unlabeled pool with the previous cycle's winner.
func (ms *ModelSelection) BestModel(name string) (*graph.Model, bool) {
	for _, it := range ms.planner.items {
		if it.Model.Name == name {
			return it.Model, true
		}
	}
	return nil, false
}
