package core

import (
	"testing"

	"nautilus/internal/obs"
	"nautilus/internal/opt"
)

// eq5PerRecord recomputes the plan's per-record costs directly from the
// node-level actions and profiled layer costs — Equation 5 from first
// principles, independent of the Plan accessor methods the trainer meters
// through.
func eq5PerRecord(p *opt.Plan) (trainFLOPs, forwardFLOPs, loadBytes int64) {
	for n, a := range p.Actions {
		layer := p.Prof.Layers[n]
		switch a {
		case opt.Computed:
			trainFLOPs += layer.CompFLOPs
			forwardFLOPs += layer.ForwardFLOPs
		case opt.Loaded:
			if !n.IsInput() {
				loadBytes += layer.OutBytes
			}
		}
	}
	return
}

// TestConformanceMatchesCostModel is the cost-model conformance property:
// after planning and actually executing a workload, the metered compute
// FLOPs must exactly equal the plan's Equation 5 recomputation expanded by
// the records trained, the metered load bytes must exactly equal the
// plan's materialized-read volume, and the replayed live-tensor peak must
// stay under the analytical B_mem estimate the optimizer planned against.
func TestConformanceMatchesCostModel(t *testing.T) {
	for _, approach := range []Approach{Nautilus, MatAll} {
		approach := approach
		t.Run(string(approach), func(t *testing.T) {
			items, mm := tinyWorkload(t)
			cfg := DefaultConfig(t.TempDir())
			cfg.Approach = approach
			cfg.HW = miniHW
			cfg.MaxRecords = 600
			tr := obs.New(nil) // no sink: registry + conformance only
			cfg.Obs = tr
			ms, err := New(items, mm, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer ms.Close()
			for _, snap := range snapshots(t, 2) {
				if _, err := ms.Fit(snap); err != nil {
					t.Fatal(err)
				}
			}

			byName := map[string]*opt.FusedGroup{}
			for _, g := range ms.Groups() {
				byName[g.Name()] = g
			}
			reports := tr.Conformance().Report()
			if len(reports) != len(byName) {
				t.Fatalf("%d conformance groups, want %d", len(reports), len(byName))
			}
			for _, r := range reports {
				g := byName[r.Group]
				if g == nil {
					t.Fatalf("conformance group %q not in plan", r.Group)
				}
				trainFLOPs, forwardFLOPs, loadBytes := eq5PerRecord(g.Plan)
				if r.TrainRecords == 0 {
					t.Fatalf("group %s metered no training records", r.Group)
				}

				wantFLOPs := trainFLOPs*r.TrainRecords + forwardFLOPs*r.ValidRecords
				if r.ActualComputeFLOPs != wantFLOPs {
					t.Errorf("group %s: metered %d FLOPs, Eq. 5 recomputation %d",
						r.Group, r.ActualComputeFLOPs, wantFLOPs)
				}
				wantLoad := loadBytes * (r.TrainRecords + r.ValidRecords)
				if r.ActualLoadBytes != wantLoad {
					t.Errorf("group %s: metered %d load bytes, plan read volume %d",
						r.Group, r.ActualLoadBytes, wantLoad)
				}
				if r.ComputeDelta != 0 || r.LoadDelta != 0 {
					t.Errorf("group %s: nonzero deltas compute=%d load=%d",
						r.Group, r.ComputeDelta, r.LoadDelta)
				}

				// MAT-ALL loads at the frontier, so its plans must actually
				// read materialized bytes for the property to be non-vacuous.
				if approach == MatAll && wantLoad == 0 {
					t.Errorf("group %s: MAT-ALL plan loads nothing", r.Group)
				}

				// Peak-memory replay: the metered live-tensor high-water mark
				// must respect the analytical bound the optimizer planned with.
				if r.ActualPeakMemoryBytes <= 0 {
					t.Errorf("group %s: no peak memory metered", r.Group)
				}
				if r.ActualPeakMemoryBytes > g.PeakMemBytes {
					t.Errorf("group %s: metered peak %d exceeds analytical bound %d",
						r.Group, r.ActualPeakMemoryBytes, g.PeakMemBytes)
				}
			}
		})
	}
}
