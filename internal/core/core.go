// Package core is Nautilus's public-facing system layer (paper Figure 3):
// a model-selection object over a candidate set Q = {(M_i, ϕ_i)} that, per
// data-labeling cycle, (re-)optimizes the workload with the
// materialization and model fusion optimizations, incrementally
// materializes chosen intermediates, trains the optimized plans with one
// optimizer per branch, and reports the best candidate by validation
// accuracy.
//
// The Approach knob also exposes every baseline the paper evaluates
// (Current Practice, MAT-ALL, Nautilus without either optimization), so
// the experiment harness drives all approaches through one code path.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"nautilus/internal/data"
	"nautilus/internal/exec"
	"nautilus/internal/graph"
	"nautilus/internal/mmg"
	"nautilus/internal/obs"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
	"nautilus/internal/storage"
	"nautilus/internal/tensor"
	"nautilus/internal/train"
)

// Approach selects the execution strategy for a workload.
type Approach string

// Approaches evaluated in the paper (Sections 5.1 and 5.3).
const (
	// Nautilus applies both MAT OPT and FUSE OPT.
	Nautilus Approach = "nautilus"
	// CurrentPractice trains unmodified models independently, writing
	// full checkpoints — the naive baseline.
	CurrentPractice Approach = "current_practice"
	// MatAll materializes every materializable layer and always loads at
	// the frontier, regardless of cost.
	MatAll Approach = "mat_all"
	// NautilusNoFuse disables model fusion (Figure 8 ablation).
	NautilusNoFuse Approach = "nautilus_no_fuse"
	// NautilusNoMat disables materialization (Figure 8 ablation).
	NautilusNoMat Approach = "nautilus_no_mat"
)

// Approaches lists every runnable approach.
func Approaches() []Approach {
	return []Approach{CurrentPractice, MatAll, Nautilus, NautilusNoFuse, NautilusNoMat}
}

// Config holds the system configuration (Section 3, API component).
type Config struct {
	Approach Approach
	HW       profile.Hardware
	// DiskBudgetBytes is B_disk (paper default 25 GB).
	DiskBudgetBytes int64
	// MemBudgetBytes is B_mem (paper default 10 GB).
	MemBudgetBytes int64
	// MaxRecords is the initial expected maximum training records r; it
	// grows by exponential backoff (factor 2) when exceeded.
	MaxRecords int
	// Solver is the materialization solver ("bnb" or "milp").
	Solver string
	// Fuser is the fusion strategy ("greedy" — Algorithm 1 — or "enum",
	// the cost-based partition enumeration). Empty means greedy.
	Fuser string
	// FuseStateBudget caps enumerated candidate-group builds per plan for
	// the enum fuser (0 means opt.DefaultFuseStateBudget); buckets that
	// would exceed it degrade to greedy.
	FuseStateBudget int
	// WorkDir hosts the tensor store and checkpoints.
	WorkDir string
	// Seed drives mini-batch shuffling.
	Seed int64
	// Loss defaults to softmax cross-entropy.
	Loss train.Loss
	// PageCacheBytes sizes the tensor store's DRAM row cache (the OS
	// page-cache stand-in, Section 3). 0 disables it.
	PageCacheBytes int64
	// Prefetch overlaps feed assembly with compute during training.
	Prefetch bool
	// Arena recycles step-scoped tensors across mini-batches and
	// materialization chunks through a shared size-class buffer pool,
	// eliminating steady-state allocator traffic on the training hot path.
	// Results are bit-identical either way.
	Arena bool
	// Obs, when set, threads structured tracing, the metrics registry, and
	// the cost-model conformance account through the planner, materializer,
	// trainer, and tensor store. nil (the default) disables all
	// instrumentation at nil-check cost.
	Obs *obs.Tracer
	// CalibrationPath, when non-empty, names a calibration file
	// (profile.Calibration JSON fitted by nautilus-run -calibrate-out);
	// its measured throughputs override HW's static constants before
	// planning, so the cost model runs against this machine rather than the
	// paper's reference hardware.
	CalibrationPath string
	// DriftWarn is the conformance drift-ratio threshold: a group whose
	// actual/predicted time ratio falls outside [1/DriftWarn, DriftWarn] is
	// flagged in the conformance report. <= 1 disables the warning.
	DriftWarn float64
}

// DefaultConfig returns the paper's experimental configuration.
func DefaultConfig(workDir string) Config {
	return Config{
		Approach:        Nautilus,
		HW:              profile.DefaultHardware(),
		DiskBudgetBytes: 25 << 30,
		MemBudgetBytes:  10 << 30,
		MaxRecords:      1000,
		Fuser:           opt.FuserGreedy,
		WorkDir:         workDir,
		Seed:            1,
		Loss:            train.SoftmaxCrossEntropy{},
		PageCacheBytes:  2 << 30,
		Prefetch:        true,
		Arena:           true,
		DriftWarn:       1.5,
	}
}

// InitStats breaks down workload initialization time (Figure 6B's
// "workload initialization" bar).
type InitStats struct {
	OptimizeTime  time.Duration
	MatSolveNodes int
	// Materialized is the chosen |V| and its storage footprint.
	Materialized int
	StorageBytes int64
	// Groups is the number of training groups after fusion.
	Groups int
	// Fuse carries the fusion strategy's search counters for the last
	// (re-)optimization (zero-valued for the singleton approaches).
	Fuse opt.FuseStats
}

// CandidateResult reports one candidate model's outcome for a cycle.
type CandidateResult struct {
	Model   string
	ValAcc  float64
	ValLoss float64
	Item    opt.WorkItem
}

// FitResult reports one model-selection cycle.
type FitResult struct {
	Cycle   int
	Best    CandidateResult
	Results []CandidateResult
	// Duration is the cycle's wall time (training + materialization).
	Duration time.Duration
	// ReOptimized reports whether exponential backoff re-ran the
	// optimizer this cycle.
	ReOptimized bool
}

// ModelSelection is the Nautilus model-selection object. Create one per
// workload, then call Fit once per labeling cycle with the accumulated
// snapshot. Planning state (candidates, r, the current plan) lives in an
// embedded planner session; ModelSelection owns execution: the tensor
// store, the materializer, and the trainer.
type ModelSelection struct {
	cfg     Config
	planner *Planner

	metrics *exec.Metrics
	store   *storage.TensorStore
	trainer *exec.Trainer

	materializer *exec.Materializer
	lastDelta    *PlanDelta
	cycle        int
	arena        *tensor.Arena
}

// New creates a model-selection object for the candidate set. Invalid
// budget/solver configuration is rejected with a typed *ConfigError.
func New(items []opt.WorkItem, mm *mmg.MultiModel, cfg Config) (*ModelSelection, error) {
	if cfg.Loss == nil {
		cfg.Loss = train.SoftmaxCrossEntropy{}
	}
	if cfg.Approach == "" {
		cfg.Approach = Nautilus
	}
	if cfg.CalibrationPath != "" {
		hw, err := profile.LoadHardware(cfg.CalibrationPath, cfg.HW)
		if err != nil {
			return nil, &ConfigError{Field: "CalibrationPath", Reason: err.Error()}
		}
		cfg.HW = hw
	}
	// Hand the planning rates to the conformance account so group reports
	// can compare predicted seconds (FLOPs/rate, bytes/rate) against the
	// wall time the trainer meters.
	cfg.Obs.Conformance().SetRates(cfg.HW.FLOPSThroughput, cfg.HW.DiskThroughput)
	cfg.Obs.Conformance().SetDriftWarn(cfg.DriftWarn)
	planner, err := NewPlanner(items, mm, cfg)
	if err != nil {
		return nil, err
	}
	metrics := exec.NewMetrics()
	store, err := storage.NewTensorStore(filepath.Join(cfg.WorkDir, "store"), metrics.Disk)
	if err != nil {
		return nil, err
	}
	if cfg.PageCacheBytes > 0 {
		store.EnableCache(cfg.PageCacheBytes)
	}
	store.SetObs(cfg.Obs)
	if err := os.MkdirAll(filepath.Join(cfg.WorkDir, "checkpoints"), 0o755); err != nil {
		return nil, err
	}
	if cfg.HW.Workers > 0 {
		tensor.SetMaxWorkers(cfg.HW.Workers)
	}
	var arena *tensor.Arena
	if cfg.Arena {
		arena = tensor.NewArena()
	}
	return &ModelSelection{
		cfg:     cfg,
		planner: planner,
		metrics: metrics,
		store:   store,
		arena:   arena,
		trainer: &exec.Trainer{Store: store, Loss: cfg.Loss, Seed: cfg.Seed, Metrics: metrics, Prefetch: cfg.Prefetch, Arena: arena, Obs: cfg.Obs},
	}, nil
}

// Close releases the tensor store.
func (ms *ModelSelection) Close() error { return ms.store.Close() }

// Metrics exposes accumulated execution accounting.
func (ms *ModelSelection) Metrics() *exec.Metrics { return ms.metrics }

// Planner exposes the planning session (candidates, r, current plan).
func (ms *ModelSelection) Planner() *Planner { return ms.planner }

// InitStats returns the optimizer statistics of the last (re-)optimization.
func (ms *ModelSelection) InitStats() *InitStats {
	if ms.planner.wp == nil {
		return nil
	}
	stats := ms.planner.wp.Stats
	return &stats
}

// Groups exposes the optimized training plan for inspection.
func (ms *ModelSelection) Groups() []*opt.FusedGroup {
	if ms.planner.wp == nil {
		return nil
	}
	return ms.planner.wp.Groups
}

// MaterializedSignatures returns the chosen set V.
func (ms *ModelSelection) MaterializedSignatures() map[graph.Signature]bool {
	if ms.planner.wp == nil {
		return nil
	}
	return ms.planner.wp.MatSigs
}

// LastDelta returns the plan delta of the most recent replan (nil before
// the first Fit): which signatures were kept, newly materialized, and
// garbage-collected, and how much of verification ran incrementally.
func (ms *ModelSelection) LastDelta() *PlanDelta { return ms.lastDelta }

// Fit runs one model-selection cycle on the snapshot: it (re-)optimizes if
// needed (first call, or the exponential backoff limit was crossed),
// incrementally materializes, trains every group, and returns per-candidate
// validation results.
func (ms *ModelSelection) Fit(snap data.Snapshot) (*FitResult, error) {
	//lint:ignore determinism wall-clock measurement of real fit time, reported to the user
	started := time.Now()
	ms.cycle++
	span := ms.cfg.Obs.Start("core/fit",
		obs.Int("cycle", int64(ms.cycle)),
		obs.Int("train_records", int64(snap.TrainSize())))
	defer span.End()
	reopt, err := ms.ensurePlanned(snap.TrainSize())
	if err != nil {
		return nil, err
	}
	span.Attr(obs.Bool("reoptimized", reopt))
	if ms.materializer != nil {
		if err := ms.materializer.SyncSplit(exec.Train, snap.TrainX); err != nil {
			return nil, err
		}
		if err := ms.materializer.SyncSplit(exec.Valid, snap.ValidX); err != nil {
			return nil, err
		}
	}

	// Model selection restarts every candidate from its initial weights.
	for _, it := range ms.planner.items {
		for _, p := range it.Model.TrainableParams() {
			p.Reset()
		}
	}

	res := &FitResult{Cycle: ms.cycle, ReOptimized: reopt}
	for gi, g := range ms.planner.wp.Groups {
		branches, err := ms.trainer.TrainGroup(g, snap)
		if err != nil {
			return nil, err
		}
		for _, b := range branches {
			res.Results = append(res.Results, CandidateResult{
				Model: b.Item.Model.Name, ValAcc: b.ValAcc, ValLoss: b.ValLoss, Item: b.Item,
			})
		}
		ckpt := filepath.Join(ms.cfg.WorkDir, "checkpoints", fmt.Sprintf("cycle%d_group%d.nckp", ms.cycle, gi))
		full := ms.cfg.Approach == CurrentPractice
		if err := ms.trainer.Checkpoint(g, ckpt, full); err != nil {
			return nil, err
		}
	}
	sort.Slice(res.Results, func(i, j int) bool { return res.Results[i].Model < res.Results[j].Model })
	res.Best = bestResult(res.Results)
	//lint:ignore determinism wall-clock measurement of real fit time, reported to the user
	res.Duration = time.Since(started)
	// Mirror the cumulative execution account into the metrics registry, so
	// -metrics output carries the same totals exec.Metrics reports.
	if reg := ms.cfg.Obs.Registry(); reg != nil {
		reg.Gauge("exec.compute_flops").Set(ms.metrics.ComputeFLOPs)
		reg.Gauge("exec.load_bytes").Set(ms.metrics.LoadBytes)
		reg.Gauge("exec.train_steps").Set(int64(ms.metrics.TrainSteps))
		reg.Gauge("exec.wall_ns").Set(ms.metrics.Wall.Nanoseconds())
		if ms.metrics.Disk != nil {
			reg.Gauge("exec.disk_read_bytes").Set(ms.metrics.Disk.BytesRead())
			reg.Gauge("exec.disk_written_bytes").Set(ms.metrics.Disk.BytesWritten())
		}
	}
	return res, nil
}

// WorkloadPlan is the output of PlanWorkload: the optimized (or baseline)
// training plan for a candidate set.
type WorkloadPlan struct {
	Groups  []*opt.FusedGroup
	MatSigs map[graph.Signature]bool
	Stats   InitStats
}

// PlanWorkload produces the training plan for the given approach: the
// materialized set V and the grouped reuse plans. Both the live system
// (ModelSelection) and the paper-scale simulator consume it, so simulated
// experiments replay exactly the decisions the real system makes. It is a
// one-shot front door to the staged planner session (no config validation:
// experiments legitimately sweep degenerate budgets).
func PlanWorkload(items []opt.WorkItem, mm *mmg.MultiModel, cfg Config, maxRecords int) (*WorkloadPlan, error) {
	p := newPlanner(items, mm, cfg)
	p.r = maxRecords
	wp, _, err := p.Replan()
	return wp, err
}

// ensurePlanned reacts to dataset growth and pending evolution events: it
// grows r by exponential backoff (Section 4.2.3), replans if anything is
// dirty, and reconciles on-disk artifacts against the plan delta. Returns
// whether a replan ran.
func (ms *ModelSelection) ensurePlanned(trainSize int) (bool, error) {
	ms.planner.GrowData(trainSize)
	if !ms.planner.NeedsReplan() {
		return false, nil
	}
	wp, delta, err := ms.planner.Replan()
	if err != nil {
		return false, err
	}
	if err := ms.applyPlan(wp, delta); err != nil {
		return false, err
	}
	return true, nil
}

// bestResult picks the cycle winner: highest validation accuracy, ties
// broken deterministically by model name. results must be name-sorted;
// seeding from the first entry keeps Best populated even when every
// candidate scores ValAcc <= 0.
func bestResult(results []CandidateResult) CandidateResult {
	if len(results) == 0 {
		return CandidateResult{}
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.ValAcc > best.ValAcc {
			best = r
		}
	}
	return best
}
