// Package core is Nautilus's public-facing system layer (paper Figure 3):
// a model-selection object over a candidate set Q = {(M_i, ϕ_i)} that, per
// data-labeling cycle, (re-)optimizes the workload with the
// materialization and model fusion optimizations, incrementally
// materializes chosen intermediates, trains the optimized plans with one
// optimizer per branch, and reports the best candidate by validation
// accuracy.
//
// The Approach knob also exposes every baseline the paper evaluates
// (Current Practice, MAT-ALL, Nautilus without either optimization), so
// the experiment harness drives all approaches through one code path.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"nautilus/internal/data"
	"nautilus/internal/exec"
	"nautilus/internal/graph"
	"nautilus/internal/mmg"
	"nautilus/internal/obs"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
	"nautilus/internal/storage"
	"nautilus/internal/train"
	"nautilus/internal/verify"
)

// Approach selects the execution strategy for a workload.
type Approach string

// Approaches evaluated in the paper (Sections 5.1 and 5.3).
const (
	// Nautilus applies both MAT OPT and FUSE OPT.
	Nautilus Approach = "nautilus"
	// CurrentPractice trains unmodified models independently, writing
	// full checkpoints — the naive baseline.
	CurrentPractice Approach = "current_practice"
	// MatAll materializes every materializable layer and always loads at
	// the frontier, regardless of cost.
	MatAll Approach = "mat_all"
	// NautilusNoFuse disables model fusion (Figure 8 ablation).
	NautilusNoFuse Approach = "nautilus_no_fuse"
	// NautilusNoMat disables materialization (Figure 8 ablation).
	NautilusNoMat Approach = "nautilus_no_mat"
)

// Approaches lists every runnable approach.
func Approaches() []Approach {
	return []Approach{CurrentPractice, MatAll, Nautilus, NautilusNoFuse, NautilusNoMat}
}

// Config holds the system configuration (Section 3, API component).
type Config struct {
	Approach Approach
	HW       profile.Hardware
	// DiskBudgetBytes is B_disk (paper default 25 GB).
	DiskBudgetBytes int64
	// MemBudgetBytes is B_mem (paper default 10 GB).
	MemBudgetBytes int64
	// MaxRecords is the initial expected maximum training records r; it
	// grows by exponential backoff (factor 2) when exceeded.
	MaxRecords int
	// Solver is the materialization solver ("bnb" or "milp").
	Solver string
	// WorkDir hosts the tensor store and checkpoints.
	WorkDir string
	// Seed drives mini-batch shuffling.
	Seed int64
	// Loss defaults to softmax cross-entropy.
	Loss train.Loss
	// PageCacheBytes sizes the tensor store's DRAM row cache (the OS
	// page-cache stand-in, Section 3). 0 disables it.
	PageCacheBytes int64
	// Prefetch overlaps feed assembly with compute during training.
	Prefetch bool
	// Obs, when set, threads structured tracing, the metrics registry, and
	// the cost-model conformance account through the planner, materializer,
	// trainer, and tensor store. nil (the default) disables all
	// instrumentation at nil-check cost.
	Obs *obs.Tracer
}

// DefaultConfig returns the paper's experimental configuration.
func DefaultConfig(workDir string) Config {
	return Config{
		Approach:        Nautilus,
		HW:              profile.DefaultHardware(),
		DiskBudgetBytes: 25 << 30,
		MemBudgetBytes:  10 << 30,
		MaxRecords:      1000,
		WorkDir:         workDir,
		Seed:            1,
		Loss:            train.SoftmaxCrossEntropy{},
		PageCacheBytes:  2 << 30,
		Prefetch:        true,
	}
}

// InitStats breaks down workload initialization time (Figure 6B's
// "workload initialization" bar).
type InitStats struct {
	OptimizeTime  time.Duration
	MatSolveNodes int
	// Materialized is the chosen |V| and its storage footprint.
	Materialized int
	StorageBytes int64
	// Groups is the number of training groups after fusion.
	Groups int
}

// CandidateResult reports one candidate model's outcome for a cycle.
type CandidateResult struct {
	Model   string
	ValAcc  float64
	ValLoss float64
	Item    opt.WorkItem
}

// FitResult reports one model-selection cycle.
type FitResult struct {
	Cycle   int
	Best    CandidateResult
	Results []CandidateResult
	// Duration is the cycle's wall time (training + materialization).
	Duration time.Duration
	// ReOptimized reports whether exponential backoff re-ran the
	// optimizer this cycle.
	ReOptimized bool
}

// ModelSelection is the Nautilus model-selection object. Create one per
// workload, then call Fit once per labeling cycle with the accumulated
// snapshot.
type ModelSelection struct {
	cfg   Config
	items []opt.WorkItem
	mm    *mmg.MultiModel

	metrics *exec.Metrics
	store   *storage.TensorStore
	trainer *exec.Trainer

	r            int
	groups       []*opt.FusedGroup
	matSigs      map[graph.Signature]bool
	materializer *exec.Materializer
	init         *InitStats
	cycle        int
}

// New creates a model-selection object for the candidate set.
func New(items []opt.WorkItem, mm *mmg.MultiModel, cfg Config) (*ModelSelection, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("core: empty candidate set")
	}
	if cfg.Loss == nil {
		cfg.Loss = train.SoftmaxCrossEntropy{}
	}
	if cfg.Approach == "" {
		cfg.Approach = Nautilus
	}
	if cfg.MaxRecords <= 0 {
		cfg.MaxRecords = 1000
	}
	metrics := exec.NewMetrics()
	store, err := storage.NewTensorStore(filepath.Join(cfg.WorkDir, "store"), metrics.Disk)
	if err != nil {
		return nil, err
	}
	if cfg.PageCacheBytes > 0 {
		store.EnableCache(cfg.PageCacheBytes)
	}
	store.SetObs(cfg.Obs)
	if err := os.MkdirAll(filepath.Join(cfg.WorkDir, "checkpoints"), 0o755); err != nil {
		return nil, err
	}
	return &ModelSelection{
		cfg:     cfg,
		items:   items,
		mm:      mm,
		metrics: metrics,
		store:   store,
		trainer: &exec.Trainer{Store: store, Loss: cfg.Loss, Seed: cfg.Seed, Metrics: metrics, Prefetch: cfg.Prefetch, Obs: cfg.Obs},
	}, nil
}

// Close releases the tensor store.
func (ms *ModelSelection) Close() error { return ms.store.Close() }

// Metrics exposes accumulated execution accounting.
func (ms *ModelSelection) Metrics() *exec.Metrics { return ms.metrics }

// InitStats returns the optimizer statistics of the last (re-)optimization.
func (ms *ModelSelection) InitStats() *InitStats { return ms.init }

// Groups exposes the optimized training plan for inspection.
func (ms *ModelSelection) Groups() []*opt.FusedGroup { return ms.groups }

// MaterializedSignatures returns the chosen set V.
func (ms *ModelSelection) MaterializedSignatures() map[graph.Signature]bool { return ms.matSigs }

// Fit runs one model-selection cycle on the snapshot: it (re-)optimizes if
// needed (first call, or the exponential backoff limit was crossed),
// incrementally materializes, trains every group, and returns per-candidate
// validation results.
func (ms *ModelSelection) Fit(snap data.Snapshot) (*FitResult, error) {
	//lint:ignore determinism wall-clock measurement of real fit time, reported to the user
	started := time.Now()
	ms.cycle++
	span := ms.cfg.Obs.Start("core/fit",
		obs.Int("cycle", int64(ms.cycle)),
		obs.Int("train_records", int64(snap.TrainSize())))
	defer span.End()
	reopt := false
	if ms.groups == nil || snap.TrainSize() > ms.r {
		if err := ms.optimize(snap.TrainSize()); err != nil {
			return nil, err
		}
		reopt = true
	}
	span.Attr(obs.Bool("reoptimized", reopt))
	if ms.materializer != nil {
		if err := ms.materializer.SyncSplit(exec.Train, snap.TrainX); err != nil {
			return nil, err
		}
		if err := ms.materializer.SyncSplit(exec.Valid, snap.ValidX); err != nil {
			return nil, err
		}
	}

	// Model selection restarts every candidate from its initial weights.
	for _, it := range ms.items {
		for _, p := range it.Model.TrainableParams() {
			p.Reset()
		}
	}

	res := &FitResult{Cycle: ms.cycle, ReOptimized: reopt}
	for gi, g := range ms.groups {
		branches, err := ms.trainer.TrainGroup(g, snap)
		if err != nil {
			return nil, err
		}
		for _, b := range branches {
			res.Results = append(res.Results, CandidateResult{
				Model: b.Item.Model.Name, ValAcc: b.ValAcc, ValLoss: b.ValLoss, Item: b.Item,
			})
		}
		ckpt := filepath.Join(ms.cfg.WorkDir, "checkpoints", fmt.Sprintf("cycle%d_group%d.nckp", ms.cycle, gi))
		full := ms.cfg.Approach == CurrentPractice
		if err := ms.trainer.Checkpoint(g, ckpt, full); err != nil {
			return nil, err
		}
	}
	sort.Slice(res.Results, func(i, j int) bool { return res.Results[i].Model < res.Results[j].Model })
	for _, r := range res.Results {
		if r.ValAcc > res.Best.ValAcc {
			res.Best = r
		}
	}
	//lint:ignore determinism wall-clock measurement of real fit time, reported to the user
	res.Duration = time.Since(started)
	// Mirror the cumulative execution account into the metrics registry, so
	// -metrics output carries the same totals exec.Metrics reports.
	if reg := ms.cfg.Obs.Registry(); reg != nil {
		reg.Gauge("exec.compute_flops").Set(ms.metrics.ComputeFLOPs)
		reg.Gauge("exec.load_bytes").Set(ms.metrics.LoadBytes)
		reg.Gauge("exec.train_steps").Set(int64(ms.metrics.TrainSteps))
		reg.Gauge("exec.wall_ns").Set(ms.metrics.Wall.Nanoseconds())
		if ms.metrics.Disk != nil {
			reg.Gauge("exec.disk_read_bytes").Set(ms.metrics.Disk.BytesRead())
			reg.Gauge("exec.disk_written_bytes").Set(ms.metrics.Disk.BytesWritten())
		}
	}
	return res, nil
}

// WorkloadPlan is the output of PlanWorkload: the optimized (or baseline)
// training plan for a candidate set.
type WorkloadPlan struct {
	Groups  []*opt.FusedGroup
	MatSigs map[graph.Signature]bool
	Stats   InitStats
}

// PlanWorkload produces the training plan for the given approach: the
// materialized set V and the grouped reuse plans. Both the live system
// (ModelSelection) and the paper-scale simulator consume it, so simulated
// experiments replay exactly the decisions the real system makes.
func PlanWorkload(items []opt.WorkItem, mm *mmg.MultiModel, cfg Config, maxRecords int) (*WorkloadPlan, error) {
	//lint:ignore determinism wall-clock measurement of optimizer solve time, reported in Stats
	start := time.Now()
	span := cfg.Obs.Start("plan/workload",
		obs.Str("approach", string(cfg.Approach)),
		obs.Int("models", int64(len(items))),
		obs.Int("max_records", int64(maxRecords)))
	defer span.End()
	wp := &WorkloadPlan{MatSigs: map[graph.Signature]bool{}}

	switch cfg.Approach {
	case CurrentPractice:
		groups, err := singletonGroups(items, opt.CurrentPracticePlan)
		if err != nil {
			return nil, err
		}
		wp.Groups = groups
	case MatAll:
		for _, n := range mm.MaterializableNodes() {
			wp.MatSigs[mm.Sig[n]] = true
		}
		groups, err := singletonGroups(items, opt.ForcedLoadPlan)
		if err != nil {
			return nil, err
		}
		wp.Groups = groups
	case Nautilus, NautilusNoFuse, NautilusNoMat:
		if cfg.Approach != NautilusNoMat {
			matCfg := opt.MatConfig{
				DiskBudgetBytes: cfg.DiskBudgetBytes,
				MaxRecords:      maxRecords,
				Solver:          cfg.Solver,
			}
			ms := span.Child("plan/mat_opt", obs.Str("solver", cfg.Solver))
			matRes, err := opt.OptimizeMaterialization(mm, items, matCfg)
			if err != nil {
				ms.End()
				return nil, err
			}
			ms.Attr(obs.Int("nodes_explored", int64(matRes.NodesExplored)),
				obs.Int("materialized", int64(len(matRes.Materialized))),
				obs.Int("storage_bytes", matRes.StorageBytes))
			ms.End()
			vs := span.Child("plan/mat_verify")
			err = verify.MatResult(matRes, items, matCfg)
			vs.End()
			if err != nil {
				return nil, fmt.Errorf("core: materialization plan rejected: %w", err)
			}
			wp.MatSigs = matRes.Sigs
			wp.Stats.Materialized = len(matRes.Materialized)
			wp.Stats.StorageBytes = matRes.StorageBytes
			wp.Stats.MatSolveNodes = matRes.NodesExplored
		}
		if cfg.Approach == NautilusNoFuse {
			sigs := wp.MatSigs
			groups, err := singletonGroups(items, func(prof *profile.ModelProfile) *opt.Plan {
				plan, err := opt.SolveReusePlan(prof, sigs)
				if err != nil {
					panic(err) // profile is valid by construction
				}
				return plan
			})
			if err != nil {
				return nil, err
			}
			wp.Groups = groups
		} else {
			fs := span.Child("plan/fuse_opt")
			var fuseStats opt.FuseStats
			groups, err := opt.FuseModels(items, wp.MatSigs, opt.FuseConfig{
				MemBudgetBytes:     cfg.MemBudgetBytes,
				OptimizerSlotBytes: 2, // Adam
				Stats:              &fuseStats,
			})
			fs.Attr(obs.Int("rounds", int64(fuseStats.Rounds)),
				obs.Int("pairs_evaluated", int64(fuseStats.PairsEvaluated)),
				obs.Int("pairs_rejected", int64(fuseStats.PairsRejected)))
			fs.End()
			if err != nil {
				return nil, err
			}
			wp.Groups = groups
		}
	default:
		return nil, fmt.Errorf("core: unknown approach %q", cfg.Approach)
	}
	// Static plan verification: reject illegal solver output before anything
	// trains or touches storage. Only fused approaches planned against B_mem.
	var memBudget int64
	if cfg.Approach == Nautilus || cfg.Approach == NautilusNoMat {
		memBudget = cfg.MemBudgetBytes
	}
	gs := span.Child("plan/verify", obs.Int("groups", int64(len(wp.Groups))))
	err := verify.Groups(wp.Groups, items, memBudget, wp.MatSigs)
	gs.End()
	if err != nil {
		return nil, fmt.Errorf("core: training plan rejected: %w", err)
	}
	//lint:ignore determinism wall-clock measurement of optimizer solve time, reported in Stats
	wp.Stats.OptimizeTime = time.Since(start)
	wp.Stats.Groups = len(wp.Groups)
	return wp, nil
}

// optimize (re-)runs the workload optimization for the configured
// approach, growing r by exponential backoff until it covers trainSize
// (Section 4.2.3).
func (ms *ModelSelection) optimize(trainSize int) error {
	if ms.r == 0 {
		ms.r = ms.cfg.MaxRecords
	}
	for ms.r < trainSize {
		ms.r *= 2
	}
	wp, err := PlanWorkload(ms.items, ms.mm, ms.cfg, ms.r)
	if err != nil {
		return err
	}
	ms.groups = wp.Groups
	ms.matSigs = wp.MatSigs

	// Rebuild the materializer for the (possibly changed) set V.
	if ms.materializer != nil {
		if err := ms.materializer.Reset(); err != nil {
			return err
		}
		ms.materializer = nil
	}
	if len(ms.matSigs) > 0 {
		mz, err := exec.NewMaterializer(ms.store, ms.mm, ms.matSigs)
		if err != nil {
			return err
		}
		if mz != nil {
			mz.Obs = ms.cfg.Obs
		}
		ms.materializer = mz
	}
	stats := wp.Stats
	ms.init = &stats
	return nil
}

// singletonGroups wraps every item as its own group with the given plan
// builder applied to the item's (single-model) merged graph.
func singletonGroups(items []opt.WorkItem, planFor func(*profile.ModelProfile) *opt.Plan) ([]*opt.FusedGroup, error) {
	var groups []*opt.FusedGroup
	for _, it := range items {
		m, err := mmg.Build(it.Model)
		if err != nil {
			return nil, err
		}
		prof, err := profile.Profile(m.Graph, it.Prof.HW)
		if err != nil {
			return nil, err
		}
		plan := planFor(prof)
		// Baseline groups aren't planned against B_mem, but the conformance
		// report still wants the analytical estimate as the peak-memory
		// reference, so compute it here like FuseModels does.
		mem := opt.EstimatePeakMemory(plan, it.BatchSize, 2)
		groups = append(groups, &opt.FusedGroup{
			Items:        []opt.WorkItem{it},
			MM:           m,
			Plan:         plan,
			PeakMemBytes: mem.Total(),
		})
	}
	return groups, nil
}
