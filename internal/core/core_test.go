package core

import (
	"fmt"
	"math"
	"testing"

	"nautilus/internal/data"
	"nautilus/internal/graph"
	"nautilus/internal/mmg"
	"nautilus/internal/models"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
)

// miniHW: see opt tests — disk fast enough that materialization pays off
// at mini model sizes.
var miniHW = profile.Hardware{FLOPSThroughput: 6e12, DiskThroughput: 6e10, WorkspaceBytes: 1 << 28}

// tinyWorkload builds a 4-model feature-transfer candidate set (2 shared
// strategies × 2 learning rates) for fast end-to-end tests.
func tinyWorkload(t *testing.T) ([]opt.WorkItem, *mmg.MultiModel) {
	t.Helper()
	hub := models.NewBERTHub(models.BERTMini())
	strats := []models.FeatureStrategy{models.FeatLastHidden, models.FeatConcatLast4}
	var items []opt.WorkItem
	var ms []*graph.Model
	i := 0
	for _, strat := range strats {
		for _, lr := range []float64{5e-3, 2e-3} {
			m, err := hub.FeatureTransferModel(fmt.Sprintf("t%d", i), strat, 9, int64(800+i))
			if err != nil {
				t.Fatal(err)
			}
			prof, err := profile.Profile(m, miniHW)
			if err != nil {
				t.Fatal(err)
			}
			items = append(items, opt.WorkItem{Model: m, Prof: prof, Epochs: 2, BatchSize: 8, LR: lr})
			ms = append(ms, m)
			i++
		}
	}
	mm, err := mmg.Build(ms...)
	if err != nil {
		t.Fatal(err)
	}
	return items, mm
}

func snapshots(t *testing.T, cycles int) []data.Snapshot {
	t.Helper()
	pool := data.SynthNER(data.NERConfig{Records: 600, Seq: 12, Vocab: 1024, Types: 4, Seed: 77})
	lab := data.NewLabeler(pool, 50, 40)
	var out []data.Snapshot
	for i := 0; i < cycles; i++ {
		snap, _, _ := lab.NextCycle()
		out = append(out, snap)
	}
	return out
}

func newMS(t *testing.T, approach Approach) *ModelSelection {
	t.Helper()
	items, mm := tinyWorkload(t)
	cfg := DefaultConfig(t.TempDir())
	cfg.Approach = approach
	cfg.HW = miniHW
	cfg.MaxRecords = 600
	ms, err := New(items, mm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	return ms
}

func TestAllApproachesRunEndToEnd(t *testing.T) {
	snaps := snapshots(t, 2)
	for _, approach := range Approaches() {
		approach := approach
		t.Run(string(approach), func(t *testing.T) {
			ms := newMS(t, approach)
			for _, snap := range snaps {
				res, err := ms.Fit(snap)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Results) != 4 {
					t.Fatalf("%d results, want 4", len(res.Results))
				}
				if res.Best.Model == "" || res.Best.ValAcc <= 0 {
					t.Errorf("no best candidate selected: %+v", res.Best)
				}
				for _, r := range res.Results {
					if r.ValAcc < 0 || r.ValAcc > 1 {
						t.Errorf("accuracy %v out of range", r.ValAcc)
					}
				}
			}
		})
	}
}

func TestApproachesAgreeOnAccuracy(t *testing.T) {
	// Section 5.2: all approaches perform logically equivalent SGD, so
	// per-candidate accuracies must match across approaches.
	snaps := snapshots(t, 2)
	accs := map[Approach]map[string]float64{}
	for _, approach := range []Approach{CurrentPractice, Nautilus, MatAll} {
		ms := newMS(t, approach)
		var last *FitResult
		for _, snap := range snaps {
			var err error
			last, err = ms.Fit(snap)
			if err != nil {
				t.Fatal(err)
			}
		}
		m := map[string]float64{}
		for _, r := range last.Results {
			m[r.Model] = r.ValAcc
		}
		accs[approach] = m
	}
	for model, cp := range accs[CurrentPractice] {
		for _, other := range []Approach{Nautilus, MatAll} {
			if diff := math.Abs(cp - accs[other][model]); diff > 0.03 {
				t.Errorf("%s on %s differs from current practice by %.4f", other, model, diff)
			}
		}
	}
}

func TestNautilusComputesLessThanCurrentPractice(t *testing.T) {
	snaps := snapshots(t, 2)
	flops := map[Approach]int64{}
	for _, approach := range []Approach{CurrentPractice, Nautilus} {
		ms := newMS(t, approach)
		for _, snap := range snaps {
			if _, err := ms.Fit(snap); err != nil {
				t.Fatal(err)
			}
		}
		flops[approach] = ms.Metrics().ComputeFLOPs
	}
	if flops[Nautilus] >= flops[CurrentPractice] {
		t.Errorf("nautilus compute %d not below current practice %d", flops[Nautilus], flops[CurrentPractice])
	}
}

func TestNautilusWritesLessCheckpointDataThanCurrentPractice(t *testing.T) {
	// Figure 11: Current Practice checkpoints entire models (frozen
	// weights included); Nautilus checkpoints pruned plan graphs with
	// trainable weights only.
	snaps := snapshots(t, 1)
	written := map[Approach]int64{}
	for _, approach := range []Approach{CurrentPractice, Nautilus} {
		ms := newMS(t, approach)
		if _, err := ms.Fit(snaps[0]); err != nil {
			t.Fatal(err)
		}
		written[approach] = ms.Metrics().Disk.BytesWritten()
	}
	// Nautilus also writes materialized features once, but its checkpoint
	// savings dominate across even a single cycle at these sizes.
	if written[Nautilus] >= written[CurrentPractice] {
		t.Errorf("nautilus wrote %d bytes, current practice %d", written[Nautilus], written[CurrentPractice])
	}
}

func TestExponentialBackoffReOptimizes(t *testing.T) {
	items, mm := tinyWorkload(t)
	cfg := DefaultConfig(t.TempDir())
	cfg.HW = miniHW
	cfg.MaxRecords = 50 // force backoff after the first cycle
	ms, err := New(items, mm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	snaps := snapshots(t, 3)
	res1, err := ms.Fit(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res1.ReOptimized {
		t.Error("first cycle must optimize")
	}
	// Cycle 2: 80 records > 50 → r doubles to 100 → re-optimize.
	res2, err := ms.Fit(snaps[1])
	if err != nil {
		t.Fatal(err)
	}
	if !res2.ReOptimized {
		t.Error("crossing r must trigger re-optimization")
	}
	// Cycle 3: 120 records > 100 → again.
	res3, err := ms.Fit(snaps[2])
	if err != nil {
		t.Fatal(err)
	}
	if !res3.ReOptimized {
		t.Error("second crossing must trigger re-optimization")
	}
}

func TestNoBackoffWhenRecordsCovered(t *testing.T) {
	ms := newMS(t, Nautilus) // MaxRecords 600 covers everything
	snaps := snapshots(t, 2)
	if _, err := ms.Fit(snaps[0]); err != nil {
		t.Fatal(err)
	}
	res, err := ms.Fit(snaps[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.ReOptimized {
		t.Error("no re-optimization expected while r covers the snapshot")
	}
}

func TestInitStatsPopulated(t *testing.T) {
	ms := newMS(t, Nautilus)
	snaps := snapshots(t, 1)
	if _, err := ms.Fit(snaps[0]); err != nil {
		t.Fatal(err)
	}
	st := ms.InitStats()
	if st == nil || st.Groups == 0 {
		t.Fatal("init stats missing")
	}
	if st.Materialized == 0 {
		t.Error("expected materialization at mini hardware ratios")
	}
	if st.OptimizeTime <= 0 {
		t.Error("optimize time not measured")
	}
}

func TestEmptyCandidateSetRejected(t *testing.T) {
	if _, err := New(nil, nil, DefaultConfig(t.TempDir())); err == nil {
		t.Error("empty candidate set should error")
	}
}

func TestUnknownApproachRejected(t *testing.T) {
	items, mm := tinyWorkload(t)
	cfg := DefaultConfig(t.TempDir())
	cfg.Approach = "bogus"
	cfg.HW = miniHW
	ms, err := New(items, mm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	if _, err := ms.Fit(snapshots(t, 1)[0]); err == nil {
		t.Error("unknown approach should fail at Fit")
	}
}
