package core

import (
	"fmt"
	"sort"

	"nautilus/internal/data"
	"nautilus/internal/exec"
	"nautilus/internal/opt"
)

// HalvingConfig parameterizes successive halving, one of the "more complex
// model selection procedures" the paper defers to future work (Section 6).
// Rung r trains every surviving candidate for RungEpochs[r] epochs from its
// initial weights, then keeps the top half by validation accuracy.
type HalvingConfig struct {
	// RungEpochs lists the per-rung epoch budgets, e.g. {1, 2, 5}. The
	// final rung's survivors are ranked for the cycle's result.
	RungEpochs []int
	// Keep is the survival fraction per rung (default 0.5).
	Keep float64
}

// HalvingResult reports one successive-halving cycle.
type HalvingResult struct {
	FitResult
	// RungSurvivors records how many candidates entered each rung.
	RungSurvivors []int
	// TotalEpochsTrained sums candidate×epoch across rungs, the budget
	// halving saves relative to full-epoch training of every candidate.
	TotalEpochsTrained int
}

// FitHalving runs one model-selection cycle under successive halving: each
// rung re-plans (and re-fuses) just the surviving candidates, so fusion
// groups shrink with the field. Materialized artifacts are shared across
// rungs.
func (ms *ModelSelection) FitHalving(snap data.Snapshot, cfg HalvingConfig) (*HalvingResult, error) {
	if len(cfg.RungEpochs) == 0 {
		return nil, fmt.Errorf("core: halving needs at least one rung")
	}
	keep := cfg.Keep
	if keep <= 0 || keep >= 1 {
		keep = 0.5
	}
	ms.cycle++
	// Ensure materialization is in place (same path as Fit).
	if _, err := ms.ensurePlanned(snap.TrainSize()); err != nil {
		return nil, err
	}
	if ms.materializer != nil {
		if err := ms.materializer.SyncSplit(exec.Train, snap.TrainX); err != nil {
			return nil, err
		}
		if err := ms.materializer.SyncSplit(exec.Valid, snap.ValidX); err != nil {
			return nil, err
		}
	}

	res := &HalvingResult{}
	res.Cycle = ms.cycle
	survivors := append([]opt.WorkItem(nil), ms.planner.items...)

	for rung, epochs := range cfg.RungEpochs {
		res.RungSurvivors = append(res.RungSurvivors, len(survivors))
		res.TotalEpochsTrained += epochs * len(survivors)

		// Fresh start per rung: reset weights, override the epoch budget.
		rungItems := make([]opt.WorkItem, len(survivors))
		for i, it := range survivors {
			for _, p := range it.Model.TrainableParams() {
				p.Reset()
			}
			it.Epochs = epochs
			rungItems[i] = it
		}
		fuser, err := opt.NewFuser(ms.cfg.Fuser, ms.cfg.FuseStateBudget)
		if err != nil {
			return nil, err
		}
		groups, err := fuser.Fuse(rungItems, ms.MaterializedSignatures(), opt.FuseConfig{
			MemBudgetBytes:     ms.cfg.MemBudgetBytes,
			OptimizerSlotBytes: 2,
		})
		if err != nil {
			return nil, err
		}
		var rungResults []CandidateResult
		for _, g := range groups {
			branches, err := ms.trainer.TrainGroup(g, snap)
			if err != nil {
				return nil, err
			}
			for _, b := range branches {
				rungResults = append(rungResults, CandidateResult{
					Model: b.Item.Model.Name, ValAcc: b.ValAcc, ValLoss: b.ValLoss, Item: b.Item,
				})
			}
		}
		sort.Slice(rungResults, func(i, j int) bool {
			//lint:ignore floateq deterministic tie-break requires exact equality of reported scores
			if rungResults[i].ValAcc != rungResults[j].ValAcc {
				return rungResults[i].ValAcc > rungResults[j].ValAcc
			}
			return rungResults[i].Model < rungResults[j].Model
		})

		if rung == len(cfg.RungEpochs)-1 {
			res.Results = rungResults
			res.Best = rungResults[0]
			break
		}
		n := int(float64(len(rungResults)) * keep)
		if n < 1 {
			n = 1
		}
		kept := map[string]bool{}
		for _, r := range rungResults[:n] {
			kept[r.Model] = true
		}
		var next []opt.WorkItem
		for _, it := range survivors {
			if kept[it.Model.Name] {
				next = append(next, it)
			}
		}
		survivors = next
	}
	return res, nil
}
