package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"nautilus/internal/exec"
	"nautilus/internal/graph"
	"nautilus/internal/mmg"
	"nautilus/internal/obs"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
	"nautilus/internal/verify"
)

// ConfigError reports an invalid Config field at construction time, before
// the bad value can fail obscurely deep inside a solver.
type ConfigError struct {
	// Field is the Config field name.
	Field string
	// Reason explains the rejection.
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("core: invalid config: %s %s", e.Field, e.Reason)
}

// validateConfig rejects Config values the planner cannot run with. The
// Approach field is deliberately not checked here: baselines and tests
// construct objects with approaches resolved at plan time, and an unknown
// approach fails the first Replan instead.
func validateConfig(cfg Config) error {
	if cfg.DiskBudgetBytes <= 0 {
		return &ConfigError{Field: "DiskBudgetBytes", Reason: fmt.Sprintf("must be positive (B_disk), got %d", cfg.DiskBudgetBytes)}
	}
	if cfg.MemBudgetBytes <= 0 {
		return &ConfigError{Field: "MemBudgetBytes", Reason: fmt.Sprintf("must be positive (B_mem), got %d", cfg.MemBudgetBytes)}
	}
	if cfg.MaxRecords <= 0 {
		return &ConfigError{Field: "MaxRecords", Reason: fmt.Sprintf("must be positive (initial r), got %d", cfg.MaxRecords)}
	}
	switch cfg.Solver {
	case "", "bnb", "milp":
	default:
		return &ConfigError{Field: "Solver", Reason: fmt.Sprintf("unknown solver %q (want \"bnb\" or \"milp\")", cfg.Solver)}
	}
	if cfg.FuseStateBudget < 0 {
		return &ConfigError{Field: "FuseStateBudget", Reason: fmt.Sprintf("must be non-negative (0 = default), got %d", cfg.FuseStateBudget)}
	}
	if _, err := opt.NewFuser(cfg.Fuser, cfg.FuseStateBudget); err != nil {
		return &ConfigError{Field: "Fuser", Reason: fmt.Sprintf("unknown fuser %q (want %q or %q)", cfg.Fuser, opt.FuserGreedy, opt.FuserEnum)}
	}
	return nil
}

// PlanDelta describes how one replan changed the materialized set V
// relative to the previous plan: which signatures survive (their on-disk
// artifacts are reused as-is), which are new (materialized from row zero),
// and which are orphaned (garbage-collected). Signature slices are sorted.
type PlanDelta struct {
	Kept     []graph.Signature
	New      []graph.Signature
	Orphaned []graph.Signature
	// GroupsTotal and GroupsChecked report incremental verification work:
	// of GroupsTotal groups in the new plan, only GroupsChecked were
	// re-verified (the rest were fingerprint-identical to already-verified
	// groups).
	GroupsTotal   int
	GroupsChecked int
	// DeletedKeys and FreedBytes report the artifact GC that applied this
	// delta (zero until the delta is applied to a store).
	DeletedKeys []string
	FreedBytes  int64
}

// Planner is the planning session behind a model-selection workload: it
// owns the candidate set, the expected-maximum record count r, and the
// current WorkloadPlan, and reacts to evolution events — GrowData,
// AddCandidates, RemoveCandidate — by marking the plan dirty and, on the
// next Replan, computing a plan delta against the previous plan instead of
// rebuilding the world. Verification is memoized across replans: groups
// whose reuse plan is unchanged are not re-checked.
//
// A Planner is not safe for concurrent use; ModelSelection drives one per
// workload.
type Planner struct {
	cfg   Config
	items []opt.WorkItem
	mm    *mmg.MultiModel

	r     int
	wp    *WorkloadPlan
	dirty bool
	// verified memoizes group fingerprints already verified under this
	// config's budgets (see verify.GroupsIncremental).
	verified map[string]bool
}

// NewPlanner creates a planning session for the candidate set, validating
// the configuration (typed *ConfigError on rejection).
func NewPlanner(items []opt.WorkItem, mm *mmg.MultiModel, cfg Config) (*Planner, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("core: empty candidate set")
	}
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	return newPlanner(items, mm, cfg), nil
}

// newPlanner skips config validation — the PlanWorkload compatibility path,
// where experiments legitimately sweep degenerate budgets (e.g. B_disk 0
// meaning unlimited in Figure 10's sweep).
func newPlanner(items []opt.WorkItem, mm *mmg.MultiModel, cfg Config) *Planner {
	return &Planner{cfg: cfg, items: items, mm: mm, verified: map[string]bool{}}
}

// Items returns the current candidate set.
func (p *Planner) Items() []opt.WorkItem { return p.items }

// MultiModel returns the current merged multi-model graph.
func (p *Planner) MultiModel() *mmg.MultiModel { return p.mm }

// MaxRecords returns the current expected-maximum record count r.
func (p *Planner) MaxRecords() int { return p.r }

// Plan returns the current workload plan (nil before the first Replan).
func (p *Planner) Plan() *WorkloadPlan { return p.wp }

// NeedsReplan reports whether an evolution event invalidated the current
// plan (or no plan exists yet).
func (p *Planner) NeedsReplan() bool { return p.wp == nil || p.dirty }

// GrowData reacts to dataset growth (Section 4.2.3): when trainSize exceeds
// the planned-for r, r doubles (exponential backoff) until it covers the
// data and the plan is marked dirty. Returns whether r grew.
func (p *Planner) GrowData(trainSize int) bool {
	if p.r == 0 {
		p.r = p.cfg.MaxRecords
	}
	grew := false
	for p.r < trainSize {
		p.r *= 2
		grew = true
	}
	if grew {
		p.dirty = true
	}
	return grew
}

// AddCandidates grows the workload with new candidates mid-run (the
// "evolving model selection workloads" extension of Section 7). Every new
// candidate's model is statically verified first; a malformed model rejects
// the whole evolution with a typed *verify.PlanError (errors.As) and leaves
// the session unchanged.
func (p *Planner) AddCandidates(items ...opt.WorkItem) error {
	if len(items) == 0 {
		return nil
	}
	for _, it := range items {
		if err := verify.Model(it.Model); err != nil {
			return fmt.Errorf("core: candidate %q rejected: %w", it.Model.Name, err)
		}
	}
	return p.setItems(append(append([]opt.WorkItem(nil), p.items...), items...))
}

// RemoveCandidate drops a candidate by model name.
func (p *Planner) RemoveCandidate(name string) error {
	var next []opt.WorkItem
	found := false
	for _, it := range p.items {
		if it.Model.Name == name {
			found = true
			continue
		}
		next = append(next, it)
	}
	if !found {
		return fmt.Errorf("core: no candidate named %q", name)
	}
	if len(next) == 0 {
		return fmt.Errorf("core: removing %q would empty the workload", name)
	}
	return p.setItems(next)
}

// setItems swaps the candidate set, rebuilds the merged graph eagerly (so
// graph-level conflicts surface at the evolution event, not the next Fit),
// and marks the plan dirty.
func (p *Planner) setItems(items []opt.WorkItem) error {
	models := make([]*graph.Model, len(items))
	for i, it := range items {
		models[i] = it.Model
	}
	multi, err := mmg.Build(models...)
	if err != nil {
		return err
	}
	p.items = items
	p.mm = multi
	p.dirty = true
	return nil
}

// Replan computes a fresh WorkloadPlan through the staged pipeline —
// materialization solve, grouping (fusion or singleton), incremental
// verification — and returns it with the delta against the previous plan.
// On success the plan becomes current and the dirty flag clears; on error
// the previous plan stays in place.
func (p *Planner) Replan() (*WorkloadPlan, *PlanDelta, error) {
	switch p.cfg.Approach {
	case CurrentPractice, MatAll, Nautilus, NautilusNoFuse, NautilusNoMat:
	default:
		return nil, nil, fmt.Errorf("core: unknown approach %q", p.cfg.Approach)
	}
	//lint:ignore determinism wall-clock measurement of optimizer solve time, reported in Stats
	start := time.Now()
	span := p.cfg.Obs.Start("plan/workload",
		obs.Str("approach", string(p.cfg.Approach)),
		obs.Int("models", int64(len(p.items))),
		obs.Int("max_records", int64(p.r)))
	defer span.End()

	wp := &WorkloadPlan{MatSigs: map[graph.Signature]bool{}}
	if err := p.stageMatSigs(span, wp); err != nil {
		return nil, nil, err
	}
	if err := p.stageGroups(span, wp); err != nil {
		return nil, nil, err
	}
	checked, err := p.stageVerify(span, wp)
	if err != nil {
		return nil, nil, err
	}
	//lint:ignore determinism wall-clock measurement of optimizer solve time, reported in Stats
	wp.Stats.OptimizeTime = time.Since(start)
	wp.Stats.Groups = len(wp.Groups)

	delta := diffPlans(p.wp, wp)
	delta.GroupsTotal = len(wp.Groups)
	delta.GroupsChecked = checked
	span.Attr(obs.Int("kept", int64(len(delta.Kept))),
		obs.Int("new", int64(len(delta.New))),
		obs.Int("orphaned", int64(len(delta.Orphaned))))
	p.wp = wp
	p.dirty = false
	return wp, delta, nil
}

// stageMatSigs runs the materialization stage: solve for the chosen set V
// (Section 4.2) and statically verify the solver's output.
func (p *Planner) stageMatSigs(span *obs.Span, wp *WorkloadPlan) error {
	switch p.cfg.Approach {
	case CurrentPractice, NautilusNoMat:
		return nil // nothing materialized
	case MatAll:
		for _, n := range p.mm.MaterializableNodes() {
			wp.MatSigs[p.mm.Sig[n]] = true
		}
		return nil
	}
	matCfg := opt.MatConfig{
		DiskBudgetBytes: p.cfg.DiskBudgetBytes,
		MaxRecords:      p.r,
		Solver:          p.cfg.Solver,
	}
	ms := span.Child("plan/mat_opt", obs.Str("solver", p.cfg.Solver))
	matRes, err := opt.OptimizeMaterialization(p.mm, p.items, matCfg)
	if err != nil {
		ms.End()
		return err
	}
	ms.Attr(obs.Int("nodes_explored", int64(matRes.NodesExplored)),
		obs.Int("materialized", int64(len(matRes.Materialized))),
		obs.Int("storage_bytes", matRes.StorageBytes))
	ms.End()
	vs := span.Child("plan/mat_verify")
	err = verify.MatResult(matRes, p.items, matCfg)
	vs.End()
	if err != nil {
		return fmt.Errorf("core: materialization plan rejected: %w", err)
	}
	wp.MatSigs = matRes.Sigs
	wp.Stats.Materialized = len(matRes.Materialized)
	wp.Stats.StorageBytes = matRes.StorageBytes
	wp.Stats.MatSolveNodes = matRes.NodesExplored
	return nil
}

// stageGroups runs the grouping stage: model fusion (Algorithm 1) for the
// fused approaches, parallel singleton construction for the rest.
func (p *Planner) stageGroups(span *obs.Span, wp *WorkloadPlan) error {
	switch p.cfg.Approach {
	case CurrentPractice:
		groups, err := singletonGroups(p.items, func(prof *profile.ModelProfile) (*opt.Plan, error) {
			return opt.CurrentPracticePlan(prof), nil
		})
		if err != nil {
			return err
		}
		wp.Groups = groups
		return nil
	case MatAll:
		groups, err := singletonGroups(p.items, func(prof *profile.ModelProfile) (*opt.Plan, error) {
			return opt.ForcedLoadPlan(prof), nil
		})
		if err != nil {
			return err
		}
		wp.Groups = groups
		return nil
	case NautilusNoFuse:
		sigs := wp.MatSigs
		groups, err := singletonGroups(p.items, func(prof *profile.ModelProfile) (*opt.Plan, error) {
			return opt.SolveReusePlan(prof, sigs)
		})
		if err != nil {
			return err
		}
		wp.Groups = groups
		return nil
	}
	fuser, err := opt.NewFuser(p.cfg.Fuser, p.cfg.FuseStateBudget)
	if err != nil {
		return err
	}
	fs := span.Child("plan/fuse_opt", obs.Str("fuser", fuser.Name()))
	var fuseStats opt.FuseStats
	groups, err := fuser.Fuse(p.items, wp.MatSigs, opt.FuseConfig{
		MemBudgetBytes:     p.cfg.MemBudgetBytes,
		OptimizerSlotBytes: 2, // Adam
		Stats:              &fuseStats,
	})
	fs.Attr(obs.Int("rounds", int64(fuseStats.Rounds)),
		obs.Int("pairs_evaluated", int64(fuseStats.PairsEvaluated)),
		obs.Int("pairs_rejected", int64(fuseStats.PairsRejected)),
		obs.Int("states_explored", int64(fuseStats.StatesExplored)),
		obs.Int("memo_hits", int64(fuseStats.MemoHits)),
		obs.Int("bound_prunings", int64(fuseStats.BoundPrunings)),
		obs.Int("fallbacks", int64(fuseStats.Fallbacks)))
	fs.End()
	if err != nil {
		return err
	}
	wp.Groups = groups
	wp.Stats.Fuse = fuseStats
	return nil
}

// stageVerify statically verifies the training plan, re-checking only
// groups not already verified under this session (incremental across
// evolution events). It returns how many groups were actually checked.
func (p *Planner) stageVerify(span *obs.Span, wp *WorkloadPlan) (int, error) {
	// Only fused approaches planned against B_mem.
	var memBudget int64
	if p.cfg.Approach == Nautilus || p.cfg.Approach == NautilusNoMat {
		memBudget = p.cfg.MemBudgetBytes
	}
	gs := span.Child("plan/verify", obs.Int("groups", int64(len(wp.Groups))))
	checked, err := verify.GroupsIncremental(wp.Groups, p.items, memBudget, wp.MatSigs, p.verified)
	gs.Attr(obs.Int("groups_checked", int64(checked)),
		obs.Int("groups_skipped", int64(len(wp.Groups)-checked)))
	gs.End()
	if err != nil {
		return checked, fmt.Errorf("core: training plan rejected: %w", err)
	}
	return checked, nil
}

// diffPlans computes the V-delta from old to new (old may be nil: first
// plan, everything is new).
func diffPlans(old, new_ *WorkloadPlan) *PlanDelta {
	d := &PlanDelta{}
	var oldSigs map[graph.Signature]bool
	if old != nil {
		oldSigs = old.MatSigs
	}
	for sig := range oldSigs {
		if new_.MatSigs[sig] {
			d.Kept = append(d.Kept, sig)
		} else {
			d.Orphaned = append(d.Orphaned, sig)
		}
	}
	for sig := range new_.MatSigs {
		if !oldSigs[sig] {
			d.New = append(d.New, sig)
		}
	}
	sortSigs(d.Kept)
	sortSigs(d.New)
	sortSigs(d.Orphaned)
	return d
}

func sortSigs(s []graph.Signature) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// OldSigs reconstructs the previous plan's materialized set from the delta.
func (d *PlanDelta) OldSigs() map[graph.Signature]bool {
	out := make(map[graph.Signature]bool, len(d.Kept)+len(d.Orphaned))
	for _, s := range d.Kept {
		out[s] = true
	}
	for _, s := range d.Orphaned {
		out[s] = true
	}
	return out
}

// singletonGroups wraps every item as its own group with the given plan
// builder applied to the item's (single-model) merged graph. Candidates are
// independent, so construction fans out across goroutines; results keep the
// input order and the lowest-index error wins.
func singletonGroups(items []opt.WorkItem, planFor func(*profile.ModelProfile) (*opt.Plan, error)) ([]*opt.FusedGroup, error) {
	groups := make([]*opt.FusedGroup, len(items))
	errs := make([]error, len(items))
	sem := make(chan struct{}, parallelism())
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int, it opt.WorkItem) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			m, err := mmg.Build(it.Model)
			if err != nil {
				errs[i] = err
				return
			}
			prof, err := profile.Profile(m.Graph, it.Prof.HW)
			if err != nil {
				errs[i] = err
				return
			}
			plan, err := planFor(prof)
			if err != nil {
				errs[i] = err
				return
			}
			// Baseline groups aren't planned against B_mem, but the conformance
			// report still wants the analytical estimate as the peak-memory
			// reference, so compute it here like FuseModels does.
			mem := opt.EstimatePeakMemory(plan, it.BatchSize, 2)
			groups[i] = &opt.FusedGroup{
				Items:        []opt.WorkItem{it},
				MM:           m,
				Plan:         plan,
				PeakMemBytes: mem.Total(),
			}
		}(i, items[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return groups, nil
}

// parallelism bounds planner fan-out (profiling, singleton construction).
func parallelism() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// applyPlan reconciles on-disk artifacts with a freshly replanned V and
// rebuilds the materializer: artifacts for kept signatures stay (records
// intact), orphaned ones are garbage-collected, new ones start empty. The
// GC outcome is recorded on the delta and in the plan/delta span.
func (ms *ModelSelection) applyPlan(wp *WorkloadPlan, delta *PlanDelta) error {
	sp := ms.cfg.Obs.Start("plan/delta",
		obs.Int("kept", int64(len(delta.Kept))),
		obs.Int("new", int64(len(delta.New))),
		obs.Int("orphaned", int64(len(delta.Orphaned))),
		obs.Int("groups_total", int64(delta.GroupsTotal)),
		obs.Int("groups_checked", int64(delta.GroupsChecked)))
	defer sp.End()
	st, err := exec.ReconcileArtifacts(ms.store, delta.OldSigs(), wp.MatSigs)
	if err != nil {
		return err
	}
	delta.DeletedKeys = st.DeletedKeys
	delta.FreedBytes = st.FreedBytes
	sp.Attr(obs.Int("deleted_keys", int64(len(st.DeletedKeys))),
		obs.Int("freed_bytes", st.FreedBytes))

	ms.materializer = nil
	if len(wp.MatSigs) > 0 {
		mz, err := exec.NewMaterializer(ms.store, ms.planner.mm, wp.MatSigs)
		if err != nil {
			return err
		}
		if mz != nil {
			mz.Obs = ms.cfg.Obs
			mz.Prefetch = ms.cfg.Prefetch
			mz.Arena = ms.arena
		}
		ms.materializer = mz
	}
	ms.lastDelta = delta
	return nil
}
