package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"nautilus/internal/graph"
	"nautilus/internal/layers"
	"nautilus/internal/mmg"
	"nautilus/internal/obs"
	"nautilus/internal/opt"
	"nautilus/internal/verify"
)

// msOver builds a Nautilus model-selection object over an explicit item
// subset (the evolution tests grow and shrink the workload around it).
func msOver(t *testing.T, items []opt.WorkItem, tr *obs.Tracer) *ModelSelection {
	t.Helper()
	models := make([]*graph.Model, len(items))
	for i, it := range items {
		models[i] = it.Model
	}
	mm, err := mmg.Build(models...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(t.TempDir())
	cfg.HW = miniHW
	cfg.MaxRecords = 600
	cfg.Obs = tr
	sel, err := New(items, mm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sel.Close() })
	return sel
}

// storeCounts snapshots every artifact key's record count.
func storeCounts(t *testing.T, ms *ModelSelection) map[string]int {
	t.Helper()
	keys, err := ms.store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, k := range keys {
		n, err := ms.store.Count(k)
		if err != nil {
			t.Fatal(err)
		}
		counts[k] = n
	}
	return counts
}

func TestConfigValidationRejectsBadBudgets(t *testing.T) {
	items, mm := tinyWorkload(t)
	cases := []struct {
		name  string
		mut   func(*Config)
		field string
	}{
		{"zero disk budget", func(c *Config) { c.DiskBudgetBytes = 0 }, "DiskBudgetBytes"},
		{"negative mem budget", func(c *Config) { c.MemBudgetBytes = -1 }, "MemBudgetBytes"},
		{"zero max records", func(c *Config) { c.MaxRecords = 0 }, "MaxRecords"},
		{"unknown solver", func(c *Config) { c.Solver = "simplex" }, "Solver"},
		{"unknown fuser", func(c *Config) { c.Fuser = "annealing" }, "Fuser"},
		{"negative fuse budget", func(c *Config) { c.FuseStateBudget = -5 }, "FuseStateBudget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(t.TempDir())
			cfg.HW = miniHW
			tc.mut(&cfg)
			_, err := New(items, mm, cfg)
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("New = %v, want *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Errorf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
			}
		})
	}
	// Every named solver passes validation.
	for _, solver := range []string{"", "bnb", "milp"} {
		cfg := DefaultConfig(t.TempDir())
		cfg.HW = miniHW
		cfg.Solver = solver
		ms, err := New(items, mm, cfg)
		if err != nil {
			t.Fatalf("solver %q rejected: %v", solver, err)
		}
		ms.Close()
	}
}

// TestReplanWithEnumFuser drives the full staged pipeline under the enum
// strategy: the plan must verify, cost no more than greedy's, and surface
// the enumeration counters through InitStats.
func TestReplanWithEnumFuser(t *testing.T) {
	items, mm := tinyWorkload(t)
	planFor := func(fuser string) *WorkloadPlan {
		t.Helper()
		cfg := DefaultConfig(t.TempDir())
		cfg.HW = miniHW
		cfg.Fuser = fuser
		wp, err := PlanWorkload(items, mm, cfg, 600)
		if err != nil {
			t.Fatalf("fuser %q: %v", fuser, err)
		}
		return wp
	}
	greedy := planFor(opt.FuserGreedy)
	enum := planFor(opt.FuserEnum)
	if got, want := opt.TotalPlanCost(enum.Groups), opt.TotalPlanCost(greedy.Groups); got > want {
		t.Errorf("enum plan cost %d exceeds greedy %d", got, want)
	}
	if enum.Stats.Fuse.Strategy != opt.FuserEnum || enum.Stats.Fuse.StatesExplored == 0 {
		t.Errorf("enum Fuse stats not surfaced: %+v", enum.Stats.Fuse)
	}
	if greedy.Stats.Fuse.Strategy != opt.FuserGreedy {
		t.Errorf("greedy Fuse stats not surfaced: %+v", greedy.Stats.Fuse)
	}
	if err := verify.Groups(enum.Groups, items, DefaultConfig("").MemBudgetBytes, enum.MatSigs); err != nil {
		t.Errorf("enum plan fails verify: %v", err)
	}
}

// TestPlannerEvolutionWithEnumFuser checks plan deltas and incremental
// verification keep working when the enum strategy replans an evolved
// candidate set.
func TestPlannerEvolutionWithEnumFuser(t *testing.T) {
	items, mm := tinyWorkload(t)
	cfg := DefaultConfig(t.TempDir())
	cfg.HW = miniHW
	cfg.Fuser = opt.FuserEnum
	p, err := NewPlanner(items, mm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.GrowData(600)
	if _, _, err := p.Replan(); err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveCandidate(items[0].Model.Name); err != nil {
		t.Fatal(err)
	}
	wp, delta, err := p.Replan()
	if err != nil {
		t.Fatal(err)
	}
	if delta.GroupsChecked > delta.GroupsTotal {
		t.Errorf("checked %d of %d groups", delta.GroupsChecked, delta.GroupsTotal)
	}
	covered := 0
	for _, g := range wp.Groups {
		covered += len(g.Items)
	}
	if covered != len(items)-1 {
		t.Errorf("replanned groups cover %d items, want %d", covered, len(items)-1)
	}
}

func TestBestResultSelection(t *testing.T) {
	// All-zero accuracies (e.g. a degenerate cycle) must still name a best
	// candidate: the alphabetically first, since results are name-sorted.
	zero := []CandidateResult{{Model: "a"}, {Model: "b"}, {Model: "c"}}
	if best := bestResult(zero); best.Model != "a" {
		t.Errorf("all-zero best = %q, want %q", best.Model, "a")
	}
	// Ties break toward the earlier (alphabetically first) name.
	tied := []CandidateResult{{Model: "a", ValAcc: 0.5}, {Model: "b", ValAcc: 0.5}}
	if best := bestResult(tied); best.Model != "a" {
		t.Errorf("tied best = %q, want %q", best.Model, "a")
	}
	// A strictly higher score wins regardless of order.
	win := []CandidateResult{{Model: "a", ValAcc: 0.2}, {Model: "b", ValAcc: 0.7}}
	if best := bestResult(win); best.Model != "b" {
		t.Errorf("best = %q, want %q", best.Model, "b")
	}
	if best := bestResult(nil); best.Model != "" {
		t.Errorf("empty results best = %+v, want zero value", best)
	}
}

// TestEvolutionCycleReconcilesArtifacts drives a full evolving-workload
// cycle — AddCandidates, Fit, RemoveCandidate, Fit — and checks artifact
// reconciliation on disk: kept artifacts survive with their record counts
// intact (no duplicate appends), orphaned artifacts are deleted.
func TestEvolutionCycleReconcilesArtifacts(t *testing.T) {
	items, _ := tinyWorkload(t) // t0,t1: last-hidden; t2,t3: concat-last-4
	snap := snapshots(t, 1)[0]
	ms := msOver(t, items[:3], nil)

	if _, err := ms.Fit(snap); err != nil {
		t.Fatal(err)
	}
	before := storeCounts(t, ms)
	if len(before) == 0 {
		t.Fatal("expected materialized artifacts at mini hardware ratios")
	}

	// Grow: t3 shares t2's concat-last-4 feature, so the replan keeps V and
	// every artifact must survive untouched.
	if err := ms.AddCandidates(items[3]); err != nil {
		t.Fatal(err)
	}
	res, err := ms.Fit(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 4 {
		t.Fatalf("%d results after AddCandidates, want 4", len(res.Results))
	}
	delta := ms.LastDelta()
	if delta == nil {
		t.Fatal("no plan delta recorded for the evolution replan")
	}
	if len(delta.Kept) == 0 {
		t.Errorf("delta kept no signatures: %+v", delta)
	}
	after := storeCounts(t, ms)
	for key, n := range before {
		if got, ok := after[key]; !ok {
			t.Errorf("kept artifact %s deleted by reconciliation", key)
		} else if got != n {
			t.Errorf("artifact %s has %d records after evolution, want %d (duplicate appends?)", key, got, n)
		}
	}

	// Shrink: dropping both concat-last-4 candidates orphans their shared
	// feature — its artifacts must be garbage-collected from disk.
	if err := ms.RemoveCandidate("t2"); err != nil {
		t.Fatal(err)
	}
	if err := ms.RemoveCandidate("t3"); err != nil {
		t.Fatal(err)
	}
	res, err = ms.Fit(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 2 {
		t.Fatalf("%d results after removals, want 2", len(res.Results))
	}
	delta = ms.LastDelta()
	if len(delta.Orphaned) == 0 {
		t.Fatalf("removing all concat-last-4 candidates orphaned nothing: %+v", delta)
	}
	if len(delta.DeletedKeys) == 0 || delta.FreedBytes <= 0 {
		t.Fatalf("orphaned signatures freed no artifacts: %+v", delta)
	}
	for _, key := range delta.DeletedKeys {
		if _, err := os.Stat(filepath.Join(ms.store.Dir(), key+".nts")); !os.IsNotExist(err) {
			t.Errorf("orphaned artifact %s still on disk (stat err %v)", key, err)
		}
	}
	final := storeCounts(t, ms)
	for key, n := range final {
		if before[key] != n {
			t.Errorf("surviving artifact %s has %d records, want %d", key, n, before[key])
		}
	}
}

// TestIncrementalReplanWritesLessThanFull checks the point of plan deltas:
// the Fit after AddCandidates materializes only the delta's new signatures,
// writing strictly fewer bytes than planning the same workload cold.
func TestIncrementalReplanWritesLessThanFull(t *testing.T) {
	items, _ := tinyWorkload(t)
	snap := snapshots(t, 1)[0]

	trInc := obs.New(nil)
	inc := msOver(t, items[:2], trInc)
	if _, err := inc.Fit(snap); err != nil {
		t.Fatal(err)
	}
	base := trInc.Registry().Counter("store.append.bytes").Value()
	// t2 introduces the concat-last-4 feature: a genuinely new signature.
	if err := inc.AddCandidates(items[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Fit(snap); err != nil {
		t.Fatal(err)
	}
	incBytes := trInc.Registry().Counter("store.append.bytes").Value() - base

	trFull := obs.New(nil)
	full := msOver(t, items[:3], trFull)
	if _, err := full.Fit(snap); err != nil {
		t.Fatal(err)
	}
	fullBytes := trFull.Registry().Counter("store.append.bytes").Value()

	if fullBytes == 0 {
		t.Fatal("cold run materialized nothing; the comparison is vacuous")
	}
	if incBytes >= fullBytes {
		t.Errorf("incremental replan wrote %d bytes, not below full replan's %d", incBytes, fullBytes)
	}
}

func TestAddCandidatesRejectsMalformedModel(t *testing.T) {
	ms := newMS(t, Nautilus)
	before := ms.Candidates()

	bad := graph.NewModel("bad")
	in := bad.AddInput("in", 8)
	d := bad.AddNode("d", layers.NewDense(5, 4, layers.ActNone, 1), in) // wants width 5, gets 8
	bad.SetOutputs(d)

	err := ms.AddCandidates(opt.WorkItem{Model: bad, Epochs: 1, BatchSize: 8})
	var pe *verify.PlanError
	if !errors.As(err, &pe) {
		t.Fatalf("AddCandidates = %v, want *verify.PlanError", err)
	}
	if pe.Kind != verify.KindModel {
		t.Errorf("PlanError.Kind = %q, want %q", pe.Kind, verify.KindModel)
	}
	after := ms.Candidates()
	if len(after) != len(before) {
		t.Errorf("rejected evolution changed the candidate set: %v -> %v", before, after)
	}
}

func TestRemoveCandidateErrors(t *testing.T) {
	ms := newMS(t, Nautilus)
	if err := ms.RemoveCandidate("nope"); err == nil {
		t.Error("removing an unknown candidate should error")
	}
	for _, name := range []string{"t0", "t1", "t2"} {
		if err := ms.RemoveCandidate(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := ms.RemoveCandidate("t3"); err == nil {
		t.Error("emptying the workload should error")
	}
}
