package core

import (
	"time"

	"nautilus/internal/data"
	"nautilus/internal/exec"
	"nautilus/internal/workloads"
)

// CycleReport summarizes one labeling + model-selection cycle of a run.
type CycleReport struct {
	Cycle       int
	TrainSize   int
	Duration    time.Duration
	BestModel   string
	BestAcc     float64
	ReOptimized bool
}

// RunReport summarizes an end-to-end workload execution.
type RunReport struct {
	Workload string
	Approach Approach
	Cycles   []CycleReport
	Total    time.Duration
	Metrics  *exec.Metrics
	Init     *InitStats
	// FinalBest is the winning candidate of the last cycle.
	FinalBest CandidateResult
}

// BestAccs returns the per-cycle best validation accuracies.
func (r *RunReport) BestAccs() []float64 {
	out := make([]float64, len(r.Cycles))
	for i, c := range r.Cycles {
		out[i] = c.BestAcc
	}
	return out
}

// Run executes a full evolving-data workload (Figure 1A/B): the simulated
// labeler releases a batch per cycle and every cycle performs model
// selection over all labeled data so far, under the configured approach.
// maxCycles > 0 truncates the instance's default schedule.
func Run(inst *workloads.Instance, cfg Config, poolSeed int64, maxCycles int) (*RunReport, error) {
	return RunWithPool(inst, cfg, inst.NewPool(poolSeed), maxCycles)
}

// RunWithPool is Run over a caller-supplied pool — e.g. one expanded by
// data.AugmentPool, the paper's materialize-an-augmented-dataset route to
// augmentation support (Section 2.5).
func RunWithPool(inst *workloads.Instance, cfg Config, pool *data.Pool, maxCycles int) (*RunReport, error) {
	perCycle, trainPer, cycles := inst.CycleSchedule()
	if maxCycles > 0 && maxCycles < cycles {
		cycles = maxCycles
	}
	labeler := data.NewLabeler(pool, perCycle, trainPer)

	ms, err := New(inst.Items, inst.MM, cfg)
	if err != nil {
		return nil, err
	}
	defer ms.Close()

	report := &RunReport{Workload: inst.Spec.Name, Approach: cfg.Approach, Metrics: ms.Metrics()}
	//lint:ignore determinism wall-clock measurement of end-to-end run time, reported to the user
	started := time.Now()
	for k := 0; k < cycles && labeler.HasMore(); k++ {
		snap, _, _ := labeler.NextCycle()
		fit, err := ms.Fit(snap)
		if err != nil {
			return nil, err
		}
		report.Cycles = append(report.Cycles, CycleReport{
			Cycle:       fit.Cycle,
			TrainSize:   snap.TrainSize(),
			Duration:    fit.Duration,
			BestModel:   fit.Best.Model,
			BestAcc:     fit.Best.ValAcc,
			ReOptimized: fit.ReOptimized,
		})
		report.FinalBest = fit.Best
	}
	//lint:ignore determinism wall-clock measurement of end-to-end run time, reported to the user
	report.Total = time.Since(started)
	report.Init = ms.InitStats()
	return report, nil
}
