package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"nautilus/internal/graph"
	"nautilus/internal/mmg"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
)

// SearchSpace maps parameter names to their candidate values, as in the
// paper's Scikit-Learn-inspired API (Section 3): both architectural tuning
// parameters (which layers to add, prune, or freeze) and training
// hyperparameters live in one space, interpreted by the user's model
// initialization function.
type SearchSpace map[string][]any

// Hyper carries the training hyperparameters ϕ_i of one candidate.
type Hyper struct {
	Epochs    int
	BatchSize int
	LR        float64
}

// ModelInitFunc is the user-defined model initialization function: it
// receives one assignment of search-space values and returns the candidate
// model (with its freezing scheme applied) plus its training
// hyperparameters.
type ModelInitFunc func(params map[string]any) (*graph.Model, Hyper, error)

// GridSearch enumerates the full cross product of the search space,
// initializes and profiles every candidate, and returns the workload ready
// for New.
func GridSearch(space SearchSpace, init ModelInitFunc, hw profile.Hardware) ([]opt.WorkItem, *mmg.MultiModel, error) {
	assignments := enumerate(space)
	return buildItems(assignments, init, hw)
}

// RandomSearch samples n distinct assignments from the search space with
// the given seed. If the space holds fewer than n assignments, all of them
// are used (random search degrades to grid search, as in practice).
func RandomSearch(space SearchSpace, n int, seed int64, init ModelInitFunc, hw profile.Hardware) ([]opt.WorkItem, *mmg.MultiModel, error) {
	assignments := enumerate(space)
	if n < len(assignments) {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(assignments), func(i, j int) {
			assignments[i], assignments[j] = assignments[j], assignments[i]
		})
		assignments = assignments[:n]
	}
	return buildItems(assignments, init, hw)
}

// enumerate expands the cross product in deterministic (sorted-key) order.
func enumerate(space SearchSpace) []map[string]any {
	keys := make([]string, 0, len(space))
	for k := range space {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	assignments := []map[string]any{{}}
	for _, k := range keys {
		var next []map[string]any
		for _, a := range assignments {
			for _, v := range space[k] {
				na := make(map[string]any, len(a)+1)
				for kk, vv := range a {
					na[kk] = vv
				}
				na[k] = v
				next = append(next, na)
			}
		}
		assignments = next
	}
	return assignments
}

func buildItems(assignments []map[string]any, init ModelInitFunc, hw profile.Hardware) ([]opt.WorkItem, *mmg.MultiModel, error) {
	if len(assignments) == 0 {
		return nil, nil, fmt.Errorf("core: empty search space")
	}
	// Initialization runs user code sequentially (init functions may share
	// state); profiling is pure graph analysis, so candidates fan out across
	// goroutines with results kept in input order.
	items := make([]opt.WorkItem, len(assignments))
	ms := make([]*graph.Model, len(assignments))
	hypers := make([]Hyper, len(assignments))
	for i, a := range assignments {
		m, hyper, err := init(a)
		if err != nil {
			return nil, nil, fmt.Errorf("core: init candidate %d (%v): %w", i, a, err)
		}
		ms[i] = m
		hypers[i] = hyper
	}
	errs := make([]error, len(assignments))
	sem := make(chan struct{}, parallelism())
	var wg sync.WaitGroup
	for i := range ms {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			prof, err := profile.Profile(ms[i], hw)
			if err != nil {
				errs[i] = fmt.Errorf("core: profile candidate %q: %w", ms[i].Name, err)
				return
			}
			items[i] = opt.WorkItem{
				Model: ms[i], Prof: prof,
				Epochs: hypers[i].Epochs, BatchSize: hypers[i].BatchSize, LR: hypers[i].LR,
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	multi, err := mmg.Build(ms...)
	if err != nil {
		return nil, nil, err
	}
	return items, multi, nil
}

// AddCandidates grows the workload with new candidates mid-run (the
// "evolving model selection workloads" extension of Section 7): the
// multi-model graph is rebuilt, the next Fit replans incrementally, and
// materialized artifacts the new plan still uses survive on disk. A
// malformed candidate model rejects the evolution with a typed
// *verify.PlanError (errors.As).
func (ms *ModelSelection) AddCandidates(items ...opt.WorkItem) error {
	return ms.planner.AddCandidates(items...)
}

// RemoveCandidate drops a candidate by model name; the next Fit replans
// the remaining workload and garbage-collects artifacts only it used.
func (ms *ModelSelection) RemoveCandidate(name string) error {
	return ms.planner.RemoveCandidate(name)
}

// Candidates returns the current candidate model names.
func (ms *ModelSelection) Candidates() []string {
	names := make([]string, len(ms.planner.items))
	for i, it := range ms.planner.items {
		names[i] = it.Model.Name
	}
	sort.Strings(names)
	return names
}
