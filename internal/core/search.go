package core

import (
	"fmt"
	"math/rand"
	"sort"

	"nautilus/internal/graph"
	"nautilus/internal/mmg"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
)

// SearchSpace maps parameter names to their candidate values, as in the
// paper's Scikit-Learn-inspired API (Section 3): both architectural tuning
// parameters (which layers to add, prune, or freeze) and training
// hyperparameters live in one space, interpreted by the user's model
// initialization function.
type SearchSpace map[string][]any

// Hyper carries the training hyperparameters ϕ_i of one candidate.
type Hyper struct {
	Epochs    int
	BatchSize int
	LR        float64
}

// ModelInitFunc is the user-defined model initialization function: it
// receives one assignment of search-space values and returns the candidate
// model (with its freezing scheme applied) plus its training
// hyperparameters.
type ModelInitFunc func(params map[string]any) (*graph.Model, Hyper, error)

// GridSearch enumerates the full cross product of the search space,
// initializes and profiles every candidate, and returns the workload ready
// for New.
func GridSearch(space SearchSpace, init ModelInitFunc, hw profile.Hardware) ([]opt.WorkItem, *mmg.MultiModel, error) {
	assignments := enumerate(space)
	return buildItems(assignments, init, hw)
}

// RandomSearch samples n distinct assignments from the search space with
// the given seed. If the space holds fewer than n assignments, all of them
// are used (random search degrades to grid search, as in practice).
func RandomSearch(space SearchSpace, n int, seed int64, init ModelInitFunc, hw profile.Hardware) ([]opt.WorkItem, *mmg.MultiModel, error) {
	assignments := enumerate(space)
	if n < len(assignments) {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(assignments), func(i, j int) {
			assignments[i], assignments[j] = assignments[j], assignments[i]
		})
		assignments = assignments[:n]
	}
	return buildItems(assignments, init, hw)
}

// enumerate expands the cross product in deterministic (sorted-key) order.
func enumerate(space SearchSpace) []map[string]any {
	keys := make([]string, 0, len(space))
	for k := range space {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	assignments := []map[string]any{{}}
	for _, k := range keys {
		var next []map[string]any
		for _, a := range assignments {
			for _, v := range space[k] {
				na := make(map[string]any, len(a)+1)
				for kk, vv := range a {
					na[kk] = vv
				}
				na[k] = v
				next = append(next, na)
			}
		}
		assignments = next
	}
	return assignments
}

func buildItems(assignments []map[string]any, init ModelInitFunc, hw profile.Hardware) ([]opt.WorkItem, *mmg.MultiModel, error) {
	if len(assignments) == 0 {
		return nil, nil, fmt.Errorf("core: empty search space")
	}
	var items []opt.WorkItem
	var ms []*graph.Model
	for i, a := range assignments {
		m, hyper, err := init(a)
		if err != nil {
			return nil, nil, fmt.Errorf("core: init candidate %d (%v): %w", i, a, err)
		}
		prof, err := profile.Profile(m, hw)
		if err != nil {
			return nil, nil, fmt.Errorf("core: profile candidate %q: %w", m.Name, err)
		}
		items = append(items, opt.WorkItem{
			Model: m, Prof: prof,
			Epochs: hyper.Epochs, BatchSize: hyper.BatchSize, LR: hyper.LR,
		})
		ms = append(ms, m)
	}
	multi, err := mmg.Build(ms...)
	if err != nil {
		return nil, nil, err
	}
	return items, multi, nil
}

// AddCandidates grows the workload with new candidates mid-run (the
// "evolving model selection workloads" extension of Section 7): the
// multi-model graph is rebuilt and the next Fit re-runs the optimization,
// keeping existing materialized artifacts that the new plan still uses.
func (ms *ModelSelection) AddCandidates(items ...opt.WorkItem) error {
	if len(items) == 0 {
		return nil
	}
	next := append(append([]opt.WorkItem(nil), ms.items...), items...)
	return ms.resetWorkload(next)
}

// RemoveCandidate drops a candidate by model name; the next Fit
// re-optimizes the remaining workload.
func (ms *ModelSelection) RemoveCandidate(name string) error {
	var next []opt.WorkItem
	found := false
	for _, it := range ms.items {
		if it.Model.Name == name {
			found = true
			continue
		}
		next = append(next, it)
	}
	if !found {
		return fmt.Errorf("core: no candidate named %q", name)
	}
	if len(next) == 0 {
		return fmt.Errorf("core: removing %q would empty the workload", name)
	}
	return ms.resetWorkload(next)
}

// Candidates returns the current candidate model names.
func (ms *ModelSelection) Candidates() []string {
	names := make([]string, len(ms.items))
	for i, it := range ms.items {
		names[i] = it.Model.Name
	}
	sort.Strings(names)
	return names
}

// resetWorkload swaps the candidate set and invalidates the optimized
// plan; the materialized store is reconciled on the next optimize pass.
func (ms *ModelSelection) resetWorkload(items []opt.WorkItem) error {
	models := make([]*graph.Model, len(items))
	for i, it := range items {
		models[i] = it.Model
	}
	multi, err := mmg.Build(models...)
	if err != nil {
		return err
	}
	ms.items = items
	ms.mm = multi
	ms.groups = nil // force re-optimization on next Fit
	return nil
}
