package core

import (
	"fmt"
	"math"
	"testing"

	"nautilus/internal/data"
	"nautilus/internal/graph"
	"nautilus/internal/models"
)

// nerInit is a ModelInitFunc over a shared mini hub, interpreting the
// search parameters the way the paper's API describes: "strategy" is an
// architectural parameter, "lr" a training hyperparameter.
func nerInit(hub *models.BERTHub) ModelInitFunc {
	idx := 0
	return func(p map[string]any) (*graph.Model, Hyper, error) {
		strat := p["strategy"].(models.FeatureStrategy)
		lr := p["lr"].(float64)
		idx++
		m, err := hub.FeatureTransferModel(
			fmt.Sprintf("%s-lr%g", strat, lr), strat, 9, int64(2000+idx))
		return m, Hyper{Epochs: 2, BatchSize: 8, LR: lr}, err
	}
}

var searchSpace = SearchSpace{
	"strategy": {models.FeatLastHidden, models.FeatSecondLastHidden},
	"lr":       {5e-3, 2e-3, 1e-3},
}

func TestGridSearchEnumeratesFullProduct(t *testing.T) {
	hub := models.NewBERTHub(models.BERTMini())
	items, mm, err := GridSearch(searchSpace, nerInit(hub), miniHW)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 6 {
		t.Fatalf("grid produced %d candidates, want 6", len(items))
	}
	if mm.Graph.NumNodes() == 0 {
		t.Fatal("multi-model missing")
	}
	// Deterministic order: the last sorted key ("strategy") varies
	// fastest, so the first two candidates share the first lr.
	if items[0].LR != 5e-3 || items[1].LR != 5e-3 || items[2].LR != 2e-3 {
		t.Errorf("unexpected enumeration order: %v %v %v", items[0].LR, items[1].LR, items[2].LR)
	}
	if items[0].Model.Name == items[1].Model.Name {
		t.Error("first two candidates must differ in strategy")
	}
}

func TestRandomSearchSamplesSubset(t *testing.T) {
	hub := models.NewBERTHub(models.BERTMini())
	items, _, err := RandomSearch(searchSpace, 3, 7, nerInit(hub), miniHW)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("random search produced %d candidates, want 3", len(items))
	}
	// Distinct candidates.
	seen := map[string]bool{}
	for _, it := range items {
		if seen[it.Model.Name] {
			t.Errorf("duplicate candidate %q", it.Model.Name)
		}
		seen[it.Model.Name] = true
	}
	// Oversampling degrades to the full grid.
	hub2 := models.NewBERTHub(models.BERTMini())
	all, _, err := RandomSearch(searchSpace, 99, 7, nerInit(hub2), miniHW)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 {
		t.Errorf("oversampled random search produced %d, want 6", len(all))
	}
}

func TestRandomSearchDeterministicPerSeed(t *testing.T) {
	hubA := models.NewBERTHub(models.BERTMini())
	a, _, err := RandomSearch(searchSpace, 3, 42, nerInit(hubA), miniHW)
	if err != nil {
		t.Fatal(err)
	}
	hubB := models.NewBERTHub(models.BERTMini())
	b, _, err := RandomSearch(searchSpace, 3, 42, nerInit(hubB), miniHW)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Model.Name != b[i].Model.Name {
			t.Fatal("same seed must sample the same candidates")
		}
	}
}

func TestGridSearchEmptySpaceErrors(t *testing.T) {
	hub := models.NewBERTHub(models.BERTMini())
	if _, _, err := GridSearch(SearchSpace{"lr": {}}, nerInit(hub), miniHW); err == nil {
		t.Error("a dimension with no values should error")
	}
}

func TestEvolvingWorkloadAddAndRemove(t *testing.T) {
	snaps := snapshots(t, 2)
	ms := newMS(t, Nautilus)

	res1, err := ms.Fit(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Results) != 4 {
		t.Fatalf("initial results %d", len(res1.Results))
	}

	// Grow the workload with a fifth candidate sharing the trunk.
	hub := models.NewBERTHub(models.BERTMini())
	extra, _, err := GridSearch(SearchSpace{
		"strategy": {models.FeatSumLast4},
		"lr":       {3e-3},
	}, nerInit(hub), miniHW)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.AddCandidates(extra...); err != nil {
		t.Fatal(err)
	}
	res2, err := ms.Fit(snaps[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Results) != 5 {
		t.Fatalf("after add: %d results, want 5", len(res2.Results))
	}
	if !res2.ReOptimized {
		t.Error("adding candidates must trigger re-optimization")
	}

	// Shrink back.
	if err := ms.RemoveCandidate(extra[0].Model.Name); err != nil {
		t.Fatal(err)
	}
	res3, err := ms.Fit(snaps[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Results) != 4 {
		t.Fatalf("after remove: %d results, want 4", len(res3.Results))
	}
	if err := ms.RemoveCandidate("nope"); err == nil {
		t.Error("removing an unknown candidate should error")
	}
	if got := len(ms.Candidates()); got != 4 {
		t.Errorf("candidates = %d, want 4", got)
	}
}

func TestEntropyScoresAndActiveLearningLoop(t *testing.T) {
	// End-to-end Figure 1(A): train → score unlabeled pool with the best
	// model → label the most uncertain batch → repeat.
	items, mm := tinyWorkload(t)
	cfg := DefaultConfig(t.TempDir())
	cfg.HW = miniHW
	cfg.MaxRecords = 600
	ms, err := New(items, mm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	pool := data.SynthNER(data.NERConfig{Records: 300, Seq: 12, Vocab: 1024, Types: 4, Seed: 55})
	al := data.NewActiveLabeler(pool, 40, 32)

	var best string
	for cycle := 0; cycle < 2; cycle++ {
		var scores []float64
		if best != "" {
			m, ok := ms.BestModel(best)
			if !ok {
				t.Fatalf("best model %q not found", best)
			}
			idx := pool.UnlabeledIndices()
			scores, err = EntropyScores(m, "ids", pool.GatherX(idx), 16)
			if err != nil {
				t.Fatal(err)
			}
			if len(scores) != len(idx) {
				t.Fatalf("%d scores for %d unlabeled", len(scores), len(idx))
			}
			for _, s := range scores {
				if s < 0 || math.IsNaN(s) {
					t.Fatalf("bad entropy score %v", s)
				}
			}
		}
		snap, err := al.NextCycle(scores)
		if err != nil {
			t.Fatal(err)
		}
		fit, err := ms.Fit(snap)
		if err != nil {
			t.Fatal(err)
		}
		best = fit.Best.Model
	}
	if best == "" {
		t.Fatal("no winner selected")
	}
}

func TestFitHalvingNarrowsField(t *testing.T) {
	snaps := snapshots(t, 2)
	ms := newMS(t, Nautilus)
	res, err := ms.FitHalving(snaps[1], HalvingConfig{RungEpochs: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// 4 candidates → rung 1: 4, rung 2: 2.
	if len(res.RungSurvivors) != 2 || res.RungSurvivors[0] != 4 || res.RungSurvivors[1] != 2 {
		t.Fatalf("survivors = %v, want [4 2]", res.RungSurvivors)
	}
	if len(res.Results) != 2 {
		t.Fatalf("final rung results = %d, want 2", len(res.Results))
	}
	if res.Best.Model == "" || res.Best.ValAcc <= 0 {
		t.Error("no winner")
	}
	// Ranked descending.
	if res.Results[0].ValAcc < res.Results[1].ValAcc {
		t.Error("results not ranked")
	}
	// Budget: 4×1 + 2×2 = 8 epoch-candidates vs 4×2=8 full... compare
	// against three rungs to see savings accounting.
	if res.TotalEpochsTrained != 4*1+2*2 {
		t.Errorf("epochs trained = %d, want 8", res.TotalEpochsTrained)
	}
}

func TestFitHalvingValidation(t *testing.T) {
	snaps := snapshots(t, 1)
	ms := newMS(t, Nautilus)
	if _, err := ms.FitHalving(snaps[0], HalvingConfig{}); err == nil {
		t.Error("zero rungs should error")
	}
	// Keep fraction out of range falls back to 0.5.
	res, err := ms.FitHalving(snaps[0], HalvingConfig{RungEpochs: []int{1, 1}, Keep: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.RungSurvivors[1] != 2 {
		t.Errorf("fallback keep fraction not applied: %v", res.RungSurvivors)
	}
}
