package data

import (
	"fmt"
	"sort"

	"nautilus/internal/tensor"
)

// UnlabeledIndices returns the pool indices not yet labeled, in order.
func (p *Pool) UnlabeledIndices() []int {
	p.ensureLabeled()
	var idx []int
	for i := 0; i < p.Size(); i++ {
		if !p.labeled[i] {
			idx = append(idx, i)
		}
	}
	return idx
}

// GatherX copies the given records' inputs into a [len(idx), ...] tensor,
// e.g. to score unlabeled candidates with the current best model.
func (p *Pool) GatherX(idx []int) *tensor.Tensor {
	shape := append([]int(nil), p.X.Shape()...)
	rec := p.X.Len() / shape[0]
	shape[0] = len(idx)
	out := tensor.New(shape...)
	for i, r := range idx {
		copy(out.Data()[i*rec:(i+1)*rec], p.X.Data()[r*rec:(r+1)*rec])
	}
	return out
}

// LabelIndices releases the labels of specific records (active learning's
// "label the most informative batch", Figure 1A). Already-labeled indices
// are rejected.
func (p *Pool) LabelIndices(idx []int) (x, y *tensor.Tensor, err error) {
	p.ensureLabeled()
	for _, r := range idx {
		if r < 0 || r >= p.Size() {
			return nil, nil, fmt.Errorf("data: index %d out of pool size %d", r, p.Size())
		}
		if p.labeled[r] {
			return nil, nil, fmt.Errorf("data: record %d already labeled", r)
		}
	}
	for _, r := range idx {
		p.labeled[r] = true
	}
	xs := p.GatherX(idx)
	yShape := append([]int(nil), p.Y.Shape()...)
	lrec := p.Y.Len() / yShape[0]
	yShape[0] = len(idx)
	ys := tensor.New(yShape...)
	for i, r := range idx {
		copy(ys.Data()[i*lrec:(i+1)*lrec], p.Y.Data()[r*lrec:(r+1)*lrec])
	}
	return xs, ys, nil
}

// ensureLabeled lazily allocates the labeled bitmap.
func (p *Pool) ensureLabeled() {
	if p.labeled == nil {
		p.labeled = make([]bool, p.Size())
	}
}

// ActiveLabeler drives active-learning cycles (Figure 1A): each cycle the
// caller scores the unlabeled pool with the current best model and the
// labeler releases the top-scoring batch, growing the snapshot exactly as
// the sequential Labeler does.
type ActiveLabeler struct {
	Pool          *Pool
	PerCycle      int
	TrainPerCycle int

	cycle int
	cur   Snapshot
}

// NewActiveLabeler returns an active labeler with the given cycle shape.
func NewActiveLabeler(pool *Pool, perCycle, trainPerCycle int) *ActiveLabeler {
	if trainPerCycle <= 0 || trainPerCycle >= perCycle {
		panic(fmt.Sprintf("data: trainPerCycle %d must be in (0, %d)", trainPerCycle, perCycle))
	}
	pool.ensureLabeled()
	return &ActiveLabeler{Pool: pool, PerCycle: perCycle, TrainPerCycle: trainPerCycle}
}

// HasMore reports whether a full cycle's worth of unlabeled data remains.
func (l *ActiveLabeler) HasMore() bool {
	return len(l.Pool.UnlabeledIndices()) >= l.PerCycle
}

// Snapshot returns the accumulated snapshot.
func (l *ActiveLabeler) Snapshot() Snapshot { return l.cur }

// NextCycle labels the next batch and returns the grown snapshot. scores,
// when non-nil, must align with the current UnlabeledIndices(); the
// highest-scoring records are labeled first (uncertainty sampling). A nil
// scores falls back to pool order, reproducing the sequential Labeler.
func (l *ActiveLabeler) NextCycle(scores []float64) (Snapshot, error) {
	unlabeled := l.Pool.UnlabeledIndices()
	if len(unlabeled) < l.PerCycle {
		return l.cur, fmt.Errorf("data: only %d unlabeled records left, need %d", len(unlabeled), l.PerCycle)
	}
	pick := make([]int, len(unlabeled))
	copy(pick, unlabeled)
	if scores != nil {
		if len(scores) != len(unlabeled) {
			return l.cur, fmt.Errorf("data: %d scores for %d unlabeled records", len(scores), len(unlabeled))
		}
		order := make([]int, len(unlabeled))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
		for i, o := range order {
			pick[i] = unlabeled[o]
		}
	}
	batch := pick[:l.PerCycle]
	x, y, err := l.Pool.LabelIndices(batch)
	if err != nil {
		return l.cur, err
	}
	tn := l.TrainPerCycle
	l.cycle++
	l.cur = Snapshot{
		Cycle:  l.cycle,
		TrainX: append0(l.cur.TrainX, slice0(x, 0, tn)),
		TrainY: append0(l.cur.TrainY, slice0(y, 0, tn)),
		ValidX: append0(l.cur.ValidX, slice0(x, tn, l.PerCycle)),
		ValidY: append0(l.cur.ValidY, slice0(y, tn, l.PerCycle)),
	}
	return l.cur, nil
}
