package data

import (
	"fmt"
	"math/rand"

	"nautilus/internal/tensor"
)

// Augmenter transforms one record in place-free fashion: it receives the
// record's values and per-record shape and returns the augmented values.
// Augmenters must be deterministic given rng.
type Augmenter func(rng *rand.Rand, record []float32, shape []int) []float32

// AugmentPool expands a pool variants-fold: each record is followed by
// variants−1 augmented copies with the same label. This is the paper's
// prescription for augmentation support (Section 2.5): materialize an
// augmented dataset up front instead of augmenting on the fly, so
// intermediate-output materialization stays sound — every (possibly
// augmented) record is a fixed dataset row with a stable materialized
// feature.
func AugmentPool(p *Pool, variants int, seed int64, aug Augmenter) *Pool {
	if variants < 1 {
		panic(fmt.Sprintf("data: variants %d must be >= 1", variants))
	}
	rng := rand.New(rand.NewSource(seed))
	n := p.Size()
	recShape := p.X.Shape()[1:]
	recSize := tensor.NumElems(recShape)
	labelSize := p.Y.Len() / n

	xShape := append([]int{n * variants}, recShape...)
	x := tensor.New(xShape...)
	yShape := append([]int(nil), p.Y.Shape()...)
	yShape[0] = n * variants
	y := tensor.New(yShape...)

	for r := 0; r < n; r++ {
		src := p.X.Data()[r*recSize : (r+1)*recSize]
		lab := p.Y.Data()[r*labelSize : (r+1)*labelSize]
		for v := 0; v < variants; v++ {
			out := x.Data()[(r*variants+v)*recSize : (r*variants+v+1)*recSize]
			if v == 0 {
				copy(out, src)
			} else {
				copy(out, aug(rng, src, recShape))
			}
			copy(y.Data()[(r*variants+v)*labelSize:(r*variants+v+1)*labelSize], lab)
		}
	}
	return &Pool{Name: p.Name + fmt.Sprintf("+aug%d", variants), X: x, Y: y}
}

// Chain composes augmenters left to right.
func Chain(augs ...Augmenter) Augmenter {
	return func(rng *rand.Rand, record []float32, shape []int) []float32 {
		out := append([]float32(nil), record...)
		for _, a := range augs {
			out = a(rng, out, shape)
		}
		return out
	}
}

// HorizontalFlip mirrors an [H, W, C] image left-right with probability p.
func HorizontalFlip(p float64) Augmenter {
	return func(rng *rand.Rand, record []float32, shape []int) []float32 {
		if len(shape) != 3 {
			panic(fmt.Sprintf("data: HorizontalFlip expects [H,W,C], got %v", shape))
		}
		out := append([]float32(nil), record...)
		if rng.Float64() >= p {
			return out
		}
		h, w, c := shape[0], shape[1], shape[2]
		for i := 0; i < h; i++ {
			for j := 0; j < w/2; j++ {
				a := (i*w + j) * c
				b := (i*w + (w - 1 - j)) * c
				for k := 0; k < c; k++ {
					out[a+k], out[b+k] = out[b+k], out[a+k]
				}
			}
		}
		return out
	}
}

// RandomShift translates an [H, W, C] image by up to max pixels in each
// spatial direction, zero-padding the exposed border — the "random
// cropping"-style spatial jitter of vision pipelines.
func RandomShift(max int) Augmenter {
	return func(rng *rand.Rand, record []float32, shape []int) []float32 {
		if len(shape) != 3 {
			panic(fmt.Sprintf("data: RandomShift expects [H,W,C], got %v", shape))
		}
		h, w, c := shape[0], shape[1], shape[2]
		di := rng.Intn(2*max+1) - max
		dj := rng.Intn(2*max+1) - max
		out := make([]float32, len(record))
		for i := 0; i < h; i++ {
			si := i - di
			if si < 0 || si >= h {
				continue
			}
			for j := 0; j < w; j++ {
				sj := j - dj
				if sj < 0 || sj >= w {
					continue
				}
				copy(out[(i*w+j)*c:(i*w+j+1)*c], record[(si*w+sj)*c:(si*w+sj+1)*c])
			}
		}
		return out
	}
}

// PixelNoise adds N(0, std²) noise to every value.
func PixelNoise(std float64) Augmenter {
	return func(rng *rand.Rand, record []float32, shape []int) []float32 {
		out := append([]float32(nil), record...)
		for i := range out {
			out[i] += float32(rng.NormFloat64() * std)
		}
		return out
	}
}

// TokenDropout replaces each token id of a [seq] text record with unkID
// with probability p — the text-side analogue of augmentation (word
// dropout).
func TokenDropout(p float64, unkID int) Augmenter {
	return func(rng *rand.Rand, record []float32, shape []int) []float32 {
		out := append([]float32(nil), record...)
		for i := range out {
			if rng.Float64() < p {
				out[i] = float32(unkID)
			}
		}
		return out
	}
}
