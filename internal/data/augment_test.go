package data

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nautilus/internal/tensor"
)

func TestAugmentPoolExpandsAndPreservesLabels(t *testing.T) {
	p := SynthImages(ImageConfig{Records: 10, H: 8, W: 8, C: 3, Seed: 1})
	aug := AugmentPool(p, 3, 7, HorizontalFlip(1.0))
	if aug.Size() != 30 {
		t.Fatalf("augmented size %d, want 30", aug.Size())
	}
	// Every variant keeps its source's label, and the original record is
	// the first of each triple.
	rec := 8 * 8 * 3
	for r := 0; r < 10; r++ {
		for v := 0; v < 3; v++ {
			if aug.Y.Data()[r*3+v] != p.Y.Data()[r] {
				t.Fatalf("label changed for record %d variant %d", r, v)
			}
		}
		orig := p.X.Data()[r*rec : (r+1)*rec]
		kept := aug.X.Data()[r*3*rec : (r*3+1)*rec]
		for i := range orig {
			if orig[i] != kept[i] {
				t.Fatal("variant 0 must be the unmodified record")
			}
		}
	}
}

func TestHorizontalFlipInvolution(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := []int{4, 6, 2}
		rec := tensor.RandNormal(rng, 1, shape...).Data()
		flip := HorizontalFlip(1.0)
		once := flip(rand.New(rand.NewSource(1)), rec, shape)
		twice := flip(rand.New(rand.NewSource(1)), once, shape)
		for i := range rec {
			if rec[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestHorizontalFlipZeroProbabilityIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shape := []int{3, 3, 1}
	rec := tensor.RandNormal(rng, 1, shape...).Data()
	out := HorizontalFlip(0)(rng, rec, shape)
	for i := range rec {
		if out[i] != rec[i] {
			t.Fatal("p=0 flip must be identity")
		}
	}
}

func TestRandomShiftPreservesMass(t *testing.T) {
	// A zero-max shift is the identity; a shifted image contains a subset
	// of the original values plus zero padding.
	shape := []int{4, 4, 1}
	rec := make([]float32, 16)
	for i := range rec {
		rec[i] = float32(i + 1)
	}
	same := RandomShift(0)(rand.New(rand.NewSource(3)), rec, shape)
	for i := range rec {
		if same[i] != rec[i] {
			t.Fatal("max=0 shift must be identity")
		}
	}
	shifted := RandomShift(2)(rand.New(rand.NewSource(4)), rec, shape)
	inOrig := map[float32]bool{0: true}
	for _, v := range rec {
		inOrig[v] = true
	}
	for _, v := range shifted {
		if !inOrig[v] {
			t.Fatalf("shift invented value %v", v)
		}
	}
}

func TestTokenDropout(t *testing.T) {
	shape := []int{8}
	rec := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	// p=1: everything becomes UNK.
	out := TokenDropout(1, 0)(rand.New(rand.NewSource(5)), rec, shape)
	for _, v := range out {
		if v != 0 {
			t.Fatalf("full dropout left token %v", v)
		}
	}
	// p=0: identity, and the input is not mutated.
	out = TokenDropout(0, 0)(rand.New(rand.NewSource(5)), rec, shape)
	for i, v := range out {
		if v != rec[i] {
			t.Fatal("zero dropout must be identity")
		}
	}
	if rec[0] != 1 {
		t.Fatal("augmenter mutated its input")
	}
}

func TestChainComposesInOrder(t *testing.T) {
	add := func(delta float32) Augmenter {
		return func(_ *rand.Rand, r []float32, _ []int) []float32 {
			out := append([]float32(nil), r...)
			for i := range out {
				out[i] += delta
			}
			return out
		}
	}
	double := func(_ *rand.Rand, r []float32, _ []int) []float32 {
		out := append([]float32(nil), r...)
		for i := range out {
			out[i] *= 2
		}
		return out
	}
	chained := Chain(add(1), double)
	out := chained(rand.New(rand.NewSource(1)), []float32{1}, []int{1})
	if out[0] != 4 { // (1+1)*2
		t.Errorf("chain result %v, want 4", out[0])
	}
}

func TestAugmentPoolDeterministic(t *testing.T) {
	p1 := SynthImages(ImageConfig{Records: 6, H: 8, W: 8, C: 3, Seed: 9})
	p2 := SynthImages(ImageConfig{Records: 6, H: 8, W: 8, C: 3, Seed: 9})
	aug := Chain(HorizontalFlip(0.5), PixelNoise(0.05))
	a := AugmentPool(p1, 2, 11, aug)
	b := AugmentPool(p2, 2, 11, aug)
	if !a.X.AllClose(b.X, 0) {
		t.Error("augmentation must be deterministic per seed")
	}
}

func TestAugmentPoolVariantsValidation(t *testing.T) {
	p := SynthImages(ImageConfig{Records: 2, H: 4, W: 4, C: 1, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for variants < 1")
		}
	}()
	AugmentPool(p, 0, 1, HorizontalFlip(1))
}
