// Package data provides the evolving-training-data substrate: synthetic
// stand-ins for the CoNLL-2003 NER corpus and the Malaria blood-cell image
// set (see DESIGN.md substitutions), plus the labeling simulation that
// releases label batches cycle by cycle, realizing the paper's
// D_{k+1} = D_k ∪ ΔD⁺_k data model (Equation 4).
package data

import (
	"fmt"

	"nautilus/internal/tensor"
)

// Pool is an unlabeled data pool whose ground-truth labels are released by
// the simulated human labeler, exactly as the paper "simulate[s] the human
// labeler by programmatically releasing the labels" (Section 5).
type Pool struct {
	Name string
	X    *tensor.Tensor // [n, ...record]
	Y    *tensor.Tensor // [n] or [n, seq]

	labeled []bool // per-record labeled flags
}

// Size returns the number of records in the pool.
func (p *Pool) Size() int { return p.X.Dim(0) }

// Remaining returns how many records are still unlabeled.
func (p *Pool) Remaining() int { return len(p.UnlabeledIndices()) }

// LabelBatch releases the next n labels in pool order, returning the newly
// labeled records ΔD⁺. It returns fewer than n records when the pool runs
// dry.
func (p *Pool) LabelBatch(n int) (x, y *tensor.Tensor) {
	idx := p.UnlabeledIndices()
	if n > len(idx) {
		n = len(idx)
	}
	x, y, err := p.LabelIndices(idx[:n])
	if err != nil {
		panic(err) // unreachable: indices come from UnlabeledIndices
	}
	return x, y
}

// slice0 copies records [lo,hi) along dimension 0.
func slice0(t *tensor.Tensor, lo, hi int) *tensor.Tensor {
	shape := append([]int(nil), t.Shape()...)
	rec := t.Len() / shape[0]
	shape[0] = hi - lo
	out := tensor.New(shape...)
	copy(out.Data(), t.Data()[lo*rec:hi*rec])
	return out
}

// Snapshot is one dataset snapshot D_k with its train/validation split.
type Snapshot struct {
	Cycle          int
	TrainX, TrainY *tensor.Tensor
	ValidX, ValidY *tensor.Tensor
}

// TrainSize returns the number of training records in the snapshot.
func (s Snapshot) TrainSize() int {
	if s.TrainX == nil {
		return 0
	}
	return s.TrainX.Dim(0)
}

// ValidSize returns the number of validation records in the snapshot.
func (s Snapshot) ValidSize() int {
	if s.ValidX == nil {
		return 0
	}
	return s.ValidX.Dim(0)
}

// Labeler drives the model-selection cycles: each cycle it labels PerCycle
// new records, splits them TrainPerCycle/ValidPerCycle, and appends them to
// the accumulated snapshot. The paper uses 500 records per cycle with a
// 400/100 split for 10 cycles.
type Labeler struct {
	Pool          *Pool
	PerCycle      int
	TrainPerCycle int

	cycle int
	cur   Snapshot
}

// NewLabeler returns a labeler releasing perCycle records per cycle of
// which trainPerCycle go to the training split.
func NewLabeler(pool *Pool, perCycle, trainPerCycle int) *Labeler {
	if trainPerCycle <= 0 || trainPerCycle >= perCycle {
		panic(fmt.Sprintf("data: trainPerCycle %d must be in (0, %d)", trainPerCycle, perCycle))
	}
	return &Labeler{Pool: pool, PerCycle: perCycle, TrainPerCycle: trainPerCycle}
}

// HasMore reports whether the pool can supply another full cycle.
func (l *Labeler) HasMore() bool { return l.Pool.Remaining() >= l.PerCycle }

// NextCycle labels one more batch and returns the grown snapshot D_{k+1}
// along with the newly added training records ΔD⁺ (for incremental
// materialization).
func (l *Labeler) NextCycle() (snap Snapshot, deltaX, deltaY *tensor.Tensor) {
	x, y := l.Pool.LabelBatch(l.PerCycle)
	n := x.Dim(0)
	tn := l.TrainPerCycle
	if tn > n {
		tn = n
	}
	dx, dy := slice0(x, 0, tn), slice0(y, 0, tn)
	vx, vy := slice0(x, tn, n), slice0(y, tn, n)
	l.cycle++
	l.cur = Snapshot{
		Cycle:  l.cycle,
		TrainX: append0(l.cur.TrainX, dx),
		TrainY: append0(l.cur.TrainY, dy),
		ValidX: append0(l.cur.ValidX, vx),
		ValidY: append0(l.cur.ValidY, vy),
	}
	return l.cur, dx, dy
}

// Snapshot returns the current accumulated snapshot.
func (l *Labeler) Snapshot() Snapshot { return l.cur }

// append0 concatenates b after a along dimension 0; a may be nil.
func append0(a, b *tensor.Tensor) *tensor.Tensor {
	if a == nil {
		return b
	}
	if b.Dim(0) == 0 {
		return a
	}
	shape := append([]int(nil), a.Shape()...)
	shape[0] += b.Dim(0)
	out := tensor.New(shape...)
	copy(out.Data(), a.Data())
	copy(out.Data()[a.Len():], b.Data())
	return out
}
