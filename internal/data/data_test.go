package data

import (
	"testing"
	"testing/quick"

	"nautilus/internal/tensor"
)

func TestSynthNERShapesAndLabels(t *testing.T) {
	cfg := NERConfig{Records: 50, Seq: 10, Vocab: 100, Types: 4, Seed: 1}
	p := SynthNER(cfg)
	if p.Size() != 50 {
		t.Fatalf("pool size %d", p.Size())
	}
	if !tensor.ShapeEq(p.X.Shape(), []int{50, 10}) || !tensor.ShapeEq(p.Y.Shape(), []int{50, 10}) {
		t.Fatalf("shapes %v %v", p.X.Shape(), p.Y.Shape())
	}
	classes := cfg.NumClasses()
	if classes != 9 {
		t.Errorf("classes = %d, want 9", classes)
	}
	sawEntity := false
	for i, v := range p.Y.Data() {
		if v < 0 || v >= float32(classes) {
			t.Fatalf("label %v out of range at %d", v, i)
		}
		if v != 0 {
			sawEntity = true
		}
	}
	if !sawEntity {
		t.Error("no entities planted")
	}
	for _, v := range p.X.Data() {
		if v < 0 || v >= float32(cfg.Vocab) {
			t.Fatalf("token %v out of vocab", v)
		}
	}
}

func TestSynthNERPlantedBandsAreConsistent(t *testing.T) {
	// B/I labels must only appear on tokens from entity vocab bands.
	cfg := NERConfig{Records: 100, Seq: 12, Vocab: 200, Types: 2, Seed: 2}
	p := SynthNER(cfg)
	common := cfg.Vocab / 2
	for i := range p.Y.Data() {
		label := int(p.Y.Data()[i])
		token := int(p.X.Data()[i])
		if label == 0 && token >= common {
			t.Fatalf("O label on entity-band token %d", token)
		}
		if label != 0 && token < common {
			t.Fatalf("entity label %d on common-band token %d", label, token)
		}
	}
}

func TestSynthNERDeterministic(t *testing.T) {
	cfg := NERConfig{Records: 20, Seq: 8, Vocab: 50, Types: 2, Seed: 3}
	a, b := SynthNER(cfg), SynthNER(cfg)
	if !a.X.AllClose(b.X, 0) || !a.Y.AllClose(b.Y, 0) {
		t.Error("same seed must generate identical pools")
	}
}

func TestSynthImagesBalancedAndMarked(t *testing.T) {
	cfg := ImageConfig{Records: 40, H: 16, W: 16, C: 3, Seed: 4}
	p := SynthImages(cfg)
	pos := 0
	for _, v := range p.Y.Data() {
		if v == 1 {
			pos++
		}
	}
	if pos != 20 {
		t.Errorf("positives = %d, want 20", pos)
	}
	// Positive images contain the bright parasite pixel; negatives don't.
	rec := 16 * 16 * 3
	for r := 0; r < 40; r++ {
		img := p.X.Data()[r*rec : (r+1)*rec]
		maxR := float32(0)
		for i := 0; i < len(img); i += 3 {
			if img[i] > maxR {
				maxR = img[i]
			}
		}
		if p.Y.Data()[r] == 1 && maxR < 0.99 {
			t.Errorf("positive record %d missing blob (max red %v)", r, maxR)
		}
	}
}

func TestLabelBatchReleasesSequentially(t *testing.T) {
	cfg := NERConfig{Records: 30, Seq: 4, Vocab: 50, Types: 2, Seed: 5}
	p := SynthNER(cfg)
	x1, _ := p.LabelBatch(10)
	x2, _ := p.LabelBatch(10)
	if x1.Dim(0) != 10 || x2.Dim(0) != 10 {
		t.Fatal("wrong batch sizes")
	}
	if p.Remaining() != 10 {
		t.Errorf("remaining = %d, want 10", p.Remaining())
	}
	// Over-request drains what's left.
	x3, _ := p.LabelBatch(99)
	if x3.Dim(0) != 10 || p.Remaining() != 0 {
		t.Error("over-request should drain the pool")
	}
	// Batches must be distinct prefixes of the pool.
	if x1.AllClose(x2, 0) {
		t.Error("consecutive batches should differ")
	}
}

func TestLabelerAccumulatesSnapshots(t *testing.T) {
	cfg := NERConfig{Records: 100, Seq: 4, Vocab: 50, Types: 2, Seed: 6}
	p := SynthNER(cfg)
	l := NewLabeler(p, 20, 16)
	var prevTrain int
	for k := 1; l.HasMore(); k++ {
		snap, dx, _ := l.NextCycle()
		if snap.Cycle != k {
			t.Fatalf("cycle = %d, want %d", snap.Cycle, k)
		}
		if dx.Dim(0) != 16 {
			t.Fatalf("delta train = %d, want 16", dx.Dim(0))
		}
		if snap.TrainSize() != prevTrain+16 {
			t.Fatalf("train size = %d, want %d", snap.TrainSize(), prevTrain+16)
		}
		if snap.ValidSize() != k*4 {
			t.Fatalf("valid size = %d, want %d", snap.ValidSize(), k*4)
		}
		prevTrain = snap.TrainSize()
	}
	if l.Snapshot().Cycle != 5 {
		t.Errorf("completed %d cycles, want 5", l.Snapshot().Cycle)
	}
}

func TestLabelerSnapshotsGrowMonotonically(t *testing.T) {
	// Property: D_{k+1} ⊇ D_k — earlier training records stay in place.
	prop := func(seed int64) bool {
		cfg := NERConfig{Records: 60, Seq: 3, Vocab: 40, Types: 2, Seed: seed}
		p := SynthNER(cfg)
		l := NewLabeler(p, 12, 9)
		var prev *tensor.Tensor
		for l.HasMore() {
			snap, _, _ := l.NextCycle()
			if prev != nil {
				for i := 0; i < prev.Len(); i++ {
					if snap.TrainX.Data()[i] != prev.Data()[i] {
						return false
					}
				}
			}
			prev = snap.TrainX
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestNewLabelerValidation(t *testing.T) {
	p := SynthNER(NERConfig{Records: 10, Seq: 2, Vocab: 20, Types: 1, Seed: 7})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid split")
		}
	}()
	NewLabeler(p, 10, 10)
}

func TestPaperScaleConfigs(t *testing.T) {
	if c := ConNLLLike(); c.Records != 10000 || c.Seq != 128 {
		t.Errorf("ConNLLLike = %+v", c)
	}
	if c := MalariaLike(); c.Records != 8000 || c.H != 128 {
		t.Errorf("MalariaLike = %+v", c)
	}
}

func TestLabelIndicesAndUnlabeled(t *testing.T) {
	p := SynthNER(NERConfig{Records: 10, Seq: 3, Vocab: 40, Types: 2, Seed: 8})
	x, y, err := p.LabelIndices([]int{7, 2})
	if err != nil {
		t.Fatal(err)
	}
	if x.Dim(0) != 2 || y.Dim(0) != 2 {
		t.Fatal("wrong batch size")
	}
	// Returned rows match the pool rows.
	for j := 0; j < 3; j++ {
		if x.At(0, j) != p.X.At(7, j) || x.At(1, j) != p.X.At(2, j) {
			t.Fatal("gathered rows differ from pool")
		}
	}
	if p.Remaining() != 8 {
		t.Errorf("remaining = %d, want 8", p.Remaining())
	}
	// Double-labeling rejected.
	if _, _, err := p.LabelIndices([]int{7}); err == nil {
		t.Error("relabeling must error")
	}
	if _, _, err := p.LabelIndices([]int{99}); err == nil {
		t.Error("out-of-range index must error")
	}
	// Sequential labeling skips already-labeled records.
	xb, _ := p.LabelBatch(3)
	if xb.Dim(0) != 3 {
		t.Fatal("sequential batch size")
	}
	if xb.At(0, 0) != p.X.At(0, 0) || xb.At(2, 0) != p.X.At(3, 0) {
		t.Error("sequential labeling should take records 0,1,3 (2 already labeled)")
	}
}

func TestActiveLabelerPicksHighestScores(t *testing.T) {
	p := SynthNER(NERConfig{Records: 12, Seq: 2, Vocab: 30, Types: 1, Seed: 9})
	al := NewActiveLabeler(p, 4, 3)
	if !al.HasMore() {
		t.Fatal("should have cycles available")
	}
	// Score record i with value i: the labeler must pick 11,10,9,8.
	unlabeled := p.UnlabeledIndices()
	scores := make([]float64, len(unlabeled))
	for i, r := range unlabeled {
		scores[i] = float64(r)
	}
	snap, err := al.NextCycle(scores)
	if err != nil {
		t.Fatal(err)
	}
	if snap.TrainSize() != 3 || snap.ValidSize() != 1 {
		t.Fatalf("split %d/%d", snap.TrainSize(), snap.ValidSize())
	}
	for _, want := range []int{11, 10, 9, 8} {
		if !p.labeled[want] {
			t.Errorf("record %d should be labeled (highest scores)", want)
		}
	}
	if p.labeled[0] {
		t.Error("low-score records must stay unlabeled")
	}
	// First labeled train row must be record 11's data.
	if snap.TrainX.At(0, 0) != p.X.At(11, 0) {
		t.Error("train rows not in score order")
	}
}

func TestActiveLabelerNilScoresSequential(t *testing.T) {
	p := SynthNER(NERConfig{Records: 8, Seq: 2, Vocab: 30, Types: 1, Seed: 10})
	al := NewActiveLabeler(p, 4, 3)
	if _, err := al.NextCycle(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !p.labeled[i] {
			t.Errorf("sequential fallback should label record %d", i)
		}
	}
	// Score length mismatch rejected.
	if _, err := al.NextCycle([]float64{1}); err == nil {
		t.Error("score length mismatch must error")
	}
	// Second sequential cycle drains the pool; a third must error.
	if _, err := al.NextCycle(nil); err != nil {
		t.Fatal(err)
	}
	if al.HasMore() {
		t.Error("pool drained, HasMore should be false")
	}
	if _, err := al.NextCycle(nil); err == nil {
		t.Error("exhausted pool must error")
	}
}

func TestActiveLabelerSnapshotsGrow(t *testing.T) {
	p := SynthNER(NERConfig{Records: 20, Seq: 2, Vocab: 30, Types: 1, Seed: 11})
	al := NewActiveLabeler(p, 5, 4)
	var prev int
	for al.HasMore() {
		snap, err := al.NextCycle(nil)
		if err != nil {
			t.Fatal(err)
		}
		if snap.TrainSize() != prev+4 {
			t.Fatalf("train size %d, want %d", snap.TrainSize(), prev+4)
		}
		prev = snap.TrainSize()
	}
	if al.Snapshot().Cycle != 4 {
		t.Errorf("cycles = %d, want 4", al.Snapshot().Cycle)
	}
}
