package data

import (
	"math"
	"math/rand"

	"nautilus/internal/tensor"
)

// NERConfig parameterizes the synthetic CoNLL-like corpus.
type NERConfig struct {
	Records int
	Seq     int // tokens per record (CoNLL averages ~20 words/record)
	Vocab   int
	Types   int // entity types (CoNLL-2003 has PER/LOC/ORG/MISC = 4)
	Seed    int64
}

// NumClasses returns the BIO tag count: O plus B-t/I-t per type.
func (c NERConfig) NumClasses() int { return 1 + 2*c.Types }

// ConNLLLike returns the paper-scale synthetic NER configuration: a
// 10,000-record pool (the CoNLL-2003 pool size used in the paper) of
// ~20-word sentences padded to BERTBase's 128-token fine-tuning bucket.
func ConNLLLike() NERConfig {
	return NERConfig{Records: 10000, Seq: 128, Vocab: 30522, Types: 4, Seed: 1301}
}

// SynthNER generates a synthetic NER pool with planted token→entity
// structure: the vocabulary is partitioned into per-type "name" bands and a
// common band, entities span 1–3 tokens, and BIO labels follow the bands.
// The mapping is learnable from token identity plus context, so accuracy
// rises with more labeled data, which is what the learning-curve
// experiments exercise.
func SynthNER(cfg NERConfig) *Pool {
	rng := rand.New(rand.NewSource(cfg.Seed))
	x := tensor.New(cfg.Records, cfg.Seq)
	y := tensor.New(cfg.Records, cfg.Seq)

	// Vocabulary bands: [0, common) ordinary words, then one band per
	// entity type.
	common := cfg.Vocab / 2
	bandWidth := (cfg.Vocab - common) / cfg.Types

	for r := 0; r < cfg.Records; r++ {
		xr := x.Data()[r*cfg.Seq : (r+1)*cfg.Seq]
		yr := y.Data()[r*cfg.Seq : (r+1)*cfg.Seq]
		s := 0
		for s < cfg.Seq {
			if rng.Float64() < 0.18 {
				typ := rng.Intn(cfg.Types)
				length := 1 + rng.Intn(3)
				for j := 0; j < length && s < cfg.Seq; j++ {
					// Entity-start tokens draw from the lower half of the
					// type's band, continuations from the upper half, so
					// the token→tag mapping is learnable from identity
					// alone (context only sharpens it).
					band := common + typ*bandWidth
					half := bandWidth / 2
					if j == 0 {
						xr[s] = float32(band + rng.Intn(half))
						yr[s] = float32(1 + 2*typ) // B-typ
					} else {
						xr[s] = float32(band + half + rng.Intn(bandWidth-half))
						yr[s] = float32(2 + 2*typ) // I-typ
					}
					s++
				}
			} else {
				xr[s] = float32(rng.Intn(common))
				yr[s] = 0 // O
				s++
			}
		}
	}
	return &Pool{Name: "synth-conll", X: x, Y: y}
}

// ImageConfig parameterizes the synthetic Malaria-like image pool.
type ImageConfig struct {
	Records int
	H, W, C int
	Seed    int64
}

// MalariaLike returns the paper-scale configuration: an 8,000-record pool
// of 128×128 RGB cell images, matching the Malaria pool size in the paper.
func MalariaLike() ImageConfig {
	return ImageConfig{Records: 8000, H: 128, W: 128, C: 3, Seed: 1302}
}

// SynthImages generates a binary-classification image pool mimicking
// parasitized vs uninfected blood-cell images: every image is a noisy cell
// disc; positive images additionally contain a small bright parasite blob
// at a random position. A CNN can learn the blob detector, so accuracy
// rises with labeled data.
func SynthImages(cfg ImageConfig) *Pool {
	rng := rand.New(rand.NewSource(cfg.Seed))
	x := tensor.New(cfg.Records, cfg.H, cfg.W, cfg.C)
	y := tensor.New(cfg.Records)
	rec := cfg.H * cfg.W * cfg.C

	for r := 0; r < cfg.Records; r++ {
		img := x.Data()[r*rec : (r+1)*rec]
		// Cell body: radial disc with noise.
		cx, cy := float64(cfg.W)/2, float64(cfg.H)/2
		radius := 0.4 * float64(cfg.H)
		for i := 0; i < cfg.H; i++ {
			for j := 0; j < cfg.W; j++ {
				d := dist(float64(i), float64(j), cy, cx)
				base := float32(0.1)
				if d < radius {
					base = 0.6
				}
				for c := 0; c < cfg.C; c++ {
					img[(i*cfg.W+j)*cfg.C+c] = base + float32(rng.NormFloat64()*0.08)
				}
			}
		}
		if r%2 == 0 {
			// Parasite blob: a bright magenta spot inside the cell, sized
			// proportionally to the image so it survives pooling.
			y.Data()[r] = 1
			bi := cfg.H/2 + rng.Intn(cfg.H/4) - cfg.H/8
			bj := cfg.W/2 + rng.Intn(cfg.W/4) - cfg.W/8
			size := cfg.H/4 + rng.Intn(2)
			for di := 0; di < size; di++ {
				for dj := 0; dj < size; dj++ {
					i, j := bi+di, bj+dj
					if i < 0 || i >= cfg.H || j < 0 || j >= cfg.W {
						continue
					}
					px := img[(i*cfg.W+j)*cfg.C:]
					px[0] = 1.0
					if cfg.C > 1 {
						px[1] = 0.2
					}
					if cfg.C > 2 {
						px[2] = 0.9
					}
				}
			}
		}
	}
	return &Pool{Name: "synth-malaria", X: x, Y: y}
}

func dist(i, j, ci, cj float64) float64 {
	di, dj := i-ci, j-cj
	return math.Sqrt(di*di + dj*dj)
}
