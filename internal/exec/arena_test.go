package exec

import (
	"testing"

	"nautilus/internal/tensor"
	"nautilus/internal/train"
)

// TestArenaTrainingBitIdentical verifies the arena is purely a physical
// optimization: training with tensor recycling produces exactly the results
// of training without it.
func TestArenaTrainingBitIdentical(t *testing.T) {
	snap := nerSnapshot(t, 2)

	itemsA, _ := buildWorkload(t, 1)
	storeA, _ := newTestStore(t)
	plain := &Trainer{Store: storeA, Loss: train.SoftmaxCrossEntropy{}, Seed: 7}
	resA, err := plain.TrainGroup(singleton(t, itemsA[0], nil), snap)
	if err != nil {
		t.Fatal(err)
	}

	itemsB, _ := buildWorkload(t, 1)
	storeB, _ := newTestStore(t)
	pooled := &Trainer{Store: storeB, Loss: train.SoftmaxCrossEntropy{}, Seed: 7, Arena: tensor.NewArena(), Prefetch: true}
	resB, err := pooled.TrainGroup(singleton(t, itemsB[0], nil), snap)
	if err != nil {
		t.Fatal(err)
	}

	if len(resA) != len(resB) {
		t.Fatalf("branch count mismatch")
	}
	for i := range resA {
		// floateq deliberately skips test files: bit-identity is the
		// property under test here, so exact comparison is the point.
		if resA[i].ValAcc != resB[i].ValAcc || resA[i].ValLoss != resB[i].ValLoss || resA[i].FinalLoss != resB[i].FinalLoss {
			t.Fatalf("arena changed results: %+v vs %+v", resA[i], resB[i])
		}
	}
}

// TestArenaSteadyStateAllocs asserts the recycling actually takes hold:
// after a warmup pass over the group, a second identical pass is served
// almost entirely from the pool — steady-state buffer makes per step drop
// to ~zero.
func TestArenaSteadyStateAllocs(t *testing.T) {
	items, _ := buildWorkload(t, 1)
	snap := nerSnapshot(t, 2)
	store, _ := newTestStore(t)
	arena := tensor.NewArena()
	trainer := &Trainer{Store: store, Loss: train.SoftmaxCrossEntropy{}, Seed: 3, Arena: arena, Prefetch: true}
	g := singleton(t, items[0], nil)

	if _, err := trainer.TrainGroup(g, snap); err != nil {
		t.Fatal(err)
	}
	warm := arena.Stats()
	if warm.Gets == 0 {
		t.Fatal("arena saw no traffic; scope plumbing is broken")
	}
	if warm.Hits == 0 {
		t.Fatal("no buffer was ever recycled during warmup")
	}

	if _, err := trainer.TrainGroup(g, snap); err != nil {
		t.Fatal(err)
	}
	st := arena.Stats()
	gets := st.Gets - warm.Gets
	misses := st.Misses - warm.Misses
	if gets == 0 {
		t.Fatal("second pass saw no arena traffic")
	}
	// The pool was fully primed by the first pass; the second should miss
	// (allocate fresh memory) on well under 1% of its requests.
	if misses*100 > gets {
		t.Fatalf("steady-state miss rate too high: %d misses / %d gets", misses, gets)
	}
}

// benchTrainGroupAlloc measures a full training pass with allocation
// reporting, pooled vs unpooled.
func benchTrainGroupAlloc(b *testing.B, arena *tensor.Arena) {
	items, _ := buildWorkload(b, 1)
	snap := nerSnapshot(b, 2)
	store, _ := newTestStore(b)
	g := singleton(b, items[0], nil)
	trainer := &Trainer{Store: store, Loss: train.SoftmaxCrossEntropy{}, Seed: 1, Arena: arena, Prefetch: true}
	// Warm the pool so steady state is what gets measured.
	if _, err := trainer.TrainGroup(g, snap); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trainer.TrainGroup(g, snap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainStepUnpooled(b *testing.B) {
	benchTrainGroupAlloc(b, nil)
}

func BenchmarkTrainStepPooled(b *testing.B) {
	benchTrainGroupAlloc(b, tensor.NewArena())
}
