package exec

import (
	"io"
	"testing"

	"nautilus/internal/obs"
	"nautilus/internal/train"
)

// benchTrainGroup runs one full TrainGroup pass per iteration with the
// given tracer attached, so the nil-sink and active-sink variants measure
// the instrumentation overhead on the real trainer hot loop. The ISSUE
// acceptance bar is < 2% overhead for the nil tracer.
func benchTrainGroup(b *testing.B, tr *obs.Tracer) {
	items, _ := buildWorkload(b, 1)
	snap := nerSnapshot(b, 2)
	store, _ := newTestStore(b)
	g := singleton(b, items[0], nil)
	trainer := &Trainer{Store: store, Loss: train.SoftmaxCrossEntropy{}, Seed: 1, Obs: tr}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trainer.TrainGroup(g, snap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainGroupNoObs(b *testing.B) {
	benchTrainGroup(b, nil)
}

func BenchmarkTrainGroupActiveObs(b *testing.B) {
	benchTrainGroup(b, obs.New(obs.NewJSONLSink(struct{ io.Writer }{io.Discard})))
}
