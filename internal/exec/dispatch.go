package exec

import (
	"nautilus/internal/obs"
	"nautilus/internal/tensor"
)

// dispatchAttrs diffs two kernel-dispatch snapshots taken around a traced
// phase and renders span attributes: how many kernel launches in the
// window resolved a tuned schedule versus fell back to the default
// heuristics, plus, per op that dispatched, the schedule that fired last
// — so a trace shows exactly which tuned schedules a training group or
// materialization pass ran under.
func dispatchAttrs(before, after []tensor.OpDispatch) []obs.Attr {
	prev := make(map[tensor.Op]tensor.OpDispatch, len(before))
	for _, d := range before {
		prev[d.Op] = d
	}
	var tuned, fallback int64
	var attrs []obs.Attr
	for _, d := range after {
		p := prev[d.Op]
		dt, df := d.Tuned-p.Tuned, d.Fallback-p.Fallback
		if dt == 0 && df == 0 {
			continue
		}
		tuned += dt
		fallback += df
		attrs = append(attrs, obs.Str("sched."+string(d.Op), d.Last.String()))
	}
	attrs = append(attrs,
		obs.Int("sched_tuned", tuned),
		obs.Int("sched_fallback", fallback))
	return attrs
}
