package exec

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"nautilus/internal/opt"
	"nautilus/internal/tensor"
	"nautilus/internal/train"
)

// badGradLoss returns a gradient of the wrong shape, exercising the
// trainer's mid-epoch error path (the one the goroutinejoin analyzer
// flagged before the pipeline drain was added).
type badGradLoss struct{ train.SoftmaxCrossEntropy }

func (badGradLoss) Compute(logits, labels *tensor.Tensor) (float64, *tensor.Tensor) {
	return 0.5, tensor.New(1)
}

// TestTrainGroupBadLossGradientReleasesPipeline asserts an error return
// from the middle of an epoch neither strands the prefetch goroutine
// blocked on send nor leaks the in-flight batch scopes.
func TestTrainGroupBadLossGradientReleasesPipeline(t *testing.T) {
	items, _ := buildWorkload(t, 1)
	snap := nerSnapshot(t, 2)
	store, _ := newTestStore(t)
	arena := tensor.NewArena()
	baseline := runtime.NumGoroutine()

	trainer := &Trainer{Store: store, Loss: badGradLoss{}, Seed: 5, Arena: arena, Prefetch: true}
	_, err := trainer.TrainGroup(singleton(t, items[0], nil), snap)
	if err == nil || !strings.Contains(err.Error(), "loss gradient") {
		t.Fatalf("want loss-gradient shape error, got %v", err)
	}

	// The deferred drain lets the prefetch goroutine run to completion;
	// poll up to ~2s in bounded steps.
	for i := 0; i < 200 && runtime.NumGoroutine() > baseline; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Errorf("prefetch goroutine leaked: %d goroutines, baseline %d", g, baseline)
	}

	// Both the failed batch's scope and the drained prefetched scopes went
	// back to the pool.
	if st := arena.Stats(); st.Gets == 0 || st.Puts == 0 {
		t.Errorf("error path did not recycle scopes: %+v", st)
	}
}

// TestMaterializerErrorReleasesChunkScopes asserts a forward failure inside
// the materializer pipeline still recycles the errored chunk's scope (the
// path the arenaescape/goroutinejoin sweep tightened).
func TestMaterializerErrorReleasesChunkScopes(t *testing.T) {
	items, mm := buildWorkload(t, 2)
	res, err := opt.OptimizeMaterialization(mm, items, opt.MatConfig{DiskBudgetBytes: 1 << 40, MaxRecords: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Materialized) == 0 {
		t.Fatal("expected materialization at mini hardware ratios")
	}
	store, _ := newTestStore(t)
	mz, err := NewMaterializer(store, mm, res.Sigs)
	if err != nil {
		t.Fatal(err)
	}
	arena := tensor.NewArena()
	mz.Arena = arena
	mz.ChunkSize = 8
	mz.inputName = "no_such_input" // forces ForwardOpts to fail on the first chunk

	snap := nerSnapshot(t, 2)
	err = mz.AppendDelta(Train, snap.TrainX)
	if err == nil || !strings.Contains(err.Error(), "no feed for input") {
		t.Fatalf("want missing-feed forward error, got %v", err)
	}
	if st := arena.Stats(); st.Puts == 0 {
		t.Errorf("errored chunk's scope was not released: %+v", st)
	}
}
