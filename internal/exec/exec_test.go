package exec

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"nautilus/internal/data"
	"nautilus/internal/graph"
	"nautilus/internal/mmg"
	"nautilus/internal/models"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
	"nautilus/internal/storage"
	"nautilus/internal/train"
)

// miniHW makes loading attractive at mini scale (see opt tests).
var miniHW = profile.Hardware{FLOPSThroughput: 6e12, DiskThroughput: 6e10, WorkspaceBytes: 1 << 28}

// buildWorkload constructs n mini feature-transfer models over a fresh
// hub. Head seeds are deterministic, so two calls produce behaviourally
// identical (but independent) workloads.
func buildWorkload(t testing.TB, n int) ([]opt.WorkItem, *mmg.MultiModel) {
	t.Helper()
	hub := models.NewBERTHub(models.BERTMini())
	strats := []models.FeatureStrategy{models.FeatLastHidden, models.FeatSecondLastHidden}
	var items []opt.WorkItem
	var ms []*graph.Model
	for i := 0; i < n; i++ {
		m, err := hub.FeatureTransferModel(fmt.Sprintf("m%d", i), strats[i%len(strats)], 9, int64(500+i))
		if err != nil {
			t.Fatal(err)
		}
		prof, err := profile.Profile(m, miniHW)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, opt.WorkItem{Model: m, Prof: prof, Epochs: 2, BatchSize: 8, LR: 1e-3})
		ms = append(ms, m)
	}
	mm, err := mmg.Build(ms...)
	if err != nil {
		t.Fatal(err)
	}
	return items, mm
}

// nerSnapshot labels a couple of cycles of synthetic NER data.
func nerSnapshot(t testing.TB, cycles int) data.Snapshot {
	t.Helper()
	pool := data.SynthNER(data.NERConfig{Records: 400, Seq: 12, Vocab: 1024, Types: 4, Seed: 99})
	lab := data.NewLabeler(pool, 40, 32)
	var snap data.Snapshot
	for i := 0; i < cycles; i++ {
		snap, _, _ = lab.NextCycle()
	}
	return snap
}

func newTestStore(t testing.TB) (*storage.TensorStore, *Metrics) {
	t.Helper()
	m := NewMetrics()
	s, err := storage.NewTensorStore(t.TempDir(), m.Disk)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, m
}

func TestMaterializerAppendAndCount(t *testing.T) {
	items, mm := buildWorkload(t, 2)
	res, err := opt.OptimizeMaterialization(mm, items, opt.MatConfig{DiskBudgetBytes: 1 << 40, MaxRecords: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Materialized) == 0 {
		t.Fatal("expected materialization at mini hardware ratios")
	}
	store, _ := newTestStore(t)
	mz, err := NewMaterializer(store, mm, res.Sigs)
	if err != nil {
		t.Fatal(err)
	}
	snap := nerSnapshot(t, 2)
	if err := mz.AppendDelta(Train, snap.TrainX); err != nil {
		t.Fatal(err)
	}
	if err := mz.AppendDelta(Valid, snap.ValidX); err != nil {
		t.Fatal(err)
	}
	for _, sig := range mz.MaterializedSigs() {
		n, err := mz.Count(sig, Train)
		if err != nil {
			t.Fatal(err)
		}
		if n != snap.TrainSize() {
			t.Errorf("sig %v: %d train records materialized, want %d", sig, n, snap.TrainSize())
		}
		nv, _ := mz.Count(sig, Valid)
		if nv != snap.ValidSize() {
			t.Errorf("sig %v: %d valid records, want %d", sig, nv, snap.ValidSize())
		}
	}
}

func TestMaterializerNilWhenNothingChosen(t *testing.T) {
	_, mm := buildWorkload(t, 1)
	store, _ := newTestStore(t)
	mz, err := NewMaterializer(store, mm, map[graph.Signature]bool{})
	if err != nil {
		t.Fatal(err)
	}
	if mz != nil {
		t.Error("empty set should yield a nil materializer")
	}
}

func TestMaterializerIncrementalMatchesBulk(t *testing.T) {
	// Appending two deltas must equal materializing the union at once.
	items, mm := buildWorkload(t, 1)
	_ = items
	sigs := map[graph.Signature]bool{}
	// Pick the last block's signature.
	mat := mm.MaterializableNodes()
	sig := mm.Sig[mat[len(mat)-1]]
	sigs[sig] = true

	pool := data.SynthNER(data.NERConfig{Records: 60, Seq: 12, Vocab: 1024, Types: 4, Seed: 7})

	storeA, _ := newTestStore(t)
	mzA, err := NewMaterializer(storeA, mm, sigs)
	if err != nil {
		t.Fatal(err)
	}
	x1, _ := pool.LabelBatch(30)
	x2, _ := pool.LabelBatch(30)
	if err := mzA.AppendDelta(Train, x1); err != nil {
		t.Fatal(err)
	}
	if err := mzA.AppendDelta(Train, x2); err != nil {
		t.Fatal(err)
	}

	storeB, _ := newTestStore(t)
	mzB, err := NewMaterializer(storeB, mm, sigs)
	if err != nil {
		t.Fatal(err)
	}
	all := data.SynthNER(data.NERConfig{Records: 60, Seq: 12, Vocab: 1024, Types: 4, Seed: 7})
	xAll, _ := all.LabelBatch(60)
	if err := mzB.AppendDelta(Train, xAll); err != nil {
		t.Fatal(err)
	}

	idx := make([]int, 60)
	for i := range idx {
		idx[i] = i
	}
	a, err := storeA.ReadRows(storeKey(sig, Train), idx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := storeB.ReadRows(storeKey(sig, Train), idx)
	if err != nil {
		t.Fatal(err)
	}
	if !a.AllClose(b, 1e-6) {
		t.Error("incremental materialization differs from bulk")
	}
}

func TestTrainGroupCurrentPracticeLearns(t *testing.T) {
	items, _ := buildWorkload(t, 1)
	items[0].Epochs = 8 // enough passes for the fresh head to converge
	snap := nerSnapshot(t, 4)
	store, metrics := newTestStore(t)
	tr := &Trainer{Store: store, Loss: train.SoftmaxCrossEntropy{}, Seed: 1, Metrics: metrics}
	g := singleton(t, items[0], nil)
	res, err := tr.TrainGroup(g, snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	// Synthetic NER has ~70% O tags; a trained model must beat the
	// majority-class baseline on token accuracy.
	if res[0].ValAcc < 0.75 {
		t.Errorf("validation accuracy %v, want >= 0.75", res[0].ValAcc)
	}
	if metrics.TrainSteps == 0 || metrics.ComputeFLOPs == 0 {
		t.Error("metrics not accumulated")
	}
}

// singleton builds a one-model group with the given materialized set.
func singleton(t testing.TB, it opt.WorkItem, sigs map[graph.Signature]bool) *opt.FusedGroup {
	t.Helper()
	groups, err := opt.FuseModels([]opt.WorkItem{it}, sigs, opt.FuseConfig{MemBudgetBytes: 1 << 40, OptimizerSlotBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	return groups[0]
}

// TestNautilusPlanStatisticallyEquivalent is the Section 5.2 experiment in
// miniature: training optimized (materialized + fused) plans reaches the
// same validation accuracy as Current Practice, because the executions are
// logically equivalent SGD.
func TestNautilusPlanStatisticallyEquivalent(t *testing.T) {
	snap := nerSnapshot(t, 3)

	// Path A: current practice on workload copy 1.
	itemsA, _ := buildWorkload(t, 2)
	storeA, _ := newTestStore(t)
	trA := &Trainer{Store: storeA, Loss: train.SoftmaxCrossEntropy{}, Seed: 42}
	accA := map[string]float64{}
	for _, it := range itemsA {
		g := singleton(t, it, nil)
		res, err := trA.TrainGroup(g, snap)
		if err != nil {
			t.Fatal(err)
		}
		accA[it.Model.Name] = res[0].ValAcc
	}

	// Path B: Nautilus plans on workload copy 2 (identical seeds).
	itemsB, mmB := buildWorkload(t, 2)
	matRes, err := opt.OptimizeMaterialization(mmB, itemsB, opt.MatConfig{DiskBudgetBytes: 1 << 40, MaxRecords: 200})
	if err != nil {
		t.Fatal(err)
	}
	storeB, _ := newTestStore(t)
	if mz, err := NewMaterializer(storeB, mmB, matRes.Sigs); err != nil {
		t.Fatal(err)
	} else if mz != nil {
		if err := mz.AppendDelta(Train, snap.TrainX); err != nil {
			t.Fatal(err)
		}
		if err := mz.AppendDelta(Valid, snap.ValidX); err != nil {
			t.Fatal(err)
		}
	}
	groups, err := opt.FuseModels(itemsB, matRes.Sigs, opt.FuseConfig{MemBudgetBytes: 1 << 40, OptimizerSlotBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	trB := &Trainer{Store: storeB, Loss: train.SoftmaxCrossEntropy{}, Seed: 42}
	accB := map[string]float64{}
	for _, g := range groups {
		res, err := trB.TrainGroup(g, snap)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			accB[r.Item.Model.Name] = r.ValAcc
		}
	}

	for name, a := range accA {
		b, ok := accB[name]
		if !ok {
			t.Fatalf("model %s missing from Nautilus results", name)
		}
		if math.Abs(a-b) > 0.02 {
			t.Errorf("model %s: current practice acc %.4f vs Nautilus %.4f", name, a, b)
		}
	}
}

func TestTrainGroupFusedSharesTrunkCompute(t *testing.T) {
	// Two fused models must cost less compute than two singletons.
	snap := nerSnapshot(t, 2)
	items, _ := buildWorkload(t, 2)

	store1, m1 := newTestStore(t)
	tr1 := &Trainer{Store: store1, Loss: train.SoftmaxCrossEntropy{}, Seed: 7, Metrics: m1}
	for _, it := range items {
		if _, err := tr1.TrainGroup(singleton(t, it, nil), snap); err != nil {
			t.Fatal(err)
		}
	}

	items2, _ := buildWorkload(t, 2)
	groups, err := opt.FuseModels(items2, map[graph.Signature]bool{}, opt.FuseConfig{MemBudgetBytes: 1 << 40, OptimizerSlotBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("expected full fusion, got %d groups", len(groups))
	}
	store2, m2 := newTestStore(t)
	tr2 := &Trainer{Store: store2, Loss: train.SoftmaxCrossEntropy{}, Seed: 7, Metrics: m2}
	if _, err := tr2.TrainGroup(groups[0], snap); err != nil {
		t.Fatal(err)
	}
	if m2.ComputeFLOPs >= m1.ComputeFLOPs {
		t.Errorf("fused compute %d not below unfused %d", m2.ComputeFLOPs, m1.ComputeFLOPs)
	}
}

func TestTrainGroupLoadsMaterializedFeatures(t *testing.T) {
	snap := nerSnapshot(t, 2)
	items, mm := buildWorkload(t, 1)
	res, err := opt.OptimizeMaterialization(mm, items, opt.MatConfig{DiskBudgetBytes: 1 << 40, MaxRecords: 200})
	if err != nil {
		t.Fatal(err)
	}
	store, metrics := newTestStore(t)
	mz, err := NewMaterializer(store, mm, res.Sigs)
	if err != nil {
		t.Fatal(err)
	}
	if mz == nil {
		t.Fatal("expected materialization")
	}
	if err := mz.AppendDelta(Train, snap.TrainX); err != nil {
		t.Fatal(err)
	}
	if err := mz.AppendDelta(Valid, snap.ValidX); err != nil {
		t.Fatal(err)
	}
	tr := &Trainer{Store: store, Loss: train.SoftmaxCrossEntropy{}, Seed: 3, Metrics: metrics}
	g := singleton(t, items[0], res.Sigs)
	if _, _, loaded := g.Plan.CountActions(); loaded == 0 {
		t.Fatal("plan loads nothing; test premise broken")
	}
	before := metrics.Disk.BytesRead()
	if _, err := tr.TrainGroup(g, snap); err != nil {
		t.Fatal(err)
	}
	if metrics.Disk.BytesRead() <= before {
		t.Error("training a loading plan must read from the store")
	}
	if metrics.LoadBytes == 0 {
		t.Error("LoadBytes not accounted")
	}
}

func TestCheckpointSizesTrainableVsFull(t *testing.T) {
	items, _ := buildWorkload(t, 1)
	store, metrics := newTestStore(t)
	tr := &Trainer{Store: store, Loss: train.SoftmaxCrossEntropy{}, Seed: 1, Metrics: metrics}
	g := singleton(t, items[0], nil)
	dir := t.TempDir()

	full := filepath.Join(dir, "full.nckp")
	if err := tr.Checkpoint(g, full, true); err != nil {
		t.Fatal(err)
	}
	fullBytes := metrics.Disk.BytesWritten()
	slim := filepath.Join(dir, "slim.nckp")
	if err := tr.Checkpoint(g, slim, false); err != nil {
		t.Fatal(err)
	}
	slimBytes := metrics.Disk.BytesWritten() - fullBytes
	if slimBytes*2 > fullBytes {
		t.Errorf("trainable-only checkpoint (%d B) should be far smaller than full (%d B)", slimBytes, fullBytes)
	}
}

func TestPrefetchProducesIdenticalResults(t *testing.T) {
	// The prefetch pipeline must not change training outcomes: same
	// batches, same reads, bit-identical accuracies.
	snap := nerSnapshot(t, 2)
	accs := map[bool]float64{}
	for _, prefetch := range []bool{false, true} {
		items, mm := buildWorkload(t, 1)
		res, err := opt.OptimizeMaterialization(mm, items, opt.MatConfig{DiskBudgetBytes: 1 << 40, MaxRecords: 200})
		if err != nil {
			t.Fatal(err)
		}
		store, _ := newTestStore(t)
		mz, err := NewMaterializer(store, mm, res.Sigs)
		if err != nil {
			t.Fatal(err)
		}
		if mz != nil {
			if err := mz.AppendDelta(Train, snap.TrainX); err != nil {
				t.Fatal(err)
			}
			if err := mz.AppendDelta(Valid, snap.ValidX); err != nil {
				t.Fatal(err)
			}
		}
		tr := &Trainer{Store: store, Loss: train.SoftmaxCrossEntropy{}, Seed: 5, Prefetch: prefetch}
		out, err := tr.TrainGroup(singleton(t, items[0], res.Sigs), snap)
		if err != nil {
			t.Fatal(err)
		}
		accs[prefetch] = out[0].ValAcc
	}
	if accs[false] != accs[true] {
		t.Errorf("prefetch changed results: %v vs %v", accs[false], accs[true])
	}
}

func TestMaterializerResetDropsArtifacts(t *testing.T) {
	items, mm := buildWorkload(t, 1)
	_ = items
	sigs := map[graph.Signature]bool{}
	mat := mm.MaterializableNodes()
	sig := mm.Sig[mat[0]]
	sigs[sig] = true
	store, _ := newTestStore(t)
	mz, err := NewMaterializer(store, mm, sigs)
	if err != nil {
		t.Fatal(err)
	}
	snap := nerSnapshot(t, 1)
	if err := mz.AppendDelta(Train, snap.TrainX); err != nil {
		t.Fatal(err)
	}
	if n, _ := mz.Count(sig, Train); n == 0 {
		t.Fatal("nothing materialized")
	}
	if err := mz.Reset(); err != nil {
		t.Fatal(err)
	}
	if n, _ := mz.Count(sig, Train); n != 0 {
		t.Errorf("reset left %d records", n)
	}
	// SyncSplit after reset re-materializes from scratch.
	if err := mz.SyncSplit(Train, snap.TrainX); err != nil {
		t.Fatal(err)
	}
	if n, _ := mz.Count(sig, Train); n != snap.TrainSize() {
		t.Errorf("re-sync materialized %d, want %d", n, snap.TrainSize())
	}
}
