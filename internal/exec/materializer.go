package exec

import (
	"fmt"

	"nautilus/internal/graph"
	"nautilus/internal/mmg"
	"nautilus/internal/obs"
	"nautilus/internal/storage"
	"nautilus/internal/tensor"
)

// Split names the dataset split a materialized artifact belongs to.
type Split string

// Dataset splits.
const (
	Train Split = "train"
	Valid Split = "valid"
)

// storeKey builds the tensor-store key of one materialized expression on
// one split.
func storeKey(sig graph.Signature, split Split) string {
	return sig.String() + "." + string(split)
}

// Materializer computes the chosen intermediate outputs for newly labeled
// records and appends them to the tensor store — the incremental feature
// materialization of Section 4.2.3.
type Materializer struct {
	store *storage.TensorStore

	// matModel is the multi-model graph restricted to the chosen nodes.
	matModel *graph.Model
	// outputs maps each chosen node to its signature.
	outputs map[*graph.Node]graph.Signature
	// inputName is the dataset input node's name in the merged graph.
	inputName string
	// ChunkSize bounds how many records are forwarded at once.
	ChunkSize int
	// Obs, when set, wraps delta materialization in spans (per call and per
	// forward chunk). nil disables instrumentation.
	Obs *obs.Tracer
}

// NewMaterializer builds a materializer for the chosen signatures over the
// workload's multi-model graph. It returns nil (and no error) when nothing
// is materialized.
func NewMaterializer(store *storage.TensorStore, mm *mmg.MultiModel, sigs map[graph.Signature]bool) (*Materializer, error) {
	var outs []*graph.Node
	outputs := map[*graph.Node]graph.Signature{}
	for _, n := range mm.Graph.Nodes() {
		if sig, ok := mm.Sig[n]; ok && sigs[sig] {
			outs = append(outs, n)
			outputs[n] = sig
		}
	}
	if len(outs) == 0 {
		return nil, nil
	}
	inputs := mm.Graph.Inputs()
	if len(inputs) != 1 {
		return nil, fmt.Errorf("exec: materializer expects one dataset input, found %d", len(inputs))
	}
	return &Materializer{
		store:     store,
		matModel:  mm.Graph.WithOutputs(outs...),
		outputs:   outputs,
		inputName: inputs[0].Name,
		ChunkSize: 64,
	}, nil
}

// MaterializedSigs returns the signatures this materializer maintains.
func (mz *Materializer) MaterializedSigs() []graph.Signature {
	var out []graph.Signature
	for _, sig := range mz.outputs {
		out = append(out, sig)
	}
	return out
}

// AppendDelta computes the chosen outputs for the newly labeled records ΔD⁺
// of one split and appends them to the store. Records must arrive in the
// same order as the snapshot accumulates them.
func (mz *Materializer) AppendDelta(split Split, deltaX *tensor.Tensor) error {
	n := deltaX.Dim(0)
	span := mz.Obs.Start("mat/append_delta",
		obs.Str("split", string(split)),
		obs.Int("records", int64(n)),
		obs.Int("outputs", int64(len(mz.outputs))))
	defer span.End()
	mz.Obs.Registry().Counter("materializer.records").Add(int64(n))
	for lo := 0; lo < n; lo += mz.ChunkSize {
		hi := lo + mz.ChunkSize
		if hi > n {
			hi = n
		}
		chunk := sliceRecords(deltaX, lo, hi)
		cs := span.Child("mat/chunk", obs.Int("records", int64(hi-lo)))
		tape, err := mz.matModel.Forward(map[string]*tensor.Tensor{mz.inputName: chunk}, false)
		if err != nil {
			cs.End()
			return fmt.Errorf("exec: materialize: %w", err)
		}
		for node, sig := range mz.outputs {
			if err := mz.store.Append(storeKey(sig, split), tape.Output(node)); err != nil {
				cs.End()
				return err
			}
		}
		cs.End()
	}
	return nil
}

// SyncSplit brings the store up to date with a full split tensor: it
// counts what is already materialized and appends only the missing tail.
// Called once per model-selection cycle, it realizes incremental feature
// materialization without explicit delta plumbing.
func (mz *Materializer) SyncSplit(split Split, fullX *tensor.Tensor) error {
	have := -1
	for _, sig := range mz.outputs {
		n, err := mz.store.Count(storeKey(sig, split))
		if err != nil {
			return err
		}
		if have < 0 || n < have {
			have = n
		}
	}
	total := fullX.Dim(0)
	sp := mz.Obs.Start("mat/sync",
		obs.Str("split", string(split)),
		obs.Int("have", int64(have)),
		obs.Int("total", int64(total)))
	defer sp.End()
	if have >= total {
		return nil
	}
	return mz.AppendDelta(split, sliceRecords(fullX, have, total))
}

// Count returns how many records of a split are materialized for sig.
func (mz *Materializer) Count(sig graph.Signature, split Split) (int, error) {
	return mz.store.Count(storeKey(sig, split))
}

// Reset drops all artifacts of this materializer (used when the
// exponential-backoff re-optimization changes the materialized set).
func (mz *Materializer) Reset() error {
	for _, sig := range mz.outputs {
		for _, split := range []Split{Train, Valid} {
			if err := mz.store.Delete(storeKey(sig, split)); err != nil {
				return err
			}
		}
	}
	return nil
}

// sliceRecords copies records [lo,hi) along dim 0.
func sliceRecords(t *tensor.Tensor, lo, hi int) *tensor.Tensor {
	shape := append([]int(nil), t.Shape()...)
	rec := t.Len() / shape[0]
	shape[0] = hi - lo
	out := tensor.New(shape...)
	copy(out.Data(), t.Data()[lo*rec:hi*rec])
	return out
}
