package exec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"nautilus/internal/graph"
	"nautilus/internal/mmg"
	"nautilus/internal/obs"
	"nautilus/internal/storage"
	"nautilus/internal/tensor"
)

// Split names the dataset split a materialized artifact belongs to.
type Split string

// Dataset splits.
const (
	Train Split = "train"
	Valid Split = "valid"
)

// storeKey builds the tensor-store key of one materialized expression on
// one split.
func storeKey(sig graph.Signature, split Split) string {
	return sig.String() + "." + string(split)
}

// keySig recovers the expression signature from a materializer store key
// (the inverse of storeKey). ok is false for keys this package did not
// write — reconciliation leaves those untouched.
func keySig(key string) (graph.Signature, bool) {
	i := strings.IndexByte(key, '.')
	if i != 16 {
		return 0, false
	}
	switch Split(key[i+1:]) {
	case Train, Valid:
	default:
		return 0, false
	}
	v, err := strconv.ParseUint(key[:i], 16, 64)
	if err != nil {
		return 0, false
	}
	return graph.Signature(v), true
}

// Materializer computes the chosen intermediate outputs for newly labeled
// records and appends them to the tensor store — the incremental feature
// materialization of Section 4.2.3.
type Materializer struct {
	store *storage.TensorStore

	// matModel is the multi-model graph restricted to the chosen nodes.
	matModel *graph.Model
	// outputs maps each chosen node to its signature.
	outputs map[*graph.Node]graph.Signature
	// inputName is the dataset input node's name in the merged graph.
	inputName string
	// ChunkSize bounds how many records are forwarded at once.
	ChunkSize int
	// Prefetch overlaps the forward pass of chunk t+1 with the store
	// appends of chunk t (a one-chunk pipeline mirroring the trainer's
	// feed prefetcher). Results are bit-identical with or without it.
	Prefetch bool
	// Arena, when set, recycles each chunk's tensors (input slice, forward
	// intermediates, caches) once its appends finish; the store copies rows
	// into its own buffers synchronously, so release is safe.
	Arena *tensor.Arena
	// Obs, when set, wraps delta materialization in spans (per call and per
	// forward chunk). nil disables instrumentation.
	Obs *obs.Tracer
}

// NewMaterializer builds a materializer for the chosen signatures over the
// workload's multi-model graph. It returns nil (and no error) when nothing
// is materialized.
func NewMaterializer(store *storage.TensorStore, mm *mmg.MultiModel, sigs map[graph.Signature]bool) (*Materializer, error) {
	var outs []*graph.Node
	outputs := map[*graph.Node]graph.Signature{}
	for _, n := range mm.Graph.Nodes() {
		if sig, ok := mm.Sig[n]; ok && sigs[sig] {
			outs = append(outs, n)
			outputs[n] = sig
		}
	}
	if len(outs) == 0 {
		return nil, nil
	}
	inputs := mm.Graph.Inputs()
	if len(inputs) != 1 {
		return nil, fmt.Errorf("exec: materializer expects one dataset input, found %d", len(inputs))
	}
	return &Materializer{
		store:     store,
		matModel:  mm.Graph.WithOutputs(outs...),
		outputs:   outputs,
		inputName: inputs[0].Name,
		ChunkSize: 64,
		Prefetch:  true,
	}, nil
}

// MaterializedSigs returns the signatures this materializer maintains.
func (mz *Materializer) MaterializedSigs() []graph.Signature {
	var out []graph.Signature
	for _, sig := range mz.outputs {
		out = append(out, sig)
	}
	return out
}

// AppendDelta computes the chosen outputs for the newly labeled records ΔD⁺
// of one split and appends them to the store. Records must arrive in the
// same order as the snapshot accumulates them.
func (mz *Materializer) AppendDelta(split Split, deltaX *tensor.Tensor) error {
	return mz.appendNodes(split, mz.outputNodes(), deltaX)
}

// outputNodes lists the chosen nodes sorted by name for deterministic
// forwarding and append order.
func (mz *Materializer) outputNodes() []*graph.Node {
	nodes := make([]*graph.Node, 0, len(mz.outputs))
	for n := range mz.outputs {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	return nodes
}

// appendNodes forwards deltaX through the ancestors of the given subset of
// chosen nodes only, appending each node's output to its artifact. With
// Prefetch set, a goroutine forwards chunk t+1 while the caller appends
// chunk t to the store, so compute overlaps artifact IO; each chunk runs in
// its own arena scope, released after its appends (the store copies rows
// synchronously).
func (mz *Materializer) appendNodes(split Split, nodes []*graph.Node, deltaX *tensor.Tensor) error {
	model := mz.matModel
	if len(nodes) < len(mz.outputs) {
		model = mz.matModel.WithOutputs(nodes...)
	}
	n := deltaX.Dim(0)
	span := mz.Obs.Start("mat/append_delta",
		obs.Str("split", string(split)),
		obs.Int("records", int64(n)),
		obs.Int("outputs", int64(len(nodes))))
	defer span.End()
	if mz.Obs.Enabled() {
		before := tensor.DispatchSnapshot()
		defer func() { span.Attr(dispatchAttrs(before, tensor.DispatchSnapshot())...) }()
	}
	mz.Obs.Registry().Counter("materializer.records").Add(int64(n))
	chunks := mz.forwardPipeline(model, span, deltaX, n)
	// On early error return, drain the pipeline so its goroutine finishes
	// and already-computed scopes are recycled.
	defer func() {
		for c := range chunks {
			c.scope.Release()
		}
	}()
	for c := range chunks {
		if c.err != nil {
			// The errored chunk was already received, so the deferred drain
			// never sees it; recycle its scope here.
			c.scope.Release()
			return fmt.Errorf("exec: materialize: %w", c.err)
		}
		for _, node := range nodes {
			if err := mz.store.Append(storeKey(mz.outputs[node], split), c.tape.Output(node)); err != nil {
				c.scope.Release()
				return err
			}
		}
		c.scope.Release()
	}
	return nil
}

// matChunk is one forwarded chunk in flight between the forward goroutine
// and the appending caller.
type matChunk struct {
	tape  *graph.Tape
	scope *tensor.Scope
	err   error
}

// forwardPipeline forwards deltaX chunk by chunk, one chunk ahead of the
// consumer when Prefetch is set (buffered channel of 1). Chunk spans sit on
// a separate trace track so the overlap against appends is visible.
func (mz *Materializer) forwardPipeline(model *graph.Model, span *obs.Span, deltaX *tensor.Tensor, n int) <-chan matChunk {
	buf := 0
	if mz.Prefetch {
		buf = 1
	}
	ch := make(chan matChunk, buf)
	go func() {
		defer close(ch)
		for lo := 0; lo < n; lo += mz.ChunkSize {
			hi := lo + mz.ChunkSize
			if hi > n {
				hi = n
			}
			cs := span.Child("mat/chunk", obs.Int("records", int64(hi-lo)))
			cs.SetTrack(2)
			scope := mz.Arena.Scope()
			chunk := sliceRecordsIn(deltaX, lo, hi, allocOf(scope))
			tape, err := model.ForwardOpts(map[string]*tensor.Tensor{mz.inputName: chunk}, graph.ForwardOptions{Alloc: allocOf(scope)})
			cs.End()
			ch <- matChunk{tape: tape, scope: scope, err: err}
			if err != nil {
				return
			}
		}
	}()
	return ch
}

// SyncSplit brings the store up to date with a full split tensor. Each
// chosen output is synced independently: artifacts kept across a
// reconciliation already hold every record and get nothing re-appended,
// while newly chosen signatures (empty artifacts) catch up from row zero.
// Outputs at the same record count share one forward pass over the missing
// tail. Called once per model-selection cycle, it realizes incremental
// feature materialization without explicit delta plumbing.
func (mz *Materializer) SyncSplit(split Split, fullX *tensor.Tensor) error {
	total := fullX.Dim(0)
	byHave := map[int][]*graph.Node{}
	minHave := total
	for _, node := range mz.outputNodes() {
		n, err := mz.store.Count(storeKey(mz.outputs[node], split))
		if err != nil {
			return err
		}
		if n < minHave {
			minHave = n
		}
		if n >= total {
			continue // already up to date
		}
		byHave[n] = append(byHave[n], node)
	}
	sp := mz.Obs.Start("mat/sync",
		obs.Str("split", string(split)),
		obs.Int("have", int64(minHave)),
		obs.Int("total", int64(total)),
		obs.Int("cohorts", int64(len(byHave))))
	defer sp.End()
	haves := make([]int, 0, len(byHave))
	for have := range byHave {
		haves = append(haves, have)
	}
	sort.Ints(haves)
	for _, have := range haves {
		if err := mz.appendNodes(split, byHave[have], sliceRecords(fullX, have, total)); err != nil {
			return err
		}
	}
	return nil
}

// Count returns how many records of a split are materialized for sig.
func (mz *Materializer) Count(sig graph.Signature, split Split) (int, error) {
	return mz.store.Count(storeKey(sig, split))
}

// Reset drops all artifacts of this materializer (used when a plan is torn
// down wholesale; evolution events reconcile instead).
func (mz *Materializer) Reset() error {
	for _, sig := range mz.outputs {
		for _, split := range []Split{Train, Valid} {
			if err := mz.store.Delete(storeKey(sig, split)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReconcileStats reports what an artifact reconciliation kept and
// collected.
type ReconcileStats struct {
	// KeptSigs, NewSigs, and OrphanedSigs partition old ∪ new V: signatures
	// in both plans, only the new one, and only the old one.
	KeptSigs     int
	NewSigs      int
	OrphanedSigs int
	// DeletedKeys are the store keys GC removed (sorted).
	DeletedKeys []string
	// FreedBytes is the on-disk footprint of the deleted artifacts.
	FreedBytes int64
}

// ReconcileArtifacts garbage-collects materialized artifacts after a
// replan: every artifact whose signature left the materialized set V is
// deleted, every artifact still in V stays on disk with its records intact
// (the plan-delta reuse at the heart of evolving-workload replanning).
// Store keys not written by this package are never touched. oldSigs may be
// nil (first plan: nothing to collect).
func ReconcileArtifacts(store *storage.TensorStore, oldSigs, newSigs map[graph.Signature]bool) (*ReconcileStats, error) {
	st := &ReconcileStats{}
	for sig := range oldSigs {
		if newSigs[sig] {
			st.KeptSigs++
		} else {
			st.OrphanedSigs++
		}
	}
	for sig := range newSigs {
		if !oldSigs[sig] {
			st.NewSigs++
		}
	}
	deleted, freed, err := store.GC(func(key string) bool {
		sig, ok := keySig(key)
		if !ok {
			return true // not a materializer artifact
		}
		return newSigs[sig]
	})
	if err != nil {
		return nil, fmt.Errorf("exec: reconcile artifacts: %w", err)
	}
	st.DeletedKeys = deleted
	st.FreedBytes = freed
	return st, nil
}

// Reconcile garbage-collects every artifact not maintained by this
// materializer, comparing against the previous plan's materialized set.
func (mz *Materializer) Reconcile(oldSigs map[graph.Signature]bool) (*ReconcileStats, error) {
	newSigs := make(map[graph.Signature]bool, len(mz.outputs))
	for _, sig := range mz.outputs {
		newSigs[sig] = true
	}
	return ReconcileArtifacts(mz.store, oldSigs, newSigs)
}

// sliceRecords copies records [lo,hi) along dim 0.
func sliceRecords(t *tensor.Tensor, lo, hi int) *tensor.Tensor {
	return sliceRecordsIn(t, lo, hi, nil)
}

// sliceRecordsIn is sliceRecords allocating from a (nil = heap).
func sliceRecordsIn(t *tensor.Tensor, lo, hi int, a tensor.Alloc) *tensor.Tensor {
	shape := append([]int(nil), t.Shape()...)
	rec := t.Len() / shape[0]
	shape[0] = hi - lo
	var out *tensor.Tensor
	if a != nil {
		out = a.Get(shape...)
	} else {
		out = tensor.New(shape...)
	}
	copy(out.Data(), t.Data()[lo*rec:hi*rec])
	return out
}
