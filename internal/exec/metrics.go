// Package exec executes optimized training plans: the Materializer
// computes and incrementally appends chosen intermediate outputs
// (Section 4.2.3), and the Trainer runs (possibly fused) reuse-plan models
// with one optimizer per trainable branch (Section 3), feeding materialized
// intermediates from the tensor store. It also meters compute and I/O so
// experiments can report utilization (Figure 11).
package exec

import (
	"time"

	"nautilus/internal/storage"
)

// Metrics accumulates execution accounting for one workload run.
type Metrics struct {
	// ComputeFLOPs is the cost-model compute executed (plan compute costs
	// × records × epochs), the basis of simulated runtimes.
	ComputeFLOPs int64
	// LoadBytes is the volume of materialized intermediates read.
	LoadBytes int64
	// TrainSteps counts optimizer steps taken.
	TrainSteps int
	// Wall is real elapsed time attributed to training.
	Wall time.Duration
	// Disk meters actual store traffic (reads and writes).
	Disk *storage.Counters
}

// NewMetrics returns zeroed metrics with a fresh disk counter set.
func NewMetrics() *Metrics {
	return &Metrics{Disk: &storage.Counters{}}
}

// Add accumulates o into m (for aggregating per-cycle metrics). Disk
// counters merge when both sides carry them; m adopts o's counter set when
// it has none of its own.
func (m *Metrics) Add(o *Metrics) {
	m.ComputeFLOPs += o.ComputeFLOPs
	m.LoadBytes += o.LoadBytes
	m.TrainSteps += o.TrainSteps
	m.Wall += o.Wall
	if m.Disk == nil {
		m.Disk = o.Disk
		return
	}
	m.Disk.Merge(o.Disk)
}
