package exec

import (
	"testing"
	"time"
)

// TestMetricsAddMergesDisk is the regression test for Add silently
// dropping the Disk counters: aggregating per-cycle metrics must carry the
// byte-level I/O account along with the four scalar fields.
func TestMetricsAddMergesDisk(t *testing.T) {
	a := NewMetrics()
	a.ComputeFLOPs, a.LoadBytes, a.TrainSteps, a.Wall = 10, 20, 3, time.Second
	a.Disk.AddRead(100)
	a.Disk.AddWrite(7)

	b := NewMetrics()
	b.ComputeFLOPs, b.LoadBytes, b.TrainSteps, b.Wall = 1, 2, 4, time.Minute
	b.Disk.AddRead(900)
	b.Disk.AddWrite(3)
	b.Disk.AddWrite(5)

	a.Add(b)
	if a.ComputeFLOPs != 11 || a.LoadBytes != 22 || a.TrainSteps != 7 || a.Wall != time.Second+time.Minute {
		t.Errorf("scalar fields: %+v", a)
	}
	if got := a.Disk.BytesRead(); got != 1000 {
		t.Errorf("BytesRead = %d, want 1000", got)
	}
	if got := a.Disk.BytesWritten(); got != 15 {
		t.Errorf("BytesWritten = %d, want 15", got)
	}
	if r, w := a.Disk.Reads(), a.Disk.Writes(); r != 2 || w != 3 {
		t.Errorf("ops = %d reads %d writes, want 2/3", r, w)
	}

	// A metrics value without its own counter set adopts the other side's.
	c := &Metrics{}
	c.Add(a)
	if c.Disk != a.Disk {
		t.Error("Add into Disk-less metrics should adopt the source counters")
	}
	// Nil on both sides stays nil without panicking.
	d := &Metrics{}
	d.Add(&Metrics{})
	if d.Disk != nil {
		t.Error("nil + nil Disk should stay nil")
	}
}
