package exec

import (
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"nautilus/internal/graph"
	"nautilus/internal/storage"
	"nautilus/internal/tensor"
)

func TestKeySigRoundTrip(t *testing.T) {
	for _, sig := range []graph.Signature{0, 1, 0xdeadbeef, ^graph.Signature(0)} {
		for _, split := range []Split{Train, Valid} {
			got, ok := keySig(storeKey(sig, split))
			if !ok || got != sig {
				t.Errorf("keySig(storeKey(%s, %s)) = %v, %v", sig, split, got, ok)
			}
		}
	}
	// Keys this package did not write must never parse (they would
	// otherwise be GC candidates).
	for _, key := range []string{
		"", "train", "0123456789abcdef", "0123456789abcdef.test",
		"0123456789abcde.train", "0123456789abcdeg.train", "ckpt.cycle1.train",
	} {
		if _, ok := keySig(key); ok {
			t.Errorf("keySig(%q) parsed; foreign keys must not", key)
		}
	}
}

func TestReconcileArtifactsGCsOrphansOnly(t *testing.T) {
	store, err := storage.NewTensorStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	rng := rand.New(rand.NewSource(11))
	kept, orphan := graph.Signature(0x1111), graph.Signature(0x2222)
	for _, sig := range []graph.Signature{kept, orphan} {
		for _, split := range []Split{Train, Valid} {
			if err := store.Append(storeKey(sig, split), tensor.RandNormal(rng, 1, 3, 4)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A foreign artifact (not a materializer key) must survive any GC.
	if err := store.Append("scratch", tensor.RandNormal(rng, 1, 2, 2)); err != nil {
		t.Fatal(err)
	}

	added := graph.Signature(0x3333)
	oldSigs := map[graph.Signature]bool{kept: true, orphan: true}
	newSigs := map[graph.Signature]bool{kept: true, added: true}
	st, err := ReconcileArtifacts(store, oldSigs, newSigs)
	if err != nil {
		t.Fatal(err)
	}
	if st.KeptSigs != 1 || st.NewSigs != 1 || st.OrphanedSigs != 1 {
		t.Errorf("partition = %d kept %d new %d orphaned, want 1/1/1", st.KeptSigs, st.NewSigs, st.OrphanedSigs)
	}
	wantDeleted := []string{storeKey(orphan, Train), storeKey(orphan, Valid)}
	sort.Strings(wantDeleted)
	if len(st.DeletedKeys) != 2 || st.DeletedKeys[0] != wantDeleted[0] || st.DeletedKeys[1] != wantDeleted[1] {
		t.Errorf("DeletedKeys = %v, want %v", st.DeletedKeys, wantDeleted)
	}
	if st.FreedBytes <= 0 {
		t.Errorf("FreedBytes = %d, want > 0", st.FreedBytes)
	}
	for _, key := range wantDeleted {
		if _, err := os.Stat(filepath.Join(store.Dir(), key+".nts")); !os.IsNotExist(err) {
			t.Errorf("orphan artifact %s not deleted (stat err %v)", key, err)
		}
	}
	for _, key := range []string{storeKey(kept, Train), storeKey(kept, Valid), "scratch"} {
		if n, err := store.Count(key); err != nil || n == 0 {
			t.Errorf("surviving artifact %s unreadable: count %d, err %v", key, n, err)
		}
	}

	// First plan: nil oldSigs, nothing collected.
	st, err = ReconcileArtifacts(store, nil, newSigs)
	if err != nil {
		t.Fatal(err)
	}
	if st.KeptSigs != 0 || st.NewSigs != 2 || len(st.DeletedKeys) != 0 {
		t.Errorf("first-plan reconcile = %+v, want 2 new and no deletions", st)
	}
}
