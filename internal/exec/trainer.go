package exec

import (
	"fmt"
	"math/rand"
	"time"

	"nautilus/internal/data"
	"nautilus/internal/graph"
	"nautilus/internal/obs"
	"nautilus/internal/opt"
	"nautilus/internal/storage"
	"nautilus/internal/tensor"
	"nautilus/internal/train"
)

// Trainer trains fused (or singleton) reuse-plan models on dataset
// snapshots, reading materialized intermediates from the tensor store. One
// optimizer instance runs per trainable branch, each branch belonging to
// one source model of the group (the multi-optimizer training of
// Section 3).
type Trainer struct {
	Store *storage.TensorStore
	Loss  train.Loss
	// NewOptimizer builds a branch optimizer from its work item; defaults
	// to Adam at the item's learning rate.
	NewOptimizer func(opt.WorkItem) train.Optimizer
	// Seed drives mini-batch shuffling.
	Seed int64
	// Metrics, when set, accumulates execution accounting.
	Metrics *Metrics
	// Prefetch overlaps the next mini-batch's feed assembly (store reads
	// + gathers) with the current batch's compute — the pipelining the
	// paper notes can hide load costs (Section 4.2.1). Results are
	// bit-identical with or without it.
	Prefetch bool
	// Arena, when set, recycles every step-scoped tensor (feeds, forward
	// intermediates, layer caches, gradients) across mini-batches: each
	// batch runs inside a tensor.Scope released once its optimizer step
	// retires, so steady-state training stops allocating. Results are
	// bit-identical with or without it, and the peak-memory conformance
	// replay is unaffected (it meters logical tensor lifetimes, not
	// physical buffers).
	Arena *tensor.Arena
	// Obs, when set, emits per-group/epoch/batch spans, registry metrics,
	// the cost-model conformance account, and the live-tensor peak-memory
	// replay. nil disables all instrumentation (nil-check cost only).
	Obs *obs.Tracer
	// OptSlotBytes is the optimizer-state overhead per trainable parameter
	// byte assumed by the peak-memory replay; 0 defaults to 2 (Adam) when
	// NewOptimizer is nil.
	OptSlotBytes int64
}

// BranchResult reports one source model's training outcome.
type BranchResult struct {
	Item      opt.WorkItem
	ValAcc    float64
	ValLoss   float64
	FinalLoss float64
}

// TrainGroup trains one fused group for its epoch count on the snapshot
// and evaluates every branch on the validation split. Training a group is
// logically equivalent to training each member separately (Section 5.2);
// the equivalence tests in this package verify it.
func (t *Trainer) TrainGroup(g *opt.FusedGroup, snap data.Snapshot) ([]BranchResult, error) {
	//lint:ignore determinism wall-clock measurement of training time for Metrics reporting
	started := time.Now()
	span := t.Obs.Start("train/group",
		obs.Str("group", g.Name()),
		obs.Int("branches", int64(len(g.Items))),
		obs.Int("epochs", int64(g.Epochs())),
		obs.Int("batch_size", int64(g.BatchSize())))
	defer span.End()
	if t.Obs.Enabled() {
		before := tensor.DispatchSnapshot()
		defer func() { span.Attr(dispatchAttrs(before, tensor.DispatchSnapshot())...) }()
	}
	planModel, feeds, err := opt.BuildPlanModel(g.Plan)
	if err != nil {
		return nil, err
	}
	if len(planModel.Outputs) != len(g.Items) {
		return nil, fmt.Errorf("exec: %d outputs for %d branches", len(planModel.Outputs), len(g.Items))
	}
	newOpt := t.NewOptimizer
	if newOpt == nil {
		newOpt = func(it opt.WorkItem) train.Optimizer { return train.NewAdam(it.LR) }
	}

	// Branch optimizers over each source model's trainable params (layer
	// instances are shared between source models and the plan model).
	type branch struct {
		out    *graph.Node
		opt    train.Optimizer
		params map[*graph.Param]bool
	}
	branches := make([]branch, len(g.Items))
	for i, it := range g.Items {
		params := map[*graph.Param]bool{}
		for _, p := range it.Model.TrainableParams() {
			params[p] = true
		}
		branches[i] = branch{out: planModel.Outputs[i], opt: newOpt(it), params: params}
	}

	computePerRecord := g.Plan.ComputeFLOPsPerRecord()
	loadPerRecord := g.Plan.LoadBytesPerRecord()
	rng := rand.New(rand.NewSource(t.Seed))
	n := snap.TrainSize()
	var lastLoss float64

	// Conformance account: the plan's per-record predictions (and its B_mem
	// estimate) registered up front, actuals metered batch by batch.
	gc := t.Obs.Conformance().Group(g.Name())
	gc.SetPredicted(obs.CostPrediction{
		ComputeFLOPsPerRecord: computePerRecord,
		ForwardFLOPsPerRecord: g.Plan.ForwardFLOPsPerRecord(),
		LoadBytesPerRecord:    loadPerRecord,
		PeakMemoryBytes:       g.PeakMemBytes,
	})
	reg := t.Obs.Registry()
	cFlops := reg.Counter("trainer.compute_flops")
	cLoad := reg.Counter("trainer.load_bytes")
	cSteps := reg.Counter("trainer.steps")
	hWait := reg.Histogram("trainer.feed_wait_ns", feedWaitBuckets)
	samples := t.Obs.Samples()
	defer t.publishArenaStats(reg)

	// Live-tensor replay of the Section 4.3.3 peak-memory estimate: params
	// + optimizer slots as a standing base, forward activations seeded per
	// batch, gradient tensors tracked through the tape's alloc observer.
	var trk *obs.MemTracker
	var memBase int64
	if t.Obs.Enabled() {
		trk = &obs.MemTracker{}
		total, trainable := planModel.ParamCount()
		slot := t.OptSlotBytes
		if slot == 0 && t.NewOptimizer == nil {
			slot = 2 // Adam: first and second moments
		}
		memBase = total*4 + trainable*4*slot
	}
	var es, bs *obs.Span
	defer func() { bs.End(); es.End() }() // close spans left open by error returns

	for epoch := 0; epoch < g.Epochs(); epoch++ {
		es = span.Child("train/epoch", obs.Int("epoch", int64(epoch)))
		batches := train.Batches(n, g.BatchSize(), rng)
		nextFeeds := t.feedPipeline(planModel, feeds, snap, batches, span, gc)
		// Drain on every exit: an early error return below would otherwise
		// strand the prefetch goroutine blocked on send (and its prefetched
		// scope unrecycled). After a clean epoch the channel is already
		// closed and empty, so the deferred range is a no-op.
		defer func() {
			for fed := range nextFeeds {
				fed.scope.Release()
			}
		}()
		for bi, idx := range batches {
			bs = es.Child("train/batch", obs.Int("batch", int64(bi)), obs.Int("records", int64(len(idx))))
			ws := bs.Child("train/feed_wait")
			fed := <-nextFeeds
			wait := ws.End()
			hWait.Observe(wait.Nanoseconds())
			if fed.err != nil {
				fed.scope.Release()
				return nil, fed.err
			}
			feedsMap := fed.feeds
			tape, err := planModel.ForwardOpts(feedsMap, graph.ForwardOptions{Train: true, Alloc: allocOf(fed.scope)})
			if err != nil {
				fed.scope.Release()
				return nil, err
			}
			if trk != nil {
				trk.Reset(memBase + tape.LiveActivationBytes())
				tape.SetAllocObserver(trk)
			}
			yb := train.GatherIn(allocOf(fed.scope), snap.TrainY, idx)
			outGrads := map[string]*tensor.Tensor{}
			for _, b := range branches {
				logits := tape.Output(b.out)
				loss, grad := t.Loss.Compute(logits, yb)
				if grad == nil || !grad.SameShape(logits) {
					fed.scope.Release()
					return nil, fmt.Errorf("exec: loss gradient for branch %q has shape %v, want logits shape %v", b.out.Name, shapeOf(grad), logits.Shape())
				}
				lastLoss = loss
				outGrads[b.out.Name] = grad
			}
			if err := tape.Backward(outGrads); err != nil {
				fed.scope.Release()
				return nil, err
			}
			all := tape.ParamGrads()
			for _, b := range branches {
				mine := map[*graph.Param]*tensor.Tensor{}
				for p, gr := range all {
					if b.params[p] {
						mine[p] = gr
					}
				}
				b.opt.Step(mine)
			}
			if t.Metrics != nil {
				t.Metrics.ComputeFLOPs += computePerRecord * int64(len(idx))
				t.Metrics.LoadBytes += loadPerRecord * int64(len(idx))
				t.Metrics.TrainSteps++
			}
			if trk != nil {
				gc.ObservePeakMemory(trk.Peak())
				reg.Gauge("trainer.peak_live_bytes").SetMax(trk.Peak())
			}
			gc.AddTrainRecords(int64(len(idx)))
			gc.AddComputeFLOPs(computePerRecord * int64(len(idx)))
			gc.AddLoadBytes(loadPerRecord * int64(len(idx)))
			cFlops.Add(computePerRecord * int64(len(idx)))
			cLoad.Add(loadPerRecord * int64(len(idx)))
			cSteps.Add(1)
			// The optimizer has stepped and metering is done: every tensor
			// of this batch (feeds, activations, caches, gradients) is dead.
			fed.scope.Release()
			// The batch's wall time minus the feed wait is pure compute: it
			// feeds both the conformance drift account (predicted vs actual
			// seconds) and the calibration sample log (FLOPs vs wall time).
			if d := bs.End() - wait; d > 0 {
				gc.AddComputeTime(d)
				samples.AddCompute(computePerRecord*int64(len(idx)), d)
			}
		}
		es.End()
	}

	// Validation per branch.
	results := make([]BranchResult, len(g.Items))
	for i := range results {
		results[i] = BranchResult{Item: g.Items[i], FinalLoss: lastLoss}
	}
	vn := snap.ValidSize()
	if vn > 0 {
		vs := span.Child("train/validate", obs.Int("records", int64(vn)))
		forwardPerRecord := g.Plan.ForwardFLOPsPerRecord()
		correctW := make([]float64, len(branches))
		lossW := make([]float64, len(branches))
		idxAll := make([]int, vn)
		for i := range idxAll {
			idxAll[i] = i
		}
		batch := g.BatchSize()
		for lo := 0; lo < vn; lo += batch {
			hi := lo + batch
			if hi > vn {
				hi = vn
			}
			idx := idxAll[lo:hi]
			scope := t.Arena.Scope()
			fa := vs.Child("train/feed_assemble", obs.Int("records", int64(len(idx))))
			feedsMap, err := t.batchFeedsIn(planModel, feeds, Valid, snap.ValidX, idx, allocOf(scope))
			gc.AddLoadTime(fa.End())
			if err != nil {
				vs.End()
				return nil, err
			}
			vb := vs.Child("train/valid_batch", obs.Int("records", int64(len(idx))))
			tape, err := planModel.ForwardOpts(feedsMap, graph.ForwardOptions{Alloc: allocOf(scope)})
			if err != nil {
				vb.End()
				vs.End()
				return nil, err
			}
			yb := train.GatherIn(allocOf(scope), snap.ValidY, idx)
			w := float64(len(idx)) / float64(vn)
			for bi, b := range branches {
				out := tape.Output(b.out)
				correctW[bi] += t.Loss.Accuracy(out, yb) * w
				l, _ := t.Loss.Compute(out, yb)
				lossW[bi] += l * w
			}
			// Forward + scoring wall time is validation's compute leg.
			if d := vb.End(); d > 0 {
				gc.AddComputeTime(d)
				samples.AddCompute(forwardPerRecord*int64(len(idx)), d)
			}
			if t.Metrics != nil {
				// Validation pays the forward-only share of the plan.
				t.Metrics.ComputeFLOPs += forwardPerRecord * int64(len(idx))
				t.Metrics.LoadBytes += loadPerRecord * int64(len(idx))
			}
			gc.AddValidRecords(int64(len(idx)))
			gc.AddComputeFLOPs(forwardPerRecord * int64(len(idx)))
			gc.AddLoadBytes(loadPerRecord * int64(len(idx)))
			cFlops.Add(forwardPerRecord * int64(len(idx)))
			cLoad.Add(loadPerRecord * int64(len(idx)))
			scope.Release()
		}
		vs.End()
		for i := range results {
			results[i].ValAcc = correctW[i]
			results[i].ValLoss = lossW[i]
		}
	}
	if t.Metrics != nil {
		//lint:ignore determinism wall-clock measurement of training time for Metrics reporting
		t.Metrics.Wall += time.Since(started)
	}
	return results, nil
}

// batchFeeds assembles the feed map for one mini-batch: dataset inputs
// gather from the in-memory snapshot, materialized feeds read from the
// store.
func (t *Trainer) batchFeeds(planModel *graph.Model, feedSigs map[string]graph.Signature, split Split, x *tensor.Tensor, idx []int) (map[string]*tensor.Tensor, error) {
	return t.batchFeedsIn(planModel, feedSigs, split, x, idx, nil)
}

// batchFeedsIn is batchFeeds allocating every feed from a (the batch's step
// scope), so the whole step derives from recycled buffers.
func (t *Trainer) batchFeedsIn(planModel *graph.Model, feedSigs map[string]graph.Signature, split Split, x *tensor.Tensor, idx []int, a tensor.Alloc) (map[string]*tensor.Tensor, error) {
	feeds := map[string]*tensor.Tensor{}
	for _, in := range planModel.Inputs() {
		if sig, ok := feedSigs[in.Name]; ok {
			rows, err := t.Store.ReadRowsIn(storeKey(sig, split), idx, a)
			if err != nil {
				return nil, fmt.Errorf("exec: read materialized %v: %w", sig, err)
			}
			feeds[in.Name] = rows
			continue
		}
		feeds[in.Name] = train.GatherIn(a, x, idx)
	}
	return feeds, nil
}

// shapeOf renders a possibly-nil tensor's shape for error messages.
func shapeOf(t *tensor.Tensor) []int {
	if t == nil {
		return nil
	}
	return t.Shape()
}

// allocOf converts a possibly-nil *tensor.Scope into a tensor.Alloc without
// producing a typed-nil interface.
func allocOf(s *tensor.Scope) tensor.Alloc {
	if s == nil {
		return nil
	}
	return s
}

// publishArenaStats exports the arena's hit/miss counters as registry
// gauges after a group trains.
func (t *Trainer) publishArenaStats(reg *obs.Registry) {
	if t.Arena == nil || reg == nil {
		return
	}
	st := t.Arena.Stats()
	reg.Gauge("trainer.arena_gets").Set(st.Gets)
	reg.Gauge("trainer.arena_hits").Set(st.Hits)
	reg.Gauge("trainer.arena_misses").Set(st.Misses)
	reg.Gauge("trainer.arena_pooled_bytes").Set(st.PooledBytes)
}

// Checkpoint writes the group's trained weights. Nautilus plans persist
// only trainable parameters (frozen weights reproduce from the hub), which
// is the disk-write reduction of Figure 11; pass full=true for the
// Current Practice behaviour of checkpointing entire models.
func (t *Trainer) Checkpoint(g *opt.FusedGroup, path string, full bool) error {
	sp := t.Obs.Start("train/checkpoint", obs.Str("group", g.Name()), obs.Bool("full", full))
	defer sp.End()
	planModel, _, err := opt.BuildPlanModel(g.Plan)
	if err != nil {
		return err
	}
	var counters *storage.Counters
	if t.Metrics != nil {
		counters = t.Metrics.Disk
	}
	return storage.SaveModel(path, planModel, storage.CheckpointOptions{TrainableOnly: !full}, counters)
}

// fedBatch is one prefetched mini-batch's feeds plus the step scope they
// were allocated from; the compute loop releases the scope once the batch's
// optimizer step retires.
type fedBatch struct {
	feeds map[string]*tensor.Tensor
	scope *tensor.Scope
	err   error
}

// feedWaitBuckets sizes the feed-wait histogram (how long the compute loop
// blocked on the next batch's feeds): 1µs to 100ms in decade steps. With
// prefetch overlap working, observations should concentrate in the low
// buckets.
var feedWaitBuckets = []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8}

// feedPipeline produces each batch's feeds in order. With Prefetch set, a
// goroutine assembles feeds one batch ahead (buffered channel of 1) so
// store reads overlap the previous batch's compute; otherwise feeds are
// assembled lazily on receive. Assembly spans are children of the group
// span on a separate track, so the trace shows the overlap (or its
// absence) directly against the batch spans.
func (t *Trainer) feedPipeline(planModel *graph.Model, feedSigs map[string]graph.Signature, snap data.Snapshot, batches [][]int, group *obs.Span, gc *obs.GroupConformance) <-chan fedBatch {
	buf := 0
	if t.Prefetch {
		buf = 1
	}
	ch := make(chan fedBatch, buf)
	go func() {
		defer close(ch)
		for bi, idx := range batches {
			as := group.Child("train/feed_assemble", obs.Int("batch", int64(bi)), obs.Int("records", int64(len(idx))))
			as.SetTrack(2)
			// One scope per batch: the prefetcher fills batch t+1's scope
			// while batch t computes in its own, so recycling never crosses
			// the pipeline boundary.
			scope := t.Arena.Scope()
			feeds, err := t.batchFeedsIn(planModel, feedSigs, Train, snap.TrainX, idx, allocOf(scope))
			// Assembly time (store reads + host gathers) is the actual load
			// leg of the conformance drift account.
			gc.AddLoadTime(as.End())
			ch <- fedBatch{feeds: feeds, scope: scope, err: err}
			if err != nil {
				return
			}
		}
	}()
	return ch
}
