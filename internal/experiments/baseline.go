package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// BaselineVersion is the on-disk schema version of baseline files.
const BaselineVersion = 1

// BaselineMetric is one gated benchmark metric: its value, which direction
// is better, and the relative tolerance (percent) inside which a change is
// noise rather than a regression.
type BaselineMetric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	// Higher reports whether larger values are better (throughput-like);
	// false means smaller is better (latency-, error-, and count-like).
	Higher bool `json:"higher_is_better"`
	// TolPct is the allowed relative worsening in percent before the
	// comparison counts as a regression.
	TolPct float64 `json:"tol_pct"`
}

// BaselineFile is the committed perf-regression baseline.
type BaselineFile struct {
	Version int              `json:"version"`
	Metrics []BaselineMetric `json:"metrics"`
}

// WriteBaseline persists the metrics as an indented baseline file.
func WriteBaseline(path string, metrics []BaselineMetric) error {
	data, err := json.MarshalIndent(BaselineFile{Version: BaselineVersion, Metrics: metrics}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads and validates a baseline file.
func LoadBaseline(path string) ([]BaselineMetric, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: read baseline: %w", err)
	}
	var f BaselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("experiments: parse baseline %s: %w", path, err)
	}
	if f.Version != BaselineVersion {
		return nil, fmt.Errorf("experiments: baseline %s has version %d, this build reads version %d — rewrite it (nautilus-bench -write-baseline)",
			path, f.Version, BaselineVersion)
	}
	return f.Metrics, nil
}

// BaselineComparison is one metric's verdict.
type BaselineComparison struct {
	Name        string
	Base        float64
	Current     float64
	ChangePct   float64
	TolPct      float64
	Regressed   bool
	Missing     bool // metric in the baseline but absent from this run
	Unbaselined bool // metric in this run but absent from the baseline
}

// CompareBaseline scores current metrics against a baseline. Each baseline
// metric must have a current counterpart (missing ones count as
// regressions — a silently dropped gate is worse than a failing one);
// current metrics with no baseline entry are reported informationally.
// The comparison is noise-aware: a worsening within the metric's TolPct is
// accepted.
func CompareBaseline(base, current []BaselineMetric) (comparisons []BaselineComparison, regressions int) {
	cur := map[string]BaselineMetric{}
	for _, m := range current {
		cur[m.Name] = m
	}
	seen := map[string]bool{}
	for _, b := range base {
		seen[b.Name] = true
		c, ok := cur[b.Name]
		if !ok {
			comparisons = append(comparisons, BaselineComparison{Name: b.Name, Base: b.Value, Missing: true, Regressed: true})
			regressions++
			continue
		}
		cmp := BaselineComparison{Name: b.Name, Base: b.Value, Current: c.Value, TolPct: b.TolPct}
		//lint:ignore floateq exact-zero base: relative change is undefined, not a tolerance check
		if b.Value != 0 {
			cmp.ChangePct = 100 * (c.Value - b.Value) / b.Value
		}
		worsePct := cmp.ChangePct
		if b.Higher {
			worsePct = -worsePct
		}
		if worsePct > b.TolPct {
			cmp.Regressed = true
			regressions++
		}
		comparisons = append(comparisons, cmp)
	}
	for _, c := range current {
		if !seen[c.Name] {
			comparisons = append(comparisons, BaselineComparison{Name: c.Name, Current: c.Value, Unbaselined: true})
		}
	}
	return comparisons, regressions
}

// PrintBaselineComparison renders the gate verdict table.
func PrintBaselineComparison(w io.Writer, comparisons []BaselineComparison, regressions int) error {
	p := &printer{w: w}
	p.printf("Perf-regression gate (%d metrics)\n", len(comparisons))
	p.printf("%-28s %14s %14s %9s %7s  %s\n", "metric", "baseline", "current", "change", "tol", "verdict")
	for _, c := range comparisons {
		switch {
		case c.Missing:
			p.printf("%-28s %14.4g %14s %9s %7s  REGRESSED (metric missing from this run)\n", c.Name, c.Base, "-", "-", "-")
		case c.Unbaselined:
			p.printf("%-28s %14s %14.4g %9s %7s  new (not in baseline)\n", c.Name, "-", c.Current, "-", "-")
		default:
			verdict := "ok"
			if c.Regressed {
				verdict = "REGRESSED"
			}
			p.printf("%-28s %14.4g %14.4g %8.2f%% %6.1f%%  %s\n", c.Name, c.Base, c.Current, c.ChangePct, c.TolPct, verdict)
		}
	}
	if regressions > 0 {
		p.printf("%d regression(s) beyond tolerance\n", regressions)
	} else {
		p.printf("no regressions\n")
	}
	return p.err
}

// Baseline collectors: experiments contribute ratio- and count-valued
// metrics (deterministic or noise-normalized), not raw wall times — a
// loaded CI machine shifts every absolute time together, but ratios
// against an in-run control leg stay comparable. Zero-valued metrics are
// skipped: a zero base makes relative tolerance meaningless.

// appendMetric adds a metric unless its value is zero.
func appendMetric(ms []BaselineMetric, name string, value float64, higher bool, tolPct float64) []BaselineMetric {
	//lint:ignore floateq exact-zero sentinel for "metric not collected this run"
	if value == 0 {
		return ms
	}
	return append(ms, BaselineMetric{Name: name, Value: value, Higher: higher, TolPct: tolPct})
}

// ObsBaselineMetrics gates the observability overhead: the nil-sink and
// active-sink wall-time ratios against the uninstrumented control leg
// (≈1.0, lower is better) and the span volume per run (deterministic).
func ObsBaselineMetrics(r *ObsOverheadResult) []BaselineMetric {
	var ms []BaselineMetric
	if r.NoObsSec > 0 {
		ms = appendMetric(ms, "obs.nil_sink_ratio", r.NilSinkSec/r.NoObsSec, false, 15)
		ms = appendMetric(ms, "obs.active_sink_ratio", r.ActiveSinkSec/r.NoObsSec, false, 15)
	}
	ms = appendMetric(ms, "obs.spans_per_run", float64(r.SpansPerRun), false, 10)
	return ms
}

// ReplanBaselineMetrics gates the incremental-replan shape: all counts and
// byte totals are deterministic, so tolerances are tight.
func ReplanBaselineMetrics(r *ReplanResult) []BaselineMetric {
	var ms []BaselineMetric
	ms = appendMetric(ms, "replan.incremental_bytes", float64(r.IncrementalBytes), false, 2)
	ms = appendMetric(ms, "replan.savings_pct", r.SavingsPct, true, 2)
	ms = appendMetric(ms, "replan.groups_checked", float64(r.GroupsChecked), false, 0)
	ms = appendMetric(ms, "replan.new_sigs", float64(r.NewSigs), false, 0)
	return ms
}

// FusionBaselineMetrics gates fusion plan quality: the enum/greedy cost
// ratio and the fixture improvement are deterministic plan-cost ratios
// (tight tolerance); the search counters guard against the DP silently
// exploding or collapsing (loose tolerance — pruning order may shift).
func FusionBaselineMetrics(r *FusionResult) []BaselineMetric {
	var ms []BaselineMetric
	ms = appendMetric(ms, "fusion.cost_ratio", r.CostRatio, false, 1)
	ms = appendMetric(ms, "fusion.fixture_improvement_pct", r.FixtureImprovementPct, true, 5)
	ms = appendMetric(ms, "fusion.enum_states", float64(r.EnumStats.StatesExplored), false, 25)
	ms = appendMetric(ms, "fusion.enum_groups_built", float64(r.EnumStats.PairsEvaluated), false, 25)
	return ms
}

// KernelsBaselineMetrics gates the autotuned kernels: the headline matmul
// speedups over the seed reference (in-run ratios, so wall-clock load
// shifts both legs together), the worst parallel speedup across kernels
// (must stay >= 1.0 — the tuned cutoffs' whole job), and the end-to-end
// training epoch speedup.
func KernelsBaselineMetrics(r *KernelsResult) []BaselineMetric {
	var ms []BaselineMetric
	minPar, haveMin := 0.0, false
	for _, k := range r.Kernels {
		switch k.Name {
		case "matmul_1024":
			ms = appendMetric(ms, "kernels.matmul_1024_speedup", k.SpeedupVsSeed, true, 25)
		case "matmul_256":
			ms = appendMetric(ms, "kernels.matmul_256_speedup", k.SpeedupVsSeed, true, 25)
		}
		if !haveMin || k.ParallelSpeedup < minPar {
			minPar, haveMin = k.ParallelSpeedup, true
		}
	}
	ms = appendMetric(ms, "kernels.min_parallel_speedup", minPar, true, 5)
	if r.Train != nil {
		ms = appendMetric(ms, "kernels.train_epoch_speedup", r.Train.EpochSpeedup, true, 30)
	}
	return ms
}

// CalibBaselineMetrics gates calibration quality: the fitted constants'
// conformance error (dimensionless, machine-local) must stay tight, and
// the sample volume must not silently collapse. The compute-error
// tolerance is wide because autotuned kernels make per-shape throughput
// heterogeneous — the single-constant fit's residual swings ~3x run to
// run — while the failure mode being gated (calibration not tightening
// at all) sits near 1.0, ~25x the baseline.
func CalibBaselineMetrics(r *CalibResult) []BaselineMetric {
	var ms []BaselineMetric
	ms = appendMetric(ms, "calib.err_compute_after", r.ErrComputeAfter, false, 400)
	ms = appendMetric(ms, "calib.compute_samples", float64(r.ComputeSamples), true, 20)
	return ms
}

// LintBaselineMetrics gates the incremental lint cache: a warm sweep must
// replay the cold sweep's findings identically and markedly faster. The
// speedup is capped at 10 before gating so the committed baseline encodes
// the contract "warm is at least ~3x faster than cold" (cap 10, 70%
// tolerance → floor 3x) instead of whatever a fast machine happened to
// measure; warm_identical is emitted only when the replayed findings
// matched, so a divergence trips the missing-metric regression.
func LintBaselineMetrics(r *LintBenchResult) []BaselineMetric {
	var ms []BaselineMetric
	speedup := r.WarmSpeedup
	if speedup > 10 {
		speedup = 10
	}
	ms = appendMetric(ms, "lint.warm_speedup", speedup, true, 70)
	if r.WarmIdentical {
		ms = appendMetric(ms, "lint.warm_identical", 1, true, 0)
	}
	return ms
}
