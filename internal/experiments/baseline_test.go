package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBaselineRoundTripAndCompare(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	base := []BaselineMetric{
		{Name: "lower_better", Value: 100, Higher: false, TolPct: 10},
		{Name: "higher_better", Value: 50, Higher: true, TolPct: 10},
		{Name: "dropped", Value: 1, Higher: false, TolPct: 5},
	}
	if err := WriteBaseline(path, base); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(base) || loaded[0] != base[0] {
		t.Fatalf("round trip mismatch: %+v", loaded)
	}

	current := []BaselineMetric{
		{Name: "lower_better", Value: 125}, // 25% worse, beyond 10% tol
		{Name: "higher_better", Value: 47}, // 6% worse, within tol
		{Name: "unbaselined", Value: 3},    // informational only
	}
	comparisons, regressions := CompareBaseline(loaded, current)
	// lower_better regressed + dropped missing = 2; higher_better within tol.
	if regressions != 2 {
		t.Fatalf("regressions = %d, want 2: %+v", regressions, comparisons)
	}
	byName := map[string]BaselineComparison{}
	for _, c := range comparisons {
		byName[c.Name] = c
	}
	if !byName["lower_better"].Regressed {
		t.Error("25%% worsening beyond 10%% tolerance not flagged")
	}
	if byName["higher_better"].Regressed {
		t.Error("within-tolerance worsening flagged as regression")
	}
	if c := byName["dropped"]; !c.Missing || !c.Regressed {
		t.Errorf("missing metric not counted as regression: %+v", c)
	}
	if c := byName["unbaselined"]; !c.Unbaselined || c.Regressed {
		t.Errorf("new metric mishandled: %+v", c)
	}

	// An improvement in either direction is never a regression.
	better := []BaselineMetric{
		{Name: "lower_better", Value: 80},
		{Name: "higher_better", Value: 60},
		{Name: "dropped", Value: 1},
	}
	if _, n := CompareBaseline(loaded, better); n != 0 {
		t.Errorf("improvements counted as regressions: %d", n)
	}
}

func TestBaselineVersionCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	if err := WriteBaseline(path, []BaselineMetric{{Name: "m", Value: 1}}); err != nil {
		t.Fatal(err)
	}
	// Overwriting with a skewed version must be rejected on load.
	skew := BaselineFile{Version: BaselineVersion + 1, Metrics: []BaselineMetric{{Name: "m", Value: 1}}}
	raw, err := json.Marshal(skew)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("version-skewed baseline accepted")
	}
}
