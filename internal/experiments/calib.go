package experiments

import (
	"encoding/json"
	"io"
	"os"

	"nautilus/internal/core"
	"nautilus/internal/obs"
	"nautilus/internal/obs/calib"
	"nautilus/internal/profile"
	"nautilus/internal/workloads"
)

// CalibResult reports the trace-calibration experiment: a mini workload
// runs under a sinkless tracer, the calibration fitter regresses measured
// throughput constants from its sample log, and the mean absolute
// predicted-vs-actual time error is scored twice — once with the static
// DefaultHardware constants the paper assumes, once with the fitted ones.
// Calibration tightens conformance when the After columns beat Before.
type CalibResult struct {
	Workload string `json:"workload"`
	Cycles   int    `json:"cycles"`

	ComputeSamples int `json:"compute_samples"`
	ComputeTrimmed int `json:"compute_trimmed"`
	ReadSamples    int `json:"read_samples"`

	// Static constants (profile.DefaultHardware) vs fitted ones.
	DefaultFLOPS   float64 `json:"default_flops_per_sec"`
	FittedFLOPS    float64 `json:"fitted_flops_per_sec"`
	DefaultReadBps float64 `json:"default_read_bytes_per_sec"`
	FittedReadBps  float64 `json:"fitted_read_bytes_per_sec"`

	// Mean |predicted − actual| / actual over per-sample seconds, scored
	// on the outlier-trimmed sample set (the measurements the fit trusts)
	// so a single GC stall cannot dominate either column.
	ErrComputeBefore float64 `json:"err_compute_before"`
	ErrComputeAfter  float64 `json:"err_compute_after"`
	ErrLoadBefore    float64 `json:"err_load_before"`
	ErrLoadAfter     float64 `json:"err_load_after"`
}

// Calib runs the calibration-tightens-conformance experiment on a small
// real-training workload.
func Calib() (*CalibResult, error) {
	const workload, cycles = "FTR-1", 2
	spec, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	inst, err := spec.Build(workloads.Mini, MiniHardware())
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "nautilus-calibbench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	tr := obs.New(nil)
	cfg := core.DefaultConfig(dir)
	cfg.HW = MiniHardware()
	cfg.MaxRecords = 600
	cfg.Obs = tr
	if _, err := core.Run(inst, cfg, 1, cycles); err != nil {
		return nil, err
	}

	c, err := calib.FromTracer(tr, "bench "+workload)
	if err != nil {
		return nil, err
	}
	base := profile.DefaultHardware()
	fitted := c.Apply(base)
	log := tr.Samples()
	compute := calib.Trim(log.Compute())
	read := calib.Trim(log.Read())
	res := &CalibResult{
		Workload:         workload,
		Cycles:           cycles,
		ComputeSamples:   c.Compute.Samples,
		ComputeTrimmed:   c.Compute.Trimmed,
		ReadSamples:      c.Read.Samples,
		DefaultFLOPS:     base.FLOPSThroughput,
		FittedFLOPS:      fitted.FLOPSThroughput,
		DefaultReadBps:   base.DiskThroughput,
		FittedReadBps:    fitted.DiskThroughput,
		ErrComputeBefore: calib.MeanAbsRelErr(compute, base.FLOPSThroughput),
		ErrComputeAfter:  calib.MeanAbsRelErr(compute, fitted.FLOPSThroughput),
		ErrLoadBefore:    calib.MeanAbsRelErr(read, base.DiskThroughput),
		ErrLoadAfter:     calib.MeanAbsRelErr(read, fitted.DiskThroughput),
	}
	if err := tr.Close(); err != nil {
		return nil, err
	}
	return res, nil
}

// PrintCalib renders the before/after conformance comparison.
func PrintCalib(w io.Writer, r *CalibResult) error {
	p := &printer{w: w}
	p.printf("Trace calibration on %s (%d cycles, real training)\n", r.Workload, r.Cycles)
	p.printf("%-10s %12s %12s %22s %22s\n", "channel", "samples", "trimmed", "throughput (fit)", "throughput (static)")
	p.printf("%-10s %12d %12d %22.3g %22.3g\n", "compute", r.ComputeSamples, r.ComputeTrimmed, r.FittedFLOPS, r.DefaultFLOPS)
	p.printf("%-10s %12d %12s %22.3g %22.3g\n", "read", r.ReadSamples, "-", r.FittedReadBps, r.DefaultReadBps)
	p.printf("\nmean abs predicted-vs-actual time error (lower is tighter)\n")
	p.printf("%-10s %14s %14s\n", "channel", "static HW", "calibrated")
	p.printf("%-10s %14.4f %14.4f\n", "compute", r.ErrComputeBefore, r.ErrComputeAfter)
	p.printf("%-10s %14.4f %14.4f\n", "load", r.ErrLoadBefore, r.ErrLoadAfter)
	return p.err
}

// WriteCalibJSON writes the result as indented JSON at path.
func WriteCalibJSON(path string, r *CalibResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
