// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Paper-scale experiments drive the real optimizer
// over BERT-base / ResNet-50 topology profiles and replay the resulting
// plans on the cost-clock simulator; the learning-curve experiment
// (Figure 7) additionally runs real mini-scale training through the same
// code path. cmd/nautilus-bench and the repository's bench_test.go both
// print their rows from here.
package experiments

import (
	"fmt"
	"io"

	"nautilus/internal/core"
	"nautilus/internal/graph"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
	"nautilus/internal/simclock"
	"nautilus/internal/workloads"
)

// printer accumulates the first write error so table renderers stay terse;
// the renderer returns it once at the end instead of checking every row.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

// paperMaxRecords is the expected maximum number of records r configured
// for paper-scale runs: 10 cycles × 500 records.
const paperMaxRecords = 5000

// PaperConfig returns the experiment configuration of Section 5: 25 GB
// disk budget, 10 GB memory budget, Titan-X-class throughput.
func PaperConfig(approach core.Approach) core.Config {
	cfg := core.DefaultConfig("")
	cfg.Approach = approach
	cfg.MaxRecords = paperMaxRecords
	if fuserName != "" {
		cfg.Fuser = fuserName
	}
	cfg.FuseStateBudget = fuserBudget
	return cfg
}

// fuserName/fuserBudget override the fusion strategy for every experiment
// config (nautilus-bench -fuser / -fuse-budget).
var (
	fuserName   string
	fuserBudget int
)

// SetFuser applies a fusion-strategy override to all subsequently built
// experiment configs. Empty name keeps each experiment's own default.
func SetFuser(name string, budget int) { fuserName, fuserBudget = name, budget }

// instanceCache memoizes built paper-scale workload instances (building 36
// BERT-base candidates and profiling them is not free).
var instanceCache = map[string]*workloads.Instance{}

// PaperInstance builds (or returns the cached) paper-scale instance of a
// workload.
func PaperInstance(spec workloads.Spec) (*workloads.Instance, error) {
	if inst, ok := instanceCache[spec.Name]; ok {
		return inst, nil
	}
	inst, err := spec.Build(workloads.Paper, profile.DefaultHardware())
	if err != nil {
		return nil, err
	}
	instanceCache[spec.Name] = inst
	return inst, nil
}

// planCache memoizes workload plans keyed by (workload, approach, budgets,
// solver, fusion strategy).
var planCache = map[string]*core.WorkloadPlan{}

// planFor runs PlanWorkload with memoization.
func planFor(inst *workloads.Instance, cfg core.Config) (*core.WorkloadPlan, error) {
	key := fmt.Sprintf("%s|%s|%d|%d|%s|%s|%d", inst.Spec.Name, cfg.Approach, cfg.DiskBudgetBytes, cfg.MemBudgetBytes, cfg.Solver, cfg.Fuser, cfg.FuseStateBudget)
	if wp, ok := planCache[key]; ok {
		return wp, nil
	}
	wp, err := core.PlanWorkload(inst.Items, inst.MM, cfg, cfg.MaxRecords)
	if err != nil {
		return nil, err
	}
	planCache[key] = wp
	return wp, nil
}

// SimulateApproach plans one approach for a paper-scale instance and
// replays it on the cost clock.
func SimulateApproach(inst *workloads.Instance, cfg core.Config) (*simclock.Result, *core.WorkloadPlan, error) {
	wp, err := planFor(inst, cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := simulatePlanned(inst, cfg, wp)
	if err != nil {
		return nil, nil, err
	}
	return res, wp, nil
}

// simulatePlanned replays an already-computed workload plan on the cost
// clock.
func simulatePlanned(inst *workloads.Instance, cfg core.Config, wp *core.WorkloadPlan) (*simclock.Result, error) {
	matFLOPs, matBytes, err := MaterializationCost(inst, wp.MatSigs)
	if err != nil {
		return nil, err
	}
	w := simclock.Workload{
		Items:             inst.Items,
		Groups:            wp.Groups,
		MatSigs:           wp.MatSigs,
		MatFLOPsPerRecord: matFLOPs,
		MatBytesPerRecord: matBytes,
		OptimizeSec:       wp.Stats.OptimizeTime.Seconds(),
		ProfileModels:     cfg.Approach != core.CurrentPractice,
		FullCheckpoints:   cfg.Approach == core.CurrentPractice,
	}
	return simclock.Simulate(w, simclock.PaperSchedule(), cfg.HW, simclock.DefaultOverheads())
}

// MaterializationCost prices one record's materialization pass: the FLOPs
// of computing every chosen output (the ancestor closure of V in the
// multi-model graph, each merged node once) and the bytes written.
func MaterializationCost(inst *workloads.Instance, sigs map[graph.Signature]bool) (flops, bytes int64, err error) {
	if len(sigs) == 0 {
		return 0, 0, nil
	}
	prof, err := profile.Profile(inst.MM.Graph, inst.Items[0].Prof.HW)
	if err != nil {
		return 0, 0, err
	}
	var chosen []*graph.Node
	for _, n := range inst.MM.Graph.Nodes() {
		if sigs[inst.MM.Sig[n]] {
			chosen = append(chosen, n)
			bytes += prof.Layers[n].OutBytes
		}
	}
	need := map[*graph.Node]bool{}
	for _, c := range chosen {
		for n := range graph.Ancestors(c) {
			need[n] = true
		}
	}
	for n := range need {
		flops += prof.Layers[n].ForwardFLOPs
	}
	return flops, bytes, nil
}

// TheoreticalSpeedup re-exports the Equation 11 bound for a built
// instance.
func TheoreticalSpeedup(inst *workloads.Instance) float64 {
	return opt.TheoreticalSpeedup(inst.Items)
}

// Minutes converts seconds to minutes for report rows.
func Minutes(sec float64) float64 { return sec / 60 }
