package experiments

import (
	"io"
	"testing"

	"nautilus/internal/workloads"
)

func TestFig6AShapeHolds(t *testing.T) {
	rows, err := Fig6A()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	best := ""
	bestSpeedup := 0.0
	for _, r := range rows {
		// Ordering the paper reports: Nautilus beats MAT-ALL beats (or
		// ties) Current Practice on every workload.
		if r.Nautilus >= r.MatAll {
			t.Errorf("%s: nautilus (%.1f min) not faster than MAT-ALL (%.1f)", r.Workload, r.Nautilus, r.MatAll)
		}
		if r.Nautilus >= r.CurrentPractice {
			t.Errorf("%s: nautilus not faster than current practice", r.Workload)
		}
		if r.NautilusSpeedup > bestSpeedup {
			bestSpeedup = r.NautilusSpeedup
			best = r.Workload
		}
	}
	// The paper's headline: highest speedup on FTR-2, several-fold.
	if best != "FTR-2" {
		t.Errorf("highest speedup on %s, want FTR-2", best)
	}
	if bestSpeedup < 3 {
		t.Errorf("best speedup %.1fX, want >= 3X", bestSpeedup)
	}
	PrintFig6A(io.Discard, rows)
}

func TestFig6BSpeedupsPerCycle(t *testing.T) {
	r, err := Fig6B()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CycleSpeedups) != 10 {
		t.Fatalf("cycles = %d", len(r.CycleSpeedups))
	}
	for i, s := range r.CycleSpeedups {
		if s < 2 {
			t.Errorf("cycle %d speedup %.1fX, want >= 2X", i+1, s)
		}
	}
	// Nautilus init costs more than Current Practice init (profiling +
	// optimization + plan checkpoints), as in §5.1.
	if r.InitNautilusMin <= r.InitCurrentPracticeMin {
		t.Error("nautilus init should exceed current practice init")
	}
	// Original-checkpoint creation dominates the init breakdown.
	if r.InitShares.OriginalCheckpoints < 0.5 {
		t.Errorf("checkpoint share %.2f, want dominant", r.InitShares.OriginalCheckpoints)
	}
	PrintFig6B(io.Discard, r)
}

func TestFig6CSpeedupDecaysWithLabelingCost(t *testing.T) {
	rows, err := Fig6C()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup >= rows[i-1].Speedup {
			t.Errorf("speedup must decay as labeling dominates: %v", rows)
		}
	}
	if rows[0].Speedup < 2 {
		t.Errorf("multi-labeler speedup %.1fX, want >= 2X", rows[0].Speedup)
	}
	last := rows[len(rows)-1]
	if last.Speedup > 2 {
		t.Errorf("single-labeler speedup %.1fX should be modest", last.Speedup)
	}
	PrintFig6C(io.Discard, rows)
}

func TestFig8AblationShape(t *testing.T) {
	rows, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig8Row{}
	for _, r := range rows {
		byName[r.Workload] = r
		// Disabling an optimization never speeds things up.
		if r.NoMatSlowdownPct < -1 || r.NoFuseSlowdownPct < -1 {
			t.Errorf("%s: negative slowdown %+v", r.Workload, r)
		}
	}
	// §5.3: FTU's runtime does not change without MAT OPT (it computes
	// all materializable layers anyway).
	if ftu := byName["FTU"]; ftu.NoMatSlowdownPct > 3 {
		t.Errorf("FTU w/o MAT slowdown %.0f%%, paper reports none", ftu.NoMatSlowdownPct)
	}
	// FTR-3 is where missing MAT OPT hurts most (two epoch settings
	// amplify recomputation).
	worstNoMat := ""
	worst := 0.0
	for _, r := range rows {
		if r.NoMatSlowdownPct > worst {
			worst = r.NoMatSlowdownPct
			worstNoMat = r.Workload
		}
	}
	if worstNoMat != "FTR-3" {
		t.Errorf("worst w/o MAT on %s, paper reports FTR-3", worstNoMat)
	}
	PrintFig8(io.Discard, rows)
}

func TestFig9FusionCrossover(t *testing.T) {
	rows, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	// At 1 model, fusion gives no benefit: Nautilus == w/o FUSE.
	if d := rows[0].Nautilus - rows[0].NoFuse; d > 0.2 || d < -0.2 {
		t.Errorf("single model: nautilus %.1f vs w/o FUSE %.1f should match", rows[0].Nautilus, rows[0].NoFuse)
	}
	// With few models, losing MAT hurts more than losing FUSE; with many
	// models the order flips (the paper's crossover).
	first, last := rows[0], rows[len(rows)-1]
	if first.NoMat <= first.NoFuse {
		t.Errorf("at %d models w/o MAT (%.1f) should exceed w/o FUSE (%.1f)", first.NumModels, first.NoMat, first.NoFuse)
	}
	if last.NoFuse <= last.NoMat {
		t.Errorf("at %d models w/o FUSE (%.1f) should exceed w/o MAT (%.1f)", last.NumModels, last.NoFuse, last.NoMat)
	}
	PrintFig9(io.Discard, rows)
}

func TestFig10BudgetSweeps(t *testing.T) {
	a, err := Fig10A()
	if err != nil {
		t.Fatal(err)
	}
	// Zero budget materializes nothing; runtime decreases monotonically
	// (within tolerance) and plateaus.
	if a[0].Materialized != 0 {
		t.Error("zero budget must materialize nothing")
	}
	for i := 1; i < len(a); i++ {
		if a[i].Minutes > a[i-1].Minutes*1.01 {
			t.Errorf("10A not monotone: %v", a)
		}
		if float64(a[i].StorageGB) > a[i].BudgetGB {
			t.Errorf("10A budget violated at %v GB", a[i].BudgetGB)
		}
	}
	if last := a[len(a)-1]; last.Speedup < 2 {
		t.Errorf("10A plateau speedup %.1fX, want >= 2X", last.Speedup)
	}

	b, err := Fig10B()
	if err != nil {
		t.Fatal(err)
	}
	// 2 GB fits almost no pair (the analytical estimate is an upper
	// bound, so a few borderline pairs may still squeeze in).
	if b[0].Groups < 20 {
		t.Errorf("2GB budget should prevent nearly all fusion, got %d groups", b[0].Groups)
	}
	if last := b[len(b)-1]; last.Groups >= b[0].Groups {
		t.Error("generous memory budget should fuse far more")
	}
	for i := 1; i < len(b); i++ {
		if b[i].Minutes > b[i-1].Minutes*1.01 {
			t.Errorf("10B not monotone: %v", b)
		}
	}
	if last := b[len(b)-1]; last.Speedup < 2 {
		t.Errorf("10B plateau speedup %.1fX, want >= 2X", last.Speedup)
	}
	PrintFig10A(io.Discard, a)
	PrintFig10B(io.Discard, b)
}

func TestFig11ResourceShape(t *testing.T) {
	r, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if r.UtilizationNautilus <= r.UtilizationCP {
		t.Errorf("nautilus utilization %.2f should exceed current practice %.2f",
			r.UtilizationNautilus, r.UtilizationCP)
	}
	if r.WriteRatio < 2 {
		t.Errorf("write reduction %.1fX, want >= 2X (paper: 4.3X)", r.WriteRatio)
	}
	if r.ReadRatio < 5 {
		t.Errorf("read reduction %.1fX, want >= 5X (paper: 11.8X)", r.ReadRatio)
	}
	PrintFig11(io.Discard, r)
}

func TestTable3Catalog(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"FTR-1": 36, "FTR-2": 24, "FTR-3": 12, "ATR": 24, "FTU": 24}
	for _, r := range rows {
		if r.NumModels != want[r.Workload] {
			t.Errorf("%s: %d models, want %d", r.Workload, r.NumModels, want[r.Workload])
		}
		if r.TheoreticalSpeedup < 1 {
			t.Errorf("%s: speedup %v < 1", r.Workload, r.TheoreticalSpeedup)
		}
	}
	PrintTable3(io.Discard, rows)
}

func TestCompareSolversAgree(t *testing.T) {
	st, err := CompareSolvers(workloads.FTR3())
	if err != nil {
		t.Fatal(err)
	}
	if !st.CostsAgree {
		t.Errorf("solvers disagree: bnb %d vs milp %d", st.BnBCost, st.MILPCost)
	}
	PrintSolverStats(io.Discard, st)
}

func TestHardwareSweepMonotoneLoads(t *testing.T) {
	rows, err := HardwareSweep()
	if err != nil {
		t.Fatal(err)
	}
	// Faster disks never cause fewer loads; plan cost never rises.
	for i := 1; i < len(rows); i++ {
		if rows[i].Loads < rows[i-1].Loads {
			t.Errorf("loads decreased with faster disk: %+v -> %+v", rows[i-1], rows[i])
		}
		if rows[i].PlanCostTFLOPs > rows[i-1].PlanCostTFLOPs*1.001 {
			t.Errorf("plan cost rose with faster disk: %+v -> %+v", rows[i-1], rows[i])
		}
	}
	// At the slow extreme the optimizer should load less than at the fast
	// extreme.
	if rows[0].Loads >= rows[len(rows)-1].Loads {
		t.Errorf("sweep shows no load sensitivity: %v", rows)
	}
	PrintHardwareSweep(io.Discard, rows)
}
