package experiments

import (
	"io"

	"nautilus/internal/core"
	"nautilus/internal/workloads"
)

// Fig10ARow is one storage-budget point of Figure 10(A): FTR-2 using only
// MAT OPT.
type Fig10ARow struct {
	BudgetGB float64
	Minutes  float64
	Speedup  float64 // over the 0-budget (≈ Current Practice) point
	// Materialized is |V| at this budget.
	Materialized int
	StorageGB    float64
}

// Fig10A reproduces Figure 10(A): MAT OPT only (fusion disabled) under a
// sweep of disk storage budgets. Budget 0 is equivalent to Current
// Practice.
func Fig10A() ([]Fig10ARow, error) {
	inst, err := PaperInstance(workloads.FTR2())
	if err != nil {
		return nil, err
	}
	var rows []Fig10ARow
	var base float64
	for i, gb := range []float64{0, 1, 2.5, 5, 7.5, 10, 15, 25} {
		cfg := PaperConfig(core.NautilusNoFuse)
		cfg.DiskBudgetBytes = int64(gb * float64(1<<30))
		wp, err := core.PlanWorkload(inst.Items, inst.MM, cfg, cfg.MaxRecords)
		if err != nil {
			return nil, err
		}
		res, err := simulatePlanned(inst, cfg, wp)
		if err != nil {
			return nil, err
		}
		row := Fig10ARow{
			BudgetGB:     gb,
			Minutes:      Minutes(res.TotalSec()),
			Materialized: wp.Stats.Materialized,
			StorageGB:    float64(wp.Stats.StorageBytes) / float64(1<<30),
		}
		if i == 0 { // the zero-budget point is the no-materialization baseline
			base = row.Minutes
		}
		row.Speedup = base / row.Minutes
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig10A renders Figure 10(A) rows.
func PrintFig10A(w io.Writer, rows []Fig10ARow) error {
	p := &printer{w: w}
	p.printf("Figure 10(A): FTR-2 with MAT OPT only vs disk storage budget\n")
	p.printf("%-10s %10s %9s %6s %10s\n", "Bdisk(GB)", "min", "speedup", "|V|", "used(GB)")
	for _, r := range rows {
		p.printf("%-10.1f %10.1f %8.1fX %6d %10.2f\n", r.BudgetGB, r.Minutes, r.Speedup, r.Materialized, r.StorageGB)
	}
	return p.err
}

// Fig10BRow is one memory-budget point of Figure 10(B): FTR-2 using only
// FUSE OPT.
type Fig10BRow struct {
	BudgetGB float64
	Minutes  float64
	Speedup  float64
	Groups   int
}

// Fig10B reproduces Figure 10(B): FUSE OPT only (materialization disabled)
// under a sweep of runtime memory budgets. At 2 GB no models fit together,
// which is equivalent to Current Practice.
func Fig10B() ([]Fig10BRow, error) {
	inst, err := PaperInstance(workloads.FTR2())
	if err != nil {
		return nil, err
	}
	var rows []Fig10BRow
	var base float64
	for i, gb := range []float64{2, 4, 6, 8, 10, 12} {
		cfg := PaperConfig(core.NautilusNoMat)
		cfg.MemBudgetBytes = int64(gb * float64(1<<30))
		wp, err := core.PlanWorkload(inst.Items, inst.MM, cfg, cfg.MaxRecords)
		if err != nil {
			return nil, err
		}
		res, err := simulatePlanned(inst, cfg, wp)
		if err != nil {
			return nil, err
		}
		row := Fig10BRow{
			BudgetGB: gb,
			Minutes:  Minutes(res.TotalSec()),
			Groups:   len(wp.Groups),
		}
		if i == 0 { // 2 GB fits no fusion groups: the Current Practice baseline
			base = row.Minutes
		}
		row.Speedup = base / row.Minutes
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig10B renders Figure 10(B) rows.
func PrintFig10B(w io.Writer, rows []Fig10BRow) error {
	p := &printer{w: w}
	p.printf("Figure 10(B): FTR-2 with FUSE OPT only vs runtime memory budget\n")
	p.printf("%-10s %10s %9s %8s\n", "Bmem(GB)", "min", "speedup", "groups")
	for _, r := range rows {
		p.printf("%-10.1f %10.1f %8.1fX %8d\n", r.BudgetGB, r.Minutes, r.Speedup, r.Groups)
	}
	return p.err
}

// Fig11Result reproduces Figure 11: resource utilization of FTR-2 under
// Current Practice vs Nautilus.
type Fig11Result struct {
	// Utilization is the compute-busy fraction (the simulator's analogue
	// of average GPU utilization).
	UtilizationCP       float64
	UtilizationNautilus float64
	// Cumulative simulated disk traffic in GB.
	ReadsCPGB        float64
	ReadsNautilusGB  float64
	WritesCPGB       float64
	WritesNautilusGB float64
	// Ratios (Current Practice / Nautilus).
	ReadRatio  float64
	WriteRatio float64
}

// Fig11 reproduces Figure 11 on FTR-2.
func Fig11() (*Fig11Result, error) {
	inst, err := PaperInstance(workloads.FTR2())
	if err != nil {
		return nil, err
	}
	cp, _, err := SimulateApproach(inst, PaperConfig(core.CurrentPractice))
	if err != nil {
		return nil, err
	}
	nt, _, err := SimulateApproach(inst, PaperConfig(core.Nautilus))
	if err != nil {
		return nil, err
	}
	gb := func(b int64) float64 { return float64(b) / float64(1<<30) }
	out := &Fig11Result{
		UtilizationCP:       cp.Utilization(),
		UtilizationNautilus: nt.Utilization(),
		ReadsCPGB:           gb(cp.DiskReadBytes),
		ReadsNautilusGB:     gb(nt.DiskReadBytes),
		WritesCPGB:          gb(cp.DiskWriteBytes),
		WritesNautilusGB:    gb(nt.DiskWriteBytes),
	}
	out.ReadRatio = out.ReadsCPGB / out.ReadsNautilusGB
	out.WriteRatio = out.WritesCPGB / out.WritesNautilusGB
	return out, nil
}

// PrintFig11 renders Figure 11.
func PrintFig11(w io.Writer, r *Fig11Result) error {
	p := &printer{w: w}
	p.printf("Figure 11: FTR-2 resource utilization\n")
	p.printf("%-22s %16s %12s\n", "", "current practice", "nautilus")
	p.printf("%-22s %15.0f%% %11.0f%%\n", "device utilization", 100*r.UtilizationCP, 100*r.UtilizationNautilus)
	p.printf("%-22s %16.1f %12.1f   (%.1fX fewer)\n", "disk reads (GB)", r.ReadsCPGB, r.ReadsNautilusGB, r.ReadRatio)
	p.printf("%-22s %16.1f %12.1f   (%.1fX fewer)\n", "disk writes (GB)", r.WritesCPGB, r.WritesNautilusGB, r.WriteRatio)
	return p.err
}
