package experiments

import (
	"fmt"
	"io"

	"nautilus/internal/core"
	"nautilus/internal/workloads"
)

// Fig6ARow is one workload's bar group in Figure 6(A): total model
// selection time per approach, in minutes, plus speedups over Current
// Practice.
type Fig6ARow struct {
	Workload        string
	CurrentPractice float64
	MatAll          float64
	Nautilus        float64
	FlopsOptimal    float64
	// Speedups over Current Practice.
	MatAllSpeedup   float64
	NautilusSpeedup float64
	OptimalSpeedup  float64
}

// Fig6A reproduces Figure 6(A): total model-selection time for Current
// Practice, MAT-ALL, Nautilus, and FLOPs Optimal across all five
// workloads.
func Fig6A() ([]Fig6ARow, error) {
	var rows []Fig6ARow
	for _, spec := range workloads.All() {
		inst, err := PaperInstance(spec)
		if err != nil {
			return nil, err
		}
		row := Fig6ARow{Workload: spec.Name}
		var cpSec float64
		for _, approach := range []core.Approach{core.CurrentPractice, core.MatAll, core.Nautilus} {
			res, _, err := SimulateApproach(inst, PaperConfig(approach))
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", spec.Name, approach, err)
			}
			min := Minutes(res.TotalSec())
			switch approach {
			case core.CurrentPractice:
				row.CurrentPractice = min
				cpSec = res.TotalSec()
			case core.MatAll:
				row.MatAll = min
			case core.Nautilus:
				row.Nautilus = min
			}
		}
		row.FlopsOptimal = Minutes(cpSec / TheoreticalSpeedup(inst))
		row.MatAllSpeedup = row.CurrentPractice / row.MatAll
		row.NautilusSpeedup = row.CurrentPractice / row.Nautilus
		row.OptimalSpeedup = row.CurrentPractice / row.FlopsOptimal
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig6A renders Figure 6(A) rows.
func PrintFig6A(w io.Writer, rows []Fig6ARow) error {
	p := &printer{w: w}
	p.printf("Figure 6(A): total model selection time (minutes) and speedup over Current Practice\n")
	p.printf("%-8s %14s %18s %18s %18s\n", "workload", "current(min)", "mat-all", "nautilus", "flops-optimal")
	for _, r := range rows {
		p.printf("%-8s %14.1f %11.1f (%.1fX) %11.1f (%.1fX) %11.1f (%.1fX)\n",
			r.Workload, r.CurrentPractice,
			r.MatAll, r.MatAllSpeedup,
			r.Nautilus, r.NautilusSpeedup,
			r.FlopsOptimal, r.OptimalSpeedup)
	}
	return p.err
}

// Fig6BResult reproduces Figure 6(B): FTR-2 model-selection time by cycle
// for Current Practice and Nautilus, plus the workload-initialization
// breakdown of Section 5.1.
type Fig6BResult struct {
	InitCurrentPracticeMin float64
	InitNautilusMin        float64
	// Nautilus init shares (the 63/12/3/21% split of Section 5.1).
	InitShares struct {
		OriginalCheckpoints float64
		Profile             float64
		Optimize            float64
		PlanCheckpoints     float64
	}
	// Per-cycle seconds.
	CurrentPractice []float64
	Nautilus        []float64
	CycleSpeedups   []float64
}

// Fig6B reproduces Figure 6(B) on FTR-2.
func Fig6B() (*Fig6BResult, error) {
	inst, err := PaperInstance(workloads.FTR2())
	if err != nil {
		return nil, err
	}
	cp, _, err := SimulateApproach(inst, PaperConfig(core.CurrentPractice))
	if err != nil {
		return nil, err
	}
	nt, _, err := SimulateApproach(inst, PaperConfig(core.Nautilus))
	if err != nil {
		return nil, err
	}
	out := &Fig6BResult{
		InitCurrentPracticeMin: Minutes(cp.Init.Total()),
		InitNautilusMin:        Minutes(nt.Init.Total()),
	}
	total := nt.Init.Total()
	out.InitShares.OriginalCheckpoints = nt.Init.OriginalCheckpointsSec / total
	out.InitShares.Profile = nt.Init.ProfileSec / total
	out.InitShares.Optimize = nt.Init.OptimizeSec / total
	out.InitShares.PlanCheckpoints = nt.Init.PlanCheckpointsSec / total
	for i := range cp.Cycles {
		out.CurrentPractice = append(out.CurrentPractice, cp.Cycles[i].Total())
		out.Nautilus = append(out.Nautilus, nt.Cycles[i].Total())
		out.CycleSpeedups = append(out.CycleSpeedups, cp.Cycles[i].Total()/nt.Cycles[i].Total())
	}
	return out, nil
}

// PrintFig6B renders Figure 6(B).
func PrintFig6B(w io.Writer, r *Fig6BResult) error {
	p := &printer{w: w}
	p.printf("Figure 6(B): FTR-2 per-cycle model selection time\n")
	p.printf("workload init: current practice %.1f min, nautilus %.1f min\n",
		r.InitCurrentPracticeMin, r.InitNautilusMin)
	p.printf("nautilus init shares: checkpoints %.0f%%, profiling %.0f%%, optimizing %.0f%%, plan checkpoints %.0f%%\n",
		100*r.InitShares.OriginalCheckpoints, 100*r.InitShares.Profile,
		100*r.InitShares.Optimize, 100*r.InitShares.PlanCheckpoints)
	p.printf("%-6s %14s %12s %9s\n", "cycle", "current(s)", "nautilus(s)", "speedup")
	for i := range r.CurrentPractice {
		p.printf("%-6d %14.0f %12.0f %8.1fX\n", i+1, r.CurrentPractice[i], r.Nautilus[i], r.CycleSpeedups[i])
	}
	return p.err
}

// Fig6CRow is one labeling-cost point of Figure 6(C): total workload time
// (labeling + model selection) for FTR-2.
type Fig6CRow struct {
	SecPerLabel     float64
	CurrentPractice float64 // minutes
	Nautilus        float64 // minutes
	Speedup         float64
}

// Fig6C reproduces Figure 6(C): total FTR-2 time as per-record labeling
// cost varies from multi-labeler (0.5 s) to single-labeler (8 s) rates.
func Fig6C() ([]Fig6CRow, error) {
	inst, err := PaperInstance(workloads.FTR2())
	if err != nil {
		return nil, err
	}
	cp, _, err := SimulateApproach(inst, PaperConfig(core.CurrentPractice))
	if err != nil {
		return nil, err
	}
	nt, _, err := SimulateApproach(inst, PaperConfig(core.Nautilus))
	if err != nil {
		return nil, err
	}
	sched := workloads.FTR2()
	_ = sched
	labeled := 10 * 500 // records labeled across the run
	var rows []Fig6CRow
	for _, spl := range []float64{0.5, 1, 2, 4, 8} {
		labelSec := spl * float64(labeled)
		row := Fig6CRow{
			SecPerLabel:     spl,
			CurrentPractice: Minutes(cp.TotalSec() + labelSec),
			Nautilus:        Minutes(nt.TotalSec() + labelSec),
		}
		row.Speedup = row.CurrentPractice / row.Nautilus
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig6C renders Figure 6(C).
func PrintFig6C(w io.Writer, rows []Fig6CRow) error {
	p := &printer{w: w}
	p.printf("Figure 6(C): FTR-2 total time including data labeling\n")
	p.printf("%-12s %14s %12s %9s\n", "sec/label", "current(min)", "nautilus", "speedup")
	for _, r := range rows {
		p.printf("%-12.1f %14.1f %12.1f %8.1fX\n", r.SecPerLabel, r.CurrentPractice, r.Nautilus, r.Speedup)
	}
	return p.err
}
