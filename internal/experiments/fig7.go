package experiments

import (
	"io"
	"os"
	"path/filepath"

	"nautilus/internal/core"
	"nautilus/internal/data"
	"nautilus/internal/obs"
	"nautilus/internal/profile"
	"nautilus/internal/workloads"
)

// workDirOr returns base/sub, or a fresh temp dir when base is empty.
func workDirOr(base, sub string) string {
	if base == "" {
		dir, err := os.MkdirTemp("", "nautilus-fig7-")
		if err != nil {
			panic(err)
		}
		return dir
	}
	dir := filepath.Join(base, sub)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	return dir
}

// MiniHardware returns a cost-model profile proportioned for real CPU
// execution of mini-scale models: a few GFLOP/s of effective compute
// against SSD-class storage, i.e. ~10 FLOPs of compute per byte of disk
// bandwidth. The optimizer's load-vs-recompute decisions at mini scale
// then mirror the regime paper-scale models occupy on a GPU.
func MiniHardware() profile.Hardware {
	return profile.Hardware{FLOPSThroughput: 5e9, DiskThroughput: 500e6, WorkspaceBytes: 256 << 20}
}

// Fig7Config sizes the real-training learning-curve experiment. The
// default (zero value → DefaultFig7Config) trims the FTR-2 grid so the
// experiment runs in about a minute on a laptop CPU; pass larger values to
// approach the full 24-model workload.
type Fig7Config struct {
	// LRs per strategy (2 strategies are always used).
	LRs int
	// Cycles of labeling + model selection.
	Cycles int
	// SecPerLabel adds simulated human labeling time per record
	// (Figure 7B); 0 reproduces Figure 7A.
	SecPerLabel float64
	// WorkDir hosts stores and checkpoints (a temp dir if empty).
	WorkDir string
	Seed    int64
	// Obs, when set, instruments both approaches' runs; defaults to the
	// package tracer installed via SetObs.
	Obs *obs.Tracer
}

// DefaultFig7Config returns the trimmed default.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{LRs: 2, Cycles: 4, Seed: 11}
}

// Fig7Point is one learning-curve sample: the best validation accuracy
// available after the given elapsed workload time.
type Fig7Point struct {
	Cycle      int
	ElapsedSec float64
	BestAcc    float64
}

// Fig7Result holds both curves.
type Fig7Result struct {
	CurrentPractice []Fig7Point
	Nautilus        []Fig7Point
	// Speedup is total CP time / total Nautilus time.
	Speedup float64
}

// Fig7 reproduces Figure 7 in miniature with *real* training: the same
// evolving-data loop runs under Current Practice and Nautilus, recording
// best-so-far validation accuracy against elapsed time. Both curves reach
// the same accuracies (logically equivalent SGD); Nautilus reaches them
// faster.
func Fig7(cfg Fig7Config) (*Fig7Result, error) {
	if cfg.LRs == 0 {
		cfg = DefaultFig7Config()
	}
	if cfg.Obs == nil {
		cfg.Obs = obsTracer
	}
	lrs := make([]float64, cfg.LRs)
	for i := range lrs {
		lrs[i] = 5e-5 / float64(i+1)
	}
	base := workloads.FTR2()
	base.Name = "FTR-2-mini"
	base.Strategies = base.Strategies[:2]
	base.BatchSizes = []int{8}
	base.LRs = lrs
	base.Epochs = []int{3}

	out := &Fig7Result{}
	var totals [2]float64
	for ai, approach := range []core.Approach{core.CurrentPractice, core.Nautilus} {
		inst, err := base.Build(workloads.Mini, MiniHardware())
		if err != nil {
			return nil, err
		}
		ccfg := core.DefaultConfig(workDirOr(cfg.WorkDir, string(approach)))
		ccfg.Approach = approach
		ccfg.HW = MiniHardware()
		ccfg.Seed = cfg.Seed
		ccfg.MaxRecords = 600
		ccfg.Obs = cfg.Obs

		pool := inst.NewPool(cfg.Seed)
		perCycle, trainPer, _ := inst.CycleSchedule()
		labeler := data.NewLabeler(pool, perCycle, trainPer)

		ms, err := core.New(inst.Items, inst.MM, ccfg)
		if err != nil {
			return nil, err
		}
		elapsed := 0.0
		var pts []Fig7Point
		for k := 0; k < cfg.Cycles && labeler.HasMore(); k++ {
			snap, _, _ := labeler.NextCycle()
			elapsed += cfg.SecPerLabel * float64(perCycle)
			fit, err := ms.Fit(snap)
			if err != nil {
				_ = ms.Close() // already failing; Fit's error wins
				return nil, err
			}
			elapsed += fit.Duration.Seconds()
			pts = append(pts, Fig7Point{Cycle: fit.Cycle, ElapsedSec: elapsed, BestAcc: fit.Best.ValAcc})
		}
		_ = ms.Close() // read-only session: nothing buffered to flush
		totals[ai] = elapsed
		if approach == core.CurrentPractice {
			out.CurrentPractice = pts
		} else {
			out.Nautilus = pts
		}
	}
	out.Speedup = totals[0] / totals[1]
	return out, nil
}

// PrintFig7 renders both learning curves.
func PrintFig7(w io.Writer, r *Fig7Result, label string) error {
	p := &printer{w: w}
	p.printf("Figure 7%s: best validation accuracy vs elapsed time (real mini-scale training)\n", label)
	p.printf("%-6s %22s %22s\n", "cycle", "current (s → acc)", "nautilus (s → acc)")
	for i := range r.CurrentPractice {
		cp, nt := r.CurrentPractice[i], r.Nautilus[i]
		p.printf("%-6d %12.1f → %6.4f %12.1f → %6.4f\n", cp.Cycle, cp.ElapsedSec, cp.BestAcc, nt.ElapsedSec, nt.BestAcc)
	}
	p.printf("overall speedup: %.1fX\n", r.Speedup)
	return p.err
}
