package experiments

import (
	"fmt"
	"io"

	"nautilus/internal/core"
	"nautilus/internal/profile"
	"nautilus/internal/workloads"
)

// Fig8Row is one workload's group in Figure 8: Nautilus with one
// optimization disabled, against full Nautilus.
type Fig8Row struct {
	Workload string
	// Minutes per configuration.
	Nautilus float64
	NoMat    float64
	NoFuse   float64
	// Slowdowns relative to full Nautilus (the paper reports these as
	// percentages).
	NoMatSlowdownPct  float64
	NoFuseSlowdownPct float64
}

// Fig8 reproduces Figure 8: per-workload model-selection time with the
// materialization or the fusion optimization disabled.
func Fig8() ([]Fig8Row, error) {
	var rows []Fig8Row
	for _, spec := range workloads.All() {
		inst, err := PaperInstance(spec)
		if err != nil {
			return nil, err
		}
		row := Fig8Row{Workload: spec.Name}
		for _, approach := range []core.Approach{core.Nautilus, core.NautilusNoMat, core.NautilusNoFuse} {
			res, _, err := SimulateApproach(inst, PaperConfig(approach))
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", spec.Name, approach, err)
			}
			min := Minutes(res.TotalSec())
			switch approach {
			case core.Nautilus:
				row.Nautilus = min
			case core.NautilusNoMat:
				row.NoMat = min
			case core.NautilusNoFuse:
				row.NoFuse = min
			}
		}
		row.NoMatSlowdownPct = 100 * (row.NoMat - row.Nautilus) / row.Nautilus
		row.NoFuseSlowdownPct = 100 * (row.NoFuse - row.Nautilus) / row.Nautilus
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig8 renders Figure 8 rows.
func PrintFig8(w io.Writer, rows []Fig8Row) error {
	p := &printer{w: w}
	p.printf("Figure 8: ablation — model selection time (minutes) with optimizations disabled\n")
	p.printf("%-8s %12s %16s %16s\n", "workload", "nautilus", "w/o MAT OPT", "w/o FUSE OPT")
	for _, r := range rows {
		p.printf("%-8s %12.1f %9.1f (+%3.0f%%) %9.1f (+%3.0f%%)\n",
			r.Workload, r.Nautilus, r.NoMat, r.NoMatSlowdownPct, r.NoFuse, r.NoFuseSlowdownPct)
	}
	return p.err
}

// Fig9Row is one model-count point of Figure 9.
type Fig9Row struct {
	NumModels       int
	CurrentPractice float64 // minutes
	NoMat           float64
	NoFuse          float64
	Nautilus        float64
}

// Fig9 reproduces Figure 9: FTR-2 restricted to the concat-last-4 strategy
// at batch size 16 while the number of explored learning rates (hence
// models) varies.
func Fig9() ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, n := range []int{1, 2, 3, 4, 6, 8} {
		lrs := make([]float64, n)
		for i := range lrs {
			lrs[i] = 5e-5 / float64(i+1) // n distinct learning rates
		}
		spec := workloads.Spec{
			Name:       fmt.Sprintf("FTR-2-n%d", n),
			Approach:   workloads.FeatureTransfer,
			Strategies: workloads.FTR3().Strategies, // concat_last_4
			BatchSizes: []int{16},
			LRs:        lrs,
			Epochs:     []int{5},
		}
		inst, err := spec.Build(workloads.Paper, profile.DefaultHardware())
		if err != nil {
			return nil, err
		}
		row := Fig9Row{NumModels: n}
		for _, approach := range []core.Approach{core.CurrentPractice, core.NautilusNoMat, core.NautilusNoFuse, core.Nautilus} {
			cfg := PaperConfig(approach)
			wp, err := core.PlanWorkload(inst.Items, inst.MM, cfg, cfg.MaxRecords)
			if err != nil {
				return nil, err
			}
			res, err := simulatePlanned(inst, cfg, wp)
			if err != nil {
				return nil, err
			}
			min := Minutes(res.TotalSec())
			switch approach {
			case core.CurrentPractice:
				row.CurrentPractice = min
			case core.NautilusNoMat:
				row.NoMat = min
			case core.NautilusNoFuse:
				row.NoFuse = min
			case core.Nautilus:
				row.Nautilus = min
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig9 renders Figure 9 rows.
func PrintFig9(w io.Writer, rows []Fig9Row) error {
	p := &printer{w: w}
	p.printf("Figure 9: model selection time (minutes) vs number of models (FTR-2, concat-last-4, batch 16)\n")
	p.printf("%-8s %10s %10s %10s %10s\n", "#models", "current", "w/o MAT", "w/o FUSE", "nautilus")
	for _, r := range rows {
		p.printf("%-8d %10.1f %10.1f %10.1f %10.1f\n",
			r.NumModels, r.CurrentPractice, r.NoMat, r.NoFuse, r.Nautilus)
	}
	return p.err
}
