package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"nautilus/internal/core"
	"nautilus/internal/opt"
	"nautilus/internal/verify"
	"nautilus/internal/workloads"
)

// FusionResult pins enumerated fusion-plan quality against the greedy
// Algorithm 1 baseline, on two workloads: the constructed greedy-trap
// fixture (where enumeration must win strictly) and a paper-scale bench
// workload replayed on the cost clock.
type FusionResult struct {
	// Greedy-trap fixture (opt.GreedyTrapWorkload).
	FixtureGreedyCost     int64   `json:"fixture_greedy_cost"`
	FixtureEnumCost       int64   `json:"fixture_enum_cost"`
	FixtureImprovementPct float64 `json:"fixture_improvement_pct"`
	FixtureGreedyGroups   int     `json:"fixture_greedy_groups"`
	FixtureEnumGroups     int     `json:"fixture_enum_groups"`

	// Paper-scale bench workload, both strategies through the full
	// planner pipeline.
	Workload     string  `json:"workload"`
	GreedyCost   int64   `json:"greedy_cost"`
	EnumCost     int64   `json:"enum_cost"`
	CostRatio    float64 `json:"cost_ratio"` // enum / greedy, ≤ 1 by construction
	GreedyGroups int     `json:"greedy_groups"`
	EnumGroups   int     `json:"enum_groups"`
	// Simulated end-to-end seconds on the cost clock (includes wall-clock
	// optimizer time, so not regression-gated).
	GreedySimSec float64 `json:"greedy_sim_sec"`
	EnumSimSec   float64 `json:"enum_sim_sec"`
	// Search counters of both strategies' bench runs.
	GreedyStats opt.FuseStats `json:"greedy_stats"`
	EnumStats   opt.FuseStats `json:"enum_stats"`
}

// fusionWorkload is the bench workload: FTR-3's (batch, epochs) grid
// yields four compatibility buckets of three candidates each — small
// enough to enumerate exhaustively, large enough to exercise the DP.
func fusionWorkload() workloads.Spec { return workloads.FTR3() }

// Fusion runs the fusion-strategy comparison. It errors if enumeration
// fails to beat greedy strictly on the fixture, costs more than greedy
// anywhere, violates B_mem, or produces a plan the verifier rejects —
// the experiment doubles as an end-to-end optimality check.
func Fusion() (*FusionResult, error) {
	r := &FusionResult{}

	// Fixture leg: raw Fuser comparison under the fixture's separating
	// memory budget.
	items, memBudget, err := opt.GreedyTrapWorkload()
	if err != nil {
		return nil, err
	}
	fuseCfg := func(stats *opt.FuseStats) opt.FuseConfig {
		return opt.FuseConfig{MemBudgetBytes: memBudget, OptimizerSlotBytes: 2, Stats: stats}
	}
	greedyFix, err := opt.GreedyFuser{}.Fuse(items, nil, fuseCfg(nil))
	if err != nil {
		return nil, err
	}
	enumFuser, err := opt.NewFuser(opt.FuserEnum, 0)
	if err != nil {
		return nil, err
	}
	enumFix, err := enumFuser.Fuse(items, nil, fuseCfg(nil))
	if err != nil {
		return nil, err
	}
	for name, plan := range map[string][]*opt.FusedGroup{"greedy": greedyFix, "enum": enumFix} {
		if err := verify.Groups(plan, items, memBudget, nil); err != nil {
			return nil, fmt.Errorf("experiments: fixture %s plan rejected: %w", name, err)
		}
	}
	r.FixtureGreedyCost = opt.TotalPlanCost(greedyFix)
	r.FixtureEnumCost = opt.TotalPlanCost(enumFix)
	r.FixtureGreedyGroups = len(greedyFix)
	r.FixtureEnumGroups = len(enumFix)
	if r.FixtureEnumCost >= r.FixtureGreedyCost {
		return nil, fmt.Errorf("experiments: enum cost %d not strictly below greedy %d on the trap fixture",
			r.FixtureEnumCost, r.FixtureGreedyCost)
	}
	r.FixtureImprovementPct = 100 * (1 - float64(r.FixtureEnumCost)/float64(r.FixtureGreedyCost))

	// Bench leg: the full planner pipeline (MAT OPT + FUSE OPT + verify)
	// on a paper-scale workload, replayed on the cost clock.
	spec := fusionWorkload()
	inst, err := PaperInstance(spec)
	if err != nil {
		return nil, err
	}
	r.Workload = spec.Name
	type leg struct {
		fuser string
		cost  *int64
		sim   *float64
		n     *int
		stats *opt.FuseStats
	}
	legs := []leg{
		{opt.FuserGreedy, &r.GreedyCost, &r.GreedySimSec, &r.GreedyGroups, &r.GreedyStats},
		{opt.FuserEnum, &r.EnumCost, &r.EnumSimSec, &r.EnumGroups, &r.EnumStats},
	}
	for _, l := range legs {
		cfg := PaperConfig(core.Nautilus)
		cfg.Fuser = l.fuser
		sim, wp, err := SimulateApproach(inst, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: fusion %s leg: %w", l.fuser, err)
		}
		for _, g := range wp.Groups {
			if len(g.Items) > 1 && g.PeakMemBytes > cfg.MemBudgetBytes {
				return nil, fmt.Errorf("experiments: %s group %q exceeds B_mem: %d > %d",
					l.fuser, g.Name(), g.PeakMemBytes, cfg.MemBudgetBytes)
			}
		}
		*l.cost = opt.TotalPlanCost(wp.Groups)
		*l.sim = sim.TotalSec()
		*l.n = len(wp.Groups)
		*l.stats = wp.Stats.Fuse
	}
	if r.EnumCost > r.GreedyCost {
		return nil, fmt.Errorf("experiments: enum plan cost %d exceeds greedy %d on %s",
			r.EnumCost, r.GreedyCost, r.Workload)
	}
	r.CostRatio = float64(r.EnumCost) / float64(r.GreedyCost)
	return r, nil
}

// PrintFusion renders the comparison.
func PrintFusion(w io.Writer, r *FusionResult) error {
	p := &printer{w: w}
	p.printf("Fusion plan enumeration vs greedy Algorithm 1\n\n")
	p.printf("greedy-trap fixture (4 models, pairwise-fusible budget):\n")
	p.printf("  %-22s %14s %8s\n", "strategy", "plan cost", "groups")
	p.printf("  %-22s %14d %8d\n", "greedy", r.FixtureGreedyCost, r.FixtureGreedyGroups)
	p.printf("  %-22s %14d %8d   (%.1f%% cheaper)\n", "enum", r.FixtureEnumCost, r.FixtureEnumGroups, r.FixtureImprovementPct)
	p.printf("\nbench workload %s (paper scale, cost-clock replay):\n", r.Workload)
	p.printf("  %-22s %14s %8s %12s\n", "strategy", "plan cost", "groups", "sim total")
	p.printf("  %-22s %14d %8d %11.1fs\n", "greedy", r.GreedyCost, r.GreedyGroups, r.GreedySimSec)
	p.printf("  %-22s %14d %8d %11.1fs   (cost ratio %.4f)\n", "enum", r.EnumCost, r.EnumGroups, r.EnumSimSec, r.CostRatio)
	p.printf("\nenum search: %d DP states, %d groups built, %d memo hits, %d bound prunings, %d fallbacks\n",
		r.EnumStats.StatesExplored, r.EnumStats.PairsEvaluated, r.EnumStats.MemoHits,
		r.EnumStats.BoundPrunings, r.EnumStats.Fallbacks)
	p.printf("greedy search: %d rounds, %d pairs evaluated, %d rejected\n",
		r.GreedyStats.Rounds, r.GreedyStats.PairsEvaluated, r.GreedyStats.PairsRejected)
	return p.err
}

// WriteFusionJSON writes the result as indented JSON at path.
func WriteFusionJSON(path string, r *FusionResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
