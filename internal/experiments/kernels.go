package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"nautilus/internal/data"
	"nautilus/internal/exec"
	"nautilus/internal/models"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
	"nautilus/internal/storage"
	"nautilus/internal/tensor"
	"nautilus/internal/train"
)

// KernelResult is one micro-kernel timed under its dispatched schedule
// (the installed tuned table, or the default heuristics) against the seed
// reference: the naive kernel body, single-threaded — the pre-autotuning
// baseline.
type KernelResult struct {
	Name string `json:"name"`
	Op   string `json:"op"`
	// Schedule is the compact descriptor of the schedule that fires for
	// this shape; Tuned reports whether it came from the installed table.
	Schedule string `json:"schedule"`
	Tuned    bool   `json:"tuned"`

	SeedNsOp      float64 `json:"seed_ns_op"`  // naive kernel, one worker
	TunedNsOp     float64 `json:"tuned_ns_op"` // as dispatched
	SpeedupVsSeed float64 `json:"speedup_vs_seed"`
	// ParallelSpeedup compares the dispatched schedule against the same
	// schedule forced serial. Exactly 1.0 when the dispatch runs serially
	// anyway (same code path, nothing to compare) — so any value below
	// 1.0 means a schedule parallelized into a slowdown, which Kernels
	// treats as an error.
	ParallelSpeedup float64 `json:"parallel_speedup"`
}

// TrainHotPathResult compares full conv-model training epochs across the
// hot-path regimes: the pre-optimization baseline (serial non-MatMul
// kernels, no tensor recycling) against the parallel + arena engine.
type TrainHotPathResult struct {
	Model     string `json:"model"`
	Records   int    `json:"records"`
	BatchSize int    `json:"batch_size"`
	Steps     int    `json:"steps_per_epoch"`

	BaselineSecEpoch float64 `json:"baseline_sec_epoch"` // serial kernels, heap allocation
	ParallelSecEpoch float64 `json:"parallel_sec_epoch"` // parallel kernels, heap allocation
	PooledSecEpoch   float64 `json:"pooled_sec_epoch"`   // parallel kernels + step arena
	EpochSpeedup     float64 `json:"epoch_speedup"`      // baseline / pooled

	// Allocator traffic per training step (runtime.MemStats deltas).
	UnpooledAllocsPerStep float64 `json:"unpooled_allocs_per_step"`
	PooledAllocsPerStep   float64 `json:"pooled_allocs_per_step"`
	UnpooledBytesPerStep  float64 `json:"unpooled_bytes_per_step"`
	PooledBytesPerStep    float64 `json:"pooled_bytes_per_step"`
	AllocReductionPct     float64 `json:"alloc_reduction_pct"`
	BytesReductionPct     float64 `json:"bytes_reduction_pct"`
}

// KernelsResult is the BENCH_kernels.json payload: the per-kernel
// parallelization wins plus the end-to-end hot-path comparison the ISSUE
// acceptance criteria reference.
type KernelsResult struct {
	Workers int                 `json:"workers"`
	Kernels []KernelResult      `json:"kernels"`
	Train   *TrainHotPathResult `json:"train"`
}

// kernelCase is one micro-benchmark body; it must touch only tensors built
// by its setup so repeated calls are independent. op/dims mirror the
// kernel's own dispatch key; chunkN/work mirror its parallelFor arguments
// (they decide whether a schedule's dispatch actually parallelizes).
type kernelCase struct {
	name   string
	op     tensor.Op
	dims   [3]int
	chunkN int
	work   int
	fn     func()
}

// kernelCases builds the micro-benchmark suite: square, skinny, large,
// and conv-lowered matmul shapes (forward plus both backward transpose
// forms), the conv/pool family at the mini-ResNet block geometry, and the
// elementwise/rowwise ops.
func kernelCases() []kernelCase {
	rng := rand.New(rand.NewSource(42))
	var cases []kernelCase

	matmul := func(name string, m, k, n int) {
		a := tensor.RandNormal(rng, 1, m, k)
		b := tensor.RandNormal(rng, 1, k, n)
		cases = append(cases, kernelCase{
			name: name, op: tensor.OpMatMul, dims: [3]int{m, k, n}, chunkN: m, work: m * k * n,
			fn: func() { tensor.MatMul(a, b) },
		})
	}
	matmul("matmul_256", 256, 256, 256)
	matmul("matmul_skinny_64x512x64", 64, 512, 64)
	matmul("matmul_1024", 1024, 1024, 1024)
	matmul("matmul_conv_4096x72x16", 4096, 72, 16) // im2col-lowered stem conv

	{
		m, k, n := 256, 256, 256
		a := tensor.RandNormal(rng, 1, m, k)
		bt := tensor.RandNormal(rng, 1, n, k)
		at := tensor.RandNormal(rng, 1, k, m)
		b := tensor.RandNormal(rng, 1, k, n)
		cases = append(cases,
			kernelCase{name: "matmul_bt_256", op: tensor.OpMatMulBT, dims: [3]int{m, k, n}, chunkN: m, work: m * k * n,
				fn: func() { tensor.MatMulBT(a, bt) }},
			kernelCase{name: "matmul_at_256", op: tensor.OpMatMulAT, dims: [3]int{m, k, n}, chunkN: m, work: m * k * n,
				fn: func() { tensor.MatMulAT(at, b) }},
		)
	}

	x := tensor.RandNormal(rng, 1, 16, 32, 32, 8)
	g := tensor.ConvGeom{InH: 32, InW: 32, InC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	pool := tensor.ConvGeom{InH: 32, InW: 32, InC: 8, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	cols := tensor.Im2Col(x, g)
	mp, arg := tensor.MaxPool2D(x, pool)
	gap := tensor.GlobalAvgPool(x)
	soft := tensor.RandNormal(rng, 1, 2048, 64)
	ea := tensor.RandNormal(rng, 1, 256, 256)
	eb := tensor.RandNormal(rng, 1, 256, 256)
	convRows := 16 * g.OutH() * g.OutW()
	convCols := g.KH * g.KW * g.InC
	poolRows := 16 * pool.OutH() * pool.OutW()
	cases = append(cases,
		kernelCase{name: "im2col_16x32x32x8_k3", op: tensor.OpIm2Col,
			dims: [3]int{convRows, convCols, 0}, chunkN: convRows, work: convRows * convCols,
			fn: func() { tensor.Im2Col(x, g) }},
		kernelCase{name: "col2im_16x32x32x8_k3", op: tensor.OpCol2Im,
			dims: [3]int{16, g.OutH() * g.OutW(), convCols}, chunkN: 16, work: cols.Len(),
			fn: func() { tensor.Col2Im(cols, 16, g) }},
		kernelCase{name: "maxpool_16x32x32x8", op: tensor.OpMaxPool,
			dims: [3]int{poolRows, pool.InC, pool.KH * pool.KW}, chunkN: poolRows, work: poolRows * pool.InC * pool.KH * pool.KW,
			fn: func() { tensor.MaxPool2D(x, pool) }},
		kernelCase{name: "maxpool_back_16x32x32x8", op: tensor.OpMaxPoolBack,
			dims: [3]int{16, len(arg) / 16, 0}, chunkN: 16, work: len(arg),
			fn: func() { tensor.MaxPool2DBackward(mp, arg, x.Shape()) }},
		kernelCase{name: "gap_16x32x32x8", op: tensor.OpGap,
			dims: [3]int{16, 32 * 32, 8}, chunkN: 16, work: x.Len(),
			fn: func() { tensor.GlobalAvgPool(x) }},
		kernelCase{name: "gap_back_16x32x32x8", op: tensor.OpGapBack,
			dims: [3]int{16, 32 * 32, 8}, chunkN: 16, work: x.Len(),
			fn: func() { tensor.GlobalAvgPoolBackward(gap, x.Shape()) }},
		kernelCase{name: "add_256x256", op: tensor.OpEltwise,
			dims: [3]int{256 * 256, 0, 0}, chunkN: 256 * 256, work: 256 * 256,
			fn: func() { tensor.Add(ea, eb) }},
		kernelCase{name: "softmax_2048x64", op: tensor.OpRowwise,
			dims: [3]int{2048, 64, 0}, chunkN: 2048, work: 2048 * 64 * 8,
			fn: func() { tensor.SoftmaxRows(soft) }},
	)
	return cases
}

// timeKernel returns ns/op: the best of three measurement windows, each
// sized to run for ~50ms, so one GC pause or scheduler hiccup cannot skew
// a kernel's number.
func timeKernel(fn func()) float64 {
	fn() // warmup
	measure := func(iters int) time.Duration {
		//lint:ignore determinism wall-clock benchmark measurement is the experiment's output
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		//lint:ignore determinism wall-clock benchmark measurement is the experiment's output
		return time.Since(start)
	}
	iters := 1
	var el time.Duration
	for {
		el = measure(iters)
		if el >= 50*time.Millisecond || iters >= 1<<16 {
			break
		}
		iters *= 2
	}
	best := el
	for i := 0; i < 2; i++ {
		if el = measure(iters); el < best {
			best = el
		}
	}
	return float64(best.Nanoseconds()) / float64(iters)
}

// kernelsTrainWorkload builds a singleton fine-tune group over the mini
// ResNet — the conv-heavy hot path the arena and parallel kernels target.
func kernelsTrainWorkload(dir string) (*opt.FusedGroup, *storage.TensorStore, data.Snapshot, error) {
	hub := models.NewResNetHub(models.ResNetMini())
	m, err := hub.FineTuneModel("kernbench", 1, 2, 77)
	if err != nil {
		return nil, nil, data.Snapshot{}, err
	}
	prof, err := profile.Profile(m, MiniHardware())
	if err != nil {
		return nil, nil, data.Snapshot{}, err
	}
	item := opt.WorkItem{Model: m, Prof: prof, Epochs: 1, BatchSize: 16, LR: 1e-3}
	groups, err := opt.FuseModels([]opt.WorkItem{item}, nil, opt.FuseConfig{
		MemBudgetBytes: 1 << 40, OptimizerSlotBytes: 2,
	})
	if err != nil {
		return nil, nil, data.Snapshot{}, err
	}
	store, err := storage.NewTensorStore(dir, nil)
	if err != nil {
		return nil, nil, data.Snapshot{}, err
	}
	pool := data.SynthImages(data.ImageConfig{Records: 256, H: 16, W: 16, C: 3, Seed: 5})
	lab := data.NewLabeler(pool, 128, 112)
	var snap data.Snapshot
	for i := 0; i < 2; i++ {
		snap, _, _ = lab.NextCycle()
	}
	return groups[0], store, snap, nil
}

// trainEpochStats runs `runs` training passes and returns seconds per pass
// plus allocator traffic (mallocs, bytes) per optimizer step.
func trainEpochStats(g *opt.FusedGroup, store *storage.TensorStore, snap data.Snapshot, arena *tensor.Arena, runs int) (secPerRun, allocsPerStep, bytesPerStep float64, err error) {
	met := exec.NewMetrics()
	trainer := &exec.Trainer{Store: store, Loss: train.SoftmaxCrossEntropy{}, Seed: 7, Arena: arena, Prefetch: true, Metrics: met}
	// Warmup pass settles pool and page-cache state outside the window.
	if _, err = trainer.TrainGroup(g, snap); err != nil {
		return
	}
	stepsBefore := met.TrainSteps
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	//lint:ignore determinism wall-clock benchmark measurement is the experiment's output
	start := time.Now()
	for i := 0; i < runs; i++ {
		if _, err = trainer.TrainGroup(g, snap); err != nil {
			return
		}
	}
	//lint:ignore determinism wall-clock benchmark measurement is the experiment's output
	el := time.Since(start)
	runtime.ReadMemStats(&m1)
	steps := float64(met.TrainSteps - stepsBefore)
	secPerRun = el.Seconds() / float64(runs)
	allocsPerStep = float64(m1.Mallocs-m0.Mallocs) / steps
	bytesPerStep = float64(m1.TotalAlloc-m0.TotalAlloc) / steps
	return
}

// forcedSchedule pins every dispatch to one schedule while a leg runs.
type forcedSchedule struct{ sch tensor.Schedule }

func (f forcedSchedule) Schedule(tensor.Op, [3]int, int) (tensor.Schedule, bool) {
	return f.sch, true
}

// timeKernelForced times fn with every dispatch pinned to sch, restoring
// the ambient schedule source (the loaded tuned table, usually) after.
func timeKernelForced(fn func(), sch tensor.Schedule) float64 {
	prev := tensor.CurrentScheduleSource()
	tensor.SetScheduleSource(forcedSchedule{sch: sch})
	defer tensor.SetScheduleSource(prev)
	return timeKernel(fn)
}

// Kernels measures the hot-path execution engine: each micro-kernel under
// its dispatched schedule versus the seed reference (naive body, one
// worker), then full conv-model training in baseline (serial + heap),
// parallel + heap, and parallel + arena regimes. A kernel whose schedule
// parallelizes into a slowdown (ParallelSpeedup < 1.0 after one retry) is
// an error: the tuned cutoffs exist precisely to prevent that.
func Kernels(runs int) (*KernelsResult, error) {
	if runs <= 0 {
		runs = 3
	}
	res := &KernelsResult{Workers: tensor.MaxWorkers()}

	for _, kc := range kernelCases() {
		seed := timeKernelForced(kc.fn, tensor.Schedule{Kernel: "naive", Workers: 1})
		tuned := timeKernel(kc.fn)
		sch, fromTable := tensor.ScheduleFor(kc.op, kc.dims)
		kr := KernelResult{
			Name: kc.name, Op: string(kc.op), Schedule: sch.String(), Tuned: fromTable,
			SeedNsOp: seed, TunedNsOp: tuned, SpeedupVsSeed: seed / tuned,
			ParallelSpeedup: 1.0,
		}
		if tensor.WouldParallelize(sch, kc.chunkN, kc.work) {
			serialSch := sch
			serialSch.Workers = 1
			serialNs := timeKernelForced(kc.fn, serialSch)
			kr.ParallelSpeedup = serialNs / tuned
			if kr.ParallelSpeedup < 1.0 {
				// One retry: parallel timings are the noisiest leg.
				tuned = timeKernel(kc.fn)
				kr.TunedNsOp = tuned
				kr.SpeedupVsSeed = seed / tuned
				kr.ParallelSpeedup = serialNs / tuned
			}
			if kr.ParallelSpeedup < 1.0 {
				return nil, fmt.Errorf("kernels: %s dispatches parallel schedule %q but runs %.2fx slower than its serial path — the tuned cutoff is wrong, re-tune (make tune)",
					kc.name, sch.String(), 1/kr.ParallelSpeedup)
			}
		}
		res.Kernels = append(res.Kernels, kr)
	}

	dir, err := os.MkdirTemp("", "nautilus-kernbench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	g, store, snap, err := kernelsTrainWorkload(dir)
	if err != nil {
		return nil, err
	}
	defer store.Close()

	tr := &TrainHotPathResult{
		Model:     "resnet-mini finetune(top=1)",
		Records:   snap.TrainSize(),
		BatchSize: g.BatchSize(),
		Steps:     (snap.TrainSize() + g.BatchSize() - 1) / g.BatchSize(),
	}

	// Baseline: the pre-optimization engine — every kernel single-threaded,
	// every tensor heap-allocated.
	tensor.SetMaxWorkers(1)
	tr.BaselineSecEpoch, _, _, err = trainEpochStats(g, store, snap, nil, runs)
	tensor.SetMaxWorkers(0)
	if err != nil {
		return nil, err
	}
	// Parallel kernels, still heap-allocating.
	var unpooledAllocs, unpooledBytes float64
	tr.ParallelSecEpoch, unpooledAllocs, unpooledBytes, err = trainEpochStats(g, store, snap, nil, runs)
	if err != nil {
		return nil, err
	}
	// Full engine: parallel kernels + step-scoped arena.
	var pooledAllocs, pooledBytes float64
	tr.PooledSecEpoch, pooledAllocs, pooledBytes, err = trainEpochStats(g, store, snap, tensor.NewArena(), runs)
	if err != nil {
		return nil, err
	}
	tr.EpochSpeedup = tr.BaselineSecEpoch / tr.PooledSecEpoch
	tr.UnpooledAllocsPerStep = unpooledAllocs
	tr.PooledAllocsPerStep = pooledAllocs
	tr.UnpooledBytesPerStep = unpooledBytes
	tr.PooledBytesPerStep = pooledBytes
	tr.AllocReductionPct = 100 * (1 - pooledAllocs/unpooledAllocs)
	tr.BytesReductionPct = 100 * (1 - pooledBytes/unpooledBytes)
	res.Train = tr
	return res, nil
}

// PrintKernels renders the kernel and hot-path comparison.
func PrintKernels(w io.Writer, r *KernelsResult) error {
	p := &printer{w: w}
	p.printf("Hot-path engine benchmarks (%d workers)\n", r.Workers)
	p.printf("%-26s %-22s %12s %12s %9s %7s\n", "kernel", "schedule", "seed ns/op", "ns/op", "vs seed", "par")
	for _, k := range r.Kernels {
		src := ""
		if k.Tuned {
			src = " [tuned]"
		}
		p.printf("%-26s %-22s %12.0f %12.0f %8.2fx %6.2fx\n",
			k.Name, k.Schedule+src, k.SeedNsOp, k.TunedNsOp, k.SpeedupVsSeed, k.ParallelSpeedup)
	}
	t := r.Train
	p.printf("\nconv-model training: %s, %d records, batch %d (%d steps/epoch)\n",
		t.Model, t.Records, t.BatchSize, t.Steps)
	p.printf("%-26s %12s\n", "regime", "sec/epoch")
	p.printf("%-26s %12.3f\n", "serial + heap (baseline)", t.BaselineSecEpoch)
	p.printf("%-26s %12.3f\n", "parallel + heap", t.ParallelSecEpoch)
	p.printf("%-26s %12.3f\n", "parallel + arena", t.PooledSecEpoch)
	p.printf("epoch speedup (baseline/arena): %.2fx\n", t.EpochSpeedup)
	p.printf("allocs/step: %.0f -> %.0f (%.1f%% reduction)\n",
		t.UnpooledAllocsPerStep, t.PooledAllocsPerStep, t.AllocReductionPct)
	p.printf("bytes/step:  %.0f -> %.0f (%.1f%% reduction)\n",
		t.UnpooledBytesPerStep, t.PooledBytesPerStep, t.BytesReductionPct)
	return p.err
}

// WriteKernelsJSON writes the result as indented JSON at path.
func WriteKernelsJSON(path string, r *KernelsResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
