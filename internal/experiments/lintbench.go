package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"time"

	"nautilus/internal/lint"
)

// LintBenchResult records one full-module sweep of the static-analysis
// suite, run twice through the incremental cache: a cold leg that
// populates a throwaway cache directory, and a warm leg in a fresh loader
// that must replay every package. Per-analyzer wall time (with its SSA
// share) comes from the cold leg; the cold/warm ratio gates the cache in
// BENCH_baseline.json.
type LintBenchResult struct {
	// Packages is the number of packages analyzed.
	Packages int `json:"packages"`
	// Findings is the post-suppression finding count (0 on a clean tree).
	Findings int `json:"findings"`
	// TotalWallNs sums the cold leg's per-package wall times (parallel
	// sweeps can finish in less wall-clock than this).
	TotalWallNs int64 `json:"total_wall_ns"`
	// ColdWallNs / WarmWallNs are the two legs' end-to-end wall times,
	// pattern resolution and (for the cold leg) type-checking included.
	ColdWallNs int64 `json:"cold_wall_ns"`
	WarmWallNs int64 `json:"warm_wall_ns"`
	// WarmSpeedup is ColdWallNs / WarmWallNs.
	WarmSpeedup float64 `json:"warm_speedup"`
	// WarmHits / WarmMisses count cache outcomes on the warm leg; a
	// correct cache has zero warm misses.
	WarmHits   int `json:"warm_hits"`
	WarmMisses int `json:"warm_misses"`
	// WarmIdentical records that the warm leg replayed exactly the cold
	// leg's findings (the cache's correctness contract).
	WarmIdentical bool `json:"warm_identical"`
	// SSAWallNs sums every analyzer's SSA-construction share.
	SSAWallNs int64 `json:"ssa_wall_ns"`
	// Analyzers holds each analyzer's cold-leg wall time (and SSA share)
	// summed over all packages.
	Analyzers []lint.AnalyzerTiming `json:"analyzers"`
	// PackageTimings holds cold-leg per-package wall time in package order.
	PackageTimings []lint.PackageTiming `json:"package_timings"`
}

// lintSweep runs one cached full-module sweep with a fresh loader — a
// fresh loader is what a new CLI process has, so the warm leg's speed
// comes from the on-disk cache, not from loader memoization.
func lintSweep(wd, cacheDir string) (lint.Result, lint.CacheStats, error) {
	loader, err := lint.NewLoader(wd)
	if err != nil {
		return lint.Result{}, lint.CacheStats{}, err
	}
	loader.IncludeTests = true
	cache, err := lint.OpenCache(cacheDir, loader, lint.DefaultAnalyzers())
	if err != nil {
		return lint.Result{}, lint.CacheStats{}, err
	}
	return lint.AnalyzeCached(loader, cache, lint.DefaultAnalyzers(), "./...")
}

// LintBench runs every analyzer over the whole module (tests included),
// cold then warm against a throwaway cache, and returns the timing
// breakdown plus the cache's replay behavior.
func LintBench() (*LintBenchResult, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	cacheDir, err := os.MkdirTemp("", "nautilus-lint-cache-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(cacheDir)

	//lint:ignore determinism wall-clock benchmark measurement
	coldStart := time.Now()
	cold, coldStats, err := lintSweep(wd, cacheDir)
	if err != nil {
		return nil, err
	}
	//lint:ignore determinism wall-clock benchmark measurement
	coldWall := time.Since(coldStart)
	if coldStats.Hits != 0 {
		return nil, fmt.Errorf("lint bench: cold leg hit the fresh cache (%d hits)", coldStats.Hits)
	}

	//lint:ignore determinism wall-clock benchmark measurement
	warmStart := time.Now()
	warm, warmStats, err := lintSweep(wd, cacheDir)
	if err != nil {
		return nil, err
	}
	//lint:ignore determinism wall-clock benchmark measurement
	warmWall := time.Since(warmStart)

	out := &LintBenchResult{
		Packages:       coldStats.Misses,
		Findings:       len(cold.Findings),
		ColdWallNs:     coldWall.Nanoseconds(),
		WarmWallNs:     warmWall.Nanoseconds(),
		WarmHits:       warmStats.Hits,
		WarmMisses:     warmStats.Misses,
		WarmIdentical:  reflect.DeepEqual(cold.Findings, warm.Findings),
		Analyzers:      cold.Analyzers,
		PackageTimings: cold.Packages,
	}
	if warmWall > 0 {
		out.WarmSpeedup = float64(coldWall) / float64(warmWall)
	}
	for _, a := range cold.Analyzers {
		out.SSAWallNs += a.SSAWallNs
	}
	for _, pt := range cold.Packages {
		out.TotalWallNs += pt.WallNs
	}
	return out, nil
}

// PrintLintBench renders the timing breakdown.
func PrintLintBench(w io.Writer, r *LintBenchResult) error {
	p := &printer{w: w}
	p.printf("Lint suite over the module: %d packages, %d finding(s)\n", r.Packages, r.Findings)
	p.printf("%-14s %12s %12s\n", "analyzer", "wall ms", "ssa ms")
	for _, a := range r.Analyzers {
		p.printf("%-14s %12.2f %12.2f\n", a.Analyzer, float64(a.WallNs)/1e6, float64(a.SSAWallNs)/1e6)
	}
	p.printf("%-14s %12.2f %12.2f\n", "total", float64(r.TotalWallNs)/1e6, float64(r.SSAWallNs)/1e6)
	identical := "identical findings"
	if !r.WarmIdentical {
		identical = "FINDINGS DIVERGED"
	}
	p.printf("cache: cold %.2f ms, warm %.2f ms (%.1fx, %d hit(s) %d miss(es), %s)\n",
		float64(r.ColdWallNs)/1e6, float64(r.WarmWallNs)/1e6,
		r.WarmSpeedup, r.WarmHits, r.WarmMisses, identical)
	return p.err
}

// WriteLintBenchJSON writes the result as indented JSON at path.
func WriteLintBenchJSON(path string, r *LintBenchResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
