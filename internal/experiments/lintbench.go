package experiments

import (
	"encoding/json"
	"io"
	"os"

	"nautilus/internal/lint"
)

// LintBenchResult records one full-module sweep of the static-analysis
// suite: per-analyzer and per-package wall time plus the finding count.
// It is the lint counterpart of the kernels/replan micro-benchmarks —
// the numbers track the cost of the interprocedural summary layer.
type LintBenchResult struct {
	// Packages is the number of packages analyzed.
	Packages int `json:"packages"`
	// Findings is the post-suppression finding count (0 on a clean tree).
	Findings int `json:"findings"`
	// TotalWallNs sums the per-package wall times (parallel sweeps can
	// finish in less wall-clock than this).
	TotalWallNs int64 `json:"total_wall_ns"`
	// Analyzers holds each analyzer's wall time summed over all packages.
	Analyzers []lint.AnalyzerTiming `json:"analyzers"`
	// PackageTimings holds per-package wall time in package order.
	PackageTimings []lint.PackageTiming `json:"package_timings"`
}

// LintBench runs every analyzer over the whole module (tests included)
// and returns the timing breakdown.
func LintBench() (*LintBenchResult, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = true
	pkgs, err := loader.Load()
	if err != nil {
		return nil, err
	}
	res := lint.Analyze(pkgs, lint.DefaultAnalyzers(), loader.Fset)
	out := &LintBenchResult{
		Packages:       len(pkgs),
		Findings:       len(res.Findings),
		Analyzers:      res.Analyzers,
		PackageTimings: res.Packages,
	}
	for _, pt := range res.Packages {
		out.TotalWallNs += pt.WallNs
	}
	return out, nil
}

// PrintLintBench renders the timing breakdown.
func PrintLintBench(w io.Writer, r *LintBenchResult) error {
	p := &printer{w: w}
	p.printf("Lint suite over the module: %d packages, %d finding(s)\n", r.Packages, r.Findings)
	p.printf("%-14s %12s\n", "analyzer", "wall ms")
	for _, a := range r.Analyzers {
		p.printf("%-14s %12.2f\n", a.Analyzer, float64(a.WallNs)/1e6)
	}
	p.printf("%-14s %12.2f\n", "total", float64(r.TotalWallNs)/1e6)
	return p.err
}

// WriteLintBenchJSON writes the result as indented JSON at path.
func WriteLintBenchJSON(path string, r *LintBenchResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
