package experiments

import "nautilus/internal/obs"

// obsTracer is the process-wide tracer the bench CLI attaches with SetObs;
// real-training experiments thread it into their core configs so -trace /
// -metrics cover experiment runs too. nil (the default) disables
// instrumentation.
var obsTracer *obs.Tracer

// SetObs attaches a tracer to subsequent experiment runs.
func SetObs(t *obs.Tracer) { obsTracer = t }
