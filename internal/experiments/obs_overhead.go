package experiments

import (
	"encoding/json"
	"io"
	"os"
	"time"

	"nautilus/internal/data"
	"nautilus/internal/exec"
	"nautilus/internal/models"
	"nautilus/internal/obs"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
	"nautilus/internal/storage"
	"nautilus/internal/train"
)

// ObsOverheadResult quantifies the cost of the observability layer on the
// trainer hot loop: the same group trained with no tracer at all, with a
// sinkless tracer (spans allocated, nothing emitted), and with an active
// Chrome-trace sink writing to a discard writer.
type ObsOverheadResult struct {
	Runs          int     `json:"runs"`
	NoObsSec      float64 `json:"no_obs_sec"`
	NilSinkSec    float64 `json:"nil_sink_sec"`
	ActiveSinkSec float64 `json:"active_sink_sec"`
	// NilSinkOverheadPct is the acceptance metric: nil-tracer instrumentation
	// cost relative to the uninstrumented trainer, in percent.
	NilSinkOverheadPct    float64 `json:"nil_sink_overhead_pct"`
	ActiveSinkOverheadPct float64 `json:"active_sink_overhead_pct"`
	SpansPerRun           int64   `json:"spans_per_run"`
}

// obsOverheadWorkload builds one mini feature-transfer group plus a fresh
// store, mirroring the exec package's training tests.
func obsOverheadWorkload(dir string) (*opt.FusedGroup, *storage.TensorStore, error) {
	hub := models.NewBERTHub(models.BERTMini())
	m, err := hub.FeatureTransferModel("obsbench", models.FeatLastHidden, 9, 500)
	if err != nil {
		return nil, nil, err
	}
	prof, err := profile.Profile(m, MiniHardware())
	if err != nil {
		return nil, nil, err
	}
	item := opt.WorkItem{Model: m, Prof: prof, Epochs: 2, BatchSize: 8, LR: 1e-3}
	groups, err := opt.FuseModels([]opt.WorkItem{item}, nil, opt.FuseConfig{
		MemBudgetBytes: 1 << 40, OptimizerSlotBytes: 2,
	})
	if err != nil {
		return nil, nil, err
	}
	store, err := storage.NewTensorStore(dir, nil)
	if err != nil {
		return nil, nil, err
	}
	return groups[0], store, nil
}

// ObsOverhead measures trainer wall time across the three instrumentation
// modes, averaged over runs passes.
func ObsOverhead(runs int) (*ObsOverheadResult, error) {
	if runs <= 0 {
		runs = 3
	}
	dir, err := os.MkdirTemp("", "nautilus-obsbench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	group, store, err := obsOverheadWorkload(dir)
	if err != nil {
		return nil, err
	}
	defer store.Close()
	snap := obsSnapshot()

	res := &ObsOverheadResult{Runs: runs}
	type mode struct {
		secs   *float64
		tracer func() *obs.Tracer
	}
	modes := []mode{
		{&res.NoObsSec, func() *obs.Tracer { return nil }},
		{&res.NilSinkSec, func() *obs.Tracer { return obs.New(nil) }},
		{&res.ActiveSinkSec, func() *obs.Tracer { return obs.New(obs.NewChromeTraceSink(nopWriteCloser{io.Discard})) }},
	}
	for _, md := range modes {
		// One warmup pass outside the timed window settles allocator state.
		tr := md.tracer()
		trainer := &exec.Trainer{Store: store, Loss: train.SoftmaxCrossEntropy{}, Seed: 7, Obs: tr}
		if _, err := trainer.TrainGroup(group, snap); err != nil {
			return nil, err
		}
		//lint:ignore determinism wall-clock benchmark measurement is the experiment's output
		start := time.Now()
		for i := 0; i < runs; i++ {
			if _, err := trainer.TrainGroup(group, snap); err != nil {
				return nil, err
			}
		}
		//lint:ignore determinism wall-clock benchmark measurement is the experiment's output
		*md.secs = time.Since(start).Seconds() / float64(runs)
		if tr != nil {
			var spans int64
			for _, st := range tr.SpanStats() {
				spans += st.Count
			}
			res.SpansPerRun = spans / int64(runs+1)
			if err := tr.Close(); err != nil {
				return nil, err
			}
		}
	}
	res.NilSinkOverheadPct = 100 * (res.NilSinkSec - res.NoObsSec) / res.NoObsSec
	res.ActiveSinkOverheadPct = 100 * (res.ActiveSinkSec - res.NoObsSec) / res.NoObsSec
	return res, nil
}

// obsSnapshot labels a couple of cycles of synthetic NER data for the
// overhead benchmark.
func obsSnapshot() data.Snapshot {
	pool := data.SynthNER(data.NERConfig{Records: 400, Seq: 12, Vocab: 1024, Types: 4, Seed: 99})
	lab := data.NewLabeler(pool, 40, 32)
	var snap data.Snapshot
	for i := 0; i < 2; i++ {
		snap, _, _ = lab.NextCycle()
	}
	return snap
}

// nopWriteCloser adapts io.Discard for sinks that close their writer.
type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// PrintObsOverhead renders the overhead comparison.
func PrintObsOverhead(w io.Writer, r *ObsOverheadResult) error {
	p := &printer{w: w}
	p.printf("Observability overhead on the trainer hot loop (%d runs averaged)\n", r.Runs)
	p.printf("%-14s %10s %10s\n", "mode", "sec/run", "overhead")
	p.printf("%-14s %10.3f %10s\n", "no tracer", r.NoObsSec, "-")
	p.printf("%-14s %10.3f %9.2f%%\n", "nil sink", r.NilSinkSec, r.NilSinkOverheadPct)
	p.printf("%-14s %10.3f %9.2f%%\n", "active sink", r.ActiveSinkSec, r.ActiveSinkOverheadPct)
	p.printf("spans per run (active): %d\n", r.SpansPerRun)
	return p.err
}

// WriteObsOverheadJSON writes the result as indented JSON at path.
func WriteObsOverheadJSON(path string, r *ObsOverheadResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
