package experiments

import (
	"encoding/json"
	"io"
	"math"
	"os"
	"time"

	"nautilus/internal/data"
	"nautilus/internal/exec"
	"nautilus/internal/models"
	"nautilus/internal/obs"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
	"nautilus/internal/storage"
	"nautilus/internal/train"
)

// ObsOverheadResult quantifies the cost of the observability layer on the
// trainer hot loop: the same group trained with no tracer at all, with a
// sinkless tracer (spans allocated, nothing emitted), and with an active
// Chrome-trace sink writing to a discard writer. Each leg reports the mean
// and standard deviation over individually timed passes; an overhead
// within one combined standard deviation of zero is flagged WithinNoise
// and clamped to zero rather than reported as a (meaningless) negative
// percentage.
type ObsOverheadResult struct {
	Runs             int     `json:"runs"`
	NoObsSec         float64 `json:"no_obs_sec"`
	NoObsStdDev      float64 `json:"no_obs_stddev_sec"`
	NilSinkSec       float64 `json:"nil_sink_sec"`
	NilSinkStdDev    float64 `json:"nil_sink_stddev_sec"`
	ActiveSinkSec    float64 `json:"active_sink_sec"`
	ActiveSinkStdDev float64 `json:"active_sink_stddev_sec"`
	// NilSinkOverheadPct is the acceptance metric: nil-tracer instrumentation
	// cost relative to the uninstrumented trainer, in percent.
	NilSinkOverheadPct float64 `json:"nil_sink_overhead_pct"`
	// NilSinkWithinNoise reports that the nil-sink delta was smaller than
	// the run-to-run noise (sum of both legs' standard deviations), so the
	// overhead percentage is a floor (clamped at 0), not a measurement.
	NilSinkWithinNoise    bool    `json:"nil_sink_within_noise"`
	ActiveSinkOverheadPct float64 `json:"active_sink_overhead_pct"`
	ActiveSinkWithinNoise bool    `json:"active_sink_within_noise"`
	SpansPerRun           int64   `json:"spans_per_run"`
}

// obsOverheadWorkload builds one mini feature-transfer group plus a fresh
// store, mirroring the exec package's training tests.
func obsOverheadWorkload(dir string) (*opt.FusedGroup, *storage.TensorStore, error) {
	hub := models.NewBERTHub(models.BERTMini())
	m, err := hub.FeatureTransferModel("obsbench", models.FeatLastHidden, 9, 500)
	if err != nil {
		return nil, nil, err
	}
	prof, err := profile.Profile(m, MiniHardware())
	if err != nil {
		return nil, nil, err
	}
	item := opt.WorkItem{Model: m, Prof: prof, Epochs: 2, BatchSize: 8, LR: 1e-3}
	groups, err := opt.FuseModels([]opt.WorkItem{item}, nil, opt.FuseConfig{
		MemBudgetBytes: 1 << 40, OptimizerSlotBytes: 2,
	})
	if err != nil {
		return nil, nil, err
	}
	store, err := storage.NewTensorStore(dir, nil)
	if err != nil {
		return nil, nil, err
	}
	return groups[0], store, nil
}

// ObsOverhead measures trainer wall time across the three instrumentation
// modes, averaged over runs individually-timed passes.
func ObsOverhead(runs int) (*ObsOverheadResult, error) {
	if runs <= 0 {
		runs = 5
	}
	dir, err := os.MkdirTemp("", "nautilus-obsbench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	group, store, err := obsOverheadWorkload(dir)
	if err != nil {
		return nil, err
	}
	defer store.Close()
	snap := obsSnapshot()

	res := &ObsOverheadResult{Runs: runs}
	type mode struct {
		secs    *float64
		sd      *float64
		tracer  *obs.Tracer
		trainer *exec.Trainer
		passes  []float64
	}
	modes := []*mode{
		{secs: &res.NoObsSec, sd: &res.NoObsStdDev, tracer: nil},
		{secs: &res.NilSinkSec, sd: &res.NilSinkStdDev, tracer: obs.New(nil)},
		{secs: &res.ActiveSinkSec, sd: &res.ActiveSinkStdDev, tracer: obs.New(obs.NewChromeTraceSink(nopWriteCloser{io.Discard}))},
	}
	// One warmup pass per mode outside the timed window settles allocator
	// state and the store's read cache; the timed passes then interleave
	// the modes round-robin, so slow machine drift (page cache, CPU
	// frequency) lands on every leg equally instead of biasing whichever
	// leg happens to run last.
	for _, md := range modes {
		md.trainer = &exec.Trainer{Store: store, Loss: train.SoftmaxCrossEntropy{}, Seed: 7, Obs: md.tracer}
		md.passes = make([]float64, runs)
		if _, err := md.trainer.TrainGroup(group, snap); err != nil {
			return nil, err
		}
	}
	for i := 0; i < runs; i++ {
		for _, md := range modes {
			//lint:ignore determinism wall-clock benchmark measurement is the experiment's output
			start := time.Now()
			if _, err := md.trainer.TrainGroup(group, snap); err != nil {
				return nil, err
			}
			//lint:ignore determinism wall-clock benchmark measurement is the experiment's output
			md.passes[i] = time.Since(start).Seconds()
		}
	}
	for _, md := range modes {
		*md.secs, *md.sd = meanStdDev(md.passes)
		if md.tracer != nil {
			var spans int64
			for _, st := range md.tracer.SpanStats() {
				spans += st.Count
			}
			res.SpansPerRun = spans / int64(runs+1)
			if err := md.tracer.Close(); err != nil {
				return nil, err
			}
		}
	}
	res.NilSinkOverheadPct, res.NilSinkWithinNoise =
		overheadPct(res.NilSinkSec, res.NilSinkStdDev, res.NoObsSec, res.NoObsStdDev)
	res.ActiveSinkOverheadPct, res.ActiveSinkWithinNoise =
		overheadPct(res.ActiveSinkSec, res.ActiveSinkStdDev, res.NoObsSec, res.NoObsStdDev)
	return res, nil
}

// meanStdDev returns the sample mean and (population) standard deviation.
func meanStdDev(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}

// overheadPct converts an instrumented-vs-bare pair into an overhead
// percentage. A delta smaller than the two legs' combined standard
// deviation is run-to-run noise: the result is flagged and a negative
// percentage (instrumentation "speeding up" training) is clamped to 0.
func overheadPct(sec, sd, baseSec, baseSD float64) (pct float64, withinNoise bool) {
	if baseSec <= 0 {
		return 0, true
	}
	delta := sec - baseSec
	pct = 100 * delta / baseSec
	if math.Abs(delta) <= sd+baseSD {
		withinNoise = true
		if pct < 0 {
			pct = 0
		}
	}
	return pct, withinNoise
}

// obsSnapshot labels a couple of cycles of synthetic NER data for the
// overhead benchmark.
func obsSnapshot() data.Snapshot {
	pool := data.SynthNER(data.NERConfig{Records: 400, Seq: 12, Vocab: 1024, Types: 4, Seed: 99})
	lab := data.NewLabeler(pool, 40, 32)
	var snap data.Snapshot
	for i := 0; i < 2; i++ {
		snap, _, _ = lab.NextCycle()
	}
	return snap
}

// nopWriteCloser adapts io.Discard for sinks that close their writer.
type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// PrintObsOverhead renders the overhead comparison.
func PrintObsOverhead(w io.Writer, r *ObsOverheadResult) error {
	noise := func(within bool) string {
		if within {
			return "  (within noise)"
		}
		return ""
	}
	p := &printer{w: w}
	p.printf("Observability overhead on the trainer hot loop (%d runs averaged)\n", r.Runs)
	p.printf("%-14s %16s %10s\n", "mode", "sec/run", "overhead")
	p.printf("%-14s %9.3f±%.3f %10s\n", "no tracer", r.NoObsSec, r.NoObsStdDev, "-")
	p.printf("%-14s %9.3f±%.3f %9.2f%%%s\n", "nil sink", r.NilSinkSec, r.NilSinkStdDev, r.NilSinkOverheadPct, noise(r.NilSinkWithinNoise))
	p.printf("%-14s %9.3f±%.3f %9.2f%%%s\n", "active sink", r.ActiveSinkSec, r.ActiveSinkStdDev, r.ActiveSinkOverheadPct, noise(r.ActiveSinkWithinNoise))
	p.printf("spans per run (active): %d\n", r.SpansPerRun)
	return p.err
}

// WriteObsOverheadJSON writes the result as indented JSON at path.
func WriteObsOverheadJSON(path string, r *ObsOverheadResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
