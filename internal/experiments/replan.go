package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"nautilus/internal/core"
	"nautilus/internal/data"
	"nautilus/internal/graph"
	"nautilus/internal/mmg"
	"nautilus/internal/models"
	"nautilus/internal/obs"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
)

// ReplanResult compares the materialization cost of an incremental
// AddCandidates replan (the planner session reuses the overlapping V on
// disk) against planning the same final workload from scratch.
type ReplanResult struct {
	// BaseModels / FinalModels size the workload before and after the
	// evolution event.
	BaseModels  int `json:"base_models"`
	FinalModels int `json:"final_models"`
	// BaselineBytes is what the initial (base-workload) plan materialized.
	BaselineBytes int64 `json:"baseline_bytes"`
	// IncrementalBytes is the materialization traffic of the Fit after
	// AddCandidates: only the plan delta's new signatures.
	IncrementalBytes int64 `json:"incremental_bytes"`
	// FullBytes is the traffic of a cold run over the final workload.
	FullBytes int64 `json:"full_bytes"`
	// SavingsPct = 100 × (1 − incremental/full).
	SavingsPct float64 `json:"savings_pct"`
	// Plan-delta shape of the incremental replan.
	KeptSigs     int `json:"kept_sigs"`
	NewSigs      int `json:"new_sigs"`
	OrphanedSigs int `json:"orphaned_sigs"`
	// GroupsChecked of GroupsTotal were re-verified; the rest were skipped
	// by the incremental verifier.
	GroupsTotal   int `json:"groups_total"`
	GroupsChecked int `json:"groups_checked"`
}

// replanWorkload builds the 4-model feature-transfer candidate set used by
// the replan benchmark (2 shared strategies × 2 learning rates, as in the
// core end-to-end tests).
func replanWorkload() ([]opt.WorkItem, error) {
	hub := models.NewBERTHub(models.BERTMini())
	strats := []models.FeatureStrategy{models.FeatLastHidden, models.FeatConcatLast4}
	var items []opt.WorkItem
	i := 0
	for _, strat := range strats {
		for _, lr := range []float64{5e-3, 2e-3} {
			m, err := hub.FeatureTransferModel(fmt.Sprintf("rp%d", i), strat, 9, int64(300+i))
			if err != nil {
				return nil, err
			}
			prof, err := profile.Profile(m, MiniHardware())
			if err != nil {
				return nil, err
			}
			items = append(items, opt.WorkItem{Model: m, Prof: prof, Epochs: 1, BatchSize: 8, LR: lr})
			i++
		}
	}
	return items, nil
}

// replanSnapshot labels two cycles of synthetic NER data.
func replanSnapshot() data.Snapshot {
	pool := data.SynthNER(data.NERConfig{Records: 400, Seq: 12, Vocab: 1024, Types: 4, Seed: 31})
	lab := data.NewLabeler(pool, 40, 32)
	var snap data.Snapshot
	for i := 0; i < 2; i++ {
		snap, _, _ = lab.NextCycle()
	}
	return snap
}

// newReplanMS builds a Nautilus model-selection object over the given
// items with its own tracer (the registry's store.append.bytes counter is
// the experiment's measurement).
func newReplanMS(dir string, items []opt.WorkItem) (*core.ModelSelection, *obs.Tracer, error) {
	ms := make([]*graph.Model, len(items))
	for i, it := range items {
		ms[i] = it.Model
	}
	multi, err := mmg.Build(ms...)
	if err != nil {
		return nil, nil, err
	}
	tracer := obs.New(nil)
	cfg := core.DefaultConfig(dir)
	cfg.Approach = core.Nautilus
	cfg.HW = MiniHardware()
	cfg.Seed = 5
	cfg.MaxRecords = 200
	cfg.Obs = tracer
	sel, err := core.New(items, multi, cfg)
	if err != nil {
		return nil, nil, err
	}
	return sel, tracer, nil
}

// appendBytes reads the cumulative materialization write counter.
func appendBytes(tr *obs.Tracer) int64 {
	return tr.Registry().Counter("store.append.bytes").Value()
}

// Replan runs the replan micro-benchmark: train a base workload, evolve it
// with AddCandidates, and compare the evolution Fit's materialization bytes
// against a cold run of the same final workload. The incremental path must
// write strictly less — it only materializes the plan delta.
func Replan() (*ReplanResult, error) {
	items, err := replanWorkload()
	if err != nil {
		return nil, err
	}
	base, added := items[:len(items)-1], items[len(items)-1]
	snap := replanSnapshot()

	root, err := os.MkdirTemp("", "nautilus-replan-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	res := &ReplanResult{BaseModels: len(base), FinalModels: len(items)}

	// Incremental: plan + train the base workload, then evolve.
	incMS, incTr, err := newReplanMS(workDirOr(root, "incremental"), base)
	if err != nil {
		return nil, err
	}
	defer incMS.Close()
	if _, err := incMS.Fit(snap); err != nil {
		return nil, err
	}
	res.BaselineBytes = appendBytes(incTr)
	if err := incMS.AddCandidates(added); err != nil {
		return nil, err
	}
	if _, err := incMS.Fit(snap); err != nil {
		return nil, err
	}
	res.IncrementalBytes = appendBytes(incTr) - res.BaselineBytes
	if d := incMS.LastDelta(); d != nil {
		res.KeptSigs = len(d.Kept)
		res.NewSigs = len(d.New)
		res.OrphanedSigs = len(d.Orphaned)
		res.GroupsTotal = d.GroupsTotal
		res.GroupsChecked = d.GroupsChecked
	}

	// Full: the same final workload planned and materialized from scratch.
	fullMS, fullTr, err := newReplanMS(workDirOr(root, "full"), items)
	if err != nil {
		return nil, err
	}
	defer fullMS.Close()
	if _, err := fullMS.Fit(snap); err != nil {
		return nil, err
	}
	res.FullBytes = appendBytes(fullTr)

	if res.FullBytes > 0 {
		res.SavingsPct = 100 * (1 - float64(res.IncrementalBytes)/float64(res.FullBytes))
	}
	return res, nil
}

// PrintReplan renders the comparison.
func PrintReplan(w io.Writer, r *ReplanResult) error {
	p := &printer{w: w}
	p.printf("Replan after AddCandidates: incremental vs full materialization\n")
	p.printf("workload: %d models → %d models\n", r.BaseModels, r.FinalModels)
	p.printf("%-22s %14s\n", "phase", "bytes written")
	p.printf("%-22s %14d\n", "baseline (base plan)", r.BaselineBytes)
	p.printf("%-22s %14d\n", "incremental replan", r.IncrementalBytes)
	p.printf("%-22s %14d\n", "full replan", r.FullBytes)
	p.printf("savings: %.1f%%\n", r.SavingsPct)
	p.printf("plan delta: %d kept, %d new, %d orphaned signatures\n", r.KeptSigs, r.NewSigs, r.OrphanedSigs)
	p.printf("verification: %d of %d groups re-checked\n", r.GroupsChecked, r.GroupsTotal)
	return p.err
}

// WriteReplanJSON writes the result as indented JSON at path.
func WriteReplanJSON(path string, r *ReplanResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
