package experiments

import (
	"io"

	"nautilus/internal/core"
	"nautilus/internal/profile"
	"nautilus/internal/workloads"
)

// HWRow is one disk-throughput point of the hardware-sensitivity sweep (an
// ablation beyond the paper): the same FTR-2 workload planned under
// different c_load scales.
type HWRow struct {
	DiskMBps float64
	// Materialized is |V| and Loads the number of layers plans load.
	Materialized int
	Loads        int
	// PlanCostTFLOPs is the per-record workload cost (×r×epochs) in
	// TFLOP-equivalents.
	PlanCostTFLOPs float64
}

// HardwareSweep re-plans FTR-2 (materialization only) across disk
// throughputs. Slower disks raise c_load, so the optimizer materializes
// and loads less — the load-vs-recompute tradeoff of Figure 1(D) made
// explicit.
func HardwareSweep() ([]HWRow, error) {
	var rows []HWRow
	for _, mbps := range []float64{50, 125, 250, 500, 1000, 2000, 8000} {
		hw := profile.DefaultHardware()
		hw.DiskThroughput = mbps * 1e6
		inst, err := workloads.FTR2().Build(workloads.Paper, hw)
		if err != nil {
			return nil, err
		}
		cfg := PaperConfig(core.NautilusNoFuse)
		cfg.HW = hw
		wp, err := core.PlanWorkload(inst.Items, inst.MM, cfg, cfg.MaxRecords)
		if err != nil {
			return nil, err
		}
		row := HWRow{DiskMBps: mbps, Materialized: wp.Stats.Materialized}
		var cost int64
		for _, g := range wp.Groups {
			row.Loads += len(g.Plan.LoadedNodes()) // materialized loads only
			cost += g.Plan.CostPerRecord * int64(g.Epochs())
		}
		row.PlanCostTFLOPs = float64(cost) / 1e12
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintHardwareSweep renders the sweep.
func PrintHardwareSweep(w io.Writer, rows []HWRow) error {
	p := &printer{w: w}
	p.printf("Hardware sensitivity: FTR-2 MAT OPT plans vs disk throughput (ablation beyond the paper)\n")
	p.printf("%-12s %6s %8s %16s\n", "disk(MB/s)", "|V|", "loads", "cost(TFLOPs/rec)")
	for _, r := range rows {
		p.printf("%-12.0f %6d %8d %16.2f\n", r.DiskMBps, r.Materialized, r.Loads, r.PlanCostTFLOPs)
	}
	return p.err
}
