package experiments

import (
	"io"
	"time"

	"nautilus/internal/core"
	"nautilus/internal/opt"
	"nautilus/internal/workloads"
)

// Table3Row summarizes one workload's configuration (the reproduction of
// Table 3) plus its theoretical speedup (Equation 11).
type Table3Row struct {
	Workload   string
	Approach   workloads.Approach
	Variants   int
	BatchSizes []int
	LRs        []float64
	Epochs     []int
	NumModels  int
	// TheoreticalSpeedup is Equation 11 at paper scale.
	TheoreticalSpeedup float64
}

// Table3 reproduces Table 3 with the Equation 11 column appended.
func Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, s := range workloads.All() {
		inst, err := PaperInstance(s)
		if err != nil {
			return nil, err
		}
		variants := len(s.Strategies)
		if variants == 0 {
			variants = len(s.Depths)
		}
		rows = append(rows, Table3Row{
			Workload:           s.Name,
			Approach:           s.Approach,
			Variants:           variants,
			BatchSizes:         s.BatchSizes,
			LRs:                s.LRs,
			Epochs:             s.Epochs,
			NumModels:          s.NumModels(),
			TheoreticalSpeedup: TheoreticalSpeedup(inst),
		})
	}
	return rows, nil
}

// PrintTable3 renders Table 3 rows.
func PrintTable3(w io.Writer, rows []Table3Row) error {
	p := &printer{w: w}
	p.printf("Table 3: model selection configurations (+ Equation 11 theoretical speedup)\n")
	p.printf("%-8s %-18s %9s %12s %22s %9s %8s %10s\n",
		"workload", "approach", "variants", "batch sizes", "learning rates", "epochs", "#models", "eq11")
	for _, r := range rows {
		p.printf("%-8s %-18s %9d %12v %22v %9v %8d %9.1fX\n",
			r.Workload, r.Approach, r.Variants, r.BatchSizes, r.LRs, r.Epochs, r.NumModels, r.TheoreticalSpeedup)
	}
	return p.err
}

// SolverStats compares the two materialization solvers on one paper-scale
// workload (the Section 5.3 claim that the MILP solves in a few tens of
// seconds at practical workload sizes).
type SolverStats struct {
	Workload   string
	BnBTime    time.Duration
	BnBNodes   int
	BnBCost    int64
	MILPTime   time.Duration
	MILPCost   int64
	CostsAgree bool
}

// CompareSolvers runs both materialization solvers on the workload.
// FTR-3's 12 models keep the dense-simplex MILP tractable; the B&B solver
// handles every workload size.
func CompareSolvers(spec workloads.Spec) (*SolverStats, error) {
	inst, err := PaperInstance(spec)
	if err != nil {
		return nil, err
	}
	cfg := PaperConfig(core.Nautilus)
	st := &SolverStats{Workload: spec.Name}

	bnb, err := opt.OptimizeMaterialization(inst.MM, inst.Items, opt.MatConfig{
		DiskBudgetBytes: cfg.DiskBudgetBytes, MaxRecords: cfg.MaxRecords, Solver: "bnb",
	})
	if err != nil {
		return nil, err
	}
	st.BnBTime = bnb.SolveTime
	st.BnBNodes = bnb.NodesExplored
	st.BnBCost = bnb.TotalCostFLOPs

	ml, err := opt.OptimizeMaterialization(inst.MM, inst.Items, opt.MatConfig{
		DiskBudgetBytes: cfg.DiskBudgetBytes, MaxRecords: cfg.MaxRecords, Solver: "milp",
	})
	if err != nil {
		return nil, err
	}
	st.MILPTime = ml.SolveTime
	st.MILPCost = ml.TotalCostFLOPs
	st.CostsAgree = st.BnBCost == st.MILPCost
	return st, nil
}

// PrintSolverStats renders solver comparison results.
func PrintSolverStats(w io.Writer, st *SolverStats) error {
	p := &printer{w: w}
	p.printf("Optimizer solve time (%s, paper scale)\n", st.Workload)
	p.printf("branch&bound + min-cut: %v (%d nodes), plan cost %d\n", st.BnBTime, st.BnBNodes, st.BnBCost)
	p.printf("joint MILP (simplex):   %v, plan cost %d\n", st.MILPTime, st.MILPCost)
	p.printf("solvers agree on optimal cost: %v\n", st.CostsAgree)
	return p.err
}
