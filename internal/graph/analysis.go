package graph

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"

	"nautilus/internal/tensor"
)

// Materializable computes, for every node in the model, whether it is
// materializable per paper Definition 2.4: it is a model input layer, or it
// is frozen and all of its parents are materializable. Materializable nodes
// are exactly those whose outputs never change during training and thus
// cause redundant computation when recomputed.
func (m *Model) Materializable() map[*Node]bool {
	mat := make(map[*Node]bool, len(m.nodes))
	for _, n := range m.nodes {
		if n.IsInput() {
			mat[n] = true
			continue
		}
		v := n.Frozen()
		for _, p := range n.Parents {
			if !mat[p] {
				v = false
				break
			}
		}
		mat[n] = v
	}
	return mat
}

// Signature is a 64-bit identity hash. Layer signatures implement the layer
// identity test of Definition 4.3 (same type, same configuration, same
// parameter values); expression signatures extend it recursively over the
// input DAG so two nodes with equal expression signatures compute identical
// functions of the dataset inputs.
type Signature uint64

// String renders the signature as fixed-width hex, used as a stable key for
// materialized artifacts on disk.
func (s Signature) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// LayerSignature hashes a node's layer identity: type, canonicalized
// config, and the fingerprints of its parameters. Trainability is included
// because a trainable node's output evolves during training even when its
// initial parameters match a frozen twin.
func LayerSignature(n *Node) Signature {
	h := fnv.New64a()
	h.Write([]byte(n.Layer.Type()))
	h.Write([]byte{0})
	h.Write(canonicalConfig(n.Layer.Config()))
	var buf [8]byte
	if n.Frozen() {
		buf[0] = 1
	}
	h.Write(buf[:1])
	for _, p := range n.Layer.Params() {
		binary.LittleEndian.PutUint64(buf[:], p.Fingerprint())
		h.Write(buf[:])
	}
	return Signature(h.Sum64())
}

// ExprSignatures computes the expression signature (Definition 4.1–4.3) of
// every node: a recursive hash over the node's layer signature and the
// expression signatures of its ordered parents. Dataset input nodes hash
// their shape and feed key, so the same logical input matches across
// models.
func (m *Model) ExprSignatures() map[*Node]Signature {
	sigs := make(map[*Node]Signature, len(m.nodes))
	for _, n := range m.nodes {
		h := fnv.New64a()
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(LayerSignature(n)))
		h.Write(buf[:])
		for _, p := range n.Parents {
			binary.LittleEndian.PutUint64(buf[:], uint64(sigs[p]))
			h.Write(buf[:])
		}
		sigs[n] = Signature(h.Sum64())
	}
	return sigs
}

// canonicalConfig serializes a config map with sorted keys so hashing is
// order-independent.
func canonicalConfig(cfg map[string]any) []byte {
	keys := make([]string, 0, len(cfg))
	for k := range cfg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	for _, k := range keys {
		out = append(out, k...)
		out = append(out, '=')
		b, err := json.Marshal(cfg[k])
		if err != nil {
			panic(fmt.Sprintf("graph: config value %q not serializable: %v", k, err))
		}
		out = append(out, b...)
		out = append(out, ';')
	}
	return out
}

// ActivationBytesPerRecord returns the bytes of intermediate output a node
// produces for one record: the layer's own report if it implements
// ActivationSizer (composite layers), else the output tensor size. This is
// the paper's s_mem(l).
func ActivationBytesPerRecord(n *Node, inShapes [][]int) int64 {
	if sizer, ok := n.Layer.(ActivationSizer); ok {
		return sizer.ActivationBytesPerRecord(inShapes)
	}
	return int64(tensor.NumElems(n.Layer.OutShape(inShapes))) * 4
}
