package graph_test

import (
	"math/rand"
	"testing"

	"nautilus/internal/models"
	"nautilus/internal/tensor"
)

// BenchmarkMiniBERTForwardBackward measures one training step's engine
// cost on the mini BERT feature-transfer model (batch 8).
func BenchmarkMiniBERTForwardBackward(b *testing.B) {
	hub := models.NewBERTHub(models.BERTMini())
	m, err := hub.FeatureTransferModel("bench", models.FeatLastHidden, 9, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ids := tensor.New(8, hub.Cfg.Seq)
	for i := range ids.Data() {
		ids.Data()[i] = float32(rng.Intn(hub.Cfg.Vocab))
	}
	grad := tensor.RandNormal(rng, 0.1, 8, hub.Cfg.Seq, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tape, err := m.Forward(map[string]*tensor.Tensor{"ids": ids}, true)
		if err != nil {
			b.Fatal(err)
		}
		if err := tape.Backward(map[string]*tensor.Tensor{"classifier": grad}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMiniBERTForwardOnly isolates the inference path.
func BenchmarkMiniBERTForwardOnly(b *testing.B) {
	hub := models.NewBERTHub(models.BERTMini())
	m, err := hub.FeatureTransferModel("bench", models.FeatLastHidden, 9, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ids := tensor.New(8, hub.Cfg.Seq)
	for i := range ids.Data() {
		ids.Data()[i] = float32(rng.Intn(hub.Cfg.Vocab))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Forward(map[string]*tensor.Tensor{"ids": ids}, false); err != nil {
			b.Fatal(err)
		}
	}
}
