package graph

import (
	"fmt"

	"nautilus/internal/tensor"
)

// Tape records one forward pass over a model so gradients can be
// back-propagated. It owns all activations and layer caches; layers stay
// stateless.
type Tape struct {
	model  *Model
	train  bool
	acts   map[*Node]*tensor.Tensor
	caches map[*Node]any

	paramGrads map[*Param]*tensor.Tensor
	inputGrads map[*Node]*tensor.Tensor

	alloc tensor.Alloc

	allocObs AllocObserver
}

// AllocObserver receives the byte-level tensor allocation and release
// events of a backward pass, letting observers replay the executor's
// live-tensor high-water mark (the B_mem cross-check against the
// analytical estimate of Section 4.3.3). Forward activations are not
// reported — they are all live for the whole tape lifetime and observers
// seed themselves from LiveActivationBytes.
type AllocObserver interface {
	Alloc(bytes int64)
	Free(bytes int64)
}

// SetAllocObserver installs (or, with nil, removes) the tape's allocation
// observer. Call between Forward and Backward.
func (t *Tape) SetAllocObserver(o AllocObserver) { t.allocObs = o }

func (t *Tape) observeAlloc(x *tensor.Tensor) {
	if t.allocObs != nil && x != nil {
		t.allocObs.Alloc(int64(x.Len()) * 4)
	}
}

func (t *Tape) observeFree(x *tensor.Tensor) {
	if t.allocObs != nil && x != nil {
		t.allocObs.Free(int64(x.Len()) * 4)
	}
}

// ForwardOptions controls a forward pass.
type ForwardOptions struct {
	// Train enables training-only layer behaviour (dropout).
	Train bool
	// Alloc, when non-nil, is the allocation strategy for the pass: feeds
	// are re-headered to derive from it, so every intermediate, cache, and
	// (later) gradient tensor the pass creates comes from the same scope and
	// can be recycled wholesale once the step retires. Logical allocation
	// reporting to the AllocObserver is unaffected — metering counts tensor
	// lifetimes, not mallocs.
	Alloc tensor.Alloc
}

// Forward executes the model on the given feeds. Every input node of the
// model must be present in feeds, keyed by node name; reuse plans also feed
// materialized intermediates this way. train enables training-only layer
// behaviour (dropout).
func (m *Model) Forward(feeds map[string]*tensor.Tensor, train bool) (*Tape, error) {
	return m.ForwardOpts(feeds, ForwardOptions{Train: train})
}

// ForwardOpts is Forward with explicit options.
func (m *Model) ForwardOpts(feeds map[string]*tensor.Tensor, opts ForwardOptions) (*Tape, error) {
	t := &Tape{
		model:  m,
		train:  opts.Train,
		acts:   make(map[*Node]*tensor.Tensor, len(m.nodes)),
		caches: make(map[*Node]any),
		alloc:  opts.Alloc,
	}
	for _, n := range m.Reachable() {
		if n.IsInput() {
			v, ok := feeds[n.Name]
			if !ok {
				return nil, fmt.Errorf("graph: no feed for input %q of model %q", n.Name, m.Name)
			}
			t.acts[n] = tensor.WithAlloc(opts.Alloc, v)
			continue
		}
		in := make([]*tensor.Tensor, len(n.Parents))
		for i, p := range n.Parents {
			in[i] = t.acts[p]
		}
		out, cache := n.Layer.Forward(in, opts.Train)
		t.acts[n] = out
		t.caches[n] = cache
	}
	return t, nil
}

// Output returns the recorded activation of a node.
func (t *Tape) Output(n *Node) *tensor.Tensor { return t.acts[n] }

// Outputs returns the activations of the model's output nodes in order.
func (t *Tape) Outputs() []*tensor.Tensor {
	outs := make([]*tensor.Tensor, len(t.model.Outputs))
	for i, o := range t.model.Outputs {
		outs[i] = t.acts[o]
	}
	return outs
}

// BackwardOptions controls which gradients a backward pass produces.
type BackwardOptions struct {
	// InputGrads forces gradient flow all the way to input nodes, whose
	// gradients become available via InputGrad. Composite layers use this
	// to chain backward passes through their inner model.
	InputGrads bool
	// SkipParamGrads suppresses all parameter-gradient computation; a
	// frozen composite uses it so its inner backward pass only routes
	// input gradients (2× forward cost, not 3×).
	SkipParamGrads bool
}

// Backward back-propagates the given output gradients (keyed by node name)
// through the tape, accumulating parameter gradients for trainable nodes.
func (t *Tape) Backward(outGrads map[string]*tensor.Tensor) error {
	return t.BackwardOpts(outGrads, BackwardOptions{})
}

// BackwardOpts is Backward with explicit options.
//
// Gradient work is skipped below nodes with no trainable ancestors, and
// parameter-gradient computation is skipped at frozen nodes; this realizes
// the paper's cost model where a trainable layer costs 3× its forward
// FLOPs, a frozen non-materializable layer 2×, and a materializable layer
// 1× (Section 4.1).
func (t *Tape) BackwardOpts(outGrads map[string]*tensor.Tensor, opts BackwardOptions) error {
	m := t.model
	if t.paramGrads == nil {
		t.paramGrads = map[*Param]*tensor.Tensor{}
	}
	if t.inputGrads == nil {
		t.inputGrads = map[*Node]*tensor.Tensor{}
	}
	needGrad := t.needGradSet(opts.InputGrads)

	nodeGrads := map[*Node]*tensor.Tensor{}
	for name, g := range outGrads {
		n := m.Node(name)
		if n == nil {
			return fmt.Errorf("graph: output gradient for unknown node %q", name)
		}
		nodeGrads[n] = tensor.CloneIn(t.alloc, g)
		t.observeAlloc(nodeGrads[n])
	}

	reach := m.Reachable()
	for i := len(reach) - 1; i >= 0; i-- {
		n := reach[i]
		g := nodeGrads[n]
		if g == nil {
			continue
		}
		if n.IsInput() {
			if opts.InputGrads {
				t.inputGrads[n] = g
			} else {
				t.observeFree(g)
			}
			continue
		}
		needParams := !n.Frozen() && !opts.SkipParamGrads
		needInputs := anyParentNeedsGrad(n, needGrad)
		if !needParams && !needInputs {
			t.observeFree(g)
			continue
		}
		in := make([]*tensor.Tensor, len(n.Parents))
		for j, p := range n.Parents {
			in[j] = t.acts[p]
		}
		gradIn, gradParams := n.Layer.Backward(t.caches[n], in, t.acts[n], g, BackwardNeed{Inputs: needInputs, Params: needParams})
		if needParams {
			params := n.Layer.Params()
			if len(gradParams) != len(params) {
				return fmt.Errorf("graph: node %q returned %d param grads for %d params", n.Name, len(gradParams), len(params))
			}
			for j, p := range params {
				if gradParams[j] == nil {
					continue
				}
				if acc := t.paramGrads[p]; acc != nil {
					tensor.AddInPlace(acc, gradParams[j])
				} else {
					t.paramGrads[p] = tensor.CloneIn(t.alloc, gradParams[j])
					t.observeAlloc(t.paramGrads[p])
				}
			}
		}
		for j, p := range n.Parents {
			if gradIn == nil || gradIn[j] == nil || !needGrad[p] {
				continue
			}
			if acc := nodeGrads[p]; acc != nil {
				tensor.AddInPlace(acc, gradIn[j])
			} else {
				nodeGrads[p] = tensor.CloneIn(t.alloc, gradIn[j])
				t.observeAlloc(nodeGrads[p])
			}
		}
		// n's own gradient is dead once distributed to params and parents.
		t.observeFree(g)
	}
	return nil
}

// ParamGrads returns the accumulated parameter gradients.
func (t *Tape) ParamGrads() map[*Param]*tensor.Tensor { return t.paramGrads }

// InputGrad returns the gradient that flowed into the named input node
// during a BackwardOpts call with InputGrads set, or nil.
func (t *Tape) InputGrad(name string) *tensor.Tensor {
	n := t.model.Node(name)
	if n == nil {
		return nil
	}
	return t.inputGrads[n]
}

// needGradSet computes, for every node, whether gradient must flow *into*
// it: true iff the node or any of its ancestors is trainable, or it is an
// input node and input gradients were requested.
func (t *Tape) needGradSet(inputGrads bool) map[*Node]bool {
	need := map[*Node]bool{}
	for _, n := range t.model.nodes {
		v := !n.Frozen() || (inputGrads && n.IsInput())
		if !v {
			for _, p := range n.Parents {
				if need[p] {
					v = true
					break
				}
			}
		}
		need[n] = v
	}
	return need
}

func anyParentNeedsGrad(n *Node, need map[*Node]bool) bool {
	for _, p := range n.Parents {
		if need[p] {
			return true
		}
	}
	return false
}

// LiveActivationBytes returns the total bytes of all activations currently
// recorded on the tape, used by tests validating the analytical peak-memory
// estimator against real executions.
func (t *Tape) LiveActivationBytes() int64 {
	var total int64
	for _, a := range t.acts {
		total += int64(a.Len()) * 4
	}
	return total
}
