package graph_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nautilus/internal/graph"
	"nautilus/internal/layers"
	"nautilus/internal/tensor"
)

// buildChain constructs in -> d1(frozen) -> d2(frozen) -> d3(trainable),
// a minimal feature-transfer shape.
func buildChain(t *testing.T) (*graph.Model, *graph.Node, *graph.Node, *graph.Node) {
	t.Helper()
	m := graph.NewModel("chain")
	in := m.AddInput("in", 4)
	d1 := m.AddNode("d1", layers.NewDense(4, 5, layers.ActTanh, 1), in)
	d2 := m.AddNode("d2", layers.NewDense(5, 6, layers.ActTanh, 2), d1)
	d3 := m.AddNode("d3", layers.NewDense(6, 3, layers.ActNone, 3), d2)
	d3.Trainable = true
	m.SetOutputs(d3)
	return m, d1, d2, d3
}

func TestModelValidateAndShapes(t *testing.T) {
	m, _, _, d3 := buildChain(t)
	shapes, err := m.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(shapes[d3], []int{3}) {
		t.Errorf("output shape = %v, want [3]", shapes[d3])
	}
}

func TestModelNoOutputsInvalid(t *testing.T) {
	m := graph.NewModel("bad")
	m.AddInput("in", 2)
	if _, err := m.Validate(); err == nil {
		t.Error("model without outputs should fail validation")
	}
}

func TestDuplicateNodeNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := graph.NewModel("dup")
	m.AddInput("x", 2)
	m.AddInput("x", 3)
}

func TestForeignParentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m1 := graph.NewModel("a")
	in := m1.AddInput("in", 2)
	m2 := graph.NewModel("b")
	m2.AddNode("d", layers.NewDense(2, 2, layers.ActNone, 1), in)
}

func TestForwardMissingFeedErrors(t *testing.T) {
	m, _, _, _ := buildChain(t)
	if _, err := m.Forward(map[string]*tensor.Tensor{}, false); err == nil {
		t.Error("missing feed should error")
	}
}

func TestForwardBackwardEndToEnd(t *testing.T) {
	m, _, _, d3 := buildChain(t)
	rng := rand.New(rand.NewSource(42))
	x := tensor.RandNormal(rng, 1, 2, 4)
	tape, err := m.Forward(map[string]*tensor.Tensor{"in": x}, false)
	if err != nil {
		t.Fatal(err)
	}
	out := tape.Output(d3)
	if !tensor.ShapeEq(out.Shape(), []int{2, 3}) {
		t.Fatalf("output shape %v", out.Shape())
	}
	w := tensor.RandNormal(rng, 1, 2, 3)
	if err := tape.Backward(map[string]*tensor.Tensor{"d3": w}); err != nil {
		t.Fatal(err)
	}
	// Only the trainable head's params should have gradients.
	grads := tape.ParamGrads()
	d3params := d3.Layer.Params()
	if grads[d3params[0]] == nil || grads[d3params[1]] == nil {
		t.Error("trainable head should receive gradients")
	}
	if len(grads) != 2 {
		t.Errorf("got %d param grads, want 2 (frozen layers must not accumulate)", len(grads))
	}

	// Model-level finite-difference check on a head weight.
	wparam := d3params[0]
	loss := func() float64 {
		tp, _ := m.Forward(map[string]*tensor.Tensor{"in": x}, false)
		return tensor.Sum(tensor.Mul(tp.Output(d3), w))
	}
	const eps = 1e-2
	i := 3
	orig := wparam.Tensor().Data()[i]
	wparam.Tensor().Data()[i] = orig + eps
	lp := loss()
	wparam.Tensor().Data()[i] = orig - eps
	lm := loss()
	wparam.Tensor().Data()[i] = orig
	num := (lp - lm) / (2 * eps)
	got := float64(grads[wparam].Data()[i])
	if math.Abs(num-got) > 1e-2*math.Max(1, math.Abs(num)) {
		t.Errorf("head grad: numeric %v vs analytic %v", num, got)
	}
}

func TestMaterializableAnalysis(t *testing.T) {
	// Definition 2.4: input and frozen-with-materializable-parents only.
	m := graph.NewModel("mat")
	in := m.AddInput("in", 4)
	f1 := m.AddNode("f1", layers.NewDense(4, 4, layers.ActNone, 1), in) // frozen
	tr := m.AddNode("tr", layers.NewDense(4, 4, layers.ActNone, 2), f1)
	tr.Trainable = true
	f2 := m.AddNode("f2", layers.NewDense(4, 4, layers.ActNone, 3), tr) // frozen but below trainable
	mix := m.AddNode("mix", layers.NewAdd(2), f1, f2)                   // one parent not materializable
	head := m.AddNode("head", layers.NewDense(4, 2, layers.ActNone, 4), mix)
	head.Trainable = true
	m.SetOutputs(head)

	mat := m.Materializable()
	want := map[string]bool{"in": true, "f1": true, "tr": false, "f2": false, "mix": false, "head": false}
	for name, v := range want {
		if mat[m.Node(name)] != v {
			t.Errorf("materializable[%s] = %v, want %v", name, mat[m.Node(name)], v)
		}
	}
}

func TestExprSignaturesMergeAcrossModels(t *testing.T) {
	// Two models sharing identical frozen trunks must produce identical
	// expression signatures for the shared prefix, and differ where the
	// models diverge.
	build := func(headSeed int64) *graph.Model {
		m := graph.NewModel("m")
		in := m.AddInput("in", 4)
		d1 := m.AddNode("d1", layers.NewDense(4, 5, layers.ActTanh, 100), in)
		d2 := m.AddNode("d2", layers.NewDense(5, 6, layers.ActTanh, 200), d1)
		h := m.AddNode("h", layers.NewDense(6, 2, layers.ActNone, headSeed), d2)
		h.Trainable = true
		m.SetOutputs(h)
		return m
	}
	a, b := build(1), build(2)
	sa, sb := a.ExprSignatures(), b.ExprSignatures()
	if sa[a.Node("d1")] != sb[b.Node("d1")] || sa[a.Node("d2")] != sb[b.Node("d2")] {
		t.Error("shared frozen trunk must have equal expression signatures")
	}
	if sa[a.Node("h")] == sb[b.Node("h")] {
		t.Error("different heads must have different signatures")
	}
	// Signatures must differ between consecutive depths.
	if sa[a.Node("d1")] == sa[a.Node("d2")] {
		t.Error("different depths must have different signatures")
	}
}

func TestFeedingIntermediateReproducesFullModel(t *testing.T) {
	// The reuse-plan invariant (paper Section 4.2.1): training a plan
	// model that loads a materialized intermediate is logically
	// equivalent to the original model.
	full, _, d2, d3 := buildChain(t)
	rng := rand.New(rand.NewSource(7))
	x := tensor.RandNormal(rng, 1, 3, 4)

	fullTape, err := full.Forward(map[string]*tensor.Tensor{"in": x}, false)
	if err != nil {
		t.Fatal(err)
	}
	d2out := fullTape.Output(d2)

	// Plan model: feed d2's output, keep only the head (sharing the same
	// layer instance, as Nautilus plans do).
	plan := graph.NewModel("plan")
	feed := plan.AddNode("feed_d2", graph.NewFeed("sig", 6))
	h := plan.AddNode("d3", d3.Layer, feed)
	h.Trainable = true
	plan.SetOutputs(h)

	planTape, err := plan.Forward(map[string]*tensor.Tensor{"feed_d2": d2out}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !planTape.Output(h).AllClose(fullTape.Output(d3), 1e-6) {
		t.Error("plan model output differs from full model")
	}

	// Gradients of the shared head must also match.
	g := tensor.RandNormal(rng, 1, 3, 3)
	if err := fullTape.Backward(map[string]*tensor.Tensor{"d3": g}); err != nil {
		t.Fatal(err)
	}
	if err := planTape.Backward(map[string]*tensor.Tensor{"d3": g}); err != nil {
		t.Fatal(err)
	}
	p := d3.Layer.Params()[0]
	if !fullTape.ParamGrads()[p].AllClose(planTape.ParamGrads()[p], 1e-5) {
		t.Error("plan model gradients differ from full model")
	}
}

func TestReachablePrunesDeadBranches(t *testing.T) {
	m := graph.NewModel("dead")
	in := m.AddInput("in", 4)
	live := m.AddNode("live", layers.NewDense(4, 2, layers.ActNone, 1), in)
	m.AddNode("dead", layers.NewDense(4, 3, layers.ActNone, 2), in)
	m.SetOutputs(live)
	r := m.Reachable()
	if len(r) != 2 {
		t.Fatalf("reachable = %d nodes, want 2", len(r))
	}
	// Forward must not execute the dead branch (it would show in acts).
	x := tensor.New(1, 4)
	tape, err := m.Forward(map[string]*tensor.Tensor{"in": x}, false)
	if err != nil {
		t.Fatal(err)
	}
	if tape.Output(m.Node("dead")) != nil {
		t.Error("dead branch should not be computed")
	}
}

func TestTrainableParamsAndCounts(t *testing.T) {
	m, _, _, _ := buildChain(t)
	tp := m.TrainableParams()
	if len(tp) != 2 {
		t.Fatalf("trainable params = %d, want 2", len(tp))
	}
	total, trainable := m.ParamCount()
	wantTotal := int64(4*5 + 5 + 5*6 + 6 + 6*3 + 3)
	if total != wantTotal {
		t.Errorf("total params = %d, want %d", total, wantTotal)
	}
	if trainable != int64(6*3+3) {
		t.Errorf("trainable params = %d, want %d", trainable, 6*3+3)
	}
}

func TestSharedLayerAcrossTwoNodes(t *testing.T) {
	// A fused model uses one layer instance under two branches; gradients
	// must accumulate across both uses.
	m := graph.NewModel("shared")
	in := m.AddInput("in", 3)
	shared := layers.NewDense(3, 3, layers.ActNone, 9)
	a := m.AddNode("a", shared, in)
	a.Trainable = true
	b := m.AddNode("b", layers.NewDense(3, 3, layers.ActNone, 10), a)
	b.Trainable = true
	c := m.AddNode("c", shared, b) // same instance again
	c.Trainable = true
	m.SetOutputs(c)

	rng := rand.New(rand.NewSource(11))
	x := tensor.RandNormal(rng, 1, 2, 3)
	tape, err := m.Forward(map[string]*tensor.Tensor{"in": x}, false)
	if err != nil {
		t.Fatal(err)
	}
	g := tensor.RandNormal(rng, 1, 2, 3)
	if err := tape.Backward(map[string]*tensor.Tensor{"c": g}); err != nil {
		t.Fatal(err)
	}
	w := shared.Params()[0]
	got := tape.ParamGrads()[w]
	if got == nil {
		t.Fatal("shared layer received no gradient")
	}
	// Finite difference on the shared weight must match the accumulated
	// gradient (both uses contribute).
	loss := func() float64 {
		tp, _ := m.Forward(map[string]*tensor.Tensor{"in": x}, false)
		return tensor.Sum(tensor.Mul(tp.Output(c), g))
	}
	const eps = 1e-2
	i := 4
	orig := w.Tensor().Data()[i]
	w.Tensor().Data()[i] = orig + eps
	lp := loss()
	w.Tensor().Data()[i] = orig - eps
	lm := loss()
	w.Tensor().Data()[i] = orig
	num := (lp - lm) / (2 * eps)
	if math.Abs(num-float64(got.Data()[i])) > 2e-2*math.Max(1, math.Abs(num)) {
		t.Errorf("shared-layer grad: numeric %v vs analytic %v", num, got.Data()[i])
	}
}

func TestBackwardUnknownOutputErrors(t *testing.T) {
	m, _, _, _ := buildChain(t)
	x := tensor.New(1, 4)
	tape, _ := m.Forward(map[string]*tensor.Tensor{"in": x}, false)
	if err := tape.Backward(map[string]*tensor.Tensor{"nope": tensor.New(1, 3)}); err == nil {
		t.Error("unknown output node should error")
	}
}

func TestParamLazyMaterializationAndFingerprint(t *testing.T) {
	p := graph.NewParamNormal("w", 77, 0.1, 8, 8)
	if p.Materialized() {
		t.Error("param should start unmaterialized")
	}
	fpBefore := p.Fingerprint()
	q := graph.NewParamNormal("w", 77, 0.1, 8, 8)
	if q.Fingerprint() != fpBefore {
		t.Error("same spec must fingerprint equal before materialization")
	}
	r := graph.NewParamNormal("w", 78, 0.1, 8, 8)
	if r.Fingerprint() == fpBefore {
		t.Error("different seed must fingerprint differently")
	}
	// Materialization is deterministic per seed.
	if !p.Tensor().AllClose(q.Tensor(), 0) {
		t.Error("same seed must materialize identical tensors")
	}
	// Clone of materialized param is independent.
	c := p.Clone()
	c.Tensor().Data()[0] = 999
	if p.Tensor().Data()[0] == 999 {
		t.Error("clone must not share data")
	}
}

func TestLayerRegistryRoundTrip(t *testing.T) {
	for _, typ := range []string{"dense", "layer_norm", "mha", "transformer_block", "residual_block"} {
		found := false
		for _, r := range graph.RegisteredLayerTypes() {
			if r == typ {
				found = true
			}
		}
		if !found {
			t.Errorf("layer type %q not registered", typ)
		}
	}
	l, err := graph.NewLayerFromConfig("dense", map[string]any{"in": 3.0, "out": 2.0, "act": "none"})
	if err != nil {
		t.Fatal(err)
	}
	if l.Type() != "dense" {
		t.Errorf("rebuilt layer type = %q", l.Type())
	}
	if _, err := graph.NewLayerFromConfig("no_such_layer", nil); err == nil {
		t.Error("unknown type should error")
	}
}

// TestRandomDAGEndToEndGradients is the engine-level property test: on
// random dense/concat DAGs with random trainability, every accumulated
// parameter gradient must match central finite differences of the full
// forward pass.
func TestRandomDAGEndToEndGradients(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := graph.NewModel("rnd")
		in := m.AddInput("in", 2+rng.Intn(3))
		width := map[*graph.Node]int{in: in.Layer.(*graph.InputLayer).Shape[0]}
		nodes := []*graph.Node{in}
		for i := 0; i < 2+rng.Intn(4); i++ {
			p := nodes[rng.Intn(len(nodes))]
			w := 2 + rng.Intn(3)
			n := m.AddNode(fmt.Sprintf("d%d", i),
				layers.NewDense(width[p], w, layers.ActTanh, rng.Int63()), p)
			n.Trainable = rng.Intn(2) == 0
			width[n] = w
			nodes = append(nodes, n)
		}
		out := nodes[len(nodes)-1]
		out.Trainable = true
		m.SetOutputs(out)

		x := tensor.RandNormal(rng, 1, 2, width[in])
		probe := tensor.RandNormal(rng, 1, 2, width[out])
		loss := func() float64 {
			tp, err := m.Forward(map[string]*tensor.Tensor{"in": x}, false)
			if err != nil {
				t.Fatal(err)
			}
			return tensor.Sum(tensor.Mul(tp.Output(out), probe))
		}
		tape, err := m.Forward(map[string]*tensor.Tensor{"in": x}, false)
		if err != nil {
			return false
		}
		if err := tape.Backward(map[string]*tensor.Tensor{out.Name: probe}); err != nil {
			return false
		}
		for p, g := range tape.ParamGrads() {
			i := rng.Intn(p.NumElems())
			const eps = 1e-2
			orig := p.Tensor().Data()[i]
			p.Tensor().Data()[i] = orig + eps
			lp := loss()
			p.Tensor().Data()[i] = orig - eps
			lm := loss()
			p.Tensor().Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-float64(g.Data()[i])) > 3e-2*math.Max(1, math.Abs(num)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWithOutputsRestrictsExecution(t *testing.T) {
	m, d1, _, d3 := buildChain(t)
	view := m.WithOutputs(d1)
	x := tensor.New(1, 4)
	tape, err := view.Forward(map[string]*tensor.Tensor{"in": x}, false)
	if err != nil {
		t.Fatal(err)
	}
	if tape.Output(d1) == nil {
		t.Error("view output not computed")
	}
	if tape.Output(d3) != nil {
		t.Error("view must not compute beyond its outputs")
	}
	// The original model's outputs are untouched.
	if m.Outputs[0] != d3 {
		t.Error("WithOutputs mutated the original model")
	}
}

func TestTapeOutputsAndLiveBytes(t *testing.T) {
	m, _, _, d3 := buildChain(t)
	x := tensor.New(2, 4)
	tape, err := m.Forward(map[string]*tensor.Tensor{"in": x}, false)
	if err != nil {
		t.Fatal(err)
	}
	outs := tape.Outputs()
	if len(outs) != 1 || outs[0] != tape.Output(d3) {
		t.Error("Outputs() mismatch")
	}
	// Live bytes: x(2×4) + d1(2×5) + d2(2×6) + d3(2×3) = 36 floats.
	if got := tape.LiveActivationBytes(); got != 36*4 {
		t.Errorf("live bytes = %d, want %d", got, 36*4)
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := map[string]any{
		"ints":  []any{1.0, 2.0},
		"int":   3.0,
		"float": 1.5,
		"str":   "x",
	}
	ints, err := graph.IntSlice(cfg, "ints")
	if err != nil || len(ints) != 2 || ints[1] != 2 {
		t.Errorf("IntSlice = %v (%v)", ints, err)
	}
	if _, err := graph.IntSlice(cfg, "str"); err == nil {
		t.Error("IntSlice on string should error")
	}
	if v, err := graph.Int(cfg, "int"); err != nil || v != 3 {
		t.Errorf("Int = %v (%v)", v, err)
	}
	if _, err := graph.Int(cfg, "str"); err == nil {
		t.Error("Int on string should error")
	}
	if v, err := graph.Float(cfg, "float"); err != nil || v != 1.5 {
		t.Errorf("Float = %v (%v)", v, err)
	}
	if _, err := graph.Float(cfg, "str"); err == nil {
		t.Error("Float on string should error")
	}
}

func TestParamReset(t *testing.T) {
	p := graph.NewParamNormal("w", 5, 1, 4)
	before := p.Tensor().Clone()
	p.Tensor().Data()[0] += 100 // simulate training
	p.Reset()
	if p.Materialized() {
		t.Error("reset should drop lazily-derived data")
	}
	if !p.Tensor().AllClose(before, 0) {
		t.Error("re-materialized values must equal the originals")
	}
	// Restored params keep their data through Reset.
	q := graph.NewParam("v", 2)
	q.SetData(tensor.FromSlice([]float32{7, 8}, 2))
	q.Reset()
	if q.Tensor().Data()[0] != 7 {
		t.Error("restored param must survive Reset")
	}
}

func TestFeedKeyAndSignatureString(t *testing.T) {
	m := graph.NewModel("fk")
	feed := m.AddNode("f", graph.NewFeed("abc123", 4))
	plain := m.AddInput("in", 4)
	if feed.FeedKey() != "abc123" || plain.FeedKey() != "" {
		t.Error("feed keys wrong")
	}
	sigs := m.ExprSignatures()
	s := sigs[feed].String()
	if len(s) != 16 {
		t.Errorf("signature string %q should be 16 hex chars", s)
	}
}

func TestSummaryRendersTotals(t *testing.T) {
	m, _, _, _ := buildChain(t)
	s := m.Summary()
	for _, want := range []string{"Model: chain", "d3 (dense)", "total params:", "trainable: 21", "frozen"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	// Partial trainability (adapter block) shows as "partial".
	am := graph.NewModel("a")
	in := am.AddInput("ids", 4, 8)
	blk := am.AddNode("blk", layers.NewTransformerBlock(layers.TransformerBlockConfig{
		Seq: 4, Dim: 8, Heads: 2, FFN: 16, Seed: 1, Adapter: 2, AdapterSeed: 2,
	}), in)
	blk.Trainable = true
	am.SetOutputs(blk)
	if !strings.Contains(am.Summary(), "partial") {
		t.Error("adapter block should render as partially trainable")
	}
}

// recordingObserver tallies backward-pass allocation events.
type recordingObserver struct {
	allocs, frees int
	live, peak    int64
}

func (r *recordingObserver) Alloc(n int64) {
	r.allocs++
	r.live += n
	if r.live > r.peak {
		r.peak = r.live
	}
}

func (r *recordingObserver) Free(n int64) {
	r.frees++
	r.live -= n
}

// TestAllocObserverBalancesGradients replays a backward pass through the
// tape's allocation observer: every gradient tensor allocated during
// backward is freed again except the accumulated parameter gradients, so
// the observer's final live bytes equal exactly the param-grad footprint.
func TestAllocObserverBalancesGradients(t *testing.T) {
	m, _, _, _ := buildChain(t)
	rng := rand.New(rand.NewSource(7))
	x := tensor.RandNormal(rng, 1, 2, 4)
	tape, err := m.Forward(map[string]*tensor.Tensor{"in": x}, false)
	if err != nil {
		t.Fatal(err)
	}
	obs := &recordingObserver{}
	tape.SetAllocObserver(obs)
	w := tensor.RandNormal(rng, 1, 2, 3)
	if err := tape.Backward(map[string]*tensor.Tensor{"d3": w}); err != nil {
		t.Fatal(err)
	}
	if obs.allocs == 0 {
		t.Fatal("observer saw no allocations")
	}
	var paramGradBytes int64
	for _, g := range tape.ParamGrads() {
		paramGradBytes += int64(g.Len()) * 4
	}
	if obs.live != paramGradBytes {
		t.Errorf("final live %d bytes, want param-grad footprint %d", obs.live, paramGradBytes)
	}
	if obs.peak < obs.live {
		t.Errorf("peak %d below final live %d", obs.peak, obs.live)
	}
	if obs.frees == 0 {
		t.Error("observer saw no frees (node gradients must be released)")
	}
}
