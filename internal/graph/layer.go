package graph

import (
	"fmt"
	"sort"

	"nautilus/internal/tensor"
)

// Layer is a pure tensor function (paper Definition 2.1). Implementations
// hold parameters but never activations: Forward returns an opaque cache
// that Backward consumes, so a single layer instance can appear in many
// models and plans simultaneously — the property multi-model merging and
// model fusion rely on.
//
// All shapes exchanged through OutShape and FLOPsPerRecord are per-record
// shapes (batch dimension excluded); tensors passed to Forward/Backward
// carry the batch as their leading dimension.
type Layer interface {
	// Type returns the registered layer type name, e.g. "dense".
	Type() string
	// Config returns the serializable hyperparameter configuration. Two
	// layers of the same type with equal configs compute the same function
	// given equal parameters.
	Config() map[string]any
	// Params returns the layer's parameters in a stable order. Layers with
	// no parameters return nil.
	Params() []*Param
	// OutShape infers the per-record output shape from per-record input
	// shapes. It panics if the inputs are not shape-compatible
	// (Definition 2.1).
	OutShape(in [][]int) []int
	// FLOPsPerRecord estimates the forward-pass floating point operations
	// for one record with the given per-record input shapes.
	FLOPsPerRecord(in [][]int) int64
	// Forward computes the layer output for a batch. train toggles
	// training-only behaviour such as dropout.
	Forward(inputs []*tensor.Tensor, train bool) (out *tensor.Tensor, cache any)
	// Backward propagates gradOut to input gradients and parameter
	// gradients (aligned with Params()). Implementations may return nil
	// entries for inputs that need no gradient, and should honour need to
	// skip avoidable work: a frozen layer on the gradient path costs 2×
	// its forward FLOPs (need.Params false), a trainable one 3×.
	Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need BackwardNeed) (gradIn []*tensor.Tensor, gradParams []*tensor.Tensor)
}

// BackwardNeed tells a layer which gradients its Backward call must
// produce.
type BackwardNeed struct {
	// Inputs requests input gradients (the layer has trainable ancestors).
	Inputs bool
	// Params requests parameter gradients (the node is trainable).
	Params bool
}

// PartialTrainer is implemented by layers whose trainable parameters are a
// strict subset of Params() — composite blocks that train only their
// adapters. Model.TrainableParams consults it.
type PartialTrainer interface {
	TrainableSubset() []*Param
}

// PartialFLOPs is implemented by partially trainable layers to report the
// forward FLOPs of just their trainable sub-layers. The cost model charges
// such a layer 2× its forward FLOPs (forward + input gradients through the
// frozen base) plus 1× the trainable share (parameter gradients), instead
// of the blanket 3× of a fully trainable layer.
type PartialFLOPs interface {
	TrainableFLOPsPerRecord(in [][]int) int64
}

// ActivationSizer optionally reports the total internal activation bytes a
// layer produces per record during the forward pass. Composite layers
// (transformer blocks, residual blocks) implement it so peak-memory
// estimation accounts for every intermediate tensor the backward pass needs
// (paper Section 4.3.3); plain layers default to their output size.
type ActivationSizer interface {
	ActivationBytesPerRecord(in [][]int) int64
}

// InputLayer marks a model input (paper notation I). Its config records the
// per-record shape fed at run time. FeedKey distinguishes ordinary dataset
// inputs ("") from materialized-intermediate feeds created by reuse plans.
type InputLayer struct {
	Shape   []int
	FeedKey string
}

// NewInput returns an input layer with the given per-record shape.
func NewInput(shape ...int) *InputLayer {
	return &InputLayer{Shape: append([]int(nil), shape...)}
}

// NewFeed returns an input layer that stands for a materialized
// intermediate output identified by key (the source expression signature).
func NewFeed(key string, shape ...int) *InputLayer {
	return &InputLayer{Shape: append([]int(nil), shape...), FeedKey: key}
}

func (l *InputLayer) Type() string { return "input" }

func (l *InputLayer) Config() map[string]any {
	cfg := map[string]any{"shape": l.Shape}
	if l.FeedKey != "" {
		cfg["feed_key"] = l.FeedKey
	}
	return cfg
}

func (l *InputLayer) Params() []*Param { return nil }

func (l *InputLayer) OutShape(in [][]int) []int {
	if len(in) != 0 {
		panic("graph: input layer takes no inputs")
	}
	return l.Shape
}

func (l *InputLayer) FLOPsPerRecord(in [][]int) int64 { return 0 }

func (l *InputLayer) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	panic("graph: input layer values must be fed, not computed")
}

func (l *InputLayer) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	return nil, nil
}

// layerFactory builds a layer of a registered type from its config, used
// when restoring model architectures from checkpoints.
type layerFactory func(cfg map[string]any) (Layer, error)

var layerRegistry = map[string]layerFactory{}

// RegisterLayerType registers a factory for deserializing layers of the
// given type. It panics on duplicate registration.
func RegisterLayerType(typ string, f layerFactory) {
	if _, dup := layerRegistry[typ]; dup {
		panic(fmt.Sprintf("graph: duplicate layer type %q", typ))
	}
	layerRegistry[typ] = f
}

// NewLayerFromConfig instantiates a layer of a registered type.
func NewLayerFromConfig(typ string, cfg map[string]any) (Layer, error) {
	f, ok := layerRegistry[typ]
	if !ok {
		return nil, fmt.Errorf("graph: unknown layer type %q", typ)
	}
	return f(cfg)
}

// RegisteredLayerTypes returns the sorted names of all registered layer
// types.
func RegisteredLayerTypes() []string {
	names := make([]string, 0, len(layerRegistry))
	for n := range layerRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterLayerType("input", func(cfg map[string]any) (Layer, error) {
		shape, err := IntSlice(cfg, "shape")
		if err != nil {
			return nil, err
		}
		key, _ := cfg["feed_key"].(string)
		return &InputLayer{Shape: shape, FeedKey: key}, nil
	})
}

// IntSlice extracts an int slice config value, tolerating the []any form
// produced by JSON round-trips.
func IntSlice(cfg map[string]any, key string) ([]int, error) {
	switch v := cfg[key].(type) {
	case []int:
		return append([]int(nil), v...), nil
	case []any:
		out := make([]int, len(v))
		for i, x := range v {
			f, ok := x.(float64)
			if !ok {
				return nil, fmt.Errorf("graph: config %q element %d is %T, want number", key, i, x)
			}
			out[i] = int(f)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("graph: config %q is %T, want int slice", key, v)
	}
}

// Int extracts an int config value, tolerating JSON float64.
func Int(cfg map[string]any, key string) (int, error) {
	switch v := cfg[key].(type) {
	case int:
		return v, nil
	case int64:
		return int(v), nil
	case float64:
		return int(v), nil
	default:
		return 0, fmt.Errorf("graph: config %q is %T, want int", key, v)
	}
}

// Float extracts a float config value, tolerating ints.
func Float(cfg map[string]any, key string) (float64, error) {
	switch v := cfg[key].(type) {
	case float64:
		return v, nil
	case int:
		return float64(v), nil
	default:
		return 0, fmt.Errorf("graph: config %q is %T, want float", key, v)
	}
}
