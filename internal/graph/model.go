package graph

import "fmt"

// Node is one vertex of a model DAG: a layer application with ordered
// parent inputs. Trainability is a property of the node, not the layer, so
// one frozen layer instance can be shared across models while another model
// fine-tunes its own trainable copy.
type Node struct {
	Name    string
	Layer   Layer
	Parents []*Node

	// Trainable marks the node's parameters for updates during training.
	// A node whose layer has no parameters is always effectively frozen
	// (Definition 2.3).
	Trainable bool
}

// Frozen reports whether the node's parameters are not updated during
// training (paper Definition 2.3): either it is explicitly non-trainable or
// it has no parameters at all.
func (n *Node) Frozen() bool { return !n.Trainable || len(n.Layer.Params()) == 0 }

// IsInput reports whether the node is a model input layer.
func (n *Node) IsInput() bool {
	_, ok := n.Layer.(*InputLayer)
	return ok
}

// FeedKey returns the materialized-feed key for reuse-plan input nodes, or
// "" for ordinary nodes and dataset inputs.
func (n *Node) FeedKey() string {
	if in, ok := n.Layer.(*InputLayer); ok {
		return in.FeedKey
	}
	return ""
}

// Model is a DAG of layers (paper Definition 2.2) with designated outputs.
// Inputs are the nodes whose layer is an InputLayer.
type Model struct {
	Name    string
	nodes   []*Node
	byName  map[string]*Node
	Outputs []*Node
}

// NewModel returns an empty model with the given name.
func NewModel(name string) *Model {
	return &Model{Name: name, byName: map[string]*Node{}}
}

// AddNode appends a node applying layer to the given parents and returns
// it. Node names must be unique within the model and parents must already
// belong to it, which structurally guarantees acyclicity.
func (m *Model) AddNode(name string, layer Layer, parents ...*Node) *Node {
	if _, dup := m.byName[name]; dup {
		panic(fmt.Sprintf("graph: duplicate node name %q in model %q", name, m.Name))
	}
	for _, p := range parents {
		if m.byName[p.Name] != p {
			panic(fmt.Sprintf("graph: parent %q of node %q is not part of model %q", p.Name, name, m.Name))
		}
	}
	if _, isInput := layer.(*InputLayer); isInput && len(parents) != 0 {
		panic(fmt.Sprintf("graph: input node %q cannot have parents", name))
	}
	n := &Node{Name: name, Layer: layer, Parents: append([]*Node(nil), parents...)}
	m.nodes = append(m.nodes, n)
	m.byName[name] = n
	return n
}

// AddInput is shorthand for adding a dataset input node with the given
// per-record shape.
func (m *Model) AddInput(name string, shape ...int) *Node {
	return m.AddNode(name, NewInput(shape...))
}

// SetOutputs designates the model's output nodes (paper notation O).
func (m *Model) SetOutputs(outs ...*Node) {
	m.Outputs = append([]*Node(nil), outs...)
}

// Node returns the node with the given name, or nil.
func (m *Model) Node(name string) *Node { return m.byName[name] }

// Nodes returns all nodes in insertion order (which is a topological order
// by construction). The returned slice must not be modified.
func (m *Model) Nodes() []*Node { return m.nodes }

// Inputs returns the model's input nodes in insertion order.
func (m *Model) Inputs() []*Node {
	var ins []*Node
	for _, n := range m.nodes {
		if n.IsInput() {
			ins = append(ins, n)
		}
	}
	return ins
}

// NumNodes returns the node count.
func (m *Model) NumNodes() int { return len(m.nodes) }

// Validate checks structural invariants: at least one output, outputs and
// parents belong to the model, and shape inference succeeds end to end. It
// returns the inferred per-record output shapes keyed by node.
func (m *Model) Validate() (map[*Node][]int, error) {
	if len(m.Outputs) == 0 {
		return nil, fmt.Errorf("graph: model %q has no outputs", m.Name)
	}
	for _, o := range m.Outputs {
		if m.byName[o.Name] != o {
			return nil, fmt.Errorf("graph: output %q is not part of model %q", o.Name, m.Name)
		}
	}
	shapes := map[*Node][]int{}
	for _, n := range m.nodes {
		in := make([][]int, len(n.Parents))
		for i, p := range n.Parents {
			s, ok := shapes[p]
			if !ok {
				return nil, fmt.Errorf("graph: node %q used before definition", p.Name)
			}
			in[i] = s
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					panic(fmt.Sprintf("graph: shape inference failed at node %q (%s): %v", n.Name, n.Layer.Type(), r))
				}
			}()
			shapes[n] = n.Layer.OutShape(in)
		}()
	}
	return shapes, nil
}

// Shapes returns per-record output shapes for every node, panicking on
// invalid models. It is the non-error variant of Validate for internal use.
func (m *Model) Shapes() map[*Node][]int {
	shapes, err := m.Validate()
	if err != nil {
		panic(err)
	}
	return shapes
}

// TrainableParams returns the parameters of all trainable nodes in a stable
// order (node insertion order, then layer parameter order). Shared layers
// contribute once.
func (m *Model) TrainableParams() []*Param {
	var out []*Param
	seen := map[*Param]bool{}
	for _, n := range m.nodes {
		if n.Frozen() {
			continue
		}
		params := n.Layer.Params()
		if pt, ok := n.Layer.(PartialTrainer); ok {
			params = pt.TrainableSubset()
		}
		for _, p := range params {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// AllParams returns every distinct parameter in the model.
func (m *Model) AllParams() []*Param {
	var out []*Param
	seen := map[*Param]bool{}
	for _, n := range m.nodes {
		for _, p := range n.Layer.Params() {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// ParamCount returns the total number of scalar parameters, and the number
// that are trainable.
func (m *Model) ParamCount() (total, trainable int64) {
	seen := map[*Param]bool{}
	for _, n := range m.nodes {
		trainSet := map[*Param]bool{}
		if !n.Frozen() {
			params := n.Layer.Params()
			if pt, ok := n.Layer.(PartialTrainer); ok {
				params = pt.TrainableSubset()
			}
			for _, p := range params {
				trainSet[p] = true
			}
		}
		for _, p := range n.Layer.Params() {
			if seen[p] {
				continue
			}
			seen[p] = true
			total += int64(p.NumElems())
			if trainSet[p] {
				trainable += int64(p.NumElems())
			}
		}
	}
	return total, trainable
}

// Ancestors returns the set of nodes reachable from n through parent edges,
// including n itself.
func Ancestors(n *Node) map[*Node]bool {
	seen := map[*Node]bool{}
	var walk func(*Node)
	walk = func(x *Node) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, p := range x.Parents {
			walk(p)
		}
	}
	walk(n)
	return seen
}

// Reachable returns the nodes of m reachable from its outputs, in
// topological (insertion) order. Plans prune by dropping unreachable nodes.
func (m *Model) Reachable() []*Node {
	keep := map[*Node]bool{}
	for _, o := range m.Outputs {
		for n := range Ancestors(o) {
			keep[n] = true
		}
	}
	var out []*Node
	for _, n := range m.nodes {
		if keep[n] {
			out = append(out, n)
		}
	}
	return out
}

// WithOutputs returns a shallow view of the model sharing its nodes but
// with different designated outputs. Forward on the view executes only the
// ancestors of the new outputs; the materializer uses this to compute
// chosen intermediate outputs without touching model heads.
func (m *Model) WithOutputs(outs ...*Node) *Model {
	v := &Model{Name: m.Name + "/view", nodes: m.nodes, byName: m.byName}
	v.SetOutputs(outs...)
	return v
}
