// Package graph implements the DL model representation used throughout
// Nautilus: a DAG of layers (paper Definition 2.2) with frozen flags
// (Definition 2.3), a forward/backward execution engine, materializable-layer
// analysis (Definition 2.4), and expression identity signatures
// (Definition 4.3) that power multi-model merging.
package graph

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"

	"nautilus/internal/tensor"
)

// Param is a (possibly lazily allocated) parameter tensor. Profiling and
// plan optimization at paper scale only need shapes and identity, so the
// backing data is materialized on first access rather than at model build
// time; the deterministic seed guarantees that two Params with equal
// (seed, shape, init kind) hold bit-identical values once materialized,
// which is what makes seed-based identity (Definition 4.3) sound.
type Param struct {
	Name  string
	Shape []int

	seed int64
	kind initKind
	std  float64 // normal std or uniform limit, per kind

	data *tensor.Tensor
	// restored marks parameters whose data was replaced via SetData
	// (checkpoint restore); their identity then derives from the actual
	// values rather than the init spec.
	restored bool

	// Custom initializers carry a spec tag that joins the fingerprint in
	// place of the builtin kind, plus the init function itself.
	tag string
	fn  InitFunc
}

// InitFunc deterministically fills a parameter of the given shape from rng.
type InitFunc func(rng *rand.Rand, shape []int) *tensor.Tensor

// NewParamCustom returns a parameter initialized by fn. specTag must
// uniquely describe fn's behaviour (it substitutes for the function in the
// identity fingerprint): two params with equal (specTag, seed, shape)
// must initialize identically.
func NewParamCustom(name, specTag string, seed int64, fn InitFunc, shape ...int) *Param {
	return &Param{Name: name, Shape: append([]int(nil), shape...), seed: seed, kind: initCustom, tag: specTag, fn: fn}
}

type initKind uint8

const (
	initZero initKind = iota
	initOne
	initNormal
	initGlorot
	initHe
	initCustom
)

// NewParam returns a zero-initialized parameter.
func NewParam(name string, shape ...int) *Param {
	return &Param{Name: name, Shape: append([]int(nil), shape...), kind: initZero}
}

// NewParamOnes returns a one-initialized parameter (layer-norm gains).
func NewParamOnes(name string, shape ...int) *Param {
	return &Param{Name: name, Shape: append([]int(nil), shape...), kind: initOne}
}

// NewParamNormal returns a parameter initialized from N(0, std²) with the
// given seed.
func NewParamNormal(name string, seed int64, std float64, shape ...int) *Param {
	return &Param{Name: name, Shape: append([]int(nil), shape...), seed: seed, kind: initNormal, std: std}
}

// NewParamGlorot returns a Glorot-uniform initialized parameter where fan-in
// and fan-out are taken from the first and last shape dimensions.
func NewParamGlorot(name string, seed int64, shape ...int) *Param {
	return &Param{Name: name, Shape: append([]int(nil), shape...), seed: seed, kind: initGlorot}
}

// NewParamHe returns a He-normal initialized parameter with fan-in taken
// from the first shape dimension product.
func NewParamHe(name string, seed int64, fanIn int, shape ...int) *Param {
	return &Param{Name: name, Shape: append([]int(nil), shape...), seed: seed, kind: initHe, std: float64(fanIn)}
}

// NumElems returns the number of scalar values in the parameter.
func (p *Param) NumElems() int { return tensor.NumElems(p.Shape) }

// Bytes returns the parameter's size in bytes (float32 storage).
func (p *Param) Bytes() int64 { return int64(p.NumElems()) * 4 }

// Materialized reports whether the backing tensor has been allocated.
func (p *Param) Materialized() bool { return p.data != nil }

// Tensor returns the backing tensor, allocating and initializing it
// deterministically on first use.
func (p *Param) Tensor() *tensor.Tensor {
	if p.data == nil {
		rng := rand.New(rand.NewSource(p.seed))
		switch p.kind {
		case initZero:
			p.data = tensor.New(p.Shape...)
		case initOne:
			p.data = tensor.New(p.Shape...)
			p.data.Fill(1)
		case initNormal:
			p.data = tensor.RandNormal(rng, p.std, p.Shape...)
		case initGlorot:
			fanIn, fanOut := p.Shape[0], p.Shape[len(p.Shape)-1]
			p.data = tensor.GlorotUniform(rng, fanIn, fanOut, p.Shape...)
		case initHe:
			p.data = tensor.HeNormal(rng, int(p.std), p.Shape...)
		case initCustom:
			p.data = p.fn(rng, p.Shape)
			if !tensor.ShapeEq(p.data.Shape(), p.Shape) {
				panic(fmt.Sprintf("graph: custom init for %q produced shape %v, want %v", p.Name, p.data.Shape(), p.Shape))
			}
		default:
			panic(fmt.Sprintf("graph: unknown init kind %d", p.kind))
		}
	}
	return p.data
}

// SetData replaces the backing tensor (checkpoint restore). The shape must
// match the declared parameter shape.
func (p *Param) SetData(t *tensor.Tensor) {
	if !tensor.ShapeEq(t.Shape(), p.Shape) {
		panic(fmt.Sprintf("graph: SetData shape %v does not match param %q shape %v", t.Shape(), p.Name, p.Shape))
	}
	p.data = t
	p.restored = true
}

// Fingerprint returns a 64-bit identity hash. It hashes the init spec
// (kind, seed, std, shape), which determines the tensor contents, so the
// fingerprint is stable whether or not the lazy tensor has been
// materialized — two frozen layers with equal specs stay identical across
// forward passes (Definition 4.3 relies on this). Only a checkpoint
// restore (SetData) switches identity to the actual values; in-place
// optimizer updates do not, which is sound because trainable layers are
// never merged.
func (p *Param) Fingerprint() uint64 {
	if p.restored {
		return p.data.Fingerprint()
	}
	h := fnv.New64a()
	var buf [8]byte
	buf[0] = byte(p.kind)
	h.Write(buf[:1])
	h.Write([]byte(p.tag))
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(buf[:], uint64(p.seed))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(p.std*1e6)))
	h.Write(buf[:])
	for _, d := range p.Shape {
		binary.LittleEndian.PutUint64(buf[:], uint64(d))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Reset discards the current values so the next Tensor() call re-runs the
// deterministic initializer. Model selection re-initializes every candidate
// at the start of each cycle this way. Restored (checkpoint-loaded) params
// keep their data.
func (p *Param) Reset() {
	if !p.restored {
		p.data = nil
	}
}

// Clone returns an independent copy of the parameter. If the source has been
// materialized the data is deep-copied; otherwise the lazy spec is copied,
// so the clone will initialize to the same values.
func (p *Param) Clone() *Param {
	c := &Param{Name: p.Name, Shape: append([]int(nil), p.Shape...), seed: p.seed, kind: p.kind, std: p.std, restored: p.restored, tag: p.tag, fn: p.fn}
	if p.data != nil {
		c.data = p.data.Clone()
	}
	return c
}
