package graph

import (
	"fmt"
	"strings"
)

// Summary renders a layer table of the model — node, type, output shape,
// parameter count, trainability — with totals, in the style DL frameworks
// print. It panics if the model does not validate.
func (m *Model) Summary() string {
	shapes := m.Shapes()
	var b strings.Builder
	fmt.Fprintf(&b, "Model: %s\n", m.Name)
	fmt.Fprintf(&b, "%-34s %-18s %-14s %12s %10s\n", "node (type)", "output shape", "parents", "params", "trainable")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 92))
	seen := map[*Param]bool{}
	seenTrainable := map[*Param]bool{}
	var total, trainable int64
	for _, n := range m.Nodes() {
		var params int64
		for _, p := range n.Layer.Params() {
			params += int64(p.NumElems())
			if seen[p] {
				continue
			}
			seen[p] = true
			total += int64(p.NumElems())
		}
		var nodeTrainable int64
		if !n.Frozen() {
			ps := n.Layer.Params()
			if pt, ok := n.Layer.(PartialTrainer); ok {
				ps = pt.TrainableSubset()
			}
			for _, p := range ps {
				nodeTrainable += int64(p.NumElems())
				if !seenTrainable[p] {
					seenTrainable[p] = true
					trainable += int64(p.NumElems())
				}
			}
		}

		parents := make([]string, len(n.Parents))
		for i, p := range n.Parents {
			parents[i] = p.Name
		}
		flag := "frozen"
		if nodeTrainable > 0 {
			flag = "yes"
			if nodeTrainable < params {
				flag = "partial"
			}
		} else if len(n.Layer.Params()) == 0 {
			flag = "-"
		}
		name := fmt.Sprintf("%s (%s)", n.Name, n.Layer.Type())
		if len(name) > 34 {
			name = name[:31] + "..."
		}
		par := strings.Join(parents, ",")
		if len(par) > 14 {
			par = par[:11] + "..."
		}
		fmt.Fprintf(&b, "%-34s %-18s %-14s %12d %10s\n", name, fmt.Sprint(shapes[n]), par, params, flag)
	}
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 92))
	fmt.Fprintf(&b, "total params: %d   trainable: %d (%.1f%%)\n",
		total, trainable, 100*float64(trainable)/float64(max64(total, 1)))
	return b.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
