// Package layers implements the neural-network layers used by the Nautilus
// substrate: dense, embedding, normalization, attention, convolution,
// pooling, merge layers, and composite blocks (transformer, residual,
// adapter). Every layer follows the pure-function contract of graph.Layer:
// parameters live in the layer, activations travel through the cache.
package layers

import (
	"fmt"
	"math"
	"sync/atomic"

	"nautilus/internal/graph"
	"nautilus/internal/tensor"
)

// Activation names accepted by layers with a fused nonlinearity.
const (
	ActNone    = "none"
	ActReLU    = "relu"
	ActGeLU    = "gelu"
	ActTanh    = "tanh"
	ActSigmoid = "sigmoid"
)

const geluC = 0.7978845608028654 // sqrt(2/pi)

// applyActivation computes act(z) elementwise into a new tensor.
func applyActivation(act string, z *tensor.Tensor) *tensor.Tensor {
	if act == ActNone {
		return z
	}
	out := tensor.NewFrom(z, z.Shape()...)
	zd, od := z.Data(), out.Data()
	work := len(zd)
	if act != ActReLU {
		work *= 8 // transcendental cost dominates
	}
	switch act {
	case ActReLU:
		tensor.Parallel(len(zd), work, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if v := zd[i]; v > 0 {
					od[i] = v
				}
			}
		})
	case ActGeLU:
		tensor.Parallel(len(zd), work, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x := float64(zd[i])
				od[i] = float32(0.5 * x * (1 + math.Tanh(geluC*(x+0.044715*x*x*x))))
			}
		})
	case ActTanh:
		tensor.Parallel(len(zd), work, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] = float32(math.Tanh(float64(zd[i])))
			}
		})
	case ActSigmoid:
		tensor.Parallel(len(zd), work, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] = float32(1 / (1 + math.Exp(-float64(zd[i]))))
			}
		})
	default:
		panic(fmt.Sprintf("layers: unknown activation %q", act))
	}
	return out
}

// activationBackward computes dL/dz = g ⊙ act'(z) given pre-activation z.
func activationBackward(act string, z, g *tensor.Tensor) *tensor.Tensor {
	if act == ActNone {
		return g
	}
	out := tensor.NewFrom2(z, g, z.Shape()...)
	zd, gd, od := z.Data(), g.Data(), out.Data()
	work := len(zd)
	if act != ActReLU {
		work *= 8
	}
	switch act {
	case ActReLU:
		tensor.Parallel(len(zd), work, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if zd[i] > 0 {
					od[i] = gd[i]
				}
			}
		})
	case ActGeLU:
		tensor.Parallel(len(zd), work, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x := float64(zd[i])
				u := geluC * (x + 0.044715*x*x*x)
				th := math.Tanh(u)
				du := geluC * (1 + 3*0.044715*x*x)
				d := 0.5*(1+th) + 0.5*x*(1-th*th)*du
				od[i] = gd[i] * float32(d)
			}
		})
	case ActTanh:
		tensor.Parallel(len(zd), work, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				th := math.Tanh(float64(zd[i]))
				od[i] = gd[i] * float32(1-th*th)
			}
		})
	case ActSigmoid:
		tensor.Parallel(len(zd), work, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				s := 1 / (1 + math.Exp(-float64(zd[i])))
				od[i] = gd[i] * float32(s*(1-s))
			}
		})
	default:
		panic(fmt.Sprintf("layers: unknown activation %q", act))
	}
	return out
}

// activationFLOPsPerElem returns the approximate FLOPs one activation
// application costs per element, used by the analytical cost model.
func activationFLOPsPerElem(act string) int64 {
	switch act {
	case ActNone:
		return 0
	case ActReLU:
		return 1
	default:
		return 8 // transcendental approximations
	}
}

// Activation is a standalone elementwise nonlinearity layer.
type Activation struct {
	Act string
}

// NewActivation returns an activation layer of the given kind.
func NewActivation(act string) *Activation { return &Activation{Act: act} }

func (l *Activation) Type() string           { return "activation" }
func (l *Activation) Config() map[string]any { return map[string]any{"act": l.Act} }
func (l *Activation) Params() []*graph.Param { return nil }
func (l *Activation) OutShape(in [][]int) []int {
	requireInputs("activation", in, 1)
	return append([]int(nil), in[0]...)
}

func (l *Activation) FLOPsPerRecord(in [][]int) int64 {
	return int64(tensor.NumElems(in[0])) * activationFLOPsPerElem(l.Act)
}

func (l *Activation) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	return applyActivation(l.Act, inputs[0]), nil
}

func (l *Activation) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	return []*tensor.Tensor{activationBackward(l.Act, inputs[0], gradOut)}, nil
}

// Dropout zeroes a fraction of activations during training and rescales the
// rest; it is the identity in evaluation mode. The mask is drawn from a
// deterministic per-forward counter so runs are reproducible.
type Dropout struct {
	Rate float64

	calls atomic.Uint64 // forward-call counter; each call keys its own mask stream
}

// NewDropout returns a dropout layer with the given drop rate in [0,1).
func NewDropout(rate float64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("layers: dropout rate %v out of [0,1)", rate))
	}
	return &Dropout{Rate: rate}
}

func (l *Dropout) Type() string           { return "dropout" }
func (l *Dropout) Config() map[string]any { return map[string]any{"rate": l.Rate} }
func (l *Dropout) Params() []*graph.Param { return nil }

func (l *Dropout) OutShape(in [][]int) []int {
	requireInputs("dropout", in, 1)
	return append([]int(nil), in[0]...)
}

func (l *Dropout) FLOPsPerRecord(in [][]int) int64 {
	return int64(tensor.NumElems(in[0]))
}

func (l *Dropout) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	x := inputs[0]
	//lint:ignore floateq Rate==0 is the exact configured no-op sentinel
	if !train || l.Rate == 0 {
		return x, nil
	}
	mask := tensor.NewFrom(x, x.Shape()...)
	out := tensor.NewFrom(x, x.Shape()...)
	keep := float32(1 - l.Rate)
	inv := 1 / keep
	// Key an independent xorshift stream off the call number (splitmix64
	// finalizer) instead of mutating layer state: Forward stays pure per
	// the Layer contract and safe under concurrent fused execution.
	s := l.calls.Add(1) * 0x9e3779b97f4a7c15
	s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9
	s = (s ^ (s >> 27)) * 0x94d049bb133111eb
	s ^= s >> 31
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	md, xd, od := mask.Data(), x.Data(), out.Data()
	for i := range xd {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		if float32(s>>40)/float32(1<<24) < keep {
			md[i] = inv
			od[i] = xd[i] * inv
		}
	}
	return out, mask
}

func (l *Dropout) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	if cache == nil {
		return []*tensor.Tensor{gradOut}, nil
	}
	mask := cache.(*tensor.Tensor)
	return []*tensor.Tensor{tensor.Mul(gradOut, mask)}, nil
}

func requireInputs(typ string, in [][]int, n int) {
	if len(in) != n {
		panic(fmt.Sprintf("layers: %s expects %d input(s), got %d", typ, n, len(in)))
	}
}
