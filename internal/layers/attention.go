package layers

import (
	"fmt"
	"math"

	"nautilus/internal/graph"
	"nautilus/internal/tensor"
)

// MultiHeadAttention is full scaled-dot-product self-attention over a
// [seq, dim] record: Q/K/V projections, per-head softmax attention, and an
// output projection, as in the transformer architecture BERT is built from.
type MultiHeadAttention struct {
	Dim, Heads int

	wq, wk, wv, wo *graph.Param
	bq, bk, bv, bo *graph.Param
}

// NewMultiHeadAttention returns a self-attention layer; dim must be
// divisible by heads.
func NewMultiHeadAttention(dim, heads int, seed int64) *MultiHeadAttention {
	if dim%heads != 0 {
		panic(fmt.Sprintf("layers: attention dim %d not divisible by heads %d", dim, heads))
	}
	return &MultiHeadAttention{
		Dim: dim, Heads: heads,
		wq: graph.NewParamGlorot("wq", seed+1, dim, dim),
		wk: graph.NewParamGlorot("wk", seed+2, dim, dim),
		wv: graph.NewParamGlorot("wv", seed+3, dim, dim),
		// The output projection writes into the residual stream; a small
		// init keeps each block a mild refinement of its input, matching
		// the near-identity residual updates of trained transformers.
		wo: graph.NewParamNormal("wo", seed+4, 0.02, dim, dim),
		bq: graph.NewParam("bq", dim),
		bk: graph.NewParam("bk", dim),
		bv: graph.NewParam("bv", dim),
		bo: graph.NewParam("bo", dim),
	}
}

func (l *MultiHeadAttention) Type() string { return "mha" }

func (l *MultiHeadAttention) Config() map[string]any {
	return map[string]any{"dim": l.Dim, "heads": l.Heads}
}

func (l *MultiHeadAttention) Params() []*graph.Param {
	return []*graph.Param{l.wq, l.bq, l.wk, l.bk, l.wv, l.bv, l.wo, l.bo}
}

func (l *MultiHeadAttention) OutShape(in [][]int) []int {
	requireInputs("mha", in, 1)
	if len(in[0]) != 2 || in[0][1] != l.Dim {
		panic(fmt.Sprintf("layers: mha(dim=%d) expects [seq,%d], got %v", l.Dim, l.Dim, in[0]))
	}
	return append([]int(nil), in[0]...)
}

func (l *MultiHeadAttention) FLOPsPerRecord(in [][]int) int64 {
	seq, dim := int64(in[0][0]), int64(l.Dim)
	proj := 4 * 2 * seq * dim * dim // Q,K,V,O projections
	attn := 2 * 2 * seq * seq * dim // scores + weighted value sum
	return proj + attn
}

// ActivationBytesPerRecord reports all intermediates the backward pass
// retains: Q, K, V, the concatenated head context, and the per-head
// attention matrices.
func (l *MultiHeadAttention) ActivationBytesPerRecord(in [][]int) int64 {
	seq := int64(in[0][0])
	dim := int64(l.Dim)
	qkvCtx := 4 * seq * dim * 4
	attn := int64(l.Heads) * seq * seq * 4
	out := seq * dim * 4
	return qkvCtx + attn + out
}

type mhaCache struct {
	q, k, v *tensor.Tensor // [batch*seq, dim]
	attn    *tensor.Tensor // [batch, heads, seq, seq] softmax weights
	ctx     *tensor.Tensor // [batch*seq, dim] concatenated head outputs
}

func (l *MultiHeadAttention) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	x := inputs[0]
	batch, seq, dim := x.Dim(0), x.Dim(1), x.Dim(2)
	heads := l.Heads
	dh := dim / heads
	scale := float32(1 / math.Sqrt(float64(dh)))

	q := tensor.AddRowVec(tensor.MatMul(x, l.wq.Tensor()), l.bq.Tensor())
	k := tensor.AddRowVec(tensor.MatMul(x, l.wk.Tensor()), l.bk.Tensor())
	v := tensor.AddRowVec(tensor.MatMul(x, l.wv.Tensor()), l.bv.Tensor())

	attn := tensor.NewFrom(x, batch, heads, seq, seq)
	ctx := tensor.NewFrom(x, batch*seq, dim)
	for b := 0; b < batch; b++ {
		for h := 0; h < heads; h++ {
			qh := headSlice(q, b, h, seq, dim, dh)
			kh := headSlice(k, b, h, seq, dim, dh)
			vh := headSlice(v, b, h, seq, dim, dh)
			scores := tensor.ScaleInPlace(tensor.MatMulBT(qh, kh), scale)
			a := tensor.SoftmaxRows(scores)
			copy(attn.Data()[((b*heads)+h)*seq*seq:], a.Data())
			oh := tensor.MatMul(a, vh)
			writeHeadSlice(ctx, oh, b, h, seq, dim, dh)
		}
	}
	out := tensor.AddRowVec(tensor.MatMul(ctx, l.wo.Tensor()), l.bo.Tensor())
	return out.Reshape(batch, seq, dim), mhaCache{q: q, k: k, v: v, attn: attn, ctx: ctx}
}

func (l *MultiHeadAttention) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	c := cache.(mhaCache)
	x := inputs[0]
	batch, seq, dim := x.Dim(0), x.Dim(1), x.Dim(2)
	heads := l.Heads
	dh := dim / heads
	scale := float32(1 / math.Sqrt(float64(dh)))

	g := gradOut.Reshape(batch*seq, dim)
	var dwo, dbo *tensor.Tensor
	if need.Params {
		dwo = tensor.MatMulAT(c.ctx, g)
		dbo = tensor.SumRows(g)
	}
	dctx := tensor.MatMulBT(g, l.wo.Tensor())

	dq := tensor.NewFrom(gradOut, batch*seq, dim)
	dk := tensor.NewFrom(gradOut, batch*seq, dim)
	dv := tensor.NewFrom(gradOut, batch*seq, dim)
	for b := 0; b < batch; b++ {
		for h := 0; h < heads; h++ {
			a := tensor.FromSlice(c.attn.Data()[((b*heads)+h)*seq*seq:((b*heads)+h+1)*seq*seq], seq, seq)
			vh := headSlice(c.v, b, h, seq, dim, dh)
			qh := headSlice(c.q, b, h, seq, dim, dh)
			kh := headSlice(c.k, b, h, seq, dim, dh)
			doh := headSlice(dctx, b, h, seq, dim, dh)

			dvh := tensor.MatMulAT(a, doh)
			da := tensor.MatMulBT(doh, vh)
			ds := tensor.ScaleInPlace(tensor.SoftmaxRowsBackward(a, da), scale)
			dqh := tensor.MatMul(ds, kh)
			dkh := tensor.MatMulAT(ds, qh)

			writeHeadSlice(dq, dqh, b, h, seq, dim, dh)
			writeHeadSlice(dk, dkh, b, h, seq, dim, dh)
			writeHeadSlice(dv, dvh, b, h, seq, dim, dh)
		}
	}

	var dwq, dwk, dwv, dbq, dbk, dbv *tensor.Tensor
	if need.Params {
		xf := x.Reshape(batch*seq, dim)
		dwq = tensor.MatMulAT(xf, dq)
		dwk = tensor.MatMulAT(xf, dk)
		dwv = tensor.MatMulAT(xf, dv)
		dbq = tensor.SumRows(dq)
		dbk = tensor.SumRows(dk)
		dbv = tensor.SumRows(dv)
	}

	var dxOut *tensor.Tensor
	if need.Inputs {
		dx := tensor.MatMulBT(dq, l.wq.Tensor())
		tensor.AddInPlace(dx, tensor.MatMulBT(dk, l.wk.Tensor()))
		tensor.AddInPlace(dx, tensor.MatMulBT(dv, l.wv.Tensor()))
		dxOut = dx.Reshape(batch, seq, dim)
	}

	return []*tensor.Tensor{dxOut},
		[]*tensor.Tensor{dwq, dbq, dwk, dbk, dwv, dbv, dwo, dbo}
}

// headSlice copies head h of batch element b out of a [batch*seq, dim]
// matrix into a contiguous [seq, dh] matrix.
func headSlice(m *tensor.Tensor, b, h, seq, dim, dh int) *tensor.Tensor {
	out := tensor.NewFrom(m, seq, dh)
	for s := 0; s < seq; s++ {
		src := m.Row(b*seq + s)[h*dh : (h+1)*dh]
		copy(out.Row(s), src)
	}
	return out
}

// writeHeadSlice scatters a [seq, dh] head matrix back into the head-h
// columns of batch element b of a [batch*seq, dim] matrix.
func writeHeadSlice(dst, src *tensor.Tensor, b, h, seq, dim, dh int) {
	for s := 0; s < seq; s++ {
		copy(dst.Row(b*seq + s)[h*dh:(h+1)*dh], src.Row(s))
	}
}
