package layers

import (
	"fmt"

	"nautilus/internal/graph"
	"nautilus/internal/tensor"
)

// Composite is a layer backed by an inner model. The paper treats
// transformer and residual blocks as composite layers (Section 4.1): a
// single node in the optimizer's multi-model graph whose memory footprint
// sums every internal activation the backward pass retains (Section 4.3.3).
//
// A composite may be partially trainable (adapter blocks train only their
// adapters); the trainable subset is whatever its inner nodes mark
// trainable.
type Composite struct {
	typ   string
	cfg   map[string]any
	inner *graph.Model

	inputNames []string
	params     []*graph.Param
	trainable  []*graph.Param
}

func newComposite(typ string, cfg map[string]any, inner *graph.Model) *Composite {
	c := &Composite{typ: typ, cfg: cfg, inner: inner}
	for _, in := range inner.Inputs() {
		c.inputNames = append(c.inputNames, in.Name)
	}
	seen := map[*graph.Param]bool{}
	for _, n := range inner.Nodes() {
		for _, p := range n.Layer.Params() {
			if seen[p] {
				continue
			}
			seen[p] = true
			// Qualify the param name by its inner node for checkpointing.
			p.Name = n.Name + "." + p.Name
			c.params = append(c.params, p)
		}
	}
	c.trainable = inner.TrainableParams()
	if _, err := inner.Validate(); err != nil {
		panic(fmt.Sprintf("layers: composite %q inner model invalid: %v", typ, err))
	}
	return c
}

func (c *Composite) Type() string           { return c.typ }
func (c *Composite) Config() map[string]any { return c.cfg }
func (c *Composite) Params() []*graph.Param { return c.params }

// TrainableSubset implements graph.PartialTrainer: only the inner trainable
// parameters (e.g. adapters) receive optimizer updates.
func (c *Composite) TrainableSubset() []*graph.Param { return c.trainable }

// Inner exposes the wrapped model for tests and documentation tooling.
func (c *Composite) Inner() *graph.Model { return c.inner }

func (c *Composite) OutShape(in [][]int) []int {
	inputs := c.inner.Inputs()
	requireInputs(c.typ, in, len(inputs))
	for i, n := range inputs {
		want := n.Layer.(*graph.InputLayer).Shape
		if !tensor.ShapeEq(in[i], want) {
			panic(fmt.Sprintf("layers: composite %q input %d is %v, want %v", c.typ, i, in[i], want))
		}
	}
	shapes := c.inner.Shapes()
	return append([]int(nil), shapes[c.inner.Outputs[0]]...)
}

func (c *Composite) FLOPsPerRecord(in [][]int) int64 {
	shapes := c.inner.Shapes()
	var total int64
	for _, n := range c.inner.Nodes() {
		if n.IsInput() {
			continue
		}
		ins := make([][]int, len(n.Parents))
		for i, p := range n.Parents {
			ins[i] = shapes[p]
		}
		total += n.Layer.FLOPsPerRecord(ins)
	}
	return total
}

// TrainableFLOPsPerRecord implements graph.PartialFLOPs: the forward FLOPs
// of just the inner trainable nodes (e.g. the adapters).
func (c *Composite) TrainableFLOPsPerRecord(in [][]int) int64 {
	shapes := c.inner.Shapes()
	var total int64
	for _, n := range c.inner.Nodes() {
		if n.IsInput() || n.Frozen() {
			continue
		}
		ins := make([][]int, len(n.Parents))
		for i, p := range n.Parents {
			ins[i] = shapes[p]
		}
		total += n.Layer.FLOPsPerRecord(ins)
	}
	return total
}

// ActivationBytesPerRecord sums the activation bytes of every inner node,
// accounting for all intermediate tensors the backward pass needs.
func (c *Composite) ActivationBytesPerRecord(in [][]int) int64 {
	shapes := c.inner.Shapes()
	var total int64
	for _, n := range c.inner.Nodes() {
		if n.IsInput() {
			continue
		}
		ins := make([][]int, len(n.Parents))
		for i, p := range n.Parents {
			ins[i] = shapes[p]
		}
		total += graph.ActivationBytesPerRecord(n, ins)
	}
	return total
}

func (c *Composite) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	feeds := make(map[string]*tensor.Tensor, len(inputs))
	for i, name := range c.inputNames {
		feeds[name] = inputs[i]
	}
	tape, err := c.inner.Forward(feeds, train)
	if err != nil {
		panic(fmt.Sprintf("layers: composite %q forward: %v", c.typ, err))
	}
	return tape.Output(c.inner.Outputs[0]), tape
}

func (c *Composite) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	tape := cache.(*graph.Tape)
	err := tape.BackwardOpts(
		map[string]*tensor.Tensor{c.inner.Outputs[0].Name: gradOut},
		graph.BackwardOptions{InputGrads: need.Inputs, SkipParamGrads: !need.Params},
	)
	if err != nil {
		panic(fmt.Sprintf("layers: composite %q backward: %v", c.typ, err))
	}
	gradIn := make([]*tensor.Tensor, len(c.inputNames))
	if need.Inputs {
		for i, name := range c.inputNames {
			gradIn[i] = tape.InputGrad(name)
		}
	}
	pg := tape.ParamGrads()
	gradParams := make([]*tensor.Tensor, len(c.params))
	for i, p := range c.params {
		gradParams[i] = pg[p] // nil for frozen inner params
	}
	return gradIn, gradParams
}

// TransformerBlockConfig parameterizes NewTransformerBlock.
type TransformerBlockConfig struct {
	Seq, Dim, Heads, FFN int
	Seed                 int64
	// Adapter > 0 inserts Houlsby bottleneck adapters of that width after
	// the attention and feed-forward sub-layers; only the adapters are
	// trainable inside the block.
	Adapter int
	// AdapterSeed seeds adapter initialization independently of the
	// pre-trained block weights.
	AdapterSeed int64
}

// NewTransformerBlock builds a post-LN BERT-style encoder block over
// [seq, dim] records:
//
//	h = LN(x + [adapter](MHA(x)))
//	y = LN(h + [adapter](FFN(h)))
//
// Pre-trained weights derive deterministically from cfg.Seed. With
// cfg.Adapter > 0 the block follows the Houlsby adapter-training scheme:
// the base weights stay frozen inside the block and only the adapters
// train.
func NewTransformerBlock(cfg TransformerBlockConfig) *Composite {
	inner := graph.NewModel("transformer_block")
	x := inner.AddInput("x", cfg.Seq, cfg.Dim)

	mha := inner.AddNode("mha", NewMultiHeadAttention(cfg.Dim, cfg.Heads, cfg.Seed), x)
	attnOut := mha
	if cfg.Adapter > 0 {
		attnOut = inner.AddNode("adapter1", NewAdapter(cfg.Dim, cfg.Adapter, cfg.AdapterSeed), mha)
	}
	res1 := inner.AddNode("res1", NewAdd(2), x, attnOut)
	ln1 := inner.AddNode("ln1", NewLayerNorm(cfg.Dim), res1)

	ffn1 := inner.AddNode("ffn1", NewDense(cfg.Dim, cfg.FFN, ActGeLU, cfg.Seed+101), ln1)
	// Small-init residual write, as for the attention output projection.
	ffn2 := inner.AddNode("ffn2", NewDenseNormalInit(cfg.FFN, cfg.Dim, ActNone, cfg.Seed+102, 0.02), ffn1)
	ffnOut := ffn2
	if cfg.Adapter > 0 {
		ffnOut = inner.AddNode("adapter2", NewAdapter(cfg.Dim, cfg.Adapter, cfg.AdapterSeed+1), ffn2)
	}
	res2 := inner.AddNode("res2", NewAdd(2), ln1, ffnOut)
	ln2 := inner.AddNode("ln2", NewLayerNorm(cfg.Dim), res2)
	inner.SetOutputs(ln2)

	// With adapters, only the adapter nodes train; without, the whole
	// block's trainability is governed by the outer node flag.
	for _, n := range inner.Nodes() {
		if cfg.Adapter > 0 {
			n.Trainable = n.Name == "adapter1" || n.Name == "adapter2"
		} else {
			n.Trainable = true
		}
	}

	typ := "transformer_block"
	c := map[string]any{
		"seq": cfg.Seq, "dim": cfg.Dim, "heads": cfg.Heads, "ffn": cfg.FFN,
		"seed": cfg.Seed, "adapter": cfg.Adapter, "adapter_seed": cfg.AdapterSeed,
	}
	return newComposite(typ, c, inner)
}

// ResidualBlockConfig parameterizes NewResidualBlock.
type ResidualBlockConfig struct {
	InH, InW        int
	InC, MidC, OutC int
	Stride          int
	Seed            int64
}

// NewResidualBlock builds a ResNet bottleneck block over [H, W, InC]
// records: 1×1 reduce → 3×3 → 1×1 expand, each followed by a per-channel
// affine (frozen-statistics batch-norm equivalent), with a projection
// shortcut when the stride or channel count changes.
func NewResidualBlock(cfg ResidualBlockConfig) *Composite {
	inner := graph.NewModel("residual_block")
	x := inner.AddInput("x", cfg.InH, cfg.InW, cfg.InC)

	c1 := inner.AddNode("conv1", NewConv2D(cfg.InC, cfg.MidC, 1, 1, 0, ActNone, cfg.Seed+1), x)
	b1 := inner.AddNode("bn1", NewChannelAffine(cfg.MidC, cfg.Seed+2), c1)
	r1 := inner.AddNode("relu1", NewActivation(ActReLU), b1)

	c2 := inner.AddNode("conv2", NewConv2D(cfg.MidC, cfg.MidC, 3, cfg.Stride, 1, ActNone, cfg.Seed+3), r1)
	b2 := inner.AddNode("bn2", NewChannelAffine(cfg.MidC, cfg.Seed+4), c2)
	r2 := inner.AddNode("relu2", NewActivation(ActReLU), b2)

	c3 := inner.AddNode("conv3", NewConv2D(cfg.MidC, cfg.OutC, 1, 1, 0, ActNone, cfg.Seed+5), r2)
	b3 := inner.AddNode("bn3", NewChannelAffine(cfg.OutC, cfg.Seed+6), c3)

	shortcut := x
	if cfg.Stride != 1 || cfg.InC != cfg.OutC {
		sc := inner.AddNode("conv_sc", NewConv2D(cfg.InC, cfg.OutC, 1, cfg.Stride, 0, ActNone, cfg.Seed+7), x)
		shortcut = inner.AddNode("bn_sc", NewChannelAffine(cfg.OutC, cfg.Seed+8), sc)
	}
	sum := inner.AddNode("res", NewAdd(2), b3, shortcut)
	out := inner.AddNode("relu_out", NewActivation(ActReLU), sum)
	inner.SetOutputs(out)

	for _, n := range inner.Nodes() {
		n.Trainable = true
	}

	c := map[string]any{
		"in_h": cfg.InH, "in_w": cfg.InW, "in_c": cfg.InC, "mid_c": cfg.MidC,
		"out_c": cfg.OutC, "stride": cfg.Stride, "seed": cfg.Seed,
	}
	return newComposite("residual_block", c, inner)
}

// Adapter is a Houlsby bottleneck adapter: y = x + GeLU(x·Wd + bd)·Wu + bu,
// the parameter-efficient unit inserted into frozen transformer blocks
// during adapter training (paper Section 2.4).
type Adapter struct {
	Dim, Bottleneck int

	wd, bd, wu, bu *graph.Param
}

// NewAdapter returns an adapter whose up-projection initializes near zero,
// so an untrained adapter is close to the identity.
func NewAdapter(dim, bottleneck int, seed int64) *Adapter {
	return &Adapter{
		Dim: dim, Bottleneck: bottleneck,
		wd: graph.NewParamGlorot("wd", seed+1, dim, bottleneck),
		bd: graph.NewParam("bd", bottleneck),
		wu: graph.NewParamNormal("wu", seed+2, 1e-3, bottleneck, dim),
		bu: graph.NewParam("bu", dim),
	}
}

func (l *Adapter) Type() string { return "adapter" }

func (l *Adapter) Config() map[string]any {
	return map[string]any{"dim": l.Dim, "bottleneck": l.Bottleneck}
}

func (l *Adapter) Params() []*graph.Param {
	return []*graph.Param{l.wd, l.bd, l.wu, l.bu}
}

func (l *Adapter) OutShape(in [][]int) []int {
	requireInputs("adapter", in, 1)
	if in[0][len(in[0])-1] != l.Dim {
		panic(fmt.Sprintf("layers: adapter(dim=%d) got %v", l.Dim, in[0]))
	}
	return append([]int(nil), in[0]...)
}

func (l *Adapter) FLOPsPerRecord(in [][]int) int64 {
	rows := int64(tensor.NumElems(in[0])) / int64(l.Dim)
	down := 2 * rows * int64(l.Dim) * int64(l.Bottleneck)
	up := 2 * rows * int64(l.Bottleneck) * int64(l.Dim)
	act := rows * int64(l.Bottleneck) * activationFLOPsPerElem(ActGeLU)
	return down + up + act + rows*int64(l.Dim)
}

// ActivationBytesPerRecord includes the bottleneck intermediates retained
// for backward.
func (l *Adapter) ActivationBytesPerRecord(in [][]int) int64 {
	rows := int64(tensor.NumElems(in[0])) / int64(l.Dim)
	return (2*rows*int64(l.Bottleneck) + rows*int64(l.Dim)) * 4
}

type adapterCache struct {
	z *tensor.Tensor // pre-activation bottleneck
	h *tensor.Tensor // post-activation bottleneck
}

func (l *Adapter) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	x := inputs[0]
	z := tensor.AddRowVec(tensor.MatMul(x, l.wd.Tensor()), l.bd.Tensor())
	h := applyActivation(ActGeLU, z)
	up := tensor.AddRowVec(tensor.MatMul(h, l.wu.Tensor()), l.bu.Tensor())
	out := tensor.Add(x.Reshape(up.Shape()...), up).Reshape(x.Shape()...)
	return out, adapterCache{z: z, h: h}
}

func (l *Adapter) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	c := cache.(adapterCache)
	x := inputs[0]
	g := gradOut.Reshape(-1, l.Dim)
	var dwu, dbu, dwd, dbd *tensor.Tensor
	dh := tensor.MatMulBT(g, l.wu.Tensor())
	dz := activationBackward(ActGeLU, c.z, dh)
	if need.Params {
		dwu = tensor.MatMulAT(c.h, g)
		dbu = tensor.SumRows(g)
		dwd = tensor.MatMulAT(x, dz)
		dbd = tensor.SumRows(dz)
	}
	var dx *tensor.Tensor
	if need.Inputs {
		dx = tensor.MatMulBT(dz, l.wd.Tensor())
		tensor.AddInPlace(dx, g)
		dx = dx.Reshape(x.Shape()...)
	}
	return []*tensor.Tensor{dx}, []*tensor.Tensor{dwd, dbd, dwu, dbu}
}
