package layers

import (
	"fmt"

	"nautilus/internal/graph"
	"nautilus/internal/tensor"
)

// Conv2D is a 2-D convolution over NHWC tensors with an optional fused
// activation, implemented as im2col + matmul.
type Conv2D struct {
	InC, OutC        int
	KH, KW           int
	StrideH, StrideW int
	PadH, PadW       int
	Act              string

	w *graph.Param // [KH*KW*InC, OutC]
	b *graph.Param // [OutC]
}

// NewConv2D returns a square-kernel convolution with "same"-style symmetric
// padding pad and stride.
func NewConv2D(inC, outC, k, stride, pad int, act string, seed int64) *Conv2D {
	return &Conv2D{
		InC: inC, OutC: outC, KH: k, KW: k,
		StrideH: stride, StrideW: stride, PadH: pad, PadW: pad, Act: act,
		w: graph.NewParamHe("w", seed, k*k*inC, k*k*inC, outC),
		b: graph.NewParam("b", outC),
	}
}

func (l *Conv2D) Type() string { return "conv2d" }

func (l *Conv2D) Config() map[string]any {
	return map[string]any{
		"in_c": l.InC, "out_c": l.OutC, "kh": l.KH, "kw": l.KW,
		"stride_h": l.StrideH, "stride_w": l.StrideW, "pad_h": l.PadH, "pad_w": l.PadW,
		"act": l.Act,
	}
}

func (l *Conv2D) Params() []*graph.Param { return []*graph.Param{l.w, l.b} }

func (l *Conv2D) geom(in []int) tensor.ConvGeom {
	return tensor.ConvGeom{
		InH: in[0], InW: in[1], InC: in[2],
		KH: l.KH, KW: l.KW,
		StrideH: l.StrideH, StrideW: l.StrideW,
		PadH: l.PadH, PadW: l.PadW,
	}
}

func (l *Conv2D) OutShape(in [][]int) []int {
	requireInputs("conv2d", in, 1)
	s := in[0]
	if len(s) != 3 || s[2] != l.InC {
		panic(fmt.Sprintf("layers: conv2d(in_c=%d) expects [H,W,%d], got %v", l.InC, l.InC, s))
	}
	g := l.geom(s)
	return []int{g.OutH(), g.OutW(), l.OutC}
}

func (l *Conv2D) FLOPsPerRecord(in [][]int) int64 {
	g := l.geom(in[0])
	positions := int64(g.OutH()) * int64(g.OutW())
	per := 2 * int64(l.KH) * int64(l.KW) * int64(l.InC) * int64(l.OutC)
	act := positions * int64(l.OutC) * activationFLOPsPerElem(l.Act)
	return positions*per + act
}

type convCache struct {
	cols *tensor.Tensor
	z    *tensor.Tensor // pre-activation, nil when Act == none
	geom tensor.ConvGeom
}

func (l *Conv2D) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	x := inputs[0]
	s := x.Shape()
	g := l.geom(s[1:])
	cols := tensor.Im2Col(x, g)
	z := tensor.AddRowVec(tensor.MatMul(cols, l.w.Tensor()), l.b.Tensor())
	z = z.Reshape(s[0], g.OutH(), g.OutW(), l.OutC)
	c := convCache{cols: cols, geom: g}
	if l.Act == ActNone {
		return z, c
	}
	c.z = z
	return applyActivation(l.Act, z), c
}

func (l *Conv2D) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	c := cache.(convCache)
	x := inputs[0]
	batch := x.Dim(0)
	dz := gradOut
	if c.z != nil {
		dz = activationBackward(l.Act, c.z, gradOut)
	}
	dz2 := dz.Reshape(-1, l.OutC)
	var dw, db, dx *tensor.Tensor
	if need.Params {
		dw = tensor.MatMulAT(c.cols, dz2)
		db = tensor.SumRows(dz2)
	}
	if need.Inputs {
		dcols := tensor.MatMulBT(dz2, l.w.Tensor())
		dx = tensor.Col2Im(dcols, batch, c.geom)
	}
	return []*tensor.Tensor{dx}, []*tensor.Tensor{dw, db}
}

// MaxPool2D is max pooling over NHWC tensors.
type MaxPool2D struct {
	K, Stride, Pad int
}

// NewMaxPool2D returns a square max-pooling layer.
func NewMaxPool2D(k, stride, pad int) *MaxPool2D {
	return &MaxPool2D{K: k, Stride: stride, Pad: pad}
}

func (l *MaxPool2D) Type() string { return "max_pool2d" }

func (l *MaxPool2D) Config() map[string]any {
	return map[string]any{"k": l.K, "stride": l.Stride, "pad": l.Pad}
}

func (l *MaxPool2D) Params() []*graph.Param { return nil }

func (l *MaxPool2D) geom(in []int) tensor.ConvGeom {
	return tensor.ConvGeom{
		InH: in[0], InW: in[1], InC: in[2],
		KH: l.K, KW: l.K, StrideH: l.Stride, StrideW: l.Stride,
		PadH: l.Pad, PadW: l.Pad,
	}
}

func (l *MaxPool2D) OutShape(in [][]int) []int {
	requireInputs("max_pool2d", in, 1)
	g := l.geom(in[0])
	return []int{g.OutH(), g.OutW(), in[0][2]}
}

func (l *MaxPool2D) FLOPsPerRecord(in [][]int) int64 {
	g := l.geom(in[0])
	return int64(g.OutH()) * int64(g.OutW()) * int64(in[0][2]) * int64(l.K*l.K)
}

type poolCache struct {
	arg     []int32
	inShape []int
}

func (l *MaxPool2D) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	x := inputs[0]
	g := l.geom(x.Shape()[1:])
	out, arg := tensor.MaxPool2D(x, g)
	return out, poolCache{arg: arg, inShape: x.Shape()}
}

func (l *MaxPool2D) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	c := cache.(poolCache)
	return []*tensor.Tensor{tensor.MaxPool2DBackward(gradOut, c.arg, c.inShape)}, nil
}

// GlobalAvgPool2D averages an NHWC record over its spatial dimensions,
// producing a channel vector.
type GlobalAvgPool2D struct{}

// NewGlobalAvgPool2D returns a global average pooling layer.
func NewGlobalAvgPool2D() *GlobalAvgPool2D { return &GlobalAvgPool2D{} }

func (l *GlobalAvgPool2D) Type() string           { return "global_avg_pool2d" }
func (l *GlobalAvgPool2D) Config() map[string]any { return map[string]any{} }
func (l *GlobalAvgPool2D) Params() []*graph.Param { return nil }

func (l *GlobalAvgPool2D) OutShape(in [][]int) []int {
	requireInputs("global_avg_pool2d", in, 1)
	if len(in[0]) != 3 {
		panic(fmt.Sprintf("layers: global_avg_pool2d expects [H,W,C], got %v", in[0]))
	}
	return []int{in[0][2]}
}

func (l *GlobalAvgPool2D) FLOPsPerRecord(in [][]int) int64 {
	return int64(tensor.NumElems(in[0]))
}

func (l *GlobalAvgPool2D) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	return tensor.GlobalAvgPool(inputs[0]), nil
}

func (l *GlobalAvgPool2D) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	return []*tensor.Tensor{tensor.GlobalAvgPoolBackward(gradOut, inputs[0].Shape())}, nil
}
