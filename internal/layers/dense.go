package layers

import (
	"fmt"
	"math/rand"

	"nautilus/internal/graph"
	"nautilus/internal/tensor"
)

// Dense is a fully connected layer over the last input dimension with an
// optional fused activation: y = act(x·W + b).
type Dense struct {
	In, Out int
	Act     string

	w, b *graph.Param
}

// NewDense returns a Dense layer with Glorot-initialized weights derived
// from seed.
func NewDense(in, out int, act string, seed int64) *Dense {
	return &Dense{
		In: in, Out: out, Act: act,
		w: graph.NewParamGlorot("w", seed, in, out),
		b: graph.NewParam("b", out),
	}
}

// NewDenseNormalInit returns a Dense layer whose weights initialize from
// N(0, std²) instead of Glorot; residual-stream write projections use it
// with a small std.
func NewDenseNormalInit(in, out int, act string, seed int64, std float64) *Dense {
	return &Dense{
		In: in, Out: out, Act: act,
		w: graph.NewParamNormal("w", seed, std, in, out),
		b: graph.NewParam("b", out),
	}
}

func (l *Dense) Type() string { return "dense" }

func (l *Dense) Config() map[string]any {
	return map[string]any{"in": l.In, "out": l.Out, "act": l.Act}
}

func (l *Dense) Params() []*graph.Param { return []*graph.Param{l.w, l.b} }

func (l *Dense) OutShape(in [][]int) []int {
	requireInputs("dense", in, 1)
	s := in[0]
	if len(s) == 0 || s[len(s)-1] != l.In {
		panic(fmt.Sprintf("layers: dense(in=%d) got input shape %v", l.In, s))
	}
	out := append([]int(nil), s...)
	out[len(out)-1] = l.Out
	return out
}

func (l *Dense) FLOPsPerRecord(in [][]int) int64 {
	rows := int64(tensor.NumElems(in[0])) / int64(l.In)
	matmul := 2 * rows * int64(l.In) * int64(l.Out)
	bias := rows * int64(l.Out)
	act := rows * int64(l.Out) * activationFLOPsPerElem(l.Act)
	return matmul + bias + act
}

type denseCache struct {
	z *tensor.Tensor // pre-activation, nil when Act == none
}

func (l *Dense) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	x := inputs[0]
	z := tensor.AddRowVec(tensor.MatMul(x, l.w.Tensor()), l.b.Tensor())
	z = z.Reshape(denseOutShape(x.Shape(), l.Out)...)
	if l.Act == ActNone {
		return z, denseCache{}
	}
	return applyActivation(l.Act, z), denseCache{z: z}
}

func (l *Dense) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	x := inputs[0]
	dz := gradOut
	if c, ok := cache.(denseCache); ok && c.z != nil {
		dz = activationBackward(l.Act, c.z, gradOut)
	}
	var dw, db, dx *tensor.Tensor
	if need.Params {
		dw = tensor.MatMulAT(x, dz)
		db = tensor.SumRows(dz)
	}
	if need.Inputs {
		dx = tensor.MatMulBT(dz, l.w.Tensor()).Reshape(x.Shape()...)
	}
	return []*tensor.Tensor{dx}, []*tensor.Tensor{dw, db}
}

func denseOutShape(in []int, out int) []int {
	s := append([]int(nil), in...)
	s[len(s)-1] = out
	return s
}

// Embedding maps integer token ids (stored as float32) of per-record shape
// [seq] to vectors, producing [seq, dim].
type Embedding struct {
	Vocab, Dim int

	table *graph.Param
}

// NewEmbedding returns an embedding layer initialized from N(0, 0.02²), the
// BERT convention.
func NewEmbedding(vocab, dim int, seed int64) *Embedding {
	return &Embedding{Vocab: vocab, Dim: dim, table: graph.NewParamNormal("table", seed, 0.02, vocab, dim)}
}

// NewClusteredEmbedding returns an embedding whose "pre-trained" table
// plants semantic cluster structure: tokens in the same contiguous cluster
// of the vocabulary share a center vector plus small per-token noise. This
// simulates what real pre-training produces — embeddings in which
// semantically related tokens are close — which is the property transfer
// learning exploits (see DESIGN.md substitutions).
func NewClusteredEmbedding(vocab, dim, clusters int, seed int64) *Embedding {
	if clusters < 1 {
		clusters = 1
	}
	tag := fmt.Sprintf("clustered_embedding/%d", clusters)
	fn := func(rng *rand.Rand, shape []int) *tensor.Tensor {
		v, d := shape[0], shape[1]
		csize := (v + clusters - 1) / clusters
		centers := tensor.RandNormal(rng, 0.08, clusters, d)
		table := tensor.RandNormal(rng, 0.02, v, d)
		for t := 0; t < v; t++ {
			row := table.Row(t)
			c := centers.Row(t / csize)
			for j := range row {
				row[j] += c[j]
			}
		}
		return table
	}
	return &Embedding{Vocab: vocab, Dim: dim, table: graph.NewParamCustom("table", tag, seed, fn, vocab, dim)}
}

func (l *Embedding) Type() string { return "embedding" }

func (l *Embedding) Config() map[string]any {
	return map[string]any{"vocab": l.Vocab, "dim": l.Dim}
}

func (l *Embedding) Params() []*graph.Param { return []*graph.Param{l.table} }

func (l *Embedding) OutShape(in [][]int) []int {
	requireInputs("embedding", in, 1)
	if len(in[0]) != 1 {
		panic(fmt.Sprintf("layers: embedding expects [seq] input, got %v", in[0]))
	}
	return []int{in[0][0], l.Dim}
}

func (l *Embedding) FLOPsPerRecord(in [][]int) int64 {
	// A lookup copies dim floats per token; count it as one op per float.
	return int64(in[0][0]) * int64(l.Dim)
}

func (l *Embedding) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	ids := inputs[0]
	batch, seq := ids.Dim(0), ids.Dim(1)
	tab := l.table.Tensor()
	out := tensor.NewFrom(ids, batch, seq, l.Dim)
	for r := 0; r < batch*seq; r++ {
		id := int(ids.Data()[r])
		if id < 0 || id >= l.Vocab {
			panic(fmt.Sprintf("layers: token id %d out of vocab %d", id, l.Vocab))
		}
		copy(out.Row(r), tab.Row(id))
	}
	return out, nil
}

func (l *Embedding) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	ids := inputs[0]
	dtab := tensor.NewFrom(gradOut, l.Vocab, l.Dim)
	for r := 0; r < ids.Len(); r++ {
		id := int(ids.Data()[r])
		dst := dtab.Row(id)
		src := gradOut.Row(r)
		for j := range dst {
			dst[j] += src[j]
		}
	}
	// Token ids carry no gradient.
	return []*tensor.Tensor{nil}, []*tensor.Tensor{dtab}
}

// PositionalEmbedding adds a learned per-position vector to a [seq, dim]
// activation.
type PositionalEmbedding struct {
	Seq, Dim int

	table *graph.Param
}

// NewPositionalEmbedding returns a positional embedding for sequences of
// exactly seq positions.
func NewPositionalEmbedding(seq, dim int, seed int64) *PositionalEmbedding {
	return &PositionalEmbedding{Seq: seq, Dim: dim, table: graph.NewParamNormal("pos", seed, 0.02, seq, dim)}
}

func (l *PositionalEmbedding) Type() string { return "pos_embedding" }

func (l *PositionalEmbedding) Config() map[string]any {
	return map[string]any{"seq": l.Seq, "dim": l.Dim}
}

func (l *PositionalEmbedding) Params() []*graph.Param { return []*graph.Param{l.table} }

func (l *PositionalEmbedding) OutShape(in [][]int) []int {
	requireInputs("pos_embedding", in, 1)
	if len(in[0]) != 2 || in[0][0] != l.Seq || in[0][1] != l.Dim {
		panic(fmt.Sprintf("layers: pos_embedding(seq=%d,dim=%d) got %v", l.Seq, l.Dim, in[0]))
	}
	return append([]int(nil), in[0]...)
}

func (l *PositionalEmbedding) FLOPsPerRecord(in [][]int) int64 {
	return int64(l.Seq) * int64(l.Dim)
}

func (l *PositionalEmbedding) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	x := inputs[0]
	batch := x.Dim(0)
	tab := l.table.Tensor()
	out := tensor.NewFrom(x, x.Shape()...)
	for b := 0; b < batch; b++ {
		for s := 0; s < l.Seq; s++ {
			xr := x.Row(b*l.Seq + s)
			tr := tab.Row(s)
			or := out.Row(b*l.Seq + s)
			for j := range or {
				or[j] = xr[j] + tr[j]
			}
		}
	}
	return out, nil
}

func (l *PositionalEmbedding) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	batch := gradOut.Dim(0)
	dtab := tensor.NewFrom(gradOut, l.Seq, l.Dim)
	for b := 0; b < batch; b++ {
		for s := 0; s < l.Seq; s++ {
			gr := gradOut.Row(b*l.Seq + s)
			dr := dtab.Row(s)
			for j := range dr {
				dr[j] += gr[j]
			}
		}
	}
	return []*tensor.Tensor{gradOut}, []*tensor.Tensor{dtab}
}
