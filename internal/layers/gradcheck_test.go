package layers

import (
	"math"
	"math/rand"
	"testing"

	"nautilus/internal/graph"
	"nautilus/internal/tensor"
)

// lossOf computes the probe loss Σ w·out used by gradient checks.
func lossOf(l graph.Layer, inputs []*tensor.Tensor, w *tensor.Tensor) float64 {
	out, _ := l.Forward(inputs, false)
	return tensor.Sum(tensor.Mul(out, w))
}

// checkGrads verifies a layer's analytic gradients against central finite
// differences on a sample of input and parameter coordinates.
// skipInputs lists input indices that carry no gradient (e.g. token ids).
func checkGrads(t *testing.T, l graph.Layer, inputs []*tensor.Tensor, skipInputs ...int) {
	t.Helper()
	rng := rand.New(rand.NewSource(123))
	out, cache := l.Forward(inputs, false)
	w := tensor.RandNormal(rng, 1, out.Shape()...)
	gradIn, gradParams := l.Backward(cache, inputs, out, w, graph.BackwardNeed{Inputs: true, Params: true})

	skip := map[int]bool{}
	for _, i := range skipInputs {
		skip[i] = true
	}
	// Shrinking steps: a mismatch at one step size may be a ReLU/max kink
	// crossing; it passes if any step agrees (kinks are measure-zero, so
	// smaller steps stop crossing them).
	steps := []struct{ eps, tol float64 }{{1e-2, 2e-2}, {2e-3, 3e-2}, {5e-4, 8e-2}}

	check := func(label string, data []float32, analytic *tensor.Tensor) {
		t.Helper()
		if analytic == nil {
			t.Errorf("%s: analytic gradient is nil", label)
			return
		}
		n := len(data)
		samples := 12
		if n < samples {
			samples = n
		}
		for s := 0; s < samples; s++ {
			i := rng.Intn(n)
			got := float64(analytic.Data()[i])
			ok := false
			var lastNum float64
			for _, st := range steps {
				orig := data[i]
				data[i] = orig + float32(st.eps)
				lp := lossOf(l, inputs, w)
				data[i] = orig - float32(st.eps)
				lm := lossOf(l, inputs, w)
				data[i] = orig
				num := (lp - lm) / (2 * st.eps)
				lastNum = num
				scale := math.Max(1, math.Max(math.Abs(num), math.Abs(got)))
				if math.Abs(num-got)/scale <= st.tol {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("%s[%d]: numeric %.5f vs analytic %.5f", label, i, lastNum, got)
			}
		}
	}

	for i, in := range inputs {
		if skip[i] {
			continue
		}
		check("input"+string(rune('0'+i)), in.Data(), gradIn[i])
	}
	for i, p := range l.Params() {
		check("param:"+p.Name, p.Tensor().Data(), gradParams[i])
	}
}

// checkOutShape verifies that the inferred shape matches the actual
// forward output (with the batch dimension stripped).
func checkOutShape(t *testing.T, l graph.Layer, inputs []*tensor.Tensor) {
	t.Helper()
	in := make([][]int, len(inputs))
	for i, x := range inputs {
		in[i] = x.Shape()[1:]
	}
	want := l.OutShape(in)
	out, _ := l.Forward(inputs, false)
	got := out.Shape()[1:]
	if !tensor.ShapeEq(got, want) {
		t.Errorf("OutShape = %v but forward produced %v", want, got)
	}
	if flops := l.FLOPsPerRecord(in); flops < 0 {
		t.Errorf("negative FLOPs estimate %d", flops)
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, act := range []string{ActNone, ActReLU, ActGeLU, ActTanh, ActSigmoid} {
		l := NewDense(5, 4, act, 7)
		x := tensor.RandNormal(rng, 1, 3, 5)
		checkOutShape(t, l, []*tensor.Tensor{x})
		checkGrads(t, l, []*tensor.Tensor{x})
	}
}

func TestDense3DInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewDense(6, 3, ActGeLU, 9)
	x := tensor.RandNormal(rng, 1, 2, 4, 6) // [batch, seq, dim]
	out, _ := l.Forward([]*tensor.Tensor{x}, false)
	if !tensor.ShapeEq(out.Shape(), []int{2, 4, 3}) {
		t.Fatalf("dense 3D output shape = %v", out.Shape())
	}
	checkGrads(t, l, []*tensor.Tensor{x})
}

func TestDenseBackwardHonoursNeedFlags(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewDense(4, 4, ActNone, 5)
	x := tensor.RandNormal(rng, 1, 2, 4)
	out, cache := l.Forward([]*tensor.Tensor{x}, false)
	g := tensor.RandNormal(rng, 1, out.Shape()...)
	gi, gp := l.Backward(cache, []*tensor.Tensor{x}, out, g, graph.BackwardNeed{Inputs: false, Params: true})
	if gi[0] != nil {
		t.Error("input grad should be nil when not needed")
	}
	if gp[0] == nil || gp[1] == nil {
		t.Error("param grads should be present when needed")
	}
	gi, gp = l.Backward(cache, []*tensor.Tensor{x}, out, g, graph.BackwardNeed{Inputs: true, Params: false})
	if gi[0] == nil {
		t.Error("input grad should be present when needed")
	}
	if gp[0] != nil {
		t.Error("param grads should be nil when not needed")
	}
}

func TestEmbeddingGradients(t *testing.T) {
	l := NewEmbedding(10, 4, 3)
	ids := tensor.FromSlice([]float32{1, 3, 5, 3, 0, 9}, 2, 3)
	checkOutShape(t, l, []*tensor.Tensor{ids})
	checkGrads(t, l, []*tensor.Tensor{ids}, 0)
	// Repeated id 3 must accumulate gradient from both positions.
	out, cache := l.Forward([]*tensor.Tensor{ids}, false)
	g := tensor.New(out.Shape()...)
	g.Fill(1)
	_, gp := l.Backward(cache, []*tensor.Tensor{ids}, out, g, graph.BackwardNeed{Inputs: false, Params: true})
	row3 := gp[0].Row(3)
	for _, v := range row3 {
		if v != 2 {
			t.Fatalf("embedding grad for repeated id = %v, want 2", v)
		}
	}
}

func TestEmbeddingOutOfVocabPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-vocab id")
		}
	}()
	l := NewEmbedding(4, 2, 1)
	l.Forward([]*tensor.Tensor{tensor.FromSlice([]float32{7}, 1, 1)}, false)
}

func TestPositionalEmbeddingGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewPositionalEmbedding(3, 4, 11)
	x := tensor.RandNormal(rng, 1, 2, 3, 4)
	checkOutShape(t, l, []*tensor.Tensor{x})
	checkGrads(t, l, []*tensor.Tensor{x})
}

func TestLayerNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewLayerNorm(6)
	x := tensor.RandNormal(rng, 2, 3, 6)
	checkOutShape(t, l, []*tensor.Tensor{x})
	checkGrads(t, l, []*tensor.Tensor{x})
}

func TestLayerNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewLayerNorm(8)
	x := tensor.RandNormal(rng, 5, 4, 8)
	out, _ := l.Forward([]*tensor.Tensor{x}, false)
	for r := 0; r < out.Rows(); r++ {
		var mean float64
		for _, v := range out.Row(r) {
			mean += float64(v)
		}
		mean /= 8
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("row %d mean = %v, want ~0", r, mean)
		}
	}
}

func TestChannelAffineGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewChannelAffine(5, 13)
	x := tensor.RandNormal(rng, 1, 4, 5)
	checkOutShape(t, l, []*tensor.Tensor{x})
	checkGrads(t, l, []*tensor.Tensor{x})
}

func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, act := range []string{ActReLU, ActGeLU, ActTanh, ActSigmoid} {
		l := NewActivation(act)
		x := tensor.RandNormal(rng, 1, 3, 4)
		// Nudge values away from the ReLU kink.
		for i, v := range x.Data() {
			if math.Abs(float64(v)) < 0.05 {
				x.Data()[i] = 0.1
			}
		}
		checkOutShape(t, l, []*tensor.Tensor{x})
		checkGrads(t, l, []*tensor.Tensor{x})
	}
}

func TestAddConcatGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := tensor.RandNormal(rng, 1, 2, 3)
	b := tensor.RandNormal(rng, 1, 2, 3)
	c := tensor.RandNormal(rng, 1, 2, 3)
	add := NewAdd(3)
	checkOutShape(t, add, []*tensor.Tensor{a, b, c})
	checkGrads(t, add, []*tensor.Tensor{a, b, c})

	d := tensor.RandNormal(rng, 1, 2, 5)
	cat := NewConcat(2)
	checkOutShape(t, cat, []*tensor.Tensor{a, d})
	checkGrads(t, cat, []*tensor.Tensor{a, d})
}

func TestFlattenAndMeanPool(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	fl := NewFlatten()
	x := tensor.RandNormal(rng, 1, 2, 3, 4)
	checkOutShape(t, fl, []*tensor.Tensor{x})
	checkGrads(t, fl, []*tensor.Tensor{x})

	mp := NewMeanPoolSeq()
	y := tensor.RandNormal(rng, 1, 2, 5, 3)
	checkOutShape(t, mp, []*tensor.Tensor{y})
	checkGrads(t, mp, []*tensor.Tensor{y})
}

func TestMultiHeadAttentionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewMultiHeadAttention(8, 2, 21)
	x := tensor.RandNormal(rng, 0.5, 2, 4, 8)
	checkOutShape(t, l, []*tensor.Tensor{x})
	checkGrads(t, l, []*tensor.Tensor{x})
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, tc := range []struct{ k, stride, pad int }{{1, 1, 0}, {3, 1, 1}, {3, 2, 1}} {
		l := NewConv2D(2, 3, tc.k, tc.stride, tc.pad, ActNone, 31)
		x := tensor.RandNormal(rng, 1, 2, 5, 5, 2)
		checkOutShape(t, l, []*tensor.Tensor{x})
		checkGrads(t, l, []*tensor.Tensor{x})
	}
}

func TestConv2DWithReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l := NewConv2D(2, 2, 3, 1, 1, ActReLU, 33)
	x := tensor.RandNormal(rng, 1, 1, 4, 4, 2)
	checkGrads(t, l, []*tensor.Tensor{x})
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	l := NewMaxPool2D(2, 2, 0)
	x := tensor.RandNormal(rng, 3, 1, 4, 4, 2) // large std avoids near-ties
	checkOutShape(t, l, []*tensor.Tensor{x})
	checkGrads(t, l, []*tensor.Tensor{x})
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	l := NewGlobalAvgPool2D()
	x := tensor.RandNormal(rng, 1, 2, 3, 3, 4)
	checkOutShape(t, l, []*tensor.Tensor{x})
	checkGrads(t, l, []*tensor.Tensor{x})
}

func TestAdapterGradientsAndNearIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	l := NewAdapter(6, 2, 41)
	x := tensor.RandNormal(rng, 1, 2, 3, 6)
	checkOutShape(t, l, []*tensor.Tensor{x})
	checkGrads(t, l, []*tensor.Tensor{x})
	// Freshly initialized adapters are near the identity function.
	out, _ := l.Forward([]*tensor.Tensor{x}, false)
	if !out.AllClose(x, 0.05) {
		t.Error("fresh adapter should be close to identity")
	}
}

func TestTransformerBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	l := NewTransformerBlock(TransformerBlockConfig{Seq: 3, Dim: 8, Heads: 2, FFN: 16, Seed: 51})
	x := tensor.RandNormal(rng, 0.5, 2, 3, 8)
	checkOutShape(t, l, []*tensor.Tensor{x})
	checkGrads(t, l, []*tensor.Tensor{x})
}

func TestResidualBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	l := NewResidualBlock(ResidualBlockConfig{InH: 4, InW: 4, InC: 3, MidC: 2, OutC: 6, Stride: 2, Seed: 61})
	x := tensor.RandNormal(rng, 1, 1, 4, 4, 3)
	checkOutShape(t, l, []*tensor.Tensor{x})
	checkGrads(t, l, []*tensor.Tensor{x})
}

func TestAdapterBlockTrainsOnlyAdapters(t *testing.T) {
	l := NewTransformerBlock(TransformerBlockConfig{
		Seq: 3, Dim: 8, Heads: 2, FFN: 16, Seed: 71, Adapter: 2, AdapterSeed: 99,
	})
	sub := l.TrainableSubset()
	if len(sub) != 8 { // 2 adapters × 4 params
		t.Fatalf("trainable subset has %d params, want 8", len(sub))
	}
	for _, p := range sub {
		if p.Name != "adapter1.wd" && p.Name != "adapter1.bd" && p.Name != "adapter1.wu" && p.Name != "adapter1.bu" &&
			p.Name != "adapter2.wd" && p.Name != "adapter2.bd" && p.Name != "adapter2.wu" && p.Name != "adapter2.bu" {
			t.Errorf("unexpected trainable param %q", p.Name)
		}
	}
	// Backward must produce grads only for the adapters.
	rng := rand.New(rand.NewSource(19))
	x := tensor.RandNormal(rng, 0.5, 1, 3, 8)
	out, cache := l.Forward([]*tensor.Tensor{x}, false)
	g := tensor.RandNormal(rng, 1, out.Shape()...)
	_, gp := l.Backward(cache, []*tensor.Tensor{x}, out, g, graph.BackwardNeed{Inputs: true, Params: true})
	trainSet := map[*graph.Param]bool{}
	for _, p := range sub {
		trainSet[p] = true
	}
	for i, p := range l.Params() {
		if trainSet[p] && gp[i] == nil {
			t.Errorf("trainable param %q got no gradient", p.Name)
		}
		if !trainSet[p] && gp[i] != nil {
			t.Errorf("frozen param %q got a gradient", p.Name)
		}
	}
}

func TestDropoutTrainEvalBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	l := NewDropout(0.5)
	x := tensor.RandNormal(rng, 1, 10, 100)
	// Eval mode: identity.
	out, _ := l.Forward([]*tensor.Tensor{x}, false)
	if !out.AllClose(x, 0) {
		t.Error("dropout in eval mode must be identity")
	}
	// Train mode: some zeros, survivors scaled by 2.
	out, cache := l.Forward([]*tensor.Tensor{x}, true)
	zeros := 0
	for i, v := range out.Data() {
		if v == 0 {
			zeros++
		} else if math.Abs(float64(v-2*x.Data()[i])) > 1e-6 {
			t.Fatalf("survivor %d not scaled: %v vs %v", i, v, x.Data()[i])
		}
	}
	if zeros < 300 || zeros > 700 {
		t.Errorf("dropout zeroed %d/1000, want ~500", zeros)
	}
	// Backward routes gradient through the same mask.
	g := tensor.New(x.Shape()...)
	g.Fill(1)
	gi, _ := l.Backward(cache, []*tensor.Tensor{x}, out, g, graph.BackwardNeed{Inputs: true})
	for i, v := range gi[0].Data() {
		if (out.Data()[i] == 0) != (v == 0) {
			t.Fatal("dropout backward mask mismatch")
		}
	}
}

func TestCompositeFLOPsAndActivationBytes(t *testing.T) {
	l := NewTransformerBlock(TransformerBlockConfig{Seq: 4, Dim: 8, Heads: 2, FFN: 16, Seed: 81})
	in := [][]int{{4, 8}}
	flops := l.FLOPsPerRecord(in)
	if flops <= 0 {
		t.Fatal("composite FLOPs should be positive")
	}
	// MHA alone: 8·s·d² + 4·s²·d = 8·4·64 + 4·16·8 = 2560.
	mha := NewMultiHeadAttention(8, 2, 1)
	if flops <= mha.FLOPsPerRecord(in) {
		t.Error("block FLOPs must exceed its attention sub-layer")
	}
	bytes := l.ActivationBytesPerRecord(in)
	outBytes := int64(4 * 8 * 4)
	if bytes <= outBytes {
		t.Errorf("composite activation bytes %d should exceed plain output %d", bytes, outBytes)
	}
}

func TestLayerIdentitySignatures(t *testing.T) {
	// Same type+config+seed ⇒ same signature; differing seed or
	// trainability ⇒ different.
	mkNode := func(seed int64, trainable bool) *graph.Node {
		m := graph.NewModel("m")
		in := m.AddInput("in", 4)
		n := m.AddNode("d", NewDense(4, 2, ActNone, seed), in)
		n.Trainable = trainable
		return n
	}
	a := graph.LayerSignature(mkNode(5, false))
	b := graph.LayerSignature(mkNode(5, false))
	c := graph.LayerSignature(mkNode(6, false))
	d := graph.LayerSignature(mkNode(5, true))
	if a != b {
		t.Error("identical frozen layers must share a signature")
	}
	if a == c {
		t.Error("different seeds must differ")
	}
	if a == d {
		t.Error("frozen vs trainable must differ")
	}
}

func TestSelectSeqGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	l := NewSelectSeq(2, 5)
	x := tensor.RandNormal(rng, 1, 2, 5, 3)
	checkOutShape(t, l, []*tensor.Tensor{x})
	checkGrads(t, l, []*tensor.Tensor{x})
}

func TestSelectSeqOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSelectSeq(5, 5)
}

func TestInitialStateGradients(t *testing.T) {
	l := NewInitialState(4)
	ids := tensor.New(3, 2) // content irrelevant
	out, cache := l.Forward([]*tensor.Tensor{ids}, false)
	if !tensor.ShapeEq(out.Shape(), []int{3, 4}) {
		t.Fatalf("shape %v", out.Shape())
	}
	g := tensor.New(3, 4)
	g.Fill(1)
	_, gp := l.Backward(cache, []*tensor.Tensor{ids}, out, g, graph.BackwardNeed{Params: true})
	for _, v := range gp[0].Data() {
		if v != 3 { // summed over the batch
			t.Fatalf("h0 grad = %v, want 3", v)
		}
	}
}

func TestRNNCellGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	l := NewRNNCell(4, 3, 51)
	x := tensor.RandNormal(rng, 1, 2, 4)
	h := tensor.RandNormal(rng, 1, 2, 3)
	checkOutShape(t, l, []*tensor.Tensor{x, h})
	checkGrads(t, l, []*tensor.Tensor{x, h})
}
