package layers

import (
	"fmt"

	"nautilus/internal/graph"
	"nautilus/internal/tensor"
)

// Add sums two or more shape-identical inputs elementwise. Feature-transfer
// strategies like "sum of last 4 hidden layers" use it to combine block
// outputs, and residual connections use the 2-input form.
type Add struct {
	N int // number of inputs
}

// NewAdd returns an n-ary elementwise addition layer.
func NewAdd(n int) *Add {
	if n < 2 {
		panic("layers: add needs at least 2 inputs")
	}
	return &Add{N: n}
}

func (l *Add) Type() string           { return "add" }
func (l *Add) Config() map[string]any { return map[string]any{"n": l.N} }
func (l *Add) Params() []*graph.Param { return nil }

func (l *Add) OutShape(in [][]int) []int {
	requireInputs("add", in, l.N)
	for _, s := range in[1:] {
		if !tensor.ShapeEq(s, in[0]) {
			panic(fmt.Sprintf("layers: add inputs disagree: %v vs %v", in[0], s))
		}
	}
	return append([]int(nil), in[0]...)
}

func (l *Add) FLOPsPerRecord(in [][]int) int64 {
	return int64(tensor.NumElems(in[0])) * int64(l.N-1)
}

func (l *Add) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	out := inputs[0].Clone()
	for _, x := range inputs[1:] {
		tensor.AddInPlace(out, x)
	}
	return out, nil
}

func (l *Add) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	grads := make([]*tensor.Tensor, l.N)
	for i := range grads {
		grads[i] = gradOut
	}
	return grads, nil
}

// Concat concatenates two or more inputs along their last dimension. The
// "concat last 4 hidden layers" feature-transfer strategy uses it.
type Concat struct {
	N int
}

// NewConcat returns an n-ary last-dimension concatenation layer.
func NewConcat(n int) *Concat {
	if n < 2 {
		panic("layers: concat needs at least 2 inputs")
	}
	return &Concat{N: n}
}

func (l *Concat) Type() string           { return "concat" }
func (l *Concat) Config() map[string]any { return map[string]any{"n": l.N} }
func (l *Concat) Params() []*graph.Param { return nil }

func (l *Concat) OutShape(in [][]int) []int {
	requireInputs("concat", in, l.N)
	out := append([]int(nil), in[0]...)
	last := len(out) - 1
	for _, s := range in[1:] {
		if len(s) != len(out) || !tensor.ShapeEq(s[:last], out[:last]) {
			panic(fmt.Sprintf("layers: concat inputs disagree: %v vs %v", in[0], s))
		}
		out[last] += s[last]
	}
	return out
}

func (l *Concat) FLOPsPerRecord(in [][]int) int64 {
	var n int64
	for _, s := range in {
		n += int64(tensor.NumElems(s))
	}
	return n // copy cost
}

func (l *Concat) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	return tensor.ConcatLast(inputs...), nil
}

func (l *Concat) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	widths := make([]int, len(inputs))
	for i, x := range inputs {
		widths[i] = x.Cols()
	}
	return tensor.SplitLast(gradOut, widths), nil
}

// Flatten reshapes each record to a vector, e.g. [H,W,C] → [H·W·C].
type Flatten struct{}

// NewFlatten returns a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

func (l *Flatten) Type() string           { return "flatten" }
func (l *Flatten) Config() map[string]any { return map[string]any{} }
func (l *Flatten) Params() []*graph.Param { return nil }

func (l *Flatten) OutShape(in [][]int) []int {
	requireInputs("flatten", in, 1)
	return []int{tensor.NumElems(in[0])}
}

func (l *Flatten) FLOPsPerRecord(in [][]int) int64 { return 0 }

func (l *Flatten) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	x := inputs[0]
	return x.Reshape(x.Dim(0), -1), nil
}

func (l *Flatten) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	return []*tensor.Tensor{gradOut.Reshape(inputs[0].Shape()...)}, nil
}

// MeanPoolSeq averages a [seq, dim] record over the sequence dimension,
// producing [dim]; classification heads over token features use it.
type MeanPoolSeq struct{}

// NewMeanPoolSeq returns a sequence mean-pooling layer.
func NewMeanPoolSeq() *MeanPoolSeq { return &MeanPoolSeq{} }

func (l *MeanPoolSeq) Type() string           { return "mean_pool_seq" }
func (l *MeanPoolSeq) Config() map[string]any { return map[string]any{} }
func (l *MeanPoolSeq) Params() []*graph.Param { return nil }

func (l *MeanPoolSeq) OutShape(in [][]int) []int {
	requireInputs("mean_pool_seq", in, 1)
	if len(in[0]) != 2 {
		panic(fmt.Sprintf("layers: mean_pool_seq expects [seq,dim], got %v", in[0]))
	}
	return []int{in[0][1]}
}

func (l *MeanPoolSeq) FLOPsPerRecord(in [][]int) int64 {
	return int64(tensor.NumElems(in[0]))
}

func (l *MeanPoolSeq) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	x := inputs[0]
	batch, seq, dim := x.Dim(0), x.Dim(1), x.Dim(2)
	out := tensor.NewFrom(x, batch, dim)
	inv := 1 / float32(seq)
	for b := 0; b < batch; b++ {
		or := out.Row(b)
		for s := 0; s < seq; s++ {
			xr := x.Row(b*seq + s)
			for j := range or {
				or[j] += xr[j]
			}
		}
		for j := range or {
			or[j] *= inv
		}
	}
	return out, nil
}

func (l *MeanPoolSeq) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	x := inputs[0]
	batch, seq, dim := x.Dim(0), x.Dim(1), x.Dim(2)
	dx := tensor.NewFrom(gradOut, batch, seq, dim)
	inv := 1 / float32(seq)
	for b := 0; b < batch; b++ {
		gr := gradOut.Row(b)
		for s := 0; s < seq; s++ {
			dr := dx.Row(b*seq + s)
			for j := range dr {
				dr[j] = gr[j] * inv
			}
		}
	}
	return []*tensor.Tensor{dx}, nil
}
