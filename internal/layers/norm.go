package layers

import (
	"fmt"
	"math"
	"math/rand"

	"nautilus/internal/graph"
	"nautilus/internal/tensor"
)

const lnEps = 1e-5

// LayerNorm normalizes activations over the last dimension and applies a
// learned gain and bias: y = γ·(x − μ)/√(σ² + ε) + β.
type LayerNorm struct {
	Dim int

	gamma, beta *graph.Param
}

// NewLayerNorm returns a layer normalization over vectors of size dim.
func NewLayerNorm(dim int) *LayerNorm {
	return &LayerNorm{
		Dim:   dim,
		gamma: graph.NewParamOnes("gamma", dim),
		beta:  graph.NewParam("beta", dim),
	}
}

func (l *LayerNorm) Type() string           { return "layer_norm" }
func (l *LayerNorm) Config() map[string]any { return map[string]any{"dim": l.Dim} }
func (l *LayerNorm) Params() []*graph.Param { return []*graph.Param{l.gamma, l.beta} }

func (l *LayerNorm) OutShape(in [][]int) []int {
	requireInputs("layer_norm", in, 1)
	if in[0][len(in[0])-1] != l.Dim {
		panic(fmt.Sprintf("layers: layer_norm(dim=%d) got %v", l.Dim, in[0]))
	}
	return append([]int(nil), in[0]...)
}

func (l *LayerNorm) FLOPsPerRecord(in [][]int) int64 {
	return int64(tensor.NumElems(in[0])) * 8
}

type lnCache struct {
	xhat   *tensor.Tensor
	invStd []float32 // one per row
}

func (l *LayerNorm) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	x := inputs[0]
	rows, d := x.Rows(), l.Dim
	out := tensor.NewFrom(x, x.Shape()...)
	xhat := tensor.NewFrom(x, x.Shape()...)
	invStd := make([]float32, rows)
	g, b := l.gamma.Tensor().Data(), l.beta.Tensor().Data()
	tensor.Parallel(rows, x.Len()*8, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			xr, or, hr := x.Row(r), out.Row(r), xhat.Row(r)
			var mean float64
			for _, v := range xr {
				mean += float64(v)
			}
			mean /= float64(d)
			var varsum float64
			for _, v := range xr {
				dv := float64(v) - mean
				varsum += dv * dv
			}
			inv := float32(1 / math.Sqrt(varsum/float64(d)+lnEps))
			invStd[r] = inv
			for j := 0; j < d; j++ {
				h := (xr[j] - float32(mean)) * inv
				hr[j] = h
				or[j] = h*g[j] + b[j]
			}
		}
	})
	return out, lnCache{xhat: xhat, invStd: invStd}
}

func (l *LayerNorm) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	c := cache.(lnCache)
	x := inputs[0]
	rows, d := x.Rows(), l.Dim
	g := l.gamma.Tensor().Data()
	dgamma := tensor.NewFrom(gradOut, l.Dim)
	dbeta := tensor.NewFrom(gradOut, l.Dim)
	dx := tensor.NewFrom(gradOut, x.Shape()...)
	dg, db := dgamma.Data(), dbeta.Data()
	for r := 0; r < rows; r++ {
		gr, hr, dr := gradOut.Row(r), c.xhat.Row(r), dx.Row(r)
		var sumDh, sumDhH float64
		for j := 0; j < d; j++ {
			dh := float64(gr[j]) * float64(g[j])
			sumDh += dh
			sumDhH += dh * float64(hr[j])
			dg[j] += gr[j] * hr[j]
			db[j] += gr[j]
		}
		inv := float64(c.invStd[r])
		nd := float64(d)
		for j := 0; j < d; j++ {
			dh := float64(gr[j]) * float64(g[j])
			dr[j] = float32(inv * (dh - sumDh/nd - float64(hr[j])*sumDhH/nd))
		}
	}
	return []*tensor.Tensor{dx}, []*tensor.Tensor{dgamma, dbeta}
}

// ChannelAffine applies a learned per-channel scale and shift over the last
// dimension: y = x·γ_c + β_c. It stands in for batch normalization in the
// ResNet substrate: during transfer learning BN layers run with frozen
// population statistics, which folds exactly into this per-channel affine
// transform (see DESIGN.md substitutions).
type ChannelAffine struct {
	Channels int

	gamma, beta *graph.Param
}

// NewChannelAffine returns a per-channel affine layer. Gains initialize
// near 1 (as trained batch-norm gammas do), so signal magnitude survives
// deep frozen stacks.
func NewChannelAffine(channels int, seed int64) *ChannelAffine {
	fn := func(rng *rand.Rand, shape []int) *tensor.Tensor {
		t := tensor.RandNormal(rng, 0.1, shape...)
		for i, v := range t.Data() {
			t.Data()[i] = 1 + v
		}
		return t
	}
	return &ChannelAffine{
		Channels: channels,
		gamma:    graph.NewParamCustom("gamma", "affine_gain_near_one", seed, fn, channels),
		beta:     graph.NewParam("beta", channels),
	}
}

func (l *ChannelAffine) Type() string           { return "channel_affine" }
func (l *ChannelAffine) Config() map[string]any { return map[string]any{"channels": l.Channels} }
func (l *ChannelAffine) Params() []*graph.Param { return []*graph.Param{l.gamma, l.beta} }

func (l *ChannelAffine) OutShape(in [][]int) []int {
	requireInputs("channel_affine", in, 1)
	if in[0][len(in[0])-1] != l.Channels {
		panic(fmt.Sprintf("layers: channel_affine(channels=%d) got %v", l.Channels, in[0]))
	}
	return append([]int(nil), in[0]...)
}

func (l *ChannelAffine) FLOPsPerRecord(in [][]int) int64 {
	return int64(tensor.NumElems(in[0])) * 2
}

func (l *ChannelAffine) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	x := inputs[0]
	out := tensor.NewFrom(x, x.Shape()...)
	g, b := l.gamma.Tensor().Data(), l.beta.Tensor().Data()
	c := l.Channels
	tensor.Parallel(x.Rows(), x.Len()*2, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			xr, or := x.Row(r), out.Row(r)
			for j := 0; j < c; j++ {
				or[j] = xr[j]*g[j] + b[j]
			}
		}
	})
	return out, nil
}

func (l *ChannelAffine) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	x := inputs[0]
	dgamma := tensor.NewFrom(gradOut, l.Channels)
	dbeta := tensor.NewFrom(gradOut, l.Channels)
	dx := tensor.NewFrom(gradOut, x.Shape()...)
	g := l.gamma.Tensor().Data()
	dg, db := dgamma.Data(), dbeta.Data()
	c := l.Channels
	for r := 0; r < x.Rows(); r++ {
		xr, gr, dr := x.Row(r), gradOut.Row(r), dx.Row(r)
		for j := 0; j < c; j++ {
			dg[j] += gr[j] * xr[j]
			db[j] += gr[j]
			dr[j] = gr[j] * g[j]
		}
	}
	return []*tensor.Tensor{dx}, []*tensor.Tensor{dgamma, dbeta}
}
