package layers

import (
	"fmt"

	"nautilus/internal/graph"
	"nautilus/internal/tensor"
)

// SelectSeq extracts position T of a [seq, dim] record, producing [dim].
// Unrolled recurrent models use it to feed one timestep to each cell copy.
type SelectSeq struct {
	T, Seq int
}

// NewSelectSeq returns a layer selecting timestep t of seq.
func NewSelectSeq(t, seq int) *SelectSeq {
	if t < 0 || t >= seq {
		panic(fmt.Sprintf("layers: select t=%d out of seq %d", t, seq))
	}
	return &SelectSeq{T: t, Seq: seq}
}

func (l *SelectSeq) Type() string           { return "select_seq" }
func (l *SelectSeq) Config() map[string]any { return map[string]any{"t": l.T, "seq": l.Seq} }
func (l *SelectSeq) Params() []*graph.Param { return nil }

func (l *SelectSeq) OutShape(in [][]int) []int {
	requireInputs("select_seq", in, 1)
	if len(in[0]) != 2 || in[0][0] != l.Seq {
		panic(fmt.Sprintf("layers: select_seq(seq=%d) got %v", l.Seq, in[0]))
	}
	return []int{in[0][1]}
}

func (l *SelectSeq) FLOPsPerRecord(in [][]int) int64 { return int64(in[0][1]) }

func (l *SelectSeq) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	x := inputs[0]
	batch, seq, dim := x.Dim(0), x.Dim(1), x.Dim(2)
	out := tensor.NewFrom(x, batch, dim)
	for b := 0; b < batch; b++ {
		copy(out.Row(b), x.Row(b*seq+l.T))
	}
	return out, nil
}

func (l *SelectSeq) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	x := inputs[0]
	batch, seq := x.Dim(0), x.Dim(1)
	dx := tensor.NewFrom(gradOut, x.Shape()...)
	for b := 0; b < batch; b++ {
		copy(dx.Row(b*seq+l.T), gradOut.Row(b))
	}
	return []*tensor.Tensor{dx}, nil
}

// InitialState produces a learned initial hidden state h₀ of size Hidden,
// broadcast over the batch. It takes the model input solely to learn the
// batch size.
type InitialState struct {
	Hidden int

	h0 *graph.Param
}

// NewInitialState returns a zero-initialized learned initial state.
func NewInitialState(hidden int) *InitialState {
	return &InitialState{Hidden: hidden, h0: graph.NewParam("h0", hidden)}
}

func (l *InitialState) Type() string           { return "initial_state" }
func (l *InitialState) Config() map[string]any { return map[string]any{"hidden": l.Hidden} }
func (l *InitialState) Params() []*graph.Param { return []*graph.Param{l.h0} }

func (l *InitialState) OutShape(in [][]int) []int {
	requireInputs("initial_state", in, 1)
	return []int{l.Hidden}
}

func (l *InitialState) FLOPsPerRecord(in [][]int) int64 { return int64(l.Hidden) }

func (l *InitialState) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	batch := inputs[0].Dim(0)
	out := tensor.NewFrom(inputs[0], batch, l.Hidden)
	h := l.h0.Tensor()
	for b := 0; b < batch; b++ {
		copy(out.Row(b), h.Data())
	}
	return out, nil
}

func (l *InitialState) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	var dh *tensor.Tensor
	if need.Params {
		dh = tensor.SumRows(gradOut)
	}
	return []*tensor.Tensor{nil}, []*tensor.Tensor{dh}
}

// RNNCell is an Elman recurrence h_t = tanh(x_t·Wx + h_{t−1}·Wh + b). One
// cell instance is shared across every unrolled timestep, so its gradients
// accumulate across uses — the graph engine's shared-layer accumulation
// implements back-propagation through time.
type RNNCell struct {
	In, Hidden int

	wx, wh, b *graph.Param
}

// NewRNNCell returns an Elman cell.
func NewRNNCell(in, hidden int, seed int64) *RNNCell {
	return &RNNCell{
		In: in, Hidden: hidden,
		wx: graph.NewParamGlorot("wx", seed+1, in, hidden),
		wh: graph.NewParamGlorot("wh", seed+2, hidden, hidden),
		b:  graph.NewParam("b", hidden),
	}
}

func (l *RNNCell) Type() string { return "rnn_cell" }

func (l *RNNCell) Config() map[string]any {
	return map[string]any{"in": l.In, "hidden": l.Hidden}
}

func (l *RNNCell) Params() []*graph.Param { return []*graph.Param{l.wx, l.wh, l.b} }

func (l *RNNCell) OutShape(in [][]int) []int {
	requireInputs("rnn_cell", in, 2)
	if in[0][len(in[0])-1] != l.In || in[1][len(in[1])-1] != l.Hidden {
		panic(fmt.Sprintf("layers: rnn_cell(in=%d,hidden=%d) got %v, %v", l.In, l.Hidden, in[0], in[1]))
	}
	return []int{l.Hidden}
}

func (l *RNNCell) FLOPsPerRecord(in [][]int) int64 {
	return 2*int64(l.In)*int64(l.Hidden) + 2*int64(l.Hidden)*int64(l.Hidden) +
		int64(l.Hidden)*(2+activationFLOPsPerElem(ActTanh))
}

func (l *RNNCell) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	x, h := inputs[0], inputs[1]
	z := tensor.MatMul(x, l.wx.Tensor())
	tensor.AddInPlace(z, tensor.MatMul(h, l.wh.Tensor()))
	z = tensor.AddRowVec(z, l.b.Tensor())
	return applyActivation(ActTanh, z), z
}

func (l *RNNCell) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor, need graph.BackwardNeed) ([]*tensor.Tensor, []*tensor.Tensor) {
	z := cache.(*tensor.Tensor)
	x, h := inputs[0], inputs[1]
	dz := activationBackward(ActTanh, z, gradOut)
	var dwx, dwh, db, dx, dh *tensor.Tensor
	if need.Params {
		dwx = tensor.MatMulAT(x, dz)
		dwh = tensor.MatMulAT(h, dz)
		db = tensor.SumRows(dz)
	}
	if need.Inputs {
		dx = tensor.MatMulBT(dz, l.wx.Tensor())
		dh = tensor.MatMulBT(dz, l.wh.Tensor())
	}
	return []*tensor.Tensor{dx, dh}, []*tensor.Tensor{dwx, dwh, db}
}

func init() {
	graph.RegisterLayerType("select_seq", func(cfg map[string]any) (graph.Layer, error) {
		t, err := graph.Int(cfg, "t")
		if err != nil {
			return nil, err
		}
		seq, err := graph.Int(cfg, "seq")
		if err != nil {
			return nil, err
		}
		return NewSelectSeq(t, seq), nil
	})
	graph.RegisterLayerType("initial_state", func(cfg map[string]any) (graph.Layer, error) {
		h, err := graph.Int(cfg, "hidden")
		if err != nil {
			return nil, err
		}
		return NewInitialState(h), nil
	})
	graph.RegisterLayerType("rnn_cell", func(cfg map[string]any) (graph.Layer, error) {
		in, err := graph.Int(cfg, "in")
		if err != nil {
			return nil, err
		}
		h, err := graph.Int(cfg, "hidden")
		if err != nil {
			return nil, err
		}
		return NewRNNCell(in, h, 0), nil
	})
}
