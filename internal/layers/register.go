package layers

import (
	"nautilus/internal/graph"
)

// init registers every layer type with the graph package so model
// architectures can be restored from checkpoints.
func init() {
	graph.RegisterLayerType("activation", func(cfg map[string]any) (graph.Layer, error) {
		return NewActivation(cfg["act"].(string)), nil
	})
	graph.RegisterLayerType("dropout", func(cfg map[string]any) (graph.Layer, error) {
		rate, err := graph.Float(cfg, "rate")
		if err != nil {
			return nil, err
		}
		return NewDropout(rate), nil
	})
	graph.RegisterLayerType("dense", func(cfg map[string]any) (graph.Layer, error) {
		in, err := graph.Int(cfg, "in")
		if err != nil {
			return nil, err
		}
		out, err := graph.Int(cfg, "out")
		if err != nil {
			return nil, err
		}
		return NewDense(in, out, cfg["act"].(string), 0), nil
	})
	graph.RegisterLayerType("embedding", func(cfg map[string]any) (graph.Layer, error) {
		vocab, err := graph.Int(cfg, "vocab")
		if err != nil {
			return nil, err
		}
		dim, err := graph.Int(cfg, "dim")
		if err != nil {
			return nil, err
		}
		return NewEmbedding(vocab, dim, 0), nil
	})
	graph.RegisterLayerType("pos_embedding", func(cfg map[string]any) (graph.Layer, error) {
		seq, err := graph.Int(cfg, "seq")
		if err != nil {
			return nil, err
		}
		dim, err := graph.Int(cfg, "dim")
		if err != nil {
			return nil, err
		}
		return NewPositionalEmbedding(seq, dim, 0), nil
	})
	graph.RegisterLayerType("layer_norm", func(cfg map[string]any) (graph.Layer, error) {
		dim, err := graph.Int(cfg, "dim")
		if err != nil {
			return nil, err
		}
		return NewLayerNorm(dim), nil
	})
	graph.RegisterLayerType("channel_affine", func(cfg map[string]any) (graph.Layer, error) {
		ch, err := graph.Int(cfg, "channels")
		if err != nil {
			return nil, err
		}
		return NewChannelAffine(ch, 0), nil
	})
	graph.RegisterLayerType("add", func(cfg map[string]any) (graph.Layer, error) {
		n, err := graph.Int(cfg, "n")
		if err != nil {
			return nil, err
		}
		return NewAdd(n), nil
	})
	graph.RegisterLayerType("concat", func(cfg map[string]any) (graph.Layer, error) {
		n, err := graph.Int(cfg, "n")
		if err != nil {
			return nil, err
		}
		return NewConcat(n), nil
	})
	graph.RegisterLayerType("flatten", func(cfg map[string]any) (graph.Layer, error) {
		return NewFlatten(), nil
	})
	graph.RegisterLayerType("mean_pool_seq", func(cfg map[string]any) (graph.Layer, error) {
		return NewMeanPoolSeq(), nil
	})
	graph.RegisterLayerType("mha", func(cfg map[string]any) (graph.Layer, error) {
		dim, err := graph.Int(cfg, "dim")
		if err != nil {
			return nil, err
		}
		heads, err := graph.Int(cfg, "heads")
		if err != nil {
			return nil, err
		}
		return NewMultiHeadAttention(dim, heads, 0), nil
	})
	graph.RegisterLayerType("adapter", func(cfg map[string]any) (graph.Layer, error) {
		dim, err := graph.Int(cfg, "dim")
		if err != nil {
			return nil, err
		}
		bn, err := graph.Int(cfg, "bottleneck")
		if err != nil {
			return nil, err
		}
		return NewAdapter(dim, bn, 0), nil
	})
	graph.RegisterLayerType("conv2d", func(cfg map[string]any) (graph.Layer, error) {
		inC, err := graph.Int(cfg, "in_c")
		if err != nil {
			return nil, err
		}
		outC, err := graph.Int(cfg, "out_c")
		if err != nil {
			return nil, err
		}
		k, err := graph.Int(cfg, "kh")
		if err != nil {
			return nil, err
		}
		stride, err := graph.Int(cfg, "stride_h")
		if err != nil {
			return nil, err
		}
		pad, err := graph.Int(cfg, "pad_h")
		if err != nil {
			return nil, err
		}
		return NewConv2D(inC, outC, k, stride, pad, cfg["act"].(string), 0), nil
	})
	graph.RegisterLayerType("max_pool2d", func(cfg map[string]any) (graph.Layer, error) {
		k, err := graph.Int(cfg, "k")
		if err != nil {
			return nil, err
		}
		stride, err := graph.Int(cfg, "stride")
		if err != nil {
			return nil, err
		}
		pad, err := graph.Int(cfg, "pad")
		if err != nil {
			return nil, err
		}
		return NewMaxPool2D(k, stride, pad), nil
	})
	graph.RegisterLayerType("global_avg_pool2d", func(cfg map[string]any) (graph.Layer, error) {
		return NewGlobalAvgPool2D(), nil
	})
	graph.RegisterLayerType("transformer_block", func(cfg map[string]any) (graph.Layer, error) {
		var c TransformerBlockConfig
		var err error
		if c.Seq, err = graph.Int(cfg, "seq"); err != nil {
			return nil, err
		}
		if c.Dim, err = graph.Int(cfg, "dim"); err != nil {
			return nil, err
		}
		if c.Heads, err = graph.Int(cfg, "heads"); err != nil {
			return nil, err
		}
		if c.FFN, err = graph.Int(cfg, "ffn"); err != nil {
			return nil, err
		}
		seed, err := graph.Int(cfg, "seed")
		if err != nil {
			return nil, err
		}
		c.Seed = int64(seed)
		if c.Adapter, err = graph.Int(cfg, "adapter"); err != nil {
			return nil, err
		}
		as, err := graph.Int(cfg, "adapter_seed")
		if err != nil {
			return nil, err
		}
		c.AdapterSeed = int64(as)
		return NewTransformerBlock(c), nil
	})
	graph.RegisterLayerType("residual_block", func(cfg map[string]any) (graph.Layer, error) {
		var c ResidualBlockConfig
		var err error
		if c.InH, err = graph.Int(cfg, "in_h"); err != nil {
			return nil, err
		}
		if c.InW, err = graph.Int(cfg, "in_w"); err != nil {
			return nil, err
		}
		if c.InC, err = graph.Int(cfg, "in_c"); err != nil {
			return nil, err
		}
		if c.MidC, err = graph.Int(cfg, "mid_c"); err != nil {
			return nil, err
		}
		if c.OutC, err = graph.Int(cfg, "out_c"); err != nil {
			return nil, err
		}
		if c.Stride, err = graph.Int(cfg, "stride"); err != nil {
			return nil, err
		}
		seed, err := graph.Int(cfg, "seed")
		if err != nil {
			return nil, err
		}
		c.Seed = int64(seed)
		return NewResidualBlock(c), nil
	})
}
