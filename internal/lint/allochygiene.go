package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocHygieneAnalyzer flags per-iteration tensor/buffer allocations inside
// loops when the allocation size is loop-invariant and the buffer never
// escapes the iteration — the pattern behind avoidable per-batch garbage in
// training hot loops. Such a buffer can be hoisted above the loop and
// reused.
//
// Scope is deliberately narrow to stay high-precision: only direct
// assignments `x := make([]float32|float64, ...)` or `x := tensor.New(...)`
// are considered, the allocation's arguments must not mention variables
// declared inside the loop (a varying size genuinely needs a fresh
// allocation), and any use of the buffer that could outlive the iteration —
// stored into a struct/map/slice, appended, returned, sent, captured in a
// composite literal or closure, aliased, or passed to a non-builtin call —
// disqualifies the finding.
var AllocHygieneAnalyzer = &Analyzer{
	Name: "allochygiene",
	Doc:  "flags hoistable per-iteration buffer allocations in loops",
	Run:  runAllocHygiene,
}

func runAllocHygiene(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			checkLoopAllocs(p, n, body)
			return true
		})
	}
}

// checkLoopAllocs inspects one loop's direct body (nested loops are visited
// by their own pass, so each allocation is judged against its innermost
// enclosing loop).
func checkLoopAllocs(p *Pass, loop ast.Node, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false // judged against its own innermost scope
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok || lhs.Name == "_" {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		what := allocKind(p, call)
		if what == "" {
			return true
		}
		if !loopInvariantArgs(p, loop, call.Args) {
			return true
		}
		obj := p.Pkg.Info.ObjectOf(lhs)
		if obj == nil || obj.Pos() != lhs.Pos() {
			return true // not the defining assignment
		}
		if escapesIteration(p, body, obj, lhs) {
			return true
		}
		p.Reportf(as.Pos(), "per-iteration %s with loop-invariant size; hoist the buffer out of the loop and reuse it", what)
		return true
	})
}

// allocKind classifies the call as a flaggable allocation: "" if not one,
// otherwise a short description for the diagnostic.
func allocKind(p *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "make" {
			return ""
		}
		if _, isBuiltin := p.Pkg.Info.ObjectOf(fun).(*types.Builtin); !isBuiltin {
			return ""
		}
		sl, ok := p.Pkg.Info.TypeOf(call).Underlying().(*types.Slice)
		if !ok {
			return ""
		}
		basic, ok := sl.Elem().Underlying().(*types.Basic)
		if !ok {
			return ""
		}
		switch basic.Kind() {
		case types.Float32:
			return "make([]float32)"
		case types.Float64:
			return "make([]float64)"
		}
		return ""
	case *ast.SelectorExpr:
		pkgIdent, ok := fun.X.(*ast.Ident)
		if !ok {
			return ""
		}
		pn, ok := p.Pkg.Info.ObjectOf(pkgIdent).(*types.PkgName)
		if !ok || pn.Imported().Path() != "nautilus/internal/tensor" {
			return ""
		}
		if fun.Sel.Name == "New" || fun.Sel.Name == "Zeros" {
			return "tensor." + fun.Sel.Name
		}
	}
	return ""
}

// loopInvariantArgs reports whether no variable mentioned in the allocation
// arguments is declared inside the loop (sizes depending on the loop
// variable genuinely need per-iteration allocations).
func loopInvariantArgs(p *Pass, loop ast.Node, args []ast.Expr) bool {
	invariant := true
	for _, a := range args {
		ast.Inspect(a, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := p.Pkg.Info.ObjectOf(id).(*types.Var); ok && within(v.Pos(), loop) {
				invariant = false
			}
			return invariant
		})
	}
	return invariant
}

func within(pos token.Pos, n ast.Node) bool {
	return pos >= n.Pos() && pos <= n.End()
}

// escapesIteration reports whether any use of obj in the loop body could
// let the buffer outlive the iteration. The whitelist covers the ways a
// scratch buffer is legitimately consumed in place: indexing, slicing,
// ranging, receiver of a method/field selection, len/cap/copy, rebinding,
// and nil comparison. Everything else — including passing the buffer to an
// arbitrary function, which may retain it — counts as an escape.
func escapesIteration(p *Pass, body *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == def || p.Pkg.Info.ObjectOf(id) != obj {
			return true
		}
		if !useIsLocal(p, parents, id) {
			escaped = true
		}
		return !escaped
	})
	return escaped
}

// useIsLocal classifies one use of the buffer identifier.
func useIsLocal(p *Pass, parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	var child ast.Node = id
	parent := parents[id]
	for {
		if pe, ok := parent.(*ast.ParenExpr); ok {
			child = pe
			parent = parents[pe]
			continue
		}
		break
	}
	switch pn := parent.(type) {
	case *ast.IndexExpr:
		return pn.X == child // buf[i] read or written
	case *ast.SliceExpr:
		return pn.X == child // buf[lo:hi]
	case *ast.SelectorExpr:
		return pn.X == child // buf.Method(...) / buf.Field
	case *ast.RangeStmt:
		return pn.X == child // for range buf
	case *ast.AssignStmt:
		for _, l := range pn.Lhs {
			if l == child {
				return true // rebinding the plain ident drops the old buffer
			}
		}
		return false // RHS use aliases the buffer
	case *ast.CallExpr:
		fn, ok := pn.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		if _, isBuiltin := p.Pkg.Info.ObjectOf(fn).(*types.Builtin); !isBuiltin {
			return false
		}
		switch fn.Name {
		case "len", "cap", "copy", "clear", "min", "max", "print", "println":
			return true
		}
		return false // append and conversions leak the backing array
	case *ast.BinaryExpr:
		return true // comparisons (buf == nil) don't retain
	}
	return false
}
