package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocHygieneAnalyzer flags per-iteration tensor/buffer allocations inside
// loops when the allocation size is loop-invariant and the buffer never
// escapes the iteration — the pattern behind avoidable per-batch garbage in
// training hot loops. Such a buffer can be hoisted above the loop and
// reused.
//
// Scope is deliberately narrow to stay high-precision: only direct
// assignments `x := make([]float32|float64, ...)` or `x := tensor.New(...)`
// are considered, the allocation's arguments must not mention variables
// declared inside the loop (a varying size genuinely needs a fresh
// allocation), and any use of the buffer that could outlive the iteration —
// stored into a struct/map/slice, appended, returned, sent, captured in a
// composite literal or closure, aliased, or passed to a non-builtin call —
// disqualifies the finding.
// A second rule covers the step-arena API of internal/tensor: Forward and
// Backward methods on the graph.Layer hot path receive scope-rooted input
// tensors, so allocating their outputs with `tensor.New`/`tensor.Zeros`
// (instead of `tensor.NewFrom`/`tensor.NewFrom2`, which derive from an
// input's allocator) silently opts the layer out of step-scoped buffer
// recycling — correct but a steady-state allocation leak on every batch.
var AllocHygieneAnalyzer = &Analyzer{
	Name: "allochygiene",
	Doc:  "flags hoistable per-iteration buffer allocations in loops and arena-bypassing tensor allocations in layer hot paths",
	Run:  runAllocHygiene,
}

func runAllocHygiene(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.ForStmt:
				checkLoopAllocs(p, n, fn.Body)
			case *ast.RangeStmt:
				checkLoopAllocs(p, n, fn.Body)
			case *ast.FuncDecl:
				checkArenaBypass(p, fn)
			}
			return true
		})
	}
}

// checkArenaBypass flags tensor.New/tensor.Zeros calls inside layer
// Forward/Backward methods — the per-batch hot path where every output
// should derive from a scoped input via tensor.NewFrom so the step arena
// can recycle it.
func checkArenaBypass(p *Pass, fn *ast.FuncDecl) {
	if fn.Body == nil || fn.Recv == nil {
		return
	}
	if fn.Name.Name != "Forward" && fn.Name.Name != "Backward" {
		return
	}
	if !hasTensorSliceParam(p, fn.Type.Params) {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Pkg.Info.ObjectOf(pkgIdent).(*types.PkgName)
		if !ok || pn.Imported().Path() != tensorPkgPath {
			return true
		}
		if sel.Sel.Name == "New" || sel.Sel.Name == "Zeros" {
			p.Reportf(call.Pos(), "tensor.%s in %s bypasses the step arena; derive the output from an input with tensor.NewFrom/NewFrom2", sel.Sel.Name, fn.Name.Name)
		}
		return true
	})
}

const tensorPkgPath = "nautilus/internal/tensor"

// hasTensorSliceParam reports whether the parameter list includes a
// []*tensor.Tensor — the graph.Layer Forward/Backward activation argument.
func hasTensorSliceParam(p *Pass, params *ast.FieldList) bool {
	if params == nil {
		return false
	}
	for _, f := range params.List {
		sl, ok := p.Pkg.Info.TypeOf(f.Type).(*types.Slice)
		if !ok {
			continue
		}
		ptr, ok := sl.Elem().(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Tensor" && obj.Pkg() != nil && obj.Pkg().Path() == tensorPkgPath {
			return true
		}
	}
	return false
}

// checkLoopAllocs inspects one loop's direct body (nested loops are visited
// by their own pass, so each allocation is judged against its innermost
// enclosing loop).
func checkLoopAllocs(p *Pass, loop ast.Node, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false // judged against its own innermost scope
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok || lhs.Name == "_" {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		what := allocKind(p, call)
		if what == "" {
			return true
		}
		if !loopInvariantArgs(p, loop, call.Args) {
			return true
		}
		obj := p.Pkg.Info.ObjectOf(lhs)
		if obj == nil || obj.Pos() != lhs.Pos() {
			return true // not the defining assignment
		}
		if escapesIteration(p, body, obj, lhs) {
			return true
		}
		p.Reportf(as.Pos(), "per-iteration %s with loop-invariant size; hoist the buffer out of the loop and reuse it", what)
		return true
	})
}

// allocKind classifies the call as a flaggable allocation: "" if not one,
// otherwise a short description for the diagnostic.
func allocKind(p *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "make" {
			return ""
		}
		if _, isBuiltin := p.Pkg.Info.ObjectOf(fun).(*types.Builtin); !isBuiltin {
			return ""
		}
		sl, ok := p.Pkg.Info.TypeOf(call).Underlying().(*types.Slice)
		if !ok {
			return ""
		}
		basic, ok := sl.Elem().Underlying().(*types.Basic)
		if !ok {
			return ""
		}
		switch basic.Kind() {
		case types.Float32:
			return "make([]float32)"
		case types.Float64:
			return "make([]float64)"
		}
		return ""
	case *ast.SelectorExpr:
		pkgIdent, ok := fun.X.(*ast.Ident)
		if !ok {
			return ""
		}
		pn, ok := p.Pkg.Info.ObjectOf(pkgIdent).(*types.PkgName)
		if !ok || pn.Imported().Path() != tensorPkgPath {
			return ""
		}
		if fun.Sel.Name == "New" || fun.Sel.Name == "Zeros" {
			return "tensor." + fun.Sel.Name
		}
	}
	return ""
}

// loopInvariantArgs reports whether no variable mentioned in the allocation
// arguments is declared inside the loop (sizes depending on the loop
// variable genuinely need per-iteration allocations).
func loopInvariantArgs(p *Pass, loop ast.Node, args []ast.Expr) bool {
	invariant := true
	for _, a := range args {
		ast.Inspect(a, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := p.Pkg.Info.ObjectOf(id).(*types.Var); ok && within(v.Pos(), loop) {
				invariant = false
			}
			return invariant
		})
	}
	return invariant
}

func within(pos token.Pos, n ast.Node) bool {
	return pos >= n.Pos() && pos <= n.End()
}

// escapesIteration reports whether any use of obj in the loop body could
// let the buffer outlive the iteration. The whitelist covers the ways a
// scratch buffer is legitimately consumed in place: indexing, slicing,
// ranging, receiver of a method/field selection, len/cap/copy, rebinding,
// and nil comparison. Everything else — including passing the buffer to an
// arbitrary function, which may retain it — counts as an escape.
func escapesIteration(p *Pass, body *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == def || p.Pkg.Info.ObjectOf(id) != obj {
			return true
		}
		if !useIsLocal(p, parents, id) {
			escaped = true
		}
		return !escaped
	})
	return escaped
}

// useIsLocal classifies one use of the buffer identifier.
func useIsLocal(p *Pass, parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	var child ast.Node = id
	parent := parents[id]
	for {
		if pe, ok := parent.(*ast.ParenExpr); ok {
			child = pe
			parent = parents[pe]
			continue
		}
		break
	}
	switch pn := parent.(type) {
	case *ast.IndexExpr:
		return pn.X == child // buf[i] read or written
	case *ast.SliceExpr:
		return pn.X == child // buf[lo:hi]
	case *ast.SelectorExpr:
		return pn.X == child // buf.Method(...) / buf.Field
	case *ast.RangeStmt:
		return pn.X == child // for range buf
	case *ast.AssignStmt:
		for _, l := range pn.Lhs {
			if l == child {
				return true // rebinding the plain ident drops the old buffer
			}
		}
		return false // RHS use aliases the buffer
	case *ast.CallExpr:
		fn, ok := pn.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		if _, isBuiltin := p.Pkg.Info.ObjectOf(fn).(*types.Builtin); !isBuiltin {
			return false
		}
		switch fn.Name {
		case "len", "cap", "copy", "clear", "min", "max", "print", "println":
			return true
		}
		return false // append and conversions leak the backing array
	case *ast.BinaryExpr:
		return true // comparisons (buf == nil) don't retain
	}
	return false
}
