package lint

import (
	"go/ast"
	"go/types"
)

// ArenaEscapeAnalyzer tracks tensors allocated under a step-scoped
// tensor.Scope and flags lifetimes that outlive the scope. Scope.Release
// recycles every buffer wholesale, so a scoped tensor that is still
// reachable afterwards is silent data corruption — the next batch
// overwrites its storage in place.
//
// The protocol (live→released, with tensor values derived from the scope)
// is declared as a typestateSpec; the engine's simulation leg supplies the
// forward may-analysis:
//
//   - origins are `s := arena.Scope()` results (and *tensor.Scope
//     parameters);
//   - a value becomes scope-derived when it is assigned from an expression
//     that mentions the scope or an already-derived value (calls with the
//     scope as allocator, method calls and field reads on derived values,
//     composites) and its type can carry tensors;
//   - `s.Release()` marks the scope released on the paths through it;
//     assignment to a tracked variable kills its association.
//
// Two finding classes:
//
//   - use after Release: any use of a derived value (or the scope itself)
//     on a path where its scope may already be released;
//   - escape before Release: a derived value stored into a struct field, a
//     package-level variable, or sent on a channel, while a Release of its
//     scope is still reachable downstream — the stored alias outlives the
//     buffers. Handing a scope off through a channel without releasing it
//     locally (the prefetch-pipeline pattern, where the consumer releases)
//     is deliberately clean.
//
// Test files are skipped.
//
// Interprocedurally, a call handing a tracked scope to a package-local
// helper whose summary releases that parameter on every path counts as
// the Release — both in the release-state transfer (so uses after the
// helper call are flagged) and in the escape check's "Release still
// reachable" test (so helper-mediated cleanup stops being a false
// negative).
var ArenaEscapeAnalyzer = &Analyzer{
	Name:         "arenaescape",
	Doc:          "flags arena-scoped tensors used after Scope.Release or escaping to fields/globals/channels that outlive the scope",
	SummaryAware: true,
	Run:          func(p *Pass) { runTypestate(p, arenaEscapeSpec) },
}

// arenaEscapeSpec declares the scope lifecycle. No obligation leg: a scope
// that is never released is wasteful but not corrupting — the hazards are
// uses and escapes past Release, which the simulation leg reports.
var arenaEscapeSpec = &typestateSpec{
	name:   "arenaescape",
	origin: scopeOrigin,
	valueType: func(p *Pass, t types.Type) bool {
		return namedType(t, tensorPkgPath, "Scope")
	},
	states:     []string{"live", "released"},
	start:      "live",
	paramStart: "live",
	events: []eventSpec{{
		method: "Release",
		fact:   func(f paramFacts) bool { return f.ReleasesScope },
		to:     "released",
	}},
	derived: func(p *Pass, t types.Type) bool { return typeCarriesTensors(t) },
	useInState: map[string]useMsgs{
		"released": {
			derivedMsg: "%s is backed by scope %s, which may already be released here; move the use before Release or copy the tensor out",
			directMsg:  "scope %s may already be released here",
		},
	},
	escapeEvent: "Release",
	escapeMsg:   "%s is backed by scope %s but escapes via %s, and the scope is released before the function returns; copy it out of the scope first",
}

// scopeOrigin matches a call returning *tensor.Scope from a method named
// Scope (i.e. (*tensor.Arena).Scope()).
func scopeOrigin(p *Pass, call *ast.CallExpr) bool {
	if _, ok := methodCallOn(call, "Scope"); !ok {
		return false
	}
	return namedType(p.Pkg.Info.TypeOf(call), tensorPkgPath, "Scope")
}

// typeCarriesTensors reports whether a value of type t can hold (directly
// or through pointers, slices, arrays, maps, channels, or struct fields) a
// tensor.Tensor or tensor.Scope — the types worth tracking through a scope.
func typeCarriesTensors(t types.Type) bool {
	return carriesTensors(t, map[types.Type]bool{}, 0)
}

func carriesTensors(t types.Type, seen map[types.Type]bool, depth int) bool {
	if t == nil || depth > 8 || seen[t] {
		return false
	}
	seen[t] = true
	if namedType(t, tensorPkgPath, "Tensor") || namedType(t, tensorPkgPath, "Scope") {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return carriesTensors(u.Elem(), seen, depth+1)
	case *types.Slice:
		return carriesTensors(u.Elem(), seen, depth+1)
	case *types.Array:
		return carriesTensors(u.Elem(), seen, depth+1)
	case *types.Map:
		return carriesTensors(u.Key(), seen, depth+1) || carriesTensors(u.Elem(), seen, depth+1)
	case *types.Chan:
		return carriesTensors(u.Elem(), seen, depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesTensors(u.Field(i).Type(), seen, depth+1) {
				return true
			}
		}
	case *types.Interface:
		// An empty interface can hold anything — layer caches travel as
		// `any`. Interfaces with methods (error, io.Writer, ...) are not
		// tensor carriers in this codebase; tracking them would taint every
		// err returned from a scope-allocating call.
		return u.NumMethods() == 0
	}
	return false
}
