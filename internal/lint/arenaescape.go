package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ArenaEscapeAnalyzer tracks tensors allocated under a step-scoped
// tensor.Scope and flags lifetimes that outlive the scope. Scope.Release
// recycles every buffer wholesale, so a scoped tensor that is still
// reachable afterwards is silent data corruption — the next batch
// overwrites its storage in place.
//
// Value-origin tracking is a forward may-analysis over the function CFG:
//
//   - origins are `s := arena.Scope()` results (and *tensor.Scope
//     parameters);
//   - a value becomes scope-tainted when it is assigned from an expression
//     that mentions the scope or an already-tainted value (calls with the
//     scope as allocator, method calls and field reads on tainted values,
//     composites) and its type can carry tensors;
//   - `s.Release()` marks the scope released on the paths through it;
//     assignment to a tracked variable kills its taint.
//
// Two finding classes:
//
//   - use after Release: any use of a tainted value (or the scope itself)
//     on a path where its scope may already be released;
//   - escape before Release: a tainted value stored into a struct field, a
//     package-level variable, or sent on a channel, while a Release of its
//     scope is still reachable downstream — the stored alias outlives the
//     buffers. Handing a scope off through a channel without releasing it
//     locally (the prefetch-pipeline pattern, where the consumer releases)
//     is deliberately clean.
//
// Test files are skipped.
//
// Interprocedurally, a call handing a tracked scope to a package-local
// helper whose summary releases that parameter on every path counts as
// the Release — both in the release-state transfer (so uses after the
// helper call are flagged) and in the escape check's "Release still
// reachable" test (so helper-mediated cleanup stops being a false
// negative).
var ArenaEscapeAnalyzer = &Analyzer{
	Name:         "arenaescape",
	Doc:          "flags arena-scoped tensors used after Scope.Release or escaping to fields/globals/channels that outlive the scope",
	SummaryAware: true,
	Run:          runArenaEscape,
}

func runArenaEscape(p *Pass) {
	sums := p.Pkg.summaries()
	for _, f := range p.Pkg.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		funcBodies(f, func(fb funcBody) { arenaEscapeFunc(p, sums, fb) })
	}
}

// arenaFact is the entry state of one CFG node: which scope variables are
// live (and whether they may be released on some path here), and which
// value variables are tainted by which scope.
type arenaFact struct {
	released map[types.Object]bool         // scope var → may be released
	taint    map[types.Object]types.Object // value var → its scope var
}

func newArenaFact() *arenaFact {
	return &arenaFact{released: map[types.Object]bool{}, taint: map[types.Object]types.Object{}}
}

func (a *arenaFact) clone() *arenaFact {
	c := newArenaFact()
	for k, v := range a.released {
		c.released[k] = v
	}
	for k, v := range a.taint {
		c.taint[k] = v
	}
	return c
}

// mergeFrom folds src into a (may-analysis union; released wins over not).
func (a *arenaFact) mergeFrom(src *arenaFact) bool {
	changed := false
	for k, v := range src.released {
		if cur, ok := a.released[k]; !ok || (v && !cur) {
			a.released[k] = cur || v
			changed = true
		}
	}
	for k, v := range src.taint {
		if _, ok := a.taint[k]; !ok {
			a.taint[k] = v
			changed = true
		}
	}
	return changed
}

func arenaEscapeFunc(p *Pass, sums *summarySet, fb funcBody) {
	info := p.Pkg.Info
	cfg := buildCFG(fb.body)

	// Seed: *tensor.Scope parameters are origins with unknown lifetime.
	entry := newArenaFact()
	if fb.typ.Params != nil {
		for _, field := range fb.typ.Params.List {
			for _, name := range field.Names {
				obj := info.ObjectOf(name)
				if obj != nil && namedType(obj.Type(), tensorPkgPath, "Scope") {
					entry.released[obj] = false
				}
			}
		}
	}

	transfer := func(n *cfgNode, in *arenaFact) *arenaFact {
		out := in.clone()
		arenaTransfer(p, sums, n, out)
		return out
	}
	facts := forwardSolve(cfg, entry, transfer,
		func(f *arenaFact) *arenaFact { return f.clone() },
		func(dst, src *arenaFact) bool { return dst.mergeFrom(src) })

	// Reporting sweep: one pass per node against its stable entry fact.
	// Findings dedupe on position (the fixpoint already converged).
	reported := map[token.Pos]bool{}
	for _, n := range cfg.nodes {
		in, ok := facts[n]
		if !ok || n.stmt == nil {
			continue
		}
		arenaReport(p, sums, cfg, n, in, reported)
	}
}

// scopeOrigin matches a call returning *tensor.Scope from a method named
// Scope (i.e. (*tensor.Arena).Scope()).
func scopeOrigin(p *Pass, call *ast.CallExpr) bool {
	if _, ok := methodCallOn(call, "Scope"); !ok {
		return false
	}
	return namedType(p.Pkg.Info.TypeOf(call), tensorPkgPath, "Scope")
}

// arenaTransfer applies one node's effect to the fact in place.
func arenaTransfer(p *Pass, sums *summarySet, n *cfgNode, f *arenaFact) {
	info := p.Pkg.Info
	if _, ok := n.stmt.(*ast.DeferStmt); ok {
		// A deferred Release runs at function exit, not here; modeling it at
		// the defer's position would poison every statement below it.
		// releaseReachable credits it separately for the escape check.
		return
	}
	for _, root := range headerNodes(n) {
		// Release calls: s.Release() with a plain identifier receiver, or a
		// delegation to a local helper that releases its scope argument.
		shallowInspect(root, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recv, ok := methodCallOn(call, "Release"); ok {
				if obj := identObj(info, recv); obj != nil {
					if _, tracked := f.released[obj]; tracked {
						f.released[obj] = true
					}
				}
			}
			for obj := range f.released {
				if sums.callDelegates(call, obj, func(pf paramFacts) bool { return pf.ReleasesScope }) {
					f.released[obj] = true
				}
			}
			return true
		})
	}

	as, ok := n.stmt.(*ast.AssignStmt)
	if !ok || as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN ||
		as.Tok == token.MUL_ASSIGN || as.Tok == token.QUO_ASSIGN {
		return
	}
	// RHS taint is judged against the pre-assignment state; single-RHS
	// multi-LHS (v, err := call(...)) taints every tensor-carrying LHS.
	rhsTaints := make([]types.Object, len(as.Rhs))
	rhsOrigin := make([]bool, len(as.Rhs))
	for i, r := range as.Rhs {
		if call, ok := r.(*ast.CallExpr); ok && scopeOrigin(p, call) {
			rhsOrigin[i] = true
			continue
		}
		rhsTaints[i] = taintOf(info, r, f)
	}
	for i, l := range as.Lhs {
		obj := identObj(info, l)
		if obj == nil || obj.Name() == "_" {
			continue
		}
		ri := i
		if len(as.Rhs) == 1 {
			ri = 0
		}
		// Kill first: any assignment severs the old association.
		delete(f.taint, obj)
		if _, wasScope := f.released[obj]; wasScope {
			delete(f.released, obj)
		}
		switch {
		case rhsOrigin[ri] && len(as.Rhs) == len(as.Lhs):
			f.released[obj] = false
		case rhsTaints[ri] != nil && typeCarriesTensors(obj.Type()):
			f.taint[obj] = rhsTaints[ri]
		}
	}
}

// taintOf returns the scope object tainting expression e, or nil: e mentions
// a tracked scope or a tainted value (skipping nested function literals).
func taintOf(info *types.Info, e ast.Expr, f *arenaFact) types.Object {
	var scope types.Object
	shallowInspect(e, func(n ast.Node) bool {
		if scope != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return true
		}
		if _, ok := f.released[obj]; ok {
			scope = obj
			return false
		}
		if s, ok := f.taint[obj]; ok {
			scope = s
			return false
		}
		return true
	})
	return scope
}

// arenaReport emits findings for one node given its entry fact.
func arenaReport(p *Pass, sums *summarySet, cfg *funcCFG, n *cfgNode, in *arenaFact, reported map[token.Pos]bool) {
	info := p.Pkg.Info
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			p.Reportf(pos, format, args...)
		}
	}

	// Use after Release: any mention of a tainted value (or released scope)
	// whose scope may be released at entry. The defining assignment itself
	// re-taints, so skip LHS positions.
	lhs := map[ast.Node]bool{}
	if as, ok := n.stmt.(*ast.AssignStmt); ok {
		for _, l := range as.Lhs {
			lhs[l] = true
		}
	}
	for _, root := range headerNodes(n) {
		shallowInspect(root, func(x ast.Node) bool {
			if lhs[x] {
				return false
			}
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.ObjectOf(id)
			if obj == nil {
				return true
			}
			if s, ok := in.taint[obj]; ok && in.released[s] {
				report(id.Pos(), "%s is backed by scope %s, which may already be released here; move the use before Release or copy the tensor out", obj.Name(), s.Name())
			} else if rel, ok := in.released[obj]; ok && rel && !isReleaseReceiver(n, id) {
				report(id.Pos(), "scope %s may already be released here", obj.Name())
			}
			return true
		})
	}

	// Escape before Release: a tainted value stored to a field, a package-
	// level variable, or sent on a channel, with the scope's Release still
	// reachable downstream.
	escape := func(stored ast.Expr, pos token.Pos, how string) {
		obj := storedTaintedObj(info, stored, in)
		if obj == nil {
			return
		}
		s := in.taint[obj]
		if s == nil {
			return
		}
		if releaseReachable(p, sums, cfg, n, s) {
			report(pos, "%s is backed by scope %s but escapes via %s, and the scope is released before the function returns; copy it out of the scope first", obj.Name(), s.Name(), how)
		}
	}
	switch st := n.stmt.(type) {
	case *ast.AssignStmt:
		for i, l := range st.Lhs {
			ri := i
			if len(st.Rhs) == 1 {
				ri = 0
			}
			if _, ok := l.(*ast.SelectorExpr); ok {
				escape(st.Rhs[ri], st.Pos(), "a struct field")
				continue
			}
			if obj := identObj(info, l); obj != nil {
				if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					escape(st.Rhs[ri], st.Pos(), "a package-level variable")
				}
			}
		}
	case *ast.SendStmt:
		escape(st.Value, st.Pos(), "a channel send")
	}
}

// isReleaseReceiver reports whether id is the receiver of the node's own
// s.Release() call (which is a legitimate final use).
func isReleaseReceiver(n *cfgNode, id *ast.Ident) bool {
	found := false
	for _, root := range headerNodes(n) {
		shallowInspect(root, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recv, ok := methodCallOn(call, "Release"); ok && recv == id {
				found = true
				return false
			}
			return true
		})
	}
	return found
}

// storedTaintedObj unwraps the stored expression to a plain tainted
// identifier (through parens and unary &).
func storedTaintedObj(info *types.Info, e ast.Expr, f *arenaFact) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				e = x.X
				continue
			}
		}
		break
	}
	obj := identObj(info, e)
	if obj == nil {
		return nil
	}
	if _, ok := f.taint[obj]; !ok {
		return nil
	}
	return obj
}

// releaseReachable reports whether a Release of scope s can execute after
// node n: a plain Release (or a delegation to a local helper that releases
// its scope argument) on a downstream node, or the deferred form of either
// anywhere (defers run at function exit, which is always downstream).
func releaseReachable(p *Pass, sums *summarySet, cfg *funcCFG, n *cfgNode, s types.Object) bool {
	info := p.Pkg.Info
	releasesScope := func(f paramFacts) bool { return f.ReleasesScope }
	isRelease := func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return false
		}
		if recv, ok := methodCallOn(call, "Release"); ok && identObj(info, recv) == s {
			return true
		}
		return sums.callDelegates(call, s, releasesScope)
	}
	for _, m := range cfg.nodes {
		ds, ok := m.stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		deferred := false
		ast.Inspect(ds.Call, func(x ast.Node) bool {
			if isRelease(x) {
				deferred = true
			}
			return !deferred
		})
		if deferred {
			return true
		}
	}
	for m := range cfg.reachableFrom(n) {
		if m.stmt == nil {
			continue
		}
		if headerContains(m, isRelease) {
			return true
		}
	}
	return false
}

// typeCarriesTensors reports whether a value of type t can hold (directly
// or through pointers, slices, arrays, maps, channels, or struct fields) a
// tensor.Tensor or tensor.Scope — the types worth tracking through a scope.
func typeCarriesTensors(t types.Type) bool {
	return carriesTensors(t, map[types.Type]bool{}, 0)
}

func carriesTensors(t types.Type, seen map[types.Type]bool, depth int) bool {
	if t == nil || depth > 8 || seen[t] {
		return false
	}
	seen[t] = true
	if namedType(t, tensorPkgPath, "Tensor") || namedType(t, tensorPkgPath, "Scope") {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return carriesTensors(u.Elem(), seen, depth+1)
	case *types.Slice:
		return carriesTensors(u.Elem(), seen, depth+1)
	case *types.Array:
		return carriesTensors(u.Elem(), seen, depth+1)
	case *types.Map:
		return carriesTensors(u.Key(), seen, depth+1) || carriesTensors(u.Elem(), seen, depth+1)
	case *types.Chan:
		return carriesTensors(u.Elem(), seen, depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesTensors(u.Field(i).Type(), seen, depth+1) {
				return true
			}
		}
	case *types.Interface:
		// An empty interface can hold anything — layer caches travel as
		// `any`. Interfaces with methods (error, io.Writer, ...) are not
		// tensor carriers in this codebase; tracking them would taint every
		// err returned from a scope-allocating call.
		return u.NumMethods() == 0
	}
	return false
}
