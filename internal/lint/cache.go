package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// cacheVersion invalidates every entry when the on-disk format changes.
const cacheVersion = "v1"

// lintSrcRel is the module-relative directory holding the analyzer
// implementation; its source hash is part of every cache key, so editing
// any analyzer (or the engine underneath it) invalidates the whole cache.
const lintSrcRel = "internal/lint"

// Cache is the on-disk incremental result store: one JSON entry per
// package, keyed by a hash of everything that can change the package's
// findings — the analyzer set, the tool's own sources, the Go version, the
// loader configuration, and the package's sources together with the
// sources of every module-internal package it (transitively) imports.
//
// A hit replays the stored findings without parsing or type-checking the
// package; a warm `nautilus-lint -cache ./...` on an unchanged tree does
// no type-checking at all. The key covers transitive module-internal deps
// because analyzers see through imports (types, and one level of summary
// facts come from them), so a dep edit can change a dependent's findings.
// Keys are content hashes: results replay deterministically, and a stale
// entry can never match.
type Cache struct {
	// Dir is the absolute cache directory (.nautilus-lint-cache by default).
	Dir string

	loader *Loader
	prefix string // run configuration: version, toolchain, tool, analyzers, flags

	srcHashes map[string]string   // package dir → source hash
	deps      map[string][]string // package dir → module-internal import dirs
	closures  map[string][]string // package dir → sorted transitive dep dirs
}

// OpenCache creates (if needed) and opens the cache directory. A relative
// dir is taken relative to the module root; an empty dir selects
// ".nautilus-lint-cache" at the module root.
func OpenCache(dir string, l *Loader, analyzers []*Analyzer) (*Cache, error) {
	if dir == "" {
		dir = ".nautilus-lint-cache"
	}
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.ModuleRoot, dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &Cache{
		Dir:       dir,
		loader:    l,
		srcHashes: map[string]string{},
		deps:      map[string][]string{},
		closures:  map[string][]string{},
	}
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	toolHash, err := c.srcHash(filepath.Join(l.ModuleRoot, filepath.FromSlash(lintSrcRel)))
	if err != nil {
		// The analyzer sources are not where this module keeps them —
		// degrade to version-only invalidation rather than failing.
		toolHash = "no-tool-src"
	}
	c.prefix = strings.Join([]string{
		cacheVersion,
		runtime.Version(),
		toolHash,
		strings.Join(names, ","),
		strconv.FormatBool(l.IncludeTests),
		l.ModuleRoot,
	}, "\x00")
	return c, nil
}

// srcHash hashes one package directory's Go sources (memoized): file names
// and contents, test files included — a test-file edit may change the
// test-augmented type-check, and over-invalidating a dependent costs one
// re-analysis while under-invalidating costs a wrong replay.
func (c *Cache) srcHash(dir string) (string, error) {
	if h, ok := c.srcHashes[dir]; ok {
		return h, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\x00%d\x00", name, len(b))
		h.Write(b)
	}
	sum := hex.EncodeToString(h.Sum(nil))
	c.srcHashes[dir] = sum
	return sum, nil
}

// importDirs returns the directories of the module-internal packages dir's
// sources import (memoized). Imports are read with an ImportsOnly parse —
// no type-checking — over every Go file, test files and build-constrained
// variants included (an over-approximation of the compiled import set).
func (c *Cache) importDirs(dir string) ([]string, error) {
	if ds, ok := c.deps[dir]; ok {
		return ds, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	l := c.loader
	fset := token.NewFileSet()
	seen := map[string]bool{}
	var dirs []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path != l.ModulePath && !strings.HasPrefix(path, l.ModulePath+"/") {
				continue
			}
			d := l.dirFor(path)
			if d != dir && !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	c.deps[dir] = dirs
	return dirs, nil
}

// closure returns the sorted transitive module-internal import closure of
// dir, dir itself included (memoized, cycle-safe).
func (c *Cache) closure(dir string) ([]string, error) {
	if cl, ok := c.closures[dir]; ok {
		return cl, nil
	}
	seen := map[string]bool{}
	var walk func(d string) error
	walk = func(d string) error {
		if seen[d] {
			return nil
		}
		seen[d] = true
		deps, err := c.importDirs(d)
		if err != nil {
			return err
		}
		for _, dep := range deps {
			if err := walk(dep); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(dir); err != nil {
		return nil, err
	}
	cl := make([]string, 0, len(seen))
	for d := range seen {
		cl = append(cl, d)
	}
	sort.Strings(cl)
	c.closures[dir] = cl
	return cl, nil
}

// Key computes the cache key for one package: the run-configuration prefix
// plus (dir, source hash) for every directory in the package's transitive
// module-internal import closure.
func (c *Cache) Key(ref PackageRef) (string, error) {
	cl, err := c.closure(ref.Dir)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00", c.prefix, ref.Path)
	for _, d := range cl {
		sh, err := c.srcHash(d)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\x00%s\x00", d, sh)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cacheEntry is the stored result for one package.
type cacheEntry struct {
	Key      string       `json:"key"`
	Package  string       `json:"package"`
	Findings []Diagnostic `json:"findings"`
}

// entryPath maps an import path to its entry file.
func (c *Cache) entryPath(pkgPath string) string {
	return filepath.Join(c.Dir, strings.ReplaceAll(pkgPath, "/", "__")+".json")
}

// Get returns the stored findings for the package if the stored key
// matches — i.e. nothing that could change the findings has changed.
func (c *Cache) Get(pkgPath, key string) ([]Diagnostic, bool) {
	b, err := os.ReadFile(c.entryPath(pkgPath))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(b, &e) != nil || e.Key != key || e.Package != pkgPath {
		return nil, false
	}
	return e.Findings, true
}

// Put stores the findings for one package under key. Writes go through a
// temp file + rename so a crashed run never leaves a torn entry.
func (c *Cache) Put(pkgPath, key string, findings []Diagnostic) error {
	if findings == nil {
		findings = []Diagnostic{}
	}
	b, err := json.Marshal(cacheEntry{Key: key, Package: pkgPath, Findings: findings})
	if err != nil {
		return err
	}
	dst := c.entryPath(pkgPath)
	tmp := dst + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, dst)
}

// CacheStats summarizes one cached sweep.
type CacheStats struct {
	// Hits is the number of packages replayed from the cache.
	Hits int
	// Misses is the number of packages analyzed and stored.
	Misses int
}

// AnalyzeCached is Analyze behind the incremental cache: patterns resolve
// to packages without type-checking, unchanged packages replay their
// stored findings, and only the misses are loaded, analyzed, and stored.
// The merged findings are sorted exactly as Analyze sorts them, so warm
// and cold runs print byte-identical output. Replayed packages report zero
// wall time; Analyzers timings cover only the analyzed misses.
func AnalyzeCached(l *Loader, c *Cache, analyzers []*Analyzer, patterns ...string) (Result, CacheStats, error) {
	var res Result
	var stats CacheStats

	refs, err := l.ResolvePackages(patterns...)
	if err != nil {
		return res, stats, err
	}
	keys := map[string]string{}
	var misses []PackageRef
	for _, ref := range refs {
		key, err := c.Key(ref)
		if err != nil {
			return res, stats, err
		}
		keys[ref.Path] = key
		if findings, ok := c.Get(ref.Path, key); ok {
			stats.Hits++
			res.Findings = append(res.Findings, findings...)
			res.Packages = append(res.Packages, PackageTiming{Package: ref.Path})
			continue
		}
		stats.Misses++
		misses = append(misses, ref)
	}

	if len(misses) > 0 {
		var pkgs []*Package
		dirToPath := map[string]string{}
		for _, ref := range misses {
			pkg, err := l.analysisPackage(ref.Path)
			if err != nil {
				return res, stats, err
			}
			pkgs = append(pkgs, pkg)
			dirToPath[ref.Dir] = ref.Path
		}
		fresh := Analyze(pkgs, analyzers, l.Fset)
		perPkg := map[string][]Diagnostic{}
		for _, ref := range misses {
			perPkg[ref.Path] = []Diagnostic{}
		}
		for _, d := range fresh.Findings {
			if path, ok := dirToPath[filepath.Dir(d.File)]; ok {
				perPkg[path] = append(perPkg[path], d)
			}
		}
		for _, ref := range misses {
			if err := c.Put(ref.Path, keys[ref.Path], perPkg[ref.Path]); err != nil {
				return res, stats, err
			}
		}
		res.Findings = append(res.Findings, fresh.Findings...)
		res.Packages = append(res.Packages, fresh.Packages...)
		res.Analyzers = fresh.Analyzers
	} else {
		res.Analyzers = make([]AnalyzerTiming, len(analyzers))
		for i, a := range analyzers {
			res.Analyzers[i] = AnalyzerTiming{Analyzer: a.Name}
		}
	}

	SortDiagnostics(res.Findings)
	sort.Slice(res.Packages, func(i, j int) bool { return res.Packages[i].Package < res.Packages[j].Package })
	return res, stats, nil
}
