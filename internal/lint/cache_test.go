package lint_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nautilus/internal/lint"
)

// writeTempModule lays out a throwaway Go module for cache tests: two
// packages where b imports a, and a floateq violation in each so every
// package contributes at least one finding to replay.
func writeTempModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.21\n",
		"a/a.go": "package a\n\nfunc Eq(x, y float64) bool { return x == y }\n",
		"b/b.go": "package b\n\nimport \"tmpmod/a\"\n\nfunc Use(x float64) bool { return a.Eq(x, 0.1) && x == 0.2 }\n",
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// sweep runs one AnalyzeCached pass with a fresh loader (a fresh loader is
// what a new CLI process has — reusing one would hide type-check cost in
// its memoization, not in the cache under test).
func sweep(t *testing.T, root, cacheDir string, spec string) (lint.Result, lint.CacheStats) {
	t.Helper()
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	analyzers, err := lint.SelectAnalyzers(lint.DefaultAnalyzers(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := lint.OpenCache(cacheDir, loader, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := lint.AnalyzeCached(loader, cache, analyzers, "./...")
	if err != nil {
		t.Fatal(err)
	}
	return res, stats
}

// TestCacheWarmReplayIdentical pins the cache's core contract: a cold
// sweep populates, a warm sweep replays every package without analyzing,
// and the two produce identical findings in identical order.
func TestCacheWarmReplayIdentical(t *testing.T) {
	root := writeTempModule(t)

	cold, coldStats := sweep(t, root, "", "")
	if coldStats.Hits != 0 || coldStats.Misses != 2 {
		t.Fatalf("cold stats = %+v, want 0 hits / 2 misses", coldStats)
	}
	if len(cold.Findings) == 0 {
		t.Fatal("fixture module produced no findings; the replay test is vacuous")
	}

	warm, warmStats := sweep(t, root, "", "")
	if warmStats.Hits != 2 || warmStats.Misses != 0 {
		t.Fatalf("warm stats = %+v, want 2 hits / 0 misses", warmStats)
	}
	if !reflect.DeepEqual(cold.Findings, warm.Findings) {
		t.Errorf("warm findings differ from cold:\n cold: %+v\n warm: %+v", cold.Findings, warm.Findings)
	}
}

// TestCacheInvalidation: editing a package re-analyzes it and every
// dependent, and only those.
func TestCacheInvalidation(t *testing.T) {
	root := writeTempModule(t)
	if _, stats := sweep(t, root, "", ""); stats.Misses != 2 {
		t.Fatalf("cold stats = %+v, want 2 misses", stats)
	}

	// Editing the leaf dependent b invalidates b alone.
	bPath := filepath.Join(root, "b", "b.go")
	b, err := os.ReadFile(bPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bPath, append(b, []byte("\n// edited\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, stats := sweep(t, root, "", ""); stats.Hits != 1 || stats.Misses != 1 {
		t.Fatalf("after editing b: stats = %+v, want 1 hit / 1 miss", stats)
	}

	// Editing a invalidates a and its dependent b: b's key covers its
	// transitive module-internal imports.
	aPath := filepath.Join(root, "a", "a.go")
	a, err := os.ReadFile(aPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(aPath, append(a, []byte("\n// edited\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, stats := sweep(t, root, "", ""); stats.Hits != 0 || stats.Misses != 2 {
		t.Fatalf("after editing a: stats = %+v, want 0 hits / 2 misses", stats)
	}
}

// TestCacheKeyedByAnalyzerSet: entries stored for one analyzer set must
// not replay for another.
func TestCacheKeyedByAnalyzerSet(t *testing.T) {
	root := writeTempModule(t)
	if _, stats := sweep(t, root, "", ""); stats.Misses != 2 {
		t.Fatalf("cold stats = %+v, want 2 misses", stats)
	}
	res, stats := sweep(t, root, "", "floateq")
	if stats.Hits != 0 || stats.Misses != 2 {
		t.Fatalf("subset sweep stats = %+v, want 0 hits / 2 misses", stats)
	}
	for _, d := range res.Findings {
		if d.Analyzer != "floateq" {
			t.Errorf("subset sweep leaked finding from %s", d.Analyzer)
		}
	}
}

// TestCacheCorruptEntryIsMiss: a torn or garbage entry file must read as a
// miss, never as a wrong replay.
func TestCacheCorruptEntryIsMiss(t *testing.T) {
	root := writeTempModule(t)
	cacheDir := filepath.Join(root, ".nautilus-lint-cache")
	if _, stats := sweep(t, root, cacheDir, ""); stats.Misses != 2 {
		t.Fatalf("cold stats = %+v, want 2 misses", stats)
	}
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.json"))
	if err != nil || len(entries) != 2 {
		t.Fatalf("want 2 cache entries, got %v (err %v)", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, stats := sweep(t, root, cacheDir, ""); stats.Hits != 1 || stats.Misses != 1 {
		t.Fatalf("after corruption: stats = %+v, want 1 hit / 1 miss", stats)
	}
}
