package lint

import (
	"go/ast"
	"go/types"
)

// This file builds the package-local call graph the interprocedural layer
// (summary.go) is ordered by. Nodes are the package's declared functions
// and methods; edges are direct calls between them, resolved through
// go/types so method calls land on the right *types.Func. Calls through
// function-valued expressions (parameters, fields, interface methods,
// immediately-invoked literals) cannot be resolved statically; they mark
// the caller dynamic, and summary computation treats every such call as
// able to do anything (arguments escape, obligations stay unmet).
//
// Function literals are not graph nodes: consistent with the CFG's
// opaque-literal design, a closure body belongs to its own intraprocedural
// analysis, and calls inside one do not become edges of the enclosing
// declaration. The cost is that obligations discharged inside a closure
// are invisible to summaries — the same caveat the intraprocedural
// analyzers already document.

// cgNode is one declared function or method of the package under analysis.
type cgNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	// callees are the package-local functions this body calls directly,
	// deduplicated, in first-call order.
	callees []*cgNode
	// dynamic records a call through a function value the graph cannot
	// resolve; summaries stay conservative about what such calls do.
	dynamic bool
	// scc is the index of this node's strongly connected component in
	// callGraph.sccs (callee components first).
	scc int

	cfg *funcCFG // built lazily, shared across summary fixpoint iterations
}

// funcCFG returns the node's control-flow graph, building it on first use.
func (n *cgNode) funcCFG() *funcCFG {
	if n.cfg == nil {
		n.cfg = buildCFG(n.decl.Body)
	}
	return n.cfg
}

// selfRecursive reports whether the node calls itself directly.
func (n *cgNode) selfRecursive() bool {
	for _, c := range n.callees {
		if c == n {
			return true
		}
	}
	return false
}

// callGraph is the package-local call graph plus its SCC condensation.
type callGraph struct {
	nodes map[*types.Func]*cgNode
	// order lists nodes in declaration order (file order, then position) —
	// the deterministic iteration order for everything built on the graph.
	order []*cgNode
	// sccs lists strongly connected components bottom-up: every edge
	// leaving a component targets an earlier component, so processing in
	// slice order sees callees before callers.
	sccs [][]*cgNode
}

// buildCallGraph constructs the call graph of one package.
func buildCallGraph(pkg *Package) *callGraph {
	g := &callGraph{nodes: map[*types.Func]*cgNode{}}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &cgNode{fn: fn, decl: fd, scc: -1}
			g.nodes[fn] = n
			g.order = append(g.order, n)
		}
	}
	for _, n := range g.order {
		seen := map[*cgNode]bool{}
		shallowInspect(n.decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			callee := calleeObj(pkg.Info, call)
			switch obj := callee.(type) {
			case *types.Func:
				if t := g.nodes[obj]; t != nil && !seen[t] {
					seen[t] = true
					n.callees = append(n.callees, t)
				}
				// External functions and interface methods are simply out of
				// the graph; call sites consult summaries and find none.
			case *types.Builtin, *types.TypeName, *types.Nil:
				// len/cap/panic/...; type conversions via Ident.
			default:
				// A function-valued variable, field, or literal: unresolvable.
				if _, isLit := call.Fun.(*ast.FuncLit); isLit || isFuncValued(pkg.Info, call.Fun) {
					n.dynamic = true
				}
			}
			return true
		})
	}
	g.condense()
	return g
}

// isFuncValued reports whether e's static type is a function signature.
func isFuncValued(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// condense runs Tarjan's algorithm and records the SCCs in reverse
// topological order (callees before callers) — exactly the order Tarjan
// emits components in.
func (g *callGraph) condense() {
	type frame struct {
		index, lowlink int
		onStack        bool
	}
	state := map[*cgNode]*frame{}
	var stack []*cgNode
	next := 0

	var strongconnect func(n *cgNode)
	strongconnect = func(n *cgNode) {
		f := &frame{index: next, lowlink: next}
		next++
		state[n] = f
		stack = append(stack, n)
		f.onStack = true
		for _, m := range n.callees {
			mf := state[m]
			if mf == nil {
				strongconnect(m)
				if lf := state[m]; lf.lowlink < f.lowlink {
					f.lowlink = lf.lowlink
				}
			} else if mf.onStack && mf.index < f.lowlink {
				f.lowlink = mf.index
			}
		}
		if f.lowlink == f.index {
			var scc []*cgNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				state[m].onStack = false
				m.scc = len(g.sccs)
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			g.sccs = append(g.sccs, scc)
		}
	}
	for _, n := range g.order {
		if state[n] == nil {
			strongconnect(n)
		}
	}
}
