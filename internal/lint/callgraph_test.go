package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typeCheckSrc parses and type-checks a single import-free source file
// into a Package the interprocedural layer can consume.
func typeCheckSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{}
	tpkg, err := conf.Check("x", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "x", Files: []*ast.File{f}, Types: tpkg, Info: info}
}

const cgSrc = `package x

func leaf() int { return 1 }

func a() int { return b() + leaf() }

func b() int { return leaf() }

func f(n int) int {
	if n == 0 {
		return 0
	}
	return g(n - 1)
}

func g(n int) int { return f(n) }

func self(n int) int {
	if n == 0 {
		return 0
	}
	return self(n - 1)
}

type T struct{ v int }

func (t *T) m() int { return t.helper() }

func (t *T) helper() int { return leaf() }

func dyn(fn func() int) int { return fn() }

func lit() int { return func() int { return 2 }() }

func conv(n int) float64 { return float64(n) }
`

func cgNodeByName(t *testing.T, g *callGraph, name string) *cgNode {
	t.Helper()
	for _, n := range g.order {
		if n.fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no call-graph node named %s", name)
	return nil
}

func calleeNames(n *cgNode) []string {
	var out []string
	for _, c := range n.callees {
		out = append(out, c.fn.Name())
	}
	return out
}

func TestCallGraphEdges(t *testing.T) {
	g := buildCallGraph(typeCheckSrc(t, cgSrc))
	cases := map[string][]string{
		"a":      {"b", "leaf"},
		"b":      {"leaf"},
		"leaf":   nil,
		"m":      {"helper"},
		"helper": {"leaf"},
		"conv":   nil, // float64(n) is a conversion, not a call
	}
	for name, want := range cases {
		got := calleeNames(cgNodeByName(t, g, name))
		if len(got) != len(want) {
			t.Errorf("%s callees = %v, want %v", name, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s callees = %v, want %v", name, got, want)
				break
			}
		}
	}
}

func TestCallGraphDynamicFlag(t *testing.T) {
	g := buildCallGraph(typeCheckSrc(t, cgSrc))
	for name, want := range map[string]bool{
		"dyn":  true, // calls its function-valued parameter
		"lit":  true, // immediately-invoked literal
		"a":    false,
		"conv": false,
	} {
		if got := cgNodeByName(t, g, name).dynamic; got != want {
			t.Errorf("%s.dynamic = %v, want %v", name, got, want)
		}
	}
}

func TestCallGraphSelfRecursion(t *testing.T) {
	g := buildCallGraph(typeCheckSrc(t, cgSrc))
	if !cgNodeByName(t, g, "self").selfRecursive() {
		t.Error("self is not marked self-recursive")
	}
	if cgNodeByName(t, g, "a").selfRecursive() {
		t.Error("a is wrongly marked self-recursive")
	}
}

func TestCallGraphSCCs(t *testing.T) {
	g := buildCallGraph(typeCheckSrc(t, cgSrc))
	f, gg := cgNodeByName(t, g, "f"), cgNodeByName(t, g, "g")
	if f.scc != gg.scc {
		t.Errorf("mutually recursive f (scc %d) and g (scc %d) are in different components", f.scc, gg.scc)
	}
	leaf, b := cgNodeByName(t, g, "leaf"), cgNodeByName(t, g, "b")
	if b.scc == leaf.scc {
		t.Error("non-recursive b shares a component with leaf")
	}
	// Bottom-up invariant: every cross-component edge points to an earlier
	// component, so slice order sees callees before callers.
	for _, n := range g.order {
		for _, c := range n.callees {
			if c.scc > n.scc {
				t.Errorf("edge %s -> %s violates bottom-up SCC order (%d -> %d)", n.fn.Name(), c.fn.Name(), n.scc, c.scc)
			}
		}
	}
	if len(g.order) != 11 {
		t.Errorf("call graph has %d nodes, want 11", len(g.order))
	}
	total := 0
	for _, scc := range g.sccs {
		total += len(scc)
	}
	if total != len(g.order) {
		t.Errorf("SCCs cover %d nodes, want %d", total, len(g.order))
	}
}
