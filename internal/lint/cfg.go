package lint

import (
	"go/ast"
	"go/token"
)

// This file is the reusable intraprocedural control-flow layer of the
// dataflow engine: a statement-level CFG over go/ast, consumed by the
// solvers in dataflow.go and the lifetime/concurrency analyzers built on
// them (arenaescape, spanleak, goroutinejoin, chunkdisjoint).
//
// Design choices, tuned for the analyses this repo needs:
//
//   - One node per statement, plus a synthetic exit node. Compound
//     statements (if/for/range/switch/select) get a node for their header;
//     the parts a header actually evaluates are exposed via headerNodes so
//     transfer functions never accidentally scan a nested body.
//   - Explicit panic(...) statements edge straight to exit (and are marked),
//     so "on every path" analyses naturally treat panicking paths as exits
//     that skip any straight-line cleanup below them.
//   - Loops always get an exit edge, even `for {}`: the analyses stay
//     conservative about loops that terminate via panics or runtime exits.
//   - goto, fallthrough, and labeled break/continue — absent from this
//     codebase — conservatively edge to exit rather than modeling label
//     resolution.
//   - Function literals are opaque: a FuncLit inside an expression is data,
//     not control flow, so its body gets no nodes here. Analyzers run each
//     FuncLit body as an independent function via funcBodies.
type cfgNode struct {
	stmt   ast.Stmt // nil for the synthetic exit node
	succs  []*cfgNode
	panics bool // the statement is an explicit panic(...) call
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgNode
	exit   *cfgNode
	nodes  []*cfgNode
	byStmt map[ast.Stmt]*cfgNode
}

// buildCFG constructs the CFG for one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	c := &funcCFG{byStmt: map[ast.Stmt]*cfgNode{}}
	c.exit = &cfgNode{}
	c.nodes = append(c.nodes, c.exit)
	b := &cfgBuilder{cfg: c}
	c.entry = b.block(body.List, c.exit)
	return c
}

type cfgBuilder struct {
	cfg *funcCFG
	// breaks and continues are the innermost-last targets of unlabeled
	// break/continue statements.
	breaks    []*cfgNode
	continues []*cfgNode
}

func (b *cfgBuilder) node(s ast.Stmt) *cfgNode {
	n := &cfgNode{stmt: s}
	b.cfg.nodes = append(b.cfg.nodes, n)
	b.cfg.byStmt[s] = n
	return n
}

// block builds a statement list backwards so each statement links to its
// successor; it returns the entry node of the sequence (next when empty).
func (b *cfgBuilder) block(stmts []ast.Stmt, next *cfgNode) *cfgNode {
	for i := len(stmts) - 1; i >= 0; i-- {
		next = b.stmt(stmts[i], next)
	}
	return next
}

// stmt builds one statement's subgraph and returns its entry node.
func (b *cfgBuilder) stmt(s ast.Stmt, next *cfgNode) *cfgNode {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.block(st.List, next)

	case *ast.LabeledStmt:
		n := b.node(st)
		n.succs = []*cfgNode{b.stmt(st.Stmt, next)}
		return n

	case *ast.ReturnStmt:
		n := b.node(st)
		n.succs = []*cfgNode{b.cfg.exit}
		return n

	case *ast.BranchStmt:
		n := b.node(st)
		switch {
		case st.Tok == token.BREAK && st.Label == nil && len(b.breaks) > 0:
			n.succs = []*cfgNode{b.breaks[len(b.breaks)-1]}
		case st.Tok == token.CONTINUE && st.Label == nil && len(b.continues) > 0:
			n.succs = []*cfgNode{b.continues[len(b.continues)-1]}
		default:
			// goto / fallthrough / labeled branches: conservative exit edge.
			n.succs = []*cfgNode{b.cfg.exit}
		}
		return n

	case *ast.IfStmt:
		n := b.node(st)
		thenEntry := b.block(st.Body.List, next)
		elseEntry := next
		if st.Else != nil {
			elseEntry = b.stmt(st.Else, next)
		}
		n.succs = []*cfgNode{thenEntry, elseEntry}
		return b.withInit(st.Init, n)

	case *ast.ForStmt:
		cond := b.node(st)
		backEdge := cond
		if st.Post != nil {
			post := b.node(st.Post)
			post.succs = []*cfgNode{cond}
			backEdge = post
		}
		b.breaks = append(b.breaks, next)
		b.continues = append(b.continues, backEdge)
		bodyEntry := b.block(st.Body.List, backEdge)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		cond.succs = []*cfgNode{bodyEntry, next}
		return b.withInit(st.Init, cond)

	case *ast.RangeStmt:
		n := b.node(st)
		b.breaks = append(b.breaks, next)
		b.continues = append(b.continues, n)
		bodyEntry := b.block(st.Body.List, n)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		n.succs = []*cfgNode{bodyEntry, next}
		return n

	case *ast.SwitchStmt:
		return b.switchStmt(st, st.Init, st.Body, next)

	case *ast.TypeSwitchStmt:
		return b.switchStmt(st, st.Init, st.Body, next)

	case *ast.SelectStmt:
		n := b.node(st)
		b.breaks = append(b.breaks, next)
		for _, cl := range st.Body.List {
			cc := cl.(*ast.CommClause)
			bodyEntry := b.block(cc.Body, next)
			if cc.Comm != nil {
				comm := b.node(cc.Comm)
				comm.succs = []*cfgNode{bodyEntry}
				bodyEntry = comm
			}
			n.succs = append(n.succs, bodyEntry)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if len(n.succs) == 0 {
			n.succs = []*cfgNode{next}
		}
		return n

	default:
		n := b.node(s)
		if isPanicStmt(s) {
			n.panics = true
			n.succs = []*cfgNode{b.cfg.exit}
		} else {
			n.succs = []*cfgNode{next}
		}
		return n
	}
}

// withInit prepends a node for a compound statement's init clause.
func (b *cfgBuilder) withInit(init ast.Stmt, entry *cfgNode) *cfgNode {
	if init == nil {
		return entry
	}
	in := b.node(init)
	in.succs = []*cfgNode{entry}
	return in
}

// switchStmt builds an (expression or type) switch: the header fans out to
// every clause body; control reaches next directly only when no default
// clause exists. fallthrough is handled by the conservative BranchStmt
// default (edge to exit); this codebase doesn't use it.
func (b *cfgBuilder) switchStmt(st ast.Stmt, init ast.Stmt, body *ast.BlockStmt, next *cfgNode) *cfgNode {
	n := b.node(st)
	b.breaks = append(b.breaks, next)
	hasDefault := false
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		n.succs = append(n.succs, b.block(cc.Body, next))
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	if !hasDefault {
		n.succs = append(n.succs, next)
	}
	return b.withInit(init, n)
}

// isPanicStmt reports whether s is a bare panic(...) call statement.
func isPanicStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic" && id.Obj == nil
}

// headerNodes returns the AST parts a CFG node actually evaluates: for
// compound statements just the header expressions (never a nested body,
// which has its own nodes), for plain statements the statement itself.
// Callers that scan these for calls or identifier uses should skip nested
// *ast.FuncLit subtrees via shallowInspect — a closure body is data here,
// not control flow.
func headerNodes(n *cfgNode) []ast.Node {
	var out []ast.Node
	add := func(e ast.Expr) {
		if e != nil {
			out = append(out, e)
		}
	}
	switch st := n.stmt.(type) {
	case nil: // synthetic exit
	case *ast.IfStmt:
		add(st.Cond)
	case *ast.ForStmt:
		add(st.Cond)
	case *ast.RangeStmt:
		add(st.Key)
		add(st.Value)
		add(st.X)
	case *ast.SwitchStmt:
		add(st.Tag)
	case *ast.TypeSwitchStmt:
		if st.Assign != nil {
			out = append(out, st.Assign)
		}
	case *ast.SelectStmt, *ast.LabeledStmt:
		// Headers evaluate nothing; clause comms / inner statements have
		// their own nodes.
	default:
		out = append(out, n.stmt)
	}
	return out
}

// shallowInspect walks each root like ast.Inspect but does not descend into
// function literals: a FuncLit's body belongs to its own analysis, not to
// the enclosing function's statements.
func shallowInspect(root ast.Node, f func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return f(n)
	})
}

// headerContains reports whether pred holds for any node in the parts the
// CFG node evaluates, skipping nested function literals.
func headerContains(n *cfgNode, pred func(ast.Node) bool) bool {
	found := false
	for _, root := range headerNodes(n) {
		shallowInspect(root, func(x ast.Node) bool {
			if found {
				return false
			}
			if pred(x) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return found
}
