package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src (a complete file) and returns the body of its first
// function declaration.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "cfg_test_src.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// nodeCalling finds the CFG node whose statement is a call to the named
// function (or whose header contains one).
func nodeCalling(t *testing.T, cfg *funcCFG, name string) *cfgNode {
	t.Helper()
	for _, n := range cfg.nodes {
		if n.stmt == nil {
			continue
		}
		if headerContains(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == name
		}) {
			return n
		}
	}
	t.Fatalf("no node calling %s", name)
	return nil
}

func callsTo(name string) func(*cfgNode) bool {
	return func(n *cfgNode) bool {
		return headerContains(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == name
		})
	}
}

func TestMustPassEarlyReturn(t *testing.T) {
	cfg := buildCFG(parseBody(t, `package p
func f(a bool) int {
	acquire()
	if a {
		return 0
	}
	release()
	return 1
}`))
	origin := nodeCalling(t, cfg, "acquire")
	if cfg.mustPassFrom(origin, callsTo("release")) {
		t.Error("must-pass held despite the early return skipping release")
	}
}

func TestMustPassBothBranches(t *testing.T) {
	cfg := buildCFG(parseBody(t, `package p
func f(a bool) int {
	acquire()
	if a {
		release()
		return 0
	}
	release()
	return 1
}`))
	origin := nodeCalling(t, cfg, "acquire")
	if !cfg.mustPassFrom(origin, callsTo("release")) {
		t.Error("must-pass failed although both branches release")
	}
}

func TestMustPassPanicEdge(t *testing.T) {
	cfg := buildCFG(parseBody(t, `package p
func f(a bool) {
	acquire()
	if a {
		panic("boom")
	}
	release()
}`))
	origin := nodeCalling(t, cfg, "acquire")
	if cfg.mustPassFrom(origin, callsTo("release")) {
		t.Error("must-pass held although the panic path skips release")
	}
	marked := false
	for _, n := range cfg.nodes {
		if n.panics {
			marked = true
			if len(n.succs) != 1 || n.succs[0] != cfg.exit {
				t.Error("panic node does not edge straight to exit")
			}
		}
	}
	if !marked {
		t.Error("no CFG node marked as panicking")
	}
}

func TestMustPassThroughLoop(t *testing.T) {
	// The release after the loop dominates the exit even with the loop's
	// back edge; the conservative loop-exit edge must not break it.
	cfg := buildCFG(parseBody(t, `package p
func f(n int) {
	acquire()
	for i := 0; i < n; i++ {
		work(i)
	}
	release()
}`))
	origin := nodeCalling(t, cfg, "acquire")
	if !cfg.mustPassFrom(origin, callsTo("release")) {
		t.Error("must-pass lost through the loop back edge")
	}
}

func TestMustPassBreakSkips(t *testing.T) {
	// A break jumps past the release inside the loop body.
	cfg := buildCFG(parseBody(t, `package p
func f(n int) {
	acquire()
	for i := 0; i < n; i++ {
		if i > 2 {
			break
		}
		release()
	}
}`))
	origin := nodeCalling(t, cfg, "acquire")
	if cfg.mustPassFrom(origin, callsTo("release")) {
		t.Error("must-pass held although break (and the zero-iteration case) skip release")
	}
}

func TestReachableFromBranches(t *testing.T) {
	cfg := buildCFG(parseBody(t, `package p
func f(a bool) {
	if a {
		left()
	} else {
		right()
	}
	after()
}`))
	from := nodeCalling(t, cfg, "left")
	reach := cfg.reachableFrom(from)
	if !reach[nodeCalling(t, cfg, "after")] {
		t.Error("statement after the branch not reachable from the then-arm")
	}
	if reach[nodeCalling(t, cfg, "right")] {
		t.Error("else-arm spuriously reachable from the then-arm")
	}
	if !reach[cfg.exit] {
		t.Error("exit not reachable")
	}
}

func TestSwitchDefaultBlocksFallthroughEdge(t *testing.T) {
	// With a default clause, control cannot skip the switch body entirely.
	cfg := buildCFG(parseBody(t, `package p
func f(k int) {
	acquire()
	switch k {
	case 0:
		release()
	default:
		release()
	}
}`))
	origin := nodeCalling(t, cfg, "acquire")
	if !cfg.mustPassFrom(origin, callsTo("release")) {
		t.Error("must-pass failed although every switch clause releases")
	}

	// Without a default, the no-match path skips every clause.
	cfg = buildCFG(parseBody(t, `package p
func f(k int) {
	acquire()
	switch k {
	case 0:
		release()
	}
}`))
	origin = nodeCalling(t, cfg, "acquire")
	if cfg.mustPassFrom(origin, callsTo("release")) {
		t.Error("must-pass held although a defaultless switch can match nothing")
	}
}

func TestForwardSolveLoopFixpoint(t *testing.T) {
	// A gen-only may-analysis: collect the names of called functions on
	// paths into each node. The loop's back edge must propagate the body's
	// calls around the cycle, and the solver must terminate.
	cfg := buildCFG(parseBody(t, `package p
func f(n int) {
	before()
	for i := 0; i < n; i++ {
		inside()
	}
	after()
}`))
	type fact = map[string]bool
	transfer := func(n *cfgNode, in fact) fact {
		out := make(fact, len(in)+1)
		for k := range in {
			out[k] = true
		}
		for _, root := range headerNodes(n) {
			shallowInspect(root, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
				return true
			})
		}
		return out
	}
	clone := func(f fact) fact { return transfer(&cfgNode{}, f) }
	merge := func(dst, src fact) bool {
		changed := false
		for k := range src {
			if !dst[k] {
				dst[k] = true
				changed = true
			}
		}
		return changed
	}
	facts := forwardSolve(cfg, fact{}, transfer, clone, merge)

	afterIn := facts[nodeCalling(t, cfg, "after")]
	for _, want := range []string{"before", "inside"} {
		if !afterIn[want] {
			t.Errorf("fact at after() is missing %q: %v", want, afterIn)
		}
	}
	insideIn := facts[nodeCalling(t, cfg, "inside")]
	if !insideIn["inside"] {
		t.Error("loop back edge did not propagate the body's own call")
	}
	if insideIn["after"] {
		t.Error("fact flowed backwards from after() into the loop body")
	}
}

func TestHeaderNodesExcludeNestedBodies(t *testing.T) {
	// The if-statement's CFG node must expose only its condition: the call
	// inside its body belongs to the body's own node.
	body := parseBody(t, `package p
func f(a bool) {
	if cond(a) {
		inside()
	}
}`)
	cfg := buildCFG(body)
	var ifNode *cfgNode
	for _, n := range cfg.nodes {
		if _, ok := n.stmt.(*ast.IfStmt); ok {
			ifNode = n
		}
	}
	if ifNode == nil {
		t.Fatal("no if node in CFG")
	}
	if !headerContains(ifNode, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "cond"
	}) {
		t.Error("if header does not expose its condition")
	}
	if headerContains(ifNode, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "inside"
	}) {
		t.Error("if header leaks its nested body")
	}
}

func TestFuncLitsAreOpaque(t *testing.T) {
	// A function literal's body contributes no nodes to the enclosing CFG,
	// and funcBodies yields it as an independent unit.
	src := `package p
func f() {
	g := func() {
		inner()
	}
	g()
}`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "lit.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	var bodies []funcBody
	funcBodies(file, func(fb funcBody) { bodies = append(bodies, fb) })
	if len(bodies) != 2 {
		t.Fatalf("funcBodies yielded %d bodies, want 2 (decl + literal)", len(bodies))
	}
	cfg := buildCFG(bodies[0].body)
	for _, n := range cfg.nodes {
		if n.stmt == nil {
			continue
		}
		if headerContains(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == "inner"
		}) {
			t.Error("literal body leaked into the enclosing CFG")
		}
	}
	litCFG := buildCFG(bodies[1].body)
	found := false
	for _, n := range litCFG.nodes {
		if n.stmt != nil && strings.Contains(stmtText(n.stmt), "inner") {
			found = true
		}
	}
	if !found {
		t.Error("literal's own CFG is missing its body")
	}
}

// stmtText renders a statement's call name crudely for assertions.
func stmtText(s ast.Stmt) string {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return ""
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return ""
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
