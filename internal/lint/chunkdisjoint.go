package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChunkDisjointAnalyzer checks tensor.Parallel callbacks: every chunk
// `func(lo, hi)` must write only state derived from its own [lo,hi) range.
// Parallel's contract (and the reason fused training stays bit-identical
// under parallel kernels) is that each output element is owned by exactly
// one chunk; a write whose index can alias across chunks, or a write to a
// variable shared between chunks, is a data race that -race only catches
// when the scheduler cooperates.
//
// The check runs a derivation fixpoint per callback: the derived set D
// starts with the callback's two bound parameters and grows through
// assignments whose right side mentions a member of D (loop variables
// `for i := lo`, row aliases `row := out.Row(r)`, multi-assign positions,
// if-init bindings). Then every write in the callback must satisfy one of:
//
//   - the target is declared inside the callback (chunk-local state);
//   - the target is an index/slice expression whose index mentions a
//     member of D, or whose base is a member of D (a slice carved from the
//     chunk's own range);
//   - for copy(dst, ...), the same conditions on dst.
//
// Writes to captured plain variables are shared-state races; an index
// containing a modulo (`out[i%k]`) aliases across chunks by construction
// and is flagged even though it mentions a derived variable. Test files
// are skipped.
var ChunkDisjointAnalyzer = &Analyzer{
	Name: "chunkdisjoint",
	Doc:  "flags tensor.Parallel/parallelFor callbacks whose writes can alias across chunks or touch shared variables without synchronization",
	Run:  runChunkDisjoint,
}

func runChunkDisjoint(p *Pass) {
	for _, f := range p.Pkg.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if lit := parallelCallback(p, call); lit != nil {
				checkChunkCallback(p, lit)
			}
			return true
		})
	}
}

// parallelCallback matches tensor.Parallel(n, work, func(lo, hi int){...})
// — both the qualified form and bare Parallel calls inside package tensor —
// plus tensor's schedule-driven parallelFor(sch, n, work, fn), and returns
// the callback literal. parallelFor carries the same chunk-disjointness
// contract as Parallel (Parallel is now a thin wrapper over it), so tuned
// dispatch sites get the same race check as the seed call sites.
func parallelCallback(p *Pass, call *ast.CallExpr) *ast.FuncLit {
	if len(call.Args) < 1 {
		return nil
	}
	var fnObj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if pkgIdent, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := p.Pkg.Info.ObjectOf(pkgIdent).(*types.PkgName); ok && pn.Imported().Path() == tensorPkgPath {
				fnObj = p.Pkg.Info.ObjectOf(fun.Sel)
			}
		}
	case *ast.Ident:
		fnObj = p.Pkg.Info.ObjectOf(fun)
	}
	if fnObj == nil || (fnObj.Name() != "Parallel" && fnObj.Name() != "parallelFor") || fnObj.Pkg() == nil || fnObj.Pkg().Path() != tensorPkgPath {
		return nil
	}
	lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
	if !ok {
		return nil // named callback: body out of reach
	}
	return lit
}

func checkChunkCallback(p *Pass, lit *ast.FuncLit) {
	info := p.Pkg.Info
	derived := derivedSet(info, lit)

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok && l != lit {
			return false // nested literal: not part of this chunk's writes
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, l := range st.Lhs {
				checkChunkWrite(p, lit, derived, l, st.Pos())
			}
		case *ast.IncDecStmt:
			checkChunkWrite(p, lit, derived, st.X, st.Pos())
		case *ast.CallExpr:
			if fn, ok := st.Fun.(*ast.Ident); ok && fn.Name == "copy" && len(st.Args) == 2 {
				if _, isBuiltin := info.ObjectOf(fn).(*types.Builtin); isBuiltin {
					checkChunkWrite(p, lit, derived, st.Args[0], st.Pos())
				}
			}
		}
		return true
	})
}

// derivedSet computes the fixpoint of variables derived from the callback's
// bound parameters.
func derivedSet(info *types.Info, lit *ast.FuncLit) map[types.Object]bool {
	derived := map[types.Object]bool{}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.ObjectOf(name); obj != nil {
				derived[obj] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, l := range as.Lhs {
				obj := identObj(info, l)
				if obj == nil || derived[obj] {
					continue
				}
				ri := i
				if len(as.Rhs) == 1 {
					ri = 0
				}
				if ri < len(as.Rhs) && mentionsObj(info, as.Rhs[ri], derived) {
					derived[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return derived
}

// checkChunkWrite validates one write target inside a chunk callback.
func checkChunkWrite(p *Pass, lit *ast.FuncLit, derived map[types.Object]bool, target ast.Expr, pos token.Pos) {
	info := p.Pkg.Info
	for {
		pe, ok := target.(*ast.ParenExpr)
		if !ok {
			break
		}
		target = pe.X
	}
	switch t := target.(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return
		}
		obj := info.ObjectOf(t)
		if obj == nil || declaredWithin(obj, lit) {
			return
		}
		p.Reportf(pos, "chunk callback writes shared variable %s; every chunk races on it — make it chunk-local and reduce after Parallel returns", t.Name)
	case *ast.IndexExpr:
		if indexAliases(info, t.Index) {
			p.Reportf(pos, "chunk write index contains %%, which maps multiple chunks onto the same element; index with the chunk's own range instead")
			return
		}
		if mentionsObj(info, t.Index, derived) || chunkLocalBase(info, lit, derived, t.X) {
			return
		}
		p.Reportf(pos, "chunk write index does not depend on the chunk bounds; chunks may write the same element")
	case *ast.SliceExpr:
		if (t.Low != nil && mentionsObj(info, t.Low, derived)) || chunkLocalBase(info, lit, derived, t.X) {
			return
		}
		p.Reportf(pos, "chunk copy target does not depend on the chunk bounds; chunks may write the same range")
	case *ast.SelectorExpr:
		if root := rootIdent(t); root != nil {
			if obj := info.ObjectOf(root); obj != nil && (declaredWithin(obj, lit) || derived[obj]) {
				return
			}
		}
		p.Reportf(pos, "chunk callback writes shared field %s; every chunk races on it", exprString(t))
	case *ast.StarExpr:
		p.Reportf(pos, "chunk callback writes through a shared pointer; every chunk races on it")
	}
}

// chunkLocalBase reports whether the written container is itself owned by
// the chunk: a derived variable (a row carved with the chunk's index) or
// one declared inside the callback.
func chunkLocalBase(info *types.Info, lit *ast.FuncLit, derived map[types.Object]bool, base ast.Expr) bool {
	root := rootIdent(base)
	if root == nil {
		return false
	}
	obj := info.ObjectOf(root)
	if obj == nil {
		return false
	}
	return derived[obj] || declaredWithin(obj, lit)
}

// indexAliases reports whether the index expression contains a modulo.
func indexAliases(info *types.Info, idx ast.Expr) bool {
	found := false
	ast.Inspect(idx, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.REM {
			found = true
		}
		return !found
	})
	return found
}

// exprString renders a short selector chain for diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	}
	return "?"
}
