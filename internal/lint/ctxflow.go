package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlowAnalyzer enforces context propagation: a function that accepts a
// context.Context must thread it through, not drop it. Two shapes are
// flagged:
//
//   - a call passing context.Background() or context.TODO() while the
//     caller's own context parameter is in scope — the fresh context
//     severs cancellation and deadlines from the caller's request. The
//     summary layer refines this: if the callee is package-local and its
//     summary shows the context parameter is never used, substituting a
//     fresh one is harmless and stays clean;
//   - a context parameter that is never mentioned in a non-empty body —
//     either the plumbing was forgotten or the parameter should be
//     renamed _ to declare the intent.
//
// Function literals with their own context parameter are analyzed
// independently (funcBodies visits them); literals without one are
// treated as part of the enclosing function. Test files are skipped.
var CtxFlowAnalyzer = &Analyzer{
	Name:         "ctxflow",
	Doc:          "flags context.Context parameters that are dropped or shadowed by context.Background/TODO at call sites",
	SummaryAware: true,
	Run:          runCtxFlow,
}

func runCtxFlow(p *Pass) {
	sums := p.Pkg.summaries()
	for _, f := range p.Pkg.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		funcBodies(f, func(fb funcBody) { ctxFlowFunc(p, sums, fb) })
	}
}

func ctxFlowFunc(p *Pass, sums *summarySet, fb funcBody) {
	info := p.Pkg.Info
	ctxs := ctxParams(info, fb.typ)
	if len(ctxs) == 0 {
		return
	}
	if len(fb.body.List) > 0 {
		for _, obj := range ctxs {
			if !mentionsAnywhere(info, fb.body, obj) {
				p.Reportf(obj.Pos(), "context parameter %s is never used; propagate it to downstream calls or rename it _", obj.Name())
			}
		}
	}
	// Fresh contexts handed out while the caller's context is in scope.
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && len(ctxParams(info, lit.Type)) > 0 {
			return false // has its own context; analyzed separately
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for i, a := range call.Args {
			ac, ok := a.(*ast.CallExpr)
			if !ok {
				continue
			}
			fn, ok := calleeObj(info, ac).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				continue
			}
			if fn.Name() != "Background" && fn.Name() != "TODO" {
				continue
			}
			if sum := sums.calleeSummary(call); sum != nil {
				if pi := sum.paramIndex(i); pi >= 0 && !sum.params[pi].UsesCtx {
					continue // callee provably ignores its context
				}
			}
			p.Reportf(ac.Pos(), "context.%s passed to %s while %s is in scope; propagate the caller's context",
				fn.Name(), types.ExprString(call.Fun), ctxs[0].Name())
		}
		return true
	})
}

// ctxParams returns the named, non-blank context.Context parameters of a
// function type.
func ctxParams(info *types.Info, ft *ast.FuncType) []types.Object {
	if ft == nil || ft.Params == nil {
		return nil
	}
	var out []types.Object
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := info.Defs[name]
			if obj != nil && namedType(obj.Type(), "context", "Context") {
				out = append(out, obj)
			}
		}
	}
	return out
}
