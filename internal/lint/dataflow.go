package lint

import (
	"go/ast"
	"go/types"
)

// This file holds the solver half of the dataflow engine: a backward
// must-pass (all-paths) analysis, forward reachability, and a generic
// forward worklist solver, plus the per-function driver that feeds every
// FuncDecl and FuncLit body to an analysis independently.

// mustPass computes, for every node, whether every path from that node to
// the function exit passes through a statement satisfying the predicate
// (the node's own statement counts). It is a greatest-fixpoint backward
// analysis: nodes start optimistically true and are lowered until stable,
// so cycles that can only leave through a satisfying statement stay true,
// while any path that can reach exit unsatisfied — including panic edges —
// lowers everything upstream of it.
func (c *funcCFG) mustPass(satisfies func(*cfgNode) bool) map[*cfgNode]bool {
	must := make(map[*cfgNode]bool, len(c.nodes))
	sat := make(map[*cfgNode]bool, len(c.nodes))
	for _, n := range c.nodes {
		must[n] = n != c.exit
		sat[n] = n != c.exit && satisfies(n)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range c.nodes {
			if n == c.exit || !must[n] || sat[n] {
				continue
			}
			ok := len(n.succs) > 0
			for _, s := range n.succs {
				if !must[s] {
					ok = false
					break
				}
			}
			if !ok {
				must[n] = false
				changed = true
			}
		}
	}
	return must
}

// mustPassFrom reports whether every path from origin's successors to exit
// passes a satisfying statement. The origin itself does not count: it is
// typically the statement that creates the tracked value.
func (c *funcCFG) mustPassFrom(origin *cfgNode, satisfies func(*cfgNode) bool) bool {
	must := c.mustPass(satisfies)
	if len(origin.succs) == 0 {
		return false
	}
	for _, s := range origin.succs {
		if !must[s] {
			return false
		}
	}
	return true
}

// reachableFrom returns the set of nodes reachable from the successors of
// from (exclusive of from itself unless it sits on a cycle).
func (c *funcCFG) reachableFrom(from *cfgNode) map[*cfgNode]bool {
	seen := map[*cfgNode]bool{}
	var stack []*cfgNode
	stack = append(stack, from.succs...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, n.succs...)
	}
	return seen
}

// forwardSolve runs a forward may-analysis to its least fixpoint and
// returns each node's entry fact. transfer must not mutate its input;
// merge folds src into dst and reports whether dst changed; clone deep-
// copies a fact when a node's entry state is first populated.
func forwardSolve[F any](c *funcCFG, entry F,
	transfer func(*cfgNode, F) F,
	clone func(F) F,
	merge func(dst, src F) bool,
) map[*cfgNode]F {
	in := map[*cfgNode]F{c.entry: entry}
	work := []*cfgNode{c.entry}
	queued := map[*cfgNode]bool{c.entry: true}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		queued[n] = false
		out := transfer(n, in[n])
		for _, s := range n.succs {
			cur, ok := in[s]
			changed := false
			if !ok {
				in[s] = clone(out)
				changed = true
			} else if merge(cur, out) {
				changed = true
			}
			if changed && !queued[s] {
				work = append(work, s)
				queued[s] = true
			}
		}
	}
	return in
}

// funcBody is one function body under analysis: a declared function or a
// function literal, each treated as an independent unit.
type funcBody struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	typ  *ast.FuncType
	body *ast.BlockStmt
}

// funcBodies yields every function body in the file — each FuncDecl and
// each FuncLit (at any nesting depth) — for independent analysis.
func funcBodies(f *ast.File, visit func(fb funcBody)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(funcBody{decl: fn, typ: fn.Type, body: fn.Body})
			}
		case *ast.FuncLit:
			visit(funcBody{lit: fn, typ: fn.Type, body: fn.Body})
		}
		return true
	})
}

// declaredWithin reports whether obj's declaration position lies inside
// node — the engine's notion of "local to this body/loop/literal".
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && within(obj.Pos(), n)
}

// namedType reports whether t (possibly behind pointers) is the named type
// pkgPath.name.
func namedType(t types.Type, pkgPath, name string) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// methodCallOn matches a call of the form recv.sel(...) and returns the
// receiver expression; ok is false for other call shapes.
func methodCallOn(call *ast.CallExpr, sel string) (ast.Expr, bool) {
	s, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || s.Sel.Name != sel {
		return nil, false
	}
	return s.X, true
}

// identObj resolves e (through parens) to the object of a plain identifier,
// or nil.
func identObj(info *types.Info, e ast.Expr) types.Object {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

// mentionsObj reports whether any identifier under root (skipping nested
// function literals) resolves to one of the given objects.
func mentionsObj(info *types.Info, root ast.Node, objs map[types.Object]bool) bool {
	found := false
	shallowInspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && objs[info.ObjectOf(id)] {
			found = true
			return false
		}
		return true
	})
	return found
}
