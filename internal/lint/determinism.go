package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// DeterminismAnalyzer enforces the determinism invariant (DESIGN.md: "all
// randomness is seeded"): no wall-clock reads (time.Now / time.Since /
// time.Until) outside annotated reporting sites, and no use of math/rand's
// process-global generator — randomness must flow through an explicitly
// seeded rand.New(rand.NewSource(seed)). Intentional wall-clock reporting
// sites carry //lint:ignore determinism annotations.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "flags wall-clock reads and unseeded global math/rand use",
	Run:  runDeterminism,
}

// wallClockFuncs are the time functions that read the wall clock.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions that draw from the global, unseeded source. rand.New and
// rand.NewSource are deliberately absent: they are the sanctioned path.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "N": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32": true, "Uint32N": true,
	"Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func runDeterminism(p *Pass) {
	// Iterate Uses rather than syntax so method values (f := time.Now)
	// are caught alongside direct calls; sort for stable reporting.
	type use struct {
		id  *ast.Ident
		pos token.Pos
	}
	var uses []use
	for id := range p.Pkg.Info.Uses {
		uses = append(uses, use{id, id.Pos()})
	}
	sort.Slice(uses, func(i, j int) bool { return uses[i].pos < uses[j].pos })

	for _, u := range uses {
		fn, ok := p.Pkg.Info.Uses[u.id].(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			continue // methods (e.g. a seeded *rand.Rand) are fine
		}
		switch fn.Pkg().Path() {
		case "time":
			if wallClockFuncs[fn.Name()] {
				p.Reportf(u.pos, "time.%s reads the wall clock; route timing through a seeded/simulated clock or annotate the reporting site", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if globalRandFuncs[fn.Name()] {
				p.Reportf(u.pos, "rand.%s draws from the unseeded global source; use rand.New(rand.NewSource(seed))", fn.Name())
			}
		}
	}
}
