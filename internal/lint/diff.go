package lint

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// LineRange is a closed range of new-side line numbers in a changed file.
type LineRange struct {
	Start, End int
}

// ChangedLines runs `git diff -U0 <ref> -- *.go` at root and returns the
// changed new-side line ranges per repository-relative file path. A
// deletion-only hunk contributes the single line at the deletion point, so
// a finding sitting where code was removed still surfaces.
func ChangedLines(root, ref string) (map[string][]LineRange, error) {
	cmd := exec.Command("git", "diff", "-U0", ref, "--", "*.go")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("git diff %s: %s", ref, strings.TrimSpace(string(ee.Stderr)))
		}
		return nil, fmt.Errorf("git diff %s: %v", ref, err)
	}
	return parseUnifiedDiff(string(out)), nil
}

// hunkRe matches a unified-diff hunk header's new-side span: @@ -a[,b] +c[,d] @@.
var hunkRe = regexp.MustCompile(`^@@ -\d+(?:,\d+)? \+(\d+)(?:,(\d+))? @@`)

// parseUnifiedDiff extracts new-side line ranges from unified diff text.
func parseUnifiedDiff(diff string) map[string][]LineRange {
	changed := map[string][]LineRange{}
	file := ""
	for _, line := range strings.Split(diff, "\n") {
		if rest, ok := strings.CutPrefix(line, "+++ "); ok {
			rest = strings.TrimSuffix(rest, "\t") // git -c core.quotePath paths may carry a trailing tab
			if rest == "/dev/null" {
				file = "" // deleted file: no new-side lines to report on
			} else {
				file = strings.TrimPrefix(rest, "b/")
			}
			continue
		}
		m := hunkRe.FindStringSubmatch(line)
		if m == nil || file == "" {
			continue
		}
		start, _ := strconv.Atoi(m[1])
		count := 1
		if m[2] != "" {
			count, _ = strconv.Atoi(m[2])
		}
		end := start + count - 1
		if count == 0 {
			// Deletion-only hunk: new side has no lines; keep the boundary
			// line so findings at the splice point remain visible.
			end = start
		}
		changed[file] = append(changed[file], LineRange{Start: start, End: end})
	}
	return changed
}

// FilterByDiff keeps only the findings whose position falls in a changed
// line range. Finding paths are absolute; changed paths are relative to
// root.
func FilterByDiff(findings []Diagnostic, changed map[string][]LineRange, root string) []Diagnostic {
	out := []Diagnostic{}
	for _, d := range findings {
		rel, err := filepath.Rel(root, d.File)
		if err != nil {
			continue
		}
		for _, r := range changed[filepath.ToSlash(rel)] {
			if d.Line >= r.Start && d.Line <= r.End {
				out = append(out, d)
				break
			}
		}
	}
	return out
}
