package lint

import (
	"path/filepath"
	"reflect"
	"testing"
)

const sampleDiff = `diff --git a/internal/core/planner.go b/internal/core/planner.go
index 1111111..2222222 100644
--- a/internal/core/planner.go
+++ b/internal/core/planner.go
@@ -10,0 +11,3 @@ func NewPlanner(
+	a
+	b
+	c
@@ -40 +43 @@ func (p *Planner) Replan(
+	x
diff --git a/internal/opt/gone.go b/internal/opt/gone.go
deleted file mode 100644
index 3333333..0000000
--- a/internal/opt/gone.go
+++ /dev/null
@@ -1,5 +0,0 @@
-gone
diff --git a/internal/storage/tensorstore.go b/internal/storage/tensorstore.go
index 4444444..5555555 100644
--- a/internal/storage/tensorstore.go
+++ b/internal/storage/tensorstore.go
@@ -100,2 +99,0 @@ func (s *TensorStore) Append(
-old
-old
`

func TestParseUnifiedDiff(t *testing.T) {
	got := parseUnifiedDiff(sampleDiff)
	want := map[string][]LineRange{
		"internal/core/planner.go": {{Start: 11, End: 13}, {Start: 43, End: 43}},
		// Deletion-only hunk keeps the splice line visible.
		"internal/storage/tensorstore.go": {{Start: 99, End: 99}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseUnifiedDiff:\n got %+v\nwant %+v", got, want)
	}
	if _, ok := got["internal/opt/gone.go"]; ok {
		t.Error("deleted file must contribute no new-side ranges")
	}
}

func TestFilterByDiff(t *testing.T) {
	root := filepath.FromSlash("/repo")
	abs := func(rel string) string { return filepath.Join(root, filepath.FromSlash(rel)) }
	changed := map[string][]LineRange{
		"internal/core/planner.go": {{Start: 11, End: 13}},
	}
	findings := []Diagnostic{
		{Analyzer: "sessionorder", File: abs("internal/core/planner.go"), Line: 11},
		{Analyzer: "sessionorder", File: abs("internal/core/planner.go"), Line: 13},
		{Analyzer: "sessionorder", File: abs("internal/core/planner.go"), Line: 14},
		{Analyzer: "storelease", File: abs("internal/storage/tensorstore.go"), Line: 11},
	}
	got := FilterByDiff(findings, changed, root)
	want := findings[:2]
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FilterByDiff:\n got %+v\nwant %+v", got, want)
	}
}
