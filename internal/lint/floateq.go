package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEqAnalyzer flags == and != between floating-point operands in
// non-test code. Exact float comparison silently diverges across
// accumulation orders and optimization levels; system logic must compare
// with an epsilon or on math.Float64bits. Tests are exempt: bit-exact
// equality against golden values is precisely the determinism property the
// test suite asserts.
var FloatEqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= on floating-point operands outside tests",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Pkg.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloat(p, be.X) || isFloat(p, be.Y) {
				p.Reportf(be.OpPos, "%s on floating-point operands; compare with an epsilon or on math.Float64bits", be.Op)
			}
			return true
		})
	}
}

func isFloat(p *Pass, e ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
