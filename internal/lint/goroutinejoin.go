package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineJoinAnalyzer checks that every goroutine launched with a
// function literal follows a recognizable join protocol, and that
// pipeline-constructor channels are drained on every consumer path. The
// hot-path packages (exec, tensor, core) release arena scopes and publish
// metrics after fan-outs; an unjoined goroutine there is a use-after-
// release or a leak that -race only catches when the schedule cooperates.
//
// Per `go func(){...}()` statement, in classification order:
//
//  1. WaitGroup protocol — the literal calls wg.Done() on a WaitGroup from
//     the enclosing function: requires a wg.Add(...) textually before the
//     launch and a wg.Wait() on every path from the launch to the exit
//     (a deferred Wait also counts). A WaitGroup reached through a struct
//     field (`defer e.wg.Done()`) still demands the Add before the launch,
//     but not the Wait — the join legitimately rides on the owning value's
//     state, typically a Close method joining a background loop.
//  2. Channel protocol — the literal sends on or closes an enclosing
//     channel: requires the channel to leave the function (returned or
//     passed on — the pipeline-constructor shape, whose consumers are
//     checked separately) or a receive/range join on every path after the
//     launch.
//  3. Neither — flagged: the goroutine has no join protocol at all.
//
// Consumer side: a call to a same-package pipeline constructor (a function
// returning a channel that is fed and closed by a goroutine it spawns)
// must drain the channel on every path — a deferred `for range ch` drain,
// a dominating range, or handing the channel onward. Early returns that
// strand the producer blocked on send leak the goroutine and everything
// it holds.
//
// Goroutines launched with a named package-local function are classified
// through that function's interprocedural summary: a WaitGroup argument
// the callee Dones demands the Add/Wait protocol at the launch site, a
// channel argument the callee sends on or closes demands the channel
// join, and a local plain function that signals nothing at all is
// flagged. External callees, function values, and methods whose protocol
// rides on receiver state stay out of reach. Test files are skipped.
var GoroutineJoinAnalyzer = &Analyzer{
	Name:         "goroutinejoin",
	Doc:          "flags goroutines with unbalanced WaitGroup/done-channel join protocols and pipeline channels not drained on every path",
	SummaryAware: true,
	Run:          runGoroutineJoin,
}

func runGoroutineJoin(p *Pass) {
	sums := p.Pkg.summaries()
	constructors := pipelineConstructors(p)
	for _, f := range p.Pkg.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		funcBodies(f, func(fb funcBody) {
			goroutineJoinFunc(p.Pkg.Info, sums, fb, p.Reportf)
			pipelineConsumerCheck(p, fb, constructors)
		})
	}
}

// goroutineJoinFunc checks every go statement in one function body. It is
// shared between the analyzer (report = Pass.Reportf) and the summary
// computer's spawnsUnjoined post-pass (report = a flag setter).
func goroutineJoinFunc(info *types.Info, sums *summarySet, fb funcBody, report func(pos token.Pos, format string, args ...any)) {
	cfg := buildCFG(fb.body)
	for _, n := range cfg.nodes {
		gs, ok := n.stmt.(*ast.GoStmt)
		if !ok {
			continue
		}
		if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
			goLitCheck(info, sums, cfg, fb, n, gs, lit, report)
		} else {
			goNamedCheck(info, sums, cfg, fb, n, gs, report)
		}
	}
}

// goLitCheck classifies a `go func(){...}()` launch by the literal's body.
func goLitCheck(info *types.Info, sums *summarySet, cfg *funcCFG, fb funcBody, n *cfgNode, gs *ast.GoStmt, lit *ast.FuncLit, report func(pos token.Pos, format string, args ...any)) {
	if wg := enclosingWaitGroupDone(info, lit, fb.body); wg != nil {
		if !eventPrecedes(fb.body, wgJoinProtocol.add, wg, gs.Pos(), identResolver(info)) {
			report(gs.Pos(), "goroutine calls %s.Done but no %s.Add precedes the launch", wg.Name(), wg.Name())
		} else if !eventJoins(info, sums, cfg, n, wgJoinProtocol.wait, wg) {
			report(gs.Pos(), "goroutine joined by %s.Wait, but a path from the launch reaches return without waiting", wg.Name())
		}
		return
	}
	if wgf := fieldWaitGroupDone(info, lit); wgf != nil {
		if !eventPrecedes(fb.body, wgJoinProtocol.add, wgf, gs.Pos(), fieldResolver(info)) {
			report(gs.Pos(), "goroutine calls %s.Done but no %s.Add precedes the launch", wgf.Name(), wgf.Name())
		}
		// The Wait rides on the owning value's state — typically a Close
		// method joining the loop — which this function can't see. The
		// Add-before-launch half of the protocol is still checkable.
		return
	}
	chans := enclosingChannelActivity(info, lit, fb.body)
	if len(chans) == 0 {
		report(gs.Pos(), "goroutine has no join protocol: no WaitGroup.Done and no send/close on an enclosing channel")
		return
	}
	for _, ch := range chans {
		if channelLeavesFunction(info, fb, ch) || receiveJoins(info, cfg, n, ch) {
			return
		}
	}
	report(gs.Pos(), "goroutine signals on channel %s, but no path after the launch is guaranteed to receive from it and the channel never leaves the function", chans[0].Name())
}

// goNamedCheck classifies a `go f(args...)` launch through f's summary.
func goNamedCheck(info *types.Info, sums *summarySet, cfg *funcCFG, fb funcBody, n *cfgNode, gs *ast.GoStmt, report func(pos token.Pos, format string, args ...any)) {
	if sums == nil {
		return
	}
	sum := sums.calleeSummary(gs.Call)
	if sum == nil {
		return // external function or function value: out of reach
	}
	// WaitGroup protocol through an argument the callee Dones.
	for i, a := range gs.Call.Args {
		pi := sum.paramIndex(i)
		if pi < 0 || !sum.params[pi].DonesWG {
			continue
		}
		wg := argRootObj(info, a)
		if wg == nil {
			continue
		}
		if !eventPrecedes(fb.body, wgJoinProtocol.add, wg, gs.Pos(), identResolver(info)) {
			report(gs.Pos(), "goroutine %s calls %s.Done but no %s.Add precedes the launch", sum.fn.Name(), wg.Name(), wg.Name())
		} else if !eventJoins(info, sums, cfg, n, wgJoinProtocol.wait, wg) {
			report(gs.Pos(), "goroutine %s joined by %s.Wait, but a path from the launch reaches return without waiting", sum.fn.Name(), wg.Name())
		}
		return
	}
	// Channel protocol through an argument the callee sends on or closes.
	var chans []types.Object
	for i, a := range gs.Call.Args {
		pi := sum.paramIndex(i)
		if pi < 0 || !sum.params[pi].SendsChan {
			continue
		}
		if ch := argRootObj(info, a); ch != nil {
			chans = append(chans, ch)
		}
	}
	for _, ch := range chans {
		if channelLeavesFunction(info, fb, ch) || receiveJoins(info, cfg, n, ch) {
			return
		}
	}
	if len(chans) > 0 {
		report(gs.Pos(), "goroutine %s signals on channel %s, but no path after the launch is guaranteed to receive from it and the channel never leaves the function", sum.fn.Name(), chans[0].Name())
		return
	}
	if sum.decl.Recv != nil {
		return // a method's protocol may ride on receiver state
	}
	if signalsSomehow(info, sums, sum.decl.Body) {
		return // signals on state the launch site can't see; give it the benefit
	}
	report(gs.Pos(), "goroutine launches %s, which has no join protocol: it neither Dones a WaitGroup nor signals on a channel", sum.fn.Name())
}

// signalsSomehow reports whether a body contains any completion signal at
// all — a Done call, a channel send or close, or a delegation to a local
// function that signals through a parameter.
func signalsSomehow(info *types.Info, sums *summarySet, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch c := x.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if _, ok := methodCallOn(c, "Done"); ok {
				found = true
				break
			}
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "close" {
				found = true
				break
			}
			if sum := sums.calleeSummary(c); sum != nil {
				for _, pf := range sum.params {
					if pf.DonesWG || pf.SendsChan {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// enclosingWaitGroupDone returns the sync.WaitGroup variable (declared
// outside the literal) on which the literal calls Done, or nil. Deferred
// closures inside the literal count (`defer wg.Done()` and variants).
func enclosingWaitGroupDone(info *types.Info, lit *ast.FuncLit, encl ast.Node) types.Object {
	var wg types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if wg != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, ok := methodCallOn(call, "Done")
		if !ok {
			return true
		}
		obj := identObj(info, recv)
		if obj == nil || !namedType(obj.Type(), "sync", "WaitGroup") {
			return true
		}
		if declaredWithin(obj, lit) {
			return true // the literal's own WaitGroup joins its own children
		}
		wg = obj
		return false
	})
	return wg
}

// fieldObj resolves a selector expression (`e.wg`) to the struct field it
// names, or nil for anything else.
func fieldObj(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := info.ObjectOf(sel.Sel).(*types.Var)
	if ok && v.IsField() {
		return v
	}
	return nil
}

// fieldWaitGroupDone returns the struct-field sync.WaitGroup on which the
// literal calls Done through a selector (`defer e.wg.Done()`), or nil.
func fieldWaitGroupDone(info *types.Info, lit *ast.FuncLit) *types.Var {
	var wg *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if wg != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, ok := methodCallOn(call, "Done")
		if !ok {
			return true
		}
		f := fieldObj(info, recv)
		if f == nil || !namedType(f.Type(), "sync", "WaitGroup") {
			return true
		}
		wg = f
		return false
	})
	return wg
}

// fieldAddBeforeLaunch reports whether wg.Add(...) on the same struct field
// appears before the go statement in the enclosing body.
// The Add-before-launch and Wait-joins judgments are instances of the
// typestate engine's WaitGroup protocol helpers (eventPrecedes / eventJoins
// over wgJoinProtocol in typestate.go); only the receiver resolvers —
// local-variable vs struct-field WaitGroups — are declared here.

// identResolver resolves a receiver expression to its local-variable
// object.
func identResolver(info *types.Info) func(ast.Expr) types.Object {
	return func(e ast.Expr) types.Object { return identObj(info, e) }
}

// fieldResolver resolves a receiver expression to the struct field it
// selects (`e.wg` → the wg field), for WaitGroups owned by a value.
func fieldResolver(info *types.Info) func(ast.Expr) types.Object {
	return func(e ast.Expr) types.Object {
		if v := fieldObj(info, e); v != nil {
			return v
		}
		return nil
	}
}

// enclosingChannelActivity returns channel variables declared outside the
// literal that the literal sends on or closes.
func enclosingChannelActivity(info *types.Info, lit *ast.FuncLit, encl ast.Node) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	record := func(e ast.Expr) {
		obj := identObj(info, e)
		if obj == nil || seen[obj] || declaredWithin(obj, lit) {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Chan); !ok {
			return
		}
		seen[obj] = true
		out = append(out, obj)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			record(x.Chan)
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
					record(x.Args[0])
				}
			}
		}
		return true
	})
	return out
}

// channelLeavesFunction reports whether ch is returned from the enclosing
// function, passed to a call, or stored beyond a plain local binding —
// the pipeline-constructor handoff, where joining is the consumer's job.
// Uses inside function literals don't count: the producer goroutine's own
// sends and close are its protocol, not an escape.
func channelLeavesFunction(info *types.Info, fb funcBody, ch types.Object) bool {
	leaves := false
	parents := parentMap(fb.body)
	insideLit := func(n ast.Node) bool {
		for p := parents[n]; p != nil; p = parents[p] {
			if _, ok := p.(*ast.FuncLit); ok {
				return true
			}
		}
		return false
	}
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if leaves {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.ObjectOf(id) != ch || insideLit(id) {
			return true
		}
		switch pn := parents[id].(type) {
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr:
			leaves = true
		case *ast.SendStmt:
			leaves = pn.Value == ast.Expr(id) // the channel itself sent as a value
		case *ast.CallExpr:
			if fn, ok := pn.Fun.(*ast.Ident); ok {
				if _, isBuiltin := info.ObjectOf(fn).(*types.Builtin); isBuiltin {
					break // close/len/cap in the constructor body
				}
			}
			for _, a := range pn.Args {
				if a == ast.Expr(id) {
					leaves = true // passed along; callee owns the join
				}
			}
		case *ast.AssignStmt:
			for _, r := range pn.Rhs {
				if r != ast.Expr(id) {
					continue
				}
				for _, l := range pn.Lhs {
					if _, isSel := l.(*ast.SelectorExpr); isSel || isPackageLevel(info, l) {
						leaves = true
					}
				}
			}
		}
		return !leaves
	})
	return leaves
}

func isPackageLevel(info *types.Info, e ast.Expr) bool {
	obj := identObj(info, e)
	if obj == nil {
		return false
	}
	v, ok := obj.(*types.Var)
	return ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// receiveJoins reports whether every path from the launch passes a receive
// or range over ch.
func receiveJoins(info *types.Info, cfg *funcCFG, launch *cfgNode, ch types.Object) bool {
	return cfg.mustPassFrom(launch, func(n *cfgNode) bool {
		if rs, ok := n.stmt.(*ast.RangeStmt); ok && identObj(info, rs.X) == ch {
			return true
		}
		return headerContains(n, func(x ast.Node) bool {
			ue, ok := x.(*ast.UnaryExpr)
			return ok && ue.Op == token.ARROW && identObj(info, ue.X) == ch
		})
	})
}

// pipelineConstructors summarizes the package: functions returning a
// channel that a goroutine they spawn sends on or closes. Their callers
// must drain the result.
func pipelineConstructors(p *Pass) map[types.Object]bool {
	info := p.Pkg.Info
	out := map[types.Object]bool{}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Results == nil {
				continue
			}
			returnsChan := false
			for _, r := range fd.Type.Results.List {
				if _, ok := info.TypeOf(r.Type).Underlying().(*types.Chan); ok {
					returnsChan = true
				}
			}
			if !returnsChan {
				continue
			}
			// Does a spawned goroutine feed a channel this function returns?
			fed := map[types.Object]bool{}
			shallowGoLits(fd.Body, func(lit *ast.FuncLit) {
				for _, ch := range enclosingChannelActivity(info, lit, fd.Body) {
					fed[ch] = true
				}
			})
			if len(fed) == 0 {
				continue
			}
			returned := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range rs.Results {
					if fed[identObj(info, res)] {
						returned = true
					}
				}
				return !returned
			})
			if returned {
				if obj := info.ObjectOf(fd.Name); obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// shallowGoLits visits the function literal of each go statement directly
// inside body (not nested in other literals).
func shallowGoLits(body ast.Node, visit func(*ast.FuncLit)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				visit(lit)
			}
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return true
	})
}

// pipelineConsumerCheck flags bindings of a pipeline constructor's channel
// that are not drained on every path: no deferred `for range ch` drain, no
// dominating range, and the channel never handed onward.
func pipelineConsumerCheck(p *Pass, fb funcBody, constructors map[types.Object]bool) {
	if len(constructors) == 0 {
		return
	}
	info := p.Pkg.Info
	cfg := buildCFG(fb.body)
	for _, n := range cfg.nodes {
		as, ok := n.stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			continue
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			continue
		}
		callee := calleeObj(info, call)
		if callee == nil || !constructors[callee] {
			continue
		}
		ch := identObj(info, as.Lhs[0])
		if ch == nil {
			continue
		}
		if deferredDrain(info, fb.body, ch) || channelLeavesFunction(info, fb, ch) || receiveRangeDominates(info, cfg, n, ch) {
			continue
		}
		p.Reportf(as.Pos(), "pipeline channel %s from %s is not drained on every path; an early return leaves the producer goroutine blocked on send — add `defer func() { for range %s { ... } }()` after the call", ch.Name(), callee.Name(), ch.Name())
	}
}

// calleeObj resolves the called function or method object.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.ObjectOf(fun)
	case *ast.SelectorExpr:
		return info.ObjectOf(fun.Sel)
	}
	return nil
}

// deferredDrain matches `defer func() { for ... range ch { ... } }()`.
func deferredDrain(info *types.Info, body ast.Node, ch types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		lit, ok := ds.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(x ast.Node) bool {
			if rs, ok := x.(*ast.RangeStmt); ok && identObj(info, rs.X) == ch {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}

// receiveRangeDominates reports whether every path from the binding passes
// a `for range ch` (which completes only once the producer closes ch).
func receiveRangeDominates(info *types.Info, cfg *funcCFG, bind *cfgNode, ch types.Object) bool {
	return cfg.mustPassFrom(bind, func(n *cfgNode) bool {
		rs, ok := n.stmt.(*ast.RangeStmt)
		return ok && identObj(info, rs.X) == ch
	})
}
