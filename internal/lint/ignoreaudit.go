package lint

// IgnoreAuditAnalyzer reports stale //lint:ignore pragmas: suppressions
// whose named analyzer ran but produced no finding on the covered lines.
// A stale pragma is worse than dead weight — it silently licenses a future
// violation at that site, defeating the point of mandatory reasons.
//
// The check is implemented inside the framework's Run, not in a per-package
// pass: staleness is only decidable after every analyzer has reported and
// filtering has recorded which pragmas actually fired. This analyzer value
// exists so the audit participates in analyzer selection (-list, run sets,
// documentation) like any other check; its presence in the run set enables
// the audit. Its findings are attributed to pragma positions and — like the
// framework's malformed-suppression findings — cannot themselves be
// suppressed.
//
// A pragma naming an analyzer that is not part of the current run is left
// alone: the audit cannot judge what it did not execute.
var IgnoreAuditAnalyzer = &Analyzer{
	Name: "ignoreaudit",
	Doc:  "flags stale //lint:ignore suppressions whose named analyzer no longer fires at that site",
	Run:  func(*Pass) {}, // the audit runs framework-side, after filtering
}
