package lint

import (
	"go/ast"
	"go/types"
)

// LayerPurityAnalyzer enforces the layer-purity contract (graph.Layer's
// doc: "Implementations hold parameters but never activations"): a
// Forward or Backward method on a layer type must not assign to receiver
// state. Activations flow through the returned opaque cache, which is what
// lets one layer instance appear in many models and fused plans
// simultaneously.
//
// A method is in scope when it is named Forward or Backward and its
// receiver's method set contains both (the shape of a graph.Layer
// implementation), so unrelated Forward methods elsewhere are untouched.
var LayerPurityAnalyzer = &Analyzer{
	Name: "layerpurity",
	Doc:  "flags receiver-state writes inside Layer Forward/Backward",
	Run:  runLayerPurity,
}

func runLayerPurity(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "Forward" && fd.Name.Name != "Backward" {
				continue
			}
			recv := receiverVar(p, fd)
			if recv == nil || !looksLikeLayer(recv.Type()) {
				continue
			}
			checkPurity(p, fd, recv)
		}
	}
}

// receiverVar resolves the receiver identifier's object, or nil for
// anonymous receivers.
func receiverVar(p *Pass, fd *ast.FuncDecl) *types.Var {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	obj := p.Pkg.Info.Defs[fd.Recv.List[0].Names[0]]
	v, _ := obj.(*types.Var)
	return v
}

// looksLikeLayer reports whether the receiver type's method set contains
// both Forward and Backward.
func looksLikeLayer(t types.Type) bool {
	ms := types.NewMethodSet(t)
	var fwd, bwd bool
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Forward":
			fwd = true
		case "Backward":
			bwd = true
		}
	}
	return fwd && bwd
}

// checkPurity flags every statement in the method body that writes through
// the receiver.
func checkPurity(p *Pass, fd *ast.FuncDecl, recv *types.Var) {
	report := func(lhs ast.Expr) {
		root := rootIdent(lhs)
		if root == nil || p.Pkg.Info.ObjectOf(root) != recv {
			return
		}
		if _, plain := lhs.(*ast.Ident); plain {
			return // rebinding the local receiver variable mutates nothing shared
		}
		p.Reportf(lhs.Pos(), "%s assigns to receiver state; layers are pure — pass activations through the returned cache", fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				report(lhs)
			}
		case *ast.IncDecStmt:
			report(st.X)
		}
		return true
	})
}
