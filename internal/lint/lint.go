// Package lint is a stdlib-only static-analysis framework (go/parser +
// go/ast + go/types, no external dependencies) with repo-specific analyzers
// that machine-check Nautilus's prose invariants: determinism (all
// randomness is seeded, no wall-clock reads outside annotated reporting
// sites), no floating-point equality in system logic, layer purity
// (Forward/Backward never stash activations on the receiver — they go
// through the returned cache), and no silently dropped errors.
//
// Findings can be suppressed in source with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory; a suppression without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers whose
// invariants only bind production code (floateq, uncheckederr) skip such
// positions.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Diagnostic is one finding, positioned for editors and stable for JSON
// round-trips.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// DefaultAnalyzers returns the full Nautilus analyzer suite.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		AllocHygieneAnalyzer,
		DeterminismAnalyzer,
		FloatEqAnalyzer,
		LayerPurityAnalyzer,
		UncheckedErrAnalyzer,
	}
}

// Run applies the analyzers to every package, filters suppressed findings,
// and returns the remainder sorted by position. Malformed suppression
// comments are reported under the analyzer name "lint".
func Run(pkgs []*Package, analyzers []*Analyzer, fset *token.FileSet) []Diagnostic {
	var diags []Diagnostic
	sup := newSuppressions()
	for _, pkg := range pkgs {
		sup.scan(pkg, fset, &diags)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Fset: fset, diags: &diags}
			a.Run(pass)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !sup.suppressed(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return kept
}

// ignoreRe matches the suppression syntax after the "//" comment marker.
var ignoreRe = regexp.MustCompile(`^lint:ignore\s+(\S+)(?:\s+(.*))?$`)

// suppressions indexes //lint:ignore comments by (file, effective line):
// a comment suppresses matching findings on its own line and the next.
type suppressions struct {
	byLine map[string]map[int]map[string]bool
}

func newSuppressions() *suppressions {
	return &suppressions{byLine: map[string]map[int]map[string]bool{}}
}

func (s *suppressions) scan(pkg *Package, fset *token.FileSet, diags *[]Diagnostic) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments don't carry suppressions
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := ignoreRe.FindStringSubmatch(text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					*diags = append(*diags, Diagnostic{
						Analyzer: "lint",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed suppression: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				for _, name := range strings.Split(m[1], ",") {
					s.add(pos.Filename, pos.Line, name)
					s.add(pos.Filename, pos.Line+1, name)
				}
			}
		}
	}
}

func (s *suppressions) add(file string, line int, analyzer string) {
	lines := s.byLine[file]
	if lines == nil {
		lines = map[int]map[string]bool{}
		s.byLine[file] = lines
	}
	set := lines[line]
	if set == nil {
		set = map[string]bool{}
		lines[line] = set
	}
	set[analyzer] = true
}

func (s *suppressions) suppressed(d Diagnostic) bool {
	if d.Analyzer == "lint" {
		return false // framework findings are not suppressible
	}
	return s.byLine[d.File][d.Line][d.Analyzer]
}

// rootIdent unwraps selector/index/star/paren chains to the base
// identifier, or nil if the base is not a plain identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
