// Package lint is a stdlib-only static-analysis framework (go/parser +
// go/ast + go/types, no external dependencies) with repo-specific analyzers
// that machine-check Nautilus's prose invariants: determinism (all
// randomness is seeded, no wall-clock reads outside annotated reporting
// sites), no floating-point equality in system logic, layer purity
// (Forward/Backward never stash activations on the receiver — they go
// through the returned cache), no silently dropped errors, and allocation
// hygiene in hot loops.
//
// On top of the syntactic analyzers, the package carries an intraprocedural
// dataflow engine (cfg.go, dataflow.go): a statement-level CFG with
// forward/backward solvers and value-origin tracking, powering the
// lifetime and concurrency analyzers introduced for the arena/parallel/
// span era — arenaescape (scoped tensors must not outlive Scope.Release),
// spanleak (every obs span ends on every path), goroutinejoin (every
// goroutine has a WaitGroup or channel join, and pipeline channels are
// drained on every consumer path), and chunkdisjoint (tensor.Parallel
// callbacks write only chunk-owned state). ignoreaudit closes the loop by
// flagging suppressions whose analyzer no longer fires.
//
// Findings can be suppressed in source with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory; a suppression without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// SummaryAware marks analyzers that consult the interprocedural
	// function summaries (summary.go) and therefore see through one level
	// of package-local delegation.
	SummaryAware bool
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet

	diags *[]Diagnostic
	// ssaNs accumulates wall time this pass spent building SSA form
	// (typestate.go charges it), split out in AnalyzerTiming.
	ssaNs int64
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers whose
// invariants only bind production code (floateq, uncheckederr) skip such
// positions.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Diagnostic is one finding, positioned for editors and stable for JSON
// round-trips.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// DefaultAnalyzers returns the full Nautilus analyzer suite.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		AllocHygieneAnalyzer,
		ArenaEscapeAnalyzer,
		ChunkDisjointAnalyzer,
		CtxFlowAnalyzer,
		DeterminismAnalyzer,
		FloatEqAnalyzer,
		GoroutineJoinAnalyzer,
		IgnoreAuditAnalyzer,
		LayerPurityAnalyzer,
		LockSafeAnalyzer,
		SessionOrderAnalyzer,
		SpanLeakAnalyzer,
		StoreLeaseAnalyzer,
		UncheckedErrAnalyzer,
	}
}

// SelectAnalyzers resolves a comma-separated -analyzers spec against a
// suite: bare names form an include set (suite order preserved), a leading
// '-' excludes from the suite, and mixing both applies the excludes to the
// include set. An empty spec selects everything; an unknown name is an
// error.
func SelectAnalyzers(all []*Analyzer, spec string) ([]*Analyzer, error) {
	if strings.TrimSpace(spec) == "" {
		return all, nil
	}
	known := map[string]bool{}
	for _, a := range all {
		known[a.Name] = true
	}
	include := map[string]bool{}
	exclude := map[string]bool{}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		name, neg := strings.CutPrefix(tok, "-")
		if !known[name] {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		if neg {
			exclude[name] = true
		} else {
			include[name] = true
		}
	}
	var out []*Analyzer
	for _, a := range all {
		if exclude[a.Name] || (len(include) > 0 && !include[a.Name]) {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

// AnalyzerTiming is one analyzer's wall time summed over every package of
// a run, reported by RunTimed and the CLI's -json output. SSAWallNs is the
// share of WallNs spent building SSA form (zero for analyzers that never
// ask for it).
type AnalyzerTiming struct {
	Analyzer  string `json:"analyzer"`
	WallNs    int64  `json:"wall_ns"`
	SSAWallNs int64  `json:"ssa_wall_ns"`
}

// PackageTiming is one package's wall time for the full analyzer sweep
// (suppression scan included), reported in the CLI's -json envelope.
type PackageTiming struct {
	Package string `json:"package"`
	WallNs  int64  `json:"wall_ns"`
}

// Result is the outcome of one Analyze sweep.
type Result struct {
	// Findings is the post-suppression diagnostic list, sorted by
	// (file, line, analyzer, col, message).
	Findings []Diagnostic
	// Analyzers holds per-analyzer wall time, one entry per analyzer in
	// the order given, summed across packages.
	Analyzers []AnalyzerTiming
	// Packages holds per-package wall time in package order.
	Packages []PackageTiming
}

// Run applies the analyzers to every package, filters suppressed findings,
// and returns the remainder sorted by (file, line, analyzer). Malformed
// suppression comments are reported under the analyzer name "lint".
func Run(pkgs []*Package, analyzers []*Analyzer, fset *token.FileSet) []Diagnostic {
	return Analyze(pkgs, analyzers, fset).Findings
}

// RunTimed is Run plus per-analyzer wall time.
func RunTimed(pkgs []*Package, analyzers []*Analyzer, fset *token.FileSet) ([]Diagnostic, []AnalyzerTiming) {
	r := Analyze(pkgs, analyzers, fset)
	return r.Findings, r.Analyzers
}

// Analyze runs the analyzer suite over every package, packages in
// parallel (bounded by GOMAXPROCS), analyzers sequentially within each.
// Suppression scanning, filtering, and the stale-suppression audit are
// per package — a //lint:ignore only ever faces findings from its own
// package — and results are merged in package order then sorted, so the
// output is deterministic regardless of scheduling.
func Analyze(pkgs []*Package, analyzers []*Analyzer, fset *token.FileSet) Result {
	type pkgRun struct {
		sup     *suppressions
		diags   []Diagnostic
		wall    []time.Duration
		ssa     []int64
		elapsed time.Duration
	}
	runs := make([]*pkgRun, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r := &pkgRun{sup: newSuppressions(), wall: make([]time.Duration, len(analyzers)), ssa: make([]int64, len(analyzers))}
			//lint:ignore determinism wall-clock measurement of analyzer runtime for -json timing output
			pkgStart := time.Now()
			r.sup.scan(pkg, fset, &r.diags)
			for j, a := range analyzers {
				pass := &Pass{Analyzer: a, Pkg: pkg, Fset: fset, diags: &r.diags}
				//lint:ignore determinism wall-clock measurement of analyzer runtime for -json timing output
				start := time.Now()
				a.Run(pass)
				//lint:ignore determinism wall-clock measurement of analyzer runtime for -json timing output
				r.wall[j] += time.Since(start)
				r.ssa[j] += pass.ssaNs
			}
			//lint:ignore determinism wall-clock measurement of analyzer runtime for -json timing output
			r.elapsed = time.Since(pkgStart)
			runs[i] = r
		}(i, pkg)
	}
	wg.Wait()

	var res Result
	wall := make([]time.Duration, len(analyzers))
	ssa := make([]int64, len(analyzers))
	ran := analyzerNames(analyzers)
	audit := hasAnalyzer(analyzers, IgnoreAuditAnalyzer.Name)
	for i, pkg := range pkgs {
		r := runs[i]
		for _, d := range r.diags {
			if !r.sup.suppressed(d) {
				res.Findings = append(res.Findings, d)
			}
		}
		// The stale-suppression audit must run after filtering: a
		// suppression is live exactly when it hid a finding above.
		if audit {
			res.Findings = append(res.Findings, r.sup.audit(ran)...)
		}
		for j := range analyzers {
			wall[j] += r.wall[j]
			ssa[j] += r.ssa[j]
		}
		res.Packages = append(res.Packages, PackageTiming{Package: pkg.Path, WallNs: r.elapsed.Nanoseconds()})
	}
	SortDiagnostics(res.Findings)
	res.Analyzers = make([]AnalyzerTiming, len(analyzers))
	for i, a := range analyzers {
		res.Analyzers[i] = AnalyzerTiming{Analyzer: a.Name, WallNs: wall[i].Nanoseconds(), SSAWallNs: ssa[i]}
	}
	return res
}

// SortDiagnostics puts findings in the output order every entry point
// shares: (file, line, analyzer, col, message). Cache replay merges stored
// findings with fresh ones and re-sorts with this, so a warm run's output
// is byte-identical to a cold run's.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
}

func hasAnalyzer(analyzers []*Analyzer, name string) bool {
	for _, a := range analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

func analyzerNames(analyzers []*Analyzer) map[string]bool {
	names := map[string]bool{}
	for _, a := range analyzers {
		names[a.Name] = true
	}
	return names
}

// ignoreRe matches the suppression syntax after the "//" comment marker.
var ignoreRe = regexp.MustCompile(`^lint:ignore\s+(\S+)(?:\s+(.*))?$`)

// pragma is one well-formed //lint:ignore comment, tracked for the stale-
// suppression audit: used records which of its named analyzers it actually
// silenced during a run.
type pragma struct {
	file  string
	line  int
	col   int
	names []string
	used  map[string]bool
}

// suppressions indexes //lint:ignore comments by (file, effective line):
// a comment suppresses matching findings on its own line and the next.
type suppressions struct {
	byLine  map[string]map[int]map[string][]*pragma
	pragmas []*pragma
}

func newSuppressions() *suppressions {
	return &suppressions{byLine: map[string]map[int]map[string][]*pragma{}}
}

func (s *suppressions) scan(pkg *Package, fset *token.FileSet, diags *[]Diagnostic) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments don't carry suppressions
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := ignoreRe.FindStringSubmatch(text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					*diags = append(*diags, Diagnostic{
						Analyzer: "lint",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed suppression: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				pr := &pragma{file: pos.Filename, line: pos.Line, col: pos.Column, used: map[string]bool{}}
				s.pragmas = append(s.pragmas, pr)
				for _, name := range strings.Split(m[1], ",") {
					pr.names = append(pr.names, name)
					s.add(pos.Filename, pos.Line, name, pr)
					s.add(pos.Filename, pos.Line+1, name, pr)
				}
			}
		}
	}
}

func (s *suppressions) add(file string, line int, analyzer string, pr *pragma) {
	lines := s.byLine[file]
	if lines == nil {
		lines = map[int]map[string][]*pragma{}
		s.byLine[file] = lines
	}
	set := lines[line]
	if set == nil {
		set = map[string][]*pragma{}
		lines[line] = set
	}
	set[analyzer] = append(set[analyzer], pr)
}

func (s *suppressions) suppressed(d Diagnostic) bool {
	if d.Analyzer == "lint" || d.Analyzer == IgnoreAuditAnalyzer.Name {
		return false // framework findings are not suppressible
	}
	prs := s.byLine[d.File][d.Line][d.Analyzer]
	for _, pr := range prs {
		pr.used[d.Analyzer] = true
	}
	return len(prs) > 0
}

// audit reports pragmas that silenced nothing: for each well-formed
// //lint:ignore, every named analyzer that was part of the run but did not
// produce a finding under the pragma is a stale suppression hiding a
// violation that no longer exists.
func (s *suppressions) audit(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, pr := range s.pragmas {
		for _, name := range pr.names {
			if !ran[name] || pr.used[name] {
				continue
			}
			out = append(out, Diagnostic{
				Analyzer: IgnoreAuditAnalyzer.Name,
				File:     pr.file,
				Line:     pr.line,
				Col:      pr.col,
				Message:  fmt.Sprintf("stale suppression: %s reports no finding here; remove the //lint:ignore", name),
			})
		}
	}
	return out
}

// rootIdent unwraps selector/index/star/paren chains to the base
// identifier, or nil if the base is not a plain identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
