package lint_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"nautilus/internal/lint"
)

// finding is the position-and-content triple the golden test compares on.
type finding struct {
	Line     int
	Analyzer string
	Message  string
}

// wantRe extracts golden expectations from fixture comments.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// parseWant reads the fixture and returns the expected findings: one per
// `// want "<analyzer>: <message>"` comment, plus a framework finding for
// the deliberately malformed suppression line.
func parseWant(t *testing.T, path string) []finding {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []finding
	for i, line := range strings.Split(string(b), "\n") {
		if m := wantRe.FindStringSubmatch(line); m != nil {
			analyzer, msg, ok := strings.Cut(m[1], ": ")
			if !ok {
				t.Fatalf("%s:%d: malformed want comment %q", path, i+1, m[1])
			}
			want = append(want, finding{Line: i + 1, Analyzer: analyzer, Message: msg})
		}
		if strings.TrimSpace(line) == "//lint:ignore floateq" {
			want = append(want, finding{
				Line:     i + 1,
				Analyzer: "lint",
				Message:  "malformed suppression: want //lint:ignore <analyzer> <reason>",
			})
		}
	}
	return want
}

func runOnFixture(t *testing.T) ([]lint.Diagnostic, string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", "violations")
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run([]*lint.Package{pkg}, lint.DefaultAnalyzers(), loader.Fset)
	return diags, filepath.Join(dir, "violations.go")
}

// TestViolationsGolden runs the full analyzer suite over the fixture
// package and asserts the exact diagnostic set: every violation class is
// caught at its marked line with its exact message, the valid suppression
// hides its finding, and the malformed suppression is itself reported.
func TestViolationsGolden(t *testing.T) {
	diags, fixture := runOnFixture(t)

	var got []finding
	for _, d := range diags {
		if filepath.Base(d.File) != "violations.go" {
			t.Errorf("finding in unexpected file %s", d.File)
		}
		if d.Col <= 0 {
			t.Errorf("finding at %s:%d has no column", d.File, d.Line)
		}
		got = append(got, finding{Line: d.Line, Analyzer: d.Analyzer, Message: d.Message})
	}
	want := parseWant(t, fixture)

	sortFindings := func(fs []finding) {
		for i := range fs {
			for j := i + 1; j < len(fs); j++ {
				if fs[j].Line < fs[i].Line || (fs[j].Line == fs[i].Line && fs[j].Analyzer < fs[i].Analyzer) {
					fs[i], fs[j] = fs[j], fs[i]
				}
			}
		}
	}
	sortFindings(got)
	sortFindings(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("diagnostics mismatch:\n got: %+v\nwant: %+v", got, want)
	}

	// Every analyzer class must appear at least once — the fixture is the
	// acceptance proof that the suite detects all four.
	seen := map[string]bool{}
	for _, f := range got {
		seen[f.Analyzer] = true
	}
	for _, a := range lint.DefaultAnalyzers() {
		if !seen[a.Name] {
			t.Errorf("fixture produced no %s finding", a.Name)
		}
	}
}

// TestDiagnosticJSONRoundTrip marshals the fixture's findings to JSON and
// back, asserting the -json output is lossless.
func TestDiagnosticJSONRoundTrip(t *testing.T) {
	diags, _ := runOnFixture(t)
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	b, err := json.Marshal(diags)
	if err != nil {
		t.Fatal(err)
	}
	var back []lint.Diagnostic
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(diags, back) {
		t.Errorf("JSON round-trip mismatch:\n got: %+v\nwant: %+v", back, diags)
	}
	for _, key := range []string{"analyzer", "file", "line", "col", "message"} {
		if !strings.Contains(string(b), `"`+key+`"`) {
			t.Errorf("JSON output missing %q field: %s", key, b)
		}
	}
}

// TestDiagnosticString pins the human output format the driver prints.
func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{Analyzer: "floateq", File: "x.go", Line: 3, Col: 9, Message: "m"}
	if got, want := d.String(), "x.go:3:9: floateq: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
