package lint_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"

	"nautilus/internal/lint"
)

// finding is the position-and-content tuple the golden test compares on.
type finding struct {
	File     string
	Line     int
	Analyzer string
	Message  string
}

// wantRe extracts golden expectations from fixture comments.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// parseWant reads one fixture file and returns the expected findings: one
// per `// want "<analyzer>: <message>"` comment, plus a framework finding
// for the deliberately malformed suppression line.
func parseWant(t *testing.T, path string) []finding {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(path)
	var want []finding
	for i, line := range strings.Split(string(b), "\n") {
		if m := wantRe.FindStringSubmatch(line); m != nil {
			analyzer, msg, ok := strings.Cut(m[1], ": ")
			if !ok {
				t.Fatalf("%s:%d: malformed want comment %q", path, i+1, m[1])
			}
			want = append(want, finding{File: base, Line: i + 1, Analyzer: analyzer, Message: msg})
		}
		if strings.TrimSpace(line) == "//lint:ignore floateq" {
			want = append(want, finding{
				File:     base,
				Line:     i + 1,
				Analyzer: "lint",
				Message:  "malformed suppression: want //lint:ignore <analyzer> <reason>",
			})
		}
	}
	return want
}

// fixtureFiles globs every .go file of the violations fixture package.
func fixtureFiles(t *testing.T) (dir string, files []string) {
	t.Helper()
	dir = filepath.Join("testdata", "src", "violations")
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files under %s: %v", dir, err)
	}
	return dir, files
}

func runOnFixture(t *testing.T) []lint.Diagnostic {
	t.Helper()
	dir, _ := fixtureFiles(t)
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return lint.Run([]*lint.Package{pkg}, lint.DefaultAnalyzers(), loader.Fset)
}

// TestViolationsGolden runs the full analyzer suite over the fixture
// package and asserts the exact diagnostic set: every violation class is
// caught at its marked line with its exact message, the valid suppressions
// hide their findings, and the malformed suppression is itself reported.
func TestViolationsGolden(t *testing.T) {
	diags := runOnFixture(t)
	_, files := fixtureFiles(t)

	known := map[string]bool{}
	var want []finding
	for _, f := range files {
		known[filepath.Base(f)] = true
		want = append(want, parseWant(t, f)...)
	}

	var got []finding
	for _, d := range diags {
		if !known[filepath.Base(d.File)] {
			t.Errorf("finding in unexpected file %s", d.File)
		}
		if d.Col <= 0 {
			t.Errorf("finding at %s:%d has no column", d.File, d.Line)
		}
		got = append(got, finding{File: filepath.Base(d.File), Line: d.Line, Analyzer: d.Analyzer, Message: d.Message})
	}

	sortFindings := func(fs []finding) {
		sort.Slice(fs, func(i, j int) bool {
			if fs[i].File != fs[j].File {
				return fs[i].File < fs[j].File
			}
			if fs[i].Line != fs[j].Line {
				return fs[i].Line < fs[j].Line
			}
			return fs[i].Analyzer < fs[j].Analyzer
		})
	}
	sortFindings(got)
	sortFindings(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("diagnostics mismatch:\n got: %+v\nwant: %+v", got, want)
	}

	// Every analyzer class must appear at least once — the fixture is the
	// acceptance proof that the suite detects every class it advertises.
	seen := map[string]bool{}
	for _, f := range got {
		seen[f.Analyzer] = true
	}
	for _, a := range lint.DefaultAnalyzers() {
		if !seen[a.Name] {
			t.Errorf("fixture produced no %s finding", a.Name)
		}
	}
}

// TestRunSortedByPosition pins the CLI contract: diagnostics arrive sorted
// by (file, line, analyzer).
func TestRunSortedByPosition(t *testing.T) {
	diags := runOnFixture(t)
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		before := a.File < b.File ||
			(a.File == b.File && a.Line < b.Line) ||
			(a.File == b.File && a.Line == b.Line && a.Analyzer <= b.Analyzer)
		if !before {
			t.Errorf("diagnostics out of order: %s before %s", a, b)
		}
	}
}

// TestRunTimedReportsEveryAnalyzer asserts -json timing covers the whole
// suite, in suite order.
func TestRunTimedReportsEveryAnalyzer(t *testing.T) {
	dir, _ := fixtureFiles(t)
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	analyzers := lint.DefaultAnalyzers()
	_, timings := lint.RunTimed([]*lint.Package{pkg}, analyzers, loader.Fset)
	if len(timings) != len(analyzers) {
		t.Fatalf("got %d timings, want %d", len(timings), len(analyzers))
	}
	for i, tm := range timings {
		if tm.Analyzer != analyzers[i].Name {
			t.Errorf("timing %d is %s, want %s", i, tm.Analyzer, analyzers[i].Name)
		}
		if tm.WallNs < 0 {
			t.Errorf("timing for %s is negative: %d", tm.Analyzer, tm.WallNs)
		}
	}
}

// TestIgnoreAuditScopedToRunSet asserts the stale-suppression audit judges
// only analyzers that were part of the run: with the suite trimmed to
// determinism (plus the audit itself), the stale determinism pragma is
// still flagged while pragmas naming analyzers outside the run set stay
// silent.
func TestIgnoreAuditScopedToRunSet(t *testing.T) {
	dir, _ := fixtureFiles(t)
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sub := []*lint.Analyzer{lint.DeterminismAnalyzer, lint.IgnoreAuditAnalyzer}
	diags := lint.Run([]*lint.Package{pkg}, sub, loader.Fset)
	audits := 0
	for _, d := range diags {
		if d.Analyzer != "ignoreaudit" {
			continue
		}
		audits++
		if filepath.Base(d.File) != "ignore_violations.go" {
			t.Errorf("audit flagged a pragma for an analyzer outside the run set: %s", d)
		}
	}
	if audits != 1 {
		t.Errorf("got %d ignoreaudit findings, want exactly the stale determinism pragma", audits)
	}

	// Without the audit analyzer in the set, no audit findings at all.
	diags = lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.DeterminismAnalyzer}, loader.Fset)
	for _, d := range diags {
		if d.Analyzer == "ignoreaudit" {
			t.Errorf("audit ran without being requested: %s", d)
		}
	}
}

// TestDiagnosticJSONRoundTrip marshals the fixture's findings to JSON and
// back, asserting the -json output is lossless.
func TestDiagnosticJSONRoundTrip(t *testing.T) {
	diags := runOnFixture(t)
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	b, err := json.Marshal(diags)
	if err != nil {
		t.Fatal(err)
	}
	var back []lint.Diagnostic
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(diags, back) {
		t.Errorf("JSON round-trip mismatch:\n got: %+v\nwant: %+v", back, diags)
	}
	for _, key := range []string{"analyzer", "file", "line", "col", "message"} {
		if !strings.Contains(string(b), `"`+key+`"`) {
			t.Errorf("JSON output missing %q field: %s", key, b)
		}
	}
}

// TestAnalyzeParallelDeterminism runs the parallel driver over two fixture
// packages twice and asserts byte-identical findings and per-package
// timing coverage — scheduling must not leak into the output.
func TestAnalyzeParallelDeterminism(t *testing.T) {
	vdir, _ := fixtureFiles(t)
	sdir := filepath.Join("testdata", "src", "summaries")
	loader, err := lint.NewLoader(vdir)
	if err != nil {
		t.Fatal(err)
	}
	vpkg, err := loader.LoadDir(vdir)
	if err != nil {
		t.Fatal(err)
	}
	spkg, err := loader.LoadDir(sdir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs := []*lint.Package{vpkg, spkg}
	first := lint.Analyze(pkgs, lint.DefaultAnalyzers(), loader.Fset)
	second := lint.Analyze(pkgs, lint.DefaultAnalyzers(), loader.Fset)
	if !reflect.DeepEqual(first.Findings, second.Findings) {
		t.Errorf("parallel runs differ:\n first: %+v\nsecond: %+v", first.Findings, second.Findings)
	}
	if len(first.Packages) != len(pkgs) {
		t.Fatalf("got %d package timings, want %d", len(first.Packages), len(pkgs))
	}
	for i, pt := range first.Packages {
		if pt.Package != pkgs[i].Path {
			t.Errorf("package timing %d is %s, want %s", i, pt.Package, pkgs[i].Path)
		}
		if pt.WallNs <= 0 {
			t.Errorf("package timing for %s is non-positive: %d", pt.Package, pt.WallNs)
		}
	}
}

// TestSelectAnalyzers pins the -analyzers spec semantics: include lists
// keep suite order, '-' excludes, mixes compose, unknown names error.
func TestSelectAnalyzers(t *testing.T) {
	all := lint.DefaultAnalyzers()
	names := func(as []*lint.Analyzer) []string {
		var out []string
		for _, a := range as {
			out = append(out, a.Name)
		}
		return out
	}

	if got, err := lint.SelectAnalyzers(all, ""); err != nil || len(got) != len(all) {
		t.Errorf("empty spec: got %d analyzers (err %v), want the full suite", len(got), err)
	}
	got, err := lint.SelectAnalyzers(all, "locksafe,ctxflow")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"ctxflow", "locksafe"}; !reflect.DeepEqual(names(got), want) {
		t.Errorf("include spec: got %v, want %v (suite order)", names(got), want)
	}
	got, err = lint.SelectAnalyzers(all, "-allochygiene")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all)-1 {
		t.Errorf("exclude spec: got %d analyzers, want %d", len(got), len(all)-1)
	}
	for _, a := range got {
		if a.Name == "allochygiene" {
			t.Error("exclude spec kept allochygiene")
		}
	}
	got, err = lint.SelectAnalyzers(all, "locksafe,ctxflow,-locksafe")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"ctxflow"}; !reflect.DeepEqual(names(got), want) {
		t.Errorf("mixed spec: got %v, want %v", names(got), want)
	}
	if _, err := lint.SelectAnalyzers(all, "nosuch"); err == nil {
		t.Error("unknown analyzer name did not error")
	}
}

// TestSummaryAwareMarking pins which analyzers advertise interprocedural
// summaries — the CLI's -list marker and the docs both key off this.
func TestSummaryAwareMarking(t *testing.T) {
	want := map[string]bool{
		"arenaescape":   true,
		"ctxflow":       true,
		"goroutinejoin": true,
		"locksafe":      true,
		"sessionorder":  true,
		"spanleak":      true,
		"storelease":    true,
		"uncheckederr":  true,
	}
	for _, a := range lint.DefaultAnalyzers() {
		if a.SummaryAware != want[a.Name] {
			t.Errorf("%s SummaryAware = %v, want %v", a.Name, a.SummaryAware, want[a.Name])
		}
	}
}

// TestDiagnosticString pins the human output format the driver prints.
func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{Analyzer: "floateq", File: "x.go", Line: 3, Col: 9, Message: "m"}
	if got, want := d.String(), "x.go:3:9: floateq: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
