package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package as the analyzers see it:
// syntax trees plus full go/types information.
type Package struct {
	// Path is the package import path ("nautilus/internal/opt").
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files holds the parsed files, including in-package _test.go files
	// when the loader's IncludeTests is set. External test packages
	// (package foo_test) are not loaded.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info

	// sums caches the interprocedural summary set (see summary.go); it is
	// computed once per package, on first use, by any summary-aware analyzer.
	sumOnce sync.Once
	sums    *summarySet
}

// Loader loads and type-checks the packages of a single Go module using
// only the standard library: module-internal imports are type-checked from
// source by the loader itself. Other imports (the standard library) are
// read as compiled export data out of the Go build cache when available —
// type-checked once by the toolchain and reused across lint runs — with
// the compiler-independent source importer as the fallback.
type Loader struct {
	Fset *token.FileSet
	// ModuleRoot is the absolute directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string
	// IncludeTests parses in-package _test.go files too.
	IncludeTests bool

	pkgs     map[string]*Package
	loading  map[string]bool
	dirOf    map[string]string // import path → directory override
	fallback types.ImporterFrom
	gc       types.ImporterFrom
	exports  *exportLookup
	// noExportData forces the source-importer fallback for every non-module
	// import (tests compare both importer modes through this).
	noExportData bool
}

// NewLoader creates a loader rooted at the module containing dir (dir
// itself, or the nearest ancestor with a go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:         fset,
		ModuleRoot:   root,
		ModulePath:   modPath,
		IncludeTests: true,
		pkgs:         map[string]*Package{},
		loading:      map[string]bool{},
		dirOf:        map[string]string{},
	}
	src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	l.fallback = src
	l.exports = &exportLookup{root: root}
	gc, ok := importer.ForCompiler(fset, "gc", l.exports.open).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: gc importer unavailable")
	}
	l.gc = gc
	return l, nil
}

// exportLookup resolves import paths to compiled export-data files. The
// map is built lazily by one `go list -export` invocation, which compiles
// (or reuses) export data in the Go build cache — so repeated lint runs
// skip re-type-checking the standard library from source entirely.
type exportLookup struct {
	root string

	once  sync.Once
	files map[string]string
}

// build populates the path → export-file map. Failures leave the map
// empty; the loader then falls back to the source importer.
func (e *exportLookup) build() {
	e.files = map[string]string{}
	cmd := exec.Command("go", "list", "-test", "-deps", "-export", "-f", "{{.ImportPath}}\t{{.Export}}", "./...")
	cmd.Dir = e.root
	out, err := cmd.Output()
	if err != nil {
		return
	}
	for _, line := range strings.Split(string(out), "\n") {
		path, file, ok := strings.Cut(line, "\t")
		if !ok || file == "" {
			continue
		}
		// Test-augmented variants list as "pkg [pkg.test]"; their export
		// data describes the in-package test build, not the plain import.
		if strings.Contains(path, " ") {
			continue
		}
		e.files[path] = file
	}
}

// has reports whether export data exists for path.
func (e *exportLookup) has(path string) bool {
	e.once.Do(e.build)
	return e.files[path] != ""
}

// open is the gc importer's lookup hook.
func (e *exportLookup) open(path string) (io.ReadCloser, error) {
	e.once.Do(e.build)
	file := e.files[path]
	if file == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(file)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// PackageRef names one module package resolved from a pattern, before any
// parsing or type-checking has happened.
type PackageRef struct {
	// Path is the package's import path.
	Path string
	// Dir is the absolute directory holding its sources.
	Dir string
}

// ResolvePackages maps the given patterns to module packages without
// parsing or type-checking anything — the cheap half of Load, split out so
// the incremental cache can decide which packages need a full analysis
// before paying for one. A pattern is a directory, or a directory followed
// by "/..." to include every package beneath it; patterns are interpreted
// relative to the module root unless absolute. The result is deduplicated
// and sorted by import path.
func (l *Loader) ResolvePackages(patterns ...string) ([]PackageRef, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		if pat == "" || pat == "." {
			pat = l.ModuleRoot
		} else if !filepath.IsAbs(pat) {
			pat = filepath.Join(l.ModuleRoot, pat)
		}
		if recursive {
			sub, err := goPackageDirs(pat)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, sub...)
		} else {
			dirs = append(dirs, pat)
		}
	}

	var refs []PackageRef
	seen := map[string]bool{}
	for _, dir := range dirs {
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		if seen[path] {
			continue
		}
		seen[path] = true
		refs = append(refs, PackageRef{Path: path, Dir: l.dirFor(path)})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Path < refs[j].Path })
	return refs, nil
}

// Load resolves the given patterns to module packages and type-checks
// them (and, transitively, every module package they import). The returned
// slice is sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	refs, err := l.ResolvePackages(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, ref := range refs {
		pkg, err := l.analysisPackage(ref.Path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir type-checks a single directory outside the module layout (test
// fixtures). Its import path is synthesized from the directory base name.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := filepath.Base(abs)
	l.dirOf[path] = abs
	return l.analysisPackage(path)
}

// importPathFor maps a module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps an import path back to a directory.
func (l *Loader) dirFor(path string) string {
	if d, ok := l.dirOf[path]; ok {
		return d
	}
	if path == l.ModulePath {
		return l.ModuleRoot
	}
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
}

// goPackageDirs returns every directory under root that contains Go files,
// skipping testdata, vendor, and hidden/underscore directories.
func goPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// load parses and type-checks one package without its test files
// (memoized), recursively loading module-internal imports first via the
// Importer interface below. Keeping imports test-free is what the go tool
// itself does: in-package test files may import packages that (indirectly)
// import this one, which is only a cycle if tests join the import graph.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	pkg, err := l.check(path, false)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// analysisPackage returns the package the analyzers should see: the
// test-augmented variant when IncludeTests is set and test files exist,
// else the plain import variant.
func (l *Loader) analysisPackage(path string) (*Package, error) {
	base, err := l.load(path)
	if err != nil {
		return nil, err
	}
	if !l.IncludeTests {
		return base, nil
	}
	files, err := l.parseDir(base.Dir, true)
	if err != nil {
		return nil, err
	}
	if len(files) == len(base.Files) {
		return base, nil // no in-package test files
	}
	return l.check(path, true)
}

// check runs one go/types pass over the package's files.
func (l *Loader) check(path string, withTests bool) (*Package, error) {
	dir := l.dirFor(path)
	files, err := l.parseDir(dir, withTests)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := &types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// parseDir parses the package's Go files: all non-test files plus, when
// withTests is set, _test.go files belonging to the same package. Files
// excluded by build constraints (//go:build lines or _GOOS/_GOARCH name
// suffixes) are skipped for the host platform, exactly as the go tool
// would — otherwise a portable/assembly file pair (tensor's SIMD
// fallbacks) would redeclare its symbols under the type checker.
func (l *Loader) parseDir(dir string, withTests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var pkgName string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !withTests {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		// External test packages are a separate compilation unit; skip.
		if isTest && strings.HasSuffix(f.Name.Name, "_test") {
			continue
		}
		if !isTest {
			if pkgName == "" {
				pkgName = f.Name.Name
			} else if f.Name.Name != pkgName {
				return nil, fmt.Errorf("lint: %s: mixed packages %q and %q", dir, pkgName, f.Name.Name)
			}
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return files, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// loaded by this loader; everything else (the standard library) reads
// cached export data when available, falling back to the source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if !l.noExportData && l.exports.has(path) {
		if pkg, err := l.gc.ImportFrom(path, srcDir, 0); err == nil {
			return pkg, nil
		}
	}
	return l.fallback.ImportFrom(path, srcDir, 0)
}
