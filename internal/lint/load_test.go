package lint

import (
	"path/filepath"
	"reflect"
	"testing"
)

// loadFixtureDiags runs the full analyzer suite over the violations
// fixture with or without the export-data importer.
func loadFixtureDiags(t *testing.T, noExportData bool) []Diagnostic {
	t.Helper()
	dir := filepath.Join("testdata", "src", "violations")
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader.noExportData = noExportData
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return Run([]*Package{pkg}, DefaultAnalyzers(), loader.Fset)
}

// stripPos projects diagnostics onto their content; positions are compared
// via line/col only because the two loaders use distinct FileSets.
type diagKey struct {
	Analyzer, Message string
	Line, Col         int
}

// TestExportDataImporterMatchesSourceImporter is the regression guard for
// the cached stdlib import path: type-checking against compiled export
// data from the Go build cache must produce exactly the diagnostics the
// slow source-importer path produces.
func TestExportDataImporterMatchesSourceImporter(t *testing.T) {
	fast := loadFixtureDiags(t, false)
	slow := loadFixtureDiags(t, true)
	key := func(ds []Diagnostic) []diagKey {
		out := make([]diagKey, len(ds))
		for i, d := range ds {
			out[i] = diagKey{d.Analyzer, d.Message, d.Line, d.Col}
		}
		return out
	}
	if !reflect.DeepEqual(key(fast), key(slow)) {
		t.Errorf("importer modes disagree:\n export-data: %+v\n source: %+v", fast, slow)
	}
	if len(fast) == 0 {
		t.Error("fixture produced no diagnostics")
	}
}

// TestExportLookupFindsStdlib asserts the lazy `go list -export` sweep
// actually resolves standard-library export data (the speedup is real, not
// a silent fallback to the source importer).
func TestExportLookupFindsStdlib(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"fmt", "time", "go/types"} {
		if !loader.exports.has(path) {
			t.Errorf("no export data for %q; go list sweep failed", path)
		}
	}
	if loader.exports.has("nonexistent/package") {
		t.Error("phantom export data for nonexistent package")
	}
}
