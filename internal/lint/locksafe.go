package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockSafeAnalyzer checks sync.Mutex / sync.RWMutex discipline with a
// forward lock-state dataflow over the function CFG, made interprocedural
// by the summary layer: lock helpers (a method that acquires and exits
// still holding) hand the held state to their callers, unlock helpers
// release it, and a call made with a lock held is checked against the
// callee's transitive may-acquire set.
//
// Finding classes:
//
//   - a Lock/RLock not matched by an unlock on every path to return —
//     panic edges included, deferred unlocks (direct, in a deferred
//     closure, or through an unlock-helper) credited;
//   - Lock-vs-RLock mismatches: releasing a read lock with Unlock (or a
//     write lock with RUnlock), and acquiring while incompatibly held
//     (double Lock, Lock under RLock, RLock under Lock);
//   - re-acquisition deadlocks: calling a function (self-recursion
//     included) that may acquire a mutex this function already holds.
//
// A function that holds a summarizable lock (receiver-, parameter-, or
// package-rooted) at every exit is treated as a lock helper, not a leak:
// the obligation transfers to its callers. The caveat is a helper chain
// nobody tops off — if no caller ever releases, nothing fires. Locks
// rooted in local variables cannot transfer and are flagged directly.
// Mutexes reached through embedding or non-identifier roots are not
// tracked. Test files are skipped.
var LockSafeAnalyzer = &Analyzer{
	Name:         "locksafe",
	Doc:          "flags mutexes locked without unlock on every path, Lock/RLock mismatches, double locks, and held-lock calls that may re-acquire",
	SummaryAware: true,
	Run:          runLockSafe,
}

func runLockSafe(p *Pass) {
	sums := p.Pkg.summaries()
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		funcBodies(f, func(fb funcBody) {
			cfg := buildCFG(fb.body)
			exitf, _ := lockCheckBody(sums, info, fb, cfg, p.Reportf)
			for k, h := range exitf.held {
				name := k.name()
				switch {
				case !h.must:
					p.Reportf(h.pos, "%s.%s is not released on every path to return; add defer %s.%s() or unlock the missed branch",
						name, h.mode.lockName(), name, h.mode.unlockName())
				case fb.decl != nil:
					if _, ok := keyToSym(info, fb.decl, k); !ok {
						p.Reportf(h.pos, "%s is locked but never unlocked, and no caller can reach it to release it", name)
					}
					// A summarizable must-held exit is the lock-helper shape:
					// the caller-side check inherits the obligation.
				}
			}
		})
	}
}

// lockKey names one mutex inside a single function body: the root
// identifier's object plus the selector path down to the mutex.
type lockKey struct {
	root types.Object
	path string // ".mu", ".state.mu", or "" when the root is the mutex
}

func (k lockKey) name() string { return k.root.Name() + k.path }

// heldInfo is the per-path state of one held mutex.
type heldInfo struct {
	mode lockMode
	must bool      // held on every path reaching this point
	pos  token.Pos // earliest acquisition site (for leak findings)
}

// relInfo records a release of a mutex that was not locally acquired —
// the unlock-helper shape.
type relInfo struct {
	mode lockMode
	must bool
}

// lockFact is the entry state of one CFG node.
type lockFact struct {
	held map[lockKey]heldInfo
	rel  map[lockKey]relInfo
}

func newLockFact() *lockFact {
	return &lockFact{held: map[lockKey]heldInfo{}, rel: map[lockKey]relInfo{}}
}

func (f *lockFact) clone() *lockFact {
	c := newLockFact()
	for k, v := range f.held {
		c.held[k] = v
	}
	for k, v := range f.rel {
		c.rel[k] = v
	}
	return c
}

// mergeFrom folds src into f at a join point: held/released stay may-facts
// (union), must survives only when both sides agree, and the earliest
// acquisition position wins.
func (f *lockFact) mergeFrom(src *lockFact) bool {
	changed := false
	for k, sv := range src.held {
		dv, ok := f.held[k]
		if !ok {
			sv.must = false
			f.held[k] = sv
			changed = true
			continue
		}
		nv := dv
		nv.must = dv.must && sv.must
		if sv.mode == lockWrite {
			nv.mode = lockWrite
		}
		if sv.pos < nv.pos {
			nv.pos = sv.pos
		}
		if nv != dv {
			f.held[k] = nv
			changed = true
		}
	}
	for k, dv := range f.held {
		if _, ok := src.held[k]; !ok && dv.must {
			dv.must = false
			f.held[k] = dv
			changed = true
		}
	}
	for k, sv := range src.rel {
		dv, ok := f.rel[k]
		if !ok {
			sv.must = false
			f.rel[k] = sv
			changed = true
			continue
		}
		nv := dv
		nv.must = dv.must && sv.must
		if nv != dv {
			f.rel[k] = nv
			changed = true
		}
	}
	for k, dv := range f.rel {
		if _, ok := src.rel[k]; !ok && dv.must {
			dv.must = false
			f.rel[k] = dv
			changed = true
		}
	}
	return changed
}

// lockReporter receives findings during the reporting sweep; nil-safe via
// nopLockReport.
type lockReporter func(pos token.Pos, format string, args ...any)

func nopLockReport(token.Pos, string, ...any) {}

// lockOp classifies a call as a mutex operation on a tracked key.
func lockOp(info *types.Info, call *ast.CallExpr) (k lockKey, mode lockMode, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return lockKey{}, 0, false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		mode, acquire = lockWrite, true
	case "RLock":
		mode, acquire = lockRead, true
	case "Unlock":
		mode, acquire = lockWrite, false
	case "RUnlock":
		mode, acquire = lockRead, false
	default:
		return lockKey{}, 0, false, false
	}
	k, ok = mutexRef(info, sel.X)
	return k, mode, acquire, ok
}

// mutexRef decomposes the receiver of a Lock-family call into a lockKey;
// ok is false unless the receiver is a sync.Mutex/RWMutex rooted at a
// plain identifier.
func mutexRef(info *types.Info, recv ast.Expr) (lockKey, bool) {
	t := info.TypeOf(recv)
	if t == nil || (!namedType(t, "sync", "Mutex") && !namedType(t, "sync", "RWMutex")) {
		return lockKey{}, false
	}
	root := rootIdent(recv)
	if root == nil {
		return lockKey{}, false
	}
	obj := info.ObjectOf(root)
	if obj == nil {
		return lockKey{}, false
	}
	return lockKey{root: obj, path: relPathFrom(recv, root)}, true
}

// relPathFrom renders the selector path of e relative to its root
// identifier ("s.state.mu" → ".state.mu").
func relPathFrom(e ast.Expr, root *ast.Ident) string {
	full := types.ExprString(e)
	if rest, ok := strings.CutPrefix(full, root.Name); ok {
		return rest
	}
	return full
}

func recvSym(rel string) lockSym                 { return lockSym{recv: true, param: -1, rel: rel} }
func paramSym(i int, rel string) lockSym         { return lockSym{param: i, rel: rel} }
func globalSym(o types.Object, r string) lockSym { return lockSym{param: -1, global: o, rel: r} }

// keyToSym lifts an intraprocedural lock key into the function's summary
// frame: package-level root, method receiver, or parameter. Locks rooted
// in local variables are not expressible and return false.
func keyToSym(info *types.Info, decl *ast.FuncDecl, k lockKey) (lockSym, bool) {
	if v, ok := k.root.(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return globalSym(k.root, k.path), true
	}
	if decl == nil {
		return lockSym{}, false
	}
	if ro := recvObj(info, decl); ro != nil && ro == k.root {
		return recvSym(k.path), true
	}
	if i := paramObjIndex(info, decl, k.root); i >= 0 {
		return paramSym(i, k.path), true
	}
	return lockSym{}, false
}

// symToKey maps a callee's lock symbol into the caller's frame at one call
// site: the receiver expression for receiver-rooted symbols, the matching
// argument for parameter-rooted ones, the package variable directly.
func symToKey(info *types.Info, call *ast.CallExpr, sym lockSym) (lockKey, bool) {
	switch {
	case sym.global != nil:
		return lockKey{root: sym.global, path: sym.rel}, true
	case sym.recv:
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return lockKey{}, false
		}
		return exprKey(info, sel.X, sym.rel)
	case sym.param >= 0 && sym.param < len(call.Args):
		a := call.Args[sym.param]
		for {
			if pe, ok := a.(*ast.ParenExpr); ok {
				a = pe.X
				continue
			}
			if ue, ok := a.(*ast.UnaryExpr); ok && ue.Op == token.AND {
				a = ue.X
				continue
			}
			break
		}
		return exprKey(info, a, sym.rel)
	}
	return lockKey{}, false
}

func exprKey(info *types.Info, e ast.Expr, rel string) (lockKey, bool) {
	root := rootIdent(e)
	if root == nil {
		return lockKey{}, false
	}
	obj := info.ObjectOf(root)
	if obj == nil {
		return lockKey{}, false
	}
	return lockKey{root: obj, path: relPathFrom(e, root) + rel}, true
}

// recvObj returns the declared receiver object of a method, or nil.
func recvObj(info *types.Info, decl *ast.FuncDecl) types.Object {
	if decl == nil || decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[decl.Recv.List[0].Names[0]]
}

// paramObjIndex returns obj's position among decl's parameters, or -1.
func paramObjIndex(info *types.Info, decl *ast.FuncDecl, obj types.Object) int {
	if decl == nil || decl.Type.Params == nil {
		return -1
	}
	idx := 0
	for _, f := range decl.Type.Params.List {
		if len(f.Names) == 0 {
			idx++
			continue
		}
		for _, name := range f.Names {
			if info.Defs[name] == obj {
				return idx
			}
			idx++
		}
	}
	return -1
}

// lockCheckBody runs the lock-state analysis over one function body:
// solve to fixpoint, replay each node once against its converged entry
// fact for findings, then apply deferred releases to the exit state.
// Returns the post-defer exit fact and the deferred release set. report
// may be nil (summary computation).
func lockCheckBody(s *summarySet, info *types.Info, fb funcBody, cfg *funcCFG, report lockReporter) (*lockFact, map[lockKey]lockMode) {
	if report == nil {
		report = nopLockReport
	}
	transfer := func(n *cfgNode, in *lockFact) *lockFact {
		out := in.clone()
		lockTransfer(s, info, n, out, nopLockReport)
		return out
	}
	facts := forwardSolve(cfg, newLockFact(), transfer,
		func(f *lockFact) *lockFact { return f.clone() },
		func(dst, src *lockFact) bool { return dst.mergeFrom(src) })

	for _, n := range cfg.nodes {
		in, ok := facts[n]
		if !ok || n.stmt == nil {
			continue
		}
		lockTransfer(s, info, n, in.clone(), report)
	}

	exitf := newLockFact()
	if f, ok := facts[cfg.exit]; ok {
		exitf = f.clone()
	}
	deferred := deferredLockReleases(s, info, fb.body)
	for k, m := range deferred {
		if h, held := exitf.held[k]; held {
			switch {
			case h.mode == lockRead && m == lockWrite:
				report(h.pos, "%s is RLock-held at return but the deferred release is Unlock; use RUnlock", k.name())
			case h.mode == lockWrite && m == lockRead:
				report(h.pos, "%s is Lock-held at return but the deferred release is RUnlock; use Unlock", k.name())
			}
			delete(exitf.held, k)
		} else {
			exitf.rel[k] = relInfo{mode: m, must: true}
		}
	}
	return exitf, deferred
}

// lockTransfer applies one node's lock effects to the fact in place.
// Defers are handled at exit by lockCheckBody; go statements run on
// another goroutine and contribute nothing synchronously.
func lockTransfer(s *summarySet, info *types.Info, n *cfgNode, f *lockFact, report lockReporter) {
	switch n.stmt.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return
	}
	for _, root := range headerNodes(n) {
		shallowInspect(root, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if k, mode, acquire, ok := lockOp(info, call); ok {
				applyLockOp(f, call, k, mode, acquire, report)
				return true
			}
			if s != nil {
				if sum := s.calleeSummary(call); sum != nil {
					applyCalleeLocks(info, f, call, sum, report)
				}
			}
			return true
		})
	}
}

// applyLockOp transfers one direct Lock/RLock/Unlock/RUnlock.
func applyLockOp(f *lockFact, call *ast.CallExpr, k lockKey, mode lockMode, acquire bool, report lockReporter) {
	name := k.name()
	h, held := f.held[k]
	if acquire {
		if held && h.must {
			switch {
			case mode == lockWrite && h.mode == lockWrite:
				report(call.Pos(), "second Lock of %s deadlocks: it is already locked on this path", name)
			case mode == lockWrite && h.mode == lockRead:
				report(call.Pos(), "Lock of %s while it is RLock-held deadlocks; release the read lock first", name)
			case mode == lockRead && h.mode == lockWrite:
				report(call.Pos(), "RLock of %s while it is Lock-held deadlocks; release the write lock first", name)
			}
		}
		nv := heldInfo{mode: mode, must: true, pos: call.Pos()}
		if held {
			if h.pos < nv.pos {
				nv.pos = h.pos
			}
			if h.mode == lockWrite {
				nv.mode = lockWrite
			}
		}
		f.held[k] = nv
		return
	}
	if held {
		switch {
		case h.mode == lockRead && mode == lockWrite:
			report(call.Pos(), "%s is read-locked here; release it with RUnlock, not Unlock", name)
		case h.mode == lockWrite && mode == lockRead:
			report(call.Pos(), "%s is write-locked here; release it with Unlock, not RUnlock", name)
		}
		delete(f.held, k)
		return
	}
	// Releasing a lock this function never acquired: the unlock-helper
	// shape, recorded for the caller-side summary.
	f.rel[k] = relInfo{mode: mode, must: true}
}

// applyCalleeLocks transfers a local callee's summarized lock effects and
// checks re-acquisition deadlocks against the pre-call held set.
func applyCalleeLocks(info *types.Info, f *lockFact, call *ast.CallExpr, sum *funcSummary, report lockReporter) {
	for sym, m := range sum.mayLock {
		k, ok := symToKey(info, call, sym)
		if !ok {
			continue
		}
		if h, held := f.held[k]; held && h.must && !(h.mode == lockRead && m == lockRead) {
			report(call.Pos(), "%s may %s %s, which is already held at this call; the re-acquisition deadlocks",
				sum.fn.Name(), m.lockName(), k.name())
		}
	}
	for sym, m := range sum.releasesLock {
		k, ok := symToKey(info, call, sym)
		if !ok {
			continue
		}
		if _, held := f.held[k]; held {
			delete(f.held, k)
		} else {
			f.rel[k] = relInfo{mode: m, must: true}
		}
	}
	for sym, m := range sum.holdsAtExit {
		k, ok := symToKey(info, call, sym)
		if !ok {
			continue
		}
		nv := heldInfo{mode: m, must: true, pos: call.Pos()}
		if h, held := f.held[k]; held && h.pos < nv.pos {
			nv.pos = h.pos
		}
		f.held[k] = nv
	}
}

// deferredLockReleases collects the releases every exit path runs: direct
// deferred unlocks, unlocks inside deferred closures, and deferred calls
// to unlock-helpers.
func deferredLockReleases(s *summarySet, info *types.Info, body *ast.BlockStmt) map[lockKey]lockMode {
	out := map[lockKey]lockMode{}
	record := func(call *ast.CallExpr) {
		if k, m, acquire, ok := lockOp(info, call); ok {
			if !acquire {
				out[k] = m
			}
			return
		}
		if s == nil {
			return
		}
		if sum := s.calleeSummary(call); sum != nil {
			for sym, m := range sum.releasesLock {
				if k, ok := symToKey(info, call, sym); ok {
					out[k] = m
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		record(ds.Call)
		if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					record(call)
				}
				return true
			})
		}
		return true
	})
	return out
}

// lockSummaryFacts fills a summary's lock fields from the body analysis:
// must-held summarizable keys become holdsAtExit, must-releases become
// releasesLock, and mayLock unions every reachable acquisition.
func lockSummaryFacts(s *summarySet, n *cgNode, sum *funcSummary) {
	info := s.pkg.Info
	fb := funcBody{decl: n.decl, typ: n.decl.Type, body: n.decl.Body}
	exitf, _ := lockCheckBody(s, info, fb, n.funcCFG(), nil)
	for k, h := range exitf.held {
		if !h.must {
			continue
		}
		if sym, ok := keyToSym(info, n.decl, k); ok {
			if sum.holdsAtExit == nil {
				sum.holdsAtExit = map[lockSym]lockMode{}
			}
			sum.holdsAtExit[sym] = h.mode
		}
	}
	for k, r := range exitf.rel {
		if !r.must {
			continue
		}
		if sym, ok := keyToSym(info, n.decl, k); ok {
			if sum.releasesLock == nil {
				sum.releasesLock = map[lockSym]lockMode{}
			}
			sum.releasesLock[sym] = r.mode
		}
	}
	sum.mayLock = mayLockSet(s, info, n)
}

// mayLockSet collects every lock the function may acquire synchronously,
// its own operations plus local callees' transitive sets, translated into
// this function's frame. Goroutine launches and closure bodies are
// excluded (they do not acquire on the caller's control flow).
func mayLockSet(s *summarySet, info *types.Info, n *cgNode) map[lockSym]lockMode {
	var out map[lockSym]lockMode
	add := func(sym lockSym, m lockMode) {
		if out == nil {
			out = map[lockSym]lockMode{}
		}
		if cur, ok := out[sym]; !ok || (m == lockWrite && cur == lockRead) {
			out[sym] = m
		}
	}
	ast.Inspect(n.decl.Body, func(x ast.Node) bool {
		switch x.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if k, m, acquire, ok := lockOp(info, call); ok {
			if acquire {
				if sym, ok := keyToSym(info, n.decl, k); ok {
					add(sym, m)
				}
			}
			return true
		}
		if sum := s.calleeSummary(call); sum != nil {
			for csym, m := range sum.mayLock {
				if k, ok := symToKey(info, call, csym); ok {
					if sym, ok := keyToSym(info, n.decl, k); ok {
						add(sym, m)
					}
				}
			}
		}
		return true
	})
	return out
}
