package lint

import (
	"go/ast"
	"go/types"
)

const corePkgPath = "nautilus/internal/core"

// SessionOrderAnalyzer checks the event ordering of core.Planner sessions.
// The planner API is a protocol: a fresh planner has no plan until the
// first Replan; evolution events (GrowData, AddCandidates, RemoveCandidate)
// stage work that the next Replan folds in; and a Replan whose error is
// discarded leaves the session in an unknown state — the staged events may
// or may not have landed, and the cached Plan may be stale or nil. Reading
// Plan at the wrong point silently trains against the wrong workload; the
// multi-tenant planner service multiplexes many concurrent sessions, where
// that mistake is invisible until the wrong model wins selection.
//
// Declared against the typestate engine as a four-state protocol:
//
//	planned --GrowData/Add/Remove--> staged --Replan--> planned
//	fresh (NewPlanner) stays fresh under staging; Replan promotes it
//	failed (Replan with discarded error) absorbs all events until a
//	        properly handled Replan leaves it
//
// Findings: Plan read while fresh (nil plan), while staged (stale plan),
// or while failed; and any evolution event fired while failed. Paths merge
// pessimistically (worst state wins), so a Plan read that is stale on any
// path through the session is flagged. Planner-typed parameters are
// assumed planned: the caller owns the session's history. Test files are
// skipped.
var SessionOrderAnalyzer = &Analyzer{
	Name:         "sessionorder",
	Doc:          "flags core.Planner sessions reading Plan before Replan folds staged events, or evolving after a failed Replan",
	SummaryAware: true,
	Run:          func(p *Pass) { runTypestate(p, sessionOrderSpec) },
}

var failedMutationMsg = map[string]string{
	"failed": "planner %s is mutated after a Replan whose error was discarded; handle the error (or Replan again) first",
}

var sessionOrderSpec = &typestateSpec{
	name:      "sessionorder",
	origin:    plannerOrigin,
	errResult: true,
	valueType: func(p *Pass, t types.Type) bool { return namedType(t, corePkgPath, "Planner") },
	// Rank order is best→worst for the pessimistic path merge: a session
	// that is planned on one path and failed on another must be treated as
	// failed at the join.
	states:     []string{"planned", "staged", "fresh", "failed"},
	start:      "fresh",
	paramStart: "planned",
	events: []eventSpec{
		{method: "GrowData", to: "staged", keepIn: []string{"fresh", "failed"}, badIn: failedMutationMsg},
		{method: "AddCandidates", to: "staged", keepIn: []string{"fresh", "failed"}, badIn: failedMutationMsg},
		{method: "RemoveCandidate", to: "staged", keepIn: []string{"fresh", "failed"}, badIn: failedMutationMsg},
		{method: "Replan", to: "planned", errDiscardedTo: "failed"},
		{method: "Plan", badIn: map[string]string{
			"fresh":  "planner %s's Plan is read before any Replan; the plan is nil until the first Replan succeeds",
			"staged": "planner %s has staged evolution events; call Replan before reading Plan",
			"failed": "planner %s's Plan is read after a Replan whose error was discarded; handle the error first",
		}},
	},
}

// plannerOrigin matches core.NewPlanner calls: the exported constructor
// returning (*core.Planner, error). Accessors returning an existing
// planner (ModelSelection.Planner()) are not origins — the session history
// belongs to the owner.
func plannerOrigin(p *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "NewPlanner" {
			return false
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name != "NewPlanner" {
			return false
		}
	default:
		return false
	}
	tup, ok := p.Pkg.Info.TypeOf(call).(*types.Tuple)
	return ok && tup.Len() == 2 && namedType(tup.At(0).Type(), corePkgPath, "Planner")
}
