package lint

import (
	"go/ast"
	"go/types"
)

const obsPkgPath = "nautilus/internal/obs"

// SpanLeakAnalyzer flags obs spans that are started but not ended on every
// path to the function exit. A span that never reaches End never flushes to
// the trace sink, silently truncating the profile the cost-model
// conformance report depends on — and because obs.Span.End is idempotent,
// the fix (a defer, or an End on the missed branch) is always safe.
//
// A span variable counts as handled when:
//
//   - any defer in the function ends it (`defer sp.End()` directly, or a
//     deferred closure whose body calls sp.End() — the trainer's
//     "close spans left open by error returns" pattern), or
//   - it escapes the function — returned, stored into a struct field,
//     global, composite, map or slice, sent on a channel, passed to a call,
//     or captured by a non-deferred closure — in which case ending it is
//     the new owner's job, or
//   - every path from its creation to the exit passes a statement calling
//     sp.End() (early returns included; explicit panic(...) statements edge
//     to exit, so a panicking path with no defer fails this test — the
//     span-on-panic-path case).
//
// A Start/Child result that is never bound at all is flagged outright.
// Test files are skipped: test spans die with the process.
//
// The interprocedural layer sharpens both directions: passing the span to
// a package-local helper whose summary ends it on every path counts as an
// End (directly or deferred), so delegated cleanup stops being a false
// positive — while passing it to a helper that provably keeps it local
// without ending it no longer counts as an ownership-transferring escape,
// closing the delegation false-negative hole.
var SpanLeakAnalyzer = &Analyzer{
	Name:         "spanleak",
	Doc:          "flags obs spans started without End on every exit path (early returns, panics without defer, dropped span handles)",
	SummaryAware: true,
	Run:          runSpanLeak,
}

func runSpanLeak(p *Pass) {
	sums := p.Pkg.summaries()
	for _, f := range p.Pkg.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		funcBodies(f, func(fb funcBody) { spanLeakFunc(p, sums, fb) })
	}
}

// spanOrigin matches a call whose single result is *obs.Span from the
// span-creating methods.
func spanOrigin(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Start" && sel.Sel.Name != "Child" {
		return false
	}
	return namedType(p.Pkg.Info.TypeOf(call), obsPkgPath, "Span")
}

func spanLeakFunc(p *Pass, sums *summarySet, fb funcBody) {
	cfg := buildCFG(fb.body)
	info := p.Pkg.Info
	endsSpan := func(f paramFacts) bool { return f.EndsSpan }

	// Dropped handles: a bare Start/Child call as its own statement.
	for _, n := range cfg.nodes {
		es, ok := n.stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		if call, ok := es.X.(*ast.CallExpr); ok && spanOrigin(p, call) {
			p.Reportf(call.Pos(), "span from %s is dropped without being ended; bind it and defer End", spanMethodName(call))
		}
	}

	// Origins: sp := x.Start(...) / sp = x.Child(...) with a single plain
	// identifier on the left.
	type origin struct {
		obj  types.Object
		node *cfgNode
		call *ast.CallExpr
	}
	var origins []origin
	for _, n := range cfg.nodes {
		as, ok := n.stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			continue
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !spanOrigin(p, call) {
			continue
		}
		obj := identObj(info, as.Lhs[0])
		if obj == nil || obj.Name() == "_" {
			continue
		}
		origins = append(origins, origin{obj: obj, node: n, call: call})
	}

	for _, o := range origins {
		if sums.deferredDischarge(fb.body, o.obj, "End", endsSpan) || objEscapes(info, sums, fb.body, o.obj) {
			continue
		}
		endsAt := func(n *cfgNode) bool {
			return headerContains(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				return ok && sums.dischargesAt(call, o.obj, "End", endsSpan)
			})
		}
		if !cfg.mustPassFrom(o.node, endsAt) {
			p.Reportf(o.call.Pos(), "span %s is not ended on every path to return; add defer %s.End() or end it on the missed branch", o.obj.Name(), o.obj.Name())
		}
	}
}

func spanMethodName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "Start"
}

// The escape and deferred-End judgments moved to the shared summary layer
// (objEscapes / deferredDischarge in summary.go), which credits delegation
// to local helpers; only parentMap remains here.

// parentMap builds a child→parent map for the subtree.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
