package lint

import (
	"go/ast"
)

const obsPkgPath = "nautilus/internal/obs"

// SpanLeakAnalyzer flags obs spans that are started but not ended on every
// path to the function exit. A span that never reaches End never flushes to
// the trace sink, silently truncating the profile the cost-model
// conformance report depends on — and because obs.Span.End is idempotent,
// the fix (a defer, or an End on the missed branch) is always safe.
//
// The protocol (Start→End) is declared as a typestateSpec; the engine in
// typestate.go supplies the path analysis. A span variable counts as
// handled when:
//
//   - any defer in the function ends it (`defer sp.End()` directly, or a
//     deferred closure whose body calls sp.End() — the trainer's
//     "close spans left open by error returns" pattern), or
//   - it escapes the function — returned, stored into a struct field,
//     global, composite, map or slice, sent on a channel, passed to a call,
//     or captured by a non-deferred closure — in which case ending it is
//     the new owner's job, or
//   - every path from its creation to the exit passes a statement calling
//     sp.End() (early returns included; explicit panic(...) statements edge
//     to exit, so a panicking path with no defer fails this test — the
//     span-on-panic-path case).
//
// A Start/Child result that is never bound at all is flagged outright, as
// is a span re-bound before its End (the earlier span's only handle is
// gone) and a span started inside a loop whose deferred End sits in the
// same loop (the defer runs at function exit, not per iteration).
// Test files are skipped: test spans die with the process.
//
// The interprocedural layer sharpens both directions: passing the span to
// a package-local helper whose summary ends it on every path counts as an
// End (directly or deferred), so delegated cleanup stops being a false
// positive — while passing it to a helper that provably keeps it local
// without ending it no longer counts as an ownership-transferring escape,
// closing the delegation false-negative hole.
var SpanLeakAnalyzer = &Analyzer{
	Name:         "spanleak",
	Doc:          "flags obs spans started without End on every exit path (early returns, panics without defer, dropped span handles)",
	SummaryAware: true,
	Run:          func(p *Pass) { runTypestate(p, spanLeakSpec) },
}

// spanLeakSpec declares the Start→End obligation. No simulation leg: a span
// has no use-after-End hazard (End is idempotent), only the exit
// obligation.
var spanLeakSpec = &typestateSpec{
	name:         "spanleak",
	origin:       spanOrigin,
	originLabel:  spanMethodName,
	unboundMsg:   "span from %s is dropped without being ended; bind it and defer End",
	terminal:     "End",
	terminalFact: func(f paramFacts) bool { return f.EndsSpan },
	leakMsg:      "span %s is not ended on every path to return; add defer %s.End() or end it on the missed branch",
	overwriteMsg: "span %s is re-bound before being ended; the earlier span never reaches End — end it before re-binding",
	deferLoopMsg: "span %s is started in a loop but its deferred End runs at function exit, not per iteration; end it at the end of the iteration",
}

// spanOrigin matches a call whose single result is *obs.Span from the
// span-creating methods.
func spanOrigin(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Start" && sel.Sel.Name != "Child" {
		return false
	}
	return namedType(p.Pkg.Info.TypeOf(call), obsPkgPath, "Span")
}

func spanMethodName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "Start"
}

// The escape and deferred-End judgments live in the shared summary layer
// (objEscapes / deferredDischarge in summary.go), which credits delegation
// to local helpers; only parentMap remains here.

// parentMap builds a child→parent map for the subtree.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
