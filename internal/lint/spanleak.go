package lint

import (
	"go/ast"
	"go/types"
)

const obsPkgPath = "nautilus/internal/obs"

// SpanLeakAnalyzer flags obs spans that are started but not ended on every
// path to the function exit. A span that never reaches End never flushes to
// the trace sink, silently truncating the profile the cost-model
// conformance report depends on — and because obs.Span.End is idempotent,
// the fix (a defer, or an End on the missed branch) is always safe.
//
// A span variable counts as handled when:
//
//   - any defer in the function ends it (`defer sp.End()` directly, or a
//     deferred closure whose body calls sp.End() — the trainer's
//     "close spans left open by error returns" pattern), or
//   - it escapes the function — returned, stored into a struct field,
//     global, composite, map or slice, sent on a channel, passed to a call,
//     or captured by a non-deferred closure — in which case ending it is
//     the new owner's job, or
//   - every path from its creation to the exit passes a statement calling
//     sp.End() (early returns included; explicit panic(...) statements edge
//     to exit, so a panicking path with no defer fails this test — the
//     span-on-panic-path case).
//
// A Start/Child result that is never bound at all is flagged outright.
// Test files are skipped: test spans die with the process.
var SpanLeakAnalyzer = &Analyzer{
	Name: "spanleak",
	Doc:  "flags obs spans started without End on every exit path (early returns, panics without defer, dropped span handles)",
	Run:  runSpanLeak,
}

func runSpanLeak(p *Pass) {
	for _, f := range p.Pkg.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		funcBodies(f, func(fb funcBody) { spanLeakFunc(p, fb) })
	}
}

// spanOrigin matches a call whose single result is *obs.Span from the
// span-creating methods.
func spanOrigin(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Start" && sel.Sel.Name != "Child" {
		return false
	}
	return namedType(p.Pkg.Info.TypeOf(call), obsPkgPath, "Span")
}

func spanLeakFunc(p *Pass, fb funcBody) {
	cfg := buildCFG(fb.body)
	info := p.Pkg.Info

	// Dropped handles: a bare Start/Child call as its own statement.
	for _, n := range cfg.nodes {
		es, ok := n.stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		if call, ok := es.X.(*ast.CallExpr); ok && spanOrigin(p, call) {
			p.Reportf(call.Pos(), "span from %s is dropped without being ended; bind it and defer End", spanMethodName(call))
		}
	}

	// Origins: sp := x.Start(...) / sp = x.Child(...) with a single plain
	// identifier on the left.
	type origin struct {
		obj  types.Object
		node *cfgNode
		call *ast.CallExpr
	}
	var origins []origin
	for _, n := range cfg.nodes {
		as, ok := n.stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			continue
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !spanOrigin(p, call) {
			continue
		}
		obj := identObj(info, as.Lhs[0])
		if obj == nil || obj.Name() == "_" {
			continue
		}
		origins = append(origins, origin{obj: obj, node: n, call: call})
	}

	for _, o := range origins {
		if spanDeferredEnd(info, fb.body, o.obj) || spanEscapes(info, fb.body, o.obj) {
			continue
		}
		endsAt := func(n *cfgNode) bool {
			return headerContains(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return false
				}
				recv, ok := methodCallOn(call, "End")
				return ok && identObj(info, recv) == o.obj
			})
		}
		if !cfg.mustPassFrom(o.node, endsAt) {
			p.Reportf(o.call.Pos(), "span %s is not ended on every path to return; add defer %s.End() or end it on the missed branch", o.obj.Name(), o.obj.Name())
		}
	}
}

func spanMethodName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "Start"
}

// spanDeferredEnd reports whether any defer in the body ends obj: either
// `defer obj.End()` or a deferred closure containing obj.End().
func spanDeferredEnd(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if recv, ok := methodCallOn(ds.Call, "End"); ok && identObj(info, recv) == obj {
			found = true
			return false
		}
		if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if recv, ok := methodCallOn(call, "End"); ok && identObj(info, recv) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// spanEscapes reports whether obj leaves the function's hands: returned,
// assigned somewhere other than a plain rebind, used as a composite element,
// sent, passed as a call argument (other than as the receiver of its own
// method calls), or captured by a closure that is not a deferred End.
func spanEscapes(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	parents := parentMap(body)
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.ObjectOf(id) != obj {
			return true
		}
		if spanUseEscapes(parents, id) {
			escaped = true
		}
		return !escaped
	})
	return escaped
}

// spanUseEscapes classifies one identifier use of a span variable.
func spanUseEscapes(parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	var child ast.Node = id
	parent := parents[id]
	for {
		if pe, ok := parent.(*ast.ParenExpr); ok {
			child = pe
			parent = parents[pe]
			continue
		}
		break
	}
	// Inside any function literal, the closure owns the span's fate —
	// unless the literal is the deferred-End pattern, which
	// spanDeferredEnd already credits.
	for p := parent; p != nil; p = parents[p] {
		if _, ok := p.(*ast.FuncLit); ok {
			return true
		}
	}
	switch pn := parent.(type) {
	case *ast.SelectorExpr:
		return pn.X != child // shadowing selector like x.sp — not a use of ours
	case *ast.AssignStmt:
		for _, l := range pn.Lhs {
			if l == child {
				return false // (re)binding
			}
		}
		return true // span copied into another variable
	case *ast.ReturnStmt, *ast.SendStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.IndexExpr:
		return true
	case *ast.CallExpr:
		for _, a := range pn.Args {
			if a == child {
				return true // passed along; callee owns ending it
			}
		}
		return false // receiver position: sp.End(), sp.Attr(...), ...
	case *ast.BinaryExpr:
		return false // comparisons (sp == nil) don't retain
	}
	return false
}

// parentMap builds a child→parent map for the subtree.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
