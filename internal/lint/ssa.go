package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file adds a pruned-SSA value-flow layer on top of the statement-level
// CFG (cfg.go): per-variable def-use chains, phi placement at join nodes,
// and value origins that see through plain copies. The typestate protocol
// engine (typestate.go) consumes it for three judgments the raw CFG cannot
// make:
//
//   - whether an identifier use reaches back to a specific defining
//     assignment (the error-guard exemption: `st, err := New(...)` followed
//     by `if err != nil { return err }` only counts when that err is still
//     the origin's err, not a reassigned one);
//   - whether a tracked value is overwritten before its protocol completes
//     (re-binding sp between Start and End silently drops the first span);
//   - whether a method receiver is a pure copy of a tracked origin value,
//     so `st2 := st; st2.Close()` discharges st's obligation.
//
// Construction is textbook pruned SSA, adapted to the statement CFG:
//
//   - predecessors derive from the CFG's successor edges, restricted to the
//     nodes reachable from entry (statements after an unconditional return
//     have no preds and take no part);
//   - dominators via the Cooper-Harvey-Kennedy iterative algorithm over a
//     reverse-postorder numbering;
//   - dominance frontiers per Cooper's two-finger method;
//   - phi placement at iterated dominance frontiers of each variable's def
//     nodes, pruned by a per-variable backward liveness pass so dead joins
//     get no phis;
//   - renaming by dominator-tree DFS with per-variable value stacks, uses
//     resolved against the stack before the statement's own defs push.
//
// Scope limits, consistent with the CFG's design: only plain local
// variables participate. A variable is excluded ("unsafe") when its address
// is taken, it is mentioned inside a function literal (the closure may
// write it at any time), or it is mentioned inside a defer (which reads the
// exit-time value, not the in-line one). Struct fields, globals, and named
// types' method values never participate.

// ssaValue is one SSA definition of a source variable.
type ssaValue struct {
	id   int
	obj  types.Object
	node *cfgNode // defining node; cfg entry for parameters and named results
	rhs  ast.Expr // defining expression; nil for params, phis, zero-value decls
	phi  bool
	// args are a phi's operands, indexed by the owning node's pred order.
	// An operand may be nil when the variable is not defined on that path
	// (possible only along paths that cannot execute the use).
	args []*ssaValue
	// copyOf is the value this definition copies, when rhs is a plain
	// identifier of another SSA-tracked variable.
	copyOf *ssaValue
}

// resolvesTo reports whether v is target, a chain of pure copies of target,
// or a phi all of whose operands resolve to target — i.e. the value is
// target on every path reaching it.
func (v *ssaValue) resolvesTo(target *ssaValue) bool {
	return resolves(v, target, map[*ssaValue]bool{})
}

func resolves(v, target *ssaValue, seen map[*ssaValue]bool) bool {
	for v != nil && !seen[v] {
		if v == target {
			return true
		}
		seen[v] = true
		if v.copyOf != nil {
			v = v.copyOf
			continue
		}
		if v.phi {
			for _, a := range v.args {
				if a == nil || !resolves(a, target, seen) {
					return false
				}
			}
			return true
		}
		return false
	}
	return v == target
}

// ssaFunc is the SSA form of one function body.
type ssaFunc struct {
	cfg    *funcCFG
	preds  map[*cfgNode][]*cfgNode
	idom   map[*cfgNode]*cfgNode
	useDef map[*ast.Ident]*ssaValue // use ident → reaching definition
	defVal map[*ast.Ident]*ssaValue // defining ident → the value it creates
	defsBy map[types.Object][]*ssaValue
	unsafe map[types.Object]bool // excluded variables (see file comment)
	vals   []*ssaValue
}

// reachingDef returns the SSA value an identifier use reads, or nil for
// uses of unsafe/unknown variables (and for defining occurrences).
func (s *ssaFunc) reachingDef(id *ast.Ident) *ssaValue { return s.useDef[id] }

// defValue returns the SSA value a defining identifier creates, or nil.
func (s *ssaFunc) defValue(id *ast.Ident) *ssaValue { return s.defVal[id] }

// defsOf returns every SSA definition of obj, in creation order.
func (s *ssaFunc) defsOf(obj types.Object) []*ssaValue { return s.defsBy[obj] }

// tracked reports whether obj participates in SSA at all.
func (s *ssaFunc) tracked(obj types.Object) bool {
	return obj != nil && len(s.defsBy[obj]) > 0 && !s.unsafe[obj]
}

// buildSSA constructs pruned SSA for one function body over its CFG.
func buildSSA(info *types.Info, fb funcBody, cfg *funcCFG) *ssaFunc {
	s := &ssaFunc{
		cfg:    cfg,
		preds:  map[*cfgNode][]*cfgNode{},
		idom:   map[*cfgNode]*cfgNode{},
		useDef: map[*ast.Ident]*ssaValue{},
		defVal: map[*ast.Ident]*ssaValue{},
		defsBy: map[types.Object][]*ssaValue{},
		unsafe: map[types.Object]bool{},
	}

	rpo := s.reversePostorder()
	order := map[*cfgNode]int{}
	for i, n := range rpo {
		order[n] = i
	}
	for _, n := range rpo {
		seen := map[*cfgNode]bool{}
		for _, succ := range n.succs {
			if _, reach := order[succ]; !reach || seen[succ] {
				continue
			}
			seen[succ] = true
			s.preds[succ] = append(s.preds[succ], n)
		}
	}

	vars := s.collectVars(info, fb, rpo)
	if len(vars) == 0 {
		return s
	}
	s.dominators(rpo, order)
	df := s.frontiers(rpo)
	liveIn := s.liveness(info, rpo, vars)
	phis := s.placePhis(info, fb, rpo, vars, df, liveIn)
	s.rename(info, fb, rpo, order, vars, phis)
	return s
}

// reversePostorder returns the nodes reachable from entry in reverse
// postorder (entry first).
func (s *ssaFunc) reversePostorder() []*cfgNode {
	var post []*cfgNode
	seen := map[*cfgNode]bool{}
	var walk func(n *cfgNode)
	walk = func(n *cfgNode) {
		seen[n] = true
		for _, succ := range n.succs {
			if !seen[succ] {
				walk(succ)
			}
		}
		post = append(post, n)
	}
	walk(s.cfg.entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// collectVars gathers the local variables eligible for SSA and records the
// unsafe set. Eligible objects are *types.Var locals declared within the
// body (parameters and named results included) that are assigned through
// plain identifiers only.
func (s *ssaFunc) collectVars(info *types.Info, fb funcBody, rpo []*cfgNode) map[types.Object]bool {
	vars := map[types.Object]bool{}
	var root ast.Node = fb.body
	if fb.decl != nil {
		root = fb.decl
	} else if fb.lit != nil {
		root = fb.lit
	}
	addObj := func(obj types.Object) {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || !declaredWithin(obj, root) {
			return
		}
		vars[obj] = true
	}
	for _, field := range paramFields(fb.typ) {
		for _, name := range field.Names {
			if obj := info.ObjectOf(name); obj != nil && name.Name != "_" {
				addObj(obj)
			}
		}
	}
	for _, n := range rpo {
		for _, site := range defSites(info, n) {
			if site.obj != nil {
				addObj(site.obj)
			}
		}
	}

	// Unsafe: address taken, mentioned in a function literal, or mentioned
	// in a defer (defers observe exit-time values).
	shallow := func(root ast.Node) {
		ast.Inspect(root, func(x ast.Node) bool {
			switch u := x.(type) {
			case *ast.UnaryExpr:
				if u.Op == token.AND {
					if obj := identObj(info, u.X); obj != nil && vars[obj] {
						s.unsafe[obj] = true
					}
				}
			case *ast.FuncLit:
				ast.Inspect(u.Body, func(y ast.Node) bool {
					if id, ok := y.(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil && vars[obj] {
							s.unsafe[obj] = true
						}
					}
					return true
				})
				return false
			case *ast.DeferStmt:
				ast.Inspect(u.Call, func(y ast.Node) bool {
					if id, ok := y.(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil && vars[obj] {
							s.unsafe[obj] = true
						}
					}
					return true
				})
				return false
			}
			return true
		})
	}
	shallow(fb.body)
	for obj := range s.unsafe {
		delete(vars, obj)
	}
	return vars
}

func paramFields(typ *ast.FuncType) []*ast.Field {
	var out []*ast.Field
	if typ.Params != nil {
		out = append(out, typ.Params.List...)
	}
	if typ.Results != nil {
		out = append(out, typ.Results.List...)
	}
	return out
}

// dominators runs the Cooper-Harvey-Kennedy iterative algorithm.
func (s *ssaFunc) dominators(rpo []*cfgNode, order map[*cfgNode]int) {
	entry := s.cfg.entry
	s.idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, n := range rpo[1:] {
			var newIdom *cfgNode
			for _, p := range s.preds[n] {
				if s.idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = s.intersect(p, newIdom, order)
				}
			}
			if newIdom != nil && s.idom[n] != newIdom {
				s.idom[n] = newIdom
				changed = true
			}
		}
	}
}

func (s *ssaFunc) intersect(a, b *cfgNode, order map[*cfgNode]int) *cfgNode {
	for a != b {
		for order[a] > order[b] {
			a = s.idom[a]
		}
		for order[b] > order[a] {
			b = s.idom[b]
		}
	}
	return a
}

// frontiers computes dominance frontiers (Cooper's two-finger walk).
func (s *ssaFunc) frontiers(rpo []*cfgNode) map[*cfgNode][]*cfgNode {
	df := map[*cfgNode][]*cfgNode{}
	in := map[*cfgNode]map[*cfgNode]bool{}
	for _, n := range rpo {
		if len(s.preds[n]) < 2 {
			continue
		}
		for _, p := range s.preds[n] {
			for runner := p; runner != s.idom[n]; runner = s.idom[runner] {
				if in[runner] == nil {
					in[runner] = map[*cfgNode]bool{}
				}
				if !in[runner][n] {
					in[runner][n] = true
					df[runner] = append(df[runner], n)
				}
				if runner == s.idom[runner] {
					break // entry
				}
			}
		}
	}
	return df
}

// defSite is one variable definition inside a statement.
type defSite struct {
	obj types.Object
	id  *ast.Ident
	rhs ast.Expr // nil for zero-value declarations and updates
}

// defSites lists the variables a CFG node defines, in evaluation order.
func defSites(info *types.Info, n *cfgNode) []defSite {
	var out []defSite
	add := func(e ast.Expr, rhs ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if obj := info.ObjectOf(id); obj != nil {
			out = append(out, defSite{obj: obj, id: id, rhs: rhs})
		}
	}
	switch st := n.stmt.(type) {
	case *ast.AssignStmt:
		switch st.Tok {
		case token.DEFINE, token.ASSIGN:
			for i, l := range st.Lhs {
				var rhs ast.Expr
				switch {
				case len(st.Rhs) == len(st.Lhs):
					rhs = st.Rhs[i]
				case len(st.Rhs) == 1:
					rhs = st.Rhs[0] // tuple assign: every LHS defined by the call
				}
				add(l, rhs)
			}
		default: // compound assignment: an update, rhs opaque
			if len(st.Lhs) == 1 {
				add(st.Lhs[0], nil)
			}
		}
	case *ast.IncDecStmt:
		add(st.X, nil)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if len(vs.Values) == len(vs.Names) {
						rhs = vs.Values[i]
					}
					add(name, rhs)
				}
			}
		}
	case *ast.RangeStmt:
		add(st.Key, nil)
		add(st.Value, nil)
	}
	return out
}

// useIdents lists the identifier reads a CFG node performs, skipping the
// node's own defining occurrences and nested function literals.
func useIdents(info *types.Info, n *cfgNode) []*ast.Ident {
	defs := map[*ast.Ident]bool{}
	for _, d := range defSites(info, n) {
		defs[d.id] = true
	}
	// Updates (x++, x += y) read the old value: their "def" ident is also a
	// use. Plain assigns and declarations are not.
	switch st := n.stmt.(type) {
	case *ast.IncDecStmt:
		delete(defs, st.X.(*ast.Ident))
	case *ast.AssignStmt:
		if st.Tok != token.DEFINE && st.Tok != token.ASSIGN && len(st.Lhs) == 1 {
			if id, ok := st.Lhs[0].(*ast.Ident); ok {
				delete(defs, id)
			}
		}
	}
	if _, isDefer := n.stmt.(*ast.DeferStmt); isDefer {
		return nil // defer operands read at exit; their vars are unsafe anyway
	}
	var out []*ast.Ident
	for _, root := range headerNodes(n) {
		shallowInspect(root, func(x ast.Node) bool {
			if sel, ok := x.(*ast.SelectorExpr); ok {
				// Only the base expression is a read; the Sel ident names a
				// field or method, never a local.
				shallowInspect(sel.X, func(y ast.Node) bool {
					if id, ok := y.(*ast.Ident); ok && !defs[id] {
						out = append(out, id)
					}
					return true
				})
				return false
			}
			if id, ok := x.(*ast.Ident); ok && !defs[id] {
				out = append(out, id)
			}
			return true
		})
	}
	return out
}

// liveness computes per-variable live-in sets over the CFG (backward).
func (s *ssaFunc) liveness(info *types.Info, rpo []*cfgNode, vars map[types.Object]bool) map[*cfgNode]map[types.Object]bool {
	use := map[*cfgNode]map[types.Object]bool{}
	def := map[*cfgNode]map[types.Object]bool{}
	for _, n := range rpo {
		u, d := map[types.Object]bool{}, map[types.Object]bool{}
		for _, id := range useIdents(info, n) {
			if obj := info.ObjectOf(id); obj != nil && vars[obj] {
				u[obj] = true
			}
		}
		for _, site := range defSites(info, n) {
			if vars[site.obj] {
				d[site.obj] = true
			}
		}
		use[n], def[n] = u, d
	}
	liveIn := map[*cfgNode]map[types.Object]bool{}
	for _, n := range rpo {
		liveIn[n] = map[types.Object]bool{}
	}
	for changed := true; changed; {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			n := rpo[i]
			for _, succ := range n.succs {
				for obj := range liveIn[succ] {
					if def[n][obj] || use[n][obj] {
						continue
					}
					if !liveIn[n][obj] {
						liveIn[n][obj] = true
						changed = true
					}
				}
			}
			for obj := range use[n] {
				if !liveIn[n][obj] {
					liveIn[n][obj] = true
					changed = true
				}
			}
		}
	}
	return liveIn
}

// placePhis inserts pruned phis at iterated dominance frontiers.
func (s *ssaFunc) placePhis(info *types.Info, fb funcBody, rpo []*cfgNode,
	vars map[types.Object]bool, df map[*cfgNode][]*cfgNode,
	liveIn map[*cfgNode]map[types.Object]bool) map[*cfgNode][]*ssaValue {

	defNodes := map[types.Object][]*cfgNode{}
	for _, field := range paramFields(fb.typ) {
		for _, name := range field.Names {
			if obj := info.ObjectOf(name); obj != nil && vars[obj] {
				defNodes[obj] = append(defNodes[obj], s.cfg.entry)
			}
		}
	}
	for _, n := range rpo {
		for _, site := range defSites(info, n) {
			if vars[site.obj] {
				defNodes[site.obj] = append(defNodes[site.obj], n)
			}
		}
	}

	// Deterministic variable order.
	objs := make([]types.Object, 0, len(defNodes))
	for obj := range defNodes {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })

	phis := map[*cfgNode][]*ssaValue{}
	for _, obj := range objs {
		placed := map[*cfgNode]bool{}
		work := append([]*cfgNode{}, defNodes[obj]...)
		for len(work) > 0 {
			n := work[len(work)-1]
			work = work[:len(work)-1]
			for _, d := range df[n] {
				if placed[d] || !liveIn[d][obj] {
					continue
				}
				placed[d] = true
				v := &ssaValue{id: len(s.vals), obj: obj, node: d, phi: true,
					args: make([]*ssaValue, len(s.preds[d]))}
				s.vals = append(s.vals, v)
				phis[d] = append(phis[d], v)
				work = append(work, d)
			}
		}
	}
	return phis
}

// rename walks the dominator tree assigning SSA values to every def and
// resolving every use against the innermost reaching def.
func (s *ssaFunc) rename(info *types.Info, fb funcBody, rpo []*cfgNode,
	order map[*cfgNode]int, vars map[types.Object]bool, phis map[*cfgNode][]*ssaValue) {

	children := map[*cfgNode][]*cfgNode{}
	for _, n := range rpo[1:] {
		if d := s.idom[n]; d != nil {
			children[d] = append(children[d], n)
		}
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool { return order[kids[i]] < order[kids[j]] })
	}

	predIndex := map[*cfgNode]map[*cfgNode]int{}
	for n, ps := range s.preds {
		m := map[*cfgNode]int{}
		for i, p := range ps {
			m[p] = i
		}
		predIndex[n] = m
	}

	stack := map[types.Object][]*ssaValue{}
	push := func(v *ssaValue) { stack[v.obj] = append(stack[v.obj], v) }
	top := func(obj types.Object) *ssaValue {
		st := stack[obj]
		if len(st) == 0 {
			return nil
		}
		return st[len(st)-1]
	}

	// Parameters and named results are defined at entry.
	for _, field := range paramFields(fb.typ) {
		for _, name := range field.Names {
			obj := info.ObjectOf(name)
			if obj == nil || !vars[obj] {
				continue
			}
			v := &ssaValue{id: len(s.vals), obj: obj, node: s.cfg.entry}
			s.vals = append(s.vals, v)
			s.defsBy[obj] = append(s.defsBy[obj], v)
			s.defVal[name] = v
			push(v)
		}
	}

	var walk func(n *cfgNode)
	walk = func(n *cfgNode) {
		var pushed []*ssaValue
		record := func(v *ssaValue) {
			s.defsBy[v.obj] = append(s.defsBy[v.obj], v)
			push(v)
			pushed = append(pushed, v)
		}
		for _, phi := range phis[n] {
			record(phi)
		}
		for _, id := range useIdents(info, n) {
			obj := info.ObjectOf(id)
			if obj == nil || !vars[obj] {
				continue
			}
			if v := top(obj); v != nil {
				s.useDef[id] = v
			}
		}
		for _, site := range defSites(info, n) {
			if !vars[site.obj] {
				continue
			}
			v := &ssaValue{id: len(s.vals), obj: site.obj, node: n, rhs: site.rhs}
			s.vals = append(s.vals, v)
			if site.rhs != nil {
				if src := identObj(info, site.rhs); src != nil && vars[src] {
					v.copyOf = top(src)
				}
			}
			s.defVal[site.id] = v
			record(v)
		}
		for _, succ := range n.succs {
			idx, ok := predIndex[succ][n]
			if !ok {
				continue
			}
			for _, phi := range phis[succ] {
				phi.args[idx] = top(phi.obj)
			}
		}
		for _, kid := range children[n] {
			walk(kid)
		}
		for _, v := range pushed {
			st := stack[v.obj]
			stack[v.obj] = st[:len(st)-1]
		}
	}
	walk(s.cfg.entry)
}
