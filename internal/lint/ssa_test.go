package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildSSAFixture typechecks src (a complete file) and builds SSA for the
// function named fn.
func buildSSAFixture(t *testing.T, src, fn string) (*types.Info, *ssaFunc) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ssa_test_src.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name != fn || fd.Body == nil {
			continue
		}
		fb := funcBody{decl: fd, typ: fd.Type, body: fd.Body}
		return info, buildSSA(info, fb, buildCFG(fd.Body))
	}
	t.Fatalf("no function %s in source", fn)
	return nil, nil
}

// identAt finds the n-th occurrence (1-based) of an identifier named name.
func identAt(t *testing.T, s *ssaFunc, info *types.Info, name string, n int) *ast.Ident {
	t.Helper()
	seen := 0
	var found *ast.Ident
	// Walk the CFG statements in node order for a deterministic scan.
	var ids []*ast.Ident
	for _, node := range s.cfg.nodes {
		if node.stmt == nil {
			continue
		}
		ast.Inspect(node.stmt, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok && id.Name == name {
				ids = append(ids, id)
			}
			return true
		})
	}
	// Node order is not source order; sort by position.
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j].Pos() < ids[i].Pos() {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	// Dedup (a header ident can appear under several nodes).
	var uniq []*ast.Ident
	for _, id := range ids {
		if len(uniq) == 0 || uniq[len(uniq)-1] != id {
			uniq = append(uniq, id)
		}
	}
	for _, id := range uniq {
		seen++
		if seen == n {
			found = id
			break
		}
	}
	if found == nil {
		t.Fatalf("occurrence %d of %q not found (saw %d)", n, name, seen)
	}
	return found
}

func TestSSADiamondPhi(t *testing.T) {
	src := `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	} else {
		x = 3
	}
	return x
}`
	info, s := buildSSAFixture(t, src, "f")
	use := identAt(t, s, info, "x", 4) // the return's x
	v := s.reachingDef(use)
	if v == nil {
		t.Fatal("return x has no reaching def")
	}
	if !v.phi {
		t.Fatalf("return x should read a phi, got %+v", v)
	}
	if len(v.args) != 2 {
		t.Fatalf("phi has %d args, want 2", len(v.args))
	}
	d1 := s.defValue(identAt(t, s, info, "x", 2)) // x = 2
	d2 := s.defValue(identAt(t, s, info, "x", 3)) // x = 3
	if d1 == nil || d2 == nil {
		t.Fatal("branch defs not recorded")
	}
	if v.resolvesTo(d1) || v.resolvesTo(d2) {
		t.Fatal("diamond phi must not resolve to a single branch def")
	}
	got := map[*ssaValue]bool{}
	for _, a := range v.args {
		got[a] = true
	}
	if !got[d1] || !got[d2] {
		t.Fatalf("phi args %v do not cover both branch defs", v.args)
	}
}

func TestSSACopyChainResolves(t *testing.T) {
	src := `package p
func g() int { return 0 }
func f(c bool) int {
	a := g()
	b := a
	d := b
	if c {
		d = a
	}
	return d
}`
	info, s := buildSSAFixture(t, src, "f")
	aDef := s.defValue(identAt(t, s, info, "a", 1))
	dUse := s.reachingDef(identAt(t, s, info, "d", 3))
	if aDef == nil || dUse == nil {
		t.Fatal("missing defs")
	}
	// d's reaching value is a phi of (copy-of-copy-of-a, copy-of-a): all
	// paths resolve to a.
	if !dUse.resolvesTo(aDef) {
		t.Fatal("phi over pure copies of a should resolve to a")
	}
}

func TestSSAOverwriteSeparateDefs(t *testing.T) {
	src := `package p
func g() int { return 0 }
func f() int {
	a := g()
	a = g()
	return a
}`
	info, s := buildSSAFixture(t, src, "f")
	obj := info.ObjectOf(identAt(t, s, info, "a", 1))
	defs := s.defsOf(obj)
	if len(defs) != 2 {
		t.Fatalf("reassigned var has %d defs, want 2", len(defs))
	}
	use := s.reachingDef(identAt(t, s, info, "a", 3))
	if use != defs[1] {
		t.Fatal("return a should read the second def")
	}
	if use.resolvesTo(defs[0]) {
		t.Fatal("second def must not resolve to the first")
	}
}

func TestSSAUnsafeVarsExcluded(t *testing.T) {
	src := `package p
func sink(p *int) {}
func f() int {
	a := 1
	sink(&a)
	b := 2
	go func() { _ = b }()
	c := 3
	return a + b + c
}`
	info, s := buildSSAFixture(t, src, "f")
	aObj := info.ObjectOf(identAt(t, s, info, "a", 1))
	bObj := info.ObjectOf(identAt(t, s, info, "b", 1))
	cObj := info.ObjectOf(identAt(t, s, info, "c", 1))
	if s.tracked(aObj) {
		t.Fatal("address-taken var must be excluded from SSA")
	}
	if s.tracked(bObj) {
		t.Fatal("closure-captured var must be excluded from SSA")
	}
	if !s.tracked(cObj) {
		t.Fatal("plain local should be tracked")
	}
}

func TestSSADeferMentionExcluded(t *testing.T) {
	src := `package p
func end(x int) {}
func f() {
	a := 1
	defer end(a)
	b := 2
	_ = b
}`
	info, s := buildSSAFixture(t, src, "f")
	aObj := info.ObjectOf(identAt(t, s, info, "a", 1))
	bObj := info.ObjectOf(identAt(t, s, info, "b", 1))
	if s.tracked(aObj) {
		t.Fatal("defer-mentioned var must be excluded from SSA")
	}
	if !s.tracked(bObj) {
		t.Fatal("plain local should be tracked")
	}
}

func TestSSALoopPhi(t *testing.T) {
	src := `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`
	info, s := buildSSAFixture(t, src, "f")
	ret := s.reachingDef(identAt(t, s, info, "s", 3))
	if ret == nil || !ret.phi {
		t.Fatalf("loop-carried s should reach the return via a phi, got %+v", ret)
	}
	// The phi must not resolve to the initial def alone: the loop body
	// rebinds it.
	init := s.defValue(identAt(t, s, info, "s", 1))
	if ret.resolvesTo(init) {
		t.Fatal("loop phi must not collapse to the pre-loop def")
	}
}

func TestSSAParamsDefinedAtEntry(t *testing.T) {
	src := `package p
func f(a int) (out int) {
	out = a
	return out
}`
	info, s := buildSSAFixture(t, src, "f")
	aUse := s.reachingDef(identAt(t, s, info, "a", 1))
	if aUse == nil {
		t.Fatal("param use has no reaching def")
	}
	if aUse.node != s.cfg.entry || aUse.rhs != nil || aUse.phi {
		t.Fatal("param def should be the synthetic entry def")
	}
	outDef := s.defValue(identAt(t, s, info, "out", 1))
	if outDef == nil || !outDef.resolvesTo(aUse) {
		t.Fatal("out = a should be a copy of the param def")
	}
}

func TestSSAPrunedPhiDeadAfterJoin(t *testing.T) {
	src := `package p
func g() int { return 0 }
func f(c bool) int {
	x := g()
	if c {
		x = g()
	}
	_ = x
	y := g()
	_ = y
	if c {
		y = g()
	}
	return 7
}`
	info, s := buildSSAFixture(t, src, "f")
	// y is dead after the join (never used): pruned SSA places no phi.
	yObj := info.ObjectOf(identAt(t, s, info, "y", 1))
	for _, v := range s.defsOf(yObj) {
		if v.phi {
			t.Fatal("dead-after-join var must not get a phi (pruned SSA)")
		}
	}
	// x is live at its use: the use reads a phi.
	xUse := s.reachingDef(identAt(t, s, info, "x", 3))
	if xUse == nil || !xUse.phi {
		t.Fatal("live-at-join var should read a phi")
	}
}

func TestSSATupleAssignDefs(t *testing.T) {
	src := `package p
func g() (int, error) { return 0, nil }
func f() error {
	v, err := g()
	if err != nil {
		return err
	}
	_ = v
	return nil
}`
	info, s := buildSSAFixture(t, src, "f")
	errDef := s.defValue(identAt(t, s, info, "err", 1))
	if errDef == nil {
		t.Fatal("tuple-bound err has no def")
	}
	guardUse := s.reachingDef(identAt(t, s, info, "err", 2))
	if guardUse == nil || !guardUse.resolvesTo(errDef) {
		t.Fatal("if err != nil should read the tuple def")
	}
	if errDef.rhs == nil {
		t.Fatal("tuple def should record its rhs expression")
	}
	call, ok := errDef.rhs.(*ast.CallExpr)
	if !ok {
		t.Fatalf("tuple def rhs should be the call expression, got %T", errDef.rhs)
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || !strings.Contains(id.Name, "g") {
		t.Fatalf("unexpected rhs call for err def")
	}
}
