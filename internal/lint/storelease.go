package lint

import (
	"go/ast"
	"go/types"
)

const storagePkgPath = "nautilus/internal/storage"

// StoreLeaseAnalyzer checks the lifecycle of storage.TensorStore handles.
// A store owns an on-disk directory of record files plus an in-memory
// index and optional row cache; Close releases the lot. Three hazards:
//
//   - leak: a store opened with NewTensorStore that does not reach Close on
//     every path to return keeps its directory handle and cache alive for
//     the life of the process — fatal in the multi-tenant service, where
//     stores open and close per session;
//   - use after Close: append/read calls on a closed store;
//   - stale rows: GC and Delete drop record files; tensors read *before*
//     the sweep reference storage that may no longer exist, so using (or
//     storing away) such rows after a GC/Delete on their store is a stale
//     read. Rows read after the sweep are fine — staleness is judged
//     against the store's state at the read, not its final state.
//
// Declared against the typestate engine as open→swept→closed with the full
// obligation leg: SSA-backed copy discharge (`st2 := st; st2.Close()`
// counts), error-guarded returns exempt (`if err != nil { return err }`
// after a failed open owes nothing — but only when the guard reads the
// origin's own err binding), re-binding before Close is flagged, and a
// deferred Close inside the opening loop is flagged (it runs at function
// exit, not per iteration). A store that escapes — returned, stored in a
// struct, handed to a goroutine — transfers the obligation to its new
// owner, and a helper taking a *TensorStore parameter that closes it on
// every path (the ClosesStore summary fact) discharges the caller's
// obligation through the call. Test files are skipped.
var StoreLeaseAnalyzer = &Analyzer{
	Name:         "storelease",
	Doc:          "flags TensorStores not closed on every exit path, uses after Close, and rows read before a GC/Delete but used after it",
	SummaryAware: true,
	Run:          func(p *Pass) { runTypestate(p, storeLeaseSpec) },
}

var storeLeaseSpec = &typestateSpec{
	name:      "storelease",
	origin:    storeOrigin,
	errResult: true,
	valueType: func(p *Pass, t types.Type) bool { return namedType(t, storagePkgPath, "TensorStore") },

	terminal:      "Close",
	terminalFact:  func(f paramFacts) bool { return f.ClosesStore },
	leakMsg:       "store %s is not closed on every path to return; add defer %s.Close() or close it on the missed branch",
	overwriteMsg:  "store %s is re-bound before being closed; the earlier store's directory handle and cache leak — close it before re-binding",
	deferLoopMsg:  "store %s is opened in a loop but its deferred Close runs at function exit, not per iteration; close it at the end of the iteration",
	copyDischarge: true,

	states:     []string{"open", "swept", "closed"},
	start:      "open",
	paramStart: "open",
	events: []eventSpec{
		{method: "GC", to: "swept"},
		{method: "Delete", to: "swept"},
		{method: "Close", to: "closed", fact: func(f paramFacts) bool { return f.ClosesStore }},
	},
	derived: func(p *Pass, t types.Type) bool { return namedType(t, tensorPkgPath, "Tensor") },
	useInState: map[string]useMsgs{
		"closed": {directMsg: "store %s may already be closed here; move the use before Close"},
		"swept": {derivedMsg: "%s was read from store %s before a GC/Delete that may have dropped its rows; re-read it after the sweep or copy it out first"},
	},
	staleOnly:   true,
	escapeEvent: "GC",
	escapeMsg:   "%s was read from store %s but escapes via %s, and the store is swept before the function returns; copy it out first",
}

// storeOrigin matches storage.NewTensorStore calls returning
// (*storage.TensorStore, error).
func storeOrigin(p *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "NewTensorStore" {
			return false
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name != "NewTensorStore" {
			return false
		}
	default:
		return false
	}
	tup, ok := p.Pkg.Info.TypeOf(call).(*types.Tuple)
	return ok && tup.Len() == 2 && namedType(tup.At(0).Type(), storagePkgPath, "TensorStore")
}
