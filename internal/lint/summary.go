package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the interprocedural half of the dataflow engine: per-function
// summaries computed bottom-up over the call graph's SCC condensation, so
// the intraprocedural analyzers can see through one level of indirection —
// an obligation delegated to a helper (releaseAll(scope), endSpans(sp)) is
// credited at the call site instead of being a false negative, and a value
// passed to a helper that keeps it local stops counting as an escape.
//
// The summary lattice is mixed-monotone, solved per SCC by iterating its
// members to a fixpoint against each other:
//
//   - must-facts (EndsSpan, ReleasesScope, WaitsWG, errNever/errAlways)
//     start optimistically true inside a recursive component and are only
//     lowered, so a pair of mutually recursive enders stays credited while
//     any unsatisfied escape route lowers the whole cycle;
//   - may-facts (DonesWG, SendsChan, UsesCtx, Escapes, mayLock) start at
//     bottom (false/empty) and only grow, the usual least fixpoint.
//
// Soundness caveats, by design: function literals have no summaries (their
// bodies are opaque to the CFG and the call graph alike); calls through
// function values or interface methods resolve to nothing, so delegation
// through them is never credited and arguments passed to them always count
// as escapes; and lock-helper facts inside a recursive SCC start
// pessimistically empty, so a self-recursive lock helper is not credited.

// paramFacts is what a function's summary says about one parameter.
type paramFacts struct {
	// EndsSpan: the *obs.Span argument is ended on every path to return
	// (directly, by delegation, or by defer).
	EndsSpan bool
	// ReleasesScope: the *tensor.Scope argument is released on every path.
	ReleasesScope bool
	// WaitsWG: the *sync.WaitGroup argument is waited on on every path.
	WaitsWG bool
	// ClosesStore: the *storage.TensorStore argument is closed on every
	// path — the delegated-cleanup half of the storelease protocol.
	ClosesStore bool
	// DonesWG: the function may call Done on the WaitGroup argument —
	// the worker half of the launch protocol.
	DonesWG bool
	// SendsChan: the function may send on or close the channel argument.
	SendsChan bool
	// UsesCtx: the context.Context argument is mentioned at all.
	UsesCtx bool
	// Escapes: the argument may leave the callee's hands (stored, returned,
	// captured, or passed somewhere unknown).
	Escapes bool
}

// lockMode distinguishes write locks from read locks on a sync.RWMutex
// (a plain Mutex only ever holds lockWrite).
type lockMode uint8

const (
	lockWrite lockMode = 1 + iota
	lockRead
)

func (m lockMode) lockName() string {
	if m == lockRead {
		return "RLock"
	}
	return "Lock"
}

func (m lockMode) unlockName() string {
	if m == lockRead {
		return "RUnlock"
	}
	return "Unlock"
}

// lockSym names a mutex in a function's own frame of reference, so lock
// effects can be translated across call sites: rooted at the method
// receiver, at a parameter, or at a package-level variable, plus the
// selector path from the root down to the mutex ("" when the root itself
// is the mutex).
type lockSym struct {
	recv   bool
	param  int          // parameter index when >= 0 (and recv is false)
	global types.Object // package-level root when non-nil
	rel    string       // ".mu", ".state.mu", or ""
}

// funcSummary is the interprocedural fact sheet of one declared function.
type funcSummary struct {
	fn   *types.Func
	decl *ast.FuncDecl

	// params holds one fact set per signature parameter (receiver excluded).
	params []paramFacts

	// errNever / errAlways classify the error result across all returns:
	// provably always nil, or provably always non-nil. Both false when the
	// function has no error result or the returns are mixed/unknown.
	errNever  bool
	errAlways bool

	// holdsAtExit: locks acquired here and still held on every path to
	// return — the lock-helper shape; callers inherit the held state.
	holdsAtExit map[lockSym]lockMode
	// releasesLock: locks released here without a local acquisition on
	// every path — the unlock-helper shape.
	releasesLock map[lockSym]lockMode
	// mayLock: locks this function may acquire anywhere, transitively
	// through local callees; used for re-acquisition deadlock checks.
	mayLock map[lockSym]lockMode

	// spawnsUnjoined: the function launches a goroutine the goroutinejoin
	// analyzer cannot tie to a join protocol.
	spawnsUnjoined bool
}

// paramIndex maps a call-site argument index to a parameter index,
// folding a variadic tail onto the last parameter; -1 if out of range.
func (sum *funcSummary) paramIndex(arg int) int {
	sig := sum.fn.Type().(*types.Signature)
	n := sig.Params().Len()
	if sig.Variadic() && arg >= n-1 {
		return n - 1
	}
	if arg < n {
		return arg
	}
	return -1
}

func (sum *funcSummary) equal(o *funcSummary) bool {
	if o == nil {
		return false
	}
	if len(sum.params) != len(o.params) ||
		sum.errNever != o.errNever || sum.errAlways != o.errAlways ||
		sum.spawnsUnjoined != o.spawnsUnjoined {
		return false
	}
	for i := range sum.params {
		if sum.params[i] != o.params[i] {
			return false
		}
	}
	return lockMapsEqual(sum.holdsAtExit, o.holdsAtExit) &&
		lockMapsEqual(sum.releasesLock, o.releasesLock) &&
		lockMapsEqual(sum.mayLock, o.mayLock)
}

func lockMapsEqual(a, b map[lockSym]lockMode) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// summarySet is one package's interprocedural layer: the call graph plus a
// summary per declared function.
type summarySet struct {
	pkg   *Package
	graph *callGraph
	byFn  map[*types.Func]*funcSummary
}

// summaries returns the package's interprocedural summary set, computed
// once on first use and shared by every summary-aware analyzer.
func (p *Package) summaries() *summarySet {
	p.sumOnce.Do(func() { p.sums = computeSummaries(p) })
	return p.sums
}

// of returns the summary for a callee object, or nil for anything that is
// not a declared function of this package.
func (s *summarySet) of(obj types.Object) *funcSummary {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return s.byFn[fn]
}

// calleeSummary resolves a call expression to the local callee's summary,
// or nil (external function, interface method, function value).
func (s *summarySet) calleeSummary(call *ast.CallExpr) *funcSummary {
	return s.of(calleeObj(s.pkg.Info, call))
}

// computeSummaries builds the call graph and solves every SCC bottom-up.
func computeSummaries(pkg *Package) *summarySet {
	s := &summarySet{pkg: pkg, graph: buildCallGraph(pkg), byFn: map[*types.Func]*funcSummary{}}
	for _, scc := range s.graph.sccs {
		recursive := len(scc) > 1 || scc[0].selfRecursive()
		if recursive {
			for _, n := range scc {
				s.byFn[n.fn] = s.optimisticInit(n)
			}
		}
		// Bounded in case a fact interaction is not perfectly monotone; real
		// components converge in a handful of rounds.
		for round := 0; round < 4*len(scc)+8; round++ {
			changed := false
			for _, n := range scc {
				ns := s.compute(n)
				if !ns.equal(s.byFn[n.fn]) {
					s.byFn[n.fn] = ns
					changed = true
				}
			}
			if !recursive || !changed {
				break
			}
		}
	}
	// spawnsUnjoined consumes the converged protocol facts (DonesWG,
	// SendsChan, WaitsWG), so it runs as a post-pass, not in the fixpoint.
	for _, n := range s.graph.order {
		unjoined := false
		fb := funcBody{decl: n.decl, typ: n.decl.Type, body: n.decl.Body}
		goroutineJoinFunc(pkg.Info, s, fb, func(token.Pos, string, ...any) { unjoined = true })
		s.byFn[n.fn].spawnsUnjoined = unjoined
	}
	return s
}

// optimisticInit seeds a recursive SCC member: must-facts true wherever the
// parameter type is eligible, may-facts and lock maps at bottom.
func (s *summarySet) optimisticInit(n *cgNode) *funcSummary {
	sum := &funcSummary{fn: n.fn, decl: n.decl}
	sig := n.fn.Type().(*types.Signature)
	sum.params = make([]paramFacts, sig.Params().Len())
	for i := range sum.params {
		t := sig.Params().At(i).Type()
		sum.params[i].EndsSpan = namedType(t, obsPkgPath, "Span")
		sum.params[i].ReleasesScope = namedType(t, tensorPkgPath, "Scope")
		sum.params[i].WaitsWG = namedType(t, "sync", "WaitGroup")
		sum.params[i].ClosesStore = namedType(t, storagePkgPath, "TensorStore")
	}
	sum.errNever, sum.errAlways = hasErrorResult(sig), hasErrorResult(sig)
	return sum
}

func hasErrorResult(sig *types.Signature) bool {
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			return true
		}
	}
	return false
}

// compute derives one function's summary against the current state of its
// callees' summaries (final for lower SCCs, in-flight for its own).
func (s *summarySet) compute(n *cgNode) *funcSummary {
	info := s.pkg.Info
	sum := &funcSummary{fn: n.fn, decl: n.decl}
	sig := n.fn.Type().(*types.Signature)
	cfg := n.funcCFG()
	body := n.decl.Body

	sum.params = make([]paramFacts, sig.Params().Len())
	for i := range sum.params {
		obj := sig.Params().At(i)
		if obj.Name() == "" || obj.Name() == "_" {
			continue
		}
		pf := &sum.params[i]
		t := obj.Type()
		switch {
		case namedType(t, obsPkgPath, "Span"):
			pf.EndsSpan = s.mustDischarge(cfg, body, obj, "End", func(f paramFacts) bool { return f.EndsSpan })
		case namedType(t, tensorPkgPath, "Scope"):
			pf.ReleasesScope = s.mustDischarge(cfg, body, obj, "Release", func(f paramFacts) bool { return f.ReleasesScope })
		case namedType(t, storagePkgPath, "TensorStore"):
			pf.ClosesStore = s.mustDischarge(cfg, body, obj, "Close", func(f paramFacts) bool { return f.ClosesStore })
		case namedType(t, "sync", "WaitGroup"):
			pf.WaitsWG = s.mustDischarge(cfg, body, obj, "Wait", func(f paramFacts) bool { return f.WaitsWG })
			pf.DonesWG = callsMethodOnAnywhere(info, body, obj, "Done") ||
				delegatesAnywhere(s, body, obj, func(f paramFacts) bool { return f.DonesWG })
		case isChanType(t):
			pf.SendsChan = sendsOrCloses(info, body, obj) ||
				delegatesAnywhere(s, body, obj, func(f paramFacts) bool { return f.SendsChan })
		case namedType(t, "context", "Context"):
			pf.UsesCtx = mentionsAnywhere(info, body, obj)
		}
		pf.Escapes = objEscapes(info, s, body, obj)
	}

	sum.errNever, sum.errAlways = s.errorFacts(n, sig)
	lockSummaryFacts(s, n, sum)
	if cur := s.byFn[n.fn]; cur != nil {
		sum.spawnsUnjoined = cur.spawnsUnjoined // preserved; set by the post-pass
	}
	return sum
}

// mustDischarge reports whether every path from entry to return discharges
// the obligation on obj: a direct method call (End/Release/Wait), a call
// delegating to a local function whose summary discharges that argument,
// or a defer of either form.
func (s *summarySet) mustDischarge(cfg *funcCFG, body *ast.BlockStmt, obj types.Object, method string, pred func(paramFacts) bool) bool {
	if s.deferredDischarge(body, obj, method, pred) {
		return true
	}
	must := cfg.mustPass(func(n *cfgNode) bool {
		return headerContains(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			return ok && s.dischargesAt(call, obj, method, pred)
		})
	})
	return must[cfg.entry]
}

// dischargesAt reports whether one call discharges the obligation on obj.
func (s *summarySet) dischargesAt(call *ast.CallExpr, obj types.Object, method string, pred func(paramFacts) bool) bool {
	if recv, ok := methodCallOn(call, method); ok && identObj(s.pkg.Info, recv) == obj {
		return true
	}
	return s.callDelegates(call, obj, pred)
}

// callDelegates reports whether call passes obj as an argument to a local
// function whose summary satisfies pred at that parameter position.
func (s *summarySet) callDelegates(call *ast.CallExpr, obj types.Object, pred func(paramFacts) bool) bool {
	sum := s.calleeSummary(call)
	if sum == nil {
		return false
	}
	for i, a := range call.Args {
		if argRootObj(s.pkg.Info, a) != obj {
			continue
		}
		if pi := sum.paramIndex(i); pi >= 0 && pred(sum.params[pi]) {
			return true
		}
	}
	return false
}

// deferredDischarge reports whether any defer in the body discharges obj:
// `defer obj.Method()`, a deferred closure containing such a call, or a
// deferred delegation to a local discharger.
func (s *summarySet) deferredDischarge(body *ast.BlockStmt, obj types.Object, method string, pred func(paramFacts) bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if s.dischargesAt(ds.Call, obj, method, pred) {
			found = true
			return false
		}
		if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok && s.dischargesAt(call, obj, method, pred) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// argRootObj resolves a call argument (through parens and a leading &) to
// the object of a plain identifier, or nil.
func argRootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				e = x.X
				continue
			}
		}
		break
	}
	return identObj(info, e)
}

// callsMethodOnAnywhere reports a call obj.sel(...) anywhere in the body,
// nested closures included — the worker-side Done shape.
func callsMethodOnAnywhere(info *types.Info, body ast.Node, obj types.Object, sel string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if recv, ok := methodCallOn(call, sel); ok && identObj(info, recv) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// delegatesAnywhere reports a call anywhere in the body (closures included)
// passing obj to a local function whose summary satisfies pred.
func delegatesAnywhere(s *summarySet, body ast.Node, obj types.Object, pred func(paramFacts) bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && s.callDelegates(call, obj, pred) {
			found = true
		}
		return !found
	})
	return found
}

// sendsOrCloses reports a send on or close of channel obj anywhere in the
// body, nested closures included.
func sendsOrCloses(info *types.Info, body ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			if identObj(info, x.Chan) == obj {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin && identObj(info, x.Args[0]) == obj {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// mentionsAnywhere reports any identifier use of obj in the body, nested
// closures included.
func mentionsAnywhere(info *types.Info, body ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func isChanType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// errorFacts classifies the function's error result across all explicit
// returns. Naked returns, no returns, and unknown expressions make both
// facts false (the conservative "could be either").
func (s *summarySet) errorFacts(n *cgNode, sig *types.Signature) (never, always bool) {
	errType := types.Universe.Lookup("error").Type()
	errIdx := -1
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			errIdx = i
		}
	}
	if errIdx < 0 {
		return false, false
	}
	never, always = true, true
	returns := 0
	shallowInspect(n.decl.Body, func(x ast.Node) bool {
		rs, ok := x.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		returns++
		canNil, canNonNil := true, true
		switch {
		case len(rs.Results) == 0:
			// Naked return through named results: unknown.
		case len(rs.Results) == 1 && sig.Results().Len() > 1:
			// Tuple-forward: return g(...) — judged by the callee's facts.
			if call, ok := rs.Results[0].(*ast.CallExpr); ok {
				canNil, canNonNil = s.errExprRange(call)
			}
		case errIdx < len(rs.Results):
			canNil, canNonNil = s.errExprRange(rs.Results[errIdx])
		}
		if canNonNil {
			never = false
		}
		if canNil {
			always = false
		}
		return true
	})
	if returns == 0 {
		return false, false
	}
	return never, always
}

// errExprRange bounds what an error-position expression can evaluate to:
// (can be nil, can be non-nil).
func (s *summarySet) errExprRange(e ast.Expr) (canNil, canNonNil bool) {
	info := s.pkg.Info
	if tv, ok := info.Types[e]; ok && tv.IsNil() {
		return true, false
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		if fn, ok := calleeObj(info, x).(*types.Func); ok && fn.Pkg() != nil {
			switch {
			case fn.Pkg().Path() == "errors" && fn.Name() == "New",
				fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
				return false, true
			}
		}
		if sum := s.calleeSummary(x); sum != nil {
			if sum.errNever {
				return true, false
			}
			if sum.errAlways {
				return false, true
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if _, ok := x.X.(*ast.CompositeLit); ok {
				return false, true
			}
		}
	}
	return true, true
}

// objEscapes reports whether obj's value can leave the enclosing function's
// hands: returned, stored beyond a plain rebind, placed in a composite /
// index / channel send, captured by a function literal, handed to a
// goroutine, or passed to a call not known (by local summary) to keep the
// argument local. sums may be nil for a purely syntactic judgment.
func objEscapes(info *types.Info, sums *summarySet, body *ast.BlockStmt, obj types.Object) bool {
	parents := parentMap(body)
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.ObjectOf(id) != obj {
			return true
		}
		if useEscapes(info, sums, parents, id) {
			escaped = true
		}
		return !escaped
	})
	return escaped
}

// useEscapes classifies one identifier use of a tracked variable.
func useEscapes(info *types.Info, sums *summarySet, parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	var child ast.Node = id
	parent := parents[id]
	for {
		if pe, ok := parent.(*ast.ParenExpr); ok {
			child = pe
			parent = parents[pe]
			continue
		}
		break
	}
	// Inside any function literal, the closure owns the value's fate —
	// callers credit the deferred-discharge pattern before asking here.
	for p := parent; p != nil; p = parents[p] {
		if _, ok := p.(*ast.FuncLit); ok {
			return true
		}
	}
	switch pn := parent.(type) {
	case *ast.SelectorExpr:
		return pn.X != child // shadowing selector like x.sp — not a use of ours
	case *ast.AssignStmt:
		for _, l := range pn.Lhs {
			if l == child {
				return false // (re)binding
			}
		}
		return true // copied into another variable
	case *ast.ReturnStmt, *ast.SendStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.IndexExpr:
		return true
	case *ast.UnaryExpr:
		// &obj: judge the address expression by its own context.
		if pn.Op == token.AND {
			return useEscapesFrom(info, sums, parents, pn)
		}
		return false
	case *ast.CallExpr:
		return callArgEscapes(info, sums, parents, pn, child)
	case *ast.BinaryExpr:
		return false // comparisons (x == nil) don't retain
	}
	return false
}

// useEscapesFrom re-judges an enclosing expression (an &obj node) by the
// same rules, so `helper(&wg)` gets summary treatment while `s.f = &wg`
// still escapes.
func useEscapesFrom(info *types.Info, sums *summarySet, parents map[ast.Node]ast.Node, e ast.Expr) bool {
	var child ast.Node = e
	parent := parents[e]
	for {
		if pe, ok := parent.(*ast.ParenExpr); ok {
			child = pe
			parent = parents[pe]
			continue
		}
		break
	}
	if call, ok := parent.(*ast.CallExpr); ok {
		return callArgEscapes(info, sums, parents, call, child)
	}
	return true // address stored/returned/compared: keep it conservative
}

// callArgEscapes judges a value passed as a call argument: handing it to a
// goroutine or to an unknown callee is an escape; a local callee whose
// summary says the parameter stays local is not.
func callArgEscapes(info *types.Info, sums *summarySet, parents map[ast.Node]ast.Node, call *ast.CallExpr, child ast.Node) bool {
	for i, a := range call.Args {
		if a != child {
			continue
		}
		if _, ok := parents[call].(*ast.GoStmt); ok {
			return true // another goroutine owns it now
		}
		if sums != nil {
			if sum := sums.calleeSummary(call); sum != nil {
				if pi := sum.paramIndex(i); pi >= 0 && !sum.params[pi].Escapes {
					return false // callee keeps it local; obligations transfer
				}
			}
		}
		return true
	}
	return false // receiver position: obj.End(), obj.Attr(...), ...
}
