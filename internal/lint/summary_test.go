package lint

import (
	"path/filepath"
	"testing"
)

func loadSummaryFixture(t *testing.T) *summarySet {
	t.Helper()
	dir := filepath.Join("testdata", "src", "summaries")
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return pkg.summaries()
}

func summaryByName(t *testing.T, s *summarySet, name string) *funcSummary {
	t.Helper()
	for fn, sum := range s.byFn {
		if fn.Name() == name {
			return sum
		}
	}
	t.Fatalf("no summary for %s", name)
	return nil
}

func TestSummaryEndsSpan(t *testing.T) {
	s := loadSummaryFixture(t)
	for name, want := range map[string]bool{
		"endSpan":          true,
		"endSpanBranch":    false,
		"endSpanDelegated": true, // one level of delegation
		"endSpanMutualA":   true, // mutual recursion converges optimistically
		"endSpanMutualB":   true,
		"spanCycleLeaky":   false, // the escape path lowers the seed
	} {
		if got := summaryByName(t, s, name).params[0].EndsSpan; got != want {
			t.Errorf("%s EndsSpan = %v, want %v", name, got, want)
		}
	}
}

func TestSummaryReleasesScope(t *testing.T) {
	s := loadSummaryFixture(t)
	if !summaryByName(t, s, "releaseScope").params[0].ReleasesScope {
		t.Error("releaseScope does not summarize as releasing its scope")
	}
}

func TestSummaryErrorFacts(t *testing.T) {
	s := loadSummaryFixture(t)
	cases := map[string][2]bool{ // {errNever, errAlways}
		"errNil":     {true, false},
		"errBoom":    {false, true},
		"errMixed":   {false, false},
		"errForward": {true, false}, // inherits errNil through the call
	}
	for name, want := range cases {
		sum := summaryByName(t, s, name)
		if sum.errNever != want[0] || sum.errAlways != want[1] {
			t.Errorf("%s = (never %v, always %v), want (never %v, always %v)",
				name, sum.errNever, sum.errAlways, want[0], want[1])
		}
	}
}

func TestSummaryLockHelpers(t *testing.T) {
	s := loadSummaryFixture(t)
	lock := summaryByName(t, s, "lock")
	if len(lock.holdsAtExit) != 1 {
		t.Fatalf("lock holdsAtExit = %v, want one receiver-rooted entry", lock.holdsAtExit)
	}
	for sym, mode := range lock.holdsAtExit {
		if !sym.recv || sym.rel != ".mu" || mode != lockWrite {
			t.Errorf("lock holdsAtExit entry = %+v mode %v, want recv .mu write", sym, mode)
		}
	}
	unlock := summaryByName(t, s, "unlock")
	if len(unlock.releasesLock) != 1 {
		t.Fatalf("unlock releasesLock = %v, want one receiver-rooted entry", unlock.releasesLock)
	}
	bump := summaryByName(t, s, "bump")
	if len(bump.holdsAtExit) != 0 {
		t.Errorf("bump holdsAtExit = %v, want empty (helper-acquired lock is defer-released)", bump.holdsAtExit)
	}
	if len(bump.mayLock) == 0 {
		t.Error("bump mayLock is empty; the helper's acquisition should surface transitively")
	}
}

func TestSummaryEscapes(t *testing.T) {
	s := loadSummaryFixture(t)
	if summaryByName(t, s, "keepLocal").params[0].Escapes {
		t.Error("keepLocal's nil-comparison counts as an escape")
	}
	if !summaryByName(t, s, "stash").params[0].Escapes {
		t.Error("stash stores to a package variable but does not summarize as escaping")
	}
	if !summaryByName(t, s, "endSpan").params[0].EndsSpan {
		t.Fatal("precondition: endSpan ends its span")
	}
}

func TestSummaryGoroutineProtocolFacts(t *testing.T) {
	s := loadSummaryFixture(t)
	if !summaryByName(t, s, "doneWorker").params[0].DonesWG {
		t.Error("doneWorker does not summarize as Done-ing its WaitGroup")
	}
	if !summaryByName(t, s, "waiter").params[0].WaitsWG {
		t.Error("waiter does not summarize as waiting on its WaitGroup")
	}
	if !summaryByName(t, s, "sender").params[0].SendsChan {
		t.Error("sender does not summarize as sending on its channel")
	}
}
