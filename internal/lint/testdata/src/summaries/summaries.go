// Package summaries is the unit-test fixture for the interprocedural
// summary computer: each function pins one summary fact (or its absence).
package summaries

import (
	"errors"
	"sync"

	"nautilus/internal/obs"
	"nautilus/internal/tensor"
)

// endSpan ends its span argument on every path.
func endSpan(sp *obs.Span) { sp.End() }

// endSpanBranch misses the else branch.
func endSpanBranch(sp *obs.Span, ok bool) {
	if ok {
		sp.End()
	}
}

// endSpanDelegated discharges through endSpan.
func endSpanDelegated(sp *obs.Span) { endSpan(sp) }

// endSpanMutualA / endSpanMutualB end the span through mutual recursion —
// the SCC fixpoint must keep the optimistic must-fact.
func endSpanMutualA(sp *obs.Span, n int) {
	if n <= 0 {
		sp.End()
		return
	}
	endSpanMutualB(sp, n-1)
}

func endSpanMutualB(sp *obs.Span, n int) {
	if n <= 0 {
		sp.End()
		return
	}
	endSpanMutualA(sp, n-1)
}

// spanCycleLeaky recurses but escapes at n <= 0 without ending — the
// fixpoint must lower the optimistic seed.
func spanCycleLeaky(sp *obs.Span, n int) {
	if n <= 0 {
		return
	}
	spanCycleLeaky(sp, n-1)
}

// releaseScope releases its scope argument.
func releaseScope(s *tensor.Scope) { s.Release() }

// Error-result classification.

func errNil() error { return nil }

func errBoom() error { return errors.New("boom") }

func errMixed(ok bool) error {
	if ok {
		return nil
	}
	return errors.New("bad")
}

// errForward inherits errNil's always-nil classification.
func errForward() error { return errNil() }

// Lock helpers.

type guarded struct {
	mu sync.Mutex
	n  int
}

func (g *guarded) lock() { g.mu.Lock() }

func (g *guarded) unlock() { g.mu.Unlock() }

func (g *guarded) bump() {
	g.lock()
	defer g.unlock()
	g.n++
}

// Escape classification.

func keepLocal(sp *obs.Span) bool { return sp == nil }

var spanSink *obs.Span

func stash(sp *obs.Span) { spanSink = sp }

// Goroutine-protocol parameter facts.

func doneWorker(wg *sync.WaitGroup) { defer wg.Done() }

func waiter(wg *sync.WaitGroup) { wg.Wait() }

func sender(ch chan int) {
	ch <- 1
	close(ch)
}
