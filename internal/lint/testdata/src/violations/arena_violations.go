package violations

import "nautilus/internal/tensor"

// Arenaescape: a scoped tensor is read after its scope was released — the
// arena may already have handed its buffer to the next step.

func arenaUseAfterRelease(a *tensor.Arena) float32 {
	s := a.Scope()
	x := s.Get(4)
	s.Release()
	return x.Data()[0] // want "arenaescape: x is backed by scope s, which may already be released here; move the use before Release or copy the tensor out"
}

// Arenaescape: a scoped tensor escapes on a channel while the function
// still releases the scope locally — the receiver sees recycled memory.

func arenaEscapeChannel(a *tensor.Arena, sink chan *tensor.Tensor) {
	s := a.Scope()
	x := s.Get(8)
	sink <- x // want "arenaescape: x is backed by scope s but escapes via a channel send, and the scope is released before the function returns; copy it out of the scope first"
	s.Release()
}

// Arenaescape: a scoped tensor is stored into a struct field that outlives
// the release.

type tensorHolder struct {
	t *tensor.Tensor
}

func arenaEscapeField(a *tensor.Arena, h *tensorHolder) {
	s := a.Scope()
	x := s.Get(8)
	h.t = x // want "arenaescape: x is backed by scope s but escapes via a struct field, and the scope is released before the function returns; copy it out of the scope first"
	s.Release()
}

// Not flagged: the prefetch-pipeline handoff — the tensor crosses the
// channel with its scope unreleased; releasing is the consumer's job.

func arenaHandoff(a *tensor.Arena, sink chan *tensor.Tensor) {
	s := a.Scope()
	x := s.Get(8)
	sink <- x
}

// Not flagged: every use happens strictly before Release.

func arenaOrdered(a *tensor.Arena) float32 {
	s := a.Scope()
	x := s.Get(4)
	v := x.Data()[0]
	s.Release()
	return v
}

// Suppressed: the use-after-release is deliberate and annotated.

func arenaSuppressed(a *tensor.Arena) float32 {
	s := a.Scope()
	x := s.Get(4)
	s.Release()
	//lint:ignore arenaescape fixture demonstrating a suppressed use-after-release
	return x.Data()[0]
}
