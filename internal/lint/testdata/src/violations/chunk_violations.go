package violations

import "nautilus/internal/tensor"

// Chunkdisjoint: a shared accumulator written by every chunk.

func chunkSharedSum(xs []float32) float32 {
	var sum float32
	tensor.Parallel(len(xs), len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // want "chunkdisjoint: chunk callback writes shared variable sum; every chunk races on it — make it chunk-local and reduce after Parallel returns"
		}
	})
	return sum
}

// Chunkdisjoint: a fixed index — every chunk writes the same element.

func chunkFixedIndex(out, xs []float32) {
	tensor.Parallel(len(xs), len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[0] = xs[i] // want "chunkdisjoint: chunk write index does not depend on the chunk bounds; chunks may write the same element"
		}
	})
}

// Chunkdisjoint: a modulo index maps chunks onto the same slots even though
// it mentions the chunk's own loop variable.

func chunkModuloIndex(out, xs []float32) {
	tensor.Parallel(len(xs), len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i%4] += xs[i] // want "chunkdisjoint: chunk write index contains %, which maps multiple chunks onto the same element; index with the chunk's own range instead"
		}
	})
}

// Not flagged: each chunk writes exactly its own [lo,hi) range.

func chunkDisjoint(out, xs []float32) {
	tensor.Parallel(len(xs), len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = xs[i] * 2
		}
	})
}

// Not flagged: a chunk-local buffer, then a copy into the chunk's own
// range.

func chunkCopyOwnRange(out, xs []float32) {
	tensor.Parallel(len(xs), len(xs), func(lo, hi int) {
		buf := make([]float32, hi-lo)
		for i := range buf {
			buf[i] = xs[lo+i] * 2
		}
		copy(out[lo:hi], buf)
	})
}

// Suppressed: a deliberate aliasing write, annotated.

func chunkSuppressed(out, xs []float32) float32 {
	tensor.Parallel(len(xs), len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			//lint:ignore chunkdisjoint fixture demonstrating a suppressed aliasing write
			out[0] += xs[i]
		}
	})
	return out[0]
}
