package violations

import "context"

// Helpers for the ctxflow fixtures: one that genuinely consumes its
// context, one whose blank parameter provably ignores it.

func ctxAwait(ctx context.Context) {
	<-ctx.Done()
}

func ctxIgnorer(_ context.Context, n int) int {
	return n + 1
}

// Ctxflow: a fresh Background context severs the caller's cancellation.

func ctxBackgroundDrop(ctx context.Context) {
	_ = ctx.Err()
	ctxAwait(context.Background()) // want "ctxflow: context.Background passed to ctxAwait while ctx is in scope; propagate the caller's context"
}

// Ctxflow: context.TODO is the same drop wearing a different name.

func ctxTodoDrop(ctx context.Context) {
	_ = ctx.Err()
	ctxAwait(context.TODO()) // want "ctxflow: context.TODO passed to ctxAwait while ctx is in scope; propagate the caller's context"
}

// Ctxflow: a context parameter the body never touches.

func ctxUnused(ctx context.Context, n int) int { // want "ctxflow: context parameter ctx is never used; propagate it to downstream calls or rename it _"
	return n * 2
}

// Clean: the context is threaded through.

func ctxPropagates(ctx context.Context) {
	ctxAwait(ctx)
}

// Clean: the callee's summary proves its context parameter is ignored, so
// substituting a fresh one changes nothing.

func ctxFreshToIgnorer(ctx context.Context) int {
	ctxAwait(ctx)
	return ctxIgnorer(context.Background(), 1)
}

// Suppressed: a deliberate detachment (fire-and-forget audit write),
// documented in place.

//lint:ignore ctxflow this fixture models a deliberately detached background task
func ctxDetached(ctx context.Context, n int) int {
	return n
}
