package violations

import (
	"sync"

	"nautilus/internal/obs"
	"nautilus/internal/tensor"
)

// Delegated obligations: helpers that discharge (or fail to discharge) a
// lifetime obligation on behalf of their caller. Before the summary layer
// every call argument counted as an ownership-transferring escape, so the
// clean cases below were clean by accident and the leaky cases were
// invisible false negatives.

// endSpanFor discharges the End obligation for its caller.
func endSpanFor(sp *obs.Span) {
	sp.End()
}

// noteSpan inspects the span but neither ends it nor keeps it — the
// obligation stays with the caller.
func noteSpan(sp *obs.Span) bool {
	return sp != nil
}

// Clean: the missed branch delegates End to a helper whose summary proves
// it ends the span on every path.

func spanDelegatedClean(tr *obs.Tracer, fail bool) bool {
	sp := tr.Start("work")
	if fail {
		endSpanFor(sp)
		return false
	}
	sp.End()
	return true
}

// Spanleak: the helper provably keeps the span local without ending it,
// so passing it no longer launders the leak as an escape.

func spanDelegatedLeaky(tr *obs.Tracer, fail bool) bool {
	sp := tr.Start("work") // want "spanleak: span sp is not ended on every path to return; add defer sp.End() or end it on the missed branch"
	if fail {
		return noteSpan(sp)
	}
	sp.End()
	return true
}

// releaseScopeFor discharges the Release obligation for its caller.
func releaseScopeFor(s *tensor.Scope) {
	s.Release()
}

// Arenaescape: the delegated Release counts as the real thing, so a use
// after the helper call is a use after release.

func arenaDelegatedUseAfter(a *tensor.Arena) float32 {
	s := a.Scope()
	x := s.Get(4)
	releaseScopeFor(s)
	return x.Data()[0] // want "arenaescape: x is backed by scope s, which may already be released here; move the use before Release or copy the tensor out"
}

// Arenaescape: a delegated Release downstream makes a field escape fatal,
// exactly as a direct Release would.

func arenaDelegatedEscape(a *tensor.Arena, h *tensorHolder) {
	s := a.Scope()
	x := s.Get(8)
	h.t = x // want "arenaescape: x is backed by scope s but escapes via a struct field, and the scope is released before the function returns; copy it out of the scope first"
	releaseScopeFor(s)
}

// Clean: delegated release with every use strictly before it.

func arenaDelegatedOrdered(a *tensor.Arena) float32 {
	s := a.Scope()
	x := s.Get(4)
	v := x.Data()[0]
	releaseScopeFor(s)
	return v
}

// resetCounter can never fail; its error result exists to satisfy an
// interface shape.
func resetCounter() error {
	return nil
}

// Clean: dropping a provably-nil error is not a finding.

func dropInfallibleError() {
	resetCounter()
}

// awaitWorkers delegates the Wait half of the join protocol.
func awaitWorkers(wg *sync.WaitGroup) {
	wg.Wait()
}

// Clean: the goroutine is joined through the Wait-delegating helper.

func launchWithDelegatedWait(work []int) int {
	var wg sync.WaitGroup
	total := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, w := range work {
			total += w
		}
	}()
	awaitWorkers(&wg)
	return total
}

// countDone is a named worker whose WaitGroup parameter summary (Dones it)
// classifies launches of it.
func countDone(wg *sync.WaitGroup, out []int) {
	defer wg.Done()
	for i := range out {
		out[i] = i
	}
}

// Clean: named-function launch, classified through the callee's summary
// and joined by Wait.

func launchNamedJoined(out []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go countDone(&wg, out)
	wg.Wait()
}

// Goroutinejoin: named-function launch where an early return skips Wait.

func launchNamedLeaky(out []int, skip bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go countDone(&wg, out) // want "goroutinejoin: goroutine countDone joined by wg.Wait, but a path from the launch reaches return without waiting"
	if skip {
		return
	}
	wg.Wait()
}

// spinForever signals nothing — no WaitGroup, no channel.
func spinForever(n int) {
	for i := 0; i < n; i++ {
		_ = i
	}
}

// Goroutinejoin: a named launch with no join protocol at all.

func launchUnjoinedNamed() {
	go spinForever(1000) // want "goroutinejoin: goroutine launches spinForever, which has no join protocol: it neither Dones a WaitGroup nor signals on a channel"
}
