package violations

import (
	"errors"
	"sync"
	"time"

	"nautilus/internal/obs"
)

// errTruncated stands in for an encoder failure in these fixtures.
var errTruncated = errors.New("truncated snapshot")

// Fixtures shaped like the live-telemetry exporter's periodic-snapshot
// goroutine: a ticker loop guarded by a stop channel, a mutex around the
// encoder, and spans around each snapshot. The leaky variants are the
// shutdown bugs the spanleak and locksafe analyzers exist to catch; the
// clean variant is the WaitGroup-joined shape the real exporter uses.

type leakyExporter struct {
	mu      sync.Mutex
	tr      *obs.Tracer
	stop    chan struct{}
	wg      sync.WaitGroup
	written int
}

// Spanleak: the per-snapshot span misses End when the encoder fails.

func (e *leakyExporter) snapshotLeaky(fail bool) error {
	sp := e.tr.Start("export/snapshot") // want "spanleak: span sp is not ended on every path to return; add defer sp.End() or end it on the missed branch"
	if fail {
		return errTruncated
	}
	e.written++
	sp.End()
	return nil
}

// Locksafe: the encoder mutex stays held when a tick races the close.

func (e *leakyExporter) writeLeaky(closed bool) {
	e.mu.Lock() // want "locksafe: e.mu.Lock is not released on every path to return; add defer e.mu.Unlock() or unlock the missed branch"
	if closed {
		return
	}
	e.written++
	e.mu.Unlock()
}

// Field-WaitGroup half-protocol: the goroutine Dones the exporter's
// WaitGroup field, but nothing Added it first — Close's Wait returns
// early and the snapshot races the file close.

func (e *leakyExporter) startNoAdd() {
	e.stop = make(chan struct{})
	go func() { // want "goroutinejoin: goroutine calls wg.Done but no wg.Add precedes the launch"
		defer e.wg.Done()
		<-e.stop
	}()
}

// Clean: the real exporter shape — the snapshot goroutine is registered
// with the WaitGroup before it starts, drains on the stop channel, and
// Close joins it before touching shared state.

type joinedExporter struct {
	mu      sync.Mutex
	tr      *obs.Tracer
	stop    chan struct{}
	wg      sync.WaitGroup
	written int
}

func (e *joinedExporter) start(interval time.Duration) {
	e.stop = make(chan struct{})
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				e.write()
			case <-e.stop:
				e.write()
				return
			}
		}
	}()
}

func (e *joinedExporter) write() {
	sp := e.tr.Start("export/snapshot")
	defer sp.End()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.written++
}

func (e *joinedExporter) close() int {
	close(e.stop)
	e.wg.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.written
}

// Suppressed: a deliberately unjoined fire-and-forget snapshot, annotated
// in place.

func (e *leakyExporter) snapshotSuppressed(fail bool) error {
	//lint:ignore spanleak fixture demonstrating a suppressed exporter snapshot leak
	sp := e.tr.Start("export/snapshot")
	if fail {
		return errTruncated
	}
	e.written++
	sp.End()
	return nil
}
