package violations

import (
	"errors"
	"sync"
)

// Goroutinejoin: fire-and-forget goroutine with no join protocol.

func goNoProtocol(xs []int) {
	go func() { // want "goroutinejoin: goroutine has no join protocol: no WaitGroup.Done and no send/close on an enclosing channel"
		total := 0
		for _, v := range xs {
			total += v
		}
		_ = total
	}()
}

// Goroutinejoin: a path from the launch reaches return without Wait.

func goWaitEarlyReturn(xs []float32, skip bool) float32 {
	var wg sync.WaitGroup
	out := make([]float32, len(xs))
	wg.Add(1)
	go func() { // want "goroutinejoin: goroutine joined by wg.Wait, but a path from the launch reaches return without waiting"
		defer wg.Done()
		for i := range xs {
			out[i] = xs[i] * 2
		}
	}()
	if skip {
		return 0
	}
	wg.Wait()
	return out[0]
}

// Goroutinejoin: the done channel is received on one branch only and never
// leaves the function.

func goChanNoReceive(n int) {
	done := make(chan struct{})
	go func() { // want "goroutinejoin: goroutine signals on channel done, but no path after the launch is guaranteed to receive from it and the channel never leaves the function"
		close(done)
	}()
	if n > 0 {
		<-done
	}
}

// Not flagged: Add/Done/Wait balanced, with Wait on every path out.

func goJoined(xs []float32) float32 {
	var wg sync.WaitGroup
	out := make([]float32, len(xs))
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = xs[i] * 2
		}(i)
	}
	wg.Wait()
	var sum float32
	for _, v := range out {
		sum += v
	}
	return sum
}

// Not flagged: the result channel is received on the only path out.

func goChanReceived(xs []int) int {
	done := make(chan int)
	go func() {
		total := 0
		for _, v := range xs {
			total += v
		}
		done <- total
	}()
	return <-done
}

// Pipeline constructor: returns a channel fed and closed by a goroutine it
// spawns. Not flagged itself — the channel leaves via return; its
// consumers carry the obligation to drain it.

func produceInts(n int) <-chan int {
	ch := make(chan int, 1)
	go func() {
		defer close(ch)
		for i := 0; i < n; i++ {
			ch <- i
		}
	}()
	return ch
}

var errTooLarge = errors.New("value over limit")

// Goroutinejoin: a consumer that can return early strands the producer
// blocked on send.

func consumeLeaky(n, limit int) (int, error) {
	vals := produceInts(n) // want "goroutinejoin: pipeline channel vals from produceInts is not drained on every path; an early return leaves the producer goroutine blocked on send — add `defer func() { for range vals { ... } }()` after the call"
	total := 0
	for i := 0; i < n; i++ {
		v := <-vals
		if v > limit {
			return total, errTooLarge
		}
		total += v
	}
	return total, nil
}

// Not flagged: the deferred drain lets the producer run to completion on
// every path, early returns included.

func consumeDrained(n, limit int) int {
	vals := produceInts(n)
	defer func() {
		for range vals {
		}
	}()
	total := 0
	for i := 0; i < n; i++ {
		v := <-vals
		if v > limit {
			return total
		}
		total += v
	}
	return total
}

// Suppressed: a deliberate fire-and-forget goroutine, annotated.

func goSuppressed(msgs []string, sink func(string)) {
	//lint:ignore goroutinejoin fixture demonstrating a suppressed fire-and-forget goroutine
	go func() {
		for _, m := range msgs {
			sink(m)
		}
	}()
}
