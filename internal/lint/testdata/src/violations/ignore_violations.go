package violations

// Ignoreaudit: the suppression below names an analyzer that reports
// nothing on the lines it covers — the pragma itself is the finding.

//lint:ignore determinism formerly read the wall clock; kept to demonstrate the stale-suppression audit // want "ignoreaudit: stale suppression: determinism reports no finding here; remove the //lint:ignore"
func formerlyClocky() int {
	return 42
}

// Not flagged: the pragma names an analyzer outside this suite's run set,
// so the audit cannot judge whether it is stale.

//lint:ignore gosec pragma for an external tool; the audit leaves analyzers it did not run alone
func externallySuppressed() int {
	return 7
}
