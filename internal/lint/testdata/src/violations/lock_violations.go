package violations

import "sync"

// Locksafe: an early return leaves the mutex held on one path.

type lockedCounter struct {
	mu sync.Mutex
	n  int
}

func (c *lockedCounter) bumpLeaky(skip bool) {
	c.mu.Lock() // want "locksafe: c.mu.Lock is not released on every path to return; add defer c.mu.Unlock() or unlock the missed branch"
	if skip {
		return
	}
	c.n++
	c.mu.Unlock()
}

// Locksafe: a panic edge escapes the critical section with the lock held.

func (c *lockedCounter) bumpPanicky(n int) {
	c.mu.Lock() // want "locksafe: c.mu.Lock is not released on every path to return; add defer c.mu.Unlock() or unlock the missed branch"
	if n < 0 {
		panic("negative increment")
	}
	c.n += n
	c.mu.Unlock()
}

// Locksafe: releasing a read lock with the write-side Unlock.

type lockedIndex struct {
	mu sync.RWMutex
	m  map[string]int
}

func (ix *lockedIndex) lookupMismatched(k string) int {
	ix.mu.RLock()
	v := ix.m[k]
	ix.mu.Unlock() // want "locksafe: ix.mu is read-locked here; release it with RUnlock, not Unlock"
	return v
}

// Locksafe: double Lock of a plain mutex self-deadlocks.

func (c *lockedCounter) bumpTwice() {
	c.mu.Lock()
	c.mu.Lock() // want "locksafe: second Lock of c.mu deadlocks: it is already locked on this path"
	c.n += 2
	c.mu.Unlock()
}

// Locksafe: self-recursion re-enters the critical section — the summary's
// may-acquire set catches the cycle at the recursive call.

func (c *lockedCounter) drainRecursive(n int) {
	if n == 0 {
		return
	}
	c.mu.Lock()
	c.n--
	c.drainRecursive(n - 1) // want "locksafe: drainRecursive may Lock c.mu, which is already held at this call; the re-acquisition deadlocks"
	c.mu.Unlock()
}

// Clean: the canonical defer pairing.

func (c *lockedCounter) bumpDeferred() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Clean: both branches release before returning.

func (ix *lockedIndex) lookupBranches(k string, fast bool) int {
	ix.mu.RLock()
	if fast {
		v := ix.m[k]
		ix.mu.RUnlock()
		return v
	}
	v := ix.m[k] * 2
	ix.mu.RUnlock()
	return v
}

// Clean: lock/unlock helper pair — the lock helper's held-at-exit summary
// transfers the obligation to the caller, and the deferred unlock helper
// discharges it.

func (c *lockedCounter) lock()   { c.mu.Lock() }
func (c *lockedCounter) unlock() { c.mu.Unlock() }

func (c *lockedCounter) bumpViaHelpers() {
	c.lock()
	defer c.unlock()
	c.n++
}

// Locksafe: a lock helper whose caller never releases — the inherited
// held state leaks at the caller's early return.

func (c *lockedCounter) bumpHelperLeaky(skip bool) {
	c.lock() // want "locksafe: c.mu.Lock is not released on every path to return; add defer c.mu.Unlock() or unlock the missed branch"
	if skip {
		return
	}
	c.n++
	c.mu.Unlock()
}

// Suppressed: intentionally held across the return (handed to a paired
// unlock elsewhere), documented in place.

func (c *lockedCounter) bumpSuppressed(skip bool) {
	//lint:ignore locksafe the lock is intentionally handed to the caller's cleanup in this fixture
	c.mu.Lock()
	if skip {
		return
	}
	c.n++
	c.mu.Unlock()
}
