package violations

import (
	"nautilus/internal/core"
	"nautilus/internal/opt"
)

// sessionPlanBeforeReplan reads the plan before the first Replan has run:
// the planner caches nothing yet, so the caller trains against a nil plan.
func sessionPlanBeforeReplan() (*core.WorkloadPlan, error) {
	p, err := core.NewPlanner(nil, nil, core.Config{})
	if err != nil {
		return nil, err
	}
	return p.Plan(), nil // want "sessionorder: planner p's Plan is read before any Replan; the plan is nil until the first Replan succeeds"
}

// sessionStaleRead stages growth on a caller-owned planner but reads the
// plan without replanning: the staged rows are invisible to the plan.
func sessionStaleRead(p *core.Planner, n int) *core.WorkloadPlan {
	p.GrowData(n)
	return p.Plan() // want "sessionorder: planner p has staged evolution events; call Replan before reading Plan"
}

// sessionFailedReplan discards Replan's error, then keeps using the session
// as if the replan had landed.
func sessionFailedReplan(p *core.Planner, n int) *core.WorkloadPlan {
	wp, _, _ := p.Replan()
	_ = wp
	p.GrowData(n) // want "sessionorder: planner p is mutated after a Replan whose error was discarded; handle the error (or Replan again) first"
	return p.Plan() // want "sessionorder: planner p's Plan is read after a Replan whose error was discarded; handle the error first"
}

// sessionReplanned is the clean protocol: evolution events staged, folded in
// by a checked Replan, and only then is the plan read.
func sessionReplanned(items []opt.WorkItem) (*core.WorkloadPlan, error) {
	p, err := core.NewPlanner(items, nil, core.Config{})
	if err != nil {
		return nil, err
	}
	if _, _, err := p.Replan(); err != nil {
		return nil, err
	}
	p.GrowData(len(items))
	if _, _, err := p.Replan(); err != nil {
		return nil, err
	}
	return p.Plan(), nil
}

// sessionSuppressed documents a deliberate pre-Replan read: the probe wants
// the nil-plan sentinel of a fresh session.
func sessionSuppressed(n int) *core.WorkloadPlan {
	p, _ := core.NewPlanner(nil, nil, core.Config{})
	_ = p.GrowData(n)
	//lint:ignore sessionorder probing the staged session; the nil plan is the sentinel
	return p.Plan()
}
