package violations

import (
	"errors"

	"nautilus/internal/obs"
)

// Spanleak: an early error return skips End.

func spanEarlyReturn(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("work") // want "spanleak: span sp is not ended on every path to return; add defer sp.End() or end it on the missed branch"
	if fail {
		return errors.New("boom")
	}
	sp.End()
	return nil
}

// Spanleak: an explicit panic path exits without End and nothing is
// deferred.

func spanPanicPath(tr *obs.Tracer, n int) {
	sp := tr.Start("work") // want "spanleak: span sp is not ended on every path to return; add defer sp.End() or end it on the missed branch"
	if n < 0 {
		panic("negative record count")
	}
	sp.End()
}

// Spanleak: the span handle is dropped on the floor.

func spanDropped(parent *obs.Span) {
	parent.Child("detached") // want "spanleak: span from Child is dropped without being ended; bind it and defer End"
}

// Not flagged: deferred End covers every exit, panics included.

func spanDeferred(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("work")
	defer sp.End()
	if fail {
		return errors.New("boom")
	}
	return nil
}

// Not flagged: both branches end the span explicitly.

func spanBothPaths(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("work")
	if fail {
		sp.End()
		return errors.New("boom")
	}
	sp.End()
	return nil
}

// Not flagged: the span escapes by being returned; ending it is the
// caller's job.

func spanHandedOff(tr *obs.Tracer) *obs.Span {
	sp := tr.Start("work")
	return sp
}

// Suppressed: the leak is deliberate and annotated.

func spanSuppressed(tr *obs.Tracer, fail bool) error {
	//lint:ignore spanleak fixture demonstrating a suppressed deliberate leak
	sp := tr.Start("work")
	if fail {
		return errors.New("boom")
	}
	sp.End()
	return nil
}
