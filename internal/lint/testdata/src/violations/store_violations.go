package violations

import (
	"errors"

	"nautilus/internal/storage"
	"nautilus/internal/tensor"
)

// storeLeak opens a store but misses Close on the capacity-probe path.
func storeLeak(dir string, probe bool) error {
	st, err := storage.NewTensorStore(dir, nil) // want "storelease: store st is not closed on every path to return; add defer st.Close() or close it on the missed branch"
	if err != nil {
		return err
	}
	if probe {
		return errors.New("probe only")
	}
	return st.Close()
}

// storeUseAfterClose appends to a store that is already closed on every
// path reaching the call.
func storeUseAfterClose(dir string) error {
	st, err := storage.NewTensorStore(dir, nil)
	if err != nil {
		return err
	}
	if appendErr := st.Append("grad", nil); appendErr != nil {
		_ = st.Close()
		return appendErr
	}
	_ = st.Close()
	return st.Append("loss", nil) // want "storelease: store st may already be closed here; move the use before Close"
}

// storeStaleRows reads rows, sweeps the store, then hands the stale rows
// on: the GC may have dropped the record files backing them.
func storeStaleRows(dir string, keep func(string) bool) (*tensor.Tensor, error) {
	st, err := storage.NewTensorStore(dir, nil)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	rows, err := st.ReadRows("embed", []int{0, 1})
	if err != nil {
		return nil, err
	}
	if _, _, err := st.GC(keep); err != nil {
		return nil, err
	}
	return rows, nil // want "storelease: rows was read from store st before a GC/Delete that may have dropped its rows; re-read it after the sweep or copy it out first"
}

// storeRebound re-binds the handle before closing the first store: the
// first store's directory handle and cache are unreachable from here on.
func storeRebound(dir string) error {
	st, err := storage.NewTensorStore(dir, nil) // want "storelease: store st is re-bound before being closed; the earlier store's directory handle and cache leak — close it before re-binding"
	if err != nil {
		return err
	}
	st, err = storage.NewTensorStore(dir+".v2", nil)
	if err != nil {
		return err
	}
	return st.Close()
}

// storeRoundTrip is the clean lifecycle: deferred Close, and rows read
// after the sweep, so nothing they reference can have been dropped by it.
func storeRoundTrip(dir string, keep func(string) bool) (*tensor.Tensor, error) {
	st, err := storage.NewTensorStore(dir, nil)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	if _, _, err := st.GC(keep); err != nil {
		return nil, err
	}
	rows, err := st.ReadRows("embed", []int{0})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// storeSession owns its store; Close is the owner's job.
type storeSession struct {
	st *storage.TensorStore
}

func (s *storeSession) shutdown() error { return s.st.Close() }

// storeHandedToOwner stores the handle into a struct field: the obligation
// transfers to the session, whose shutdown method completes the protocol.
func storeHandedToOwner(dir string) (*storeSession, error) {
	st, err := storage.NewTensorStore(dir, nil)
	if err != nil {
		return nil, err
	}
	return &storeSession{st: st}, nil
}

// storeSuppressed pins a probe store open past the function on purpose.
func storeSuppressed(dir string, probe bool) error {
	//lint:ignore storelease probe stores are reclaimed by the harness
	st, err := storage.NewTensorStore(dir, nil)
	if err != nil {
		return err
	}
	if probe {
		return nil
	}
	return st.Close()
}
