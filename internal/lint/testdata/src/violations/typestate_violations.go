package violations

import (
	"nautilus/internal/obs"
)

// spanRebound drops the first span's only handle by re-binding it before
// End: the phase1 span can never be ended.
func spanRebound(tr *obs.Tracer) {
	sp := tr.Start("phase1") // want "spanleak: span sp is re-bound before being ended; the earlier span never reaches End — end it before re-binding"
	sp = tr.Start("phase2")
	sp.End()
}

// spanDeferLoop defers End inside the starting loop: defers run at function
// exit, so every iteration's span stays open until the walk finishes.
func spanDeferLoop(tr *obs.Tracer, steps []string) {
	for _, step := range steps {
		sp := tr.Start(step) // want "spanleak: span sp is started in a loop but its deferred End runs at function exit, not per iteration; end it at the end of the iteration"
		defer sp.End()
	}
}

// spanPhase carries a span ended by its owner.
type spanPhase struct {
	sp *obs.Span
}

func (ph *spanPhase) finish() { ph.sp.End() }

// spanFieldCompleted stores the span into a struct field: the obligation
// transfers to the phase value, whose finish method ends it.
func spanFieldCompleted(tr *obs.Tracer) *spanPhase {
	ph := &spanPhase{}
	sp := tr.Start("phase")
	ph.sp = sp
	return ph
}
