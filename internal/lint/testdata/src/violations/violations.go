// Package violations holds exactly one instance of every finding class the
// Nautilus analyzer suite reports. The golden test in internal/lint parses
// the want-comments ("<analyzer>: <message>") and asserts the suite
// produces exactly these diagnostics, no more and no fewer.
package violations

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"nautilus/internal/tensor"
)

// Determinism: wall-clock reads and the process-global rand source.

func clocky() time.Time {
	return time.Now() // want "determinism: time.Now reads the wall clock; route timing through a seeded/simulated clock or annotate the reporting site"
}

func randy() int {
	return rand.Intn(6) // want "determinism: rand.Intn draws from the unseeded global source; use rand.New(rand.NewSource(seed))"
}

// Floateq: exact floating-point comparison.

func floaty(a, b float64) bool {
	return a == b // want "floateq: == on floating-point operands; compare with an epsilon or on math.Float64bits"
}

// Layer purity: Forward stashes an activation on the receiver instead of
// passing it through the cache.

type leakyLayer struct {
	last float64
}

func (l *leakyLayer) Forward(x float64) float64 {
	l.last = x // want "layerpurity: Forward assigns to receiver state; layers are pure — pass activations through the returned cache"
	return x
}

func (l *leakyLayer) Backward(g float64) float64 {
	return g * l.last
}

// Allocation hygiene: a fixed-size scratch buffer allocated every
// iteration, used purely in place — hoistable above the loop.

func allocy(n, dim int) float32 {
	var sum float32
	for i := 0; i < n; i++ {
		buf := make([]float32, dim) // want "allochygiene: per-iteration make([]float32) with loop-invariant size; hoist the buffer out of the loop and reuse it"
		buf[0] = float32(i)
		sum += buf[0]
	}
	return sum
}

// Not flagged: the size depends on the loop variable (a fresh allocation is
// genuinely needed) or the buffer escapes the iteration.

func allocyOK(n int, sink [][]float64) {
	for i := 1; i < n; i++ {
		varying := make([]float64, i) // size is loop-variant
		varying[0] = 1
		escaping := make([]float64, n)
		sink[i] = escaping // stored beyond the iteration
	}
}

// Arena bypass: a layer Forward allocates its output with tensor.New
// instead of deriving it from a (scope-rooted) input via tensor.NewFrom,
// opting out of step-scoped buffer recycling.

type bypassLayer struct{}

func (bypassLayer) Forward(inputs []*tensor.Tensor, train bool) (*tensor.Tensor, any) {
	out := tensor.New(inputs[0].Shape()...) // want "allochygiene: tensor.New in Forward bypasses the step arena; derive the output from an input with tensor.NewFrom/NewFrom2"
	return out, nil
}

// Not flagged: the output derives from the input's allocator.

func (bypassLayer) Backward(cache any, inputs []*tensor.Tensor, out, gradOut *tensor.Tensor) []*tensor.Tensor {
	dx := tensor.NewFrom(gradOut, gradOut.Shape()...)
	return []*tensor.Tensor{dx}
}

// Unchecked error: an error result dropped on the floor.

func droppy(f *os.File) {
	fmt.Fprintf(f, "hi") // want "uncheckederr: result of fmt.Fprintf contains an ignored error"
}

// Suppressed: a well-formed //lint:ignore hides the finding entirely.

//lint:ignore determinism fixture demonstrating a valid suppression
func suppressed() time.Time { return time.Now() }

// Malformed suppression: no reason, so the framework reports the comment
// itself and the finding on the next line is NOT suppressed.

//lint:ignore floateq
func malformed(a, b float64) bool {
	return a != b // want "floateq: != on floating-point operands; compare with an epsilon or on math.Float64bits"
}
