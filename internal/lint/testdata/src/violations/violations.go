// Package violations holds exactly one instance of every finding class the
// Nautilus analyzer suite reports. The golden test in internal/lint parses
// the want-comments ("<analyzer>: <message>") and asserts the suite
// produces exactly these diagnostics, no more and no fewer.
package violations

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

// Determinism: wall-clock reads and the process-global rand source.

func clocky() time.Time {
	return time.Now() // want "determinism: time.Now reads the wall clock; route timing through a seeded/simulated clock or annotate the reporting site"
}

func randy() int {
	return rand.Intn(6) // want "determinism: rand.Intn draws from the unseeded global source; use rand.New(rand.NewSource(seed))"
}

// Floateq: exact floating-point comparison.

func floaty(a, b float64) bool {
	return a == b // want "floateq: == on floating-point operands; compare with an epsilon or on math.Float64bits"
}

// Layer purity: Forward stashes an activation on the receiver instead of
// passing it through the cache.

type leakyLayer struct {
	last float64
}

func (l *leakyLayer) Forward(x float64) float64 {
	l.last = x // want "layerpurity: Forward assigns to receiver state; layers are pure — pass activations through the returned cache"
	return x
}

func (l *leakyLayer) Backward(g float64) float64 {
	return g * l.last
}

// Unchecked error: an error result dropped on the floor.

func droppy(f *os.File) {
	fmt.Fprintf(f, "hi") // want "uncheckederr: result of fmt.Fprintf contains an ignored error"
}

// Suppressed: a well-formed //lint:ignore hides the finding entirely.

//lint:ignore determinism fixture demonstrating a valid suppression
func suppressed() time.Time { return time.Now() }

// Malformed suppression: no reason, so the framework reports the comment
// itself and the finding on the next line is NOT suppressed.

//lint:ignore floateq
func malformed(a, b float64) bool {
	return a != b // want "floateq: != on floating-point operands; compare with an epsilon or on math.Float64bits"
}
