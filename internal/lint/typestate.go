package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"time"
)

// This file is the declarative typestate protocol engine. A resource
// protocol — span Start→End, scope New→Release, store Open→Close, planner
// event ordering — is declared as a typestateSpec (a small state machine
// plus message templates) and the engine supplies the analysis machinery
// every protocol analyzer used to hand-roll:
//
//   - an obligation leg (spanleak's shape): every tracked origin must reach
//     its terminal event on all paths to exit, unless a defer discharges it,
//     it escapes to a new owner, or an error-guarded return proves the
//     resource was never acquired. Extras the raw analyzers lacked: a
//     re-binding check (overwriting the only handle before the terminal
//     leaks the old value) and a defer-in-loop check (a deferred terminal
//     inside the origin's own loop runs at function exit, not per
//     iteration);
//
//   - a simulation leg (arenaescape's shape): a forward may-analysis over
//     the CFG tracking each value's protocol state and the values derived
//     from it, reporting uses in bad states, protocol events fired in
//     states that forbid them, and derived values escaping while a
//     worsening event is still reachable.
//
// Both legs interface with the interprocedural summary layer: events fire
// through delegation to local helpers (summarySet.callDelegates /
// dischargesAt / deferredDischarge), and escapes hand the obligation to the
// new owner (objEscapes). The SSA layer (ssa.go) sharpens the obligation
// leg: with copyDischarge set, a terminal called on a pure copy of the
// origin discharges it, and the error-guard exemption only credits returns
// whose guarding condition reads the origin's own error binding, not a
// reassigned one.
//
// spanleak, arenaescape, and goroutinejoin's WaitGroup leg are instances of
// this engine (their findings are bit-compatible with the hand-written
// originals); sessionorder and storelease are declared directly against it.

// useMsgs are the diagnostics for mentioning a value while its protocol
// owner sits in a given state.
type useMsgs struct {
	// derivedMsg flags a value derived from the owner; args (value, owner).
	derivedMsg string
	// directMsg flags the owner itself; args (owner). The receiver of one
	// of the spec's own event calls is exempt (the event is a legal use).
	directMsg string
}

// eventSpec is one protocol event: a method of the tracked value (or a
// local helper the summary layer proves fires the event on a parameter).
type eventSpec struct {
	method string
	// fact credits delegation: a call passing the tracked value to a local
	// function whose summary satisfies fact counts as the event. Nil means
	// the event only fires through a direct method call.
	fact func(paramFacts) bool
	// to is the state after the event; "" leaves the state unchanged.
	to string
	// keepIn lists states the event does not change (e.g. staging data on a
	// never-planned planner leaves it never-planned).
	keepIn []string
	// errDiscardedTo, when non-"", is the state entered instead of `to`
	// when the call's trailing error result is discarded at the call site
	// (bare expression statement, or `_` in the error position).
	errDiscardedTo string
	// badIn maps states in which firing this event is itself a finding to
	// the message template; args (owner).
	badIn map[string]string
}

// typestateSpec declares one protocol. Zero-valued sections disable the
// corresponding leg: a spec with no leakMsg has no exit obligation, a spec
// with no states has no state simulation.
type typestateSpec struct {
	name string

	// origin matches calls that create a tracked value.
	origin func(p *Pass, call *ast.CallExpr) bool
	// originLabel renders the origin for the unbound message.
	originLabel func(call *ast.CallExpr) string
	// errResult marks origins returning (T, error): values bind through
	// tuple assignments, and the obligation leg exempts error-guarded
	// returns (the acquire failed, there is nothing to release).
	errResult bool
	// valueType recognizes the tracked value's type: binds tuple results
	// and seeds parameters.
	valueType func(p *Pass, t types.Type) bool

	// unboundMsg flags an origin call used as a bare statement (the handle
	// is dropped and can never be discharged); args (originLabel).
	unboundMsg string

	// Obligation leg.
	terminal      string                // discharging method name
	terminalFact  func(paramFacts) bool // summary fact crediting delegation
	leakMsg       string                // args (value, value)
	overwriteMsg  string                // non-"": check mid-protocol re-binding; args (value)
	deferLoopMsg  string                // non-"": check defer-in-loop; args (value)
	copyDischarge bool                  // SSA: terminal on a pure copy discharges

	// Simulation leg. states are ordered best→worst; path merge keeps the
	// worst (may-analysis: "may already be released/closed/failed").
	states     []string
	start      string // state of a freshly bound origin
	paramStart string // non-"": seed valueType parameters in this state
	events     []eventSpec
	derived    func(p *Pass, t types.Type) bool // types carrying derived values
	useInState map[string]useMsgs
	// staleOnly restricts derivedMsg to values bound before the owner
	// reached its current (worse) state: rows read before a GC are stale
	// after it, rows read after are fine.
	staleOnly bool
	// escapeEvent/escapeMsg flag derived values stored to fields, globals,
	// or channels while the named event is still reachable downstream;
	// args (value, owner, how).
	escapeEvent string
	escapeMsg   string
}

func (s *typestateSpec) rank(state string) int {
	for i, name := range s.states {
		if name == state {
			return i
		}
	}
	return -1
}

func (s *typestateSpec) eventByMethod(method string) *eventSpec {
	for i := range s.events {
		if s.events[i].method == method {
			return &s.events[i]
		}
	}
	return nil
}

// runTypestate drives one spec over every non-test function in the package.
func runTypestate(p *Pass, spec *typestateSpec) {
	sums := p.Pkg.summaries()
	for _, f := range p.Pkg.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		funcBodies(f, func(fb funcBody) { typestateFunc(p, sums, spec, fb) })
	}
}

func typestateFunc(p *Pass, sums *summarySet, spec *typestateSpec, fb funcBody) {
	cfg := buildCFG(fb.body)
	typestateObligations(p, sums, spec, fb, cfg)
	if len(spec.states) > 0 {
		typestateSimulate(p, sums, spec, fb, cfg)
	}
}

// ---------------------------------------------------------------------------
// Obligation leg
// ---------------------------------------------------------------------------

// tsOrigin is one tracked binding `v := origin(...)` (or `v, err := ...`).
type tsOrigin struct {
	obj    types.Object
	id     *ast.Ident
	errObj types.Object // bound error result, errResult specs only
	node   *cfgNode
	call   *ast.CallExpr
}

func typestateObligations(p *Pass, sums *summarySet, spec *typestateSpec, fb funcBody, cfg *funcCFG) {
	info := p.Pkg.Info

	// Dropped handles: a bare origin call as its own statement.
	if spec.unboundMsg != "" {
		for _, n := range cfg.nodes {
			es, ok := n.stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok && spec.origin(p, call) {
				p.Reportf(call.Pos(), spec.unboundMsg, spec.originLabel(call))
			}
		}
	}
	if spec.leakMsg == "" {
		return
	}

	origins := collectOrigins(p, spec, cfg)
	if len(origins) == 0 {
		return
	}

	var ssa *ssaFunc
	getSSA := func() *ssaFunc {
		if ssa == nil {
			//lint:ignore determinism wall-clock measurement of SSA construction for timing output
			start := time.Now()
			ssa = buildSSA(info, fb, cfg)
			//lint:ignore determinism wall-clock measurement of SSA construction for timing output
			p.ssaNs += time.Since(start).Nanoseconds()
		}
		return ssa
	}
	var parents map[ast.Node]ast.Node

	for _, o := range origins {
		o := o
		// dischargeCall reports whether call discharges this origin: the
		// terminal on the value itself, a delegation the summary layer
		// credits, or (copyDischarge) the terminal on a pure SSA copy.
		dischargeCall := func(call *ast.CallExpr) bool {
			if sums.dischargesAt(call, o.obj, spec.terminal, spec.terminalFact) {
				return true
			}
			if !spec.copyDischarge {
				return false
			}
			recv, ok := methodCallOn(call, spec.terminal)
			if !ok {
				return false
			}
			id, ok := recv.(*ast.Ident)
			if !ok || info.ObjectOf(id) == o.obj {
				return false
			}
			s := getSSA()
			originDef := s.defValue(o.id)
			if originDef == nil {
				return false
			}
			rd := s.reachingDef(id)
			return rd != nil && rd.resolvesTo(originDef)
		}
		dischargesNode := func(n *cfgNode) bool {
			return headerContains(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				return ok && dischargeCall(call)
			})
		}

		// Defer-in-loop: the origin re-binds every iteration, but a defer
		// inside the loop only runs at function exit — every iteration but
		// the last leaks until then.
		if spec.deferLoopMsg != "" {
			if parents == nil {
				parents = parentMap(fb.body)
			}
			if loop := enclosingLoop(parents, o.node.stmt); loop != nil &&
				sums.deferredDischarge(loop, o.obj, spec.terminal, spec.terminalFact) {
				p.Reportf(o.call.Pos(), spec.deferLoopMsg, o.obj.Name())
				continue
			}
		}
		if sums.deferredDischarge(fb.body, o.obj, spec.terminal, spec.terminalFact) ||
			objEscapes(info, sums, fb.body, o.obj) {
			continue
		}
		// Re-binding mid-protocol: another definition of the variable is
		// reachable from the origin without passing the terminal — the
		// earlier value's only handle is gone.
		if spec.overwriteMsg != "" && overwriteReachable(info, cfg, o, dischargesNode) {
			p.Reportf(o.call.Pos(), spec.overwriteMsg, o.obj.Name())
			continue
		}
		satisfies := func(n *cfgNode) bool {
			if dischargesNode(n) {
				return true
			}
			return spec.errResult && o.errObj != nil && errGuardReturn(info, getSSA(), o, n)
		}
		if !cfg.mustPassFrom(o.node, satisfies) {
			p.Reportf(o.call.Pos(), spec.leakMsg, o.obj.Name(), o.obj.Name())
		}
	}
}

// collectOrigins finds the tracked bindings: for plain specs a single
// `v := origin(...)` assignment; for errResult specs a tuple
// `v, err := origin(...)` whose value slot has the tracked type.
func collectOrigins(p *Pass, spec *typestateSpec, cfg *funcCFG) []tsOrigin {
	info := p.Pkg.Info
	var origins []tsOrigin
	for _, n := range cfg.nodes {
		as, ok := n.stmt.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			continue
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !spec.origin(p, call) {
			continue
		}
		if !spec.errResult {
			if len(as.Lhs) != 1 {
				continue
			}
			obj := identObj(info, as.Lhs[0])
			if obj == nil || obj.Name() == "_" {
				continue
			}
			id, _ := as.Lhs[0].(*ast.Ident)
			origins = append(origins, tsOrigin{obj: obj, id: id, node: n, call: call})
			continue
		}
		// Tuple binding: the value slot is the LHS with the tracked type;
		// the error binds last.
		var o tsOrigin
		for i, l := range as.Lhs {
			obj := identObj(info, l)
			if obj == nil || obj.Name() == "_" {
				continue
			}
			if spec.valueType != nil && spec.valueType(p, obj.Type()) {
				o.obj = obj
				o.id, _ = l.(*ast.Ident)
			} else if i == len(as.Lhs)-1 && types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
				o.errObj = obj
			}
		}
		if o.obj == nil {
			continue
		}
		o.node, o.call = n, call
		origins = append(origins, o)
	}
	return origins
}

// enclosingLoop returns the body of the innermost for/range statement
// containing stmt, or nil.
func enclosingLoop(parents map[ast.Node]ast.Node, stmt ast.Stmt) *ast.BlockStmt {
	for n := parents[stmt]; n != nil; n = parents[n] {
		switch l := n.(type) {
		case *ast.ForStmt:
			return l.Body
		case *ast.RangeStmt:
			return l.Body
		case *ast.FuncLit:
			return nil // the loop, if any, is outside this body
		}
	}
	return nil
}

// overwriteReachable runs a blocked BFS from the origin's successors: nodes
// discharging the obligation stop the walk; reaching another definition of
// the variable (including the origin itself around a loop) means the first
// value is overwritten while still owing its terminal.
func overwriteReachable(info *types.Info, cfg *funcCFG, o tsOrigin, discharges func(*cfgNode) bool) bool {
	seen := map[*cfgNode]bool{}
	work := append([]*cfgNode{}, o.node.succs...)
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		if n.stmt != nil {
			for _, site := range defSites(info, n) {
				if site.obj == o.obj {
					return true
				}
			}
			if discharges(n) {
				continue // obligation met on this path; stop expanding
			}
		}
		work = append(work, n.succs...)
	}
	return false
}

// errGuardReturn reports whether node n is a return inside the body of an
// `if <err-cond>` whose condition reads the origin's own error binding
// (SSA-resolved: a reassigned err does not exempt).
func errGuardReturn(info *types.Info, ssa *ssaFunc, o tsOrigin, n *cfgNode) bool {
	if _, ok := n.stmt.(*ast.ReturnStmt); !ok {
		return false
	}
	errDef := lookupDef(ssa, o.errObj, o.node)
	for _, g := range errGuards(info, ssa, o, errDef) {
		if within(n.stmt.Pos(), g.Body) {
			return true
		}
	}
	return false
}

// lookupDef finds the SSA value the origin node defines for obj.
func lookupDef(ssa *ssaFunc, obj types.Object, node *cfgNode) *ssaValue {
	for _, v := range ssa.defsOf(obj) {
		if v.node == node {
			return v
		}
	}
	return nil
}

// errGuards collects the if statements whose condition mentions the
// origin's error object — restricted, when SSA tracks the variable, to
// conditions reading the origin's own binding.
func errGuards(info *types.Info, ssa *ssaFunc, o tsOrigin, errDef *ssaValue) []*ast.IfStmt {
	var guards []*ast.IfStmt
	for n := range ssa.cfg.byStmt {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Cond == nil {
			continue
		}
		mentions := false
		ast.Inspect(ifs.Cond, func(x ast.Node) bool {
			id, ok := x.(*ast.Ident)
			if !ok || info.ObjectOf(id) != o.errObj {
				return true
			}
			if errDef != nil && ssa.tracked(o.errObj) {
				if rd := ssa.reachingDef(id); rd == nil || !rd.resolvesTo(errDef) {
					return true // a different err reached this guard
				}
			}
			mentions = true
			return false
		})
		if mentions {
			guards = append(guards, ifs)
		}
	}
	return guards
}

// ---------------------------------------------------------------------------
// Simulation leg
// ---------------------------------------------------------------------------

// protoBind records what a derived value was derived from, and the owner's
// state rank at binding time (for staleOnly specs).
type protoBind struct {
	owner types.Object
	rank  int
}

// protoFact is one CFG node's entry state: tracked owners' state ranks and
// the values derived from them.
type protoFact struct {
	state   map[types.Object]int
	derived map[types.Object]protoBind
}

func newProtoFact() *protoFact {
	return &protoFact{state: map[types.Object]int{}, derived: map[types.Object]protoBind{}}
}

func (f *protoFact) clone() *protoFact {
	c := newProtoFact()
	for k, v := range f.state {
		c.state[k] = v
	}
	for k, v := range f.derived {
		c.derived[k] = v
	}
	return c
}

// mergeFrom folds src into f (may-analysis: worst state wins, first deriver
// wins).
func (f *protoFact) mergeFrom(src *protoFact) bool {
	changed := false
	for k, v := range src.state {
		if cur, ok := f.state[k]; !ok || v > cur {
			f.state[k] = v
			changed = true
		}
	}
	for k, v := range src.derived {
		if _, ok := f.derived[k]; !ok {
			f.derived[k] = v
			changed = true
		}
	}
	return changed
}

func typestateSimulate(p *Pass, sums *summarySet, spec *typestateSpec, fb funcBody, cfg *funcCFG) {
	info := p.Pkg.Info
	startRank := spec.rank(spec.start)

	entry := newProtoFact()
	if spec.paramStart != "" && fb.typ.Params != nil {
		pr := spec.rank(spec.paramStart)
		for _, field := range fb.typ.Params.List {
			for _, name := range field.Names {
				obj := info.ObjectOf(name)
				if obj != nil && spec.valueType(p, obj.Type()) {
					entry.state[obj] = pr
				}
			}
		}
	}

	transfer := func(n *cfgNode, in *protoFact) *protoFact {
		out := in.clone()
		protoTransfer(p, sums, spec, startRank, n, out)
		return out
	}
	facts := forwardSolve(cfg, entry, transfer,
		func(f *protoFact) *protoFact { return f.clone() },
		func(dst, src *protoFact) bool { return dst.mergeFrom(src) })

	// Reporting sweep: one pass per node against its stable entry fact.
	reported := map[token.Pos]bool{}
	for _, n := range cfg.nodes {
		in, ok := facts[n]
		if !ok || n.stmt == nil {
			continue
		}
		protoReport(p, sums, spec, cfg, n, in, reported)
	}
}

// applyEvent advances one tracked object's state for an event firing.
func applyEvent(spec *typestateSpec, ev *eventSpec, f *protoFact, obj types.Object, discarded bool) {
	cur := f.state[obj]
	curName := spec.states[cur]
	for _, keep := range ev.keepIn {
		if curName == keep {
			return
		}
	}
	to := ev.to
	if discarded && ev.errDiscardedTo != "" {
		to = ev.errDiscardedTo
	}
	if to == "" {
		return
	}
	f.state[obj] = spec.rank(to)
}

// errDiscarded reports whether the call's trailing error result is dropped
// at this node: the call is a bare statement, or the error slot binds `_`.
func errDiscarded(n *cfgNode, call *ast.CallExpr) bool {
	switch st := n.stmt.(type) {
	case *ast.ExprStmt:
		return st.X == call
	case *ast.AssignStmt:
		if len(st.Rhs) != 1 || st.Rhs[0] != call || len(st.Lhs) == 0 {
			return false
		}
		id, ok := st.Lhs[len(st.Lhs)-1].(*ast.Ident)
		return ok && id.Name == "_"
	}
	return false
}

// protoTransfer applies one node's effect to the fact in place.
func protoTransfer(p *Pass, sums *summarySet, spec *typestateSpec, startRank int, n *cfgNode, f *protoFact) {
	info := p.Pkg.Info
	if _, ok := n.stmt.(*ast.DeferStmt); ok {
		// A deferred event runs at function exit, not here; modeling it at
		// the defer's position would poison every statement below it.
		// eventReachable credits it separately for the escape check.
		return
	}
	for _, root := range headerNodes(n) {
		shallowInspect(root, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			for i := range spec.events {
				ev := &spec.events[i]
				if recv, ok := methodCallOn(call, ev.method); ok {
					if obj := identObj(info, recv); obj != nil {
						if _, tracked := f.state[obj]; tracked {
							applyEvent(spec, ev, f, obj, errDiscarded(n, call))
						}
					}
				}
				if ev.fact == nil {
					continue
				}
				for obj := range f.state {
					if sums.callDelegates(call, obj, ev.fact) {
						applyEvent(spec, ev, f, obj, false)
					}
				}
			}
			return true
		})
	}

	as, ok := n.stmt.(*ast.AssignStmt)
	if !ok || as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN ||
		as.Tok == token.MUL_ASSIGN || as.Tok == token.QUO_ASSIGN {
		return
	}
	// RHS judgments use the pre-assignment state; single-RHS multi-LHS
	// (v, err := call(...)) derives every carrier LHS from the same call.
	rhsDerived := make([]*protoBind, len(as.Rhs))
	rhsOrigin := make([]bool, len(as.Rhs))
	for i, r := range as.Rhs {
		if call, ok := r.(*ast.CallExpr); ok && spec.origin(p, call) {
			rhsOrigin[i] = true
			continue
		}
		rhsDerived[i] = derivedOf(info, r, f)
	}
	for i, l := range as.Lhs {
		obj := identObj(info, l)
		if obj == nil || obj.Name() == "_" {
			continue
		}
		ri := i
		if len(as.Rhs) == 1 {
			ri = 0
		}
		// Kill first: any assignment severs the old association.
		delete(f.derived, obj)
		if _, wasTracked := f.state[obj]; wasTracked {
			delete(f.state, obj)
		}
		switch {
		case rhsOrigin[ri] && bindableOrigin(p, spec, as, obj):
			f.state[obj] = startRank
		case rhsDerived[ri] != nil && spec.derived != nil && spec.derived(p, obj.Type()):
			f.derived[obj] = *rhsDerived[ri]
		}
	}
}

// bindableOrigin reports whether this LHS receives the origin value: plain
// specs need a 1:1 assignment; errResult specs bind the tracked-type slot
// of the result tuple.
func bindableOrigin(p *Pass, spec *typestateSpec, as *ast.AssignStmt, obj types.Object) bool {
	if !spec.errResult {
		return len(as.Rhs) == len(as.Lhs)
	}
	return spec.valueType != nil && spec.valueType(p, obj.Type())
}

// derivedOf returns the binding derived by expression e, or nil: e mentions
// a tracked owner or an already-derived value (skipping nested function
// literals).
func derivedOf(info *types.Info, e ast.Expr, f *protoFact) *protoBind {
	var bind *protoBind
	shallowInspect(e, func(n ast.Node) bool {
		if bind != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return true
		}
		if rank, ok := f.state[obj]; ok {
			bind = &protoBind{owner: obj, rank: rank}
			return false
		}
		if b, ok := f.derived[obj]; ok {
			bind = &b
			return false
		}
		return true
	})
	return bind
}

// protoReport emits simulation findings for one node given its entry fact.
func protoReport(p *Pass, sums *summarySet, spec *typestateSpec, cfg *funcCFG, n *cfgNode, in *protoFact, reported map[token.Pos]bool) {
	info := p.Pkg.Info
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			p.Reportf(pos, format, args...)
		}
	}

	// Uses in a bad state: any mention of a derived value whose owner may
	// have worsened (staleOnly: past its binding state), or of an owner in
	// a state with a direct-use message. The defining assignment itself
	// re-derives, so skip LHS positions.
	lhs := map[ast.Node]bool{}
	if as, ok := n.stmt.(*ast.AssignStmt); ok {
		for _, l := range as.Lhs {
			lhs[l] = true
		}
	}
	for _, root := range headerNodes(n) {
		shallowInspect(root, func(x ast.Node) bool {
			if lhs[x] {
				return false
			}
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.ObjectOf(id)
			if obj == nil {
				return true
			}
			if b, ok := in.derived[obj]; ok {
				if rank, live := in.state[b.owner]; live {
					msgs := spec.useInState[spec.states[rank]]
					if msgs.derivedMsg != "" && (!spec.staleOnly || rank > b.rank) {
						report(id.Pos(), msgs.derivedMsg, obj.Name(), b.owner.Name())
					}
				}
			} else if rank, ok := in.state[obj]; ok {
				msgs := spec.useInState[spec.states[rank]]
				if msgs.directMsg != "" && !isEventReceiver(spec, n, id) {
					report(id.Pos(), msgs.directMsg, obj.Name())
				}
			}
			return true
		})
	}

	// Events fired in states that forbid them.
	for _, root := range headerNodes(n) {
		shallowInspect(root, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			for i := range spec.events {
				ev := &spec.events[i]
				if len(ev.badIn) == 0 {
					continue
				}
				recv, ok := methodCallOn(call, ev.method)
				if !ok {
					continue
				}
				obj := identObj(info, recv)
				if obj == nil {
					continue
				}
				rank, tracked := in.state[obj]
				if !tracked {
					continue
				}
				if msg := ev.badIn[spec.states[rank]]; msg != "" {
					report(call.Pos(), msg, obj.Name())
				}
			}
			return true
		})
	}

	// Escape while a worsening event is still reachable: a derived value
	// stored to a field, a package-level variable, or sent on a channel
	// outlives the buffers the event invalidates.
	if spec.escapeMsg == "" {
		return
	}
	escape := func(stored ast.Expr, pos token.Pos, how string) {
		obj := storedDerivedObj(info, stored, in)
		if obj == nil {
			return
		}
		owner := in.derived[obj].owner
		if eventReachable(p, sums, spec, cfg, n, owner) {
			report(pos, spec.escapeMsg, obj.Name(), owner.Name(), how)
		}
	}
	switch st := n.stmt.(type) {
	case *ast.AssignStmt:
		for i, l := range st.Lhs {
			ri := i
			if len(st.Rhs) == 1 {
				ri = 0
			}
			if _, ok := l.(*ast.SelectorExpr); ok {
				escape(st.Rhs[ri], st.Pos(), "a struct field")
				continue
			}
			if obj := identObj(info, l); obj != nil {
				if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					escape(st.Rhs[ri], st.Pos(), "a package-level variable")
				}
			}
		}
	case *ast.SendStmt:
		escape(st.Value, st.Pos(), "a channel send")
	}
}

// isEventReceiver reports whether id is the receiver of one of the node's
// own protocol-event calls (a legitimate use of the value).
func isEventReceiver(spec *typestateSpec, n *cfgNode, id *ast.Ident) bool {
	found := false
	for _, root := range headerNodes(n) {
		shallowInspect(root, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			for i := range spec.events {
				if recv, ok := methodCallOn(call, spec.events[i].method); ok && recv == id {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}

// storedDerivedObj unwraps the stored expression to a plain derived
// identifier (through parens and unary &).
func storedDerivedObj(info *types.Info, e ast.Expr, f *protoFact) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				e = x.X
				continue
			}
		}
		break
	}
	obj := identObj(info, e)
	if obj == nil {
		return nil
	}
	if _, ok := f.derived[obj]; !ok {
		return nil
	}
	return obj
}

// eventReachable reports whether the spec's escape event can fire on owner
// after node n: a direct method call (or delegation) on a downstream node,
// or the deferred form of either anywhere (defers run at function exit,
// which is always downstream).
func eventReachable(p *Pass, sums *summarySet, spec *typestateSpec, cfg *funcCFG, n *cfgNode, owner types.Object) bool {
	info := p.Pkg.Info
	ev := spec.eventByMethod(spec.escapeEvent)
	if ev == nil {
		return false
	}
	isEvent := func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return false
		}
		if recv, ok := methodCallOn(call, ev.method); ok && identObj(info, recv) == owner {
			return true
		}
		return ev.fact != nil && sums.callDelegates(call, owner, ev.fact)
	}
	for _, m := range cfg.nodes {
		ds, ok := m.stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		deferred := false
		ast.Inspect(ds.Call, func(x ast.Node) bool {
			if isEvent(x) {
				deferred = true
			}
			return !deferred
		})
		if deferred {
			return true
		}
	}
	for m := range cfg.reachableFrom(n) {
		if m.stmt == nil {
			continue
		}
		if headerContains(m, isEvent) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// WaitGroup protocol helpers (goroutinejoin's Add→Done/Wait leg)
// ---------------------------------------------------------------------------

// wgJoinProtocol declares the WaitGroup leg of goroutinejoin as engine
// events: Add must precede the launch, Done is the goroutine's signal, and
// Wait must join every path from the launch to exit.
var wgJoinProtocol = struct {
	add, done, wait eventSpec
}{
	add:  eventSpec{method: "Add"},
	done: eventSpec{method: "Done", fact: func(f paramFacts) bool { return f.DonesWG }},
	wait: eventSpec{method: "Wait", fact: func(f paramFacts) bool { return f.WaitsWG }},
}

// eventPrecedes reports whether an ev-method call on obj appears before pos
// in body. resolve maps the receiver expression to an object (identObj for
// locals, fieldObj-style resolvers for field receivers).
func eventPrecedes(body ast.Node, ev eventSpec, obj types.Object, pos token.Pos, resolve func(ast.Expr) types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, ok := methodCallOn(call, ev.method)
		if ok && resolve(recv) == obj && call.Pos() < pos {
			found = true
		}
		return !found
	})
	return found
}

// eventJoins reports whether an ev-method call on obj runs on every path
// from the launch node to exit (or is deferred anywhere in the function). A
// call handing obj to a local function whose summary satisfies the event's
// fact counts too.
func eventJoins(info *types.Info, sums *summarySet, cfg *funcCFG, launch *cfgNode, ev eventSpec, obj types.Object) bool {
	isEvent := func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return false
		}
		if recv, ok := methodCallOn(call, ev.method); ok && identObj(info, recv) == obj {
			return true
		}
		return sums != nil && ev.fact != nil && sums.callDelegates(call, obj, ev.fact)
	}
	for _, m := range cfg.nodes {
		if ds, ok := m.stmt.(*ast.DeferStmt); ok {
			deferred := false
			ast.Inspect(ds.Call, func(x ast.Node) bool {
				if isEvent(x) {
					deferred = true
				}
				return !deferred
			})
			if deferred {
				return true
			}
		}
	}
	return cfg.mustPassFrom(launch, func(n *cfgNode) bool {
		return headerContains(n, isEvent)
	})
}
