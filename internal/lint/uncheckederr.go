package lint

import (
	"go/ast"
	"go/types"
)

// UncheckedErrAnalyzer flags call statements in non-test code that drop an
// error return on the floor. Explicitly discarding with `_ =` remains
// legal (it is visible in review), as are `defer`/`go` statements, whose
// results Go itself discards, and writers documented to never fail
// (hash.Hash, strings.Builder, bytes.Buffer, and fmt.Fprint* into them).
// Package-local callees whose summary proves the error result is nil on
// every return (errNever) are treated as infallible too, so helpers that
// only exist to satisfy an interface stop producing noise.
var UncheckedErrAnalyzer = &Analyzer{
	Name:         "uncheckederr",
	Doc:          "flags statements that silently discard an error result",
	SummaryAware: true,
	Run:          runUncheckedErr,
}

func runUncheckedErr(p *Pass) {
	sums := p.Pkg.summaries()
	errType := types.Universe.Lookup("error").Type()
	for _, f := range p.Pkg.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !resultHasError(p.Pkg.Info.TypeOf(call), errType) {
				return true
			}
			if infallible(p, call) {
				return true
			}
			if sum := sums.calleeSummary(call); sum != nil && sum.errNever {
				return true // provably always-nil error result
			}
			p.Reportf(call.Pos(), "result of %s contains an ignored error", types.ExprString(call.Fun))
			return true
		})
	}
}

// infallible reports whether the call's error result is documented to
// always be nil: methods on hash.Hash / strings.Builder / bytes.Buffer
// values, fmt.Fprint* into a Builder or Buffer, and fmt.Print* (stdout
// diagnostics, conventionally unchecked).
func infallible(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		// Judge methods by the receiver expression's static type, so
		// interface method sets (hash.Hash64 embedding io.Writer) count.
		return isNeverFailingWriter(p.Pkg.Info.TypeOf(sel.X))
	}
	if fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 {
				return isNeverFailingWriter(p.Pkg.Info.TypeOf(call.Args[0])) ||
					isStdStream(p, call.Args[0])
			}
		}
	}
	return false
}

// isStdStream matches the os.Stdout / os.Stderr package variables:
// terminal diagnostics are conventionally written unchecked.
func isStdStream(p *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return false
	}
	return v.Name() == "Stdout" || v.Name() == "Stderr"
}

// isNeverFailingWriter matches values of any type defined in package hash
// (fnv etc. return hash.Hash variants) plus strings.Builder and
// bytes.Buffer — writers whose Write methods are documented to never
// return an error.
func isNeverFailingWriter(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return pkg == "hash" ||
		(pkg == "strings" && name == "Builder") ||
		(pkg == "bytes" && name == "Buffer")
}

// resultHasError reports whether a call result type (single value or
// tuple) contains the built-in error type.
func resultHasError(t types.Type, errType types.Type) bool {
	switch rt := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if types.Identical(rt.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(rt, errType)
	}
}
