package milp

import (
	"fmt"
	"math"
	"sort"
)

// Options tunes the branch & bound search.
type Options struct {
	// MaxNodes bounds the search-tree size; 0 means the default (200k).
	MaxNodes int
	// Gap is the relative optimality gap at which search stops early.
	Gap float64
}

// Solve solves the MILP exactly (up to Options.Gap) by LP-relaxation branch
// & bound over the binary variables.
func Solve(p *Problem, opts Options) (Solution, error) {
	if len(p.Minimize) != p.NumVars {
		return Solution{}, fmt.Errorf("milp: objective has %d coefficients for %d vars", len(p.Minimize), p.NumVars)
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 200_000
	}

	best := Solution{Status: Infeasible, Objective: math.Inf(1)}
	nodes := 0

	var recurse func(fixed map[int]float64)
	recurse = func(fixed map[int]float64) {
		if nodes >= maxNodes {
			return
		}
		nodes++
		rel := solveLP(p, fixed)
		if rel.Status != Optimal {
			return
		}
		if rel.Objective >= best.Objective-1e-9 {
			return // bound prune
		}
		// Find the most fractional binary.
		frac := -1
		fracDist := 0.0
		for v := 0; v < p.NumVars; v++ {
			if v >= len(p.Binary) || !p.Binary[v] {
				continue
			}
			if _, ok := fixed[v]; ok {
				continue
			}
			d := math.Abs(rel.X[v] - math.Round(rel.X[v]))
			if d > 1e-6 && d > fracDist {
				frac = v
				fracDist = d
			}
		}
		if frac < 0 {
			// Integral: candidate incumbent.
			if rel.Objective < best.Objective {
				best = Solution{Status: Optimal, X: snap(rel.X, p.Binary), Objective: rel.Objective}
			}
			return
		}
		if best.Status == Optimal && opts.Gap > 0 &&
			best.Objective-rel.Objective <= opts.Gap*math.Max(1, math.Abs(best.Objective)) {
			return
		}
		// Branch on the rounding-preferred side first.
		first, second := 1.0, 0.0
		if rel.X[frac] < 0.5 {
			first, second = 0.0, 1.0
		}
		for _, val := range []float64{first, second} {
			child := make(map[int]float64, len(fixed)+1)
			for k, v := range fixed {
				child[k] = v
			}
			child[frac] = val
			recurse(child)
		}
	}
	recurse(map[int]float64{})

	if best.Status != Optimal {
		// Distinguish true infeasibility from node exhaustion.
		rel := solveLP(p, map[int]float64{})
		if rel.Status == Infeasible {
			return Solution{Status: Infeasible}, nil
		}
		if rel.Status == Unbounded {
			return Solution{Status: Unbounded}, nil
		}
		return Solution{}, fmt.Errorf("milp: node budget (%d) exhausted without an integral solution", maxNodes)
	}
	return best, nil
}

// snap rounds binary coordinates to exact 0/1.
func snap(x []float64, binary []bool) []float64 {
	out := append([]float64(nil), x...)
	for v := range out {
		if v < len(binary) && binary[v] {
			out[v] = math.Round(out[v])
		}
	}
	return out
}

// BinaryVarsBySensitivity returns binary variable indices ordered by the
// magnitude of their objective coefficient — a useful branching order
// report for diagnostics.
func BinaryVarsBySensitivity(p *Problem) []int {
	var vars []int
	for v := 0; v < p.NumVars && v < len(p.Binary); v++ {
		if p.Binary[v] {
			vars = append(vars, v)
		}
	}
	sort.Slice(vars, func(i, j int) bool {
		return math.Abs(p.Minimize[vars[i]]) > math.Abs(p.Minimize[vars[j]])
	})
	return vars
}
