package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLPSimple2D(t *testing.T) {
	// min -x - 2y  s.t.  x + y <= 4, x <= 2, y <= 3  → x=1? No:
	// optimum at (1,3): obj -7. Check: x+y<=4, y<=3 → best y=3, x=1.
	p := &Problem{NumVars: 2, Minimize: []float64{-1, -2}}
	p.AddConstraint(LE, 4, Term{0, 1}, Term{1, 1})
	p.AddConstraint(LE, 2, Term{0, 1})
	p.AddConstraint(LE, 3, Term{1, 1})
	s := solveLP(p, nil)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if math.Abs(s.Objective-(-7)) > 1e-6 {
		t.Errorf("objective = %v, want -7", s.Objective)
	}
	if math.Abs(s.X[0]-1) > 1e-6 || math.Abs(s.X[1]-3) > 1e-6 {
		t.Errorf("x = %v, want [1 3]", s.X)
	}
}

func TestLPEqualityAndGE(t *testing.T) {
	// min x + y  s.t.  x + y = 5, x >= 2  → (2,3)? obj always 5.
	// Use distinct costs: min 2x + y s.t. x+y=5, x>=2 → x=2,y=3, obj 7.
	p := &Problem{NumVars: 2, Minimize: []float64{2, 1}}
	p.AddConstraint(EQ, 5, Term{0, 1}, Term{1, 1})
	p.AddConstraint(GE, 2, Term{0, 1})
	s := solveLP(p, nil)
	if s.Status != Optimal || math.Abs(s.Objective-7) > 1e-6 {
		t.Errorf("status %v obj %v, want optimal 7", s.Status, s.Objective)
	}
}

func TestLPInfeasible(t *testing.T) {
	p := &Problem{NumVars: 1, Minimize: []float64{1}}
	p.AddConstraint(GE, 5, Term{0, 1})
	p.AddConstraint(LE, 3, Term{0, 1})
	if s := solveLP(p, nil); s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestLPUnbounded(t *testing.T) {
	p := &Problem{NumVars: 1, Minimize: []float64{-1}}
	p.AddConstraint(GE, 0, Term{0, 1})
	if s := solveLP(p, nil); s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestLPNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3) → 3.
	p := &Problem{NumVars: 1, Minimize: []float64{1}}
	p.AddConstraint(LE, -3, Term{0, -1})
	s := solveLP(p, nil)
	if s.Status != Optimal || math.Abs(s.Objective-3) > 1e-6 {
		t.Errorf("got %v obj %v, want 3", s.Status, s.Objective)
	}
}

func TestMILPKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary.
	// Equivalent min of negatives. Best: a+c (weight 5, value 17)?
	// b+c: weight 6, value 20 ← optimum.
	p := &Problem{
		NumVars:  3,
		Minimize: []float64{-10, -13, -7},
		Binary:   []bool{true, true, true},
	}
	p.AddConstraint(LE, 6, Term{0, 3}, Term{1, 4}, Term{2, 2})
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Objective-(-20)) > 1e-6 {
		t.Errorf("objective = %v, want -20", s.Objective)
	}
	if s.X[0] != 0 || s.X[1] != 1 || s.X[2] != 1 {
		t.Errorf("x = %v, want [0 1 1]", s.X)
	}
}

func TestMILPInfeasible(t *testing.T) {
	p := &Problem{NumVars: 2, Minimize: []float64{1, 1}, Binary: []bool{true, true}}
	p.AddConstraint(GE, 3, Term{0, 1}, Term{1, 1}) // two binaries can sum to at most 2
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestMILPMixedIntegerContinuous(t *testing.T) {
	// min -y - 5b s.t. y <= 2 + 3b, y <= 4, b binary.
	// b=1: y=4 → -9. b=0: y=2 → -2. Optimum -9.
	p := &Problem{NumVars: 2, Minimize: []float64{-1, -5}, Binary: []bool{false, true}}
	p.AddConstraint(LE, 2, Term{0, 1}, Term{1, -3})
	p.AddConstraint(LE, 4, Term{0, 1})
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Objective-(-9)) > 1e-6 {
		t.Errorf("objective = %v, want -9", s.Objective)
	}
}

// TestMILPMatchesBruteForce validates branch & bound against exhaustive
// enumeration on random binary problems.
func TestMILPMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		p := &Problem{NumVars: n, Minimize: make([]float64, n), Binary: make([]bool, n)}
		for v := 0; v < n; v++ {
			p.Minimize[v] = float64(rng.Intn(21) - 10)
			p.Binary[v] = true
		}
		nc := 1 + rng.Intn(3)
		for i := 0; i < nc; i++ {
			var terms []Term
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{v, float64(rng.Intn(9) - 2)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			p.AddConstraint(LE, float64(rng.Intn(10)), terms...)
		}
		got, err := Solve(p, Options{})
		if err != nil {
			return false
		}

		// Brute force.
		bestObj := math.Inf(1)
		feasible := false
		x := make([]float64, n)
		for mask := 0; mask < 1<<n; mask++ {
			for v := 0; v < n; v++ {
				x[v] = 0
				if mask&(1<<v) != 0 {
					x[v] = 1
				}
			}
			ok := true
			for _, c := range p.Constraints {
				lhs := 0.0
				for _, tm := range c.Terms {
					lhs += tm.Coef * x[tm.Var]
				}
				if c.Rel == LE && lhs > c.RHS+1e-9 {
					ok = false
				}
			}
			if !ok {
				continue
			}
			feasible = true
			obj := 0.0
			for v := 0; v < n; v++ {
				obj += p.Minimize[v] * x[v]
			}
			if obj < bestObj {
				bestObj = obj
			}
		}
		if !feasible {
			return got.Status == Infeasible
		}
		return got.Status == Optimal && math.Abs(got.Objective-bestObj) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestBinaryVarsBySensitivity(t *testing.T) {
	p := &Problem{NumVars: 3, Minimize: []float64{1, -9, 4}, Binary: []bool{true, true, true}}
	order := BinaryVarsBySensitivity(p)
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Errorf("order = %v", order)
	}
}

func TestSolveObjectiveLengthMismatch(t *testing.T) {
	p := &Problem{NumVars: 3, Minimize: []float64{1}}
	if _, err := Solve(p, Options{}); err == nil {
		t.Error("mismatched objective length should error")
	}
}

func TestSolveWithGapStopsEarlyButFeasible(t *testing.T) {
	// A 12-item knapsack with an optimality gap: the returned solution
	// must be feasible and within the gap of the true optimum.
	n := 12
	p := &Problem{NumVars: n, Minimize: make([]float64, n), Binary: make([]bool, n)}
	var terms []Term
	for v := 0; v < n; v++ {
		p.Minimize[v] = -float64(3 + (v*7)%11)
		p.Binary[v] = true
		terms = append(terms, Term{v, float64(2 + (v*5)%7)})
	}
	p.AddConstraint(LE, 20, terms...)

	exact, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gapped, err := Solve(p, Options{Gap: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if gapped.Status != Optimal {
		t.Fatalf("status %v", gapped.Status)
	}
	// Feasibility.
	var lhs float64
	for _, tm := range terms {
		lhs += tm.Coef * gapped.X[tm.Var]
	}
	if lhs > 20+1e-9 {
		t.Errorf("gapped solution infeasible: weight %v", lhs)
	}
	// Within 10% of optimal (both objectives negative).
	if gapped.Objective > exact.Objective*(1-0.10)+1e-9 {
		t.Errorf("gapped objective %v too far from optimum %v", gapped.Objective, exact.Objective)
	}
}

func TestSolveNodeBudgetExhaustion(t *testing.T) {
	// MaxNodes=1 cannot finish a fractional problem: expect an error, not
	// a wrong answer.
	p := &Problem{NumVars: 3, Minimize: []float64{-5, -4, -3}, Binary: []bool{true, true, true}}
	p.AddConstraint(LE, 2.5, Term{0, 1}, Term{1, 1}, Term{2, 1})
	if _, err := Solve(p, Options{MaxNodes: 1}); err == nil {
		t.Error("exhausted node budget should error")
	}
}
