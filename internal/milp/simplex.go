// Package milp implements a mixed-integer linear programming solver:
// two-phase dense primal simplex for LP relaxations and depth-first branch
// & bound over binary variables. It is the generic counterpart of the
// paper's Gurobi dependency and is used to solve the materialization MILP
// (Equations 8–10) directly at small workload sizes and to cross-validate
// the scalable min-cut-based optimizer in property tests.
package milp

import (
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // Σ coef·x ≤ rhs
	GE            // Σ coef·x ≥ rhs
	EQ            // Σ coef·x = rhs
)

// Term is one sparse coefficient.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is one linear constraint over the problem's variables.
type Constraint struct {
	Terms []Term
	Rel   Rel
	RHS   float64
}

// Problem is a minimization MILP. All variables are non-negative; variables
// flagged Binary are additionally constrained to {0, 1}.
type Problem struct {
	NumVars     int
	Minimize    []float64
	Constraints []Constraint
	Binary      []bool
}

// AddConstraint appends a constraint built from (var, coef) pairs.
func (p *Problem) AddConstraint(rel Rel, rhs float64, terms ...Term) {
	p.Constraints = append(p.Constraints, Constraint{Terms: terms, Rel: rel, RHS: rhs})
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Solution is the result of an LP or MILP solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const eps = 1e-7

// solveLP solves the LP relaxation of p (ignoring integrality; binary
// variables keep their ≤1 bound) with extra equality fixings
// fixed[v] ∈ {0,1} applied, as used by branch & bound.
func solveLP(p *Problem, fixed map[int]float64) Solution {
	// Assemble rows: user constraints, x ≤ 1 for binaries, x = v fixings.
	type row struct {
		coefs []float64
		rel   Rel
		rhs   float64
	}
	var rows []row
	mk := func(c Constraint) row {
		r := row{coefs: make([]float64, p.NumVars), rel: c.Rel, rhs: c.RHS}
		for _, t := range c.Terms {
			r.coefs[t.Var] += t.Coef
		}
		return r
	}
	for _, c := range p.Constraints {
		rows = append(rows, mk(c))
	}
	for v := 0; v < p.NumVars; v++ {
		if v < len(p.Binary) && p.Binary[v] {
			if _, isFixed := fixed[v]; !isFixed {
				r := row{coefs: make([]float64, p.NumVars), rel: LE, rhs: 1}
				r.coefs[v] = 1
				rows = append(rows, r)
			}
		}
	}
	for v, val := range fixed {
		r := row{coefs: make([]float64, p.NumVars), rel: EQ, rhs: val}
		r.coefs[v] = 1
		rows = append(rows, r)
	}

	m := len(rows)
	// Count extra columns: one slack/surplus per inequality, one
	// artificial per GE/EQ (and per LE with negative rhs after flip).
	// Normalize rhs ≥ 0 first.
	for i := range rows {
		if rows[i].rhs < 0 {
			for j := range rows[i].coefs {
				rows[i].coefs[j] = -rows[i].coefs[j]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].rel {
			case LE:
				rows[i].rel = GE
			case GE:
				rows[i].rel = LE
			}
		}
	}
	nSlack, nArt := 0, 0
	for _, r := range rows {
		if r.rel != EQ {
			nSlack++
		}
		if r.rel != LE {
			nArt++
		}
	}
	n := p.NumVars + nSlack + nArt
	// Tableau: m rows × (n+1) columns, last column rhs.
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackCol := p.NumVars
	artCol := p.NumVars + nSlack
	artStart := artCol
	for i, r := range rows {
		tab[i] = make([]float64, n+1)
		copy(tab[i], r.coefs)
		tab[i][n] = r.rhs
		switch r.rel {
		case LE:
			tab[i][slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			tab[i][slackCol] = -1
			slackCol++
			tab[i][artCol] = 1
			basis[i] = artCol
			artCol++
		case EQ:
			tab[i][artCol] = 1
			basis[i] = artCol
			artCol++
		}
	}

	// Phase 1: minimize the artificial sum.
	if nArt > 0 {
		cost := make([]float64, n)
		for j := artStart; j < artStart+nArt; j++ {
			cost[j] = 1
		}
		obj, ok := runSimplex(tab, basis, cost)
		if !ok {
			return Solution{Status: Unbounded}
		}
		if obj > 1e-6 {
			return Solution{Status: Infeasible}
		}
		// Drive remaining artificials out of the basis.
		for i := range basis {
			if basis[i] >= artStart {
				pivoted := false
				for j := 0; j < artStart; j++ {
					if math.Abs(tab[i][j]) > eps {
						pivot(tab, basis, i, j)
						pivoted = true
						break
					}
				}
				if !pivoted {
					// Redundant row; zero it out.
					for j := range tab[i] {
						tab[i][j] = 0
					}
					basis[i] = -1
				}
			}
		}
	}

	// Phase 2: original objective (artificial columns frozen at zero).
	cost := make([]float64, n)
	copy(cost, p.Minimize)
	for j := artStart; j < artStart+nArt; j++ {
		cost[j] = math.Inf(1) // never re-enter
	}
	if _, ok := runSimplex(tab, basis, cost); !ok {
		return Solution{Status: Unbounded}
	}
	x := make([]float64, p.NumVars)
	for i, b := range basis {
		if b >= 0 && b < p.NumVars {
			x[b] = tab[i][n]
		}
	}
	obj := 0.0
	for v := 0; v < p.NumVars && v < len(p.Minimize); v++ {
		obj += p.Minimize[v] * x[v]
	}
	return Solution{Status: Optimal, X: x, Objective: obj}
}

// runSimplex minimizes cost over the current tableau with Bland's rule,
// returning the objective and false on unboundedness.
func runSimplex(tab [][]float64, basis []int, cost []float64) (float64, bool) {
	m := len(tab)
	if m == 0 {
		return 0, true
	}
	n := len(tab[0]) - 1
	// Reduced costs maintained implicitly: z_j - c_j computed per
	// iteration from the basis (dense, simple, adequate at our sizes).
	for iter := 0; iter < 50000; iter++ {
		// y = c_B (basis costs); reduced cost r_j = c_j - Σ_i c_{B_i}·tab[i][j].
		enter := -1
		for j := 0; j < n; j++ {
			if math.IsInf(cost[j], 1) {
				continue
			}
			r := cost[j]
			for i := 0; i < m; i++ {
				if basis[i] >= 0 && !math.IsInf(cost[basis[i]], 1) {
					r -= cost[basis[i]] * tab[i][j]
				}
			}
			if r < -eps {
				enter = j // Bland: first improving index
				break
			}
		}
		if enter < 0 {
			obj := 0.0
			for i := 0; i < m; i++ {
				if basis[i] >= 0 && !math.IsInf(cost[basis[i]], 1) {
					obj += cost[basis[i]] * tab[i][n]
				}
			}
			return obj, true
		}
		// Ratio test (Bland: smallest basis index breaks ties).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][enter] > eps {
				ratio := tab[i][n] / tab[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return 0, false // unbounded
		}
		pivot(tab, basis, leave, enter)
	}
	// Iteration cap: treat as converged with current basis (defensive).
	obj := 0.0
	for i := 0; i < m; i++ {
		if basis[i] >= 0 && !math.IsInf(cost[basis[i]], 1) {
			obj += cost[basis[i]] * tab[i][n]
		}
	}
	return obj, true
}

// pivot makes column col basic in row r.
func pivot(tab [][]float64, basis []int, r, col int) {
	pv := tab[r][col]
	for j := range tab[r] {
		tab[r][j] /= pv
	}
	for i := range tab {
		if i == r {
			continue
		}
		f := tab[i][col]
		//lint:ignore floateq exact-zero pivot-column entries need no elimination
		if f == 0 {
			continue
		}
		for j := range tab[i] {
			tab[i][j] -= f * tab[r][j]
		}
	}
	basis[r] = col
}
