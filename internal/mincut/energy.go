package mincut

import "fmt"

// Energy is a pairwise binary energy of the restricted submodular form
//
//	E(x) = const + Σ_v [a_v·x_v + b_v·(1−x_v)] + Σ c_{uv}·x_u·(1−x_v)
//
// with every pairwise coefficient c_{uv} ≥ 0. Such energies are exactly
// minimized by an s-t min-cut: label 1 means "on the source side".
//
// Negative unary coefficients are legal — they are rebalanced into the
// constant term, which is how the reuse-plan objective's (c_comp − c_load)
// coefficient can go negative when loading costs more than recomputing.
type Energy struct {
	n        int
	cost1    []int64 // a_v, cost when x_v = 1
	cost0    []int64 // b_v, cost when x_v = 0
	pairs    []pairTerm
	constant int64
}

type pairTerm struct {
	u, v int
	c    int64
}

// NewEnergy returns an energy over n binary variables, numbered 0..n-1.
func NewEnergy(n int) *Energy {
	return &Energy{n: n, cost1: make([]int64, n), cost0: make([]int64, n)}
}

// AddUnary adds cost0 when x_v = 0 and cost1 when x_v = 1. Either may be
// negative or Inf (a hard constraint forcing the other label).
func (e *Energy) AddUnary(v int, cost0, cost1 int64) {
	e.cost0[v] = satAdd(e.cost0[v], cost0)
	e.cost1[v] = satAdd(e.cost1[v], cost1)
}

// AddImplication adds an ∞ penalty for (x_u = 1, x_v = 0), i.e. the hard
// constraint x_u ⇒ x_v.
func (e *Energy) AddImplication(u, v int) {
	e.pairs = append(e.pairs, pairTerm{u: u, v: v, c: Inf})
}

// AddPairwise adds a finite penalty c ≥ 0 for (x_u = 1, x_v = 0).
func (e *Energy) AddPairwise(u, v int, c int64) {
	if c < 0 {
		panic(fmt.Sprintf("mincut: negative pairwise term %d", c))
	}
	e.pairs = append(e.pairs, pairTerm{u: u, v: v, c: c})
}

// Solve exactly minimizes the energy, returning the argmin labelling and
// its value. Solve returns an error when the hard constraints are
// unsatisfiable (minimum ≥ Inf).
func (e *Energy) Solve() ([]bool, int64, error) {
	const (
		s = 0
		t = 1
	)
	g := NewGraph(e.n + 2)
	constant := e.constant
	for v := 0; v < e.n; v++ {
		a, b := e.cost1[v], e.cost0[v]
		// Shift so both are non-negative; the smaller becomes constant.
		base := min64(a, b)
		if base > 0 || (base < 0 && base != -Inf) {
			constant += base
			a -= base
			b -= base
		}
		// x_v = 1 (source side) pays a: edge v→t cut when v ∈ S.
		if a > 0 {
			g.AddEdge(v+2, t, a)
		}
		// x_v = 0 (sink side) pays b: edge s→v cut when v ∈ T.
		if b > 0 {
			g.AddEdge(s, v+2, b)
		}
	}
	for _, p := range e.pairs {
		// Penalty for u ∈ S, v ∈ T: edge u→v.
		g.AddEdge(p.u+2, p.v+2, p.c)
	}
	flow := g.MaxFlow(s, t)
	value := satAdd(constant, flow)
	if flow >= Inf {
		return nil, value, fmt.Errorf("mincut: hard constraints unsatisfiable")
	}
	side := g.MinCutSide(s)
	labels := make([]bool, e.n)
	for v := 0; v < e.n; v++ {
		labels[v] = side[v+2]
	}
	return labels, value, nil
}

// Eval computes the energy of a given labelling, used by tests to verify
// optimality against brute force.
func (e *Energy) Eval(x []bool) int64 {
	total := e.constant
	for v := 0; v < e.n; v++ {
		if x[v] {
			total = satAdd(total, e.cost1[v])
		} else {
			total = satAdd(total, e.cost0[v])
		}
	}
	for _, p := range e.pairs {
		if x[p.u] && !x[p.v] {
			total = satAdd(total, p.c)
		}
	}
	return total
}

// satAdd adds saturating at ±Inf so hard-constraint arithmetic cannot
// overflow.
func satAdd(a, b int64) int64 {
	s := a + b
	if a >= Inf || b >= Inf || s >= Inf {
		return Inf
	}
	if a <= -Inf || b <= -Inf || s <= -Inf {
		return -Inf
	}
	return s
}
