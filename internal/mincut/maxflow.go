// Package mincut implements Dinic's max-flow algorithm and, on top of it, a
// minimizer for submodular pairwise binary energies. The materialization
// optimizer uses it to find optimal reuse-plan models for a fixed set of
// materialized layers in polynomial time — the Max-Flow reduction the paper
// invokes in Section 4.3.2.
package mincut

import "math"

// Inf is the capacity used for hard constraints. It is large enough that no
// sum of finite costs reaches it, yet small enough that additions of a few
// Inf edges cannot overflow int64.
const Inf int64 = math.MaxInt64 / 16

type edge struct {
	to  int
	cap int64
	rev int // index of the reverse edge in adj[to]
}

// Graph is a flow network for Dinic's algorithm.
type Graph struct {
	adj   [][]edge
	level []int
	iter  []int
}

// NewGraph returns a flow network with n nodes, numbered 0..n-1.
func NewGraph(n int) *Graph {
	return &Graph{adj: make([][]edge, n)}
}

// AddEdge adds a directed edge u→v with the given capacity (and a zero-
// capacity reverse edge).
func (g *Graph) AddEdge(u, v int, cap int64) {
	if cap < 0 {
		panic("mincut: negative capacity")
	}
	g.adj[u] = append(g.adj[u], edge{to: v, cap: cap, rev: len(g.adj[v])})
	g.adj[v] = append(g.adj[v], edge{to: u, cap: 0, rev: len(g.adj[u]) - 1})
}

func (g *Graph) bfs(s, t int) bool {
	g.level = make([]int, len(g.adj))
	for i := range g.level {
		g.level[i] = -1
	}
	queue := []int{s}
	g.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if e.cap > 0 && g.level[e.to] < 0 {
				g.level[e.to] = g.level[u] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return g.level[t] >= 0
}

func (g *Graph) dfs(u, t int, f int64) int64 {
	if u == t {
		return f
	}
	for ; g.iter[u] < len(g.adj[u]); g.iter[u]++ {
		e := &g.adj[u][g.iter[u]]
		if e.cap > 0 && g.level[e.to] == g.level[u]+1 {
			d := g.dfs(e.to, t, min64(f, e.cap))
			if d > 0 {
				e.cap -= d
				g.adj[e.to][e.rev].cap += d
				return d
			}
		}
	}
	return 0
}

// MaxFlow computes the maximum s→t flow. The graph's capacities are
// consumed; call it once.
func (g *Graph) MaxFlow(s, t int) int64 {
	var flow int64
	for g.bfs(s, t) {
		g.iter = make([]int, len(g.adj))
		for {
			f := g.dfs(s, t, Inf)
			if f == 0 {
				break
			}
			flow += f
			if flow >= Inf {
				return Inf
			}
		}
	}
	return flow
}

// MinCutSide returns, after MaxFlow has run, which nodes remain reachable
// from s in the residual graph (the source side of a minimum cut).
func (g *Graph) MinCutSide(s int) []bool {
	side := make([]bool, len(g.adj))
	stack := []int{s}
	side[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if e.cap > 0 && !side[e.to] {
				side[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return side
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
