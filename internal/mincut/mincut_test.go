package mincut

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxFlowTextbook(t *testing.T) {
	// Classic 6-node example with max flow 23.
	g := NewGraph(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if got := g.MaxFlow(0, 5); got != 23 {
		t.Errorf("max flow = %d, want 23", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(2, 3, 5)
	if got := g.MaxFlow(0, 3); got != 0 {
		t.Errorf("max flow = %d, want 0", got)
	}
}

func TestMinCutSideSeparates(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 1) // bottleneck
	g.AddEdge(2, 3, 10)
	if got := g.MaxFlow(0, 3); got != 1 {
		t.Fatalf("max flow = %d, want 1", got)
	}
	side := g.MinCutSide(0)
	if !side[0] || !side[1] || side[2] || side[3] {
		t.Errorf("cut side = %v, want s-side {0,1}", side)
	}
}

func TestEnergyUnaryOnly(t *testing.T) {
	e := NewEnergy(3)
	e.AddUnary(0, 5, 1)  // prefers 1
	e.AddUnary(1, 2, 9)  // prefers 0
	e.AddUnary(2, -4, 3) // negative cost0: prefers 0
	x, val, err := e.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !x[0] || x[1] || x[2] {
		t.Errorf("labels = %v, want [1 0 0]", x)
	}
	if val != 1+2-4 {
		t.Errorf("value = %d, want -1", val)
	}
	if e.Eval(x) != val {
		t.Errorf("Eval disagrees: %d vs %d", e.Eval(x), val)
	}
}

func TestEnergyImplicationForcesLabel(t *testing.T) {
	// x0 strongly wants 1; x0 ⇒ x1; x1 mildly wants 0. Optimal: both 1.
	e := NewEnergy(2)
	e.AddUnary(0, 100, 0)
	e.AddUnary(1, 0, 10)
	e.AddImplication(0, 1)
	x, val, err := e.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !x[0] || !x[1] {
		t.Errorf("labels = %v, want [1 1]", x)
	}
	if val != 10 {
		t.Errorf("value = %d, want 10", val)
	}
}

func TestEnergyUnsatisfiable(t *testing.T) {
	// x0 forced to 1 (Inf cost at 0), x1 forced to 0, x0 ⇒ x1.
	e := NewEnergy(2)
	e.AddUnary(0, Inf, 0)
	e.AddUnary(1, 0, Inf)
	e.AddImplication(0, 1)
	if _, _, err := e.Solve(); err == nil {
		t.Error("expected unsatisfiable")
	}
}

// TestEnergyMatchesBruteForce is the load-bearing property test: on random
// submodular instances the min-cut solution must equal exhaustive search.
func TestEnergyMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		e := NewEnergy(n)
		for v := 0; v < n; v++ {
			e.AddUnary(v, int64(rng.Intn(41)-20), int64(rng.Intn(41)-20))
		}
		terms := rng.Intn(2 * n)
		for i := 0; i < terms; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if rng.Intn(3) == 0 {
				e.AddImplication(u, v)
			} else {
				e.AddPairwise(u, v, int64(rng.Intn(15)))
			}
		}
		x, val, err := e.Solve()
		if err != nil {
			// Unsatisfiable is impossible here: no Inf unaries.
			return false
		}
		if e.Eval(x) != val {
			return false
		}
		// Brute force.
		best := int64(1) << 62
		for mask := 0; mask < 1<<n; mask++ {
			lab := make([]bool, n)
			for v := 0; v < n; v++ {
				lab[v] = mask&(1<<v) != 0
			}
			if ev := e.Eval(lab); ev < best {
				best = ev
			}
		}
		return val == best
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGraph(2).AddEdge(0, 1, -1)
}

func TestSatAddSaturates(t *testing.T) {
	if satAdd(Inf, Inf) != Inf {
		t.Error("Inf+Inf must saturate")
	}
	if satAdd(Inf, -5) != Inf {
		t.Error("Inf-5 must stay Inf")
	}
	if satAdd(3, 4) != 7 {
		t.Error("plain addition broken")
	}
}
