// Package mmg builds the multi-model graph (paper Definition 4.4 and
// Section 4.1): the merged DAG of all candidate models in a model-selection
// workload, obtained by hash-consing identical materializable
// sub-expressions. The materialization optimizer reasons over this graph so
// a layer shared by many candidates is considered (and materialized) once.
package mmg

import (
	"fmt"

	"nautilus/internal/graph"
)

// MultiModel is the merged graph plus the mapping from each source model's
// nodes to merged nodes.
type MultiModel struct {
	Graph  *graph.Model
	Models []*graph.Model
	// NodeOf maps (source model, source node) to the merged node.
	NodeOf map[*graph.Model]map[*graph.Node]*graph.Node
	// SourcesOf lists, for every merged node, the (model, node) pairs that
	// merged into it.
	SourcesOf map[*graph.Node][]SourceRef
	// Sig is the expression signature of every merged node.
	Sig map[*graph.Node]graph.Signature
}

// SourceRef identifies one source-model node merged into a multi-model
// node.
type SourceRef struct {
	Model *graph.Model
	Node  *graph.Node
}

// Build merges the given models into a multi-model graph. Materializable
// nodes with identical expression signatures collapse into one merged node
// (sharing the first source's layer instance); all other nodes are copied
// per model. The merged model's outputs are the concatenation of the source
// models' outputs.
func Build(models ...*graph.Model) (*MultiModel, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("mmg: no models")
	}
	merged := graph.NewModel(multiName(models))
	mm := &MultiModel{
		Graph:     merged,
		Models:    append([]*graph.Model(nil), models...),
		NodeOf:    map[*graph.Model]map[*graph.Node]*graph.Node{},
		SourcesOf: map[*graph.Node][]SourceRef{},
		Sig:       map[*graph.Node]graph.Signature{},
	}
	bySig := map[graph.Signature]*graph.Node{}

	var outs []*graph.Node
	for _, m := range models {
		sigs := m.ExprSignatures()
		mat := m.Materializable()
		mm.NodeOf[m] = map[*graph.Node]*graph.Node{}
		for _, n := range m.Nodes() {
			sig := sigs[n]
			if mat[n] {
				if existing := bySig[sig]; existing != nil {
					mm.NodeOf[m][n] = existing
					mm.SourcesOf[existing] = append(mm.SourcesOf[existing], SourceRef{Model: m, Node: n})
					continue
				}
			}
			parents := make([]*graph.Node, len(n.Parents))
			for i, p := range n.Parents {
				parents[i] = mm.NodeOf[m][p]
				if parents[i] == nil {
					return nil, fmt.Errorf("mmg: model %q node %q used before definition", m.Name, p.Name)
				}
			}
			name := mergedName(m, n, mat[n], sig)
			if merged.Node(name) != nil {
				// Distinct expressions colliding on a name can only happen
				// for non-materializable twins across models; disambiguate.
				name = fmt.Sprintf("%s@%s", name, m.Name)
			}
			nn := merged.AddNode(name, n.Layer, parents...)
			nn.Trainable = n.Trainable
			mm.NodeOf[m][n] = nn
			mm.SourcesOf[nn] = append(mm.SourcesOf[nn], SourceRef{Model: m, Node: n})
			mm.Sig[nn] = sig
			if mat[n] {
				bySig[sig] = nn
			}
		}
		for _, o := range m.Outputs {
			outs = append(outs, mm.NodeOf[m][o])
		}
	}
	merged.SetOutputs(outs...)
	if _, err := merged.Validate(); err != nil {
		return nil, fmt.Errorf("mmg: merged graph invalid: %w", err)
	}
	return mm, nil
}

// OutputsOf returns the merged nodes corresponding to one source model's
// outputs.
func (mm *MultiModel) OutputsOf(m *graph.Model) []*graph.Node {
	outs := make([]*graph.Node, len(m.Outputs))
	for i, o := range m.Outputs {
		outs[i] = mm.NodeOf[m][o]
	}
	return outs
}

// MaterializableNodes returns the merged graph's materializable non-input
// nodes — the candidate set U the materialization optimizer chooses from.
func (mm *MultiModel) MaterializableNodes() []*graph.Node {
	mat := mm.Graph.Materializable()
	var out []*graph.Node
	for _, n := range mm.Graph.Nodes() {
		if mat[n] && !n.IsInput() {
			out = append(out, n)
		}
	}
	return out
}

// SharedCount returns how many source nodes merged into n.
func (mm *MultiModel) SharedCount(n *graph.Node) int { return len(mm.SourcesOf[n]) }

func multiName(models []*graph.Model) string {
	if len(models) == 1 {
		return "mmg:" + models[0].Name
	}
	return fmt.Sprintf("mmg:%s+%d", models[0].Name, len(models)-1)
}

// mergedName names a merged node: materializable nodes get signature-based
// stable names (shared across models); others are qualified by model.
func mergedName(m *graph.Model, n *graph.Node, materializable bool, sig graph.Signature) string {
	if materializable {
		return "shared/" + sig.String()
	}
	return m.Name + "/" + n.Name
}
