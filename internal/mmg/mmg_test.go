package mmg

import (
	"fmt"
	"math/rand"
	"testing"

	"nautilus/internal/graph"
	"nautilus/internal/layers"
	"nautilus/internal/models"
	"nautilus/internal/tensor"
)

// twoHeads builds two models sharing a frozen 2-layer trunk with different
// trainable heads.
func twoHeads() (*graph.Model, *graph.Model) {
	build := func(name string, headSeed int64) *graph.Model {
		m := graph.NewModel(name)
		in := m.AddInput("in", 4)
		d1 := m.AddNode("d1", layers.NewDense(4, 8, layers.ActTanh, 100), in)
		d2 := m.AddNode("d2", layers.NewDense(8, 8, layers.ActTanh, 200), d1)
		h := m.AddNode("h", layers.NewDense(8, 2, layers.ActNone, headSeed), d2)
		h.Trainable = true
		m.SetOutputs(h)
		return m
	}
	return build("a", 1), build("b", 2)
}

func TestBuildMergesSharedTrunk(t *testing.T) {
	a, b := twoHeads()
	mm, err := Build(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// in, d1, d2 merge; two heads stay separate: 3 + 2 = 5 nodes.
	if got := mm.Graph.NumNodes(); got != 5 {
		t.Errorf("merged nodes = %d, want 5", got)
	}
	if len(mm.Graph.Outputs) != 2 {
		t.Errorf("merged outputs = %d, want 2", len(mm.Graph.Outputs))
	}
	// Both models map d2 to the same merged node.
	if mm.NodeOf[a][a.Node("d2")] != mm.NodeOf[b][b.Node("d2")] {
		t.Error("shared trunk not merged")
	}
	if mm.SharedCount(mm.NodeOf[a][a.Node("d2")]) != 2 {
		t.Error("shared count wrong")
	}
	// Heads map to different nodes.
	if mm.NodeOf[a][a.Node("h")] == mm.NodeOf[b][b.Node("h")] {
		t.Error("distinct heads wrongly merged")
	}
}

func TestBuildDivergentTrunksDoNotMerge(t *testing.T) {
	a, _ := twoHeads()
	// c has a different frozen trunk (different seed).
	c := graph.NewModel("c")
	in := c.AddInput("in", 4)
	d1 := c.AddNode("d1", layers.NewDense(4, 8, layers.ActTanh, 999), in)
	d2 := c.AddNode("d2", layers.NewDense(8, 8, layers.ActTanh, 200), d1)
	h := c.AddNode("h", layers.NewDense(8, 2, layers.ActNone, 3), d2)
	h.Trainable = true
	c.SetOutputs(h)

	mm, err := Build(a, c)
	if err != nil {
		t.Fatal(err)
	}
	// Only the input merges: in + (d1,d2,h)×2 = 7.
	if got := mm.Graph.NumNodes(); got != 7 {
		t.Errorf("merged nodes = %d, want 7", got)
	}
	// d2 has identical config+seed in both but different parents
	// (expression signatures differ), so it must NOT merge.
	if mm.NodeOf[a][a.Node("d2")] == mm.NodeOf[c][c.Node("d2")] {
		t.Error("d2 merged despite divergent ancestry")
	}
}

func TestMergedGraphExecutionMatchesSources(t *testing.T) {
	// Forward through the merged graph must reproduce each source model's
	// outputs exactly — merging is purely structural.
	a, b := twoHeads()
	mm, err := Build(a, b)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	x := tensor.RandNormal(rng, 1, 3, 4)

	ta, _ := a.Forward(map[string]*tensor.Tensor{"in": x}, false)
	tb, _ := b.Forward(map[string]*tensor.Tensor{"in": x}, false)

	inName := mm.NodeOf[a][a.Node("in")].Name
	tm, err := mm.Graph.Forward(map[string]*tensor.Tensor{inName: x}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !tm.Output(mm.OutputsOf(a)[0]).AllClose(ta.Output(a.Outputs[0]), 1e-6) {
		t.Error("merged graph diverges from model a")
	}
	if !tm.Output(mm.OutputsOf(b)[0]).AllClose(tb.Output(b.Outputs[0]), 1e-6) {
		t.Error("merged graph diverges from model b")
	}
}

func TestMaterializableNodesExcludeInputsAndHeads(t *testing.T) {
	a, b := twoHeads()
	mm, err := Build(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mat := mm.MaterializableNodes()
	if len(mat) != 2 { // merged d1, d2
		t.Fatalf("materializable = %d nodes, want 2", len(mat))
	}
	for _, n := range mat {
		if n.IsInput() || n.Trainable {
			t.Errorf("node %q should not be a candidate", n.Name)
		}
	}
}

func TestBuildBERTWorkloadScale(t *testing.T) {
	// Six FTR-1 strategies over a mini hub: the trunk (emb, pos, ln,
	// 4 blocks, feature-combination nodes) merges across all six models.
	h := models.NewBERTHub(models.BERTMini())
	var ms []*graph.Model
	for i, strat := range []models.FeatureStrategy{
		models.FeatEmbedding, models.FeatSecondLastHidden, models.FeatLastHidden,
		models.FeatSumLast4, models.FeatConcatLast4, models.FeatSumAll,
	} {
		m, err := h.FeatureTransferModel(fmt.Sprintf("m%d", i), strat, 9, int64(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	mm, err := Build(ms...)
	if err != nil {
		t.Fatal(err)
	}
	// Each model alone has 8 trunk nodes (ids,emb,pos,ln,4 blocks) plus
	// strategy/head nodes. Merged: trunk counted once.
	perModel := 0
	for _, m := range ms {
		perModel += m.NumNodes()
	}
	if mm.Graph.NumNodes() >= perModel {
		t.Errorf("merging saved nothing: %d vs %d", mm.Graph.NumNodes(), perModel)
	}
	// The shared trunk is 8 nodes; six models have 6 outputs.
	if len(mm.Graph.Outputs) != 6 {
		t.Errorf("outputs = %d, want 6", len(mm.Graph.Outputs))
	}
	// Feature-combination nodes (sum4, cat4, sum_all) are materializable
	// and must appear in the candidate set.
	names := map[string]bool{}
	for _, n := range mm.MaterializableNodes() {
		names[n.Name] = true
	}
	if len(names) < 7 { // emb-ln + 4 blocks + combination nodes
		t.Errorf("only %d materializable candidates", len(names))
	}
}

func TestBuildEmptyErrors(t *testing.T) {
	if _, err := Build(); err == nil {
		t.Error("empty Build should error")
	}
}

func TestBuildSingleModelIsIdentity(t *testing.T) {
	a, _ := twoHeads()
	mm, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if mm.Graph.NumNodes() != a.NumNodes() {
		t.Errorf("single-model merge changed node count: %d vs %d", mm.Graph.NumNodes(), a.NumNodes())
	}
}
