// Package models is the repository's stand-in for a pre-trained model hub:
// it builds BERT-style transformer encoders and ResNet-style CNNs with
// deterministically seeded "pre-trained" weights, and adapts them for
// target tasks using the three transfer-learning schemes the paper
// formalizes (Section 2.4): feature transfer, fine-tuning, and adapter
// training.
//
// Frozen trunk layers are shared instances across all candidate models
// built from one hub, mirroring how practitioners load a single checkpoint;
// trainable copies are freshly instantiated per candidate so their weights
// can diverge.
package models

import (
	"fmt"

	"nautilus/internal/graph"
	"nautilus/internal/layers"
)

// BERTConfig describes a BERT-style encoder.
type BERTConfig struct {
	Vocab, Seq, Dim, Heads, FFN, Blocks int
	Seed                                int64
}

// BERTBase returns the paper-scale configuration matching BERT-base
// (110M parameters): 12 blocks, hidden 768, 12 heads, FFN 3072. Sequence
// length 128 is the standard NER fine-tuning bucket CoNLL sentences pad
// into.
func BERTBase() BERTConfig {
	return BERTConfig{Vocab: 30522, Seq: 128, Dim: 768, Heads: 12, FFN: 3072, Blocks: 12, Seed: 8800}
}

// BERTMini returns a CPU-trainable miniature with the same topology (real
// training in tests, examples, and mini-scale experiments).
func BERTMini() BERTConfig {
	return BERTConfig{Vocab: 1024, Seq: 12, Dim: 32, Heads: 2, FFN: 64, Blocks: 4, Seed: 8800}
}

// FeatureStrategy selects which pre-trained activations feed the new head
// in feature transfer, following Devlin et al.'s CoNLL ablation (the six
// strategies of workload FTR-1).
type FeatureStrategy string

// The six feature-transfer strategies of Table 3.
const (
	FeatEmbedding        FeatureStrategy = "embedding"
	FeatSecondLastHidden FeatureStrategy = "second_last_hidden"
	FeatLastHidden       FeatureStrategy = "last_hidden"
	FeatSumLast4         FeatureStrategy = "sum_last_4"
	FeatConcatLast4      FeatureStrategy = "concat_last_4"
	FeatSumAll           FeatureStrategy = "sum_all"
)

// BERTHub holds the shared pre-trained layer instances of one downloaded
// checkpoint.
type BERTHub struct {
	Cfg BERTConfig

	emb    *layers.Embedding
	pos    *layers.PositionalEmbedding
	lnEmb  *layers.LayerNorm
	blocks []*layers.Composite
}

// NewBERTHub "downloads" a pre-trained BERT-style model: all layer weights
// derive deterministically from Cfg.Seed. The embedding table carries
// planted semantic-cluster structure, simulating the token-similarity
// geometry real pre-training produces (without it, transfer from random
// weights cannot generalize to unseen tokens).
func NewBERTHub(cfg BERTConfig) *BERTHub {
	h := &BERTHub{Cfg: cfg}
	clusters := cfg.Vocab / 16 // 16-token clusters align with the synthetic corpus's tag bands
	h.emb = layers.NewClusteredEmbedding(cfg.Vocab, cfg.Dim, clusters, cfg.Seed+1)
	h.pos = layers.NewPositionalEmbedding(cfg.Seq, cfg.Dim, cfg.Seed+2)
	h.lnEmb = layers.NewLayerNorm(cfg.Dim)
	for i := 0; i < cfg.Blocks; i++ {
		h.blocks = append(h.blocks, h.freshBlock(i, 0, 0))
	}
	return h
}

// blockSeed derives the deterministic seed of pre-trained block i.
func (h *BERTHub) blockSeed(i int) int64 { return h.Cfg.Seed + 1000*int64(i+1) }

// freshBlock instantiates block i anew (identical pre-trained weights by
// seed), optionally with adapters.
func (h *BERTHub) freshBlock(i, adapter int, adapterSeed int64) *layers.Composite {
	return layers.NewTransformerBlock(layers.TransformerBlockConfig{
		Seq: h.Cfg.Seq, Dim: h.Cfg.Dim, Heads: h.Cfg.Heads, FFN: h.Cfg.FFN,
		Seed: h.blockSeed(i), Adapter: adapter, AdapterSeed: adapterSeed,
	})
}

// addTrunk appends the shared frozen embedding stack and the first
// `frozenBlocks` shared frozen encoder blocks to m, returning the embedding
// output node and the per-block output nodes added so far.
func (h *BERTHub) addTrunk(m *graph.Model, frozenBlocks int) (embOut *graph.Node, blockOuts []*graph.Node) {
	ids := m.AddInput("ids", h.Cfg.Seq)
	e := m.AddNode("emb", h.emb, ids)
	p := m.AddNode("pos", h.pos, e)
	embOut = m.AddNode("ln_emb", h.lnEmb, p)
	prev := embOut
	for i := 0; i < frozenBlocks; i++ {
		prev = m.AddNode(fmt.Sprintf("block_%d", i+1), h.blocks[i], prev)
		blockOuts = append(blockOuts, prev)
	}
	return embOut, blockOuts
}

// FeatureTransferModel builds a feature-transfer candidate: the entire
// pre-trained trunk frozen, features extracted per strategy, then a fresh
// trainable transformer block and a per-token softmax classification head
// (paper Section 5, FTR-* workloads).
func (h *BERTHub) FeatureTransferModel(name string, strat FeatureStrategy, numClasses int, headSeed int64) (*graph.Model, error) {
	m := graph.NewModel(name)
	embOut, blockOuts := h.addTrunk(m, h.Cfg.Blocks)
	dim := h.Cfg.Dim
	nb := len(blockOuts)

	var feat *graph.Node
	featDim := dim
	switch strat {
	case FeatEmbedding:
		feat = embOut
	case FeatSecondLastHidden:
		feat = blockOuts[nb-2]
	case FeatLastHidden:
		feat = blockOuts[nb-1]
	case FeatSumLast4:
		feat = m.AddNode("feat_sum4", layers.NewAdd(4),
			blockOuts[nb-4], blockOuts[nb-3], blockOuts[nb-2], blockOuts[nb-1])
	case FeatConcatLast4:
		feat = m.AddNode("feat_cat4", layers.NewConcat(4),
			blockOuts[nb-4], blockOuts[nb-3], blockOuts[nb-2], blockOuts[nb-1])
		featDim = 4 * dim
	case FeatSumAll:
		all := make([]*graph.Node, 0, nb+1)
		all = append(all, embOut)
		all = append(all, blockOuts...)
		feat = m.AddNode("feat_sum_all", layers.NewAdd(len(all)), all...)
	default:
		return nil, fmt.Errorf("models: unknown feature strategy %q", strat)
	}

	// Combined features wider than the hidden size are first projected
	// back to it, so the new transformer layer keeps standard dimensions
	// regardless of the extraction strategy.
	if featDim != dim {
		proj := m.AddNode("head_proj", layers.NewDense(featDim, dim, layers.ActNone, headSeed+3), feat)
		proj.Trainable = true
		feat = proj
	}
	head := m.AddNode("head_block", layers.NewTransformerBlock(layers.TransformerBlockConfig{
		Seq: h.Cfg.Seq, Dim: dim, Heads: h.Cfg.Heads, FFN: h.Cfg.FFN, Seed: headSeed,
	}), feat)
	head.Trainable = true
	cls := m.AddNode("classifier", layers.NewDense(dim, numClasses, layers.ActNone, headSeed+7), head)
	cls.Trainable = true
	m.SetOutputs(cls)
	return m, nil
}

// FineTuneModel builds a fine-tuning candidate: the bottom blocks stay
// frozen (shared instances) while the top tuneTop blocks are fresh
// trainable copies, plus a trainable classification head.
func (h *BERTHub) FineTuneModel(name string, tuneTop, numClasses int, headSeed int64) (*graph.Model, error) {
	if tuneTop < 0 || tuneTop > h.Cfg.Blocks {
		return nil, fmt.Errorf("models: tuneTop %d out of range [0,%d]", tuneTop, h.Cfg.Blocks)
	}
	m := graph.NewModel(name)
	frozen := h.Cfg.Blocks - tuneTop
	_, blockOuts := h.addTrunk(m, frozen)
	prev := m.Node("ln_emb")
	if len(blockOuts) > 0 {
		prev = blockOuts[len(blockOuts)-1]
	}
	for i := frozen; i < h.Cfg.Blocks; i++ {
		n := m.AddNode(fmt.Sprintf("block_%d", i+1), h.freshBlock(i, 0, 0), prev)
		n.Trainable = true
		prev = n
	}
	cls := m.AddNode("classifier", layers.NewDense(h.Cfg.Dim, numClasses, layers.ActNone, headSeed+7), prev)
	cls.Trainable = true
	m.SetOutputs(cls)
	return m, nil
}

// AdapterModel builds an adapter-training candidate (Houlsby adapters in
// the top adaptTop blocks, workload ATR): adapted blocks are fresh
// instances whose base weights stay frozen and whose adapters train, lower
// blocks are shared frozen instances.
func (h *BERTHub) AdapterModel(name string, adaptTop, bottleneck, numClasses int, headSeed int64) (*graph.Model, error) {
	if adaptTop < 1 || adaptTop > h.Cfg.Blocks {
		return nil, fmt.Errorf("models: adaptTop %d out of range [1,%d]", adaptTop, h.Cfg.Blocks)
	}
	m := graph.NewModel(name)
	frozen := h.Cfg.Blocks - adaptTop
	_, blockOuts := h.addTrunk(m, frozen)
	prev := m.Node("ln_emb")
	if len(blockOuts) > 0 {
		prev = blockOuts[len(blockOuts)-1]
	}
	for i := frozen; i < h.Cfg.Blocks; i++ {
		n := m.AddNode(fmt.Sprintf("block_%d", i+1),
			h.freshBlock(i, bottleneck, headSeed+10*int64(i)), prev)
		n.Trainable = true // only the adapters inside actually train
		prev = n
	}
	cls := m.AddNode("classifier", layers.NewDense(h.Cfg.Dim, numClasses, layers.ActNone, headSeed+7), prev)
	cls.Trainable = true
	m.SetOutputs(cls)
	return m, nil
}
