package models

import (
	"testing"

	"nautilus/internal/profile"
)

// TestBERTBaseFLOPsMatchPublishedNumbers cross-checks the analytical cost
// model against external ground truth: BERT-base forward inference is
// ≈22.5 GFLOPs per 128-token sequence (Clark et al., "ELECTRA", and
// common profiler outputs), i.e. ≈1.8 GFLOPs per transformer block.
func TestBERTBaseFLOPsMatchPublishedNumbers(t *testing.T) {
	hub := NewBERTHub(BERTBase())
	m, err := hub.FeatureTransferModel("flops", FeatLastHidden, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.Profile(m, profile.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	block := prof.Layers[m.Node("block_1")]
	gf := float64(block.ForwardFLOPs) / 1e9
	if gf < 1.4 || gf > 2.4 {
		t.Errorf("per-block forward = %.2f GFLOPs, expected ≈1.8", gf)
	}
	// Whole frozen trunk (12 blocks + embeddings) ≈ 22 GFLOPs.
	var trunk int64
	for _, n := range m.Nodes() {
		if prof.Layers[n].Materializable {
			trunk += prof.Layers[n].ForwardFLOPs
		}
	}
	tg := float64(trunk) / 1e9
	if tg < 17 || tg > 29 {
		t.Errorf("trunk forward = %.1f GFLOPs, expected ≈22", tg)
	}
	// Block output: 128×768 floats = 393 KB, the 100X-larger-than-input
	// blowup the paper cites for materialized intermediates.
	if block.OutBytes != 128*768*4 {
		t.Errorf("block output bytes = %d, want %d", block.OutBytes, 128*768*4)
	}
	inputBytes := prof.Layers[m.Node("ids")].OutBytes
	if ratio := float64(block.OutBytes) / float64(inputBytes); ratio < 100 {
		t.Errorf("intermediate/input size ratio = %.0f, paper cites up to 100X", ratio)
	}
}

// TestResNet50FLOPsMatchPublishedNumbers: ResNet-50 forward inference is
// ≈4.1 GMACs at 224² input; published "FLOPs" counts usually report MACs.
// Our cost model counts 2 FLOPs per multiply-add, so at 128² input the
// expectation is 4.1 × (128/224)² × 2 ≈ 2.7 GFLOPs.
func TestResNet50FLOPsMatchPublishedNumbers(t *testing.T) {
	hub := NewResNetHub(ResNet50())
	m, err := hub.FineTuneModel("flops", 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.Profile(m, profile.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	var fwd int64
	for _, n := range m.Nodes() {
		fwd += prof.Layers[n].ForwardFLOPs
	}
	gf := float64(fwd) / 1e9
	if gf < 2.0 || gf > 3.5 {
		t.Errorf("ResNet-50@128 forward = %.2f GFLOPs, expected ≈2.7", gf)
	}
}
