package models

import (
	"fmt"
	"math/rand"
	"testing"

	"nautilus/internal/graph"
	"nautilus/internal/layers"
	"nautilus/internal/tensor"
)

func miniHub() *BERTHub { return NewBERTHub(BERTMini()) }

func TestBERTFeatureTransferStrategies(t *testing.T) {
	h := miniHub()
	for _, strat := range []FeatureStrategy{
		FeatEmbedding, FeatSecondLastHidden, FeatLastHidden,
		FeatSumLast4, FeatConcatLast4, FeatSumAll,
	} {
		m, err := h.FeatureTransferModel("ftr_"+string(strat), strat, 5, 42)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		shapes, err := m.Validate()
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		out := shapes[m.Outputs[0]]
		if !tensor.ShapeEq(out, []int{h.Cfg.Seq, 5}) {
			t.Errorf("%s: output shape %v, want [%d 5]", strat, out, h.Cfg.Seq)
		}
		// Feature transfer freezes the whole trunk: only head params train.
		mat := m.Materializable()
		for i := 1; i <= h.Cfg.Blocks; i++ {
			n := m.Node(fmt.Sprintf("block_%d", i))
			if !mat[n] {
				t.Errorf("%s: trunk block_%d should be materializable", strat, i)
			}
		}
		if mat[m.Node("head_block")] || mat[m.Node("classifier")] {
			t.Errorf("%s: head must not be materializable", strat)
		}
	}
}

func TestBERTFeatureTransferForwardAndTrainStep(t *testing.T) {
	h := miniHub()
	m, err := h.FeatureTransferModel("ftr", FeatConcatLast4, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	batch := 2
	ids := tensor.New(batch, h.Cfg.Seq)
	for i := range ids.Data() {
		ids.Data()[i] = float32(rng.Intn(h.Cfg.Vocab))
	}
	tape, err := m.Forward(map[string]*tensor.Tensor{"ids": ids}, true)
	if err != nil {
		t.Fatal(err)
	}
	out := tape.Output(m.Outputs[0])
	if !tensor.ShapeEq(out.Shape(), []int{batch, h.Cfg.Seq, 3}) {
		t.Fatalf("output shape %v", out.Shape())
	}
	g := tensor.RandNormal(rng, 0.1, out.Shape()...)
	if err := tape.Backward(map[string]*tensor.Tensor{m.Outputs[0].Name: g}); err != nil {
		t.Fatal(err)
	}
	// Gradients must cover exactly the trainable params.
	want := map[*graph.Param]bool{}
	for _, p := range m.TrainableParams() {
		want[p] = true
	}
	for p := range tape.ParamGrads() {
		if !want[p] {
			t.Errorf("unexpected gradient for frozen param %q", p.Name)
		}
	}
	if len(tape.ParamGrads()) != len(want) {
		t.Errorf("got %d grads, want %d", len(tape.ParamGrads()), len(want))
	}
}

func TestBERTFineTuneFreezingBoundary(t *testing.T) {
	h := miniHub()
	m, err := h.FineTuneModel("ftu", 2, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	mat := m.Materializable()
	// 4 blocks total; blocks 1-2 frozen, 3-4 trainable.
	if !mat[m.Node("block_2")] {
		t.Error("block_2 should be materializable")
	}
	if mat[m.Node("block_3")] || mat[m.Node("block_4")] {
		t.Error("tuned blocks must not be materializable")
	}
	_, trainable := m.ParamCount()
	if trainable == 0 {
		t.Error("fine-tune model must have trainable params")
	}
}

func TestBERTFineTuneRangeErrors(t *testing.T) {
	h := miniHub()
	if _, err := h.FineTuneModel("bad", 99, 2, 1); err == nil {
		t.Error("out-of-range tuneTop should error")
	}
	if _, err := h.AdapterModel("bad", 0, 4, 2, 1); err == nil {
		t.Error("adaptTop 0 should error")
	}
}

func TestBERTAdapterModelTrainsOnlyAdaptersAndHead(t *testing.T) {
	h := miniHub()
	m, err := h.AdapterModel("atr", 2, 4, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	total, trainable := m.ParamCount()
	if trainable >= total/2 {
		t.Errorf("adapter model trains %d of %d params; should be a small fraction", trainable, total)
	}
	// Adapted blocks are not materializable, lower blocks are.
	mat := m.Materializable()
	if !mat[m.Node("block_2")] {
		t.Error("unadapted block_2 should be materializable")
	}
	if mat[m.Node("block_3")] {
		t.Error("adapted block_3 must not be materializable")
	}
}

func TestSharedTrunkSignaturesMatchAcrossCandidates(t *testing.T) {
	// The heart of multi-model merging: two candidates from the same hub
	// must agree on frozen-trunk expression signatures even when one uses
	// shared instances and the other fresh copies.
	h := miniHub()
	a, _ := h.FeatureTransferModel("a", FeatLastHidden, 3, 1)
	b, _ := h.FineTuneModel("b", 1, 3, 2)
	sa, sb := a.ExprSignatures(), b.ExprSignatures()
	for i := 1; i <= h.Cfg.Blocks-1; i++ {
		name := fmt.Sprintf("block_%d", i)
		if sa[a.Node(name)] != sb[b.Node(name)] {
			t.Errorf("%s signatures differ across candidates", name)
		}
	}
	// The fine-tuned top block differs (trainable fresh copy).
	top := fmt.Sprintf("block_%d", h.Cfg.Blocks)
	if sa[a.Node(top)] == sb[b.Node(top)] {
		t.Error("frozen vs trainable top block must differ in signature")
	}
}

func TestFreshBlockMatchesSharedWeights(t *testing.T) {
	h := miniHub()
	shared := h.blocks[0]
	fresh := h.freshBlock(0, 0, 0)
	sp, fp := shared.Params(), fresh.Params()
	if len(sp) != len(fp) {
		t.Fatalf("param counts differ: %d vs %d", len(sp), len(fp))
	}
	for i := range sp {
		if sp[i].Fingerprint() != fp[i].Fingerprint() {
			t.Errorf("param %q differs between shared and fresh block", sp[i].Name)
		}
	}
}

func TestResNetFineTuneModel(t *testing.T) {
	h := NewResNetHub(ResNetMini())
	total := len(h.blocks)
	for _, tuneTop := range []int{0, 1, total} {
		m, err := h.FineTuneModel(fmt.Sprintf("ftu_%d", tuneTop), tuneTop, 2, 5)
		if err != nil {
			t.Fatal(err)
		}
		shapes, err := m.Validate()
		if err != nil {
			t.Fatalf("tuneTop=%d: %v", tuneTop, err)
		}
		if !tensor.ShapeEq(shapes[m.Outputs[0]], []int{2}) {
			t.Errorf("output shape %v, want [2]", shapes[m.Outputs[0]])
		}
		mat := m.Materializable()
		frozenBlocks := 0
		for i := 1; i <= total; i++ {
			if mat[m.Node(fmt.Sprintf("block_%d", i))] {
				frozenBlocks++
			}
		}
		if frozenBlocks != total-tuneTop {
			t.Errorf("tuneTop=%d: %d materializable blocks, want %d", tuneTop, frozenBlocks, total-tuneTop)
		}
	}
}

func TestResNetForwardBackward(t *testing.T) {
	h := NewResNetHub(ResNetMini())
	m, err := h.FineTuneModel("ftu", 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	img := tensor.RandNormal(rng, 1, 2, 16, 16, 3)
	tape, err := m.Forward(map[string]*tensor.Tensor{"img": img}, true)
	if err != nil {
		t.Fatal(err)
	}
	out := tape.Output(m.Outputs[0])
	if !tensor.ShapeEq(out.Shape(), []int{2, 2}) {
		t.Fatalf("output shape %v", out.Shape())
	}
	g := tensor.RandNormal(rng, 0.1, out.Shape()...)
	if err := tape.Backward(map[string]*tensor.Tensor{m.Outputs[0].Name: g}); err != nil {
		t.Fatal(err)
	}
	if len(tape.ParamGrads()) == 0 {
		t.Error("expected gradients for tuned blocks and head")
	}
}

func TestResNet50Shape(t *testing.T) {
	cfg := ResNet50()
	if cfg.TotalBlocks() != 16 {
		t.Errorf("ResNet-50 has %d blocks, want 16", cfg.TotalBlocks())
	}
	// Structural build (no weight materialization) must validate at paper
	// scale: this exercises the lazy-parameter design.
	h := NewResNetHub(cfg)
	m, err := h.FineTuneModel("ftu", 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	shapes, err := m.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(shapes[m.Node("gap")], []int{2048}) {
		t.Errorf("GAP output %v, want [2048]", shapes[m.Node("gap")])
	}
	total, _ := m.ParamCount()
	if total < 20_000_000 {
		t.Errorf("ResNet-50 scale params = %d, want > 20M", total)
	}
}

func TestBERTBaseStructuralScale(t *testing.T) {
	h := NewBERTHub(BERTBase())
	m, err := h.FeatureTransferModel("ftr", FeatLastHidden, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	total, _ := m.ParamCount()
	// BERT-base trunk is ~110M params (embeddings + 12 blocks).
	if total < 80_000_000 {
		t.Errorf("BERT-base scale params = %d, want > 80M", total)
	}
	// Lazy params: building at paper scale must not materialize weights.
	for _, p := range h.emb.Params() {
		if p.Materialized() {
			t.Error("hub construction must not materialize paper-scale weights")
		}
	}
}

func TestAdapterBlockComposition(t *testing.T) {
	// An adapter block's trainable subset is exactly its adapters.
	blk := layers.NewTransformerBlock(layers.TransformerBlockConfig{
		Seq: 12, Dim: 32, Heads: 2, FFN: 64, Seed: 5, Adapter: 8, AdapterSeed: 77,
	})
	if len(blk.TrainableSubset()) != 8 {
		t.Errorf("adapter block trainable subset = %d params, want 8", len(blk.TrainableSubset()))
	}
}
