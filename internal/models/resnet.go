package models

import (
	"fmt"

	"nautilus/internal/graph"
	"nautilus/internal/layers"
)

// ResNetConfig describes a ResNet-style bottleneck CNN.
type ResNetConfig struct {
	InH, InW, InC int
	// StemC is the stem convolution's output channels; StemK/StemStride
	// its kernel and stride. StemPool enables the stem max-pool.
	StemC, StemK, StemStride int
	StemPool                 bool
	// StageBlocks[i] bottleneck blocks in stage i; StageMid/StageOut are
	// the per-stage bottleneck and output channel counts. Stages after the
	// first downsample spatially by 2.
	StageBlocks []int
	StageMid    []int
	StageOut    []int
	Seed        int64
}

// ResNet50 returns the paper-scale configuration: 16 bottleneck blocks in
// stages [3,4,6,3], matching ResNet-50 topology on 128×128 inputs (the
// Malaria blood-cell images, which are ~150 px crops).
func ResNet50() ResNetConfig {
	return ResNetConfig{
		InH: 128, InW: 128, InC: 3,
		StemC: 64, StemK: 7, StemStride: 2, StemPool: true,
		StageBlocks: []int{3, 4, 6, 3},
		StageMid:    []int{64, 128, 256, 512},
		StageOut:    []int{256, 512, 1024, 2048},
		Seed:        9900,
	}
}

// ResNetMini returns a CPU-trainable miniature with the same structure:
// 4 bottleneck blocks in stages [2,2] on 16×16 inputs.
func ResNetMini() ResNetConfig {
	return ResNetConfig{
		InH: 16, InW: 16, InC: 3,
		StemC: 8, StemK: 3, StemStride: 1, StemPool: false,
		StageBlocks: []int{2, 2},
		StageMid:    []int{8, 16},
		StageOut:    []int{32, 64},
		Seed:        9900,
	}
}

// TotalBlocks returns the number of residual blocks across all stages.
func (c ResNetConfig) TotalBlocks() int {
	n := 0
	for _, b := range c.StageBlocks {
		n += b
	}
	return n
}

// ResNetHub holds the shared pre-trained layer instances of one downloaded
// ResNet checkpoint.
type ResNetHub struct {
	Cfg ResNetConfig

	stem   *layers.Conv2D
	stemBN *layers.ChannelAffine
	pool   *layers.MaxPool2D
	blocks []*layers.Composite
	// blockGeom[i] records the input geometry of block i so fresh
	// trainable copies can be instantiated.
	blockCfgs []layers.ResidualBlockConfig
}

// NewResNetHub "downloads" a pre-trained ResNet-style model.
func NewResNetHub(cfg ResNetConfig) *ResNetHub {
	h := &ResNetHub{Cfg: cfg}
	h.stem = layers.NewConv2D(cfg.InC, cfg.StemC, cfg.StemK, cfg.StemStride, cfg.StemK/2, layers.ActReLU, cfg.Seed+1)
	h.stemBN = layers.NewChannelAffine(cfg.StemC, cfg.Seed+2)
	if cfg.StemPool {
		h.pool = layers.NewMaxPool2D(3, 2, 1)
	}

	hh := (cfg.InH+2*(cfg.StemK/2)-cfg.StemK)/cfg.StemStride + 1
	ww := (cfg.InW+2*(cfg.StemK/2)-cfg.StemK)/cfg.StemStride + 1
	if cfg.StemPool {
		hh = (hh+2*1-3)/2 + 1
		ww = (ww+2*1-3)/2 + 1
	}
	inC := cfg.StemC
	bi := 0
	for s := range cfg.StageBlocks {
		for b := 0; b < cfg.StageBlocks[s]; b++ {
			stride := 1
			if b == 0 && s > 0 {
				stride = 2
			}
			bc := layers.ResidualBlockConfig{
				InH: hh, InW: ww, InC: inC,
				MidC: cfg.StageMid[s], OutC: cfg.StageOut[s],
				Stride: stride, Seed: cfg.Seed + 1000*int64(bi+1),
			}
			h.blockCfgs = append(h.blockCfgs, bc)
			h.blocks = append(h.blocks, layers.NewResidualBlock(bc))
			if stride == 2 {
				hh = (hh-1)/2 + 1
				ww = (ww-1)/2 + 1
			}
			inC = cfg.StageOut[s]
			bi++
		}
	}
	return h
}

// OutChannels returns the channel count of the final block's output.
func (h *ResNetHub) OutChannels() int {
	return h.Cfg.StageOut[len(h.Cfg.StageOut)-1]
}

// FineTuneModel builds a fine-tuning candidate (workload FTU): the stem
// and the bottom residual blocks stay frozen (shared instances), the top
// tuneTop blocks are fresh trainable copies, and a global-average-pool +
// softmax classification head is added.
func (h *ResNetHub) FineTuneModel(name string, tuneTop, numClasses int, headSeed int64) (*graph.Model, error) {
	total := len(h.blocks)
	if tuneTop < 0 || tuneTop > total {
		return nil, fmt.Errorf("models: tuneTop %d out of range [0,%d]", tuneTop, total)
	}
	m := graph.NewModel(name)
	img := m.AddInput("img", h.Cfg.InH, h.Cfg.InW, h.Cfg.InC)
	stem := m.AddNode("stem", h.stem, img)
	prev := m.AddNode("stem_bn", h.stemBN, stem)
	if h.pool != nil {
		prev = m.AddNode("stem_pool", h.pool, prev)
	}
	frozen := total - tuneTop
	for i := 0; i < total; i++ {
		var blk *layers.Composite
		if i < frozen {
			blk = h.blocks[i]
		} else {
			blk = layers.NewResidualBlock(h.blockCfgs[i])
		}
		n := m.AddNode(fmt.Sprintf("block_%d", i+1), blk, prev)
		n.Trainable = i >= frozen
		prev = n
	}
	gap := m.AddNode("gap", layers.NewGlobalAvgPool2D(), prev)
	cls := m.AddNode("classifier", layers.NewDense(h.OutChannels(), numClasses, layers.ActNone, headSeed+7), gap)
	cls.Trainable = true
	m.SetOutputs(cls)
	return m, nil
}
