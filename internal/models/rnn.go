package models

import (
	"fmt"

	"nautilus/internal/graph"
	"nautilus/internal/layers"
)

// RNNConfig describes a recurrent text encoder that Nautilus supports by
// unrolling in time (paper Section 2.5: "Nautilus can support recurrent
// models by unraveling them in time and transforming them into a
// non-recurrent DL model").
type RNNConfig struct {
	Vocab, Seq, Dim, Hidden int
	Seed                    int64
}

// RNNMini returns a CPU-trainable recurrent encoder configuration.
func RNNMini() RNNConfig {
	return RNNConfig{Vocab: 1024, Seq: 12, Dim: 32, Hidden: 32, Seed: 6600}
}

// RNNHub holds a pre-trained recurrent encoder's shared layer instances.
type RNNHub struct {
	Cfg RNNConfig

	emb  *layers.Embedding
	init *layers.InitialState
	cell *layers.RNNCell
}

// NewRNNHub "downloads" a pre-trained recurrent encoder.
func NewRNNHub(cfg RNNConfig) *RNNHub {
	return &RNNHub{
		Cfg:  cfg,
		emb:  layers.NewClusteredEmbedding(cfg.Vocab, cfg.Dim, cfg.Vocab/16, cfg.Seed+1),
		init: layers.NewInitialState(cfg.Hidden),
		cell: layers.NewRNNCell(cfg.Dim, cfg.Hidden, cfg.Seed+2),
	}
}

// UnrolledClassifier builds a sequence classifier from the unrolled
// recurrent trunk: one RNNCell instance applied at every timestep (true
// weight sharing — back-propagation through time falls out of the
// engine's shared-layer gradient accumulation), with the sum of all hidden
// states feeding a trainable softmax head (position-independent pooling,
// which a contracting random recurrence needs). The frozen unrolled trunk
// is a plain DAG, so every timestep's hidden state is materializable and
// the materialization optimizer treats it like any other frozen chain.
func (h *RNNHub) UnrolledClassifier(name string, numClasses int, headSeed int64) (*graph.Model, error) {
	cfg := h.Cfg
	m := graph.NewModel(name)
	ids := m.AddInput("ids", cfg.Seq)
	emb := m.AddNode("emb", h.emb, ids)
	state := m.AddNode("h0", h.init, ids)
	states := make([]*graph.Node, 0, cfg.Seq)
	for t := 0; t < cfg.Seq; t++ {
		xt := m.AddNode(fmt.Sprintf("x_%d", t), layers.NewSelectSeq(t, cfg.Seq), emb)
		state = m.AddNode(fmt.Sprintf("h_%d", t+1), h.cell, xt, state)
		states = append(states, state)
	}
	pooled := m.AddNode("pool", layers.NewAdd(len(states)), states...)
	cls := m.AddNode("classifier", layers.NewDense(cfg.Hidden, numClasses, layers.ActNone, headSeed), pooled)
	cls.Trainable = true
	m.SetOutputs(cls)
	if _, err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
