package models

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"nautilus/internal/graph"
	"nautilus/internal/mmg"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
	"nautilus/internal/tensor"
	"nautilus/internal/train"
)

func TestUnrolledRNNStructure(t *testing.T) {
	hub := NewRNNHub(RNNMini())
	m, err := hub.UnrolledClassifier("rnn", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	// ids + emb + h0 + seq×(select + cell) + pool + classifier.
	want := 3 + 2*hub.Cfg.Seq + 2
	if m.NumNodes() != want {
		t.Errorf("nodes = %d, want %d", m.NumNodes(), want)
	}
	// Every unrolled timestep shares ONE cell instance.
	cellParams := map[*graph.Param]bool{}
	for _, n := range m.Nodes() {
		if n.Layer.Type() == "rnn_cell" {
			for _, p := range n.Layer.Params() {
				cellParams[p] = true
			}
		}
	}
	if len(cellParams) != 3 {
		t.Errorf("cell params = %d distinct, want 3 (shared instance)", len(cellParams))
	}
	// The frozen unrolled trunk is materializable end to end.
	mat := m.Materializable()
	if !mat[m.Node(fmt.Sprintf("h_%d", hub.Cfg.Seq))] {
		t.Error("final hidden state should be materializable")
	}
	if mat[m.Node("classifier")] {
		t.Error("trainable head must not be materializable")
	}
}

func TestUnrolledRNNBPTTGradient(t *testing.T) {
	// Back-propagation through time: the shared cell's weight gradient
	// must match finite differences through the full unrolled graph.
	cfg := RNNConfig{Vocab: 32, Seq: 4, Dim: 6, Hidden: 5, Seed: 9}
	hub := NewRNNHub(cfg)
	m, err := hub.UnrolledClassifier("rnn", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Unfreeze the cell so it accumulates gradients.
	for _, n := range m.Nodes() {
		if n.Layer.Type() == "rnn_cell" {
			n.Trainable = true
		}
	}
	rng := rand.New(rand.NewSource(3))
	ids := tensor.New(2, cfg.Seq)
	for i := range ids.Data() {
		ids.Data()[i] = float32(rng.Intn(cfg.Vocab))
	}
	w := tensor.RandNormal(rng, 1, 2, 3)
	loss := func() float64 {
		tape, err := m.Forward(map[string]*tensor.Tensor{"ids": ids}, false)
		if err != nil {
			t.Fatal(err)
		}
		return tensor.Sum(tensor.Mul(tape.Output(m.Outputs[0]), w))
	}

	tape, err := m.Forward(map[string]*tensor.Tensor{"ids": ids}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := tape.Backward(map[string]*tensor.Tensor{"classifier": w}); err != nil {
		t.Fatal(err)
	}
	wh := hub.cell.Params()[1] // recurrent weight, touched at every step
	got := tape.ParamGrads()[wh]
	if got == nil {
		t.Fatal("no BPTT gradient for the recurrent weight")
	}
	const eps = 1e-2
	for _, i := range []int{0, 7, 13} {
		orig := wh.Tensor().Data()[i]
		wh.Tensor().Data()[i] = orig + eps
		lp := loss()
		wh.Tensor().Data()[i] = orig - eps
		lm := loss()
		wh.Tensor().Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(got.Data()[i])) > 2e-2*math.Max(1, math.Abs(num)) {
			t.Errorf("BPTT grad[%d]: numeric %v vs analytic %v", i, num, got.Data()[i])
		}
	}
}

func TestUnrolledRNNLearnsSequenceTask(t *testing.T) {
	// Planted task: does the sequence contain a token from the upper half
	// of the vocabulary? The frozen trunk + trainable head must learn it.
	cfg := RNNConfig{Vocab: 64, Seq: 8, Dim: 16, Hidden: 24, Seed: 21}
	hub := NewRNNHub(cfg)
	m, err := hub.UnrolledClassifier("rnn", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	n := 160
	x := tensor.New(n, cfg.Seq)
	y := tensor.New(n)
	for r := 0; r < n; r++ {
		hasHigh := false
		for s := 0; s < cfg.Seq; s++ {
			var tok int
			if r%2 == 0 && s == rng.Intn(cfg.Seq) {
				tok = cfg.Vocab/2 + rng.Intn(cfg.Vocab/2)
			} else {
				tok = rng.Intn(cfg.Vocab / 2)
			}
			if tok >= cfg.Vocab/2 {
				hasHigh = true
			}
			x.Set(float32(tok), r, s)
		}
		if hasHigh {
			y.Data()[r] = 1
		}
	}
	optm := train.NewAdam(5e-3)
	var lossVal float64
	for step := 0; step < 120; step++ {
		tape, err := m.Forward(map[string]*tensor.Tensor{"ids": x}, true)
		if err != nil {
			t.Fatal(err)
		}
		var grad *tensor.Tensor
		lossVal, grad = train.SoftmaxCrossEntropy{}.Compute(tape.Output(m.Outputs[0]), y)
		if err := tape.Backward(map[string]*tensor.Tensor{"classifier": grad}); err != nil {
			t.Fatal(err)
		}
		optm.Step(tape.ParamGrads())
	}
	if lossVal > 0.45 {
		t.Errorf("unrolled RNN failed to learn: loss %v", lossVal)
	}
}

func TestUnrolledRNNWorksWithNautilusOptimizer(t *testing.T) {
	// Two RNN candidates with different heads share the entire unrolled
	// trunk; the materialization optimizer must merge and exploit it.
	hub := NewRNNHub(RNNConfig{Vocab: 64, Seq: 6, Dim: 8, Hidden: 8, Seed: 31})
	var items []opt.WorkItem
	var ms []*graph.Model
	hw := profile.Hardware{FLOPSThroughput: 6e12, DiskThroughput: 6e10, WorkspaceBytes: 1 << 28}
	for i := 0; i < 2; i++ {
		m, err := hub.UnrolledClassifier(fmt.Sprintf("rnn%d", i), 2, int64(40+i))
		if err != nil {
			t.Fatal(err)
		}
		prof, err := profile.Profile(m, hw)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, opt.WorkItem{Model: m, Prof: prof, Epochs: 3, BatchSize: 8, LR: 1e-3})
		ms = append(ms, m)
	}
	multi, err := mmg.Build(ms...)
	if err != nil {
		t.Fatal(err)
	}
	// The shared trunk (emb + h0 + all timesteps) merges.
	perModel := ms[0].NumNodes() + ms[1].NumNodes()
	if multi.Graph.NumNodes() >= perModel {
		t.Error("unrolled trunks did not merge")
	}
	res, err := opt.OptimizeMaterialization(multi, items, opt.MatConfig{
		DiskBudgetBytes: 1 << 40, MaxRecords: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Materialized) == 0 {
		t.Error("expected the optimizer to materialize the shared recurrent trunk")
	}
	for _, plan := range res.Plans {
		if _, _, loaded := plan.CountActions(); loaded == 0 {
			t.Error("plan should load materialized hidden states")
		}
	}
}
