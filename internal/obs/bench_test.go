package obs

import (
	"io"
	"testing"
)

// BenchmarkNilSpan pins the disabled-tracer fast path: a nil *Tracer must
// cost only nil checks per instrumented site.
func BenchmarkNilSpan(b *testing.B) {
	var tr *Tracer
	for i := 0; i < b.N; i++ {
		s := tr.Start("batch", Int("i", int64(i)))
		s.Child("feed_wait").End()
		s.End()
	}
}

// BenchmarkNilCounter pins the disabled registry path.
func BenchmarkNilCounter(b *testing.B) {
	var tr *Tracer
	c := tr.Registry().Counter("flops")
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkActiveSpan measures the live path against a discarding Chrome
// sink, for comparison with the nil path.
func BenchmarkActiveSpan(b *testing.B) {
	tr := New(NewChromeTraceSink(io.Discard))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tr.Start("batch", Int("i", int64(i)))
		s.Child("feed_wait").End()
		s.End()
	}
}
