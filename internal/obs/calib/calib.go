// Package calib fits a measured profile.Calibration from the throughput
// samples the observability layer collects while a workload executes
// (obs.SampleLog: batch compute FLOPs vs wall time, store-read bytes vs
// read time, store-append bytes vs write time).
//
// The fit is a robust regression through the origin: each sample yields a
// throughput ratio work/time, samples whose ratio deviates from the
// median by more than trimK median-absolute-deviations are trimmed, and
// the fitted constant is the one minimizing the mean absolute relative
// time error over the survivors (an L1 fit seeded at the median). The
// median/MAD core is insensitive to the heavy right/left tails real
// traces carry (GC pauses, page-cache hits, cold starts), which a
// least-squares slope is not — the same argument "Learning to Optimize
// Tensor Programs" makes for learning cost models from measurements
// instead of trusting static constants.
package calib

import (
	"fmt"
	"sort"
	"time"

	"nautilus/internal/obs"
	"nautilus/internal/profile"
)

// trimK is the MAD-multiple beyond which a sample counts as an outlier.
const trimK = 3.0

// MinSamples is the fewest samples a channel needs for a fit; below it
// the channel is left unfitted (zero throughput) rather than trusting a
// handful of measurements.
const MinSamples = 4

// FitChannel runs the robust regression over one channel's samples:
// MAD-trim the per-sample throughput ratios around their median, then
// pick the constant minimizing the mean absolute relative time error
// (MeanAbsRelErr) over the kept samples — an L1 fit whose candidate set
// is the kept ratios plus their median. On symmetric noise this lands on
// the median; on the skewed distributions real IO traces carry it shifts
// toward the constant that actually predicts time best. Degenerate
// samples (non-positive work or duration) are ignored; fewer than
// MinSamples usable samples yield a zero fit.
func FitChannel(samples []obs.Sample) profile.ChannelFit {
	usable := make([]obs.Sample, 0, len(samples))
	ratios := make([]float64, 0, len(samples))
	for _, s := range samples {
		if r := s.Ratio(); r > 0 {
			usable = append(usable, s)
			ratios = append(ratios, r)
		}
	}
	fit := profile.ChannelFit{Samples: len(ratios)}
	if len(ratios) < MinSamples {
		return fit
	}
	med := median(ratios)
	mad := medianAbsDev(ratios, med)
	kept := usable
	keptRatios := ratios
	if mad > 0 {
		kept = kept[:0:0]
		keptRatios = keptRatios[:0:0]
		for i, r := range ratios {
			if abs(r-med) <= trimK*mad {
				kept = append(kept, usable[i])
				keptRatios = append(keptRatios, r)
			}
		}
		fit.Trimmed = len(ratios) - len(kept)
	}
	fit.Throughput = median(keptRatios)
	best := MeanAbsRelErr(kept, fit.Throughput)
	for _, c := range keptRatios {
		if e := MeanAbsRelErr(kept, c); e < best {
			best, fit.Throughput = e, c
		}
	}
	if fit.Throughput > 0 {
		fit.Spread = medianAbsDev(keptRatios, fit.Throughput) / fit.Throughput
	}
	return fit
}

// Fit builds a calibration from a sample log. It errors when the compute
// channel — the one constant every plan depends on — has too few samples
// to fit; the IO channels degrade gracefully to their static defaults.
func Fit(log *obs.SampleLog, source string) (*profile.Calibration, error) {
	if log == nil {
		return nil, fmt.Errorf("calib: no sample log (run with observability enabled)")
	}
	c := &profile.Calibration{
		Version: profile.CalibrationVersion,
		Source:  source,
		//lint:ignore determinism calibration files are timestamped measurement artifacts
		CreatedUnixNs: time.Now().UnixNano(),
		Compute:       FitChannel(log.Compute()),
		Read:          FitChannel(log.Read()),
		Write:         FitChannel(log.Write()),
	}
	if c.Compute.Throughput <= 0 {
		return nil, fmt.Errorf("calib: %d compute samples, need at least %d to fit FLOP/s", c.Compute.Samples, MinSamples)
	}
	return c, nil
}

// FromTracer fits a calibration from the tracer's sample log.
func FromTracer(t *obs.Tracer, source string) (*profile.Calibration, error) {
	if t == nil {
		return nil, fmt.Errorf("calib: no tracer (run with observability enabled)")
	}
	return Fit(t.Samples(), source)
}

// Trim returns the samples FitChannel would keep: those whose throughput
// ratio lies within trimK median-absolute-deviations of the median. Use
// it to score constants over the measurements the fit trusts, excluding
// the stall outliers that would dominate a mean-of-errors either way.
func Trim(samples []obs.Sample) []obs.Sample {
	ratios := make([]float64, 0, len(samples))
	for _, s := range samples {
		if r := s.Ratio(); r > 0 {
			ratios = append(ratios, r)
		}
	}
	if len(ratios) == 0 {
		return nil
	}
	med := median(ratios)
	mad := medianAbsDev(ratios, med)
	kept := make([]obs.Sample, 0, len(samples))
	for _, s := range samples {
		r := s.Ratio()
		//lint:ignore floateq exactly-zero MAD means every ratio is the median; keep all
		if r > 0 && (mad == 0 || abs(r-med) <= trimK*mad) {
			kept = append(kept, s)
		}
	}
	return kept
}

// MeanAbsRelErr scores a throughput constant against measured samples:
// the mean of |predicted seconds − actual seconds| / actual seconds,
// where predicted seconds is work/throughput. It is the conformance
// tightness metric BENCH_calib.json reports before vs after calibration.
// Returns 0 when no sample is usable.
func MeanAbsRelErr(samples []obs.Sample, throughput float64) float64 {
	if throughput <= 0 {
		return 0
	}
	var sum float64
	var n int
	for _, s := range samples {
		if s.Work <= 0 || s.DurNs <= 0 {
			continue
		}
		actual := float64(s.DurNs) / 1e9
		pred := float64(s.Work) / throughput
		sum += abs(pred-actual) / actual
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func medianAbsDev(xs []float64, med float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = abs(x - med)
	}
	return median(devs)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
