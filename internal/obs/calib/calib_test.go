package calib_test

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nautilus/internal/obs"
	"nautilus/internal/obs/calib"
	"nautilus/internal/profile"
)

// synthSamples fabricates a trace of n samples from a machine whose true
// throughput is truth work-units/s, with multiplicative jitter of ±noise
// and, every outlierEvery samples, a gross outlier (a 20x stall — the GC
// pause / cold-start shape real traces carry).
func synthSamples(rng *rand.Rand, n int, truth float64, noise float64, outlierEvery int) []obs.Sample {
	out := make([]obs.Sample, 0, n)
	for i := 0; i < n; i++ {
		work := int64(1e6 + rng.Intn(9e6))
		thr := truth * (1 + noise*(2*rng.Float64()-1))
		if outlierEvery > 0 && i%outlierEvery == outlierEvery-1 {
			thr = truth / 20 // stalled sample: same work, 20x the time
		}
		dur := time.Duration(float64(work) / thr * 1e9)
		out = append(out, obs.Sample{Work: work, DurNs: dur.Nanoseconds()})
	}
	return out
}

// TestFitRecoversKnownConstants pins fit correctness: on synthetic traces
// from known hardware with 10% jitter and injected 20x outliers, the
// median-of-ratios fit lands within 5% of the truth on every channel and
// reports the outliers it trimmed.
func TestFitRecoversKnownConstants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const flops, readBps, writeBps = 3.2e9, 480e6, 210e6

	log := &obs.SampleLog{}
	for _, s := range synthSamples(rng, 200, flops, 0.10, 10) {
		log.AddCompute(s.Work, time.Duration(s.DurNs))
	}
	for _, s := range synthSamples(rng, 120, readBps, 0.10, 12) {
		log.AddRead(s.Work, time.Duration(s.DurNs))
	}
	for _, s := range synthSamples(rng, 80, writeBps, 0.10, 8) {
		log.AddWrite(s.Work, time.Duration(s.DurNs))
	}

	c, err := calib.Fit(log, "synthetic")
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name  string
		fit   profile.ChannelFit
		truth float64
	}{
		{"compute", c.Compute, flops},
		{"read", c.Read, readBps},
		{"write", c.Write, writeBps},
	}
	for _, ck := range checks {
		rel := (ck.fit.Throughput - ck.truth) / ck.truth
		if rel < -0.05 || rel > 0.05 {
			t.Errorf("%s: fitted %.3g, truth %.3g (%.1f%% off)", ck.name, ck.fit.Throughput, ck.truth, 100*rel)
		}
		if ck.fit.Trimmed == 0 {
			t.Errorf("%s: fit trimmed no samples despite injected outliers", ck.name)
		}
		if ck.fit.Spread <= 0 || ck.fit.Spread > 0.2 {
			t.Errorf("%s: implausible spread %.3g", ck.name, ck.fit.Spread)
		}
	}
}

// TestFitTightensConformance is the acceptance assertion on synthetic
// traces: the mean absolute predicted-vs-actual error for compute seconds
// and load seconds is strictly lower under the fitted constants than
// under DefaultHardware()'s paper constants.
func TestFitTightensConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	log := &obs.SampleLog{}
	compute := synthSamples(rng, 150, 2.1e9, 0.15, 9)
	read := synthSamples(rng, 90, 350e6, 0.15, 9)
	for _, s := range compute {
		log.AddCompute(s.Work, time.Duration(s.DurNs))
	}
	for _, s := range read {
		log.AddRead(s.Work, time.Duration(s.DurNs))
	}
	c, err := calib.Fit(log, "synthetic")
	if err != nil {
		t.Fatal(err)
	}

	base := profile.DefaultHardware()
	fitted := c.Apply(base)
	if fitted.WorkspaceBytes != base.WorkspaceBytes {
		t.Errorf("Apply clobbered WorkspaceBytes: %d != %d", fitted.WorkspaceBytes, base.WorkspaceBytes)
	}
	for _, ch := range []struct {
		name          string
		samples       []obs.Sample
		before, after float64
	}{
		{"compute", compute, base.FLOPSThroughput, fitted.FLOPSThroughput},
		{"load", read, base.DiskThroughput, fitted.DiskThroughput},
	} {
		errBefore := calib.MeanAbsRelErr(ch.samples, ch.before)
		errAfter := calib.MeanAbsRelErr(ch.samples, ch.after)
		if errAfter >= errBefore {
			t.Errorf("%s seconds: fitted error %.4f not below default-hardware error %.4f", ch.name, errAfter, errBefore)
		}
	}
}

// TestFitInsufficientSamples asserts the compute channel is mandatory and
// under-sampled IO channels degrade to the static constants.
func TestFitInsufficientSamples(t *testing.T) {
	log := &obs.SampleLog{}
	log.AddCompute(1e6, time.Millisecond)
	if _, err := calib.Fit(log, "x"); err == nil {
		t.Fatal("fit with 1 compute sample did not error")
	}

	for i := 0; i < 10; i++ {
		log.AddCompute(1e6, time.Millisecond)
	}
	log.AddRead(4096, time.Millisecond) // below MinSamples: read stays unfitted
	c, err := calib.Fit(log, "x")
	if err != nil {
		t.Fatal(err)
	}
	if c.Read.Throughput != 0 {
		t.Errorf("read channel fitted from %d sample(s): %.3g", c.Read.Samples, c.Read.Throughput)
	}
	base := profile.DefaultHardware()
	if hw := c.Apply(base); hw.DiskThroughput != base.DiskThroughput {
		t.Errorf("unfitted read channel overrode DiskThroughput: %.3g", hw.DiskThroughput)
	}
}

// TestCalibrationRoundTrip persists a fit and loads it back through both
// LoadCalibration and the LoadHardware convenience path.
func TestCalibrationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	log := &obs.SampleLog{}
	for _, s := range synthSamples(rng, 50, 1.5e9, 0.05, 0) {
		log.AddCompute(s.Work, time.Duration(s.DurNs))
	}
	for _, s := range synthSamples(rng, 50, 200e6, 0.05, 0) {
		log.AddRead(s.Work, time.Duration(s.DurNs))
	}
	c, err := calib.Fit(log, "roundtrip-test")
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "calib.json")
	if err := profile.SaveCalibration(path, c); err != nil {
		t.Fatal(err)
	}
	back, err := profile.LoadCalibration(path)
	if err != nil {
		t.Fatal(err)
	}
	if *back != *c {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, c)
	}

	hw, err := profile.LoadHardware(path, profile.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	if hw.FLOPSThroughput != c.Compute.Throughput || hw.DiskThroughput != c.Read.Throughput {
		t.Errorf("LoadHardware did not apply the fit: %+v vs %+v", hw, c)
	}
}

// TestCalibrationVersionCheck asserts a version-skewed file is rejected
// with a message naming the refit path.
func TestCalibrationVersionCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "calib.json")
	c := &profile.Calibration{Compute: profile.ChannelFit{Samples: 10, Throughput: 1e9}}
	if err := profile.SaveCalibration(path, c); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version in place.
	loaded, err := profile.LoadCalibration(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded.Version = profile.CalibrationVersion + 1
	raw, err := json.Marshal(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := profile.LoadCalibration(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version skew not rejected: %v", err)
	}
}
