package obs

import (
	"sync"
	"time"
)

// CostPrediction holds the optimizer's per-record cost-model outputs for
// one fused group: Eq. 5 training compute, the forward-only validation
// share, the materialized-read volume, and the Section 4.3.3 analytical
// peak-memory estimate (a per-group total, not per-record).
type CostPrediction struct {
	ComputeFLOPsPerRecord int64 `json:"compute_flops_per_record"`
	ForwardFLOPsPerRecord int64 `json:"forward_flops_per_record"`
	LoadBytesPerRecord    int64 `json:"load_bytes_per_record"`
	PeakMemoryBytes       int64 `json:"peak_memory_bytes"`
}

// Conformance accumulates predicted-vs-actual cost accounting per fused
// group. The executor registers each group's plan predictions once and
// meters actuals as it trains; Report renders the comparison.
type Conformance struct {
	mu     sync.Mutex
	groups map[string]*GroupConformance
	order  []string
	// flopsPerSec and readBytesPerSec are the cost-model rates predicted
	// seconds are derived from (the planner's profile.Hardware constants).
	// Zero rates leave the time-domain drift columns empty.
	flopsPerSec     float64
	readBytesPerSec float64
	// driftWarn is the drift-ratio threshold beyond which a group report
	// is flagged (ratio outside [1/driftWarn, driftWarn]). <= 1 disables.
	driftWarn float64
}

// NewConformance returns an empty conformance report.
func NewConformance() *Conformance {
	return &Conformance{groups: map[string]*GroupConformance{}}
}

// SetRates installs the planner's cost-model throughput constants
// (FLOP/s, read bytes/s) so group reports can convert predicted FLOPs and
// bytes into predicted seconds and compare them against measured wall
// time — the drift ratio that tells a stale calibration from a tight one.
func (c *Conformance) SetRates(flopsPerSec, readBytesPerSec float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.flopsPerSec = flopsPerSec
	c.readBytesPerSec = readBytesPerSec
	c.mu.Unlock()
}

// SetDriftWarn sets the drift-ratio warn threshold: a group whose
// actual/predicted time ratio falls outside [1/t, t] is flagged in the
// report. t <= 1 disables the warning.
func (c *Conformance) SetDriftWarn(t float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.driftWarn = t
	c.mu.Unlock()
}

// Group returns the named group's accumulator, creating it on first use
// (nil for a nil Conformance; the returned handle's methods are nil-safe).
func (c *Conformance) Group(name string) *GroupConformance {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.groups[name]
	if g == nil {
		g = &GroupConformance{name: name}
		c.groups[name] = g
		c.order = append(c.order, name)
	}
	return g
}

// GroupConformance accumulates one group's predictions and actuals.
type GroupConformance struct {
	mu   sync.Mutex
	name string
	pred CostPrediction

	trainRecords int64
	validRecords int64
	computeFLOPs int64
	loadBytes    int64
	peakMemory   int64 // high-water mark over all batches
	computeTime  time.Duration
	loadTime     time.Duration
}

// SetPredicted records the plan's cost predictions (last call wins).
func (g *GroupConformance) SetPredicted(p CostPrediction) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.pred = p
	g.mu.Unlock()
}

// AddTrainRecords meters n records through the training loop.
func (g *GroupConformance) AddTrainRecords(n int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.trainRecords += n
	g.mu.Unlock()
}

// AddValidRecords meters n records through validation.
func (g *GroupConformance) AddValidRecords(n int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.validRecords += n
	g.mu.Unlock()
}

// AddComputeFLOPs meters executed cost-model compute.
func (g *GroupConformance) AddComputeFLOPs(f int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.computeFLOPs += f
	g.mu.Unlock()
}

// AddLoadBytes meters materialized intermediates read.
func (g *GroupConformance) AddLoadBytes(b int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.loadBytes += b
	g.mu.Unlock()
}

// AddComputeTime meters wall time spent computing (forward/backward/step,
// feed waits excluded).
func (g *GroupConformance) AddComputeTime(d time.Duration) {
	if g == nil || d <= 0 {
		return
	}
	g.mu.Lock()
	g.computeTime += d
	g.mu.Unlock()
}

// AddLoadTime meters wall time spent assembling feeds (store reads plus
// host-side gathers) — the executor-side cost the c_load constant models.
func (g *GroupConformance) AddLoadTime(d time.Duration) {
	if g == nil || d <= 0 {
		return
	}
	g.mu.Lock()
	g.loadTime += d
	g.mu.Unlock()
}

// ObservePeakMemory raises the group's live-tensor high-water mark.
func (g *GroupConformance) ObservePeakMemory(bytes int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if bytes > g.peakMemory {
		g.peakMemory = bytes
	}
	g.mu.Unlock()
}

// GroupReport is one group's predicted-vs-actual comparison. Predicted
// totals expand the per-record predictions by the metered record counts
// (training records pay the Eq. 5 cost, validation records the forward
// share; both pay the load volume), so Delta == 0 means the executor did
// exactly what the plan costed.
type GroupReport struct {
	Group        string         `json:"group"`
	Predicted    CostPrediction `json:"predicted"`
	TrainRecords int64          `json:"train_records"`
	ValidRecords int64          `json:"valid_records"`

	PredictedComputeFLOPs int64   `json:"predicted_compute_flops"`
	ActualComputeFLOPs    int64   `json:"actual_compute_flops"`
	ComputeDelta          int64   `json:"compute_delta"`
	ComputeErrPct         float64 `json:"compute_err_pct"`

	PredictedLoadBytes int64   `json:"predicted_load_bytes"`
	ActualLoadBytes    int64   `json:"actual_load_bytes"`
	LoadDelta          int64   `json:"load_delta"`
	LoadErrPct         float64 `json:"load_err_pct"`

	PredictedPeakMemoryBytes int64   `json:"predicted_peak_memory_bytes"`
	ActualPeakMemoryBytes    int64   `json:"actual_peak_memory_bytes"`
	MemoryUsePct             float64 `json:"memory_use_pct"`

	// Time-domain drift: predicted seconds derive from the predicted FLOPs
	// and bytes via the planner's hardware rates (SetRates); actual seconds
	// are metered wall time. A drift ratio (actual/predicted) near 1 means
	// the calibration is tight; ratios far from 1 mean the planner is
	// costing against the wrong constants. Zero when rates or metered time
	// are absent.
	PredictedComputeSec float64 `json:"predicted_compute_sec,omitempty"`
	ActualComputeSec    float64 `json:"actual_compute_sec,omitempty"`
	ComputeDrift        float64 `json:"compute_drift,omitempty"`
	PredictedLoadSec    float64 `json:"predicted_load_sec,omitempty"`
	ActualLoadSec       float64 `json:"actual_load_sec,omitempty"`
	LoadDrift           float64 `json:"load_drift,omitempty"`
	// DriftWarn is set when a drift ratio falls outside the configured
	// [1/threshold, threshold] band (SetDriftWarn).
	DriftWarn bool `json:"drift_warn,omitempty"`
}

// Report renders every group's comparison in first-seen order (nil → nil).
func (c *Conformance) Report() []GroupReport {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]GroupReport, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, c.groups[name].report(c.flopsPerSec, c.readBytesPerSec, c.driftWarn))
	}
	return out
}

func (g *GroupConformance) report(flopsPerSec, readBytesPerSec, driftWarn float64) GroupReport {
	g.mu.Lock()
	defer g.mu.Unlock()
	r := GroupReport{
		Group:        g.name,
		Predicted:    g.pred,
		TrainRecords: g.trainRecords,
		ValidRecords: g.validRecords,

		PredictedComputeFLOPs: g.pred.ComputeFLOPsPerRecord*g.trainRecords + g.pred.ForwardFLOPsPerRecord*g.validRecords,
		ActualComputeFLOPs:    g.computeFLOPs,

		PredictedLoadBytes: g.pred.LoadBytesPerRecord * (g.trainRecords + g.validRecords),
		ActualLoadBytes:    g.loadBytes,

		PredictedPeakMemoryBytes: g.pred.PeakMemoryBytes,
		ActualPeakMemoryBytes:    g.peakMemory,
	}
	r.ComputeDelta = r.ActualComputeFLOPs - r.PredictedComputeFLOPs
	r.LoadDelta = r.ActualLoadBytes - r.PredictedLoadBytes
	r.ComputeErrPct = errPct(r.ComputeDelta, r.PredictedComputeFLOPs)
	r.LoadErrPct = errPct(r.LoadDelta, r.PredictedLoadBytes)
	if r.PredictedPeakMemoryBytes > 0 {
		r.MemoryUsePct = 100 * float64(r.ActualPeakMemoryBytes) / float64(r.PredictedPeakMemoryBytes)
	}
	r.ActualComputeSec = g.computeTime.Seconds()
	r.ActualLoadSec = g.loadTime.Seconds()
	if flopsPerSec > 0 {
		r.PredictedComputeSec = float64(r.PredictedComputeFLOPs) / flopsPerSec
	}
	if readBytesPerSec > 0 {
		r.PredictedLoadSec = float64(r.PredictedLoadBytes) / readBytesPerSec
	}
	if r.PredictedComputeSec > 0 && r.ActualComputeSec > 0 {
		r.ComputeDrift = r.ActualComputeSec / r.PredictedComputeSec
	}
	if r.PredictedLoadSec > 0 && r.ActualLoadSec > 0 {
		r.LoadDrift = r.ActualLoadSec / r.PredictedLoadSec
	}
	if driftWarn > 1 {
		for _, ratio := range []float64{r.ComputeDrift, r.LoadDrift} {
			if ratio > 0 && (ratio > driftWarn || ratio < 1/driftWarn) {
				r.DriftWarn = true
			}
		}
	}
	return r
}

func errPct(delta, predicted int64) float64 {
	if predicted == 0 {
		if delta == 0 {
			return 0
		}
		return 100
	}
	return 100 * float64(delta) / float64(predicted)
}

// MemTracker replays the executor's tensor allocations to a live-bytes
// high-water mark — the cross-check of the analytical B_mem estimate
// against real execution. It implements graph's AllocObserver interface.
// The tape reports logical tensor lifetimes, independent of the physical
// allocator: the step arena may serve a tensor from a recycled buffer, but
// the observer still sees a full Alloc/Free pair, so B_mem conformance is
// unchanged by pooling. Not safe for concurrent use: one tracker serves
// one training loop.
type MemTracker struct {
	live int64
	peak int64
}

// Reset starts a new measurement window with the given already-live base
// bytes (parameters, optimizer state, forward activations).
func (m *MemTracker) Reset(base int64) {
	if m == nil {
		return
	}
	m.live = base
	m.peak = base
}

// Alloc records n bytes coming live.
func (m *MemTracker) Alloc(n int64) {
	if m == nil {
		return
	}
	m.live += n
	if m.live > m.peak {
		m.peak = m.live
	}
}

// Free records n bytes released.
func (m *MemTracker) Free(n int64) {
	if m == nil {
		return
	}
	m.live -= n
}

// Live returns current live bytes.
func (m *MemTracker) Live() int64 {
	if m == nil {
		return 0
	}
	return m.live
}

// Peak returns the high-water mark since the last Reset.
func (m *MemTracker) Peak() int64 {
	if m == nil {
		return 0
	}
	return m.peak
}
