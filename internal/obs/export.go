package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"
)

// LiveSnapshot is one point-in-time view of a running tracer: the metrics
// registry, the cost-model conformance report so far, and the tree of
// spans still open — everything a long training run exposes while it
// executes instead of only post-mortem. AtNs is relative to the tracer's
// base time.
type LiveSnapshot struct {
	AtNs        int64         `json:"at_ns"`
	Metrics     *Snapshot     `json:"metrics,omitempty"`
	Conformance []GroupReport `json:"conformance,omitempty"`
	OpenSpans   []OpenSpan    `json:"open_spans,omitempty"`
}

// Live captures a snapshot of the tracer's current state (nil tracer →
// nil).
func (t *Tracer) Live() *LiveSnapshot {
	if t == nil {
		return nil
	}
	return &LiveSnapshot{
		AtNs:        now().Sub(t.base).Nanoseconds(),
		Metrics:     t.Registry().Snapshot(),
		Conformance: t.Conformance().Report(),
		OpenSpans:   t.OpenSpans(),
	}
}

// ExporterConfig configures a live telemetry exporter.
type ExporterConfig struct {
	// SnapshotPath, when non-empty, appends one LiveSnapshot JSON object
	// per Interval to this file (JSONL).
	SnapshotPath string
	// Interval between periodic snapshots; 0 defaults to 2s.
	Interval time.Duration
	// Listen, when non-empty, serves the live endpoints over HTTP on this
	// address (e.g. "localhost:6060" or ":0" for an ephemeral port):
	// /metrics (expvar-compatible flat JSON), /conformance, /spans, and
	// the stdlib pprof handlers under /debug/pprof/.
	Listen string
}

// Exporter periodically snapshots a tracer to JSONL and/or serves its
// live state over HTTP, so a multi-hour training run can be inspected
// while it executes. Start it with StartExporter, stop it with Close:
// Close joins the snapshot goroutine (writing one final snapshot), shuts
// the HTTP server down, and closes the snapshot file.
type Exporter struct {
	t   *Tracer
	cfg ExporterConfig

	mu  sync.Mutex // guards enc + err across ticks and the final flush
	f   *os.File
	enc *json.Encoder
	err error

	srv  *http.Server
	addr string

	stop chan struct{}
	wg   sync.WaitGroup
}

// StartExporter launches an exporter over the tracer. At least one of
// SnapshotPath and Listen must be set; a nil tracer is rejected (there is
// nothing to export).
func StartExporter(t *Tracer, cfg ExporterConfig) (*Exporter, error) {
	if t == nil {
		return nil, fmt.Errorf("obs: exporter needs a live tracer")
	}
	if cfg.SnapshotPath == "" && cfg.Listen == "" {
		return nil, fmt.Errorf("obs: exporter needs a snapshot path or a listen address")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	e := &Exporter{t: t, cfg: cfg, stop: make(chan struct{})}

	if cfg.SnapshotPath != "" {
		f, err := os.Create(cfg.SnapshotPath)
		if err != nil {
			return nil, fmt.Errorf("obs: create snapshot file: %w", err)
		}
		e.f = f
		e.enc = json.NewEncoder(f)
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			if e.f != nil {
				_ = e.f.Close() // nothing written yet; the listen error wins
			}
			return nil, fmt.Errorf("obs: exporter listen: %w", err)
		}
		e.addr = ln.Addr().String()
		e.srv = &http.Server{Handler: e.handler()}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			// Serve returns ErrServerClosed after Shutdown; anything else is
			// a real failure worth surfacing at Close.
			if err := e.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				e.mu.Lock()
				if e.err == nil {
					e.err = err
				}
				e.mu.Unlock()
			}
		}()
	}

	e.wg.Add(1)
	go e.snapshotLoop()
	return e, nil
}

// Addr returns the HTTP listener's resolved address ("" without Listen) —
// the ephemeral-port answer for ":0" configs.
func (e *Exporter) Addr() string { return e.addr }

// snapshotLoop writes one snapshot per interval until Close, then a final
// one so the file always ends with the run's last state.
func (e *Exporter) snapshotLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			e.writeSnapshot()
		case <-e.stop:
			e.writeSnapshot()
			return
		}
	}
}

// writeSnapshot appends one LiveSnapshot line (no-op without a file).
func (e *Exporter) writeSnapshot() {
	if e.enc == nil {
		return
	}
	snap := e.t.Live()
	e.mu.Lock()
	if e.err == nil {
		e.err = e.enc.Encode(snap)
	}
	e.mu.Unlock()
}

// Close stops the snapshot goroutine (flushing a final snapshot), shuts
// down the HTTP server, closes the snapshot file, and reports the first
// error any of them hit. Idempotent-unsafe: call once.
func (e *Exporter) Close() error {
	close(e.stop)
	if e.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := e.srv.Shutdown(ctx)
		cancel()
		e.mu.Lock()
		if e.err == nil {
			e.err = err
		}
		e.mu.Unlock()
	}
	e.wg.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.f != nil {
		if cerr := e.f.Close(); e.err == nil {
			e.err = cerr
		}
		e.f = nil
	}
	return e.err
}

// handler builds the live-endpoint mux.
func (e *Exporter) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		_, _ = fmt.Fprint(w, "nautilus live telemetry\n\n/metrics\n/conformance\n/spans\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, expvarMap(e.t.Registry().Snapshot()))
	})
	mux.HandleFunc("/conformance", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, e.t.Conformance().Report())
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, struct {
			Open  []OpenSpan `json:"open"`
			Stats []SpanStat `json:"stats"`
		}{e.t.OpenSpans(), e.t.SpanStats()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// expvarMap flattens a registry snapshot into the expvar convention: one
// top-level key per variable, scalars for counters and gauges, objects
// for histograms.
func expvarMap(s *Snapshot) map[string]any {
	out := map[string]any{}
	if s == nil {
		return out
	}
	for name, v := range s.Counters {
		out[name] = v
	}
	for name, v := range s.Gauges {
		out[name] = v
	}
	for name, h := range s.Histograms {
		out[name] = h
	}
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encode errors past the header are connection-level; nothing to do.
	_ = enc.Encode(v)
}
