package obs_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nautilus/internal/obs"
)

// TestExporterSnapshotsUnderLoad runs the exporter at a fast interval
// while worker goroutines hammer the tracer with spans, metrics, and
// conformance records — the shape `go test -race` needs to certify the
// live snapshot path. Close must join the snapshot goroutine and leave a
// parseable JSONL file whose last line reflects the finished run.
func TestExporterSnapshotsUnderLoad(t *testing.T) {
	tr := obs.New(nil)
	path := filepath.Join(t.TempDir(), "live.jsonl")
	e, err := obs.StartExporter(tr, obs.ExporterConfig{
		SnapshotPath: path,
		Interval:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gc := tr.Conformance().Group(fmt.Sprintf("g%d", w))
			for i := 0; i < perWorker; i++ {
				sp := tr.Start("load/op")
				tr.Registry().Counter("ops").Add(1)
				tr.Registry().Histogram("op_bytes", []int64{10, 100, 1000}).Observe(int64(i))
				gc.AddComputeFLOPs(1000)
				gc.AddComputeTime(time.Microsecond)
				tr.Samples().AddCompute(1000, time.Microsecond)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("exporter wrote no snapshots")
	}
	var last obs.LiveSnapshot
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("final snapshot is not valid JSON: %v", err)
	}
	if last.Metrics == nil || last.Metrics.Counters["ops"] != workers*perWorker {
		t.Errorf("final snapshot missed work: %+v", last.Metrics)
	}
	if len(last.Conformance) != workers {
		t.Errorf("final snapshot has %d conformance groups, want %d", len(last.Conformance), workers)
	}
	if len(last.OpenSpans) != 0 {
		t.Errorf("final snapshot reports %d open spans after all ended", len(last.OpenSpans))
	}
}

// TestExporterRejectsEmptyConfig pins the constructor's validation.
func TestExporterRejectsEmptyConfig(t *testing.T) {
	if _, err := obs.StartExporter(nil, obs.ExporterConfig{SnapshotPath: "x"}); err == nil {
		t.Error("nil tracer accepted")
	}
	if _, err := obs.StartExporter(obs.New(nil), obs.ExporterConfig{}); err == nil {
		t.Error("config with neither snapshot path nor listen address accepted")
	}
}

// TestExporterHTTPEndpoints is the live-endpoint smoke test: an exporter
// on an ephemeral port must serve /metrics (expvar-style flat JSON),
// /conformance, /spans, and the pprof index. Skipped under -short so the
// fast loop stays network-free.
func TestExporterHTTPEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("HTTP smoke test skipped in -short mode")
	}
	tr := obs.New(nil)
	tr.Registry().Counter("requests").Add(7)
	tr.Registry().Gauge("arena_bytes").Set(4096)
	gc := tr.Conformance().Group("g0")
	gc.SetPredicted(obs.CostPrediction{ComputeFLOPsPerRecord: 10})
	gc.AddTrainRecords(100)
	gc.AddComputeFLOPs(900)
	sp := tr.Start("live/root") // stays open so /spans has an open entry

	e, err := obs.StartExporter(tr, obs.ExporterConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		sp.End()
		if err := e.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if e.Addr() == "" {
		t.Fatal("exporter with listener reports empty Addr")
	}
	base := "http://" + e.Addr()

	get := func(path string) []byte {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return body
	}

	var metrics map[string]any
	if err := json.Unmarshal(get("/metrics"), &metrics); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	if v, ok := metrics["requests"].(float64); !ok || v != 7 {
		t.Errorf("/metrics[requests] = %v, want 7", metrics["requests"])
	}
	if v, ok := metrics["arena_bytes"].(float64); !ok || v != 4096 {
		t.Errorf("/metrics[arena_bytes] = %v, want 4096", metrics["arena_bytes"])
	}

	var conf []obs.GroupReport
	if err := json.Unmarshal(get("/conformance"), &conf); err != nil {
		t.Fatalf("/conformance is not JSON: %v", err)
	}
	if len(conf) != 1 || conf[0].Group != "g0" {
		t.Errorf("/conformance = %+v, want one g0 group", conf)
	}

	var spans struct {
		Open  []obs.OpenSpan `json:"open"`
		Stats []obs.SpanStat `json:"stats"`
	}
	if err := json.Unmarshal(get("/spans"), &spans); err != nil {
		t.Fatalf("/spans is not JSON: %v", err)
	}
	if len(spans.Open) != 1 || spans.Open[0].Name != "live/root" {
		t.Errorf("/spans open = %+v, want the live/root span", spans.Open)
	}

	if body := get("/debug/pprof/"); !strings.Contains(string(body), "goroutine") {
		t.Error("/debug/pprof/ index does not list profiles")
	}
}
