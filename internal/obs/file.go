package obs

import (
	"fmt"
	"os"
)

// Trace file formats accepted by OpenTracer.
const (
	FormatChrome = "chrome"
	FormatJSONL  = "jsonl"
)

// OpenTracer builds a tracer writing spans to the given file: format
// "chrome" emits a Chrome trace-event JSON (load in chrome://tracing or
// ui.perfetto.dev), "jsonl" one JSON object per span. An empty path yields
// a sinkless tracer (registry + conformance only, no span output); Close
// flushes and closes the file.
func OpenTracer(path, format string) (*Tracer, error) {
	if path == "" {
		return New(nil), nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create trace file: %w", err)
	}
	switch format {
	case FormatChrome, "":
		return New(NewChromeTraceSink(f)), nil
	case FormatJSONL:
		return New(NewJSONLSink(f)), nil
	default:
		_ = f.Close() // nothing written yet; the format error wins
		return nil, fmt.Errorf("obs: unknown trace format %q (want %s or %s)", format, FormatChrome, FormatJSONL)
	}
}

// WriteMetricsFile renders the tracer's full metrics report (registry
// snapshot, conformance, span stats) as indented JSON at path.
func WriteMetricsFile(path string, t *Tracer) error {
	data, err := MetricsJSON(t)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
