// Package obs is Nautilus's observability layer: hierarchical spans over
// the planner/materializer/trainer pipeline, a typed metrics registry
// (counters, gauges, histograms), and a cost-model conformance report that
// records the optimizer's predicted compute FLOPs / load bytes / peak
// memory per fused group next to the executor's metered actuals — the
// measured-vs-modeled accounting that keeps the Section 4.1 cost model
// honest (the paper's Figure 11 utilization story).
//
// Every entry point is nil-receiver safe: a nil *Tracer (and every handle
// derived from one) makes all span, registry, and conformance operations
// no-ops, so instrumented code pays only a nil check when observability is
// off. The benchmark in this package pins that fast path.
//
// obs imports no other nautilus package, so any layer (storage, graph,
// exec, opt, core) can depend on it without cycles.
package obs

import (
	"sort"
	"sync"
	"time"
)

// now is the package's single sanctioned wall-clock read. All span
// timestamps funnel through here; everything downstream works on
// durations relative to the tracer's base time.
func now() time.Time {
	//lint:ignore determinism obs is the reporting layer; every span timestamp funnels through this one annotated site
	return time.Now()
}

// Tracer is the root observability handle: it issues spans, owns the
// metrics registry and the conformance report, and forwards finished spans
// to its sink. A nil Tracer disables everything.
type Tracer struct {
	sink    Sink
	reg     *Registry
	conf    *Conformance
	samples *SampleLog
	base    time.Time

	mu     sync.Mutex
	nextID uint64
	// childTime accumulates, per *open* span, the total duration of its
	// ended children — the bookkeeping behind exclusive (self) time.
	childTime map[uint64]time.Duration
	// open tracks every span not yet ended, keyed by id, so the live
	// exporter can snapshot the in-flight span tree.
	open  map[uint64]*Span
	stats map[string]*SpanStat
}

// New creates a Tracer emitting finished spans to sink. sink may be nil:
// span stats, the registry, and conformance still accumulate, nothing is
// emitted.
func New(sink Sink) *Tracer {
	return &Tracer{
		sink:      sink,
		reg:       NewRegistry(),
		conf:      NewConformance(),
		samples:   &SampleLog{},
		base:      now(),
		childTime: map[uint64]time.Duration{},
		open:      map[uint64]*Span{},
		stats:     map[string]*SpanStat{},
	}
}

// Enabled reports whether the tracer is live (non-nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Registry returns the tracer's metrics registry (nil for a nil tracer;
// all registry operations are nil-safe in turn).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Conformance returns the tracer's cost-model conformance report (nil for
// a nil tracer).
func (t *Tracer) Conformance() *Conformance {
	if t == nil {
		return nil
	}
	return t.conf
}

// Samples returns the tracer's throughput-sample log (nil for a nil
// tracer; all SampleLog operations are nil-safe in turn).
func (t *Tracer) Samples() *SampleLog {
	if t == nil {
		return nil
	}
	return t.samples
}

// OpenSpan is one still-running span in a live snapshot. StartNs is
// relative to the tracer's base time; ElapsedNs is how long the span has
// been open at snapshot time.
type OpenSpan struct {
	ID        uint64 `json:"id"`
	Parent    uint64 `json:"parent,omitempty"`
	Track     int    `json:"track,omitempty"`
	Name      string `json:"name"`
	StartNs   int64  `json:"start_ns"`
	ElapsedNs int64  `json:"elapsed_ns"`
}

// OpenSpans snapshots every span currently open, ordered by id (creation
// order). Only creation-time fields are read, so a snapshot never races
// the owning goroutine's Attr calls.
func (t *Tracer) OpenSpans() []OpenSpan {
	if t == nil {
		return nil
	}
	at := now().Sub(t.base)
	t.mu.Lock()
	out := make([]OpenSpan, 0, len(t.open))
	for _, s := range t.open {
		out = append(out, OpenSpan{
			ID:        s.id,
			Parent:    s.parent,
			Track:     s.track,
			Name:      s.name,
			StartNs:   s.start.Nanoseconds(),
			ElapsedNs: (at - s.start).Nanoseconds(),
		})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Close flushes and closes the sink, if any.
func (t *Tracer) Close() error {
	if t == nil || t.sink == nil {
		return nil
	}
	return t.sink.Close()
}

// Start opens a root span.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(0, 0, name, attrs)
}

func (t *Tracer) newSpan(parent uint64, track int, name string, attrs []Attr) *Span {
	start := now().Sub(t.base)
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.childTime[id] = 0
	s := &Span{t: t, id: id, parent: parent, track: track, name: name, start: start, attrs: attrs}
	t.open[id] = s
	t.mu.Unlock()
	return s
}

// Span is one timed region of execution. Spans form a tree via Child; End
// computes the duration, charges it to the parent's child-time (for
// exclusive-time accounting), and emits the span to the sink. All methods
// are nil-receiver safe.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	track  int
	name   string
	start  time.Duration // since tracer base
	attrs  []Attr

	ended bool // guarded by t.mu
	dur   time.Duration
}

// Child opens a sub-span. Children may End after their parent; such tail
// time simply stops counting against the parent's exclusive time.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(s.id, s.track, name, attrs)
}

// SetTrack moves the span (and, by inheritance, its children) onto a
// separate display track — e.g. the prefetch pipeline next to the main
// training loop. Returns s for chaining.
func (s *Span) SetTrack(track int) *Span {
	if s != nil {
		s.track = track
	}
	return s
}

// Attr appends attributes to the span; call before End.
func (s *Span) Attr(attrs ...Attr) {
	if s != nil {
		s.attrs = append(s.attrs, attrs...)
	}
}

// End closes the span, updates the tracer's per-name statistics, and emits
// it to the sink. Idempotent; returns the span's duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	t := s.t
	end := now().Sub(t.base)
	t.mu.Lock()
	if s.ended {
		d := s.dur
		t.mu.Unlock()
		return d
	}
	s.ended = true
	s.dur = end - s.start
	child := t.childTime[s.id]
	delete(t.childTime, s.id)
	delete(t.open, s.id)
	excl := s.dur - child
	if excl < 0 {
		excl = 0
	}
	// Charge this span's time to the parent only while the parent is still
	// open (a prefetch child can outlive the batch that consumed it).
	if _, open := t.childTime[s.parent]; open && s.parent != 0 {
		t.childTime[s.parent] += s.dur
	}
	st := t.stats[s.name]
	if st == nil {
		st = &SpanStat{Name: s.name}
		t.stats[s.name] = st
	}
	st.Count++
	st.Total += s.dur
	st.Exclusive += excl
	if s.dur > st.Max {
		st.Max = s.dur
	}
	if t.sink != nil {
		t.sink.Emit(Event{
			ID:     s.id,
			Parent: s.parent,
			Track:  s.track,
			Name:   s.name,
			Start:  s.start,
			Dur:    s.dur,
			Attrs:  s.attrs,
		})
	}
	t.mu.Unlock()
	return s.dur
}

// Attr is one span attribute. Val holds a JSON-marshalable scalar.
type Attr struct {
	Key string
	Val any
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Val: v} }

// F64 builds a float attribute.
func F64(k string, v float64) Attr { return Attr{Key: k, Val: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Val: v} }
