package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// collectSink records emitted events in order.
type collectSink struct {
	events []Event
	closed bool
}

func (s *collectSink) Emit(e Event) { s.events = append(s.events, e) }
func (s *collectSink) Close() error { s.closed = true; return nil }

func TestSpanHierarchy(t *testing.T) {
	sink := &collectSink{}
	tr := New(sink)
	root := tr.Start("root", Str("k", "v"))
	child := root.Child("child", Int("i", 7))
	grand := child.Child("grand")
	grand.End()
	child.End()
	root.Attr(Bool("done", true))
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if !sink.closed {
		t.Error("Close did not reach the sink")
	}
	if len(sink.events) != 3 {
		t.Fatalf("emitted %d events, want 3", len(sink.events))
	}
	// Children end (and emit) before parents.
	byName := map[string]Event{}
	for _, e := range sink.events {
		byName[e.Name] = e
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Errorf("child.Parent = %d, want root id %d", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grand"].Parent != byName["child"].ID {
		t.Errorf("grand.Parent = %d, want child id %d", byName["grand"].Parent, byName["child"].ID)
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root.Parent = %d, want 0", byName["root"].Parent)
	}
	if got := byName["root"].Attrs; len(got) != 2 || got[0].Key != "k" || got[1].Key != "done" {
		t.Errorf("root attrs = %+v", got)
	}
	for name, e := range byName {
		if e.Dur < 0 {
			t.Errorf("%s has negative duration %v", name, e.Dur)
		}
	}
}

func TestSpanStatsExclusiveTime(t *testing.T) {
	tr := New(nil)
	root := tr.Start("outer")
	c1 := root.Child("inner")
	c1.End()
	c2 := root.Child("inner")
	c2.End()
	root.End()

	stats := map[string]SpanStat{}
	for _, st := range tr.SpanStats() {
		stats[st.Name] = st
	}
	outer, inner := stats["outer"], stats["inner"]
	if inner.Count != 2 || outer.Count != 1 {
		t.Fatalf("counts: outer %d inner %d", outer.Count, inner.Count)
	}
	// Exclusive-time identity: the parent's child-time bookkeeping uses the
	// same clock readings as the children's totals, so it holds exactly.
	if outer.Exclusive != outer.Total-inner.Total {
		t.Errorf("outer exclusive %v != total %v - children %v", outer.Exclusive, outer.Total, inner.Total)
	}
	if inner.Exclusive != inner.Total {
		t.Errorf("leaf exclusive %v != total %v", inner.Exclusive, inner.Total)
	}
	if inner.Max > inner.Total {
		t.Errorf("max %v exceeds total %v", inner.Max, inner.Total)
	}
}

func TestEndIdempotent(t *testing.T) {
	sink := &collectSink{}
	tr := New(sink)
	s := tr.Start("s")
	d1 := s.End()
	d2 := s.End()
	if d1 != d2 {
		t.Errorf("second End returned %v, want the recorded %v", d2, d1)
	}
	if len(sink.events) != 1 {
		t.Errorf("emitted %d events, want 1", len(sink.events))
	}
}

// TestChildOutlivesParent pins the prefetch-shaped lifecycle: a child that
// ends after its parent must not corrupt the exclusive-time bookkeeping.
func TestChildOutlivesParent(t *testing.T) {
	tr := New(nil)
	root := tr.Start("root")
	child := root.Child("tail")
	root.End()
	child.End()
	tr.mu.Lock()
	leaked := len(tr.childTime)
	tr.mu.Unlock()
	if leaked != 0 {
		t.Errorf("childTime retains %d entries after all spans ended", leaked)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	s := tr.Start("x", Str("a", "b"))
	if s != nil {
		t.Fatal("nil tracer issued a span")
	}
	c := s.Child("y")
	c.Attr(Int("i", 1))
	c.SetTrack(3)
	if d := c.End(); d != 0 {
		t.Error("nil span End returned nonzero duration")
	}
	if err := tr.Close(); err != nil {
		t.Error(err)
	}
	reg := tr.Registry()
	reg.Counter("c").Add(1)
	reg.Gauge("g").SetMax(5)
	reg.Histogram("h", []int64{1}).Observe(3)
	if reg.Snapshot() != nil {
		t.Error("nil registry snapshot not nil")
	}
	conf := tr.Conformance()
	g := conf.Group("g")
	g.SetPredicted(CostPrediction{})
	g.AddTrainRecords(1)
	g.AddComputeFLOPs(1)
	g.ObservePeakMemory(1)
	if conf.Report() != nil {
		t.Error("nil conformance report not nil")
	}
	var m *MemTracker
	m.Reset(1)
	m.Alloc(2)
	m.Free(1)
	if m.Peak() != 0 || m.Live() != 0 {
		t.Error("nil MemTracker returned nonzero")
	}
	if tr.SpanStats() != nil {
		t.Error("nil tracer span stats not nil")
	}
	if err := WriteSummary(&bytes.Buffer{}, tr, 5); err != nil {
		t.Error(err)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONLSink(&buf))
	root := tr.Start("a", Int("n", 42))
	root.Child("b").End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var e jsonlEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if e.Name == "" || e.ID == 0 {
			t.Errorf("line %q missing name or id", line)
		}
	}
	var last jsonlEvent
	if err := json.Unmarshal([]byte(lines[1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Name != "a" || last.Attrs["n"] != float64(42) {
		t.Errorf("root line = %+v", last)
	}
}

func TestChromeTraceSink(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewChromeTraceSink(&buf))
	root := tr.Start("group", Str("g", "m1"))
	root.Child("batch").End()
	pf := root.Child("prefetch").SetTrack(2)
	pf.End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid trace-event JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("%d trace events, want 3", len(doc.TraceEvents))
	}
	tids := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %q has ph %q, want X", e.Name, e.Ph)
		}
		if e.Ts < 0 || e.Dur < 0 {
			t.Errorf("event %q has negative ts/dur", e.Name)
		}
		tids[e.Name] = e.TID
	}
	if tids["prefetch"] == tids["batch"] {
		t.Errorf("prefetch and batch share tid %d; tracks not mapped", tids["batch"])
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("reads").Add(3)
	r.Counter("reads").Add(4)
	if got := r.Counter("reads").Value(); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	g := r.Gauge("peak")
	g.SetMax(10)
	g.SetMax(5)
	if got := g.Value(); got != 10 {
		t.Errorf("gauge SetMax kept %d, want 10", got)
	}
	g.Set(3)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge Set kept %d, want 3", got)
	}
	h := r.Histogram("lat", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot()
	hs := s.Histograms["lat"]
	if hs.Count != 4 || hs.Sum != 1022 {
		t.Errorf("histogram count/sum = %d/%d, want 4/1022", hs.Count, hs.Sum)
	}
	if want := []int64{2, 1, 1}; len(hs.Counts) != 3 || hs.Counts[0] != want[0] || hs.Counts[1] != want[1] || hs.Counts[2] != want[2] {
		t.Errorf("bucket counts = %v, want %v", hs.Counts, want)
	}
	if s.Counters["reads"] != 7 || s.Gauges["peak"] != 3 {
		t.Errorf("snapshot = %+v", s)
	}
	// Same name returns the same instrument.
	if r.Histogram("lat", nil) != h {
		t.Error("histogram lookup did not return the existing instance")
	}
}

func TestConformanceReport(t *testing.T) {
	c := NewConformance()
	g := c.Group("m1")
	g.SetPredicted(CostPrediction{
		ComputeFLOPsPerRecord: 100,
		ForwardFLOPsPerRecord: 40,
		LoadBytesPerRecord:    8,
		PeakMemoryBytes:       1000,
	})
	g.AddTrainRecords(10)
	g.AddComputeFLOPs(100 * 10)
	g.AddLoadBytes(8 * 10)
	g.AddValidRecords(5)
	g.AddComputeFLOPs(40 * 5)
	g.AddLoadBytes(8 * 5)
	g.ObservePeakMemory(700)
	g.ObservePeakMemory(600) // lower observation must not regress the mark

	reports := c.Report()
	if len(reports) != 1 {
		t.Fatalf("%d reports, want 1", len(reports))
	}
	r := reports[0]
	if r.PredictedComputeFLOPs != 1200 || r.ActualComputeFLOPs != 1200 || r.ComputeDelta != 0 {
		t.Errorf("compute: %+v", r)
	}
	if r.PredictedLoadBytes != 120 || r.LoadDelta != 0 {
		t.Errorf("load: %+v", r)
	}
	if r.ActualPeakMemoryBytes != 700 || r.MemoryUsePct != 70 {
		t.Errorf("memory: %+v", r)
	}
	// A drifting executor shows a nonzero delta and error percentage.
	g.AddComputeFLOPs(60)
	r = c.Report()[0]
	if r.ComputeDelta != 60 || r.ComputeErrPct != 5 {
		t.Errorf("drift: delta %d errpct %v", r.ComputeDelta, r.ComputeErrPct)
	}
}

func TestMemTracker(t *testing.T) {
	m := &MemTracker{}
	m.Reset(100)
	m.Alloc(50)
	m.Alloc(25)
	m.Free(60)
	m.Alloc(10)
	if m.Live() != 125 {
		t.Errorf("live = %d, want 125", m.Live())
	}
	if m.Peak() != 175 {
		t.Errorf("peak = %d, want 175", m.Peak())
	}
	m.Reset(10)
	if m.Peak() != 10 || m.Live() != 10 {
		t.Errorf("after reset live/peak = %d/%d, want 10/10", m.Live(), m.Peak())
	}
}

func TestWriteSummaryAndMetricsJSON(t *testing.T) {
	tr := New(nil)
	s := tr.Start("plan/workload")
	s.Child("plan/mat_opt").End()
	s.End()
	tr.Registry().Counter("trainer.compute_flops").Add(123)
	gc := tr.Conformance().Group("g")
	gc.SetPredicted(CostPrediction{ComputeFLOPsPerRecord: 2, PeakMemoryBytes: 10})
	gc.AddTrainRecords(3)
	gc.AddComputeFLOPs(6)
	gc.ObservePeakMemory(4)

	var buf bytes.Buffer
	if err := WriteSummary(&buf, tr, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"plan/workload", "cost-model conformance", "delta +0", "40.0% of bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}

	b, err := MetricsJSON(tr)
	if err != nil {
		t.Fatal(err)
	}
	var rep MetricsReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.Counters["trainer.compute_flops"] != 123 {
		t.Errorf("metrics JSON counters = %+v", rep.Metrics.Counters)
	}
	if len(rep.Conformance) != 1 || rep.Conformance[0].ComputeDelta != 0 {
		t.Errorf("metrics JSON conformance = %+v", rep.Conformance)
	}
	if len(rep.Spans) != 2 {
		t.Errorf("metrics JSON spans = %+v", rep.Spans)
	}
}
