package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a typed metrics registry: monotonically named counters,
// gauges, and fixed-bucket histograms. Lookups create on first use; handle
// methods are lock-free atomics. A nil Registry hands out nil instruments
// whose methods no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (ascending) on first use. Later calls return the existing
// histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value (or max-value) int64.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetMax raises the gauge to v if v exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts int64 observations into fixed buckets: counts[i] holds
// observations ≤ bounds[i]; the final slot is the overflow bucket.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Snapshot is a point-in-time copy of a registry, JSON-marshalable for the
// -metrics output.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot copies one histogram's buckets. Counts has
// len(Bounds)+1 entries; the last is the overflow bucket. P50/P95/P99
// are bucket-interpolated quantile estimates (see Quantile).
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts
// by linear interpolation inside the bucket holding the target rank, the
// usual fixed-bucket estimator: exact to bucket resolution, clamped to
// the top finite bound when the rank lands in the overflow bucket.
// Returns 0 for an empty histogram.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count <= 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var seen float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			if i >= len(h.Bounds) {
				// Overflow bucket: no upper bound to interpolate toward.
				return float64(h.Bounds[len(h.Bounds)-1])
			}
			lo := float64(0)
			if i > 0 {
				lo = float64(h.Bounds[i-1])
			}
			hi := float64(h.Bounds[i])
			frac := (rank - seen) / float64(c)
			return lo + (hi-lo)*frac
		}
		seen += float64(c)
	}
	return float64(h.Bounds[len(h.Bounds)-1])
}

// Snapshot copies the registry's current state (nil for a nil registry).
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{
				Count:  h.count.Load(),
				Sum:    h.sum.Load(),
				Bounds: append([]int64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			hs.P50 = hs.Quantile(0.50)
			hs.P95 = hs.Quantile(0.95)
			hs.P99 = hs.Quantile(0.99)
			s.Histograms[name] = hs
		}
	}
	return s
}
