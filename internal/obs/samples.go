package obs

import (
	"sync"
	"time"
)

// Sample is one measured unit of throughput evidence: Work units (FLOPs
// for the compute channel, bytes for the read/write channels) done in
// DurNs of wall time. The calibration fitter consumes these to recover
// the hardware constants the cost model should plan with.
type Sample struct {
	Work  int64 `json:"work"`
	DurNs int64 `json:"dur_ns"`
}

// Ratio returns the sample's throughput in work units per second, or 0
// for a degenerate sample.
func (s Sample) Ratio() float64 {
	if s.DurNs <= 0 {
		return 0
	}
	return float64(s.Work) / (float64(s.DurNs) / 1e9)
}

// SampleLog accumulates throughput samples on three channels — compute
// (FLOPs vs wall time), read (bytes vs store-read time), and write (bytes
// vs store-append time). The executor and the tensor store feed it from
// their span timings; internal/obs/calib fits a profile.Hardware from it.
// A nil SampleLog ignores everything.
type SampleLog struct {
	mu      sync.Mutex
	compute []Sample
	read    []Sample
	write   []Sample
}

// add appends a sample, dropping degenerate measurements (non-positive
// work or duration carry no throughput evidence).
func (l *SampleLog) add(dst *[]Sample, work int64, d time.Duration) {
	if l == nil || work <= 0 || d <= 0 {
		return
	}
	l.mu.Lock()
	*dst = append(*dst, Sample{Work: work, DurNs: d.Nanoseconds()})
	l.mu.Unlock()
}

// AddCompute records work FLOPs executed in d.
func (l *SampleLog) AddCompute(work int64, d time.Duration) {
	if l == nil {
		return
	}
	l.add(&l.compute, work, d)
}

// AddRead records work bytes read from the store in d.
func (l *SampleLog) AddRead(work int64, d time.Duration) {
	if l == nil {
		return
	}
	l.add(&l.read, work, d)
}

// AddWrite records work bytes written to the store in d.
func (l *SampleLog) AddWrite(work int64, d time.Duration) {
	if l == nil {
		return
	}
	l.add(&l.write, work, d)
}

// Compute returns a copy of the compute-channel samples.
func (l *SampleLog) Compute() []Sample { return l.copyOf(&l.compute) }

// Read returns a copy of the read-channel samples.
func (l *SampleLog) Read() []Sample { return l.copyOf(&l.read) }

// Write returns a copy of the write-channel samples.
func (l *SampleLog) Write() []Sample { return l.copyOf(&l.write) }

func (l *SampleLog) copyOf(src *[]Sample) []Sample {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Sample(nil), *src...)
}
