package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Event is one finished span as handed to a Sink. Start is relative to the
// tracer's base time.
type Event struct {
	ID     uint64
	Parent uint64
	Track  int
	Name   string
	Start  time.Duration
	Dur    time.Duration
	Attrs  []Attr
}

// Sink receives finished spans. The tracer serializes Emit calls under its
// own mutex, so sinks need no locking of their own.
type Sink interface {
	Emit(Event)
	Close() error
}

// attrMap flattens attributes for JSON output.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Val
	}
	return m
}

// jsonlEvent is the JSON-lines wire form of an Event.
type jsonlEvent struct {
	Name    string         `json:"name"`
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Track   int            `json:"track,omitempty"`
	StartNs int64          `json:"start_ns"`
	DurNs   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// JSONLSink writes one JSON object per span per line — the grep/jq-friendly
// trace format.
type JSONLSink struct {
	enc *json.Encoder
	c   io.Closer
	err error
}

// NewJSONLSink wraps w. If w is also an io.Closer, Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{enc: json.NewEncoder(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit writes the event as one line.
func (s *JSONLSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(jsonlEvent{
		Name:    e.Name,
		ID:      e.ID,
		Parent:  e.Parent,
		Track:   e.Track,
		StartNs: e.Start.Nanoseconds(),
		DurNs:   e.Dur.Nanoseconds(),
		Attrs:   attrMap(e.Attrs),
	})
}

// Close reports the first write error and closes the underlying writer if
// it is closable.
func (s *JSONLSink) Close() error {
	if s.c != nil {
		if cerr := s.c.Close(); s.err == nil {
			s.err = cerr
		}
		s.c = nil
	}
	return s.err
}

// chromeEvent is one Chrome trace-event ("X" = complete event). Timestamps
// and durations are in microseconds, per the trace-event format.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTraceSink streams spans in Chrome trace-event JSON
// (`{"traceEvents":[...]}`), loadable in chrome://tracing or
// ui.perfetto.dev. Each obs track becomes one tid.
type ChromeTraceSink struct {
	w   io.Writer
	c   io.Closer
	n   int
	err error
}

// NewChromeTraceSink wraps w, writing the opening of the JSON envelope
// immediately. If w is also an io.Closer, Close closes it.
func NewChromeTraceSink(w io.Writer) *ChromeTraceSink {
	s := &ChromeTraceSink{w: w}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	_, s.err = io.WriteString(w, `{"traceEvents":[`)
	return s
}

// Emit appends one complete event.
func (s *ChromeTraceSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	b, err := json.Marshal(chromeEvent{
		Name: e.Name,
		Ph:   "X",
		PID:  1,
		TID:  e.Track + 1,
		Ts:   float64(e.Start.Nanoseconds()) / 1e3,
		Dur:  float64(e.Dur.Nanoseconds()) / 1e3,
		Args: attrMap(e.Attrs),
	})
	if err != nil {
		s.err = err
		return
	}
	if s.n > 0 {
		if _, s.err = io.WriteString(s.w, ","); s.err != nil {
			return
		}
	}
	s.n++
	_, s.err = s.w.Write(b)
}

// Close terminates the JSON envelope and closes the underlying writer if
// it is closable.
func (s *ChromeTraceSink) Close() error {
	if s.err == nil {
		_, s.err = io.WriteString(s.w, `],"displayTimeUnit":"ms"}`)
	}
	if s.c != nil {
		if cerr := s.c.Close(); s.err == nil {
			s.err = cerr
		}
		s.c = nil
	}
	if s.err != nil {
		return fmt.Errorf("obs: chrome trace sink: %w", s.err)
	}
	return nil
}
