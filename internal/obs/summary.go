package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// SpanStat aggregates every span of one name: count, total (inclusive)
// time, exclusive time (total minus time spent in child spans), and the
// longest single occurrence.
type SpanStat struct {
	Name      string        `json:"name"`
	Count     int64         `json:"count"`
	Total     time.Duration `json:"total_ns"`
	Exclusive time.Duration `json:"exclusive_ns"`
	Max       time.Duration `json:"max_ns"`
}

// SpanStats returns per-name statistics over all ended spans, sorted by
// exclusive time descending (nil tracer → nil).
func (t *Tracer) SpanStats() []SpanStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanStat, 0, len(t.stats))
	for _, st := range t.stats {
		out = append(out, *st)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Exclusive != out[j].Exclusive {
			return out[i].Exclusive > out[j].Exclusive
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// errWriter accumulates the first write error so report rendering can
// check once at the end instead of after every line.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// WriteSummary prints the human-readable observability summary: the top
// spans by exclusive time, then the cost-model conformance table.
func WriteSummary(w io.Writer, t *Tracer, topN int) error {
	if t == nil {
		return nil
	}
	stats := t.SpanStats()
	if len(stats) > 0 {
		var grand time.Duration
		for _, st := range stats {
			grand += st.Exclusive
		}
		if topN > 0 && len(stats) > topN {
			stats = stats[:topN]
		}
		ew := &errWriter{w: w}
		ew.printf("-- top spans by exclusive time --\n")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		tew := &errWriter{w: tw}
		tew.printf("span\tcount\ttotal\texclusive\texcl%%\tmax\n")
		for _, st := range stats {
			pct := 0.0
			if grand > 0 {
				pct = 100 * float64(st.Exclusive) / float64(grand)
			}
			tew.printf("%s\t%d\t%v\t%v\t%.1f%%\t%v\n",
				st.Name, st.Count, st.Total.Round(time.Microsecond),
				st.Exclusive.Round(time.Microsecond), pct, st.Max.Round(time.Microsecond))
		}
		for _, err := range []error{ew.err, tew.err, tw.Flush()} {
			if err != nil {
				return err
			}
		}
	}
	if err := writeHistograms(w, t.Registry().Snapshot()); err != nil {
		return err
	}
	return WriteConformance(w, t.Conformance())
}

// writeHistograms prints every registry histogram with its count, mean,
// and bucket-interpolated p50/p95/p99 estimates.
func writeHistograms(w io.Writer, s *Snapshot) error {
	if s == nil || len(s.Histograms) == 0 {
		return nil
	}
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	ew := &errWriter{w: w}
	ew.printf("-- histograms --\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	tew := &errWriter{w: tw}
	tew.printf("histogram\tcount\tmean\tp50\tp95\tp99\n")
	for _, name := range names {
		h := s.Histograms[name]
		mean := 0.0
		if h.Count > 0 {
			mean = float64(h.Sum) / float64(h.Count)
		}
		tew.printf("%s\t%d\t%.3g\t%.3g\t%.3g\t%.3g\n", name, h.Count, mean, h.P50, h.P95, h.P99)
	}
	for _, err := range []error{ew.err, tew.err, tw.Flush()} {
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteConformance prints the predicted-vs-actual cost-model comparison,
// one block per fused group.
func WriteConformance(w io.Writer, c *Conformance) error {
	reports := c.Report()
	if len(reports) == 0 {
		return nil
	}
	ew := &errWriter{w: w}
	ew.printf("-- cost-model conformance (predicted vs actual) --\n")
	for _, r := range reports {
		ew.printf("group %s (%d train + %d valid records)\n", r.Group, r.TrainRecords, r.ValidRecords)
		ew.printf("  compute FLOPs  predicted %d  actual %d  delta %+d (%.2f%%)\n",
			r.PredictedComputeFLOPs, r.ActualComputeFLOPs, r.ComputeDelta, r.ComputeErrPct)
		ew.printf("  load bytes     predicted %d  actual %d  delta %+d (%.2f%%)\n",
			r.PredictedLoadBytes, r.ActualLoadBytes, r.LoadDelta, r.LoadErrPct)
		ew.printf("  peak memory    bound %d  metered %d (%.1f%% of bound)\n",
			r.PredictedPeakMemoryBytes, r.ActualPeakMemoryBytes, r.MemoryUsePct)
		if r.ComputeDrift > 0 || r.LoadDrift > 0 {
			warn := ""
			if r.DriftWarn {
				warn = "  DRIFT WARNING: calibrate the hardware profile (see -calibrate-out)"
			}
			ew.printf("  time drift     compute %.3fs pred / %.3fs actual (x%.2f)  load %.3fs pred / %.3fs actual (x%.2f)%s\n",
				r.PredictedComputeSec, r.ActualComputeSec, r.ComputeDrift,
				r.PredictedLoadSec, r.ActualLoadSec, r.LoadDrift, warn)
		}
	}
	return ew.err
}

// MetricsReport is the -metrics JSON document: the registry snapshot, the
// conformance report, and per-name span statistics.
type MetricsReport struct {
	Metrics     *Snapshot     `json:"metrics"`
	Conformance []GroupReport `json:"conformance"`
	Spans       []SpanStat    `json:"spans"`
}

// MetricsJSON marshals the tracer's registry, conformance report, and span
// statistics as an indented JSON document.
func MetricsJSON(t *Tracer) ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("obs: metrics JSON of nil tracer")
	}
	return json.MarshalIndent(MetricsReport{
		Metrics:     t.Registry().Snapshot(),
		Conformance: t.Conformance().Report(),
		Spans:       t.SpanStats(),
	}, "", "  ")
}
