package opt

import (
	"fmt"
	"testing"

	"nautilus/internal/graph"
	"nautilus/internal/mincut"
	"nautilus/internal/mmg"
	"nautilus/internal/models"
	"nautilus/internal/profile"
)

// benchWorkload builds n paper-scale feature-transfer candidates.
func benchWorkload(b *testing.B, n int) ([]WorkItem, *mmg.MultiModel) {
	b.Helper()
	hub := models.NewBERTHub(models.BERTBase())
	strats := []models.FeatureStrategy{models.FeatLastHidden, models.FeatSecondLastHidden, models.FeatSumLast4}
	var items []WorkItem
	var ms []*graph.Model
	for i := 0; i < n; i++ {
		m, err := hub.FeatureTransferModel(fmt.Sprintf("b%d", i), strats[i%len(strats)], 9, int64(300+i))
		if err != nil {
			b.Fatal(err)
		}
		prof, err := profile.Profile(m, profile.DefaultHardware())
		if err != nil {
			b.Fatal(err)
		}
		items = append(items, WorkItem{Model: m, Prof: prof, Epochs: 5, BatchSize: 16, LR: 5e-5})
		ms = append(ms, m)
	}
	multi, err := mmg.Build(ms...)
	if err != nil {
		b.Fatal(err)
	}
	return items, multi
}

func BenchmarkSolveReusePlanBERTBase(b *testing.B) {
	items, mm := benchWorkload(b, 1)
	sigs := map[graph.Signature]bool{}
	for _, n := range mm.MaterializableNodes() {
		sigs[mm.Sig[n]] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveReusePlan(items[0].Prof, sigs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeMaterialization12Models(b *testing.B) {
	items, mm := benchWorkload(b, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimizeMaterialization(mm, items, MatConfig{
			DiskBudgetBytes: 25 << 30, MaxRecords: 5000,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFuseModels12(b *testing.B) {
	items, mm := benchWorkload(b, 12)
	res, err := OptimizeMaterialization(mm, items, MatConfig{DiskBudgetBytes: 25 << 30, MaxRecords: 5000})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FuseModels(items, res.Sigs, FuseConfig{MemBudgetBytes: 10 << 30, OptimizerSlotBytes: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnergyMinCut(b *testing.B) {
	// Representative reuse-plan energy: chain of 40 nodes with branching.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := mincut.NewEnergy(80)
		for v := 0; v < 80; v++ {
			e.AddUnary(v, int64(v%7), int64((v*13)%11))
			if v > 0 {
				e.AddImplication(v, v-1)
			}
		}
		if _, _, err := e.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
