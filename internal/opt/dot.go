package opt

import (
	"fmt"
	"sort"
	"strings"
)

// PlanDOT renders a reuse plan as a Graphviz DOT graph: computed nodes are
// solid (trainable ones bold red), loaded nodes are filled blue, pruned
// nodes are dashed gray. Useful for inspecting optimizer decisions:
//
//	nautilus-plan -workload FTR-2 -dot | dot -Tsvg > plan.svg
func PlanDOT(p *Plan) string {
	m := p.Model()
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", m.Name)
	b.WriteString("  rankdir=BT;\n  node [shape=box, fontsize=10];\n")

	nodes := m.Reachable()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	for _, n := range nodes {
		attrs := []string{fmt.Sprintf("label=%q", n.Name+"\\n"+n.Layer.Type())}
		switch p.Actions[n] {
		case Loaded:
			attrs = append(attrs, `style=filled`, `fillcolor="#cfe2ff"`)
		case Pruned:
			attrs = append(attrs, `style=dashed`, `color=gray`, `fontcolor=gray`)
		case Computed:
			if !n.Frozen() {
				attrs = append(attrs, `penwidth=2`, `color="#c0392b"`)
			}
		}
		fmt.Fprintf(&b, "  %q [%s];\n", n.Name, strings.Join(attrs, ", "))
	}
	for _, n := range nodes {
		if p.Actions[n] == Pruned {
			continue
		}
		for _, par := range n.Parents {
			style := ""
			if p.Actions[par] == Pruned {
				style = " [style=dashed, color=gray]"
			}
			fmt.Fprintf(&b, "  %q -> %q%s;\n", par.Name, n.Name, style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
