package opt

import (
	"errors"
	"math"
	"sort"
	"strings"

	"nautilus/internal/graph"
)

// DefaultFuseStateBudget bounds how many multi-model candidate groups the
// enum strategy will profile and plan-solve before a bucket degrades to
// greedy. Each candidate build is a full profile + min-cut solve, so this
// is the knob that trades search optimality for planning latency.
const DefaultFuseStateBudget = 4096

// maxEnumBucketItems is the bitmask width cap: a compatibility bucket
// larger than this always falls back to greedy regardless of budget.
const maxEnumBucketItems = 20

// errFuseStateBudget aborts a bucket's partition search when the shared
// state budget runs out mid-enumeration; the bucket is re-solved greedily.
var errFuseStateBudget = errors.New("opt: fuse state budget exhausted")

// EnumFuser is the cost-based fusion plan enumerator (the SystemML
// fusion-plan idea applied to FUSE OPT). It splits the workload into
// compatibility buckets (equal batch size and epochs — only those items
// can ever fuse), and per bucket selects the minimum-TotalPlanCost
// partition into fused groups by dynamic programming over member subsets.
// Candidate groups are memoized on their member set so each subset is
// profiled and plan-solved at most once, and a branch-and-bound check
// (each group costs at least its most expensive member's singleton plan)
// prunes sub-partitions that cannot beat the bucket's incumbent. A state
// budget caps total candidate builds; a bucket that would (or does)
// exceed it degrades gracefully to the greedy Algorithm 1 result, which
// the DP search space contains — so the enum strategy never produces a
// costlier plan than GreedyFuser.
type EnumFuser struct {
	// StateBudget caps multi-model candidate group builds across the whole
	// Fuse call; 0 means DefaultFuseStateBudget.
	StateBudget int
}

// Name implements Fuser.
func (f *EnumFuser) Name() string { return FuserEnum }

// Fuse implements Fuser.
func (f *EnumFuser) Fuse(items []WorkItem, matSigs map[graph.Signature]bool, cfg FuseConfig) ([]*FusedGroup, error) {
	if cfg.Stats != nil {
		cfg.Stats.Strategy = FuserEnum
	}
	budget := f.StateBudget
	if budget == 0 {
		budget = DefaultFuseStateBudget
	}
	e := &enumState{
		matSigs:   matSigs,
		cfg:       cfg,
		remaining: budget,
		cache:     map[string]*FusedGroup{},
	}
	var out []*FusedGroup
	for _, bucket := range compatBuckets(items) {
		groups, err := e.fuseBucket(bucket)
		if err != nil {
			return nil, err
		}
		out = append(out, groups...)
	}
	sortGroups(out)
	return out, nil
}

// enumState is one Fuse call's search state: the group memo (keyed by the
// member set) and the remaining candidate-build budget, shared across
// buckets.
type enumState struct {
	matSigs   map[graph.Signature]bool
	cfg       FuseConfig
	remaining int
	cache     map[string]*FusedGroup
}

// compatBuckets splits items into fusibility classes — equal batch size
// and equal epoch count — in deterministic order, with each bucket's
// items sorted by model name so bitmask positions are stable.
func compatBuckets(items []WorkItem) [][]WorkItem {
	type key struct{ batch, epochs int }
	byKey := map[key][]WorkItem{}
	var keys []key
	for _, it := range items {
		k := key{it.BatchSize, it.Epochs}
		if byKey[k] == nil {
			keys = append(keys, k)
		}
		byKey[k] = append(byKey[k], it)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].batch != keys[j].batch {
			return keys[i].batch < keys[j].batch
		}
		return keys[i].epochs < keys[j].epochs
	})
	buckets := make([][]WorkItem, 0, len(keys))
	for _, k := range keys {
		b := byKey[k]
		sort.Slice(b, func(i, j int) bool { return b[i].Model.Name < b[j].Model.Name })
		buckets = append(buckets, b)
	}
	return buckets
}

// fuseBucket partitions one compatibility bucket, enumerating when the
// budget allows and falling back to greedy otherwise.
func (e *enumState) fuseBucket(items []WorkItem) ([]*FusedGroup, error) {
	if len(items) == 1 {
		g, err := e.buildCached(items)
		if err != nil {
			return nil, err
		}
		return []*FusedGroup{g}, nil
	}
	// A bucket of n items can require up to 2^n-1 candidate builds; if
	// that cannot fit the remaining budget, don't start a search that is
	// doomed to abort.
	if len(items) > maxEnumBucketItems || (1<<uint(len(items)))-1 > e.remaining {
		return e.fallbackGreedy(items)
	}
	groups, err := e.solveBucket(items)
	if errors.Is(err, errFuseStateBudget) {
		return e.fallbackGreedy(items)
	}
	return groups, err
}

// fallbackGreedy solves a bucket with Algorithm 1 (the degradation path
// when enumeration is too expensive). Singleton builds still hit the
// shared memo, so work done before an aborted search is not repeated.
func (e *enumState) fallbackGreedy(items []WorkItem) ([]*FusedGroup, error) {
	if e.cfg.Stats != nil {
		e.cfg.Stats.Fallbacks++
	}
	groups := make([]*FusedGroup, len(items))
	for i := range items {
		g, err := e.buildCached(items[i : i+1])
		if err != nil {
			return nil, err
		}
		groups[i] = g
	}
	return fuseGreedy(groups, e.matSigs, e.cfg)
}

// solveBucket finds the minimum-cost feasible partition of the bucket by
// DP over member subsets. Every partition of mask has exactly one group
// containing mask's lowest set bit, so candidate groups are anchored
// there and each partition is enumerated once.
func (e *enumState) solveBucket(items []WorkItem) ([]*FusedGroup, error) {
	n := len(items)
	full := (1 << uint(n)) - 1

	// Singleton plans: always feasible (a model the budget cannot hold
	// fused still has to train alone), and the source of the lower bound —
	// a fused group costs at least its costliest member's singleton plan,
	// because the merged plan restricted to that member is itself a valid
	// plan for it.
	single := make([]int64, n)
	for i := 0; i < n; i++ {
		g, err := e.buildCached(items[i : i+1])
		if err != nil {
			return nil, err
		}
		single[i] = perEpochCost(g)
	}
	// maxSingle[m] = max over set bits of single — both the group-cost
	// lower bound for a candidate over m and (since any partition of m
	// has some group containing the max member) the remainder bound.
	maxSingle := make([]int64, full+1)
	for m := 1; m <= full; m++ {
		low := m & (-m)
		maxSingle[m] = single[bitIndex(low)]
		if rest := m & (m - 1); rest != 0 && maxSingle[rest] > maxSingle[m] {
			maxSingle[m] = maxSingle[rest]
		}
	}

	memo := make(map[int]int64, full)
	choice := make(map[int]int, full)
	var solve func(mask int) (int64, error)
	solve = func(mask int) (int64, error) {
		if mask == 0 {
			return 0, nil
		}
		if c, ok := memo[mask]; ok {
			return c, nil
		}
		if e.cfg.Stats != nil {
			e.cfg.Stats.StatesExplored++
		}
		low := mask & (-mask)
		best := int64(math.MaxInt64)
		bestSub := 0
		for sub := mask; sub > 0; sub = (sub - 1) & mask {
			if sub&low == 0 {
				continue
			}
			rest := mask ^ sub
			if best != math.MaxInt64 && maxSingle[sub]+restBound(maxSingle, rest) >= best {
				// Even an ideally cheap group over sub cannot beat the
				// incumbent partition of this mask — skip the build.
				if e.cfg.Stats != nil {
					e.cfg.Stats.BoundPrunings++
				}
				continue
			}
			g, err := e.buildCached(subsetItems(items, sub))
			if err != nil {
				return 0, err
			}
			if len(g.Items) > 1 && g.PeakMemBytes > e.cfg.MemBudgetBytes {
				continue // infeasible fusion under B_mem
			}
			cost := perEpochCost(g)
			if best != math.MaxInt64 && cost+restBound(maxSingle, rest) >= best {
				if e.cfg.Stats != nil {
					e.cfg.Stats.BoundPrunings++
				}
				continue
			}
			restCost, err := solve(rest)
			if err != nil {
				return 0, err
			}
			if total := cost + restCost; total < best {
				best = total
				bestSub = sub
			}
		}
		memo[mask] = best
		choice[mask] = bestSub
		return best, nil
	}
	if _, err := solve(full); err != nil {
		return nil, err
	}

	// Reconstruct the winning partition; every chosen subset is in the
	// memo, so these builds are cache hits.
	var groups []*FusedGroup
	for mask := full; mask != 0; {
		sub := choice[mask]
		g, err := e.buildCached(subsetItems(items, sub))
		if err != nil {
			return nil, err
		}
		groups = append(groups, g)
		mask ^= sub
	}
	return groups, nil
}

// restBound lower-bounds the cost of any partition of the remaining mask.
func restBound(maxSingle []int64, rest int) int64 {
	if rest == 0 {
		return 0
	}
	return maxSingle[rest]
}

// buildCached returns the candidate group for a member set, building it at
// most once per Fuse call. Multi-model builds draw down the state budget;
// singleton builds are mandatory work every strategy does and are free.
func (e *enumState) buildCached(items []WorkItem) (*FusedGroup, error) {
	key := memberKey(items)
	if g, ok := e.cache[key]; ok {
		if e.cfg.Stats != nil {
			e.cfg.Stats.MemoHits++
		}
		return g, nil
	}
	if len(items) > 1 {
		if e.remaining <= 0 {
			return nil, errFuseStateBudget
		}
		e.remaining--
	}
	g, err := buildItemsGroup(append([]WorkItem(nil), items...), e.matSigs, e.cfg)
	if err != nil {
		return nil, err
	}
	if len(items) > 1 && e.cfg.Stats != nil {
		e.cfg.Stats.PairsEvaluated++
	}
	e.cache[key] = g
	return g, nil
}

// memberKey is the memo key for a candidate group: its sorted member
// model names. Buckets never share items, so the key is unique globally.
func memberKey(items []WorkItem) string {
	names := make([]string, len(items))
	for i, it := range items {
		names[i] = it.Model.Name
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}

// subsetItems extracts the bucket items named by a bitmask, in bit order.
func subsetItems(items []WorkItem, mask int) []WorkItem {
	out := make([]WorkItem, 0, 4)
	for i := 0; mask != 0; i, mask = i+1, mask>>1 {
		if mask&1 != 0 {
			out = append(out, items[i])
		}
	}
	return out
}

// bitIndex returns the index of the (single) set bit of a power of two.
func bitIndex(bit int) int {
	i := 0
	for bit > 1 {
		bit >>= 1
		i++
	}
	return i
}
